//! Real wall-time of the from-scratch crypto primitives.
//!
//! The virtual-time experiments charge AEAD through the cost model; these
//! benches confirm the actual implementations are sane and give the
//! wall-time baseline EXPERIMENTS.md quotes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn bench_sha256(c: &mut Criterion) {
    let mut g = c.benchmark_group("sha256");
    for size in [64usize, 1024, 16 * 1024] {
        let data = vec![0xABu8; size];
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_with_input(BenchmarkId::from_parameter(size), &data, |b, d| {
            b.iter(|| cio_crypto::Sha256::digest(black_box(d)))
        });
    }
    g.finish();
}

fn bench_aead(c: &mut Criterion) {
    let mut g = c.benchmark_group("chacha20poly1305");
    let aead = cio_crypto::ChaCha20Poly1305::new([7u8; 32]);
    let nonce = [1u8; 12];
    for size in [64usize, 1500, 16 * 1024] {
        let data = vec![0x5Au8; size];
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_with_input(BenchmarkId::new("seal", size), &data, |b, d| {
            b.iter(|| aead.seal(black_box(&nonce), b"aad", black_box(d)))
        });
        let sealed = aead.seal(&nonce, b"aad", &data);
        g.bench_with_input(BenchmarkId::new("open", size), &sealed, |b, s| {
            b.iter(|| aead.open(black_box(&nonce), b"aad", black_box(s)).unwrap())
        });
    }
    g.finish();
}

fn bench_x25519(c: &mut Criterion) {
    let scalar = [0x77u8; 32];
    c.bench_function("x25519/scalarmult", |b| {
        b.iter(|| cio_crypto::x25519::public_key(black_box(&scalar)))
    });
}

fn bench_hkdf(c: &mut Criterion) {
    c.bench_function("hkdf/derive-32", |b| {
        b.iter(|| {
            cio_crypto::hkdf::derive::<32>(
                black_box(b"salt"),
                black_box(b"input keying material"),
                b"info",
            )
            .unwrap()
        })
    });
}

criterion_group!(benches, bench_sha256, bench_aead, bench_x25519, bench_hkdf);
criterion_main!(benches);
