//! Real wall-time of the cTLS handshake and record layer.

use cio_ctls::{ClientHandshake, ServerHandshake, ServerIdentity};
use cio_tee::attest::Measurement;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

const PLATFORM: [u8; 32] = [0x42; 32];

fn identity() -> ServerIdentity {
    ServerIdentity {
        platform_key: PLATFORM,
        measurement: Measurement::of(b"bench-server"),
    }
}

fn bench_handshake(c: &mut Criterion) {
    c.bench_function("ctls/full_handshake", |b| {
        b.iter(|| {
            let (hello, client) = ClientHandshake::start(black_box([7u8; 64]), None);
            let (sh, server) =
                ServerHandshake::respond(&hello, &identity(), [9u8; 64], None).unwrap();
            let (fin, c_chan) = client
                .finish(&sh, &PLATFORM, &Measurement::of(b"bench-server"))
                .unwrap();
            let s_chan = server.verify_finished(&fin).unwrap();
            (c_chan, s_chan)
        })
    });
}

fn bench_records(c: &mut Criterion) {
    let (hello, client) = ClientHandshake::start([1u8; 64], None);
    let (sh, server) = ServerHandshake::respond(&hello, &identity(), [2u8; 64], None).unwrap();
    let (fin, mut tx) = client
        .finish(&sh, &PLATFORM, &Measurement::of(b"bench-server"))
        .unwrap();
    let mut rx = server.verify_finished(&fin).unwrap();

    let mut g = c.benchmark_group("ctls/record_roundtrip");
    for size in [256usize, 1500, 16 * 1024] {
        let msg = vec![0x5Au8; size];
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_with_input(BenchmarkId::from_parameter(size), &msg, |b, m| {
            b.iter(|| {
                let rec = tx.seal(black_box(m)).unwrap();
                rx.open(&rec).unwrap()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_handshake, bench_records);
criterion_main!(benches);
