//! Real wall-time of the network stack's hot paths.

use cio_netstack::wire::{
    inet_checksum, tcp_flags, EthFrame, EtherType, IpProto, Ipv4Addr, Ipv4Packet, MacAddr,
    TcpSegment,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

const A: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
const B: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

fn bench_checksum(c: &mut Criterion) {
    let mut g = c.benchmark_group("inet_checksum");
    for size in [64usize, 1460] {
        let data = vec![0xABu8; size];
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_with_input(BenchmarkId::from_parameter(size), &data, |b, d| {
            b.iter(|| inet_checksum(black_box(d)))
        });
    }
    g.finish();
}

fn bench_segment_build_parse(c: &mut Criterion) {
    let seg = TcpSegment {
        src_port: 40_000,
        dst_port: 80,
        seq: 12345,
        ack: 67890,
        flags: tcp_flags::ACK | tcp_flags::PSH,
        window: 65_535,
        payload: vec![0x42u8; 1460],
    };
    c.bench_function("tcp_segment/build", |b| {
        b.iter(|| black_box(&seg).build(A, B))
    });
    let bytes = seg.build(A, B);
    c.bench_function("tcp_segment/parse", |b| {
        b.iter(|| TcpSegment::parse(A, B, black_box(&bytes)).unwrap())
    });
}

fn bench_full_frame(c: &mut Criterion) {
    // Build + parse the full encapsulation: TCP in IPv4 in Ethernet.
    let seg = TcpSegment {
        src_port: 1,
        dst_port: 2,
        seq: 0,
        ack: 0,
        flags: tcp_flags::ACK,
        window: 1000,
        payload: vec![7u8; 1400],
    };
    c.bench_function("frame/encap+decap", |b| {
        b.iter(|| {
            let ip = Ipv4Packet {
                src: A,
                dst: B,
                proto: IpProto::Tcp,
                ttl: 64,
                payload: black_box(&seg).build(A, B),
            };
            let eth = EthFrame {
                dst: MacAddr([1; 6]),
                src: MacAddr([2; 6]),
                ethertype: EtherType::Ipv4,
                payload: ip.build(),
            };
            let wire = eth.build();
            let eth2 = EthFrame::parse(&wire).unwrap();
            let ip2 = Ipv4Packet::parse(&eth2.payload).unwrap();
            TcpSegment::parse(ip2.src, ip2.dst, &ip2.payload).unwrap()
        })
    });
}

criterion_group!(
    benches,
    bench_checksum,
    bench_segment_build_parse,
    bench_full_frame
);
criterion_main!(benches);
