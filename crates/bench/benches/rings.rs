//! Real wall-time of the transports' data structures (no cost model —
//! this is what the rings cost the simulator host, complementing E5's
//! virtual-time picture).

use cio_bench::transport::{cio_pair, frame_echo, TransportKind};
use cio_sim::CostModel;
use cio_vring::cioring::DataMode;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn bench_transport_echo(c: &mut Criterion) {
    let mut g = c.benchmark_group("transport_echo_1500B");
    g.throughput(Throughput::Bytes(1500 * 32));
    for kind in [
        TransportKind::VirtioUnhardened,
        TransportKind::VirtioHardened,
        TransportKind::CioRingCopy,
        TransportKind::CioRingZeroCopy,
    ] {
        g.bench_with_input(
            BenchmarkId::from_parameter(kind.to_string()),
            &kind,
            |b, &k| b.iter(|| frame_echo(black_box(k), 1500, 32, CostModel::default())),
        );
    }
    g.finish();
}

fn bench_cio_produce_consume(c: &mut Criterion) {
    let mut g = c.benchmark_group("cioring_produce_consume");
    for mode in [DataMode::Inline, DataMode::SharedArea, DataMode::Indirect] {
        let cfg = cio_bench::transport::bench_ring_config(mode, 1600);
        let (_mem, mut gp, mut hc, _hp, _gc) = cio_pair(cfg, CostModel::default());
        let payload = vec![0xEEu8; 1500];
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{mode:?}")),
            &(),
            |b, ()| {
                b.iter(|| {
                    gp.produce(black_box(&payload)).unwrap();
                    hc.consume().unwrap().unwrap()
                })
            },
        );
    }
    g.finish();
}

fn bench_masking(c: &mut Criterion) {
    // The masking operation itself: the entire runtime cost of the §3.2
    // "safe ring" pointer discipline.
    let mask = 0x7FFFFu32;
    c.bench_function("mask_and_clamp", |b| {
        b.iter(|| {
            let offset = black_box(0xDEADBEEFu32) & mask;
            let len = black_box(0xFFFF_FFFFu32).min(mask - offset).min(1514);
            (offset, len)
        })
    });
}

criterion_group!(
    benches,
    bench_transport_echo,
    bench_cio_produce_consume,
    bench_masking
);
criterion_main!(benches);
