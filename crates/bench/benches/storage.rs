//! Real wall-time of the storage stack: raw disk vs. crypt layer vs. the
//! full filesystem.

use cio_block::blockdev::{BlockStore, RamDisk, BLOCK_SIZE};
use cio_block::{CryptStore, SimpleFs};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

fn bench_block_layers(c: &mut Criterion) {
    let mut g = c.benchmark_group("block_write_read");
    g.throughput(Throughput::Bytes(BLOCK_SIZE as u64));
    let data = vec![0xABu8; BLOCK_SIZE];
    let mut buf = vec![0u8; BLOCK_SIZE];

    let mut raw = RamDisk::new(64);
    g.bench_function("ramdisk", |b| {
        b.iter(|| {
            raw.write_block(3, black_box(&data)).unwrap();
            raw.read_block(3, &mut buf).unwrap();
        })
    });

    let mut crypt = CryptStore::new(RamDisk::new(64), [7u8; 32]).unwrap();
    g.bench_function("cryptstore", |b| {
        b.iter(|| {
            crypt.write_block(3, black_box(&data)).unwrap();
            crypt.read_block(3, &mut buf).unwrap();
        })
    });
    g.finish();
}

fn bench_fs(c: &mut Criterion) {
    let mut fs = SimpleFs::format(RamDisk::new(256)).unwrap();
    let id = fs.create("bench.dat").unwrap();
    let chunk = vec![0x11u8; 16 * 1024];
    let mut g = c.benchmark_group("simplefs");
    g.throughput(Throughput::Bytes(chunk.len() as u64));
    g.bench_function("write_read_16k", |b| {
        b.iter(|| {
            fs.write(id, 0, black_box(&chunk)).unwrap();
            fs.read(id, 0, chunk.len()).unwrap()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_block_layers, bench_fs);
criterion_main!(benches);
