//! Micro-benchmark for the one-pass AEAD dataplane.
//!
//! Three report sections, written to stdout and `BENCH_dataplane.json`:
//!
//! 1. `seal_open` — wall-clock throughput of AEAD seal+open round trips
//!    at 64 B..64 KiB, two-pass reference API vs the fused one-pass API
//!    on the same reused buffer. The acceptance bar for the dataplane
//!    rework is a >= 1.5x fused/two-pass ratio at 4 KiB.
//! 2. `record_scratch` — cTLS record seal/open through the reusable
//!    [`RecordScratch`] path (header + fused AEAD + tag in one buffer).
//! 3. `record_ring` — end-to-end records through the full stack on the
//!    seal-in-slot path: cTLS seal directly into a reserved cio-ring
//!    slot, host-side in-place consume, and decapsulation through the
//!    speer tunnel gateway onto its network segment. Wall-clock
//!    records/sec plus the deterministic cio-sim cycle meter series;
//!    steady state performs zero staging copies per record.
//! 4. `multiqueue` — wall-clock cost of simulating the full multi-queue
//!    world (8 RSS-steered flows through 1 vs 4 cio queues), alongside
//!    the virtual-time speedup the lane scheduler reports. The wall
//!    fields are explicitly labeled `serial_stepping`: one thread
//!    simulates every queue, so serial wall time does not scale down
//!    with queue count even though virtual time improves — that is the
//!    expected shape, not an anomaly. A third field times the same 4q world with
//!    the `parallel(4)` worker-thread host for contrast. This is a
//!    deliberately small smoke workload (8 flows x 8 KiB): its speedup is
//!    lower than E16's headline, which runs 32 flows x 128 KiB and has
//!    enough in-flight chunks to keep all four lanes busy. The JSON
//!    labels the workload so the two numbers are never conflated.
//! 5. `batch` — the amortized-boundary dataplane: records pushed through
//!    the ring in runs of 8 (one lock, one index publish, one doorbell,
//!    one batched AEAD pass per run) vs the per-record path, reporting
//!    locks/record, records/commit, and virtual cycles/record.
//!
//! `--quick` shrinks the timing windows for CI smoke runs.

use cio::world::speer::TunnelGateway;
use cio::world::{BoundaryKind, WorldOptions};
use cio_bench::micro::{json_array, measure, JsonObj, Measurement};
use cio_bench::{bench_opts, multi_stream_download};
use cio_crypto::ChaCha20Poly1305;
use cio_ctls::{Channel, RecordScratch, SimHooks, RECORD_OVERHEAD};
use cio_mem::{GuestAddr, GuestMemory, PAGE_SIZE};
use cio_netstack::{MacAddr, NetDevice, PairDevice};
use cio_sim::{Clock, CostModel, Meter, SimRng};
use cio_vring::cioring::{CioRing, Consumer, DataMode, Producer, RingConfig};
use std::hint::black_box;

const SIZES: [usize; 6] = [64, 256, 1024, 4096, 16384, 65536];
const KEY_SIZE: usize = 4096; // the acceptance-bar size

struct SealOpenRow {
    size: usize,
    two_pass: Measurement,
    fused: Measurement,
}

impl SealOpenRow {
    fn ratio(&self) -> f64 {
        self.fused.gb_per_s() / self.two_pass.gb_per_s()
    }
}

/// AEAD seal+open round trip on a reused buffer, two-pass vs fused.
fn bench_seal_open(target_ms: u64) -> Vec<SealOpenRow> {
    let mut rng = SimRng::seed_from(0xbe7c);
    let mut key = [0u8; 32];
    rng.fill_bytes(&mut key);
    let aead = ChaCha20Poly1305::new(key);
    let nonce = [7u8; 12];
    let aad = [0xA5u8; 8];

    SIZES
        .iter()
        .map(|&size| {
            let mut buf = vec![0u8; size];
            rng.fill_bytes(&mut buf);

            let two_pass = measure(target_ms, 2 * size as u64, || {
                let tag = aead.seal_in_place(&nonce, &aad, &mut buf);
                aead.open_in_place(&nonce, &aad, &mut buf, &tag)
                    .expect("self round trip");
                black_box(&buf);
            });
            let fused = measure(target_ms, 2 * size as u64, || {
                let tag = aead.seal_fused_in_place(&nonce, &aad, &mut buf);
                aead.open_fused_in_place(&nonce, &aad, &mut buf, &tag)
                    .expect("self round trip");
                black_box(&buf);
            });
            SealOpenRow {
                size,
                two_pass,
                fused,
            }
        })
        .collect()
}

/// cTLS record seal+open through reused scratches (no transport).
fn bench_record_scratch(target_ms: u64, payload_len: usize) -> Measurement {
    let mut tx = Channel::from_secrets([1; 32], [2; 32], true, None);
    let mut rx = Channel::from_secrets([1; 32], [2; 32], false, None);
    // Lockstep rekeying costs would dominate tiny windows identically on
    // both ends; leave the default policy on — it is part of the path.
    let payload = vec![0x5Au8; payload_len];
    let mut rec = RecordScratch::new();
    let mut plain = RecordScratch::new();
    measure(target_ms, payload_len as u64, || {
        tx.seal_into(&payload, &mut rec).expect("seal");
        rx.open_into(rec.as_slice(), &mut plain).expect("open");
        black_box(plain.as_slice());
    })
}

/// End-to-end: cTLS seal in slot -> cio ring -> in-place consume ->
/// tunnel gateway. Zero payload copies in steady state.
fn bench_record_ring(target_ms: u64, payload_len: usize) -> (Measurement, u64, Meter) {
    let clock = Clock::new();
    let cost = CostModel::default();
    let meter = Meter::new();
    let cfg = RingConfig {
        mtu: 2048,
        mode: DataMode::SharedArea,
        ..RingConfig::default()
    };
    let area_pages = cfg.area_size as usize / PAGE_SIZE;
    let mem = GuestMemory::new(32 + area_pages, clock.clone(), cost.clone(), meter.clone());
    let ring =
        CioRing::new(cfg, GuestAddr(0), GuestAddr(16 * PAGE_SIZE as u64)).expect("ring config");
    mem.share_range(GuestAddr(0), ring.ring_bytes())
        .expect("share ring");
    mem.share_range(GuestAddr(16 * PAGE_SIZE as u64), ring.area_bytes())
        .expect("share area");
    let mut producer = Producer::new(ring.clone(), mem.guest()).expect("producer");
    let mut consumer = Consumer::new(ring, mem.host()).expect("consumer");

    let hooks = SimHooks {
        clock: clock.clone(),
        cost,
        meter: meter.clone(),
        telemetry: cio_sim::Telemetry::disabled(),
    };
    let mut guest = Channel::from_secrets([3; 32], [4; 32], true, Some(hooks));
    let gw_chan = Channel::from_secrets([3; 32], [4; 32], false, None);
    let (gw_side, mut peer_side) = PairDevice::pair([MacAddr([0xA; 6]), MacAddr([0xB; 6])], 2048);
    let mut gw = TunnelGateway::new(gw_chan, gw_side);

    let payload = vec![0x42u8; payload_len];
    let record_len = payload_len + RECORD_OVERHEAD;
    let t0 = clock.now();
    let m = measure(target_ms, payload_len as u64, || {
        let grant = producer.reserve(record_len).expect("slot reservation");
        let n = producer
            .with_slot_mut(&grant, |slot| guest.seal_into_slot(&payload, slot))
            .expect("slot access")
            .expect("seal in slot");
        producer.commit(grant, n).expect("commit");
        let accepted = consumer
            .consume_in_place(|record| gw.ingress(record))
            .expect("consume")
            .expect("record available");
        assert!(accepted, "gateway must accept the record");
        let frame = peer_side.receive().expect("frame on segment");
        black_box(&frame);
    });
    let sim_cycles = clock.since(t0).get();
    (m, sim_cycles, meter)
}

/// The batched dataplane: `batch` records per run through reserve-batch /
/// seal-batch / commit-batch / consume-batch / open-batch (batch 1 runs
/// the exact per-record path). Returns the wall measurement, virtual
/// cycles, and the meter for lock/commit ratios.
fn bench_batch_ring(target_ms: u64, payload_len: usize, batch: usize) -> (Measurement, u64, Meter) {
    use cio_vring::cioring::MAX_BATCH;
    assert!((1..=MAX_BATCH).contains(&batch));
    let clock = Clock::new();
    let cost = CostModel::default();
    let meter = Meter::new();
    let cfg = RingConfig {
        slots: 32,
        mtu: 2048,
        mode: DataMode::SharedArea,
        area_size: 32 * 2048,
        ..RingConfig::default()
    };
    let area_pages = cfg.area_size as usize / PAGE_SIZE;
    let mem = GuestMemory::new(32 + area_pages, clock.clone(), cost.clone(), meter.clone());
    let ring =
        CioRing::new(cfg, GuestAddr(0), GuestAddr(16 * PAGE_SIZE as u64)).expect("ring config");
    mem.share_range(GuestAddr(0), ring.ring_bytes())
        .expect("share ring");
    mem.share_range(GuestAddr(16 * PAGE_SIZE as u64), ring.area_bytes())
        .expect("share area");
    let mut producer = Producer::new(ring.clone(), mem.guest()).expect("producer");
    let mut consumer = Consumer::new(ring, mem.host()).expect("consumer");

    let hooks = SimHooks {
        clock: clock.clone(),
        cost,
        meter: meter.clone(),
        telemetry: cio_sim::Telemetry::disabled(),
    };
    let mut guest = Channel::from_secrets([3; 32], [4; 32], true, Some(hooks.clone()));
    let mut host = Channel::from_secrets([3; 32], [4; 32], false, Some(hooks));

    let payload = vec![0x42u8; payload_len];
    let record_len = payload_len + RECORD_OVERHEAD;
    let mut outs: Vec<RecordScratch> = std::iter::repeat_with(RecordScratch::new)
        .take(batch)
        .collect();
    let t0 = clock.now();
    let m = measure(target_ms, (batch * payload_len) as u64, || {
        if batch == 1 {
            let grant = producer.reserve(record_len).expect("slot reservation");
            let n = producer
                .with_slot_mut(&grant, |slot| guest.seal_into_slot(&payload, slot))
                .expect("slot access")
                .expect("seal in slot");
            producer.commit(grant, n).expect("commit");
            producer.kick();
            let ok = consumer
                .consume_in_place(|record| host.open_in_slot(record, &mut outs[0]).is_ok())
                .expect("consume")
                .expect("record available");
            assert!(ok, "open failed");
        } else {
            let grant = producer
                .reserve_batch(record_len, batch)
                .expect("batch reservation");
            let pts: Vec<&[u8]> = vec![&payload; batch];
            let mut lens = vec![0usize; batch];
            producer
                .with_batch_mut(&grant, |slots| {
                    guest.seal_batch_into_slots(&pts, slots, &mut lens)
                })
                .expect("batch access")
                .expect("batch seal");
            producer.commit_batch(grant, &lens).expect("batch commit");
            producer.kick();
            let mut results = vec![Ok(()); batch];
            let consumed = consumer
                .consume_batch_in_place(batch, |slots| {
                    let recs: Vec<&[u8]> = slots.iter().map(|s| &**s).collect();
                    host.open_batch_in_slots(&recs, &mut outs, &mut results);
                })
                .expect("batch consume");
            assert_eq!(consumed, batch);
            assert!(results.iter().all(Result::is_ok), "batched open failed");
        }
        black_box(outs[0].as_slice());
    });
    let sim_cycles = clock.since(t0).get();
    (m, sim_cycles, meter)
}

/// Wall-clock cost of the whole multi-queue world: world build + 8 flows
/// moving `MQ_PER_FLOW` bytes each. With `parallel == 0` the host is
/// serviced on the stepping thread (wall time does not scale down with
/// queue count — one thread simulates every queue); with `parallel > 0`
/// the host runs
/// on that many worker threads. Returns the measurement plus the virtual
/// cycles one run consumed.
fn bench_multiqueue_world(target_ms: u64, queues: usize, parallel: usize) -> (Measurement, u64) {
    const MQ_FLOWS: usize = 8;
    const MQ_PER_FLOW: u64 = 8 * 1024;
    let mut sim_cycles = 0u64;
    let m = measure(target_ms, MQ_FLOWS as u64 * MQ_PER_FLOW, || {
        let opts = WorldOptions {
            queues,
            parallel,
            ..bench_opts()
        };
        let r = multi_stream_download(BoundaryKind::L2CioRing, opts, MQ_FLOWS, MQ_PER_FLOW, 4096)
            .expect("multiqueue workload");
        sim_cycles = r.elapsed.get();
        black_box(r.app_bytes);
    });
    (m, sim_cycles)
}

fn seal_open_json(rows: &[SealOpenRow]) -> String {
    json_array(rows.iter().map(|r| {
        JsonObj::new()
            .int("size", r.size as u64)
            .f64("two_pass_gbps", r.two_pass.gb_per_s() * 8.0)
            .f64("fused_gbps", r.fused.gb_per_s() * 8.0)
            .f64("two_pass_ns_per_op", r.two_pass.ns_per_iter())
            .f64("fused_ns_per_op", r.fused.ns_per_iter())
            .f64("ratio", r.ratio())
            .finish()
    }))
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let target_ms = if quick { 5 } else { 200 };

    println!(
        "one-pass AEAD dataplane micro-bench ({} mode)",
        if quick { "quick" } else { "full" }
    );
    println!();
    println!("seal+open round trip, two-pass reference vs fused one-pass:");
    println!(
        "{:>8}  {:>14}  {:>14}  {:>7}",
        "size", "two-pass GB/s", "fused GB/s", "ratio"
    );
    let rows = bench_seal_open(target_ms);
    for r in &rows {
        println!(
            "{:>8}  {:>14.3}  {:>14.3}  {:>6.2}x",
            r.size,
            r.two_pass.gb_per_s(),
            r.fused.gb_per_s(),
            r.ratio()
        );
    }
    let key_row = rows
        .iter()
        .find(|r| r.size == KEY_SIZE)
        .expect("4 KiB row present");
    let key_ratio = key_row.ratio();

    let scratch = bench_record_scratch(target_ms, 1024);
    println!();
    println!(
        "cTLS record scratch path (1 KiB payloads): {:.0} records/s, {:.3} GB/s payload",
        scratch.per_sec(),
        scratch.gb_per_s()
    );

    let (ring, sim_cycles, meter) = bench_record_ring(target_ms, 1024);
    let snap = meter.snapshot();
    println!(
        "ctls -> ring -> gateway end-to-end, seal-in-slot (1 KiB payloads): \
         {:.0} records/s, {:.0} sim cycles/record",
        ring.per_sec(),
        sim_cycles as f64 / ring.iters as f64
    );
    println!(
        "  sim meter: {} aead ops, {} copies ({} bytes copied), {} bytes zero-copy, \
         {} ring records",
        snap.aead_ops, snap.copies, snap.bytes_copied, snap.bytes_zero_copy, snap.ring_records
    );

    let (mq1, mq1_cycles) = bench_multiqueue_world(target_ms, 1, 0);
    let (mq4, mq4_cycles) = bench_multiqueue_world(target_ms, 4, 0);
    let (mq4p, _) = bench_multiqueue_world(target_ms, 4, 4);
    let vt_speedup = mq1_cycles as f64 / mq4_cycles.max(1) as f64;
    println!();
    println!(
        "multi-queue world wall cost (smoke workload: 8 flows x 8 KiB, 4 KiB chunks): \
         serial stepping 1q {:.1} ms/run, serial stepping 4q {:.1} ms/run \
         (one thread simulates all four queues, so serial wall time does not \
         scale down with queue count), \
         4-worker-thread host {:.1} ms/run; virtual-time speedup {:.2}x \
         (E16 is the virtual headline, E20 the wall-clock one)",
        mq1.ns_per_iter() / 1e6,
        mq4.ns_per_iter() / 1e6,
        mq4p.ns_per_iter() / 1e6,
        vt_speedup
    );

    let (b1, b1_cycles, _) = bench_batch_ring(target_ms, 1024, 1);
    let (b8, b8_cycles, b8_meter) = bench_batch_ring(target_ms, 1024, 8);
    let b1_cpr = b1_cycles as f64 / b1.iters as f64;
    let b8_cpr = b8_cycles as f64 / (b8.iters * 8) as f64;
    let b8_snap = b8_meter.snapshot();
    let locks_per_record = b8_snap.lock_acquisitions as f64 / b8_snap.ring_records.max(1) as f64;
    let records_per_commit = b8_snap.ring_records as f64 / b8_snap.ring_commits.max(1) as f64;
    println!();
    println!(
        "batched dataplane (1 KiB payloads): batch 1 {:.0} cyc/record, batch 8 \
         {:.0} cyc/record ({:.2}x); {:.2} locks/record, {:.2} records/commit",
        b1_cpr,
        b8_cpr,
        b1_cpr / b8_cpr,
        locks_per_record,
        records_per_commit
    );

    let verdict_met = key_ratio >= 1.5;
    println!();
    println!(
        "4 KiB fused/two-pass ratio: {:.2}x ({} the 1.5x bar)",
        key_ratio,
        if verdict_met { "meets" } else { "BELOW" }
    );

    let doc = JsonObj::new()
        .str("bench", "dataplane")
        .str("mode", if quick { "quick" } else { "full" })
        .raw("seal_open", seal_open_json(&rows))
        .raw(
            "record_scratch",
            JsonObj::new()
                .int("payload", 1024)
                .f64("records_per_sec", scratch.per_sec())
                .f64("gb_per_s", scratch.gb_per_s())
                .finish(),
        )
        .raw(
            "record_ring",
            JsonObj::new()
                .int("payload", 1024)
                .f64("records_per_sec", ring.per_sec())
                .f64("ns_per_record", ring.ns_per_iter())
                .f64(
                    "sim_cycles_per_record",
                    sim_cycles as f64 / ring.iters as f64,
                )
                .int("aead_ops", snap.aead_ops)
                .int("copies", snap.copies)
                .int("bytes_copied", snap.bytes_copied)
                .int("bytes_zero_copy", snap.bytes_zero_copy)
                .int("ring_records", snap.ring_records)
                .finish(),
        )
        .raw(
            "multiqueue",
            JsonObj::new()
                .str("workload", "smoke_8flows_8KiB")
                .str(
                    "note",
                    "small smoke sweep; serial-stepping wall time does not \
                     scale down with queues: one thread simulates every queue. \
                     E16 (exp_multiqueue) is the virtual-time headline at \
                     32 flows x 128 KiB; E20 (exp_parallel) the wall-clock one",
                )
                .int("flows", 8)
                .int("per_flow_bytes", 8 * 1024)
                .f64("wall_ms_serial_stepping_1q", mq1.ns_per_iter() / 1e6)
                .f64("wall_ms_serial_stepping_4q", mq4.ns_per_iter() / 1e6)
                .f64("wall_ms_parallel_host_4q", mq4p.ns_per_iter() / 1e6)
                .int("sim_cycles_1q", mq1_cycles)
                .int("sim_cycles_4q", mq4_cycles)
                .f64("virtual_speedup_4q", vt_speedup)
                .finish(),
        )
        .raw(
            "batch",
            JsonObj::new()
                .int("payload", 1024)
                .int("batch", 8)
                .f64("sim_cycles_per_record_batch1", b1_cpr)
                .f64("sim_cycles_per_record_batch8", b8_cpr)
                .f64("speedup", b1_cpr / b8_cpr)
                .f64("locks_per_record", locks_per_record)
                .f64("records_per_commit", records_per_commit)
                .finish(),
        )
        .f64("ratio_4k", key_ratio)
        .finish();
    std::fs::write("BENCH_dataplane.json", doc + "\n").expect("write BENCH_dataplane.json");
    println!("wrote BENCH_dataplane.json");
}
