//! E17 — `cio-top`: cycle attribution across the dual-boundary dataplane.
//!
//! Runs the flow-steered echo workload on the cio-ring design with the
//! deterministic telemetry layer enabled, then prints where every virtual
//! cycle went: the per-stage/per-queue attribution table, per-queue RTT
//! histograms, per-stage residency, and ring batch-size distributions.
//! Everything derives from the shared virtual clock, so two runs with the
//! same arguments print byte-identical output.
//!
//! Usage: `cio_top [--quick] [--prom] [--json]`
//! `--prom` / `--json` additionally dump the raw exporter payloads.

use cio_bench::{fmt_cycles, print_table, telemetry_echo_world};
use cio_sim::{Histogram, Stage};

const QUEUES: usize = 4;

fn hist_row(label: String, h: &Histogram) -> Vec<String> {
    vec![
        label,
        h.count().to_string(),
        h.p50().to_string(),
        h.p95().to_string(),
        h.p99().to_string(),
        h.max().to_string(),
    ]
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let want_prom = std::env::args().any(|a| a == "--prom");
    let want_json = std::env::args().any(|a| a == "--json");
    let (flows, rounds, size) = if quick { (8, 12, 512) } else { (16, 64, 1024) };

    let w = telemetry_echo_world(QUEUES, flows, rounds, size, true).expect("E17 workload failed");
    let tel = w.telemetry();
    let profile = tel.profile();

    println!(
        "## E17 — cio-top: cycle attribution ({QUEUES} queues, {flows} flows, \
         {rounds} x {size} B echo, virtual time)\n"
    );
    print!("{}", profile.render_table());
    println!(
        "\ncovered: {} cycles across {} queues, span overflows: {}",
        fmt_cycles(profile.covered()),
        profile.queues(),
        profile.overflows()
    );

    let rtt_rows: Vec<Vec<String>> = (0..QUEUES)
        .map(|q| hist_row(format!("q{q}"), &tel.rtt_histogram(q)))
        .collect();
    print_table(
        "per-queue echo RTT (cycles)",
        &["queue", "count", "p50", "p95", "p99", "max"],
        &rtt_rows,
    );

    let batch_rows: Vec<Vec<String>> = (0..QUEUES)
        .map(|q| hist_row(format!("q{q}"), &tel.batch_histogram(q)))
        .collect();
    print_table(
        "per-queue ring batch sizes (frames)",
        &["queue", "count", "p50", "p95", "p99", "max"],
        &batch_rows,
    );

    let res_rows: Vec<Vec<String>> = Stage::ALL
        .iter()
        .map(|&s| (s, tel.residency_histogram(s)))
        .filter(|(_, h)| h.count() > 0)
        .map(|(s, h)| hist_row(s.name().to_string(), &h))
        .collect();
    print_table(
        "per-stage span residency (cycles)",
        &["stage", "spans", "p50", "p95", "p99", "max"],
        &res_rows,
    );

    // Acceptance: stage self-times partition the covered virtual time, so
    // the per-stage fractions must sum to 100% within 1%.
    let frac_sum: f64 = Stage::ALL.iter().map(|&s| profile.fraction(s)).sum();
    println!(
        "\nstage fraction sum: {:.4} (target: 1.0 +- 0.01)",
        frac_sum
    );
    assert!(
        (frac_sum - 1.0).abs() <= 0.01,
        "stage fractions do not partition covered time: {frac_sum:.4}"
    );
    let attributed = profile.total_cycles();
    let covered = profile.covered().get();
    assert!(
        attributed.abs_diff(covered) <= covered / 100 + 1,
        "attributed {attributed} vs covered {covered} diverge by >1%"
    );
    assert_eq!(profile.overflows(), 0, "span stack overflowed");

    println!(
        "\nReading: host.service + ring consume/produce is the host-side cost \
         of the dual boundary; tx.seal/rx.open + crypto is the cTLS tax the \
         guest pays for confidentiality; idle is quantum padding while flows \
         wait on the link. All numbers fold deterministically out of the \
         virtual clock — rerunning this binary reproduces them exactly."
    );

    if want_prom {
        println!("\n--- prometheus ---");
        print!("{}", tel.prometheus_text());
    }
    if want_json {
        println!("\n--- json ---");
        println!("{}", tel.json_snapshot());
    }
}
