//! E17 — `cio-top`: cycle attribution across the dual-boundary dataplane.
//!
//! Runs the flow-steered echo workload on the cio-ring design with the
//! deterministic telemetry layer enabled, then prints where every virtual
//! cycle went: the per-stage/per-queue attribution table, per-queue RTT
//! histograms, per-stage residency, and ring batch-size distributions.
//! Everything derives from the shared virtual clock, so two runs with the
//! same arguments print byte-identical output.
//!
//! Usage: `cio_top [--quick] [--prom] [--json] [--trace <path>]`
//! `--prom` / `--json` additionally dump the raw exporter payloads;
//! `--trace <path>` writes the flight recorder's merged Chrome-trace
//! JSON (load it at `chrome://tracing` or <https://ui.perfetto.dev>).

use cio::world::WorldOptions;
use cio_bench::{bench_opts, fmt_cycles, print_table, telemetry_echo_world_with};
use cio_sim::{Histogram, Stage, Trace};

const QUEUES: usize = 4;

fn hist_row(label: String, h: &Histogram) -> Vec<String> {
    vec![
        label,
        h.count().to_string(),
        h.p50().to_string(),
        h.p95().to_string(),
        h.p99().to_string(),
        h.max().to_string(),
    ]
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let want_prom = args.iter().any(|a| a == "--prom");
    let want_json = args.iter().any(|a| a == "--json");
    let trace_path = args
        .iter()
        .position(|a| a == "--trace")
        .map(|i| args.get(i + 1).expect("--trace needs a path").clone());
    let (flows, rounds, size) = if quick { (8, 12, 512) } else { (16, 64, 1024) };

    let opts = WorldOptions {
        queues: QUEUES,
        telemetry: true,
        observe: true,
        ..bench_opts()
    };
    let w = telemetry_echo_world_with(opts, flows, rounds, size).expect("E17 workload failed");
    // A bounded trace rides along so its eviction counter joins the
    // exports next to the flight recorder's per-queue drop counters.
    let trace = Trace::bounded(256);
    w.telemetry().attach_trace(&trace);
    let tel = w.telemetry();
    let profile = tel.profile();

    println!(
        "## E17 — cio-top: cycle attribution ({QUEUES} queues, {flows} flows, \
         {rounds} x {size} B echo, virtual time)\n"
    );
    print!("{}", profile.render_table());
    println!(
        "\ncovered: {} cycles across {} queues, span overflows: {}",
        fmt_cycles(profile.covered()),
        profile.queues(),
        profile.overflows()
    );

    let rtt_rows: Vec<Vec<String>> = (0..QUEUES)
        .map(|q| hist_row(format!("q{q}"), &tel.rtt_histogram(q)))
        .collect();
    print_table(
        "per-queue echo RTT (cycles)",
        &["queue", "count", "p50", "p95", "p99", "max"],
        &rtt_rows,
    );

    let batch_rows: Vec<Vec<String>> = (0..QUEUES)
        .map(|q| hist_row(format!("q{q}"), &tel.batch_histogram(q)))
        .collect();
    print_table(
        "per-queue ring batch sizes (frames)",
        &["queue", "count", "p50", "p95", "p99", "max"],
        &batch_rows,
    );

    let res_rows: Vec<Vec<String>> = Stage::ALL
        .iter()
        .map(|&s| (s, tel.residency_histogram(s)))
        .filter(|(_, h)| h.count() > 0)
        .map(|(s, h)| hist_row(s.name().to_string(), &h))
        .collect();
    print_table(
        "per-stage span residency (cycles)",
        &["stage", "spans", "p50", "p95", "p99", "max"],
        &res_rows,
    );

    // Acceptance: stage self-times partition the covered virtual time, so
    // the per-stage fractions must sum to 100% within 1%.
    let frac_sum: f64 = Stage::ALL.iter().map(|&s| profile.fraction(s)).sum();
    println!(
        "\nstage fraction sum: {:.4} (target: 1.0 +- 0.01)",
        frac_sum
    );
    assert!(
        (frac_sum - 1.0).abs() <= 0.01,
        "stage fractions do not partition covered time: {frac_sum:.4}"
    );
    let attributed = profile.total_cycles();
    let covered = profile.covered().get();
    assert!(
        attributed.abs_diff(covered) <= covered / 100 + 1,
        "attributed {attributed} vs covered {covered} diverge by >1%"
    );
    assert_eq!(profile.overflows(), 0, "span stack overflowed");

    println!(
        "\nReading: host.service + ring consume/produce is the host-side cost \
         of the dual boundary; tx.seal/rx.open + crypto is the cTLS tax the \
         guest pays for confidentiality; idle is quantum padding while flows \
         wait on the link. All numbers fold deterministically out of the \
         virtual clock — rerunning this binary reproduces them exactly."
    );

    println!(
        "\nflight events dropped: {}, trace events dropped: {}",
        w.flight().total_dropped(),
        trace.dropped()
    );

    if let Some(path) = trace_path {
        let doc = w.chrome_trace();
        std::fs::write(&path, doc).unwrap_or_else(|e| panic!("write {path}: {e}"));
        println!("wrote Chrome trace to {path}");
    }
    if want_prom {
        println!("\n--- prometheus ---");
        print!("{}", tel.prometheus_text());
    }
    if want_json {
        println!("\n--- json ---");
        println!("{}", tel.json_snapshot());
    }
}
