//! Ablations of the cio-ring's design choices (DESIGN.md §3):
//!
//! * what does the masking/validation discipline itself cost? (set the
//!   per-field validation cost to zero and compare);
//! * what does batching the index publication buy? (stage/publish vs.
//!   per-message publish);
//! * how does ring sizing move throughput? (slot-count sweep).

use cio_bench::transport::{bench_ring_config, cio_oneway, cio_pair};
use cio_bench::{fmt_cycles, print_table};
use cio_sim::{CostModel, Cycles};
use cio_vring::cioring::DataMode;

fn main() {
    // --- Ablation 1: the price of the safety discipline itself. ---
    let free_checks = CostModel {
        validate_field: Cycles(0),
        ..CostModel::default()
    };
    let with = cio_oneway(DataMode::SharedArea, 1500, 512, CostModel::default());
    let without = cio_oneway(DataMode::SharedArea, 1500, 512, free_checks);
    let w_cyc = with.cycles_per_frame(512);
    let wo_cyc = without.cycles_per_frame(512);
    print_table(
        "Ablation 1 — masking + clamping discipline (1500 B transfers)",
        &["variant", "cyc/transfer", "overhead"],
        &[
            vec![
                "checks charged".into(),
                fmt_cycles(Cycles(w_cyc)),
                String::new(),
            ],
            vec![
                "checks free".into(),
                fmt_cycles(Cycles(wo_cyc)),
                format!(
                    "{:.2}% of the transfer",
                    100.0 * (w_cyc - wo_cyc) as f64 / w_cyc as f64
                ),
            ],
        ],
    );
    println!(
        "\nThe entire §3.2 safety discipline (mask + clamp per host-read field) costs \
         under a percent of a transfer — designed-in safety is nearly free, unlike the \
         retrofit taxes of E5."
    );

    // --- Ablation 2: batched index publication. ---
    let mut rows = Vec::new();
    for batch in [1u32, 2, 4, 8, 16, 32] {
        let (mem, mut gp, mut hc, _hp, _gc) = cio_pair(
            bench_ring_config(DataMode::SharedArea, 1600),
            CostModel::default(),
        );
        let payload = vec![0x44u8; 1500];
        let t0 = mem.clock().now();
        let total = 256u32;
        let mut consumed = 0u32;
        for _ in 0..total / batch {
            for _ in 0..batch {
                gp.stage(&payload).unwrap();
            }
            gp.publish().unwrap();
            while hc.consume().unwrap().is_some() {
                consumed += 1;
            }
        }
        assert_eq!(consumed, total);
        let cyc = mem.clock().since(t0).get() / u64::from(total);
        rows.push(vec![batch.to_string(), fmt_cycles(Cycles(cyc))]);
    }
    print_table(
        "Ablation 2 — index-publication batch size (cycles/message, 1500 B)",
        &["batch", "cyc/msg"],
        &rows,
    );

    // --- Ablation 3: ring sizing. ---
    let mut rows = Vec::new();
    for slots in [8u32, 32, 128, 512] {
        let mut cfg = bench_ring_config(DataMode::SharedArea, 1600);
        cfg.slots = slots;
        cfg.area_size = slots * 2048;
        let (mem, mut gp, mut hc, _hp, _gc) = cio_pair(cfg, CostModel::default());
        let payload = vec![0x55u8; 1500];
        let t0 = mem.clock().now();
        // Producer bursts of half the ring, then the consumer drains.
        let total = 512u32;
        let burst = (slots / 2).max(1);
        let mut sent = 0u32;
        while sent < total {
            for _ in 0..burst.min(total - sent) {
                gp.produce(&payload).unwrap();
                sent += 1;
            }
            while hc.consume().unwrap().is_some() {}
        }
        let cyc = mem.clock().since(t0).get() / u64::from(total);
        rows.push(vec![slots.to_string(), fmt_cycles(Cycles(cyc))]);
    }
    print_table(
        "Ablation 3 — ring size (cycles/message at half-ring bursts)",
        &["slots", "cyc/msg"],
        &rows,
    );
    println!(
        "\nBatching amortizes the shared-index write and (in doorbell mode) the kick; \
         ring size barely matters once bursts fit — the fixed power-of-two sizing the \
         safe ring requires costs nothing in the regimes that matter."
    );
}
