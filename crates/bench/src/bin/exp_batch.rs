//! E19 — batched amortized-boundary dataplane (§3.2): cycles per record,
//! lock acquisitions per record, and records per index publish for the
//! per-record path (batch 1) vs multi-record commit/consume with
//! shared-keystream AEAD batching, swept over batch size x payload size.
//!
//! Batch 1 runs the exact serial path (reserve/seal-in-slot/commit per
//! record, consume-in-place/open per record) so the baseline is the
//! pre-batching dataplane, not a degenerate batch. Batched rows reserve a
//! run of slots under one lock, seal with ChaCha20 lanes packed across
//! record boundaries, publish one producer index, ring one doorbell, and
//! drain the run with one consumer lock and one batched open.
//!
//! The CI bar: batch 8 at 1 KiB must be at least 1.25x cheaper per record
//! than batch 1 — the binary exits non-zero otherwise. `--quick` shrinks
//! the sweep for smoke runs.

use cio::world::{BatchPolicy, BoundaryKind, WorldOptions};
use cio_bench::{bench_opts, echo_latency, fmt_cycles, print_table};
use cio_ctls::{Channel, RecordScratch, SimHooks, RECORD_OVERHEAD};
use cio_mem::{GuestAddr, GuestMemory, PAGE_SIZE};
use cio_sim::{Clock, CostModel, Cycles, Meter, MeterSnapshot};
use cio_vring::cioring::{CioRing, Consumer, DataMode, Producer, RingConfig, MAX_BATCH};

struct Row {
    size: usize,
    batch: usize,
    cycles_per_rec: u64,
    gbps: f64,
    locks_per_rec: f64,
    recs_per_commit: f64,
}

/// Pushes `records` sealed records of `size` bytes through the ring in
/// runs of `batch` and returns the virtual-time cost and meter ratios.
fn run_batched(size: usize, batch: usize, records: u32) -> Row {
    assert!(batch <= MAX_BATCH && records as usize % batch == 0);
    let clock = Clock::new();
    let cost = CostModel::default();
    let meter = Meter::new();
    let cfg = RingConfig {
        slots: 32,
        mtu: 32 * 1024,
        mode: DataMode::SharedArea,
        area_size: 1 << 20, // 32 KiB stride at 32 slots
        ..RingConfig::default()
    };
    let area_pages = cfg.area_size as usize / PAGE_SIZE;
    let mem = GuestMemory::new(32 + area_pages, clock.clone(), cost.clone(), meter.clone());
    let ring =
        CioRing::new(cfg, GuestAddr(0), GuestAddr(16 * PAGE_SIZE as u64)).expect("ring config");
    mem.share_range(GuestAddr(0), ring.ring_bytes())
        .expect("share ring");
    mem.share_range(GuestAddr(16 * PAGE_SIZE as u64), ring.area_bytes())
        .expect("share area");
    let mut producer = Producer::new(ring.clone(), mem.guest()).expect("producer");
    let mut consumer = Consumer::new(ring, mem.host()).expect("consumer");

    let hooks = SimHooks {
        clock: clock.clone(),
        cost: cost.clone(),
        meter: meter.clone(),
        telemetry: cio_sim::Telemetry::disabled(),
    };
    let mut guest = Channel::from_secrets([3; 32], [4; 32], true, Some(hooks.clone()));
    let mut host = Channel::from_secrets([3; 32], [4; 32], false, Some(hooks));

    let payload = vec![0x42u8; size];
    let mut outs: Vec<RecordScratch> = std::iter::repeat_with(RecordScratch::new)
        .take(batch)
        .collect();
    let m0 = meter.snapshot();
    let t0 = clock.now();
    for _ in 0..records / batch as u32 {
        if batch == 1 {
            // The exact pre-batching serial path.
            let grant = producer.reserve(size + RECORD_OVERHEAD).expect("reserve");
            let n = producer
                .with_slot_mut(&grant, |slot| guest.seal_into_slot(&payload, slot))
                .expect("slot access")
                .expect("seal in slot");
            producer.commit(grant, n).expect("commit");
            producer.kick();
            let ok = consumer
                .consume_in_place(|record| host.open_in_slot(record, &mut outs[0]).is_ok())
                .expect("consume")
                .expect("record available");
            assert!(ok, "open failed");
        } else {
            let grant = producer
                .reserve_batch(size + RECORD_OVERHEAD, batch)
                .expect("batch reservation");
            assert_eq!(grant.len(), batch, "steady state grants the full run");
            let pts: Vec<&[u8]> = vec![&payload; batch];
            let mut lens = vec![0usize; batch];
            producer
                .with_batch_mut(&grant, |slots| {
                    guest.seal_batch_into_slots(&pts, slots, &mut lens)
                })
                .expect("batch access")
                .expect("batch seal");
            producer.commit_batch(grant, &lens).expect("batch commit");
            producer.kick();
            let mut results = vec![Ok(()); batch];
            let consumed = consumer
                .consume_batch_in_place(batch, |slots| {
                    let recs: Vec<&[u8]> = slots.iter().map(|s| &**s).collect();
                    host.open_batch_in_slots(&recs, &mut outs, &mut results);
                })
                .expect("batch consume");
            assert_eq!(consumed, batch);
            assert!(results.iter().all(Result::is_ok), "batched open failed");
        }
        for out in &mut outs {
            std::hint::black_box(out.as_slice());
        }
    }
    let elapsed = clock.since(t0);
    let d = meter.snapshot().delta(&m0);
    Row {
        size,
        batch,
        cycles_per_rec: elapsed.get() / u64::from(records),
        gbps: cio_sim::gbps(u64::from(records) * size as u64, elapsed, cost.ghz),
        locks_per_rec: locks_per_record(&d),
        recs_per_commit: records_per_commit(&d),
    }
}

fn locks_per_record(d: &MeterSnapshot) -> f64 {
    if d.ring_records == 0 {
        0.0
    } else {
        d.lock_acquisitions as f64 / d.ring_records as f64
    }
}

fn records_per_commit(d: &MeterSnapshot) -> f64 {
    if d.ring_commits == 0 {
        0.0
    } else {
        d.ring_records as f64 / d.ring_commits as f64
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let records: u32 = if quick { 64 } else { 480 };
    let batches: &[usize] = if quick { &[1, 8] } else { &[1, 2, 4, 8, 16] };
    let sizes: &[usize] = if quick {
        &[1024]
    } else {
        &[64, 256, 1024, 4096]
    };

    let mut rows = Vec::new();
    for &size in sizes {
        for &batch in batches {
            rows.push(run_batched(size, batch, records));
        }
    }

    print_table(
        "E19 — batched dataplane: per-record cost vs batch size",
        &[
            "payload B",
            "batch",
            "cyc/record",
            "Gbit/s",
            "locks/rec",
            "recs/commit",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.size.to_string(),
                    r.batch.to_string(),
                    fmt_cycles(Cycles(r.cycles_per_rec)),
                    format!("{:.2}", r.gbps),
                    format!("{:.2}", r.locks_per_rec),
                    format!("{:.2}", r.recs_per_commit),
                ]
            })
            .collect::<Vec<_>>(),
    );

    // End-to-end control: the full Tunneled world under each batch policy.
    // A request/response echo has shallow queues, so batched policies can
    // only amortize the few records that are genuinely in flight together
    // (the adaptive policy batches the backlog it finds and never waits
    // past its latency cap for records that may not arrive); the serial
    // row pins the default world to the pre-batching dataplane.
    let echo_rounds: u32 = if quick { 8 } else { 32 };
    let mut world_rows = Vec::new();
    for (policy, name) in [
        (BatchPolicy::Serial, "serial (default)"),
        (BatchPolicy::Fixed(8), "fixed(8)"),
        (
            BatchPolicy::Adaptive {
                max: 8,
                latency_cap: Cycles(50_000),
            },
            "adaptive(8, 50k)",
        ),
    ] {
        let opts = WorldOptions {
            batch: policy,
            ..bench_opts()
        };
        let (rt, r) =
            echo_latency(BoundaryKind::Tunneled, opts, 1024, echo_rounds).expect("tunneled echo");
        world_rows.push(vec![
            name.to_string(),
            fmt_cycles(rt),
            format!("{:.2}", locks_per_record(&r.meter)),
            format!("{:.2}", records_per_commit(&r.meter)),
        ]);
    }
    print_table(
        "E19 — tunneled world echo (1 KiB), batch policy sweep",
        &["policy", "cyc/round-trip", "locks/rec", "recs/commit"],
        &world_rows,
    );

    println!(
        "\nReading: batch 1 is the unmodified per-record dataplane — one lock, one index \
         publish, one doorbell, and one AEAD key schedule per record. Batched runs \
         amortize all four across the run and pack the ChaCha20 keystream lanes across \
         record boundaries, so small records stop wasting lane width; per-record \
         validation (nonce, tag, length, slot bounds) is never amortized. Locks/record \
         and records/commit fall as 1/batch while the outputs stay byte-identical to \
         the serial path."
    );

    // The CI bar: batch 8 at 1 KiB must beat batch 1 by >= 1.25x.
    let per_rec = |batch: usize| {
        rows.iter()
            .find(|r| r.size == 1024 && r.batch == batch)
            .expect("swept row")
            .cycles_per_rec
    };
    let (serial, batched) = (per_rec(1), per_rec(8));
    let speedup = serial as f64 / batched as f64;
    println!("\nbatch 8 @ 1 KiB: {serial} -> {batched} cyc/record ({speedup:.2}x, bar 1.25x)");
    if speedup < 1.25 {
        eprintln!("FAIL: batched dataplane speedup {speedup:.2}x below the 1.25x bar");
        std::process::exit(1);
    }
    println!("PASS: batched dataplane clears the 1.25x amortization bar");
}
