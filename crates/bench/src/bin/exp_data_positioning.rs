//! E6 — data positioning on the cio-ring (§3.2): inline vs. shared-area
//! vs. masked indirect descriptors, across payload sizes.

use cio_bench::transport::cio_oneway;
use cio_bench::{fmt_cycles, print_table};
use cio_sim::CostModel;
use cio_vring::cioring::DataMode;

fn main() {
    let cost = CostModel::default();
    let frames = 512u32;
    let sizes = [16usize, 64, 256, 1024, 1500];

    let mut rows = Vec::new();
    for &size in &sizes {
        for mode in [DataMode::Inline, DataMode::SharedArea, DataMode::Indirect] {
            let r = cio_oneway(mode, size, frames, cost.clone());
            rows.push(vec![
                size.to_string(),
                format!("{mode:?}"),
                fmt_cycles(cio_sim::Cycles(r.cycles_per_frame(u64::from(frames)))),
                format!("{:.2}", r.gbps(cost.ghz)),
                r.meter.validations.to_string(),
            ]);
        }
    }

    print_table(
        "E6 — data positioning: one-way delivery cycles/transfer",
        &["payload B", "mode", "cyc/transfer", "Gbit/s", "validations"],
        &rows,
    );

    println!(
        "\nReading: inline wins for small payloads (one slot write, no offset handling); \
         shared-area catches up as payloads grow (slot traffic stays constant); indirect \
         adds one masked fetch per transfer and only pays off where descriptor reuse or \
         scatter would matter — the interface supports all three so deployments can pick \
         per traffic profile (§3.2 'explore data positioning')."
    );
}
