//! E13 — direct device assignment (§3.4): the attested-device path versus
//! the paravirtual designs, including attestation amortization and the
//! post-attestation-compromise caveat.

use cio::world::{BoundaryKind, WorldOptions, ECHO_PORT};
use cio::World;
use cio_bench::{bench_opts, echo_latency, fmt_cycles, print_table, stream_download};

fn main() {
    // Steady-state comparison.
    let mut rows = Vec::new();
    for kind in [
        BoundaryKind::Dda,
        BoundaryKind::DualBoundary,
        BoundaryKind::L2VirtioHardened,
    ] {
        let stream = stream_download(kind, bench_opts(), 1 << 20, 16 * 1024).unwrap();
        let (rtt, run) = echo_latency(kind, bench_opts(), 256, 32).unwrap();
        rows.push(vec![
            kind.to_string(),
            format!("{:.2}", stream.gbps),
            fmt_cycles(rtt),
            format!("{:.0}", run.obs_bits as f64 / 32.0),
            stream.meter.aead_bytes.to_string(),
        ]);
    }
    print_table(
        "E13 — DDA vs. paravirtual designs (steady state)",
        &[
            "design",
            "stream Gbit/s",
            "RTT cyc",
            "obs bits/op",
            "AEAD bytes",
        ],
        &rows,
    );

    // Attestation amortization: total cycles to first byte + N round trips.
    let mut rows = Vec::new();
    for ops in [1u32, 10, 100, 1_000] {
        let mut w = World::new(BoundaryKind::Dda, bench_opts()).unwrap();
        let setup = w.clock().now(); // includes SPDM rounds charged at build
        let c = w.connect(ECHO_PORT).unwrap();
        w.establish(c, 20_000).unwrap();
        let payload = [0x42u8; 256];
        for _ in 0..ops {
            w.send(c, &payload).unwrap();
            w.recv_exact(c, 256, 50_000).unwrap();
        }
        let total = w.clock().now();
        rows.push(vec![
            ops.to_string(),
            fmt_cycles(setup),
            fmt_cycles(total),
            fmt_cycles(cio_sim::Cycles(total.get() / u64::from(ops))),
        ]);
    }
    print_table(
        "E13b — SPDM attestation amortization (256 B echo ops)",
        &["ops", "attestation cyc", "total cyc", "cyc/op incl. setup"],
        &rows,
    );

    // The §3.4 caveat: an attested device that then misbehaves.
    let mut w = World::new(
        BoundaryKind::Dda,
        WorldOptions {
            dda_tamper: true,
            ..bench_opts()
        },
    )
    .unwrap();
    let c = w.connect(ECHO_PORT).unwrap();
    let attested = "PASSED (measurement + challenge OK)";
    let outcome = match w.establish(c, 1_000) {
        Ok(()) => "traffic flowed from a compromised device!",
        Err(_) => "no corrupted frame reached the application (TCP/cTLS rejected them)",
    };
    print_table(
        "E13c — post-attestation device compromise",
        &["attestation", "workload outcome"],
        &[vec![attested.to_string(), outcome.to_string()]],
    );

    println!(
        "\nReading: DDA performs like a polling L2 design with per-byte IDE cost and \
         near-tunnel observability (the host sees encrypted TLPs), and its SPDM setup \
         amortizes within tens of operations. But attestation is a gate, not a leash: a \
         device compromised *after* attestation still sits inside the TCB — the paper's \
         argument that DDA is no silver bullet and paravirtual interfaces remain worth \
         designing well (§3.4)."
    );
}
