//! E23 — notification economics: event-idx suppression and the adaptive
//! poll-vs-notify controller.
//!
//! Sweeps notify policy x batch policy over the steady-state multi-flow
//! echo workload (establishment and warm-up excluded from the window)
//! and reports exits/record and doorbells/record. Three claims:
//!
//! - **Suppression**: with `NotifyPolicy::EventIdx` the producer skips
//!   the kick whenever the consumer's published event index proves it is
//!   still awake — one doorbell covers many batches, so doorbells/record
//!   collapses at load (gate: < 0.1 with `Adaptive` + `Fixed(8)`, and
//!   strictly below the `Always` baseline at every batch policy).
//! - **Throughput**: the suppressed exits are real virtual time saved —
//!   `Adaptive` beats `Always` by >= 1.15x cycles/record at batch 1,
//!   where `Always` pays one exit per record.
//! - **Bounded idle spin**: at zero offered load the adaptive controller
//!   parks every queue after its idle budget drains and thereafter only
//!   wakes on the re-poll heartbeat (1 pass per `REPOLL_EVERY` rounds) —
//!   the idle duty cycle is a bounded budget, never an unbounded spin.
//!
//! Writes `BENCH_doorbell.json` for CI assertion. Usage:
//! `exp_doorbell [--quick]`.

use cio::world::{BatchPolicy, BoundaryKind, NotifyMode, NotifyPolicy, World, WorldOptions};
use cio_bench::micro::{json_array, JsonObj};
use cio_bench::{bench_opts, print_table, steady_echo_run, SteadyEcho};
use cio_host::backend::{IDLE_BUDGET_MAX, REPOLL_EVERY};

const QUEUES: usize = 2;

/// Echo workload shape (flows, rounds, payload bytes). Small payloads
/// keep the per-record work low, so the notification cost is a large,
/// visible fraction — the regime the suppression machinery targets.
fn shape(quick: bool) -> (usize, u32, usize) {
    if quick {
        (32, 6, 64)
    } else {
        (32, 24, 64)
    }
}

fn doorbell_opts(policy: NotifyPolicy, batch: BatchPolicy) -> WorldOptions {
    WorldOptions {
        queues: QUEUES,
        notify: NotifyMode::Doorbell,
        notify_policy: policy,
        batch,
        ..bench_opts()
    }
}

fn policy_name(p: NotifyPolicy) -> &'static str {
    match p {
        NotifyPolicy::Always => "always",
        NotifyPolicy::EventIdx => "event-idx",
        NotifyPolicy::Adaptive => "adaptive",
    }
}

fn batch_name(b: BatchPolicy) -> &'static str {
    match b {
        BatchPolicy::Serial => "serial",
        _ => "fixed(8)",
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (flows, rounds, size) = shape(quick);

    let policies = [
        NotifyPolicy::Always,
        NotifyPolicy::EventIdx,
        NotifyPolicy::Adaptive,
    ];
    let batches = [BatchPolicy::Serial, BatchPolicy::Fixed(8)];

    // High-load sweep: policy x batch, identical seed and workload.
    let mut runs: Vec<(NotifyPolicy, BatchPolicy, SteadyEcho)> = Vec::new();
    for &batch in &batches {
        for &policy in &policies {
            let r = steady_echo_run(doorbell_opts(policy, batch), flows, rounds, size)
                .expect("E23 echo workload failed");
            runs.push((policy, batch, r));
        }
    }
    let find = |policy: NotifyPolicy, batch: BatchPolicy| -> &SteadyEcho {
        runs.iter()
            .find(|(p, b, _)| *p == policy && batch_name(*b) == batch_name(batch))
            .map(|(_, _, r)| r)
            .expect("sweep covers the cell")
    };

    // Zero-load probe: an idle world under the adaptive controller. The
    // gate counters are cumulative, so the *growth* between two horizons
    // isolates the steady-state duty cycle from the initial budget drain.
    let idle_steps = if quick { 512usize } else { 2048 };
    let idle_passes_at = |steps: usize| -> u64 {
        let mut w = World::new(
            BoundaryKind::L2CioRing,
            doorbell_opts(NotifyPolicy::Adaptive, BatchPolicy::Serial),
        )
        .expect("E23 idle world failed");
        w.run(steps).expect("E23 idle stepping failed");
        w.notify_idle_passes()
    };
    let idle_short = idle_passes_at(idle_steps);
    let idle_long = idle_passes_at(2 * idle_steps);
    // After the budget drains, only the heartbeat may wake a queue.
    let heartbeat = |steps: usize| (steps as u64 / u64::from(REPOLL_EVERY)) + 1;
    let idle_budget = QUEUES as u64 * (u64::from(IDLE_BUDGET_MAX) + heartbeat(idle_steps));
    let idle_growth_cap = QUEUES as u64 * heartbeat(idle_steps);
    let idle_bounded =
        idle_short <= idle_budget && idle_long.saturating_sub(idle_short) <= idle_growth_cap;

    let rows: Vec<Vec<String>> = runs
        .iter()
        .map(|(p, b, r)| {
            vec![
                policy_name(*p).into(),
                batch_name(*b).into(),
                format!("{:.0}", r.cycles_per_record()),
                format!("{:.4}", r.exits_per_record()),
                format!("{:.4}", r.doorbells_per_record()),
                r.meter.suppressed_kicks.to_string(),
                r.meter.spurious_wakeups.to_string(),
            ]
        })
        .collect();
    print_table(
        &format!(
            "E23 — notification economics on {flows} flows x {rounds} rounds of \
             {size} B ({QUEUES} queues, steady state)"
        ),
        &[
            "notify",
            "batch",
            "cyc/record",
            "exits/rec",
            "doorbells/rec",
            "suppressed",
            "spurious",
        ],
        &rows,
    );

    let base_serial = find(NotifyPolicy::Always, BatchPolicy::Serial);
    let base_fixed = find(NotifyPolicy::Always, BatchPolicy::Fixed(8));
    let adapt_serial = find(NotifyPolicy::Adaptive, BatchPolicy::Serial);
    let adapt_fixed = find(NotifyPolicy::Adaptive, BatchPolicy::Fixed(8));
    let speedup_b1 = base_serial.cycles_per_record() / adapt_serial.cycles_per_record();
    let suppression_active = runs
        .iter()
        .filter(|(p, _, _)| *p != NotifyPolicy::Always)
        .all(|(_, _, r)| r.meter.suppressed_kicks > 0);

    println!(
        "\nReading: in `always` mode every publish pays the exit — {:.2} \
         doorbells/record at batch 1. Event-idx suppression publishes the \
         consumer's progress instead, so a doorbell is only rung when the \
         consumer provably went to sleep: {:.4} doorbells/record under \
         `adaptive` + fixed(8) (gate: < 0.1), worth {speedup_b1:.2}x \
         cycles/record at batch 1 (gate: >= 1.15x). At zero load the \
         controller parks each queue after its idle budget and wakes once \
         per {REPOLL_EVERY} rounds: {idle_short} idle passes over \
         {idle_steps} steps, +{} over the next {idle_steps}.",
        base_serial.doorbells_per_record(),
        adapt_fixed.doorbells_per_record(),
        idle_long - idle_short,
    );

    assert!(
        adapt_fixed.doorbells_per_record() < 0.1,
        "adaptive+fixed(8) doorbells/record {:.4} >= 0.1",
        adapt_fixed.doorbells_per_record()
    );
    assert!(
        speedup_b1 >= 1.15,
        "adaptive batch-1 speedup {speedup_b1:.3}x < 1.15x over always"
    );
    assert!(
        suppression_active,
        "a non-Always run suppressed zero kicks — event-idx machinery inert"
    );
    for &batch in &batches {
        let base = find(NotifyPolicy::Always, batch);
        for policy in [NotifyPolicy::EventIdx, NotifyPolicy::Adaptive] {
            let r = find(policy, batch);
            assert!(
                r.doorbells_per_record() < base.doorbells_per_record(),
                "{}/{} doorbells/record {:.4} not below always baseline {:.4}",
                policy_name(policy),
                batch_name(batch),
                r.doorbells_per_record(),
                base.doorbells_per_record()
            );
        }
    }
    assert!(
        idle_bounded,
        "idle spin unbounded: {idle_short} passes over {idle_steps} steps \
         (budget {idle_budget}), +{} over the next horizon (cap {idle_growth_cap})",
        idle_long - idle_short
    );

    let doc = JsonObj::new()
        .str("bench", "doorbell")
        .str("mode", if quick { "quick" } else { "full" })
        .int("flows", flows as u64)
        .int("rounds", u64::from(rounds))
        .int("size", size as u64)
        .int("queues", QUEUES as u64)
        .raw(
            "runs",
            json_array(runs.iter().map(|(p, b, r)| {
                JsonObj::new()
                    .str("notify", policy_name(*p))
                    .str("batch", batch_name(*b))
                    .int("cycles", r.elapsed.get())
                    .int("records", r.meter.ring_records)
                    .f64("cycles_per_record", r.cycles_per_record())
                    .f64("exits_per_record", r.exits_per_record())
                    .f64("doorbells_per_record", r.doorbells_per_record())
                    .int("suppressed_kicks", r.meter.suppressed_kicks)
                    .int("spurious_wakeups", r.meter.spurious_wakeups)
                    .finish()
            })),
        )
        .raw(
            "doorbell",
            JsonObj::new()
                .int("suppression_active", u64::from(suppression_active))
                .f64(
                    "always_doorbells_per_record_b1",
                    base_serial.doorbells_per_record(),
                )
                .f64(
                    "always_doorbells_per_record_b8",
                    base_fixed.doorbells_per_record(),
                )
                .f64(
                    "adaptive_doorbells_per_record_b8",
                    adapt_fixed.doorbells_per_record(),
                )
                .f64("speedup_b1", speedup_b1)
                .int("idle_steps", idle_steps as u64)
                .int("idle_passes", idle_short)
                .int("idle_passes_2x", idle_long)
                .int("idle_budget", idle_budget)
                .int("idle_bounded", u64::from(idle_bounded))
                .finish(),
        )
        .finish();
    std::fs::write("BENCH_doorbell.json", doc + "\n").expect("write BENCH_doorbell.json");
    println!("wrote BENCH_doorbell.json");
}
