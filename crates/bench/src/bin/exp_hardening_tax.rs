//! E5 — the hardening tax (§2.5): virtio vs. hardened virtio vs. cio-ring
//! frame throughput across frame sizes.
//!
//! The paper's claim: "performance tends to suffer from the hardening more
//! than needed" because the retrofit piggybacks copies and checks on a
//! protocol that never planned for them, while an interface designed for
//! distrust pays less for the same safety.

use cio_bench::transport::{frame_echo, TransportKind};
use cio_bench::{fmt_cycles, print_table};
use cio_sim::CostModel;

fn main() {
    let cost = CostModel::default();
    let frames = 256u32;
    let sizes = [64usize, 256, 1024, 1500];
    let kinds = [
        TransportKind::VirtioUnhardened,
        TransportKind::VirtioHardened,
        TransportKind::CioRingCopy,
        TransportKind::CioRingZeroCopy,
    ];

    let mut rows = Vec::new();
    for &size in &sizes {
        let mut base_cyc = 0u64;
        for kind in kinds {
            let r = frame_echo(kind, size, frames, cost.clone());
            let cyc = r.cycles_per_frame(u64::from(frames));
            if kind == TransportKind::VirtioUnhardened {
                base_cyc = cyc;
            }
            rows.push(vec![
                size.to_string(),
                kind.to_string(),
                fmt_cycles(cio_sim::Cycles(cyc)),
                format!("{:.2}", r.gbps(cost.ghz)),
                format!("{:.2}x", cyc as f64 / base_cyc as f64),
                r.meter.copies.to_string(),
                r.meter.validations.to_string(),
                (r.meter.notifications_sent + r.meter.interrupts_received).to_string(),
            ]);
        }
    }

    print_table(
        "E5 — hardening tax: echo cycles/frame by transport",
        &[
            "frame B",
            "transport",
            "cyc/frame",
            "Gbit/s",
            "vs unhardened",
            "copies",
            "validations",
            "notifications",
        ],
        &rows,
    );

    println!(
        "\nReading: the retrofit (virtio-hardened) pays bounce copies on every frame plus \
         per-completion validation and notification exits; the cio-ring gets equivalent \
         safety from masking + one early copy, and its zero-copy mode drops even that \
         where the layout rules out double fetches."
    );
}
