//! E24 — the confidential KV benchmark: records in via cTLS, encrypted
//! blocks out via the batched block ring (storage at dataplane parity).
//!
//! A get/put mix over value sizes 64 B – 64 KiB runs against the
//! [`cio::kv::KvWorld`] log engine under three dialects of the block
//! transport:
//!
//! - **storage_v1** — the serial baseline this repo shipped before
//!   batching: every block staged through a copy, one request per
//!   publish, polling rings;
//! - **batched(d)** — seal-in-slot zero-copy framing, `d` requests per
//!   lock/doorbell, event-idx suppression (sweep over d);
//! - **notify comparison** — Always vs EventIdx vs Adaptive at batch 8.
//!
//! Every configuration executes the byte-identical operation sequence, so
//! cycles/op deltas are pure transport economics. Gates (asserted inline
//! and exported in `BENCH_kv.json` for CI):
//!
//! - the batched path performs **zero** staging copies per block;
//! - under batch 8, lock acquisitions per block < 1.0;
//! - batched(8) is >= 1.5x cycles/op over storage_v1;
//! - doorbells per block < 0.25 under Adaptive notify.
//!
//! Usage: `exp_kv [--quick]`.

use cio::kv::{KvConfig, KvWorld};
use cio_bench::micro::{json_array, JsonObj};
use cio_bench::{fmt_cycles, print_table};
use cio_sim::{CostModel, Cycles, MeterSnapshot};
use cio_vring::cioring::NotifyPolicy;

/// Value sizes exercised by the mix (64 B to 64 KiB).
const SIZES: [usize; 6] = [64, 256, 1024, 4096, 16_384, 65_536];

fn val(i: usize, len: usize) -> Vec<u8> {
    (0..len).map(|j| ((i * 131 + j * 7) % 255) as u8).collect()
}

struct KvRun {
    name: String,
    elapsed: Cycles,
    ops: u64,
    meter: MeterSnapshot,
}

impl KvRun {
    fn cycles_per_op(&self) -> f64 {
        self.elapsed.get() as f64 / self.ops as f64
    }
    fn copies_per_block(&self) -> f64 {
        self.meter.blk_copies as f64 / self.meter.blk_records.max(1) as f64
    }
    fn blocks_per_commit(&self) -> f64 {
        self.meter.blk_records as f64 / self.meter.blk_commits.max(1) as f64
    }
    fn doorbells_per_block(&self) -> f64 {
        self.meter.blk_doorbells as f64 / self.meter.blk_records.max(1) as f64
    }
    fn locks_per_block(&self) -> f64 {
        self.meter.lock_acquisitions as f64 / self.meter.blk_records.max(1) as f64
    }
}

/// Runs the standard mix: `ops` operations, 5 puts : 1 get (the ingest
/// pipeline the batched ring exists for), value sizes cycling the full
/// 64 B – 64 KiB ladder in both roles, over 64 rotating keys. Gets target
/// keys ~24 ops old so they read flushed blocks, not the staged segment.
/// Identical bytes in every config.
fn run_mix(name: &str, cfg: KvConfig, ops: usize) -> KvRun {
    // A 32-block memtable: flushes amortize the run-level tag RMW and
    // doorbells over more data blocks (identical in every config).
    let mut kv = KvWorld::new(cfg.with_seg_blocks(32), CostModel::default()).expect("kv world");
    // Warm-up: touch the hot keys and the allocator so the measured
    // window is steady state.
    for i in 0..8usize {
        kv.put_sealed(format!("key-{i:02}").as_bytes(), &val(i, 4096))
            .expect("warm put");
    }
    kv.flush().expect("warm flush");
    let t0 = kv.tee().clock().now();
    let m0 = kv.tee().meter().snapshot();
    for i in 0..ops {
        // Stagger the size ladder against the op-type cycle so every size
        // appears in both roles across the run.
        let size = SIZES[(i + i / 6) % SIZES.len()];
        if i % 6 == 5 {
            // Read a key old enough to have been flushed. Misses (warm-up
            // distance, log wrap) are valid outcomes of the shared
            // sequence, never errors.
            let key = format!("key-{:02}", i.saturating_sub(24) % 64);
            kv.get_sealed(key.as_bytes()).expect("get");
        } else {
            let key = format!("key-{:02}", i % 64);
            kv.put_sealed(key.as_bytes(), &val(i, size)).expect("put");
        }
        kv.service().expect("service");
    }
    kv.flush().expect("flush");
    KvRun {
        name: name.to_string(),
        elapsed: kv.tee().clock().since(t0),
        ops: ops as u64,
        meter: kv.tee().meter().snapshot().delta(&m0),
    }
}

fn notify_name(p: NotifyPolicy) -> &'static str {
    match p {
        NotifyPolicy::Always => "always",
        NotifyPolicy::EventIdx => "event-idx",
        NotifyPolicy::Adaptive => "adaptive",
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let ops = if quick { 72 } else { 288 };

    // --- Sweep 1: storage_v1 baseline vs batch depth ---------------------
    let mut runs = Vec::new();
    runs.push(run_mix("storage_v1", KvConfig::storage_v1(), ops));
    for depth in [1usize, 2, 4, 8, 16] {
        runs.push(run_mix(
            &format!("batched({depth})"),
            KvConfig::batched(depth),
            ops,
        ));
    }

    let rows: Vec<Vec<String>> = runs
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                fmt_cycles(r.elapsed),
                format!("{:.0}", r.cycles_per_op()),
                r.meter.blk_records.to_string(),
                format!("{:.3}", r.copies_per_block()),
                format!("{:.2}", r.blocks_per_commit()),
                format!("{:.3}", r.doorbells_per_block()),
                format!("{:.3}", r.locks_per_block()),
            ]
        })
        .collect();
    print_table(
        &format!(
            "E24 — confidential KV: {ops} sealed ops (5 put : 1 get, 64 B–64 KiB \
             values), records in via cTLS, blocks out via the ring"
        ),
        &[
            "transport",
            "cycles",
            "cyc/op",
            "blocks",
            "copies/blk",
            "blk/commit",
            "doorbell/blk",
            "locks/blk",
        ],
        &rows,
    );

    // --- Sweep 2: notify policy at batch 8 -------------------------------
    let mut notify_runs = Vec::new();
    for policy in [
        NotifyPolicy::Always,
        NotifyPolicy::EventIdx,
        NotifyPolicy::Adaptive,
    ] {
        notify_runs.push(run_mix(
            notify_name(policy),
            KvConfig::batched(8).with_notify(policy),
            ops,
        ));
    }
    let rows: Vec<Vec<String>> = notify_runs
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                format!("{:.0}", r.cycles_per_op()),
                r.meter.blk_doorbells.to_string(),
                format!("{:.3}", r.doorbells_per_block()),
                r.meter.suppressed_kicks.to_string(),
            ]
        })
        .collect();
    print_table(
        "E24b — notify policy at batch 8",
        &[
            "notify",
            "cyc/op",
            "doorbells",
            "doorbell/blk",
            "suppressed",
        ],
        &rows,
    );

    // --- Sweep 3: value-size ladder at batch 8 ---------------------------
    let per_size_ops = if quick { 18 } else { 60 };
    let mut size_rows = Vec::new();
    let mut size_json = Vec::new();
    for &size in &SIZES {
        let mut kv = KvWorld::new(KvConfig::batched(8), CostModel::default()).expect("kv world");
        kv.put_sealed(b"warm", &val(0, size)).expect("warm");
        kv.flush().expect("warm flush");
        let t0 = kv.tee().clock().now();
        for i in 0..per_size_ops {
            let key = format!("k{:02}", i % 16);
            kv.put_sealed(key.as_bytes(), &val(i, size)).expect("put");
            if i % 2 == 1 {
                kv.get_sealed(key.as_bytes()).expect("get");
            }
        }
        kv.flush().expect("flush");
        let elapsed = kv.tee().clock().since(t0);
        let ops_done = per_size_ops + per_size_ops / 2;
        let cyc_op = elapsed.get() as f64 / ops_done as f64;
        size_rows.push(vec![
            size.to_string(),
            format!("{:.0}", cyc_op),
            format!("{:.2}", cyc_op / size as f64),
        ]);
        size_json.push(
            JsonObj::new()
                .int("value_bytes", size as u64)
                .f64("cycles_per_op", cyc_op)
                .finish(),
        );
    }
    print_table(
        "E24c — value-size ladder, batched(8)",
        &["value B", "cyc/op", "cyc/byte"],
        &size_rows,
    );

    // --- Gates ------------------------------------------------------------
    let v1 = &runs[0];
    let b8 = runs
        .iter()
        .find(|r| r.name == "batched(8)")
        .expect("batch-8 run");
    let adaptive = notify_runs
        .iter()
        .find(|r| r.name == "adaptive")
        .expect("adaptive run");
    let speedup_b8 = v1.cycles_per_op() / b8.cycles_per_op();

    println!(
        "\nReading: storage_v1 stages every block ({:.2} copies/blk) and pays a \
         lock per request; the batched ring seals ciphertext directly into slot \
         memory ({:.2} copies/blk) and amortizes one lock and at most one \
         doorbell over a run ({:.2} blocks/commit, {:.3} doorbells/blk under \
         adaptive) — {speedup_b8:.2}x cycles/op at batch 8. The storage side of \
         the dual boundary now matches the network dataplane's economics.",
        v1.copies_per_block(),
        b8.copies_per_block(),
        b8.blocks_per_commit(),
        adaptive.doorbells_per_block(),
    );

    assert!(
        b8.meter.blk_copies == 0,
        "batched(8) staged {} copies — in-slot sealing regressed",
        b8.meter.blk_copies
    );
    assert!(
        b8.locks_per_block() < 1.0,
        "batched(8) locks/block {:.3} >= 1.0",
        b8.locks_per_block()
    );
    assert!(
        speedup_b8 >= 1.5,
        "batched(8) speedup {speedup_b8:.3}x < 1.5x over storage_v1"
    );
    assert!(
        adaptive.doorbells_per_block() < 0.25,
        "adaptive doorbells/block {:.3} >= 0.25",
        adaptive.doorbells_per_block()
    );
    assert!(
        v1.meter.blk_doorbells == 0,
        "storage_v1 is a polling baseline; doorbells must be zero"
    );

    // --- JSON -------------------------------------------------------------
    let doc = JsonObj::new()
        .str("bench", "kv")
        .str("mode", if quick { "quick" } else { "full" })
        .int("ops", ops as u64)
        .raw(
            "runs",
            json_array(runs.iter().chain(notify_runs.iter()).map(|r| {
                JsonObj::new()
                    .str("transport", &r.name)
                    .int("cycles", r.elapsed.get())
                    .int("ops", r.ops)
                    .int("blocks", r.meter.blk_records)
                    .f64("cycles_per_op", r.cycles_per_op())
                    .f64("copies_per_block", r.copies_per_block())
                    .f64("blocks_per_commit", r.blocks_per_commit())
                    .f64("doorbells_per_block", r.doorbells_per_block())
                    .f64("locks_per_block", r.locks_per_block())
                    .finish()
            })),
        )
        .raw("value_sizes", json_array(size_json.into_iter()))
        .raw(
            "kv",
            JsonObj::new()
                .f64("copies_per_block", b8.copies_per_block())
                .f64("locks_per_block", b8.locks_per_block())
                .f64("speedup_b8", speedup_b8)
                .f64(
                    "doorbells_per_block_adaptive",
                    adaptive.doorbells_per_block(),
                )
                .f64("blocks_per_commit_b8", b8.blocks_per_commit())
                .finish(),
        )
        .finish();
    std::fs::write("BENCH_kv.json", doc + "\n").expect("write BENCH_kv.json");
    println!("wrote BENCH_kv.json");
}
