//! E16 — multi-queue scaling: aggregate throughput of the flow-steered
//! cio-ring dataplane at 1/2/4/8 queues across payload sizes.
//!
//! 32 concurrent RPC flows are RSS-steered across the queues; each queue
//! runs on its own virtual lane, so the world's clock advances by the
//! *busiest* queue per step instead of the sum — the simulated analogue of
//! one core per queue. Usage: `exp_multiqueue [--quick]`.

use cio::world::{BoundaryKind, WorldOptions, MAX_QUEUES};
use cio_bench::{bench_opts, fmt_cycles, multi_stream_download, print_table};

const FLOWS: usize = 32;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let per_flow: u64 = if quick { 16 * 1024 } else { 128 * 1024 };
    let chunks: &[u32] = if quick {
        &[4 * 1024]
    } else {
        &[1024, 4 * 1024, 16 * 1024]
    };
    let queue_counts: &[usize] = &[1, 2, 4, MAX_QUEUES];

    let mut rows = Vec::new();
    let mut speedup_4q_4k = 0.0f64;
    for &chunk in chunks {
        let mut base = 0.0f64;
        for &queues in queue_counts {
            let opts = WorldOptions {
                queues,
                ..bench_opts()
            };
            let r = multi_stream_download(BoundaryKind::L2CioRing, opts, FLOWS, per_flow, chunk)
                .expect("E16 workload failed");
            if queues == 1 {
                base = r.gbps;
            }
            let speedup = r.gbps / base;
            if queues == 4 && chunk == 4 * 1024 {
                speedup_4q_4k = speedup;
            }
            rows.push(vec![
                queues.to_string(),
                chunk.to_string(),
                format!("{:.2}", r.gbps),
                fmt_cycles(r.elapsed),
                format!("{speedup:.2}x"),
            ]);
        }
    }

    print_table(
        "E16 — multi-queue cio-ring scaling (32 flows, virtual time)",
        &["queues", "payload B", "Gbit/s", "elapsed cyc", "speedup"],
        &rows,
    );

    println!(
        "\nReading: each queue keeps the full §3.2 discipline — masked indices, \
         clamped lengths, per-queue pools — so scaling comes from flow steering \
         alone, with zero cross-queue negotiation. The symmetric RSS hash means \
         guest TX and host RX agree on placement without exchanging state."
    );
    println!("\n4-queue speedup at 4 KiB: {speedup_4q_4k:.2}x (target: >= 2.5x)");
    assert!(
        speedup_4q_4k >= 2.5,
        "multi-queue scaling regressed: {speedup_4q_4k:.2}x < 2.5x"
    );
}
