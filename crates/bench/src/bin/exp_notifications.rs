//! E8 — polling vs. notifications (§3.2 "no notifications"): cycles per
//! message across load patterns.

use cio_bench::transport::notify_bench;
use cio_bench::{fmt_cycles, print_table};
use cio_sim::{CostModel, Cycles};

fn main() {
    let cost = CostModel::default();
    let bursts = 32u32;

    // (burst size, idle polls between bursts) — from saturated to sparse.
    let patterns: [(u32, u32, &str); 5] = [
        (32, 0, "saturated"),
        (8, 0, "busy"),
        (4, 100, "moderate"),
        (1, 500, "sparse"),
        (1, 5_000, "mostly idle"),
    ];

    let mut rows = Vec::new();
    for (burst, idle, label) in patterns {
        let poll = notify_bench(false, burst, bursts, idle, cost.clone());
        let bell = notify_bench(true, burst, bursts, 0, cost.clone());
        let msgs = u64::from(burst * bursts);
        let pc = poll.elapsed.get() / msgs;
        let bc = bell.elapsed.get() / msgs;
        rows.push(vec![
            label.to_string(),
            burst.to_string(),
            idle.to_string(),
            fmt_cycles(Cycles(pc)),
            fmt_cycles(Cycles(bc)),
            if pc <= bc { "polling" } else { "doorbell" }.to_string(),
            poll.meter.idle_polls.to_string(),
            bell.meter.notifications_sent.to_string(),
        ]);
    }

    print_table(
        "E8 — polling vs. doorbells: cycles/message by load pattern",
        &[
            "load",
            "burst",
            "idle polls",
            "poll cyc/msg",
            "doorbell cyc/msg",
            "winner",
            "idle polls done",
            "doorbells",
        ],
        &rows,
    );

    println!(
        "\nReading: under load, polling wins outright — the doorbell's exit cost buys \
         nothing ('notifications do not contribute to performance under polling \
         scenarios'). Only deeply idle endpoints amortize doorbells; the paper's answer \
         is polling by default, with stateless idempotent handlers where notifications \
         are unavoidable — and the idempotence is what the notification-storm attack in \
         E10 bounces off."
    );
}
