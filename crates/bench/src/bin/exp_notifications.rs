//! E8 (v2) — polling vs. doorbells vs. event-idx suppression on the
//! modern dataplane (§3.2 "no notifications").
//!
//! The seed-era E8 measured a synthetic transport loop; this version
//! runs the real thing: the multiqueue cio-ring world (builder API,
//! batching, RSS-steered flows) under the steady-state echo workload,
//! sweeping the notification mode with everything else held fixed:
//!
//! - **polling**: no notifications at all — the host burns idle polls,
//!   the paper's default under load.
//! - **doorbell/always**: one exit per publish, the historical
//!   interrupt-driven arm.
//! - **doorbell/event-idx**: the consumer publishes its progress, the
//!   producer kicks only when the consumer provably went to sleep —
//!   doorbell semantics at near-polling cycle cost.
//!
//! The JSON is labelled `notifications_v2` so post-refresh numbers can
//! never be confused with seed-era E8 output (different workload,
//! different units). Writes `BENCH_notifications.json`. Usage:
//! `exp_notifications [--quick]`.

use cio::world::{BatchPolicy, BoundaryKind, NotifyMode, NotifyPolicy, World};
use cio_bench::micro::{json_array, JsonObj};
use cio_bench::{bench_opts, print_table, steady_echo_run, SteadyEcho};

const QUEUES: usize = 4;

/// Echo workload shape (flows, rounds, payload bytes).
fn shape(quick: bool) -> (usize, u32, usize) {
    if quick {
        (16, 6, 256)
    } else {
        (16, 24, 256)
    }
}

/// The three notification arms under comparison.
const ARMS: [(&str, NotifyMode, NotifyPolicy); 3] = [
    ("polling", NotifyMode::Polling, NotifyPolicy::Always),
    (
        "doorbell/always",
        NotifyMode::Doorbell,
        NotifyPolicy::Always,
    ),
    (
        "doorbell/event-idx",
        NotifyMode::Doorbell,
        NotifyPolicy::EventIdx,
    ),
];

fn run_arm(
    notify: NotifyMode,
    policy: NotifyPolicy,
    batch: BatchPolicy,
    quick: bool,
) -> SteadyEcho {
    let (flows, rounds, size) = shape(quick);
    let opts = World::builder(BoundaryKind::L2CioRing)
        .options(bench_opts())
        .queues(QUEUES)
        .notify(notify)
        .notify_policy(policy)
        .batch(batch)
        .into_options();
    steady_echo_run(opts, flows, rounds, size).expect("E8 echo workload failed")
}

fn batch_name(b: BatchPolicy) -> &'static str {
    match b {
        BatchPolicy::Serial => "serial",
        _ => "fixed(8)",
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (flows, rounds, size) = shape(quick);
    let batches = [BatchPolicy::Serial, BatchPolicy::Fixed(8)];

    let mut runs: Vec<(&'static str, BatchPolicy, SteadyEcho)> = Vec::new();
    for &batch in &batches {
        for &(label, notify, policy) in &ARMS {
            runs.push((label, batch, run_arm(notify, policy, batch, quick)));
        }
    }

    let rows: Vec<Vec<String>> = runs
        .iter()
        .map(|(label, batch, r)| {
            vec![
                (*label).into(),
                batch_name(*batch).into(),
                format!("{:.0}", r.cycles_per_record()),
                format!("{:.4}", r.doorbells_per_record()),
                r.meter.idle_polls.to_string(),
                r.meter.suppressed_kicks.to_string(),
            ]
        })
        .collect();
    print_table(
        &format!(
            "E8 (v2) — notification modes on {flows} flows x {rounds} rounds of \
             {size} B ({QUEUES} queues, steady state)"
        ),
        &[
            "mode",
            "batch",
            "cyc/record",
            "doorbells/rec",
            "idle polls",
            "suppressed",
        ],
        &rows,
    );

    let find = |label: &str, batch: BatchPolicy| -> &SteadyEcho {
        runs.iter()
            .find(|(l, b, _)| *l == label && batch_name(*b) == batch_name(batch))
            .map(|(_, _, r)| r)
            .expect("sweep covers the cell")
    };
    let poll = find("polling", BatchPolicy::Serial);
    let bell = find("doorbell/always", BatchPolicy::Serial);
    let eidx = find("doorbell/event-idx", BatchPolicy::Serial);

    println!(
        "\nReading: under load, polling still wins outright — notifications do \
         not contribute to performance when the consumer is awake anyway. But \
         event-idx suppression closes most of the gap ({:.0} vs {:.0} vs {:.0} \
         cycles/record for polling / event-idx / always at batch 1) while \
         keeping doorbell semantics, so an idle host may actually sleep instead \
         of burning cores — the adaptive controller in E23 builds on exactly \
         this.",
        poll.cycles_per_record(),
        eidx.cycles_per_record(),
        bell.cycles_per_record(),
    );

    // Sanity gates: polling must ring nothing, and suppression must beat
    // the always baseline on both exits and cycles at every batch policy.
    for &batch in &batches {
        let p = find("polling", batch);
        assert_eq!(
            p.meter.notifications_sent + p.meter.interrupts_received,
            0,
            "polling mode rang a doorbell"
        );
        let b = find("doorbell/always", batch);
        let e = find("doorbell/event-idx", batch);
        assert!(
            e.doorbells_per_record() < b.doorbells_per_record(),
            "event-idx not below always at {}",
            batch_name(batch)
        );
        assert!(
            e.cycles_per_record() < b.cycles_per_record(),
            "event-idx not cheaper than always at {}",
            batch_name(batch)
        );
        assert!(e.meter.suppressed_kicks > 0, "no kicks suppressed");
    }

    let doc = JsonObj::new()
        .str("bench", "notifications_v2")
        .str("mode", if quick { "quick" } else { "full" })
        .int("flows", flows as u64)
        .int("rounds", u64::from(rounds))
        .int("size", size as u64)
        .int("queues", QUEUES as u64)
        .raw(
            "runs",
            json_array(runs.iter().map(|(label, batch, r)| {
                JsonObj::new()
                    .str("notify", label)
                    .str("batch", batch_name(*batch))
                    .int("cycles", r.elapsed.get())
                    .int("records", r.meter.ring_records)
                    .f64("cycles_per_record", r.cycles_per_record())
                    .f64("doorbells_per_record", r.doorbells_per_record())
                    .int("idle_polls", r.meter.idle_polls)
                    .int("suppressed_kicks", r.meter.suppressed_kicks)
                    .finish()
            })),
        )
        .finish();
    std::fs::write("BENCH_notifications.json", doc + "\n").expect("write BENCH_notifications.json");
    println!("wrote BENCH_notifications.json");
}
