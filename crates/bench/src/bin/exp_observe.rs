//! E22 — observability overhead, determinism, and forensic integrity.
//!
//! Three claims about the flight recorder / audit chain / SLO watchdog
//! stack, measured on the E17 telemetry echo workload:
//!
//! - **Overhead**: arming the recorder and watchdog may cost at most 3%
//!   virtual cycles per echoed record versus the disarmed control. (The
//!   recorder never charges the lane clocks, so the honest expectation
//!   is a ratio of exactly 1.0 — the gate exists to catch anyone who
//!   later puts observation on the virtual-time books.)
//! - **Determinism**: the event log, the Chrome-trace export, and the
//!   audit log are byte-identical across same-seed reruns *and* between
//!   the serial host and `.parallel(4)` — observability inherits the
//!   fork/absorb determinism contract of telemetry.
//! - **Forensics**: the hash-chained audit stream verifies end to end on
//!   every armed world, every adversary-matrix verdict lands in the
//!   chain, and a single mutated record is pinpointed by link index.
//!
//! Writes `BENCH_observe.json` for CI assertion. Usage:
//! `exp_observe [--quick]`.

use cio::attacks::{audit_chain_tamper, run_matrix};
use cio::world::{BoundaryKind, World, WorldOptions};
use cio_bench::micro::{json_array, JsonObj};
use cio_bench::{bench_opts, print_table, telemetry_echo_world_with};

/// Echo workload shape (flows, rounds, payload bytes).
fn shape(quick: bool) -> (usize, u32, usize) {
    if quick {
        (4, 8, 512)
    } else {
        (8, 24, 512)
    }
}

fn observe_opts(observe: bool, parallel: usize) -> WorldOptions {
    WorldOptions {
        queues: 4,
        telemetry: true,
        observe,
        parallel,
        ..bench_opts()
    }
}

/// Runs the echo workload and returns the finished world plus its total
/// virtual time in cycles.
fn run_echo(observe: bool, parallel: usize, quick: bool) -> (World, u64) {
    let (flows, rounds, size) = shape(quick);
    let w = telemetry_echo_world_with(observe_opts(observe, parallel), flows, rounds, size)
        .expect("E22 echo workload failed");
    let elapsed = w.clock().now().get();
    (w, elapsed)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (flows, rounds, size) = shape(quick);
    let records = u64::from(rounds) * flows as u64;

    // Overhead: disarmed control vs armed, identical seed and workload.
    let (_, disarmed_cycles) = run_echo(false, 0, quick);
    let (armed, armed_cycles) = run_echo(true, 0, quick);
    let overhead_ratio = armed_cycles as f64 / disarmed_cycles.max(1) as f64;
    let cycles_per_record = armed_cycles as f64 / records as f64;

    // Determinism: same-seed rerun, then the 4-thread host.
    let serial_events = armed.flight().event_log();
    let serial_trace = armed.chrome_trace();
    let serial_audit = armed.flight().audit_log();
    let (rerun, _) = run_echo(true, 0, quick);
    let rerun_ok = rerun.flight().event_log() == serial_events
        && rerun.chrome_trace() == serial_trace
        && rerun.flight().audit_log() == serial_audit;
    let (par, par_cycles) = run_echo(true, 4, quick);
    let parallel_ok = par.flight().event_log() == serial_events
        && par.chrome_trace() == serial_trace
        && par.flight().audit_log() == serial_audit;
    let exports_deterministic = rerun_ok && parallel_ok;

    // Forensics: chains verify on both hosts, the adversary matrix seals
    // every verdict, and tampering is pinpointed.
    let chains_verify =
        armed.flight().verify_audit().is_ok() && par.flight().verify_audit().is_ok();
    let reports = run_matrix(&[BoundaryKind::L2CioRing]).expect("E22 adversary matrix failed");
    let verdicts_sealed = reports.iter().all(|r| r.audit_ok);
    let tamper = audit_chain_tamper().expect("E22 tamper scenario failed");
    let audit_chain_ok =
        chains_verify && verdicts_sealed && tamper.clean_ok && tamper.flagged_exact;

    let slo_breaches = armed.meter().snapshot().slo_breaches;
    let events_dropped = armed.flight().total_dropped();

    let rows = vec![
        vec![
            "disarmed".into(),
            "0".into(),
            disarmed_cycles.to_string(),
            format!("{:.0}", disarmed_cycles as f64 / records as f64),
            "-".into(),
            "-".into(),
        ],
        vec![
            "armed".into(),
            "0".into(),
            armed_cycles.to_string(),
            format!("{cycles_per_record:.0}"),
            armed.flight().audit_records().len().to_string(),
            slo_breaches.to_string(),
        ],
        vec![
            "armed".into(),
            "4".into(),
            par_cycles.to_string(),
            format!("{:.0}", par_cycles as f64 / records as f64),
            par.flight().audit_records().len().to_string(),
            par.meter().snapshot().slo_breaches.to_string(),
        ],
    ];
    print_table(
        &format!(
            "E22 — observability on {flows} flows x {rounds} rounds of {size} B \
             (virtual time, 4 queues)"
        ),
        &[
            "recorder",
            "threads",
            "cycles",
            "cyc/record",
            "audit links",
            "slo breaches",
        ],
        &rows,
    );

    println!(
        "\nReading: observation stays off the virtual-time books — the recorder \
         writes to preallocated rings and the watchdog reads histograms the \
         dataplane already maintains, so the armed run costs {overhead_ratio:.3}x \
         the disarmed one (gate: <= 1.03x). The exports are fork/absorbed in \
         queue order like telemetry, so serial, rerun, and 4-thread logs are \
         byte-identical; the audit chain over {} security events verifies on \
         both hosts and a single mutated link is named by index ({}/{}).",
        armed.flight().audit_records().len(),
        tamper.tampered_link,
        tamper.chain_len,
    );

    assert!(
        overhead_ratio <= 1.03,
        "armed recorder cost {overhead_ratio:.4}x > 1.03x the disarmed control"
    );
    assert!(
        exports_deterministic,
        "exports diverged (rerun_ok={rerun_ok}, parallel_ok={parallel_ok})"
    );
    assert!(
        audit_chain_ok,
        "audit chain failed (verify={chains_verify}, sealed={verdicts_sealed}, tamper={tamper:?})"
    );
    assert_eq!(
        events_dropped, 0,
        "flight ring overflowed on the echo workload"
    );

    let doc = JsonObj::new()
        .str("bench", "observe")
        .str("mode", if quick { "quick" } else { "full" })
        .int("flows", flows as u64)
        .int("rounds", u64::from(rounds))
        .int("size", size as u64)
        .raw(
            "runs",
            json_array([
                JsonObj::new()
                    .str("recorder", "disarmed")
                    .int("threads", 0)
                    .int("cycles", disarmed_cycles)
                    .finish(),
                JsonObj::new()
                    .str("recorder", "armed")
                    .int("threads", 0)
                    .int("cycles", armed_cycles)
                    .int("audit_links", armed.flight().audit_records().len() as u64)
                    .int("slo_breaches", slo_breaches)
                    .int("events_dropped", events_dropped)
                    .finish(),
                JsonObj::new()
                    .str("recorder", "armed")
                    .int("threads", 4)
                    .int("cycles", par_cycles)
                    .int("audit_links", par.flight().audit_records().len() as u64)
                    .finish(),
            ]),
        )
        .raw(
            "observe",
            JsonObj::new()
                .f64("overhead_ratio", overhead_ratio)
                .f64("cycles_per_record", cycles_per_record)
                .int("exports_deterministic", u64::from(exports_deterministic))
                .int("audit_chain_ok", u64::from(audit_chain_ok))
                .int("verdicts_sealed", u64::from(verdicts_sealed))
                .int("tamper_chain_len", tamper.chain_len as u64)
                .int("tamper_flagged_link", tamper.tampered_link as u64)
                .int("slo_breaches", slo_breaches)
                .int("events_dropped", events_dropped)
                .finish(),
        )
        .finish();
    std::fs::write("BENCH_observe.json", doc + "\n").expect("write BENCH_observe.json");
    println!("wrote BENCH_observe.json");
}
