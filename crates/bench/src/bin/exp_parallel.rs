//! E20 — thread-per-queue wall-clock scaling of the host dataplane.
//!
//! Every earlier queue experiment (E16, the bench_dataplane multiqueue
//! smoke) measures *virtual-time* scaling: one OS thread simulates all
//! queues and the lane scheduler advances the clock by the busiest lane.
//! E20 measures the real thing: `QUEUES` seal-in-slot record pipelines —
//! cTLS seal directly into a reserved cio-ring slot, host-side in-place
//! consume, decapsulation through the tunnel gateway onto its network
//! segment — all in **one shared lock-striped [`GuestMemory`]**, sharded
//! over 1/2/4 OS threads exactly like the `World::builder(..).parallel(n)`
//! host (thread `t` owns queues `t`, `t + n`, ...). Each queue's ring and
//! payload area live on their own memory stripes, so the per-record
//! critical section is one uncontended stripe lock.
//!
//! Reported per thread count: wall-clock records/s aggregate over all
//! queues, and the speedup over the single-thread sweep. The acceptance
//! bar (>= 2.5x at 4 threads, >= 1.5x in `--quick` CI runs) is asserted
//! only when the machine actually has >= 4 cores —
//! [`std::thread::available_parallelism`] is reported honestly in the
//! JSON artifact either way; on smaller hosts the assertion degrades to
//! "threading must not collapse throughput".
//!
//! A second section times the full simulated world (8 RSS-steered flows,
//! 4 queues) with host servicing on the stepping thread vs on 4 worker
//! threads — informational, since the world's guest side and scheduler
//! remain single-threaded. Usage: `exp_parallel [--quick]`.

use cio::world::speer::TunnelGateway;
use cio::world::{BoundaryKind, WorldOptions};
use cio_bench::micro::{json_array, JsonObj};
use cio_bench::{bench_opts, multi_stream_download, print_table};
use cio_ctls::{Channel, SimHooks, RECORD_OVERHEAD};
use cio_mem::{GuestAddr, GuestMemory, GuestView, HostView, PAGE_SIZE};
use cio_netstack::{MacAddr, NetDevice, PairDevice};
use cio_sim::{Clock, CostModel, Meter, Telemetry};
use cio_vring::cioring::{CioRing, Consumer, DataMode, Producer, RingConfig};
use std::hint::black_box;
use std::sync::Barrier;
use std::time::Instant;

const QUEUES: usize = 4;
const PAYLOAD: usize = 1024;
/// Pages reserved per queue: 4 stripes of 64 pages, ring on the first
/// stripe, payload area starting on the second — two queues never share
/// a stripe, so worker threads never contend on a memory lock.
const REGION_PAGES: usize = 256;
const AREA_OFFSET_PAGES: usize = 64;

/// One queue's end-to-end record pipeline (guest seal-in-slot -> ring ->
/// host in-place consume -> gateway -> network segment), self-contained
/// so it can move to its owning worker thread.
struct QueuePipeline {
    producer: Producer<GuestView>,
    consumer: Consumer<HostView>,
    guest: Channel,
    gw: TunnelGateway,
    segment: PairDevice,
    payload: Vec<u8>,
}

impl QueuePipeline {
    fn cycle(&mut self) {
        let grant = self
            .producer
            .reserve(PAYLOAD + RECORD_OVERHEAD)
            .expect("slot reservation");
        let n = self
            .producer
            .with_slot_mut(&grant, |slot| {
                self.guest.seal_into_slot(&self.payload, slot)
            })
            .expect("slot access")
            .expect("seal in slot");
        self.producer.commit(grant, n).expect("commit");
        let accepted = self
            .consumer
            .consume_in_place(|record| self.gw.ingress(record))
            .expect("consume")
            .expect("record available");
        assert!(accepted, "gateway must accept the record");
        let frame = self.segment.receive().expect("frame on segment");
        black_box(&frame);
    }
}

/// Builds `QUEUES` pipelines in one shared striped guest memory, each
/// with a private lane clock (the shared meter is atomic adds).
fn build_pipelines() -> Vec<QueuePipeline> {
    let meter = Meter::new();
    let cost = CostModel::default();
    let mem = GuestMemory::new(
        QUEUES * REGION_PAGES,
        Clock::new(),
        cost.clone(),
        meter.clone(),
    );
    (0..QUEUES)
        .map(|q| {
            let qclock = Clock::new();
            let qmem = mem.with_clock(qclock.clone());
            let ring_base = GuestAddr((q * REGION_PAGES * PAGE_SIZE) as u64);
            let area_base = GuestAddr(((q * REGION_PAGES + AREA_OFFSET_PAGES) * PAGE_SIZE) as u64);
            let cfg = RingConfig {
                mtu: 2048,
                mode: DataMode::SharedArea,
                ..RingConfig::default()
            };
            let ring = CioRing::new(cfg, ring_base, area_base).expect("ring config");
            mem.share_range(ring_base, ring.ring_bytes())
                .expect("share ring");
            mem.share_range(area_base, ring.area_bytes())
                .expect("share area");
            let producer = Producer::new(ring.clone(), qmem.guest()).expect("producer");
            let consumer = Consumer::new(ring, qmem.host()).expect("consumer");
            let hooks = SimHooks {
                clock: qclock,
                cost: cost.clone(),
                meter: meter.clone(),
                telemetry: Telemetry::disabled(),
            };
            let seed = (q as u8).wrapping_mul(17);
            let guest = Channel::from_secrets(
                [seed.wrapping_add(3); 32],
                [seed.wrapping_add(4); 32],
                true,
                Some(hooks),
            );
            let gw_chan = Channel::from_secrets(
                [seed.wrapping_add(3); 32],
                [seed.wrapping_add(4); 32],
                false,
                None,
            );
            let (gw_side, segment) = PairDevice::pair([MacAddr([0xA; 6]), MacAddr([0xB; 6])], 2048);
            QueuePipeline {
                producer,
                consumer,
                guest,
                gw: TunnelGateway::new(gw_chan, gw_side),
                segment,
                payload: vec![0x42u8; PAYLOAD],
            }
        })
        .collect()
}

/// Pushes `records_per_queue` records through every queue with the
/// pipelines sharded over `threads` OS threads; returns aggregate
/// wall-clock records/s (warm-up excluded from the timed window).
fn run_sharded(threads: usize, records_per_queue: u64) -> f64 {
    let pipelines = build_pipelines();
    let mut shards: Vec<Vec<QueuePipeline>> = (0..threads).map(|_| Vec::new()).collect();
    for (q, p) in pipelines.into_iter().enumerate() {
        shards[q % threads].push(p);
    }
    let barrier = Barrier::new(threads + 1);
    let elapsed = std::thread::scope(|s| {
        let barrier = &barrier;
        let handles: Vec<_> = shards
            .into_iter()
            .map(|mut shard| {
                s.spawn(move || {
                    for p in &mut shard {
                        for _ in 0..32 {
                            p.cycle(); // warm-up: buffers to high-water marks
                        }
                    }
                    barrier.wait();
                    for _ in 0..records_per_queue {
                        for p in &mut shard {
                            p.cycle();
                        }
                    }
                })
            })
            .collect();
        barrier.wait();
        let t = Instant::now();
        for h in handles {
            h.join().expect("worker thread");
        }
        t.elapsed()
    });
    let total = records_per_queue * QUEUES as u64;
    total as f64 / elapsed.as_secs_f64()
}

/// Wall-clock milliseconds for the full simulated world workload with
/// `parallel` host worker threads (0 = serial stepping).
fn world_wall_ms(parallel: usize, per_flow: u64) -> f64 {
    let opts = WorldOptions {
        queues: QUEUES,
        parallel,
        ..bench_opts()
    };
    let t = Instant::now();
    let r = multi_stream_download(BoundaryKind::L2CioRing, opts, 8, per_flow, 4096)
        .expect("E20 world workload");
    black_box(r.app_bytes);
    t.elapsed().as_secs_f64() * 1e3
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let records_per_queue: u64 = if quick { 4_000 } else { 75_000 };
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);

    let thread_counts: [usize; 3] = [1, 2, 4];
    let mut recs = Vec::new();
    for &t in &thread_counts {
        recs.push(run_sharded(t, records_per_queue));
    }
    let base = recs[0];
    let rows: Vec<Vec<String>> = thread_counts
        .iter()
        .zip(&recs)
        .map(|(&t, &r)| {
            vec![
                t.to_string(),
                format!("{r:.0}"),
                format!("{:.2}x", r / base),
            ]
        })
        .collect();
    print_table(
        &format!(
            "E20 — thread-per-queue wall-clock scaling \
             ({QUEUES} queues, 1 KiB records, {cores} cores available)"
        ),
        &["threads", "records/s", "speedup"],
        &rows,
    );
    let speedup4 = recs[2] / base;

    println!(
        "\nReading: the pipelines share one lock-striped guest memory; each \
         queue's ring and payload area sit on private stripes, so scaling is \
         bounded only by cores and the shared atomic meter. The virtual-time \
         lane scheduler (E16) predicted this headroom; E20 cashes it in."
    );

    let per_flow: u64 = if quick { 8 * 1024 } else { 32 * 1024 };
    let world_serial = world_wall_ms(0, per_flow);
    let world_parallel = world_wall_ms(QUEUES, per_flow);
    println!(
        "\nFull world (8 flows x {} KiB, 4 queues): host-on-stepping-thread \
         {world_serial:.1} ms, host-on-4-worker-threads {world_parallel:.1} ms \
         (informational: the guest side and scheduler stay single-threaded, \
         so Amdahl caps the world-level win)",
        per_flow / 1024
    );

    let bar = if quick { 1.5 } else { 2.5 };
    if cores >= 4 {
        println!("\n4-thread speedup: {speedup4:.2}x (target: >= {bar}x on >= 4 cores)");
        assert!(
            speedup4 >= bar,
            "thread-per-queue scaling regressed: {speedup4:.2}x < {bar}x on a {cores}-core host"
        );
    } else {
        println!(
            "\n4-thread speedup: {speedup4:.2}x — {cores} core(s) available, \
             the >= {bar}x bar needs >= 4; asserting no contention collapse instead"
        );
        assert!(
            speedup4 >= 0.4,
            "threading collapsed throughput on a {cores}-core host: {speedup4:.2}x"
        );
    }

    let doc = JsonObj::new()
        .str("bench", "parallel")
        .str("mode", if quick { "quick" } else { "full" })
        .int("cores", cores as u64)
        .int("queues", QUEUES as u64)
        .int("payload", PAYLOAD as u64)
        .int("records_per_queue", records_per_queue)
        .raw(
            "scaling",
            json_array(thread_counts.iter().zip(&recs).map(|(&t, &r)| {
                JsonObj::new()
                    .int("threads", t as u64)
                    .f64("records_per_sec", r)
                    .f64("speedup", r / base)
                    .finish()
            })),
        )
        .f64("speedup_4t", speedup4)
        .f64("bar", bar)
        .int("bar_asserted", u64::from(cores >= 4))
        .raw(
            "world",
            JsonObj::new()
                .int("flows", 8)
                .int("per_flow_bytes", per_flow)
                .f64("wall_ms_serial_stepping", world_serial)
                .f64("wall_ms_parallel_host", world_parallel)
                .finish(),
        )
        .finish();
    std::fs::write("BENCH_parallel.json", doc + "\n").expect("write BENCH_parallel.json");
    println!("wrote BENCH_parallel.json");
}
