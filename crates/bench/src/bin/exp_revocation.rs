//! E7 — copy vs. revocation on the receive path (§3.2): where is the
//! crossover, and how does it move with platform costs?

use cio::policy::CopyPolicy;
use cio_bench::transport::rx_delivery;
use cio_bench::{fmt_cycles, print_table};
use cio_sim::{CostModel, Cycles};

fn main() {
    let cost = CostModel::default();
    let frames = 64u32;
    let sizes = [
        1024usize,
        4 * 1024,
        8 * 1024,
        16 * 1024,
        32 * 1024,
        64 * 1024,
        128 * 1024,
    ];

    let mut rows = Vec::new();
    let mut crossover: Option<usize> = None;
    for &size in &sizes {
        let copy = rx_delivery(false, size, frames, cost.clone());
        let revoke = rx_delivery(true, size, frames, cost.clone());
        let c = copy.cycles_per_frame(u64::from(frames));
        let r = revoke.cycles_per_frame(u64::from(frames));
        if r < c && crossover.is_none() {
            crossover = Some(size);
        }
        rows.push(vec![
            (size / 1024).to_string() + " KiB",
            fmt_cycles(Cycles(c)),
            fmt_cycles(Cycles(r)),
            if r < c { "revoke" } else { "copy" }.to_string(),
            revoke.meter.pages_revoked.to_string(),
            copy.meter.bytes_copied.to_string(),
        ]);
    }

    print_table(
        "E7 — receive delivery: early copy vs. page revocation (cycles/delivery)",
        &[
            "payload",
            "copy cyc",
            "revoke cyc",
            "winner",
            "pages revoked",
            "bytes copied",
        ],
        &rows,
    );

    let policy = CopyPolicy::from_cost_model(&cost);
    println!(
        "\nMeasured crossover: {}; analytic policy threshold (unshare+reshare vs copy): {} bytes.",
        crossover
            .map(|s| format!("{} KiB", s / 1024))
            .unwrap_or_else(|| "none in range".into()),
        policy.revoke_threshold
    );

    // Sensitivity: how the crossover moves with page-operation cost.
    let mut srows = Vec::new();
    for unshare in [200u64, 400, 600, 1_000, 2_000] {
        let mut c = cost.clone();
        c.page_unshare = Cycles(unshare);
        c.page_share = Cycles(unshare);
        let p = CopyPolicy::from_cost_model(&c);
        srows.push(vec![
            unshare.to_string(),
            if p.revoke_threshold == usize::MAX {
                "never".into()
            } else {
                format!("{} B", p.revoke_threshold)
            },
        ]);
    }
    print_table(
        "E7b — crossover sensitivity to per-page share/unshare cost",
        &["page op (cycles)", "revoke wins from"],
        &srows,
    );
    println!(
        "\nReading: revocation beats copying once payloads span enough pages to amortize \
         the fixed TLB shootdown, and the threshold tracks the platform's RMP-update \
         cost — the 'explore when this becomes faster than copies' question of §3.2, \
         answered as a policy constant derived from the cost model."
    );
}
