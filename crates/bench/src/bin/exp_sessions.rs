//! E21 — massive-session control plane: 10k+ churning SecureStreams
//! behind the RSS-sharded, generation-checked flow table.
//!
//! The [`SessionPlane`] harness runs a closed-loop population of full
//! cTLS sessions (batched X25519 handshakes on open, seal-in-slot echo
//! round trips while live, per-session key rotation every
//! `REKEY_RECORDS` records, probabilistic close + slot reclamation) at
//! 100 → 1 000 → 10 000 concurrent sessions. Reported per population:
//!
//! - **Lookup O(1)**: the flow table must satisfy `probes == lookups`
//!   (direct-mapped, single probe) at every population, and the virtual
//!   cycles spent per echoed record may grow at most 10% from 100 to
//!   10 000 sessions — lookups that scaled with population would show
//!   up here immediately.
//! - **p99 SLO**: the worst shard's p99 echo RTT (from the E17 telemetry
//!   histograms) must stay under the session SLO.
//! - **Reclamation**: flow-table slot capacity stays bounded by peak
//!   concurrency while `created` keeps growing — churn turns slots over
//!   instead of leaking them.
//!
//! Writes `BENCH_sessions.json` for CI assertion. Usage:
//! `exp_sessions [--quick]`.

use cio::session::{Arrival, LoadGenConfig, SessionPlane, SessionPlaneConfig};
use cio_bench::micro::{json_array, JsonObj};
use cio_bench::{fmt_cycles, print_table};
use cio_sim::Cycles;

/// Per-session key-rotation interval, in records.
const REKEY_RECORDS: u64 = 8;
/// Per-session, per-tick close probability: at 10k sessions this is
/// ~1 000 closes (and 1 000 batched handshakes) per tick — churn as
/// metered steady state.
const CHURN: f64 = 0.1;
/// The session SLO: worst-shard p99 echo RTT, virtual cycles. Measured
/// headroom is ~4x (p99 lands near 6k cycles); the bar catches a
/// dataplane regression without flaking on record-size tail draws.
const SLO_P99_CYCLES: u64 = 25_000;

struct Row {
    population: usize,
    ticks: u64,
    created: u64,
    reclaimed: u64,
    peak_live: u64,
    capacity: u64,
    lookups: u64,
    probes: u64,
    cycles_per_record: f64,
    p99: u64,
    max_epoch: u64,
    handshakes: u64,
    handshake_batches: u64,
}

fn run_population(population: usize, ticks: u64) -> Row {
    let cfg = SessionPlaneConfig {
        shards: 4,
        load: LoadGenConfig {
            seed: 0xE21,
            arrival: Arrival::Closed { population },
            churn: CHURN,
            size_min: 64,
            size_max: 1_280,
            size_alpha: 1.2,
        },
        rekey_interval: Some(REKEY_RECORDS),
        handshake_batch: 16,
    };
    let mut plane = SessionPlane::new(cfg).expect("session plane");
    plane.run(ticks).expect("E21 workload failed");
    let r = plane.report();

    // Worst shard wins: the SLO is not an average.
    let p99 = (0..4)
        .map(|s| plane.telemetry().rtt_histogram(s).p99())
        .max()
        .unwrap_or(0);

    assert_eq!(
        r.probes, r.lookups,
        "flow table probed more than once per lookup at {population} sessions"
    );
    assert!(
        r.capacity <= r.peak_live,
        "slot capacity {} exceeds peak concurrency {} at {population} sessions",
        r.capacity,
        r.peak_live
    );
    assert!(
        r.created > r.capacity,
        "churn never exercised reclamation at {population} sessions"
    );
    assert!(
        r.max_epoch >= 1,
        "no session ever rotated its keys at {population} sessions"
    );
    assert_eq!(r.live + r.reclaimed, r.created, "session accounting leaked");

    Row {
        population,
        ticks: r.ticks,
        created: r.created,
        reclaimed: r.reclaimed,
        peak_live: r.peak_live,
        capacity: r.capacity,
        lookups: r.lookups,
        probes: r.probes,
        cycles_per_record: r.elapsed.get() as f64 / r.records_echoed.max(1) as f64,
        p99,
        max_epoch: r.max_epoch,
        handshakes: r.handshakes,
        handshake_batches: r.handshake_batches,
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let ticks: u64 = if quick { 12 } else { 24 };
    let populations: &[usize] = &[100, 1_000, 10_000];

    let rows: Vec<Row> = populations
        .iter()
        .map(|&p| run_population(p, ticks))
        .collect();

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.population.to_string(),
                r.created.to_string(),
                r.capacity.to_string(),
                r.peak_live.to_string(),
                format!("{:.0}", r.cycles_per_record),
                fmt_cycles(Cycles(r.p99)),
                r.max_epoch.to_string(),
                format!(
                    "{:.1}",
                    r.handshakes as f64 / r.handshake_batches.max(1) as f64
                ),
            ]
        })
        .collect();
    print_table(
        &format!(
            "E21 — session churn at scale ({ticks} ticks, {CHURN} churn/tick, \
             rekey every {REKEY_RECORDS} records, virtual time)"
        ),
        &[
            "sessions",
            "created",
            "slots",
            "peak",
            "cyc/record",
            "p99 RTT",
            "max epoch",
            "hs/batch",
        ],
        &table,
    );

    // The O(1) claim across two orders of magnitude of population.
    let base = rows[0].cycles_per_record;
    let worst_ratio = rows
        .iter()
        .map(|r| r.cycles_per_record / base)
        .fold(0.0f64, f64::max);
    let lookup_o1 = rows.iter().all(|r| r.probes == r.lookups) && worst_ratio <= 1.10;
    let worst_p99 = rows.iter().map(|r| r.p99).max().unwrap_or(0);

    println!(
        "\nReading: the handle is the lookup — shard from the low bits, slot \
         from the high bits, generation check, done. Slots are reclaimed LIFO \
         on close, so the table's footprint follows peak concurrency while \
         `created` runs away from it; handshakes amortize one server \
         keygen across each batch of ClientHellos; every session rotates \
         keys mid-life without a visible seam in the echo stream."
    );
    println!(
        "\ncycles/record at 10k vs 100 sessions: {worst_ratio:.3}x \
         (target: <= 1.10x); worst-shard p99 RTT {} (SLO: {})",
        fmt_cycles(Cycles(worst_p99)),
        fmt_cycles(Cycles(SLO_P99_CYCLES)),
    );
    assert!(
        worst_ratio <= 1.10,
        "per-record cost scaled with population: {worst_ratio:.3}x > 1.10x"
    );
    assert!(
        worst_p99 <= SLO_P99_CYCLES,
        "p99 RTT {worst_p99} blew the {SLO_P99_CYCLES}-cycle SLO"
    );

    let doc = JsonObj::new()
        .str("bench", "sessions")
        .str("mode", if quick { "quick" } else { "full" })
        .int("ticks", ticks)
        .f64("churn", CHURN)
        .int("rekey_records", REKEY_RECORDS)
        .int("slo_p99_cycles", SLO_P99_CYCLES)
        .raw(
            "populations",
            json_array(rows.iter().map(|r| {
                JsonObj::new()
                    .int("population", r.population as u64)
                    .int("ticks", r.ticks)
                    .int("created", r.created)
                    .int("reclaimed", r.reclaimed)
                    .int("peak_live", r.peak_live)
                    .int("capacity", r.capacity)
                    .int("lookups", r.lookups)
                    .int("probes", r.probes)
                    .f64("cycles_per_record", r.cycles_per_record)
                    .int("p99_rtt_cycles", r.p99)
                    .int("max_epoch", r.max_epoch)
                    .int("handshakes", r.handshakes)
                    .int("handshake_batches", r.handshake_batches)
                    .finish()
            })),
        )
        .raw(
            "sessions",
            JsonObj::new()
                .int("lookup_o1", u64::from(lookup_o1))
                .f64("cycles_per_record_ratio", worst_ratio)
                .int("p99_rtt_cycles", worst_p99)
                .int(
                    "slots_bounded_by_peak",
                    u64::from(rows.iter().all(|r| r.capacity <= r.peak_live)),
                )
                .finish(),
        )
        .finish();
    std::fs::write("BENCH_sessions.json", doc + "\n").expect("write BENCH_sessions.json");
    println!("wrote BENCH_sessions.json");
}
