//! E12 — the storage generalization (§3.3): block-level vs. file-level
//! boundary on the same file workload.
//!
//! The block-in-TEE numbers here are the **storage_v1** baseline: the
//! serial transport (one staged request per publish, polling rings) this
//! repo shipped before storage reached dataplane parity. E24 (`exp_kv`)
//! measures the batched zero-copy path against exactly this baseline.

use cio::storage::{StorageBoundary, StorageWorld};
use cio_bench::{fmt_cycles, print_table};
use cio_sim::CostModel;

fn run_workload(b: StorageBoundary, io_size: usize) -> Vec<String> {
    let mut w = StorageWorld::new(b, CostModel::default()).expect("storage world");
    let total = 256 * 1024usize;
    let id = w.create("workload.dat").expect("create");
    let chunk = vec![0xABu8; io_size];

    let t0 = w.tee().clock().now();
    let m0 = w.tee().meter().snapshot();
    let mut off = 0u64;
    while (off as usize) < total {
        w.write(id, off, &chunk).expect("write");
        off += io_size as u64;
    }
    let mut read_back = 0usize;
    while read_back < total {
        let got = w.read(id, read_back as u64, io_size).expect("read");
        read_back += got.len();
    }
    let elapsed = w.tee().clock().since(t0);
    let meter = w.tee().meter().snapshot().delta(&m0);
    let obs = w.recorder().summary();

    vec![
        b.to_string(),
        io_size.to_string(),
        fmt_cycles(elapsed),
        format!(
            "{:.2}",
            cio_sim::gbps(2 * total as u64, elapsed, CostModel::default().ghz)
        ),
        meter.host_transitions.to_string(),
        meter.aead_bytes.to_string(),
        obs.events.to_string(),
        obs.by_kind.keys().copied().collect::<Vec<_>>().join(","),
    ]
}

fn main() {
    let mut rows = Vec::new();
    for io_size in [4 * 1024usize, 16 * 1024, 64 * 1024] {
        for b in [StorageBoundary::BlockInTee, StorageBoundary::FileOnHost] {
            rows.push(run_workload(b, io_size));
        }
    }
    print_table(
        "E12 — storage boundaries (storage_v1 serial transport): write+read 256 KiB, by I/O size",
        &[
            "boundary",
            "I/O B",
            "cycles",
            "Gbit/s",
            "exits",
            "AEAD bytes",
            "host events",
            "host sees",
        ],
        &rows,
    );

    // Security contrast.
    let mut rows = Vec::new();
    for b in [StorageBoundary::BlockInTee, StorageBoundary::FileOnHost] {
        let mut w = StorageWorld::new(b, CostModel::default()).unwrap();
        let id = w.create("ledger").unwrap();
        w.write(id, 0, &[7u8; 20_000]).unwrap();
        for lba in 6..12 {
            w.host_tamper(lba, 13, 0x20).unwrap();
        }
        let outcome = match w.read(id, 0, 20_000) {
            Err(_) => "tamper DETECTED (read refused)".to_string(),
            Ok(data) if data.iter().any(|&b| b != 7) => {
                "tamper UNDETECTED (falsified data served)".to_string()
            }
            Ok(_) => "tamper missed the file".to_string(),
        };
        rows.push(vec![b.to_string(), outcome]);
    }
    print_table(
        "E12b — host tampers with 6 disk blocks",
        &["boundary", "outcome"],
        &rows,
    );

    println!(
        "\nReading: the block boundary pays AEAD on every block but exposes only \
         blk.read/blk.write events and detects tampering; the file boundary is \
         cheaper and fully compatible but leaks every file operation, costs an exit \
         per call, and serves falsified data without noticing — the same trade §3.1 \
         resolves for networking, transplanted to storage as §3.3 predicts."
    );
}
