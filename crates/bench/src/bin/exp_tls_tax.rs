//! Ablation — the mandatory TLS layer (§3.2): what end-to-end protection
//! costs on each boundary, and what removing it would forfeit.
//!
//! The paper *mandates* cTLS above the L5 boundary; this ablation measures
//! the premium so the mandate has a price tag, then shows the forfeit: a
//! plaintext dual-boundary workload survives the transport but hands every
//! payload byte to a compromised I/O path.

use cio::world::{BoundaryKind, WorldOptions};
use cio_bench::{bench_opts, echo_latency, fmt_cycles, print_table};

fn main() {
    let mut rows = Vec::new();
    for kind in [
        BoundaryKind::DualBoundary,
        BoundaryKind::L2CioRing,
        BoundaryKind::L5Host,
    ] {
        for size in [256usize, 4096] {
            let tls = WorldOptions {
                app_tls: true,
                ..bench_opts()
            };
            let plain = WorldOptions {
                app_tls: false,
                ..bench_opts()
            };
            let (tls_rtt, tls_run) = echo_latency(kind, tls, size, 16).unwrap();
            let (plain_rtt, _) = echo_latency(kind, plain, size, 16).unwrap();
            rows.push(vec![
                kind.to_string(),
                size.to_string(),
                fmt_cycles(plain_rtt),
                fmt_cycles(tls_rtt),
                format!(
                    "{:.1}%",
                    100.0 * (tls_rtt.get() as f64 - plain_rtt.get() as f64)
                        / plain_rtt.get() as f64
                ),
                tls_run.meter.aead_bytes.to_string(),
            ]);
        }
    }
    print_table(
        "Ablation — the mandatory TLS layer: echo RTT with and without cTLS",
        &[
            "design",
            "msg B",
            "plaintext RTT",
            "cTLS RTT",
            "premium",
            "AEAD bytes",
        ],
        &rows,
    );

    println!(
        "\nReading: the premium scales with payload (AEAD at ~1 B/cycle: ~9% of a \
         256 B RTT, ~55% at 4 KiB under this cost model — cheaper with AES-NI-class \
         hardware) — and it is what makes the ternary trust model work at all: \
         without it, §3.1's claim that a compromised I/O stack gains only \
         observability is false, since the stack sees plaintext. The paper is right \
         to make it mandatory rather than optional."
    );
}
