//! E9 — zero-copy send across the intra-TEE L5 boundary (§3.2):
//! trusted-component-allocates vs. an app→stack payload copy.

use cio::dev::{RecvMode, SendMode};
use cio::world::{BoundaryKind, WorldOptions};
use cio_bench::{bench_opts, echo_latency, fmt_cycles, print_table};

fn main() {
    let sizes = [256usize, 1024, 4096, 16 * 1024];
    let rounds = 16u32;

    let mut rows = Vec::new();
    for &size in &sizes {
        let zc_opts = WorldOptions {
            l5_app_copy: false,
            send_mode: SendMode::ZeroCopy,
            recv_mode: RecvMode::Copy,
            ..bench_opts()
        };
        let cp_opts = WorldOptions {
            l5_app_copy: true,
            send_mode: SendMode::Copy,
            recv_mode: RecvMode::Copy,
            ..bench_opts()
        };
        let (zc_rtt, zc) = echo_latency(BoundaryKind::DualBoundary, zc_opts, size, rounds).unwrap();
        let (cp_rtt, cp) = echo_latency(BoundaryKind::DualBoundary, cp_opts, size, rounds).unwrap();
        rows.push(vec![
            size.to_string(),
            fmt_cycles(zc_rtt),
            fmt_cycles(cp_rtt),
            format!(
                "{:.1}%",
                100.0 * (cp_rtt.get() as f64 - zc_rtt.get() as f64) / cp_rtt.get() as f64
            ),
            zc.meter.copies.to_string(),
            cp.meter.copies.to_string(),
            zc.meter.compartment_switches.to_string(),
        ]);
    }

    print_table(
        "E9 — dual boundary: zero-copy vs. copied send (echo RTT cycles)",
        &[
            "msg B",
            "zero-copy RTT",
            "copied RTT",
            "saving",
            "copies (zc)",
            "copies (cp)",
            "gate switches",
        ],
        &rows,
    );

    println!(
        "\nReading: because the I/O stack trusts the application (single distrust), the \
         app can allocate send buffers directly in the I/O domain — no pointer crosses \
         the boundary, no copy is needed, and the saving grows with message size. The \
         compartment switches (~2 per call at MPK cost) are the entire price of the \
         intra-TEE boundary."
    );
}
