//! E18 — seal-in-slot zero-copy ring (§3.2): copy counts and virtual-time
//! throughput for the staged record path (seal into a scratch, copy into
//! the ring) vs the in-slot path (seal directly where the consumer reads,
//! consume in place). Both run the same cTLS -> cio-ring -> tunnel-gateway
//! stack; only the data positioning differs.
//!
//! The in-slot rows must report exactly 0.00 staging copies per record —
//! the binary exits non-zero otherwise, which is the CI guard for the
//! zero-copy discipline. `--quick` shrinks the sweep for smoke runs.

use cio::world::speer::TunnelGateway;
use cio::world::{BoundaryKind, WorldOptions};
use cio_bench::{bench_opts, echo_latency, fmt_cycles, print_table};
use cio_ctls::{Channel, RecordScratch, SimHooks, RECORD_OVERHEAD};
use cio_mem::{CopyPolicy, GuestAddr, GuestMemory, PAGE_SIZE};
use cio_netstack::{MacAddr, NetDevice, PairDevice};
use cio_sim::{Clock, CostModel, Meter, MeterSnapshot};
use cio_vring::cioring::{CioRing, Consumer, DataMode, Producer, RingConfig};

struct Row {
    size: usize,
    in_slot: bool,
    cycles_per_rec: u64,
    gbps: f64,
    copies_per_rec: f64,
    bytes_copied: u64,
    bytes_zero_copy: u64,
}

/// Pushes `frames` records of `size` bytes through the full record/ring
/// stack on one path and returns the virtual-time cost and meter delta.
fn run_ring(size: usize, in_slot: bool, frames: u32) -> Row {
    let clock = Clock::new();
    let cost = CostModel::default();
    let meter = Meter::new();
    let cfg = RingConfig {
        slots: 16,
        mtu: 32 * 1024,
        mode: DataMode::SharedArea,
        area_size: 1 << 19, // 32 KiB stride at 16 slots
        ..RingConfig::default()
    };
    let area_pages = cfg.area_size as usize / PAGE_SIZE;
    let mem = GuestMemory::new(32 + area_pages, clock.clone(), cost.clone(), meter.clone());
    let ring =
        CioRing::new(cfg, GuestAddr(0), GuestAddr(16 * PAGE_SIZE as u64)).expect("ring config");
    mem.share_range(GuestAddr(0), ring.ring_bytes())
        .expect("share ring");
    mem.share_range(GuestAddr(16 * PAGE_SIZE as u64), ring.area_bytes())
        .expect("share area");
    let mut producer = Producer::new(ring.clone(), mem.guest()).expect("producer");
    let mut consumer = Consumer::new(ring, mem.host()).expect("consumer");

    let hooks = SimHooks {
        clock: clock.clone(),
        cost: cost.clone(),
        meter: meter.clone(),
        telemetry: cio_sim::Telemetry::disabled(),
    };
    let mut guest = Channel::from_secrets([3; 32], [4; 32], true, Some(hooks));
    let gw_chan = Channel::from_secrets([3; 32], [4; 32], false, None);
    let (gw_side, mut peer_side) =
        PairDevice::pair([MacAddr([0xA; 6]), MacAddr([0xB; 6])], 32 * 1024);
    let mut gw = TunnelGateway::new(gw_chan, gw_side);

    let payload = vec![0x42u8; size];
    let mut rec = RecordScratch::new();
    let mut blob: Vec<u8> = Vec::new();
    let m0 = meter.snapshot();
    let t0 = clock.now();
    for _ in 0..frames {
        if in_slot {
            let grant = producer
                .reserve(size + RECORD_OVERHEAD)
                .expect("slot reservation");
            let n = producer
                .with_slot_mut(&grant, |slot| guest.seal_into_slot(&payload, slot))
                .expect("slot access")
                .expect("seal in slot");
            producer.commit(grant, n).expect("commit");
            let accepted = consumer
                .consume_in_place(|record| gw.ingress(record))
                .expect("consume")
                .expect("record available");
            assert!(accepted, "gateway must accept the record");
        } else {
            guest.seal_into(&payload, &mut rec).expect("seal");
            producer.produce(rec.as_slice()).expect("produce");
            consumer
                .consume_into(&mut blob)
                .expect("consume")
                .expect("record available");
            assert!(gw.ingress(&blob), "gateway must accept the record");
        }
        let frame = peer_side.receive().expect("frame on segment");
        std::hint::black_box(&frame);
    }
    let elapsed = clock.since(t0);
    let d = meter.snapshot().delta(&m0);
    Row {
        size,
        in_slot,
        cycles_per_rec: elapsed.get() / u64::from(frames),
        gbps: cio_sim::gbps(u64::from(frames) * size as u64, elapsed, cost.ghz),
        copies_per_rec: copies_per_record(&d),
        bytes_copied: d.bytes_copied,
        bytes_zero_copy: d.bytes_zero_copy,
    }
}

fn copies_per_record(d: &MeterSnapshot) -> f64 {
    if d.ring_records == 0 {
        0.0
    } else {
        d.copies as f64 / d.ring_records as f64
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let frames: u32 = if quick { 64 } else { 512 };
    let sizes: &[usize] = if quick {
        &[256, 4096]
    } else {
        &[64, 256, 1024, 4096, 16384]
    };

    let mut rows = Vec::new();
    let mut in_slot_copies_clean = true;
    for &size in sizes {
        for in_slot in [false, true] {
            let r = run_ring(size, in_slot, frames);
            if r.in_slot && r.copies_per_rec != 0.0 {
                in_slot_copies_clean = false;
            }
            rows.push(r);
        }
    }

    print_table(
        "E18 — seal-in-slot zero-copy ring: staged vs in-slot positioning",
        &[
            "payload B",
            "path",
            "cyc/record",
            "Gbit/s",
            "copies/rec",
            "bytes copied",
            "bytes zero-copy",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.size.to_string(),
                    if r.in_slot { "in-slot" } else { "staged" }.to_string(),
                    fmt_cycles(cio_sim::Cycles(r.cycles_per_rec)),
                    format!("{:.2}", r.gbps),
                    format!("{:.2}", r.copies_per_rec),
                    r.bytes_copied.to_string(),
                    r.bytes_zero_copy.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );

    // End-to-end control: the same discipline through the whole Tunneled
    // world (guest stack, both rings, host backend, secure peer), flipped
    // by the world-level copy policy.
    let echo_rounds: u32 = if quick { 8 } else { 32 };
    let mut world_rows = Vec::new();
    let mut world_copies = [0u64; 2];
    for (i, (policy, name)) in [
        (CopyPolicy::CopyEarly, "staged (CopyEarly)"),
        (CopyPolicy::InPlace, "in-slot (InPlace)"),
    ]
    .into_iter()
    .enumerate()
    {
        let opts = WorldOptions {
            copy_policy: policy,
            ..bench_opts()
        };
        let (rt, r) =
            echo_latency(BoundaryKind::Tunneled, opts, 1024, echo_rounds).expect("tunneled echo");
        world_copies[i] = r.meter.copies;
        world_rows.push(vec![
            name.to_string(),
            fmt_cycles(rt),
            format!("{:.2}", copies_per_record(&r.meter)),
            r.meter.bytes_copied.to_string(),
            r.meter.bytes_zero_copy.to_string(),
        ]);
    }
    print_table(
        "E18 — tunneled world echo (1 KiB), staged vs in-slot policy",
        &[
            "policy",
            "cyc/round-trip",
            "copies/rec",
            "bytes copied",
            "bytes zero-copy",
        ],
        &world_rows,
    );

    println!(
        "\nReading: the staged path pays one metered copy per record on each side of the \
         boundary (seal into a scratch, copy into the slot; copy out, then open). The \
         in-slot path seals ciphertext directly where the consumer fetches it and opens \
         records in place under the memory lock, so steady state moves payload bytes \
         zero-copy in both directions — same interface validation, same single-fetch \
         discipline, fewer positioned bytes touched twice (§3.2 'copies as a first-class \
         citizen')."
    );

    if !in_slot_copies_clean {
        eprintln!("FAIL: in-slot path reported staging copies; zero-copy discipline broken");
        std::process::exit(1);
    }
    if world_copies[1] >= world_copies[0] {
        eprintln!(
            "FAIL: InPlace world copies ({}) not below CopyEarly ({})",
            world_copies[1], world_copies[0]
        );
        std::process::exit(1);
    }
    println!("\nPASS: in-slot steady state performed 0 staging copies per record");
}
