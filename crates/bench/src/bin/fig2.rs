//! Figure 2: remotely-exploitable CVEs in Linux `/net` per year.
//!
//! Regenerates the series by running the filter/group pipeline over the
//! record-level dataset (see EXPERIMENTS.md E1 for transcription caveats).

use cio_bench::print_table;
use cio_study::cve;

fn main() {
    let records = cve::dataset();
    let series = cve::remote_net_cves_per_year(&records);

    let rows: Vec<Vec<String>> = series
        .iter()
        .map(|(year, count)| {
            vec![
                year.to_string(),
                count.to_string(),
                "#".repeat(*count as usize),
            ]
        })
        .collect();
    print_table(
        "Figure 2 — remotely-exploitable CVEs in Linux /net per year",
        &["year", "CVEs", "bar"],
        &rows,
    );

    let total: u32 = series.iter().map(|(_, c)| c).sum();
    let records_scanned = records.len();
    println!(
        "\n{total} remote /net CVEs across {} years (from {records_scanned} scanned records; \
         absent years have none).",
        series.len()
    );
    println!("Paper's claim: the subsystem \"remains widely affected by remotely-exploitable vulnerabilities\" — sustained non-zero counts across two decades.");
}
