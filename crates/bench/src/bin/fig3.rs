//! Figure 3: distribution of hardening commits to the NetVSC driver.

use cio_bench::print_table;
use cio_study::hardening;

fn main() {
    let commits = hardening::netvsc_commits();
    let rows: Vec<Vec<String>> = hardening::distribution(&commits)
        .iter()
        .map(|r| {
            vec![
                r.kind.to_string(),
                r.count.to_string(),
                format!("{:.1}%", r.pct_of_hardening),
                "#".repeat(r.count as usize),
            ]
        })
        .collect();
    print_table(
        "Figure 3 — hardening commits to Linux netvsc, by change type",
        &["change type", "commits", "% of hardening", "bar"],
        &rows,
    );
    println!(
        "\n{} hardening commits total; churn (amend/revert of earlier hardening): {:.0}%.",
        commits.len(),
        100.0 * hardening::churn_ratio(&commits)
    );
}
