//! Figure 4: distribution of hardening commits to the VirtIO driver family.

use cio_bench::print_table;
use cio_study::hardening;

fn main() {
    let commits = hardening::virtio_commits();
    let rows: Vec<Vec<String>> = hardening::distribution(&commits)
        .iter()
        .map(|r| {
            vec![
                r.kind.to_string(),
                r.count.to_string(),
                format!("{:.1}%", r.pct_of_hardening),
                "#".repeat(r.count as usize),
            ]
        })
        .collect();
    print_table(
        "Figure 4 — hardening commits to the Linux virtio family, by change type",
        &["change type", "commits", "% of hardening", "bar"],
        &rows,
    );
    let reverted = commits.iter().filter(|c| c.later_reverted).count();
    println!(
        "\n{} hardening commits total; {} amend/revert earlier hardening ({:.0}% churn), \
         {reverted} never re-applied — \"hardening is extremely error-prone\" (§2.5).",
        commits.len(),
        commits
            .iter()
            .filter(|c| c.kind == hardening::ChangeKind::AmendPrevious)
            .count(),
        100.0 * hardening::churn_ratio(&commits)
    );
}
