//! Figure 5 — the design-space scatter, measured.
//!
//! The paper sketches compatibility vs. performance with TCB and
//! observability annotations. This binary measures all four axes on the
//! reproduction:
//!
//! * **performance** — streaming download Gbit/s and small-RPC round-trip
//!   latency on identical workloads;
//! * **TCB** — lines of this repository's code inside each design's
//!   application-trusted domain (`cio-study::tcb`);
//! * **observability** — host-visible metadata bits per round trip during
//!   the latency workload;
//! * **compatibility** — a documented qualitative rank (what the design
//!   demands from existing software; the one axis that cannot be
//!   measured from inside the simulator).

use cio::world::BoundaryKind;
use cio_bench::{bench_opts, echo_latency, print_table, stream_download, ALL_BOUNDARIES};
use cio_study::tcb;

fn compatibility(kind: BoundaryKind) -> (&'static str, &'static str) {
    match kind {
        BoundaryKind::L5Host => ("high", "POSIX sockets; lift-and-shift apps"),
        BoundaryKind::L2VirtioUnhardened => ("high", "stock virtio drivers, no changes"),
        BoundaryKind::L2VirtioHardened => ("high", "stock virtio + kernel hardening"),
        BoundaryKind::L2CioRing => ("medium", "new driver; app unchanged"),
        BoundaryKind::DualBoundary => ("medium", "new driver + in-TEE compartments"),
        BoundaryKind::Tunneled => ("low", "needs a trusted gateway deployment"),
        BoundaryKind::Dda => ("medium", "needs TDISP-capable devices"),
    }
}

fn main() {
    let crates_dir = tcb::default_crates_dir();
    let tcb_reports = tcb::measure_all(&crates_dir);
    let tcb_for = |k: BoundaryKind| {
        tcb_reports
            .iter()
            .find(|r| r.design == k.to_string())
            .cloned()
    };

    let mut rows = Vec::new();
    for kind in ALL_BOUNDARIES {
        let stream = stream_download(kind, bench_opts(), 1 << 20, 16 * 1024)
            .unwrap_or_else(|e| panic!("{kind}: stream failed: {e}"));
        let (rtt, lat_run) = echo_latency(kind, bench_opts(), 256, 32)
            .unwrap_or_else(|e| panic!("{kind}: latency failed: {e}"));
        let t = tcb_for(kind).expect("tcb spec per design");
        let (compat, note) = compatibility(kind);
        let bits_per_rt = lat_run.obs_bits as f64 / 32.0;
        rows.push(vec![
            kind.to_string(),
            format!("{:.2}", stream.gbps),
            format!("{:.1}", rtt.to_nanos(bench_opts().cost.ghz) / 1000.0),
            format!("{} ({})", t.app_trusted_loc, t.class()),
            t.semi_trusted_loc.to_string(),
            format!("{bits_per_rt:.0}"),
            format!("{compat}: {note}"),
        ]);
    }

    print_table(
        "Figure 5 (measured) — boundary designs: performance, TCB, observability, compatibility",
        &[
            "design",
            "stream Gbit/s",
            "RPC rtt (µs)",
            "app-TCB LoC (class)",
            "semi-trusted LoC",
            "obs bits/op",
            "compatibility",
        ],
        &rows,
    );

    println!(
        "\nReading: the dual boundary matches the L5 design's small app-TCB while keeping \
         L2-class observability and near-cio-ring performance — the paper's \"this work\" \
         corner. virtio-hardened pays the retrofit tax; virtio-unhardened is fast and \
         compatible but fails the E10 attack matrix; the tunnel buys minimum observability \
         with crypto+gateway costs."
    );
}
