//! E10 — the attack-resilience matrix: adversary suite × boundary designs.
//!
//! Every verdict below is also sealed into the flight recorder's
//! tamper-evident audit chain; the matrix asserts the chains verified,
//! and the closing micro-scenario shows a single mutated audit record
//! being pinpointed by link index.

use cio::attacks::{
    audit_chain_tamper, netvsc_offset_forgery, payload_toctou, run_blk_suite, run_matrix, Outcome,
    ALL_ATTACKS,
};
use cio::world::ALL_BOUNDARIES;
use cio_bench::print_table;

fn main() {
    let reports = run_matrix(&ALL_BOUNDARIES).expect("attack matrix");

    // Forensics gate: every scenario that ran (surface or not) must have
    // sealed its verdict into a chain that verifies end to end.
    for r in &reports {
        assert!(
            r.audit_ok,
            "{} vs {}: verdict missing from verified audit chain",
            r.boundary, r.attack
        );
    }

    let mut rows = Vec::new();
    for attack in ALL_ATTACKS {
        let mut row = vec![attack.to_string()];
        for boundary in ALL_BOUNDARIES {
            let r = reports
                .iter()
                .find(|r| r.boundary == boundary && r.attack == attack)
                .expect("full matrix");
            row.push(r.outcome.to_string());
        }
        rows.push(row);
    }

    let mut headers: Vec<String> = vec!["attack".into()];
    headers.extend(ALL_BOUNDARIES.iter().map(|b| b.to_string()));
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    print_table(
        "E10 — attack outcomes per boundary design",
        &header_refs,
        &rows,
    );

    // The payload-TOCTOU micro-comparison.
    let (unhardened, copy, revoke) = payload_toctou().expect("toctou scenario");
    print_table(
        "E10b — payload double-fetch (ring level)",
        &["design", "outcome"],
        &[
            vec![
                "shared buffer, validate-then-use".into(),
                unhardened.to_string(),
            ],
            vec!["cio-ring early copy".into(), copy.to_string()],
            vec!["cio-ring revocation".into(), revoke.to_string()],
        ],
    );

    // The NetVSC leak (the Figure 3 driver family).
    let (nv_unhardened, nv_hardened) = netvsc_offset_forgery().expect("netvsc scenario");
    print_table(
        "E10c — NetVSC receive-buffer offset forgery (private-memory leak)",
        &["driver", "outcome"],
        &[
            vec!["netvsc pre-hardening".into(), nv_unhardened.to_string()],
            vec![
                "netvsc + offset validation (the Figure 3 commits)".into(),
                nv_hardened.to_string(),
            ],
        ],
    );

    // Summary counts.
    let mut srows = Vec::new();
    for boundary in ALL_BOUNDARIES {
        let count = |o: Outcome| {
            reports
                .iter()
                .filter(|r| r.boundary == boundary && r.outcome == o)
                .count()
                .to_string()
        };
        srows.push(vec![
            boundary.to_string(),
            count(Outcome::NoSurface),
            count(Outcome::Prevented),
            count(Outcome::Detected),
            count(Outcome::Undetected),
        ]);
    }
    print_table(
        "E10 summary — outcomes per design",
        &[
            "design",
            "no-surface",
            "prevented",
            "detected",
            "UNDETECTED",
        ],
        &srows,
    );

    // The storage plane under the same adversary (the E24 additions):
    // the batched block ring must fail closed with the right verdict.
    let blk = run_blk_suite().expect("block adversary suite");
    let mut brows = Vec::new();
    for (name, r) in [
        "response aliasing (ciphertext served for another LBA)",
        "mid-batch poison (one block corrupted inside a 16-run)",
        "rollback under batching (full stale snapshot restored)",
    ]
    .into_iter()
    .zip(&blk)
    {
        assert_eq!(
            r.outcome,
            Outcome::Detected,
            "block scenario escaped detection: {r:?}"
        );
        assert!(r.audit_ok, "block verdict not sealed: {r:?}");
        brows.push(vec![
            name.into(),
            format!("sealed as {}", r.attack),
            r.outcome.to_string(),
            if r.fail_closed { "yes" } else { "NO" }.into(),
            if r.intact_elsewhere { "yes" } else { "NO" }.into(),
        ]);
    }
    print_table(
        "E10e — the batched block ring under the storage adversary",
        &[
            "attack",
            "verdict code",
            "outcome",
            "fail-closed",
            "blast radius contained",
        ],
        &brows,
    );

    // The audit-chain tamper micro-scenario.
    let tamper = audit_chain_tamper().expect("tamper scenario");
    assert!(tamper.clean_ok, "clean audit chain failed to verify");
    assert!(
        tamper.flagged_exact,
        "verifier did not pinpoint the tampered link: {tamper:?}"
    );
    print_table(
        "E10d — audit-chain tamper detection",
        &["chain", "verdict"],
        &[
            vec![
                format!("as written ({} links)", tamper.chain_len),
                "verifies".into(),
            ],
            vec![
                format!("one record mutated (link {})", tamper.tampered_link),
                format!("rejected at link {}", tamper.tampered_link),
            ],
        ],
    );

    let sealed = reports.iter().filter(|r| r.audit_ok).count();
    println!(
        "\naudit chains: {sealed}/{} verdicts sealed and verified",
        reports.len()
    );

    println!(
        "\nReading: the unhardened lift-and-shift baseline is compromised by most of the \
         suite without noticing; the Linux-style retrofit detects what it checks (at E5's \
         cost) but keeps the attack surface; the cio-ring designs answer 'no surface' or \
         'prevented' because the mechanisms under attack do not exist or are masked by \
         construction — the paper's case that interface safety must be designed in, not \
         retrofitted (§2.5, §3.2). Every verdict above also landed in a hash-chained \
         audit log a hostile host cannot silently edit (E10d)."
    );
}
