//! E11 — host observability per boundary design on a fixed workload.
//!
//! Quantifies §2.2's second vulnerability vector: what the host learns
//! from watching the interface. Lower is better; the floor is "what a
//! network tap would see anyway" (§2.4).

use cio_bench::{bench_opts, echo_latency, print_table, ALL_BOUNDARIES};

fn main() {
    let rounds = 32u32;
    let size = 512usize;

    let mut rows = Vec::new();
    for kind in ALL_BOUNDARIES {
        let (rtt, run) = echo_latency(kind, bench_opts(), size, rounds)
            .unwrap_or_else(|e| panic!("{kind}: {e}"));
        rows.push(vec![
            kind.to_string(),
            run.obs_events.to_string(),
            run.obs_kinds.to_string(),
            run.obs_bits.to_string(),
            format!("{:.0}", run.obs_bits as f64 / f64::from(rounds)),
            format!("{:.1}", rtt.to_nanos(bench_opts().cost.ghz) / 1000.0),
        ]);
    }

    print_table(
        &format!("E11 — host-visible information: {rounds} echo round trips of {size} B"),
        &[
            "design",
            "events",
            "event kinds",
            "total bits",
            "bits/round-trip",
            "RTT µs",
        ],
        &rows,
    );

    println!(
        "\nReading: the socket boundary (l5-host) leaks typed calls *and* the wire — the \
         most information per operation, and of the richest kind (op types, socket ids, \
         exact lengths). The L2 designs leak exactly what the network sees (frame headers \
         + timing). The tunnel and DDA reduce even that to ciphertext sizes and timing — \
         at their respective costs. This is Figure 5's observability axis, measured."
    );
}
