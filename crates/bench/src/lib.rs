//! The experiment harness: workload generators, sweep drivers, and table
//! printing shared by the `fig*`/`exp_*`/`tab_*` binaries.
//!
//! Each binary regenerates one artifact from EXPERIMENTS.md. Results are
//! *virtual-time* measurements: deterministic for a given seed and cost
//! model, so every table in EXPERIMENTS.md can be reproduced bit-for-bit
//! with `cargo run -p cio-bench --bin <name>`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use cio::dev::{RecvMode, SendMode};
use cio::world::{
    BoundaryKind, SessionId, SessionScratch, World, WorldOptions, ECHO_PORT, RPC_PORT,
};
use cio::CioError;
use cio_host::fabric::LinkParams;
use cio_sim::{Cycles, MeterSnapshot};

/// Re-export for binaries.
pub use cio::world::ALL_BOUNDARIES;

pub mod micro;
pub mod transport;

/// Options tuned for throughput experiments (short link, no loss).
pub fn bench_opts() -> WorldOptions {
    WorldOptions {
        link: LinkParams {
            latency: Cycles(3_000), // ~1 µs: same-rack
            loss: 0.0,
        },
        ..WorldOptions::default()
    }
}

/// One measured workload outcome.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Design measured.
    pub boundary: BoundaryKind,
    /// Application payload bytes moved (both directions).
    pub app_bytes: u64,
    /// Virtual time consumed.
    pub elapsed: Cycles,
    /// Derived Gbit/s at the cost model's frequency.
    pub gbps: f64,
    /// Meter delta over the workload.
    pub meter: MeterSnapshot,
    /// Observability: host-visible events during the workload.
    pub obs_events: u64,
    /// Observability: total host-visible metadata bits.
    pub obs_bits: u64,
    /// Observability: distinct host-visible event kinds.
    pub obs_kinds: usize,
}

/// Downloads `total_bytes` from the RPC peer in `chunk`-sized responses,
/// measuring steady-state throughput (connection setup excluded).
///
/// # Errors
///
/// World construction or timeout failures.
pub fn stream_download(
    kind: BoundaryKind,
    opts: WorldOptions,
    total_bytes: u64,
    chunk: u32,
) -> Result<RunResult, CioError> {
    let ghz = opts.cost.ghz;
    let mut w = World::new(kind, opts)?;
    let c = w.connect(RPC_PORT)?;
    w.establish(c, 20_000)?;

    // Warm-up round trip.
    w.send(c, &64u32.to_le_bytes())?;
    w.recv_exact(c, 68, 20_000)?;

    let m0 = w.meter().snapshot();
    w.recorder().clear();
    let t0 = w.clock().now();
    let mut moved = 0u64;
    while moved < total_bytes {
        let want = chunk.min((total_bytes - moved) as u32);
        w.send(c, &want.to_le_bytes())?;
        let resp = w.recv_exact(c, want as usize + 4, 200_000)?;
        moved += resp.len() as u64 - 4;
    }
    let elapsed = w.clock().since(t0);
    let obs = w.recorder().summary();
    Ok(RunResult {
        boundary: kind,
        app_bytes: moved,
        elapsed,
        gbps: cio_sim::gbps(moved, elapsed, ghz),
        meter: w.meter().snapshot().delta(&m0),
        obs_events: obs.events,
        obs_bits: obs.bits,
        obs_kinds: obs.kinds,
    })
}

/// Downloads `per_flow_bytes` from the RPC peer on each of `flows`
/// concurrent connections in `chunk`-sized responses, measuring aggregate
/// steady-state throughput (setup excluded).
///
/// Every flow keeps one request outstanding, so with a multi-queue world
/// the RSS-steered flows exercise all queues concurrently — this is the
/// workload behind the E16 queue-scaling sweep. Transient backpressure
/// from [`World::send`] is retried on later rounds, never treated as
/// failure.
///
/// # Errors
///
/// World construction or timeout failures.
pub fn multi_stream_download(
    kind: BoundaryKind,
    opts: WorldOptions,
    flows: usize,
    per_flow_bytes: u64,
    chunk: u32,
) -> Result<RunResult, CioError> {
    let ghz = opts.cost.ghz;
    let mut w = World::new(kind, opts)?;
    let conns: Vec<_> = (0..flows)
        .map(|_| w.connect(RPC_PORT))
        .collect::<Result<_, _>>()?;
    for &c in &conns {
        w.establish(c, 50_000)?;
    }

    // Warm-up round trip on every flow.
    for &c in &conns {
        w.send(c, &64u32.to_le_bytes())?;
    }
    for &c in &conns {
        w.recv_exact(c, 68, 50_000)?;
    }

    let m0 = w.meter().snapshot();
    w.recorder().clear();
    let t0 = w.clock().now();
    let mut remaining = vec![per_flow_bytes; flows];
    // Outstanding response bytes per flow (0 = ready for a new request).
    let mut inflight = vec![0u64; flows];
    let mut acc = vec![0u64; flows];
    let mut moved = 0u64;
    let total = per_flow_bytes * flows as u64;
    let mut idle_steps = 0u32;
    // One reusable receive scratch across all flows: the polling loop
    // stays allocation-free via the `recv_into` hot path.
    let mut rx = SessionScratch::new();
    while moved < total {
        for (i, &c) in conns.iter().enumerate() {
            if remaining[i] > 0 && inflight[i] == 0 {
                let want = chunk.min(remaining[i] as u32);
                match w.send(c, &want.to_le_bytes()) {
                    Ok(_) => inflight[i] = u64::from(want) + 4,
                    Err(e) if e.is_transient() => {} // retry next round
                    Err(e) => return Err(e),
                }
            }
        }
        w.step()?;
        let mut progressed = false;
        for (i, &c) in conns.iter().enumerate() {
            if inflight[i] == 0 {
                continue;
            }
            let got = w.recv_into(c, &mut rx)?;
            if got == 0 {
                continue;
            }
            progressed = true;
            acc[i] += got as u64;
            if acc[i] >= inflight[i] {
                let payload = inflight[i] - 4;
                remaining[i] -= payload;
                moved += payload;
                acc[i] -= inflight[i];
                inflight[i] = 0;
            }
        }
        idle_steps = if progressed { 0 } else { idle_steps + 1 };
        if idle_steps > 200_000 {
            return Err(CioError::Timeout("multi_stream_download stalled"));
        }
    }
    let elapsed = w.clock().since(t0);
    let obs = w.recorder().summary();
    Ok(RunResult {
        boundary: kind,
        app_bytes: moved,
        elapsed,
        gbps: cio_sim::gbps(moved, elapsed, ghz),
        meter: w.meter().snapshot().delta(&m0),
        obs_events: obs.events,
        obs_bits: obs.bits,
        obs_kinds: obs.kinds,
    })
}

/// Measures small-message echo round-trip latency: mean cycles per round
/// trip over `rounds` ping-pongs of `size` bytes.
///
/// # Errors
///
/// World construction or timeout failures.
pub fn echo_latency(
    kind: BoundaryKind,
    opts: WorldOptions,
    size: usize,
    rounds: u32,
) -> Result<(Cycles, RunResult), CioError> {
    let ghz = opts.cost.ghz;
    let mut w = World::new(kind, opts)?;
    let c = w.connect(ECHO_PORT)?;
    w.establish(c, 20_000)?;
    let payload = vec![0xA5u8; size];
    // Warm-up.
    w.send(c, &payload)?;
    w.recv_exact(c, size, 20_000)?;

    let m0 = w.meter().snapshot();
    w.recorder().clear();
    let t0 = w.clock().now();
    for _ in 0..rounds {
        w.send(c, &payload)?;
        w.recv_exact(c, size, 50_000)?;
    }
    let elapsed = w.clock().since(t0);
    let per_rt = Cycles(elapsed.get() / u64::from(rounds.max(1)));
    let obs = w.recorder().summary();
    let bytes = 2 * size as u64 * u64::from(rounds);
    Ok((
        per_rt,
        RunResult {
            boundary: kind,
            app_bytes: bytes,
            elapsed,
            gbps: cio_sim::gbps(bytes, elapsed, ghz),
            meter: w.meter().snapshot().delta(&m0),
            obs_events: obs.events,
            obs_bits: obs.bits,
            obs_kinds: obs.kinds,
        },
    ))
}

/// Runs a multi-flow echo workload with the telemetry layer optionally
/// enabled and returns the finished [`World`] so callers can inspect the
/// attribution profile, histograms, and exporters.
///
/// Each flow keeps one `size`-byte ping outstanding and records the
/// application-observed round-trip into the per-queue RTT histogram of the
/// flow's RSS lane. This is the workload behind `cio-top` (E17) and the
/// telemetry determinism suite; running it with `telemetry: false` gives
/// the control for "observability does not perturb the simulation".
///
/// # Errors
///
/// World construction or timeout failures.
pub fn telemetry_echo_world(
    queues: usize,
    flows: usize,
    rounds: u32,
    size: usize,
    telemetry: bool,
) -> Result<World, CioError> {
    let opts = WorldOptions {
        queues,
        telemetry,
        ..bench_opts()
    };
    telemetry_echo_world_with(opts, flows, rounds, size)
}

/// [`telemetry_echo_world`] with full [`WorldOptions`] control — used by
/// the telemetry-under-threads determinism suite to run the identical
/// workload with `parallel` worker threads.
///
/// # Errors
///
/// World construction or timeout failures.
pub fn telemetry_echo_world_with(
    opts: WorldOptions,
    flows: usize,
    rounds: u32,
    size: usize,
) -> Result<World, CioError> {
    let mut w = World::new(BoundaryKind::L2CioRing, opts)?;
    let conns: Vec<_> = (0..flows)
        .map(|_| w.connect(ECHO_PORT))
        .collect::<Result<_, _>>()?;
    for &c in &conns {
        w.establish(c, 50_000)?;
    }
    let payload = vec![0x5Au8; size];
    echo_rounds(&mut w, &conns, &payload, rounds)?;
    Ok(w)
}

/// Drives `rounds` echo ping-pongs per flow against an already-warm
/// world. Shared inner loop of [`telemetry_echo_world_with`] and
/// [`steady_echo_run`].
fn echo_rounds(
    w: &mut World,
    conns: &[SessionId],
    payload: &[u8],
    rounds: u32,
) -> Result<(), CioError> {
    let flows = conns.len();
    let size = payload.len();
    let mut left = vec![rounds; flows];
    // Echo bytes still owed per flow (0 = ready for a new ping).
    let mut pending = vec![0usize; flows];
    let mut sent_at = vec![Cycles(0); flows];
    let mut done = 0usize;
    let mut idle_steps = 0u32;
    // One reusable receive scratch across all flows (`recv_into` hot
    // path): the RTT loop allocates nothing per round.
    let mut rx = SessionScratch::new();
    while done < flows {
        for (i, &c) in conns.iter().enumerate() {
            if left[i] > 0 && pending[i] == 0 {
                match w.send(c, payload) {
                    Ok(_) => {
                        pending[i] = size;
                        sent_at[i] = w.clock().now();
                    }
                    Err(e) if e.is_transient() => {} // retry next round
                    Err(e) => return Err(e),
                }
            }
        }
        w.step()?;
        let mut progressed = false;
        for (i, &c) in conns.iter().enumerate() {
            if pending[i] == 0 {
                continue;
            }
            let got = w.recv_into(c, &mut rx)?;
            if got == 0 {
                continue;
            }
            progressed = true;
            pending[i] = pending[i].saturating_sub(got);
            if pending[i] == 0 {
                let q = w.conn_lane(c).unwrap_or(0);
                w.telemetry().record_rtt(q, w.clock().since(sent_at[i]));
                left[i] -= 1;
                if left[i] == 0 {
                    done += 1;
                }
            }
        }
        idle_steps = if progressed { 0 } else { idle_steps + 1 };
        if idle_steps > 200_000 {
            return Err(CioError::Timeout("echo workload stalled"));
        }
    }
    Ok(())
}

/// Outcome of [`steady_echo_run`]: the finished world plus virtual time
/// and meter delta measured over the steady-state phase only.
pub struct SteadyEcho {
    /// The finished world (inspect telemetry, flight log, idle passes).
    pub world: World,
    /// Virtual time of the measured steady-state phase.
    pub elapsed: Cycles,
    /// Meter delta over the measured phase.
    pub meter: MeterSnapshot,
}

impl SteadyEcho {
    /// Guest exits per ring record over the measured phase: explicit
    /// guest->host notifications divided by records moved (both rings,
    /// both directions).
    pub fn exits_per_record(&self) -> f64 {
        let recs = self.meter.ring_records.max(1) as f64;
        self.meter.notifications_sent as f64 / recs
    }

    /// Doorbells per ring record over the measured phase: guest exits
    /// plus host->guest interrupts, divided by records moved — the E23
    /// headline ratio, matching the `cio_doorbells_per_record` gauge.
    pub fn doorbells_per_record(&self) -> f64 {
        let recs = self.meter.ring_records.max(1) as f64;
        (self.meter.notifications_sent + self.meter.interrupts_received) as f64 / recs
    }

    /// Cycles of virtual time per ring record over the measured phase.
    pub fn cycles_per_record(&self) -> f64 {
        self.elapsed.get() as f64 / self.meter.ring_records.max(1) as f64
    }
}

/// The E8/E23 notification-economics driver: runs the multi-flow echo
/// workload but measures *steady state only* — the meter snapshot and
/// virtual-time window open after connection establishment and one
/// warm-up round trip per flow, so handshake exits don't dilute the
/// exits/record and doorbells/record ratios under test.
///
/// # Errors
///
/// World construction or timeout failures.
pub fn steady_echo_run(
    opts: WorldOptions,
    flows: usize,
    rounds: u32,
    size: usize,
) -> Result<SteadyEcho, CioError> {
    let mut w = World::new(BoundaryKind::L2CioRing, opts)?;
    let conns: Vec<_> = (0..flows)
        .map(|_| w.connect(ECHO_PORT))
        .collect::<Result<_, _>>()?;
    for &c in &conns {
        w.establish(c, 50_000)?;
    }
    let payload = vec![0x5Au8; size];
    // Warm-up: one echo per flow primes every ring and RSS lane.
    echo_rounds(&mut w, &conns, &payload, 1)?;
    let m0 = w.meter().snapshot();
    let t0 = w.clock().now();
    echo_rounds(&mut w, &conns, &payload, rounds)?;
    let elapsed = w.clock().since(t0);
    let meter = w.meter().snapshot().delta(&m0);
    Ok(SteadyEcho {
        world: w,
        elapsed,
        meter,
    })
}

/// World options for the cio-ring variants used in E7/E9 sweeps.
pub fn ring_mode_opts(send: SendMode, recv: RecvMode) -> WorldOptions {
    WorldOptions {
        send_mode: send,
        recv_mode: recv,
        ..bench_opts()
    }
}

/// Prints an aligned text table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n## {title}\n");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::from("| ");
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!("{:w$} | ", c, w = widths[i]));
        }
        s
    };
    println!(
        "{}",
        line(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>())
    );
    println!(
        "|{}|",
        widths
            .iter()
            .map(|w| "-".repeat(w + 2))
            .collect::<Vec<_>>()
            .join("|")
    );
    for row in rows {
        println!("{}", line(row));
    }
}

/// Formats cycles with thousands separators.
pub fn fmt_cycles(c: Cycles) -> String {
    let mut s = c.get().to_string();
    let mut out = String::new();
    let chars: Vec<char> = s.drain(..).collect();
    for (i, ch) in chars.iter().enumerate() {
        if i > 0 && (chars.len() - i).is_multiple_of(3) {
            out.push('_');
        }
        out.push(*ch);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_download_moves_requested_bytes() {
        let r =
            stream_download(BoundaryKind::L2CioRing, bench_opts(), 64 * 1024, 16 * 1024).unwrap();
        assert_eq!(r.app_bytes, 64 * 1024);
        assert!(r.elapsed.get() > 0);
        assert!(r.gbps > 0.0);
    }

    #[test]
    fn multi_stream_download_scales_with_queues() {
        let run = |queues: usize| {
            let opts = WorldOptions {
                queues,
                ..bench_opts()
            };
            multi_stream_download(BoundaryKind::L2CioRing, opts, 8, 16 * 1024, 4 * 1024).unwrap()
        };
        let one = run(1);
        let four = run(4);
        assert_eq!(one.app_bytes, 8 * 16 * 1024);
        assert_eq!(four.app_bytes, one.app_bytes);
        // Four queues must beat one; the full >=2.5x bar is enforced by
        // exp_multiqueue over the larger 32-flow workload.
        assert!(
            four.elapsed < one.elapsed,
            "4 queues not faster: {:?} vs {:?}",
            four.elapsed,
            one.elapsed
        );
    }

    #[test]
    fn echo_latency_positive_and_stable() {
        let (lat, r) = echo_latency(BoundaryKind::DualBoundary, bench_opts(), 256, 5).unwrap();
        assert!(lat.get() > 0);
        assert_eq!(r.app_bytes, 2 * 256 * 5);
        // Determinism: same seed, same result.
        let (lat2, _) = echo_latency(BoundaryKind::DualBoundary, bench_opts(), 256, 5).unwrap();
        assert_eq!(lat, lat2);
    }

    #[test]
    fn fmt_cycles_groups_digits() {
        assert_eq!(fmt_cycles(Cycles(1_234_567)), "1_234_567");
        assert_eq!(fmt_cycles(Cycles(42)), "42");
    }
}
