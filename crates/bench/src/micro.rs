//! Dependency-free micro-benchmark support for the one-pass dataplane.
//!
//! Everything the `bench_dataplane` binary needs and nothing the offline
//! build can't provide: a self-calibrating wall-clock loop built on
//! [`std::time::Instant`], and a tiny JSON emitter for the checked-in
//! `BENCH_dataplane.json` artifact. Virtual-time numbers (the cio-sim
//! cycle meter) ride along where the measured path is sim-metered, so
//! each report carries one deterministic series next to the wall-clock
//! one.

use std::time::Instant;

/// One wall-clock measurement of a repeated operation.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Iterations executed in the timed window.
    pub iters: u64,
    /// Total wall-clock nanoseconds for all iterations.
    pub ns: u64,
    /// Payload bytes processed per iteration (0 if not byte-oriented).
    pub bytes_per_iter: u64,
}

impl Measurement {
    /// Mean nanoseconds per iteration.
    pub fn ns_per_iter(&self) -> f64 {
        self.ns as f64 / self.iters.max(1) as f64
    }

    /// Throughput in gigabytes per second (bytes/ns).
    pub fn gb_per_s(&self) -> f64 {
        if self.ns == 0 {
            return 0.0;
        }
        (self.bytes_per_iter * self.iters) as f64 / self.ns as f64
    }

    /// Iterations per second.
    pub fn per_sec(&self) -> f64 {
        if self.ns == 0 {
            return 0.0;
        }
        self.iters as f64 * 1e9 / self.ns as f64
    }
}

/// Runs `f` repeatedly until roughly `target_ms` of wall clock is
/// consumed, growing the iteration count geometrically so short
/// operations are timed over many calls. The last (longest) window wins:
/// it dominates total runtime and has the least timer-overhead bias.
pub fn measure<F: FnMut()>(target_ms: u64, bytes_per_iter: u64, mut f: F) -> Measurement {
    let target_ns = target_ms.max(1) * 1_000_000;
    let mut iters: u64 = 1;
    loop {
        let t = Instant::now();
        for _ in 0..iters {
            f();
        }
        let ns = (t.elapsed().as_nanos() as u64).max(1);
        if ns >= target_ns || iters >= (1 << 32) {
            return Measurement {
                iters,
                ns,
                bytes_per_iter,
            };
        }
        // Aim past the target in one step, but at most 16x at a time so a
        // mis-measured tiny window can't overshoot into a stall.
        let want = iters.saturating_mul(target_ns) / ns;
        iters = want.clamp(iters * 2, iters * 16);
    }
}

/// Minimal JSON object builder (no external crates, no escaping needs
/// beyond the controlled keys/strings the bench emits).
#[derive(Debug, Default)]
pub struct JsonObj {
    parts: Vec<String>,
}

impl JsonObj {
    /// An empty object.
    pub fn new() -> Self {
        JsonObj::default()
    }

    /// Adds a string field.
    pub fn str(mut self, key: &str, value: &str) -> Self {
        self.parts
            .push(format!("\"{}\": \"{}\"", key, escape(value)));
        self
    }

    /// Adds an integer field.
    pub fn int(mut self, key: &str, value: u64) -> Self {
        self.parts.push(format!("\"{key}\": {value}"));
        self
    }

    /// Adds a float field (non-finite values become `null`).
    pub fn f64(mut self, key: &str, value: f64) -> Self {
        let v = if value.is_finite() {
            format!("{value:.6}")
        } else {
            "null".to_string()
        };
        self.parts.push(format!("\"{key}\": {v}"));
        self
    }

    /// Adds a pre-rendered JSON value (nested object or array).
    pub fn raw(mut self, key: &str, value: String) -> Self {
        self.parts.push(format!("\"{key}\": {value}"));
        self
    }

    /// Renders the object.
    pub fn finish(self) -> String {
        format!("{{{}}}", self.parts.join(", "))
    }
}

/// Renders a JSON array from pre-rendered values.
pub fn json_array<I: IntoIterator<Item = String>>(items: I) -> String {
    let items: Vec<String> = items.into_iter().collect();
    format!("[{}]", items.join(", "))
}

fn escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_counts_iterations_and_time() {
        let mut n = 0u64;
        let m = measure(1, 8, || n += 1);
        // `n` counts every calibration window; `iters` only the last.
        assert!(n >= m.iters && m.iters >= 1, "n={n} iters={}", m.iters);
        assert!(m.ns >= 1);
        assert_eq!(m.bytes_per_iter, 8);
        assert!(m.ns_per_iter() > 0.0);
        assert!(m.per_sec() > 0.0);
    }

    #[test]
    fn json_builders_render() {
        let inner = JsonObj::new().int("size", 4096).f64("ratio", 1.5).finish();
        let doc = JsonObj::new()
            .str("bench", "dataplane")
            .raw("rows", json_array([inner]))
            .finish();
        assert_eq!(
            doc,
            "{\"bench\": \"dataplane\", \"rows\": [{\"size\": 4096, \"ratio\": 1.500000}]}"
        );
    }

    #[test]
    fn json_escapes_controls_and_quotes() {
        let s = JsonObj::new().str("k", "a\"b\\c\n").finish();
        assert_eq!(s, "{\"k\": \"a\\\"b\\\\c\\u000a\"}");
    }
}
