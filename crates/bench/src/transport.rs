//! Transport-level harness: drives the raw transports (no TCP, no TLS) so
//! E5–E8 measure pure interface costs.

use cio_mem::{GuestAddr, GuestMemory, PAGE_SIZE};
use cio_sim::{Clock, CostModel, Cycles, Meter, MeterSnapshot};
use cio_vring::cioring::{CioRing, Consumer, DataMode, NotifyMode, Producer, RingConfig};
use cio_vring::hardened::HardenedDriver;
use cio_vring::virtqueue::{
    driver_negotiate, ConfigSpace, DescSeg, DeviceSide, Driver, Layout, F_NET_MAC, F_NET_MTU,
    F_VERSION_1,
};

/// Transport variants compared by E5.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportKind {
    /// Raw split virtqueue, shared arenas, no validation.
    VirtioUnhardened,
    /// Linux-retrofit: validation + SWIOTLB bouncing.
    VirtioHardened,
    /// The paper's ring with copy-as-first-class.
    CioRingCopy,
    /// The paper's ring with zero-copy TX placement.
    CioRingZeroCopy,
}

impl std::fmt::Display for TransportKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            TransportKind::VirtioUnhardened => "virtio-unhardened",
            TransportKind::VirtioHardened => "virtio-hardened",
            TransportKind::CioRingCopy => "cio-ring (copy)",
            TransportKind::CioRingZeroCopy => "cio-ring (zero-copy)",
        };
        f.write_str(s)
    }
}

/// Result of one transport run.
#[derive(Debug, Clone)]
pub struct TransportResult {
    /// Cycles consumed for the whole run.
    pub elapsed: Cycles,
    /// Meter delta.
    pub meter: MeterSnapshot,
    /// Payload bytes moved one way.
    pub bytes: u64,
}

impl TransportResult {
    /// Gbit/s one-way at `ghz`.
    pub fn gbps(&self, ghz: f64) -> f64 {
        cio_sim::gbps(self.bytes, self.elapsed, ghz)
    }

    /// Cycles per frame for `frames` frames.
    pub fn cycles_per_frame(&self, frames: u64) -> u64 {
        self.elapsed.get() / frames.max(1)
    }
}

/// Echo-roundtrips `frames` frames of `size` bytes through the transport:
/// guest TX -> host -> host RX injection -> guest delivery.
///
/// # Panics
///
/// On transport setup failures (bench-internal invariants).
pub fn frame_echo(
    kind: TransportKind,
    size: usize,
    frames: u32,
    cost: CostModel,
) -> TransportResult {
    match kind {
        TransportKind::VirtioUnhardened => virtio_echo(false, size, frames, cost),
        TransportKind::VirtioHardened => virtio_echo(true, size, frames, cost),
        TransportKind::CioRingCopy => cio_echo(false, size, frames, cost, NotifyMode::Polling),
        TransportKind::CioRingZeroCopy => cio_echo(true, size, frames, cost, NotifyMode::Polling),
    }
}

fn virtio_echo(hardened: bool, size: usize, frames: u32, cost: CostModel) -> TransportResult {
    let clock = Clock::new();
    let meter = Meter::new();
    let mem = GuestMemory::new(1024, clock.clone(), cost, meter.clone());
    let qsize: u16 = 64;
    let stride: u32 = 2048;
    assert!(size <= stride as usize);

    // Layout: queues at pages 0..4, config at 4, arenas/bounce after.
    mem.share_range(GuestAddr(0), 5 * PAGE_SIZE).unwrap();
    let tx_layout = Layout::new(GuestAddr(0), qsize).unwrap();
    let rx_layout = Layout::new(GuestAddr(2 * PAGE_SIZE as u64), qsize).unwrap();
    let cfg = ConfigSpace {
        base: GuestAddr(4 * PAGE_SIZE as u64),
    };
    cfg.device_init(
        &mem.host(),
        [2; 6],
        2000,
        F_VERSION_1 | F_NET_MAC | F_NET_MTU,
    )
    .unwrap();

    let mut tx_dev = DeviceSide::new(mem.host(), tx_layout);
    let mut rx_dev = DeviceSide::new(mem.host(), rx_layout);

    let run = |elapsed_from: Cycles, meter0: MeterSnapshot, clock: &Clock, meter: &Meter| {
        TransportResult {
            elapsed: clock.since(elapsed_from),
            meter: meter.snapshot().delta(&meter0),
            bytes: u64::from(frames) * size as u64,
        }
    };

    let payload = vec![0xABu8; size];
    if hardened {
        let bounce_pages = usize::from(qsize);
        let tx_b = GuestAddr(16 * PAGE_SIZE as u64);
        let rx_b = GuestAddr((16 + bounce_pages as u64) * PAGE_SIZE as u64);
        let mut tx = HardenedDriver::new(
            &mem,
            tx_layout,
            cfg,
            F_VERSION_1 | F_NET_MAC | F_NET_MTU,
            tx_b,
            bounce_pages,
            meter.clone(),
        )
        .unwrap();
        let mut rx = HardenedDriver::new(
            &mem,
            rx_layout,
            cfg,
            F_VERSION_1 | F_NET_MAC | F_NET_MTU,
            rx_b,
            bounce_pages,
            meter.clone(),
        )
        .unwrap();
        for t in 0..u64::from(qsize) - 1 {
            rx.post_recv(t).unwrap();
        }
        let t0 = clock.now();
        let m0 = meter.snapshot();
        for i in 0..frames {
            tx.send(&payload, u64::from(i)).unwrap();
            tx.kick();
            let chain = tx_dev.pop().unwrap().expect("tx chain");
            let f = tx_dev.read_payload(&chain).unwrap();
            tx_dev.complete(chain.head, 0).unwrap();
            tx.poll().unwrap();
            // Host echoes into a posted rx chain.
            let rchain = rx_dev.pop().unwrap().expect("rx chain");
            let n = rx_dev.write_payload(&rchain, &f).unwrap();
            rx_dev.complete(rchain.head, n).unwrap();
            let (_done, data) = rx.poll().unwrap().expect("rx completion");
            assert_eq!(data.unwrap().len(), size);
            rx.post_recv(u64::from(qsize) + u64::from(i)).unwrap();
        }
        run(t0, m0, &clock, &meter)
    } else {
        driver_negotiate(&cfg, &mem.guest(), F_VERSION_1 | F_NET_MAC | F_NET_MTU).unwrap();
        // Shared arenas.
        let arena_pages = usize::from(qsize) * stride as usize / PAGE_SIZE;
        let tx_arena = GuestAddr(16 * PAGE_SIZE as u64);
        let rx_arena = GuestAddr((16 + arena_pages as u64) * PAGE_SIZE as u64);
        mem.share_range(tx_arena, arena_pages * PAGE_SIZE).unwrap();
        mem.share_range(rx_arena, arena_pages * PAGE_SIZE).unwrap();
        let mut tx = Driver::new(mem.guest(), tx_layout, meter.clone()).unwrap();
        let mut rx = Driver::new(mem.guest(), rx_layout, meter.clone()).unwrap();
        let slot = |base: GuestAddr, i: u16| base.add(u64::from(i) * u64::from(stride));
        for i in 0..qsize - 1 {
            rx.add_buf(
                &[],
                &[DescSeg {
                    addr: slot(rx_arena, i),
                    len: stride,
                }],
                u64::from(i),
            )
            .unwrap();
        }
        let t0 = clock.now();
        let m0 = meter.snapshot();
        for i in 0..frames {
            let s = (i % u32::from(qsize)) as u16;
            mem.guest().write(slot(tx_arena, s), &payload).unwrap();
            mem.meter().bytes_zero_copy(size as u64);
            tx.add_buf(
                &[DescSeg {
                    addr: slot(tx_arena, s),
                    len: size as u32,
                }],
                &[],
                u64::from(i),
            )
            .unwrap();
            let chain = tx_dev.pop().unwrap().expect("tx chain");
            let f = tx_dev.read_payload(&chain).unwrap();
            tx_dev.complete(chain.head, 0).unwrap();
            tx.poll_used().unwrap();
            let rchain = rx_dev.pop().unwrap().expect("rx chain");
            let n = rx_dev.write_payload(&rchain, &f).unwrap();
            rx_dev.complete(rchain.head, n).unwrap();
            let done = rx.poll_used().unwrap().expect("rx completion");
            // Guest reads the delivered frame from the shared buffer.
            let mut buf = vec![0u8; done.len as usize];
            mem.guest()
                .read(
                    slot(rx_arena, (done.token % u64::from(qsize)) as u16),
                    &mut buf,
                )
                .unwrap();
            mem.meter().bytes_zero_copy(buf.len() as u64);
            // Repost.
            rx.add_buf(
                &[],
                &[DescSeg {
                    addr: slot(rx_arena, (done.token % u64::from(qsize)) as u16),
                    len: stride,
                }],
                done.token,
            )
            .unwrap();
        }
        run(t0, m0, &clock, &meter)
    }
}

/// Ring config for transport benches with `mtu` payload capacity.
pub fn bench_ring_config(mode: DataMode, mtu: u32) -> RingConfig {
    let slots = 64u32;
    let stride = mtu.next_power_of_two().max(64);
    RingConfig {
        slots,
        slot_size: if mode == DataMode::Inline {
            (mtu + 4).next_power_of_two().max(16)
        } else {
            16
        },
        mode,
        mtu,
        area_size: slots * stride,
        notify: NotifyMode::Polling,
        ..RingConfig::default()
    }
}

/// Builds a (guest producer, host consumer) pair plus the reverse
/// direction over fresh memory.
#[allow(clippy::type_complexity)]
pub fn cio_pair(
    cfg: RingConfig,
    cost: CostModel,
) -> (
    GuestMemory,
    Producer<cio_mem::GuestView>,
    Consumer<cio_mem::HostView>,
    Producer<cio_mem::HostView>,
    Consumer<cio_mem::GuestView>,
) {
    let clock = Clock::new();
    let meter = Meter::new();
    let ring_pages = (128 + cfg.slots as usize * cfg.slot_size as usize).div_ceil(PAGE_SIZE) + 1;
    let area_pages = (cfg.area_size as usize).div_ceil(PAGE_SIZE).max(1);
    let total = 2 * (ring_pages + area_pages) + 8;
    let mem = GuestMemory::new(total, clock, cost, meter);

    let mut next_page = 0u64;
    let mut alloc = |pages: usize| {
        let a = GuestAddr(next_page * PAGE_SIZE as u64);
        next_page += pages as u64;
        a
    };
    let tx_base = alloc(ring_pages);
    let tx_area = alloc(area_pages);
    let rx_base = alloc(ring_pages);
    let rx_area = alloc(area_pages);
    let tx_ring = CioRing::new(cfg.clone(), tx_base, tx_area).unwrap();
    let rx_ring = CioRing::new(cfg, rx_base, rx_area).unwrap();
    for (base, ring) in [(tx_base, &tx_ring), (rx_base, &rx_ring)] {
        mem.share_range(base, ring.ring_bytes()).unwrap();
    }
    for (base, ring) in [(tx_area, &tx_ring), (rx_area, &rx_ring)] {
        if ring.area_bytes() > 0 {
            mem.share_range(base, ring.area_bytes()).unwrap();
        }
    }
    let gp = Producer::new(tx_ring.clone(), mem.guest()).unwrap();
    let hc = Consumer::new(tx_ring, mem.host()).unwrap();
    let hp = Producer::new(rx_ring.clone(), mem.host()).unwrap();
    let gc = Consumer::new(rx_ring, mem.guest()).unwrap();
    (mem, gp, hc, hp, gc)
}

fn cio_echo(
    zero_copy: bool,
    size: usize,
    frames: u32,
    cost: CostModel,
    notify: NotifyMode,
) -> TransportResult {
    let mut cfg = bench_ring_config(DataMode::SharedArea, size as u32 + 64);
    cfg.notify = notify;
    let (mem, mut gp, mut hc, mut hp, mut gc) = cio_pair(cfg, cost);
    let payload = vec![0xCDu8; size];
    let t0 = mem.clock().now();
    let m0 = mem.meter().snapshot();
    for _ in 0..frames {
        if zero_copy {
            gp.produce_zero_copy(&payload).unwrap();
        } else {
            gp.produce(&payload).unwrap();
        }
        gp.kick();
        let f = hc.consume().unwrap().expect("host consume");
        hp.produce(&f).unwrap();
        hp.kick();
        let got = gc.consume().unwrap().expect("guest consume");
        assert_eq!(got.len(), size);
    }
    TransportResult {
        elapsed: mem.clock().since(t0),
        meter: mem.meter().snapshot().delta(&m0),
        bytes: u64::from(frames) * size as u64,
    }
}

/// One-way delivery with a chosen data-positioning mode (E6): guest
/// produces, host consumes.
pub fn cio_oneway(mode: DataMode, size: usize, frames: u32, cost: CostModel) -> TransportResult {
    let cfg = bench_ring_config(mode, size as u32 + 64);
    let (mem, mut gp, mut hc, _hp, _gc) = cio_pair(cfg, cost);
    let payload = vec![0x5Au8; size];
    let t0 = mem.clock().now();
    let m0 = mem.meter().snapshot();
    for _ in 0..frames {
        gp.produce(&payload).unwrap();
        let f = hc.consume().unwrap().expect("consume");
        debug_assert_eq!(f.len(), size);
    }
    TransportResult {
        elapsed: mem.clock().since(t0),
        meter: mem.meter().snapshot().delta(&m0),
        bytes: u64::from(frames) * size as u64,
    }
}

/// Receive-side delivery cost (E7): host produces `frames` payloads; the
/// guest consumes by copy or by revocation. Returns cycles per delivery.
pub fn rx_delivery(revoke: bool, size: usize, frames: u32, cost: CostModel) -> TransportResult {
    let stride = (size.max(1) as u32)
        .next_power_of_two()
        .max(PAGE_SIZE as u32);
    let slots = 16u32;
    let cfg = RingConfig {
        slots,
        slot_size: 16,
        mode: DataMode::SharedArea,
        mtu: size as u32,
        area_size: slots * stride,
        page_aligned_payloads: true,
        ..RingConfig::default()
    };
    let (mem, _gp, _hc, mut hp, mut gc) = cio_pair(cfg, cost);
    let payload = vec![0x11u8; size];
    let t0 = mem.clock().now();
    let m0 = mem.meter().snapshot();
    for _ in 0..frames {
        hp.produce(&payload).unwrap();
        if revoke {
            let r = gc.consume_revoking().unwrap().expect("payload");
            // Process in place, then return the pages.
            gc.release_revoked(r).unwrap();
        } else {
            let v = gc.consume().unwrap().expect("payload");
            debug_assert_eq!(v.len(), size);
        }
    }
    TransportResult {
        elapsed: mem.clock().since(t0),
        meter: mem.meter().snapshot().delta(&m0),
        bytes: u64::from(frames) * size as u64,
    }
}

/// Notification-discipline comparison (E8): `bursts` bursts of `burst`
/// messages. In doorbell mode the producer kicks once per burst and the
/// consumer drains on the doorbell; in polling mode the consumer performs
/// `idle_polls` empty polls between bursts (duty-cycle model).
pub fn notify_bench(
    doorbell: bool,
    burst: u32,
    bursts: u32,
    idle_polls: u32,
    cost: CostModel,
) -> TransportResult {
    let mut cfg = bench_ring_config(DataMode::SharedArea, 1514);
    cfg.notify = if doorbell {
        NotifyMode::Doorbell
    } else {
        NotifyMode::Polling
    };
    let (mem, mut gp, mut hc, _hp, _gc) = cio_pair(cfg, cost);
    let payload = vec![0x77u8; 256];
    let t0 = mem.clock().now();
    let m0 = mem.meter().snapshot();
    let mut delivered = 0u64;
    for _ in 0..bursts {
        for _ in 0..burst {
            gp.produce(&payload).unwrap();
        }
        if doorbell {
            gp.kick(); // one doorbell per burst
            delivered += hc.on_doorbell().unwrap().len() as u64;
        } else {
            // The consumer was polling while idle.
            for _ in 0..idle_polls {
                let _ = hc.poll().unwrap();
            }
            while let Some(_m) = hc.consume().unwrap() {
                delivered += 1;
            }
        }
    }
    TransportResult {
        elapsed: mem.clock().since(t0),
        meter: mem.meter().snapshot().delta(&m0),
        bytes: delivered * 256,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_transports_echo() {
        for kind in [
            TransportKind::VirtioUnhardened,
            TransportKind::VirtioHardened,
            TransportKind::CioRingCopy,
            TransportKind::CioRingZeroCopy,
        ] {
            let r = frame_echo(kind, 1024, 16, CostModel::default());
            assert_eq!(r.bytes, 16 * 1024, "{kind}");
            assert!(r.elapsed.get() > 0, "{kind}");
        }
    }

    #[test]
    fn hardened_slower_than_unhardened() {
        let u = frame_echo(
            TransportKind::VirtioUnhardened,
            1500,
            64,
            CostModel::default(),
        );
        let h = frame_echo(
            TransportKind::VirtioHardened,
            1500,
            64,
            CostModel::default(),
        );
        assert!(
            h.elapsed.get() > u.elapsed.get(),
            "hardened {} <= unhardened {}",
            h.elapsed,
            u.elapsed
        );
        // The tax is copies + notifications.
        assert!(h.meter.copies > u.meter.copies);
    }

    #[test]
    fn cio_ring_beats_hardened_virtio() {
        let c = frame_echo(TransportKind::CioRingCopy, 1500, 64, CostModel::default());
        let h = frame_echo(
            TransportKind::VirtioHardened,
            1500,
            64,
            CostModel::default(),
        );
        assert!(c.elapsed.get() < h.elapsed.get());
    }

    #[test]
    fn all_data_modes_deliver() {
        for mode in [DataMode::Inline, DataMode::SharedArea, DataMode::Indirect] {
            let r = cio_oneway(mode, 512, 32, CostModel::default());
            assert_eq!(r.bytes, 32 * 512, "{mode:?}");
        }
    }

    #[test]
    fn revocation_wins_for_large_payloads() {
        let cost = CostModel::default();
        let small_copy = rx_delivery(false, 1024, 32, cost.clone());
        let small_rev = rx_delivery(true, 1024, 32, cost.clone());
        let big_copy = rx_delivery(false, 64 * 1024, 32, cost.clone());
        let big_rev = rx_delivery(true, 64 * 1024, 32, cost);
        assert!(
            small_copy.elapsed.get() < small_rev.elapsed.get(),
            "copy should win small: {} vs {}",
            small_copy.elapsed,
            small_rev.elapsed
        );
        assert!(
            big_rev.elapsed.get() < big_copy.elapsed.get(),
            "revoke should win large: {} vs {}",
            big_rev.elapsed,
            big_copy.elapsed
        );
    }

    #[test]
    fn doorbell_vs_polling_tradeoff() {
        let cost = CostModel::default();
        // Large bursts with busy polling: polling cheap.
        let poll_busy = notify_bench(false, 32, 8, 0, cost.clone());
        let bell_busy = notify_bench(true, 32, 8, 0, cost.clone());
        assert!(poll_busy.elapsed.get() < bell_busy.elapsed.get());
        // Sparse arrivals: idle polling burns cycles, doorbells win.
        let poll_idle = notify_bench(false, 1, 8, 2_000, cost.clone());
        let bell_idle = notify_bench(true, 1, 8, 0, cost);
        assert!(bell_idle.elapsed.get() < poll_idle.elapsed.get());
    }
}
