//! Block stores and the host's RAM disk.

use crate::BlockError;

/// Fixed block size (matches the page size: one block = one DMA unit).
pub const BLOCK_SIZE: usize = 4096;

/// A device addressable in fixed-size blocks.
pub trait BlockStore {
    /// Reads block `lba` into `buf` (must be exactly [`BLOCK_SIZE`]).
    ///
    /// # Errors
    ///
    /// [`BlockError::OutOfRange`] / [`BlockError::BadLength`], plus
    /// layer-specific failures (integrity, transport).
    fn read_block(&mut self, lba: u64, buf: &mut [u8]) -> Result<(), BlockError>;

    /// Writes block `lba` from `data` (must be exactly [`BLOCK_SIZE`]).
    ///
    /// # Errors
    ///
    /// As [`BlockStore::read_block`].
    fn write_block(&mut self, lba: u64, data: &[u8]) -> Result<(), BlockError>;

    /// Number of addressable blocks.
    fn blocks(&self) -> u64;
}

/// Batched access to *runs* of consecutive blocks.
///
/// [`RunStore::write_run_with`] / [`RunStore::read_run_with`] hand the
/// caller sub-batches of block-sized buffers — for ring-backed stores
/// these are real ring-slot windows, so a crypto layer can seal several
/// blocks per boundary crossing directly into shared memory (and
/// gather-read back out of it) without intermediate staging. The default
/// implementations degrade to the serial [`BlockStore`] calls, one block
/// per closure invocation, so every store is run-capable.
pub trait RunStore: BlockStore {
    /// Writes `count` consecutive blocks starting at `lba`.
    ///
    /// `fill` is invoked one or more times with `(base, slots)`: `base` is
    /// the run-relative index of the first block of the sub-batch and
    /// `slots` holds one exactly-[`BLOCK_SIZE`] writable buffer per block.
    /// For ring-backed stores the buffers are shared slot memory: the
    /// closure must treat them as write-only (never read back) and place
    /// only bytes the host may observe (ciphertext). `fill` must be
    /// idempotent per index — a transport may re-invoke it for an index if
    /// the ring forces a restage.
    ///
    /// # Errors
    ///
    /// As [`BlockStore::write_block`]; on error, a prefix of the run may
    /// already be durable.
    fn write_run_with(
        &mut self,
        lba: u64,
        count: usize,
        fill: &mut dyn FnMut(usize, &mut [&mut [u8]]),
    ) -> Result<(), BlockError> {
        let mut scratch = vec![0u8; BLOCK_SIZE];
        for i in 0..count {
            {
                let mut one: [&mut [u8]; 1] = [&mut scratch[..]];
                fill(i, &mut one[..]);
            }
            self.write_block(lba + i as u64, &scratch)?;
        }
        Ok(())
    }

    /// Reads `count` consecutive blocks starting at `lba`.
    ///
    /// `sink` mirrors [`RunStore::write_run_with`]: each slot holds the
    /// stored bytes of one block. For ring-backed stores the buffers are
    /// shared slot memory (host-controlled bytes): the closure must read
    /// each byte at most once and validate what it reads.
    ///
    /// # Errors
    ///
    /// As [`BlockStore::read_block`]; blocks before the failure have been
    /// delivered to `sink`, later ones have not.
    fn read_run_with(
        &mut self,
        lba: u64,
        count: usize,
        sink: &mut dyn FnMut(usize, &mut [&mut [u8]]),
    ) -> Result<(), BlockError> {
        let mut scratch = vec![0u8; BLOCK_SIZE];
        for i in 0..count {
            self.read_block(lba + i as u64, &mut scratch)?;
            let mut one: [&mut [u8]; 1] = [&mut scratch[..]];
            sink(i, &mut one[..]);
        }
        Ok(())
    }

    /// Reads the (arbitrary, not necessarily consecutive) blocks named by
    /// `lbas` — block-queue commands are independent, so a metadata block
    /// and a data run can share one batch, one lock, one doorbell.
    ///
    /// `sink` receives each block under its `lbas` index, **in index
    /// order** — callers may rely on earlier entries having been delivered
    /// before later ones (e.g. tags before the data they authenticate).
    /// Buffer discipline is as [`RunStore::read_run_with`].
    ///
    /// # Errors
    ///
    /// As [`BlockStore::read_block`]; blocks before the failure have been
    /// delivered to `sink`, later ones have not.
    fn read_scatter_with(
        &mut self,
        lbas: &[u64],
        sink: &mut dyn FnMut(usize, &mut [&mut [u8]]),
    ) -> Result<(), BlockError> {
        let mut scratch = vec![0u8; BLOCK_SIZE];
        for (i, &lba) in lbas.iter().enumerate() {
            self.read_block(lba, &mut scratch)?;
            let mut one: [&mut [u8]; 1] = [&mut scratch[..]];
            sink(i, &mut one[..]);
        }
        Ok(())
    }
}

/// The host's backing store: plain memory the host fully controls.
///
/// Tests and the adversary use [`RamDisk::tamper`] and
/// [`RamDisk::snapshot_block`]/[`RamDisk::restore_block`] to model offline
/// modification and rollback of "disk" contents.
pub struct RamDisk {
    data: Vec<u8>,
}

impl RamDisk {
    /// Creates a zeroed disk of `blocks` blocks.
    pub fn new(blocks: u64) -> Self {
        RamDisk {
            data: vec![0u8; blocks as usize * BLOCK_SIZE],
        }
    }

    fn range(&self, lba: u64) -> Result<std::ops::Range<usize>, BlockError> {
        let start = (lba as usize)
            .checked_mul(BLOCK_SIZE)
            .ok_or(BlockError::OutOfRange)?;
        let end = start + BLOCK_SIZE;
        if end > self.data.len() {
            return Err(BlockError::OutOfRange);
        }
        Ok(start..end)
    }

    /// Host-side tampering: XORs `mask` into byte `offset` of block `lba`.
    ///
    /// # Errors
    ///
    /// [`BlockError::OutOfRange`].
    pub fn tamper(&mut self, lba: u64, offset: usize, mask: u8) -> Result<(), BlockError> {
        let r = self.range(lba)?;
        if offset >= BLOCK_SIZE {
            return Err(BlockError::OutOfRange);
        }
        self.data[r.start + offset] ^= mask;
        Ok(())
    }

    /// Copies out a block for a later rollback.
    ///
    /// # Errors
    ///
    /// [`BlockError::OutOfRange`].
    pub fn snapshot_block(&self, lba: u64) -> Result<Vec<u8>, BlockError> {
        Ok(self.data[self.range(lba)?].to_vec())
    }

    /// Restores a previously snapshotted block (the rollback attack).
    ///
    /// # Errors
    ///
    /// [`BlockError::OutOfRange`] / [`BlockError::BadLength`].
    pub fn restore_block(&mut self, lba: u64, snapshot: &[u8]) -> Result<(), BlockError> {
        if snapshot.len() != BLOCK_SIZE {
            return Err(BlockError::BadLength);
        }
        let r = self.range(lba)?;
        self.data[r].copy_from_slice(snapshot);
        Ok(())
    }
}

impl RunStore for RamDisk {}

impl BlockStore for RamDisk {
    fn read_block(&mut self, lba: u64, buf: &mut [u8]) -> Result<(), BlockError> {
        if buf.len() != BLOCK_SIZE {
            return Err(BlockError::BadLength);
        }
        let r = self.range(lba)?;
        buf.copy_from_slice(&self.data[r]);
        Ok(())
    }

    fn write_block(&mut self, lba: u64, data: &[u8]) -> Result<(), BlockError> {
        if data.len() != BLOCK_SIZE {
            return Err(BlockError::BadLength);
        }
        let r = self.range(lba)?;
        self.data[r].copy_from_slice(data);
        Ok(())
    }

    fn blocks(&self) -> u64 {
        (self.data.len() / BLOCK_SIZE) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_roundtrip() {
        let mut d = RamDisk::new(4);
        let block = vec![0xCD; BLOCK_SIZE];
        d.write_block(2, &block).unwrap();
        let mut out = vec![0u8; BLOCK_SIZE];
        d.read_block(2, &mut out).unwrap();
        assert_eq!(out, block);
        // Other blocks untouched.
        d.read_block(1, &mut out).unwrap();
        assert_eq!(out, vec![0u8; BLOCK_SIZE]);
    }

    #[test]
    fn bounds_and_length_checks() {
        let mut d = RamDisk::new(2);
        let block = vec![0u8; BLOCK_SIZE];
        assert_eq!(d.write_block(2, &block), Err(BlockError::OutOfRange));
        assert_eq!(d.write_block(0, &block[..100]), Err(BlockError::BadLength));
        let mut small = vec![0u8; 100];
        assert_eq!(d.read_block(0, &mut small), Err(BlockError::BadLength));
        assert_eq!(d.blocks(), 2);
    }

    #[test]
    fn tamper_and_rollback_primitives() {
        let mut d = RamDisk::new(2);
        d.write_block(0, &vec![7u8; BLOCK_SIZE]).unwrap();
        let snap = d.snapshot_block(0).unwrap();
        d.write_block(0, &vec![8u8; BLOCK_SIZE]).unwrap();
        d.restore_block(0, &snap).unwrap();
        let mut out = vec![0u8; BLOCK_SIZE];
        d.read_block(0, &mut out).unwrap();
        assert_eq!(out, vec![7u8; BLOCK_SIZE]);
        d.tamper(0, 10, 0xFF).unwrap();
        d.read_block(0, &mut out).unwrap();
        assert_eq!(out[10], 7 ^ 0xFF);
    }
}
