//! The authenticated-encryption block layer.
//!
//! Data at rest is the host's to read and modify (the disk is host
//! hardware, ④ in Figure 1). This layer gives the in-TEE filesystem the
//! guarantees the paper's trust model demands:
//!
//! * **confidentiality** — every block is ChaCha20-Poly1305-sealed before
//!   it leaves the TEE;
//! * **integrity** — tags live in a metadata region; any host tampering
//!   surfaces as [`BlockError::IntegrityViolation`];
//! * **freshness** — a per-block generation counter, kept in *private*
//!   guest memory and bound into the nonce/AAD, turns replay of an old
//!   (validly sealed) block into [`BlockError::Rollback`].
//!
//! Layout on the underlying store for `n` logical blocks:
//! physical `[0, n)` = ciphertext blocks, physical `[n, ...)` = packed
//! 16-byte tags (256 per metadata block).
//!
//! Two data paths share that layout:
//!
//! * the serial [`BlockStore`] methods — the `storage_v1` shape, one
//!   block per call, sealing through a private scratch buffer
//!   ([`ChaCha20Poly1305::seal_fused_scatter`], bit-identical to the
//!   legacy in-place seal);
//! * the batched [`CryptStore::write_run`] / [`CryptStore::read_run`]
//!   over a [`RunStore`] — writes seal *runs* of blocks with one
//!   multi-stream pass ([`seal_batch_scatter`]) directly into whatever
//!   buffers the store hands out (ring-slot memory for the block
//!   transport: ciphertext never exists anywhere else), reads gather-open
//!   each block straight out of the store's buffers with a single fetch
//!   per byte ([`ChaCha20Poly1305::open_fused_gather`]), and the tag-block
//!   read-modify-write is amortized over the run. Ciphertext, tags, and
//!   tamper/rollback verdicts are bit-identical to the serial path.

use crate::blockdev::{BlockStore, RunStore, BLOCK_SIZE};
use crate::BlockError;
use cio_crypto::aead::{seal_batch_scatter, ChaCha20Poly1305, MAX_BATCH_RECORDS};
use cio_crypto::poly1305::TAG_LEN;
use cio_sim::{Clock, CostModel, Meter, Stage, Telemetry};

/// Tags packed per metadata block.
const TAGS_PER_BLOCK: u64 = (BLOCK_SIZE / TAG_LEN) as u64;

/// Blocks sealed/opened per batched chunk (the crypto batch width, which
/// deliberately equals the ring's `MAX_BATCH`).
const RUN: usize = MAX_BATCH_RECORDS;

/// An encrypting, integrity-protecting, rollback-detecting block layer.
pub struct CryptStore<S: BlockStore> {
    inner: S,
    aead: ChaCha20Poly1305,
    logical_blocks: u64,
    /// Private generation counters (freshness state). Real systems persist
    /// these in sealed storage or a Merkle root; the model keeps them in
    /// TEE memory, which is equivalent for the threat model here.
    generations: Vec<u64>,
    /// Optional simulation hooks: AEAD work charged to the virtual clock.
    hooks: Option<(Clock, CostModel, Meter)>,
    telemetry: Telemetry,
    tq: usize,
    /// Steady-state scratch (serial seal staging, tag RMW, rollback
    /// probes) — allocated once, so the data path is allocation-free.
    ct_scratch: Vec<u8>,
    tag_scratch: Vec<u8>,
    probe_scratch: Vec<u8>,
    /// Per-run tag staging for the batched paths: tags for every block of
    /// the run accumulate here so the metadata read-modify-write happens
    /// once per spanned tag block per *run*, not per chunk. Warmed to a
    /// full tag block's worth (256 tags); longer runs grow it once.
    run_tags: Vec<[u8; TAG_LEN]>,
    /// Scatter list staging for batched reads (tag blocks + data blocks
    /// in one transport batch).
    lba_scratch: Vec<u64>,
}

impl<S: BlockStore> CryptStore<S> {
    /// Wraps `inner`, reserving its tail for tag metadata.
    ///
    /// # Errors
    ///
    /// [`BlockError::NoSpace`] if the store is too small to hold any
    /// logical blocks plus metadata.
    pub fn new(inner: S, key: [u8; 32]) -> Result<Self, BlockError> {
        let physical = inner.blocks();
        // l logical blocks need l + ceil(l / TAGS_PER_BLOCK) physical.
        let mut logical = physical.saturating_sub(1);
        while logical > 0 && logical + logical.div_ceil(TAGS_PER_BLOCK) > physical {
            logical -= 1;
        }
        if logical == 0 {
            return Err(BlockError::NoSpace);
        }
        Ok(CryptStore {
            inner,
            aead: ChaCha20Poly1305::new(key),
            logical_blocks: logical,
            generations: vec![0; logical as usize],
            hooks: None,
            telemetry: Telemetry::disabled(),
            tq: 0,
            ct_scratch: vec![0u8; BLOCK_SIZE],
            tag_scratch: vec![0u8; BLOCK_SIZE],
            probe_scratch: vec![0u8; BLOCK_SIZE],
            run_tags: vec![[0u8; TAG_LEN]; TAGS_PER_BLOCK as usize],
            lba_scratch: Vec::with_capacity(2 * RUN),
        })
    }

    /// Attaches simulation hooks so per-block AEAD work is charged.
    pub fn set_hooks(&mut self, clock: Clock, cost: CostModel, meter: Meter) {
        self.hooks = Some((clock, cost, meter));
    }

    /// Attributes this layer's seal/open work to `queue` in `telemetry`.
    pub fn set_telemetry(&mut self, telemetry: Telemetry, queue: usize) {
        self.telemetry = telemetry;
        self.tq = queue;
    }

    fn charge_aead(&self) {
        if let Some((clock, cost, meter)) = &self.hooks {
            clock.advance(cost.aead(BLOCK_SIZE));
            meter.aead_ops(1);
            meter.aead_bytes(BLOCK_SIZE as u64);
        }
    }

    /// The wrapped store (host access for adversarial tests).
    pub fn inner_mut(&mut self) -> &mut S {
        &mut self.inner
    }

    fn tag_location(&self, lba: u64) -> (u64, usize) {
        let block = self.logical_blocks + lba / TAGS_PER_BLOCK;
        let offset = (lba % TAGS_PER_BLOCK) as usize * TAG_LEN;
        (block, offset)
    }

    fn nonce(lba: u64, generation: u64) -> [u8; 12] {
        let mut n = [0u8; 12];
        n[..4].copy_from_slice(&(lba as u32).to_le_bytes());
        n[4..].copy_from_slice(&generation.to_le_bytes());
        n
    }

    fn check_range(&self, lba: u64, len: usize) -> Result<(), BlockError> {
        if lba >= self.logical_blocks {
            return Err(BlockError::OutOfRange);
        }
        if len != BLOCK_SIZE {
            return Err(BlockError::BadLength);
        }
        Ok(())
    }

    fn check_run(&self, lba: u64, len: usize) -> Result<usize, BlockError> {
        if !len.is_multiple_of(BLOCK_SIZE) {
            return Err(BlockError::BadLength);
        }
        let count = len / BLOCK_SIZE;
        let end = lba
            .checked_add(count as u64)
            .ok_or(BlockError::OutOfRange)?;
        if end > self.logical_blocks {
            return Err(BlockError::OutOfRange);
        }
        Ok(count)
    }

    /// Distinguishes tamper from rollback after a failed open: an older
    /// generation that verifies means the host served stale data. Probes
    /// re-read the block each iteration, exactly like the serial path, so
    /// batched and serial reads render identical verdicts.
    fn verdict(&mut self, lba: u64, generation: u64, tag: &[u8; TAG_LEN]) -> BlockError {
        let aad = lba.to_le_bytes();
        for g in (1..generation).rev() {
            if self.inner.read_block(lba, &mut self.probe_scratch).is_err() {
                break;
            }
            let n = Self::nonce(lba, g);
            if self
                .aead
                .open_in_place(&n, &aad, &mut self.probe_scratch, tag)
                .is_ok()
            {
                return BlockError::Rollback;
            }
        }
        BlockError::IntegrityViolation
    }
}

impl<S: RunStore> CryptStore<S> {
    /// Writes `data` (a whole number of blocks) to consecutive logical
    /// blocks starting at `lba`, sealing runs of up to [`RUN`] blocks
    /// with one multi-stream AEAD pass directly into the buffers the
    /// underlying store hands out — for the ring transport that is slot
    /// memory, so ciphertext is born in the shared slot and plaintext
    /// never leaves private memory.
    ///
    /// # Errors
    ///
    /// As [`BlockStore::write_block`]; on error nothing in the run is
    /// committed — partially written blocks fail closed (new ciphertext
    /// under the old tag reads as [`BlockError::IntegrityViolation`])
    /// until rewritten.
    pub fn write_run(&mut self, lba: u64, data: &[u8]) -> Result<(), BlockError> {
        let count = self.check_run(lba, data.len())?;
        self.run_tags.resize(count, [0u8; TAG_LEN]);
        let mut i = 0;
        while i < count {
            let k = (count - i).min(RUN);
            self.write_chunk(
                lba + i as u64,
                &data[i * BLOCK_SIZE..(i + k) * BLOCK_SIZE],
                i,
            )?;
            i += k;
        }
        // One tag-block read-modify-write per metadata block the *run*
        // spans (256 tags per block, so usually one), instead of one per
        // data block or per chunk.
        let first_tb = self.tag_location(lba).0;
        let last_tb = self.tag_location(lba + (count - 1) as u64).0;
        for tb in first_tb..=last_tb {
            self.inner.read_block(tb, &mut self.tag_scratch)?;
            for i in 0..count {
                let (b, off) = self.tag_location(lba + i as u64);
                if b == tb {
                    self.tag_scratch[off..off + TAG_LEN].copy_from_slice(&self.run_tags[i]);
                }
            }
            self.inner.write_block(tb, &self.tag_scratch)?;
        }
        // Commit the generations only after data and tags landed.
        for i in 0..count {
            self.generations[(lba + i as u64) as usize] += 1;
        }
        Ok(())
    }

    fn write_chunk(&mut self, lba: u64, data: &[u8], tag_off: usize) -> Result<(), BlockError> {
        let k = data.len() / BLOCK_SIZE;
        let mut gens = [0u64; RUN];
        let mut nonces = [[0u8; 12]; RUN];
        let mut aads = [[0u8; 8]; RUN];
        for i in 0..k {
            let b = lba + i as u64;
            gens[i] = self.generations[b as usize] + 1;
            nonces[i] = Self::nonce(b, gens[i]);
            aads[i] = b.to_le_bytes();
        }
        let Self {
            inner,
            aead,
            hooks,
            telemetry,
            tq,
            run_tags,
            ..
        } = self;
        let (aead, hooks, telemetry, tq) = (&*aead, &*hooks, &*telemetry, *tq);
        let tags = &mut run_tags[tag_off..tag_off + k];
        inner.write_run_with(lba, k, &mut |base, slots| {
            let kk = slots.len();
            let _seal = telemetry.span(tq, Stage::BlkSeal);
            if let Some((clock, cost, meter)) = hooks {
                clock.advance(cost.aead_batch(kk, kk * BLOCK_SIZE));
                meter.aead_ops(kk as u64);
                meter.aead_bytes((kk * BLOCK_SIZE) as u64);
            }
            let aead_refs: [&ChaCha20Poly1305; RUN] = [aead; RUN];
            let mut aad_refs: [&[u8]; RUN] = [&[]; RUN];
            let mut pt_refs: [&[u8]; RUN] = [&[]; RUN];
            for i in 0..kk {
                aad_refs[i] = &aads[base + i];
                pt_refs[i] = &data[(base + i) * BLOCK_SIZE..(base + i + 1) * BLOCK_SIZE];
            }
            seal_batch_scatter(
                &aead_refs[..kk],
                &nonces[base..base + kk],
                &aad_refs[..kk],
                &pt_refs[..kk],
                slots,
                &mut tags[base..base + kk],
            );
        })?;
        Ok(())
    }

    /// Reads a whole number of blocks starting at `lba` into `out`,
    /// gather-opening each block straight out of the buffers the
    /// underlying store hands out (ring-slot memory for the block
    /// transport) with a single fetch per ciphertext byte. Never-written
    /// blocks read as zeros without touching the store.
    ///
    /// # Errors
    ///
    /// As [`BlockStore::read_block`]. On a verification failure, blocks
    /// before the failing one are delivered intact; the failing block and
    /// everything after it read as zeros, and the error is the failing
    /// block's verdict ([`BlockError::IntegrityViolation`] or
    /// [`BlockError::Rollback`]).
    pub fn read_run(&mut self, lba: u64, out: &mut [u8]) -> Result<(), BlockError> {
        let count = self.check_run(lba, out.len())?;
        let mut i = 0;
        while i < count {
            if self.generations[(lba + i as u64) as usize] == 0 {
                let mut j = i;
                while j < count && self.generations[(lba + j as u64) as usize] == 0 {
                    j += 1;
                }
                out[i * BLOCK_SIZE..j * BLOCK_SIZE].fill(0);
                i = j;
                continue;
            }
            let mut j = i;
            while j < count && self.generations[(lba + j as u64) as usize] != 0 {
                j += 1;
            }
            if let Err(e) =
                self.read_segment(lba + i as u64, &mut out[i * BLOCK_SIZE..j * BLOCK_SIZE])
            {
                // The failing block zeroed itself and its segment tail;
                // zero everything after the segment too.
                out[j * BLOCK_SIZE..].fill(0);
                return Err(e);
            }
            i = j;
        }
        Ok(())
    }

    /// Reads one contiguous written segment as a single scatter batch:
    /// the spanned tag blocks lead the batch, the data blocks follow, so
    /// metadata and data share locks and doorbells. In-order delivery
    /// ([`RunStore::read_scatter_with`]) guarantees every tag has arrived
    /// before the block it authenticates is opened.
    fn read_segment(&mut self, lba: u64, out: &mut [u8]) -> Result<(), BlockError> {
        let k = out.len() / BLOCK_SIZE;
        self.run_tags.resize(k, [0u8; TAG_LEN]);
        let first_tb = self.tag_location(lba).0;
        let last_tb = self.tag_location(lba + (k - 1) as u64).0;
        let t = (last_tb - first_tb + 1) as usize;
        self.lba_scratch.clear();
        self.lba_scratch.extend(first_tb..=last_tb);
        self.lba_scratch.extend((0..k as u64).map(|i| lba + i));
        let mut first_fail: Option<usize> = None;
        {
            let Self {
                inner,
                aead,
                hooks,
                telemetry,
                tq,
                run_tags,
                generations,
                logical_blocks,
                lba_scratch,
                ..
            } = self;
            let (aead, hooks, telemetry, tq, logical_blocks) =
                (&*aead, &*hooks, &*telemetry, *tq, *logical_blocks);
            let out = &mut *out;
            let first_fail = &mut first_fail;
            let run_tags = &mut *run_tags;
            let generations = &*generations;
            inner.read_scatter_with(lba_scratch, &mut |base, slots| {
                for (si, slot) in slots.iter_mut().enumerate() {
                    let idx = base + si;
                    if idx < t {
                        // A tag block: extract every tag of ours it holds.
                        let tb = first_tb + idx as u64;
                        for (i, tag) in run_tags.iter_mut().enumerate().take(k) {
                            let b = lba + i as u64;
                            if logical_blocks + b / TAGS_PER_BLOCK == tb {
                                let off = (b % TAGS_PER_BLOCK) as usize * TAG_LEN;
                                tag.copy_from_slice(&slot[off..off + TAG_LEN]);
                            }
                        }
                        continue;
                    }
                    let i = idx - t;
                    let dst = &mut out[i * BLOCK_SIZE..(i + 1) * BLOCK_SIZE];
                    if first_fail.is_some() {
                        dst.fill(0);
                        continue;
                    }
                    let _seal = telemetry.span(tq, Stage::BlkSeal);
                    if let Some((clock, cost, meter)) = hooks {
                        clock.advance(cost.aead(BLOCK_SIZE));
                        meter.aead_ops(1);
                        meter.aead_bytes(BLOCK_SIZE as u64);
                    }
                    let b = lba + i as u64;
                    let nonce = Self::nonce(b, generations[b as usize]);
                    let aad = b.to_le_bytes();
                    // Single fetch per ciphertext byte, MAC and decrypt
                    // from the same fetched bytes; `dst` is zeroed by the
                    // gather-open on failure.
                    if aead
                        .open_fused_gather(&nonce, &aad, &slot[..], dst, &run_tags[i])
                        .is_err()
                    {
                        *first_fail = Some(i);
                    }
                }
            })?;
        }
        if let Some(fi) = first_fail {
            out[fi * BLOCK_SIZE..].fill(0);
            let tag = self.run_tags[fi];
            let gen = self.generations[(lba + fi as u64) as usize];
            return Err(self.verdict(lba + fi as u64, gen, &tag));
        }
        Ok(())
    }
}

impl<S: BlockStore> BlockStore for CryptStore<S> {
    fn read_block(&mut self, lba: u64, buf: &mut [u8]) -> Result<(), BlockError> {
        self.check_range(lba, buf.len())?;
        let generation = self.generations[lba as usize];
        if generation == 0 {
            // Never written: logically zero, nothing stored to verify.
            buf.fill(0);
            return Ok(());
        }
        self.inner.read_block(lba, buf)?;
        let (tag_block, tag_off) = self.tag_location(lba);
        self.inner.read_block(tag_block, &mut self.tag_scratch)?;
        let mut tag = [0u8; TAG_LEN];
        tag.copy_from_slice(&self.tag_scratch[tag_off..tag_off + TAG_LEN]);

        let aad = lba.to_le_bytes();
        let nonce = Self::nonce(lba, generation);
        let opened = {
            let _seal = self.telemetry.span(self.tq, Stage::BlkSeal);
            self.charge_aead();
            self.aead.open_in_place(&nonce, &aad, buf, &tag)
        };
        match opened {
            Ok(()) => Ok(()),
            Err(_) => {
                buf.fill(0);
                Err(self.verdict(lba, generation, &tag))
            }
        }
    }

    fn write_block(&mut self, lba: u64, data: &[u8]) -> Result<(), BlockError> {
        self.check_range(lba, data.len())?;
        let generation = self.generations[lba as usize] + 1;
        let aad = lba.to_le_bytes();
        let nonce = Self::nonce(lba, generation);
        // Scatter-seal through the private scratch: bit-identical to the
        // legacy in-place seal, without the per-write allocation.
        let tag = {
            let _seal = self.telemetry.span(self.tq, Stage::BlkSeal);
            self.charge_aead();
            self.aead
                .seal_fused_scatter(&nonce, &aad, data, &mut self.ct_scratch)
        };
        self.inner.write_block(lba, &self.ct_scratch)?;

        let (tag_block, tag_off) = self.tag_location(lba);
        self.inner.read_block(tag_block, &mut self.tag_scratch)?;
        self.tag_scratch[tag_off..tag_off + TAG_LEN].copy_from_slice(&tag);
        self.inner.write_block(tag_block, &self.tag_scratch)?;

        // Commit the generation only after both writes landed.
        self.generations[lba as usize] = generation;
        Ok(())
    }

    fn blocks(&self) -> u64 {
        self.logical_blocks
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blockdev::RamDisk;

    const KEY: [u8; 32] = [0x33; 32];

    fn store(physical: u64) -> CryptStore<RamDisk> {
        CryptStore::new(RamDisk::new(physical), KEY).unwrap()
    }

    fn pattern(i: usize) -> Vec<u8> {
        (0..BLOCK_SIZE)
            .map(|j| ((i * 31 + j * 11) % 253) as u8)
            .collect()
    }

    #[test]
    fn capacity_reserves_metadata() {
        let s = store(64);
        assert!(s.blocks() < 64);
        assert!(s.blocks() >= 62);
        assert!(CryptStore::new(RamDisk::new(1), KEY).is_err());
    }

    #[test]
    fn roundtrip_and_zero_fresh_blocks() {
        let mut s = store(16);
        let mut buf = vec![0xFFu8; BLOCK_SIZE];
        s.read_block(3, &mut buf).unwrap();
        assert_eq!(buf, vec![0u8; BLOCK_SIZE], "unwritten reads as zero");
        let data: Vec<u8> = (0..BLOCK_SIZE).map(|i| (i % 251) as u8).collect();
        s.write_block(3, &data).unwrap();
        s.read_block(3, &mut buf).unwrap();
        assert_eq!(buf, data);
    }

    #[test]
    fn ciphertext_differs_from_plaintext() {
        let mut s = store(16);
        let data = vec![0xABu8; BLOCK_SIZE];
        s.write_block(0, &data).unwrap();
        let raw = s.inner_mut().snapshot_block(0).unwrap();
        assert_ne!(raw, data, "host must not see plaintext");
        // Equal plaintexts at different LBAs yield different ciphertexts.
        s.write_block(1, &data).unwrap();
        let raw1 = s.inner_mut().snapshot_block(1).unwrap();
        assert_ne!(raw, raw1);
    }

    #[test]
    fn tamper_detected() {
        let mut s = store(16);
        s.write_block(5, &vec![1u8; BLOCK_SIZE]).unwrap();
        s.inner_mut().tamper(5, 100, 0x01).unwrap();
        let mut buf = vec![0u8; BLOCK_SIZE];
        assert_eq!(
            s.read_block(5, &mut buf),
            Err(BlockError::IntegrityViolation)
        );
        // No plaintext leaks on failure.
        assert_eq!(buf, vec![0u8; BLOCK_SIZE]);
    }

    #[test]
    fn tag_tamper_detected() {
        let mut s = store(16);
        s.write_block(5, &vec![1u8; BLOCK_SIZE]).unwrap();
        let tag_block = s.blocks(); // first metadata block
        s.inner_mut().tamper(tag_block, 5 * TAG_LEN, 0x80).unwrap();
        let mut buf = vec![0u8; BLOCK_SIZE];
        assert_eq!(
            s.read_block(5, &mut buf),
            Err(BlockError::IntegrityViolation)
        );
    }

    #[test]
    fn rollback_detected() {
        let mut s = store(16);
        s.write_block(7, &vec![1u8; BLOCK_SIZE]).unwrap();
        // Host snapshots version 1 (data + matching tag block).
        let old_data = s.inner_mut().snapshot_block(7).unwrap();
        let tag_block = s.blocks();
        let old_tags = s.inner_mut().snapshot_block(tag_block).unwrap();
        // Guest writes version 2.
        s.write_block(7, &vec![2u8; BLOCK_SIZE]).unwrap();
        // Host rolls both back.
        s.inner_mut().restore_block(7, &old_data).unwrap();
        s.inner_mut().restore_block(tag_block, &old_tags).unwrap();
        let mut buf = vec![0u8; BLOCK_SIZE];
        assert_eq!(s.read_block(7, &mut buf), Err(BlockError::Rollback));
    }

    #[test]
    fn overwrites_use_fresh_nonces() {
        let mut s = store(16);
        s.write_block(2, &vec![9u8; BLOCK_SIZE]).unwrap();
        let ct1 = s.inner_mut().snapshot_block(2).unwrap();
        s.write_block(2, &vec![9u8; BLOCK_SIZE]).unwrap();
        let ct2 = s.inner_mut().snapshot_block(2).unwrap();
        assert_ne!(ct1, ct2, "same plaintext re-encrypts differently");
        let mut buf = vec![0u8; BLOCK_SIZE];
        s.read_block(2, &mut buf).unwrap();
        assert_eq!(buf, vec![9u8; BLOCK_SIZE]);
    }

    #[test]
    fn bounds_checks() {
        let mut s = store(16);
        let mut buf = vec![0u8; BLOCK_SIZE];
        assert_eq!(
            s.read_block(s.blocks(), &mut buf),
            Err(BlockError::OutOfRange)
        );
        assert_eq!(s.write_block(0, &buf[..10]), Err(BlockError::BadLength));
        // Run bounds.
        let n = s.blocks();
        let big = vec![0u8; 2 * BLOCK_SIZE];
        assert_eq!(s.write_run(n - 1, &big), Err(BlockError::OutOfRange));
        let mut out = vec![0u8; 2 * BLOCK_SIZE];
        assert_eq!(s.read_run(n - 1, &mut out), Err(BlockError::OutOfRange));
        assert_eq!(s.write_run(0, &big[..100]), Err(BlockError::BadLength));
    }

    #[test]
    fn run_path_is_bit_identical_to_serial() {
        // Same key, same write order => same generations => the batched
        // path must produce exactly the bytes the serial path produces,
        // data blocks and tag blocks alike.
        let mut serial = store(64);
        let mut batched = store(64);
        let n = 40usize;
        let data: Vec<u8> = (0..n).flat_map(pattern).collect();
        for i in 0..n {
            serial
                .write_block(2 + i as u64, &data[i * BLOCK_SIZE..(i + 1) * BLOCK_SIZE])
                .unwrap();
        }
        batched.write_run(2, &data).unwrap();
        for lba in 0..64 {
            assert_eq!(
                serial.inner_mut().snapshot_block(lba).unwrap(),
                batched.inner_mut().snapshot_block(lba).unwrap(),
                "physical block {lba} differs"
            );
        }
        // And the batched read agrees with the serial read.
        let mut out = vec![0u8; n * BLOCK_SIZE];
        batched.read_run(2, &mut out).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn read_run_zero_fills_fresh_blocks() {
        let mut s = store(32);
        s.write_block(4, &pattern(4)).unwrap();
        s.write_block(6, &pattern(6)).unwrap();
        let mut out = vec![0xAAu8; 8 * BLOCK_SIZE];
        s.read_run(0, &mut out).unwrap();
        for i in 0..8usize {
            let got = &out[i * BLOCK_SIZE..(i + 1) * BLOCK_SIZE];
            if i == 4 || i == 6 {
                assert_eq!(got, &pattern(i)[..], "block {i}");
            } else {
                assert!(got.iter().all(|&b| b == 0), "fresh block {i} not zeroed");
            }
        }
    }

    #[test]
    fn run_tamper_fails_closed_from_failure_onward() {
        let mut s = store(64);
        let n = 12usize;
        let data: Vec<u8> = (0..n).flat_map(pattern).collect();
        s.write_run(0, &data).unwrap();
        s.inner_mut().tamper(5, 17, 0x40).unwrap();
        let mut out = vec![0x55u8; n * BLOCK_SIZE];
        assert_eq!(s.read_run(0, &mut out), Err(BlockError::IntegrityViolation));
        // Blocks before the failure are intact; the failing block and
        // everything after read as zeros.
        assert_eq!(&out[..5 * BLOCK_SIZE], &data[..5 * BLOCK_SIZE]);
        assert!(out[5 * BLOCK_SIZE..].iter().all(|&b| b == 0));
    }

    #[test]
    fn run_rollback_verdict_matches_serial() {
        let mut s = store(64);
        let n = 10usize;
        let v1: Vec<u8> = (0..n).flat_map(pattern).collect();
        s.write_run(0, &v1).unwrap();
        // Host snapshots the whole version-1 run (data + tag block) ...
        let snaps: Vec<Vec<u8>> = (0..n as u64)
            .map(|l| s.inner_mut().snapshot_block(l).unwrap())
            .collect();
        let tag_block = s.blocks();
        let old_tags = s.inner_mut().snapshot_block(tag_block).unwrap();
        let v2: Vec<u8> = (0..n).flat_map(|i| pattern(i + 100)).collect();
        s.write_run(0, &v2).unwrap();
        // ... and rolls everything back after version 2 lands.
        for (l, snap) in snaps.iter().enumerate() {
            s.inner_mut().restore_block(l as u64, snap).unwrap();
        }
        s.inner_mut().restore_block(tag_block, &old_tags).unwrap();
        let mut out = vec![0u8; n * BLOCK_SIZE];
        assert_eq!(s.read_run(0, &mut out), Err(BlockError::Rollback));
        // Serial agrees.
        let mut buf = vec![0u8; BLOCK_SIZE];
        assert_eq!(s.read_block(7, &mut buf), Err(BlockError::Rollback));
    }
}
