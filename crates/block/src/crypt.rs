//! The authenticated-encryption block layer.
//!
//! Data at rest is the host's to read and modify (the disk is host
//! hardware, ④ in Figure 1). This layer gives the in-TEE filesystem the
//! guarantees the paper's trust model demands:
//!
//! * **confidentiality** — every block is ChaCha20-Poly1305-sealed before
//!   it leaves the TEE;
//! * **integrity** — tags live in a metadata region; any host tampering
//!   surfaces as [`BlockError::IntegrityViolation`];
//! * **freshness** — a per-block generation counter, kept in *private*
//!   guest memory and bound into the nonce/AAD, turns replay of an old
//!   (validly sealed) block into [`BlockError::Rollback`].
//!
//! Layout on the underlying store for `n` logical blocks:
//! physical `[0, n)` = ciphertext blocks, physical `[n, ...)` = packed
//! 16-byte tags (256 per metadata block).

use crate::blockdev::{BlockStore, BLOCK_SIZE};
use crate::BlockError;
use cio_crypto::aead::ChaCha20Poly1305;
use cio_crypto::poly1305::TAG_LEN;
use cio_sim::{Clock, CostModel, Meter};

/// Tags packed per metadata block.
const TAGS_PER_BLOCK: u64 = (BLOCK_SIZE / TAG_LEN) as u64;

/// An encrypting, integrity-protecting, rollback-detecting block layer.
pub struct CryptStore<S: BlockStore> {
    inner: S,
    aead: ChaCha20Poly1305,
    logical_blocks: u64,
    /// Private generation counters (freshness state). Real systems persist
    /// these in sealed storage or a Merkle root; the model keeps them in
    /// TEE memory, which is equivalent for the threat model here.
    generations: Vec<u64>,
    /// Optional simulation hooks: AEAD work charged to the virtual clock.
    hooks: Option<(Clock, CostModel, Meter)>,
}

impl<S: BlockStore> CryptStore<S> {
    /// Wraps `inner`, reserving its tail for tag metadata.
    ///
    /// # Errors
    ///
    /// [`BlockError::NoSpace`] if the store is too small to hold any
    /// logical blocks plus metadata.
    pub fn new(inner: S, key: [u8; 32]) -> Result<Self, BlockError> {
        let physical = inner.blocks();
        // l logical blocks need l + ceil(l / TAGS_PER_BLOCK) physical.
        let mut logical = physical.saturating_sub(1);
        while logical > 0 && logical + logical.div_ceil(TAGS_PER_BLOCK) > physical {
            logical -= 1;
        }
        if logical == 0 {
            return Err(BlockError::NoSpace);
        }
        Ok(CryptStore {
            inner,
            aead: ChaCha20Poly1305::new(key),
            logical_blocks: logical,
            generations: vec![0; logical as usize],
            hooks: None,
        })
    }

    /// Attaches simulation hooks so per-block AEAD work is charged.
    pub fn set_hooks(&mut self, clock: Clock, cost: CostModel, meter: Meter) {
        self.hooks = Some((clock, cost, meter));
    }

    fn charge_aead(&self) {
        if let Some((clock, cost, meter)) = &self.hooks {
            clock.advance(cost.aead(BLOCK_SIZE));
            meter.aead_ops(1);
            meter.aead_bytes(BLOCK_SIZE as u64);
        }
    }

    /// The wrapped store (host access for adversarial tests).
    pub fn inner_mut(&mut self) -> &mut S {
        &mut self.inner
    }

    fn tag_location(&self, lba: u64) -> (u64, usize) {
        let block = self.logical_blocks + lba / TAGS_PER_BLOCK;
        let offset = (lba % TAGS_PER_BLOCK) as usize * TAG_LEN;
        (block, offset)
    }

    fn nonce(lba: u64, generation: u64) -> [u8; 12] {
        let mut n = [0u8; 12];
        n[..4].copy_from_slice(&(lba as u32).to_le_bytes());
        n[4..].copy_from_slice(&generation.to_le_bytes());
        n
    }

    fn check_range(&self, lba: u64, len: usize) -> Result<(), BlockError> {
        if lba >= self.logical_blocks {
            return Err(BlockError::OutOfRange);
        }
        if len != BLOCK_SIZE {
            return Err(BlockError::BadLength);
        }
        Ok(())
    }
}

impl<S: BlockStore> BlockStore for CryptStore<S> {
    fn read_block(&mut self, lba: u64, buf: &mut [u8]) -> Result<(), BlockError> {
        self.check_range(lba, buf.len())?;
        let generation = self.generations[lba as usize];
        if generation == 0 {
            // Never written: logically zero, nothing stored to verify.
            buf.fill(0);
            return Ok(());
        }
        self.inner.read_block(lba, buf)?;
        let (tag_block, tag_off) = self.tag_location(lba);
        let mut tag_blk = vec![0u8; BLOCK_SIZE];
        self.inner.read_block(tag_block, &mut tag_blk)?;
        let mut tag = [0u8; TAG_LEN];
        tag.copy_from_slice(&tag_blk[tag_off..tag_off + TAG_LEN]);

        let aad = lba.to_le_bytes();
        let nonce = Self::nonce(lba, generation);
        self.charge_aead();
        match self.aead.open_in_place(&nonce, &aad, buf, &tag) {
            Ok(()) => Ok(()),
            Err(_) => {
                // Distinguish tamper from rollback: an older generation
                // that verifies means the host served stale data.
                for g in (1..generation).rev() {
                    let mut probe = vec![0u8; BLOCK_SIZE];
                    self.inner.read_block(lba, &mut probe)?;
                    let n = Self::nonce(lba, g);
                    if self.aead.open_in_place(&n, &aad, &mut probe, &tag).is_ok() {
                        buf.fill(0);
                        return Err(BlockError::Rollback);
                    }
                }
                buf.fill(0);
                Err(BlockError::IntegrityViolation)
            }
        }
    }

    fn write_block(&mut self, lba: u64, data: &[u8]) -> Result<(), BlockError> {
        self.check_range(lba, data.len())?;
        let generation = self.generations[lba as usize] + 1;
        let aad = lba.to_le_bytes();
        let nonce = Self::nonce(lba, generation);
        let mut ct = data.to_vec();
        self.charge_aead();
        let tag = self.aead.seal_in_place(&nonce, &aad, &mut ct);
        self.inner.write_block(lba, &ct)?;

        let (tag_block, tag_off) = self.tag_location(lba);
        let mut tag_blk = vec![0u8; BLOCK_SIZE];
        self.inner.read_block(tag_block, &mut tag_blk)?;
        tag_blk[tag_off..tag_off + TAG_LEN].copy_from_slice(&tag);
        self.inner.write_block(tag_block, &tag_blk)?;

        // Commit the generation only after both writes landed.
        self.generations[lba as usize] = generation;
        Ok(())
    }

    fn blocks(&self) -> u64 {
        self.logical_blocks
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blockdev::RamDisk;

    const KEY: [u8; 32] = [0x33; 32];

    fn store(physical: u64) -> CryptStore<RamDisk> {
        CryptStore::new(RamDisk::new(physical), KEY).unwrap()
    }

    #[test]
    fn capacity_reserves_metadata() {
        let s = store(64);
        assert!(s.blocks() < 64);
        assert!(s.blocks() >= 62);
        assert!(CryptStore::new(RamDisk::new(1), KEY).is_err());
    }

    #[test]
    fn roundtrip_and_zero_fresh_blocks() {
        let mut s = store(16);
        let mut buf = vec![0xFFu8; BLOCK_SIZE];
        s.read_block(3, &mut buf).unwrap();
        assert_eq!(buf, vec![0u8; BLOCK_SIZE], "unwritten reads as zero");
        let data: Vec<u8> = (0..BLOCK_SIZE).map(|i| (i % 251) as u8).collect();
        s.write_block(3, &data).unwrap();
        s.read_block(3, &mut buf).unwrap();
        assert_eq!(buf, data);
    }

    #[test]
    fn ciphertext_differs_from_plaintext() {
        let mut s = store(16);
        let data = vec![0xABu8; BLOCK_SIZE];
        s.write_block(0, &data).unwrap();
        let raw = s.inner_mut().snapshot_block(0).unwrap();
        assert_ne!(raw, data, "host must not see plaintext");
        // Equal plaintexts at different LBAs yield different ciphertexts.
        s.write_block(1, &data).unwrap();
        let raw1 = s.inner_mut().snapshot_block(1).unwrap();
        assert_ne!(raw, raw1);
    }

    #[test]
    fn tamper_detected() {
        let mut s = store(16);
        s.write_block(5, &vec![1u8; BLOCK_SIZE]).unwrap();
        s.inner_mut().tamper(5, 100, 0x01).unwrap();
        let mut buf = vec![0u8; BLOCK_SIZE];
        assert_eq!(
            s.read_block(5, &mut buf),
            Err(BlockError::IntegrityViolation)
        );
        // No plaintext leaks on failure.
        assert_eq!(buf, vec![0u8; BLOCK_SIZE]);
    }

    #[test]
    fn tag_tamper_detected() {
        let mut s = store(16);
        s.write_block(5, &vec![1u8; BLOCK_SIZE]).unwrap();
        let tag_block = s.blocks(); // first metadata block
        s.inner_mut().tamper(tag_block, 5 * TAG_LEN, 0x80).unwrap();
        let mut buf = vec![0u8; BLOCK_SIZE];
        assert_eq!(
            s.read_block(5, &mut buf),
            Err(BlockError::IntegrityViolation)
        );
    }

    #[test]
    fn rollback_detected() {
        let mut s = store(16);
        s.write_block(7, &vec![1u8; BLOCK_SIZE]).unwrap();
        // Host snapshots version 1 (data + matching tag block).
        let old_data = s.inner_mut().snapshot_block(7).unwrap();
        let tag_block = s.blocks();
        let old_tags = s.inner_mut().snapshot_block(tag_block).unwrap();
        // Guest writes version 2.
        s.write_block(7, &vec![2u8; BLOCK_SIZE]).unwrap();
        // Host rolls both back.
        s.inner_mut().restore_block(7, &old_data).unwrap();
        s.inner_mut().restore_block(tag_block, &old_tags).unwrap();
        let mut buf = vec![0u8; BLOCK_SIZE];
        assert_eq!(s.read_block(7, &mut buf), Err(BlockError::Rollback));
    }

    #[test]
    fn overwrites_use_fresh_nonces() {
        let mut s = store(16);
        s.write_block(2, &vec![9u8; BLOCK_SIZE]).unwrap();
        let ct1 = s.inner_mut().snapshot_block(2).unwrap();
        s.write_block(2, &vec![9u8; BLOCK_SIZE]).unwrap();
        let ct2 = s.inner_mut().snapshot_block(2).unwrap();
        assert_ne!(ct1, ct2, "same plaintext re-encrypts differently");
        let mut buf = vec![0u8; BLOCK_SIZE];
        s.read_block(2, &mut buf).unwrap();
        assert_eq!(buf, vec![9u8; BLOCK_SIZE]);
    }

    #[test]
    fn bounds_checks() {
        let mut s = store(16);
        let mut buf = vec![0u8; BLOCK_SIZE];
        assert_eq!(
            s.read_block(s.blocks(), &mut buf),
            Err(BlockError::OutOfRange)
        );
        assert_eq!(s.write_block(0, &buf[..10]), Err(BlockError::BadLength));
    }
}
