//! A small inode/extent filesystem.
//!
//! Enough of a filesystem to make the storage boundary comparison (E12)
//! real: a flat namespace of files with extent-mapped data, persisted
//! entirely through a [`BlockStore`] — so the *same* filesystem code runs
//! inside the TEE over [`crate::crypt::CryptStore`] (block-level boundary)
//! or on the untrusted host over a raw disk (file-ops boundary), which is
//! precisely the comparison §3.3 asks for.
//!
//! On-store layout:
//!
//! ```text
//! block 0:                superblock
//! blocks 1..=INODE_BLOCKS: inode table (16 inodes of 256 B per block)
//! next block:             allocation bitmap (1 block = 32768 data blocks)
//! remaining:              data blocks
//! ```

use crate::blockdev::{BlockStore, BLOCK_SIZE};
use crate::BlockError;

const MAGIC: u64 = 0xC10F_5202;
/// Blocks dedicated to the inode table.
const INODE_BLOCKS: u64 = 4;
/// Inode record size.
const INODE_SIZE: usize = 256;
/// Inodes per table block.
const INODES_PER_BLOCK: u64 = (BLOCK_SIZE / INODE_SIZE) as u64;
/// Maximum files.
pub const MAX_FILES: u64 = INODE_BLOCKS * INODES_PER_BLOCK;
/// Maximum file-name bytes.
pub const MAX_NAME: usize = 62;
/// Extents per inode.
const MAX_EXTENTS: usize = 8;

/// A file identifier (inode index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FileId(pub u64);

#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct Inode {
    used: bool,
    name: Vec<u8>,
    size: u64,
    extents: Vec<(u64, u32)>, // (first data-block index, block count)
}

impl Inode {
    fn encode(&self) -> [u8; INODE_SIZE] {
        let mut b = [0u8; INODE_SIZE];
        b[0] = u8::from(self.used);
        b[1] = self.name.len() as u8;
        b[2..2 + self.name.len()].copy_from_slice(&self.name);
        b[64..72].copy_from_slice(&self.size.to_le_bytes());
        for (i, (start, len)) in self.extents.iter().enumerate() {
            let off = 72 + i * 12;
            b[off..off + 8].copy_from_slice(&start.to_le_bytes());
            b[off + 8..off + 12].copy_from_slice(&len.to_le_bytes());
        }
        b
    }

    fn decode(b: &[u8]) -> Inode {
        let used = b[0] != 0;
        let name_len = (b[1] as usize).min(MAX_NAME);
        let name = b[2..2 + name_len].to_vec();
        let size = u64::from_le_bytes(b[64..72].try_into().expect("8 bytes"));
        let mut extents = Vec::new();
        for i in 0..MAX_EXTENTS {
            let off = 72 + i * 12;
            let start = u64::from_le_bytes(b[off..off + 8].try_into().expect("8 bytes"));
            let len = u32::from_le_bytes(b[off + 8..off + 12].try_into().expect("4 bytes"));
            if len > 0 {
                extents.push((start, len));
            }
        }
        Inode {
            used,
            name,
            size,
            extents,
        }
    }
}

/// The filesystem over any block store.
pub struct SimpleFs<S: BlockStore> {
    store: S,
    data_start: u64,
    data_blocks: u64,
}

impl<S: BlockStore> SimpleFs<S> {
    fn bitmap_block() -> u64 {
        1 + INODE_BLOCKS
    }

    /// Formats `store` and returns the mounted filesystem.
    ///
    /// # Errors
    ///
    /// [`BlockError::NoSpace`] if the store cannot hold the metadata.
    pub fn format(mut store: S) -> Result<Self, BlockError> {
        let total = store.blocks();
        let data_start = Self::bitmap_block() + 1;
        if total <= data_start + 1 {
            return Err(BlockError::NoSpace);
        }
        let data_blocks = (total - data_start).min(BLOCK_SIZE as u64 * 8);

        let mut sb = vec![0u8; BLOCK_SIZE];
        sb[0..8].copy_from_slice(&MAGIC.to_le_bytes());
        sb[8..16].copy_from_slice(&total.to_le_bytes());
        sb[16..24].copy_from_slice(&data_start.to_le_bytes());
        sb[24..32].copy_from_slice(&data_blocks.to_le_bytes());
        store.write_block(0, &sb)?;

        let zero = vec![0u8; BLOCK_SIZE];
        for b in 1..data_start {
            store.write_block(b, &zero)?;
        }
        Ok(SimpleFs {
            store,
            data_start,
            data_blocks,
        })
    }

    /// Mounts an already-formatted store.
    ///
    /// # Errors
    ///
    /// [`BlockError::BadSuperblock`] if the magic or geometry is invalid.
    pub fn mount(mut store: S) -> Result<Self, BlockError> {
        let mut sb = vec![0u8; BLOCK_SIZE];
        store.read_block(0, &mut sb)?;
        let magic = u64::from_le_bytes(sb[0..8].try_into().expect("8 bytes"));
        if magic != MAGIC {
            return Err(BlockError::BadSuperblock);
        }
        let total = u64::from_le_bytes(sb[8..16].try_into().expect("8 bytes"));
        let data_start = u64::from_le_bytes(sb[16..24].try_into().expect("8 bytes"));
        let data_blocks = u64::from_le_bytes(sb[24..32].try_into().expect("8 bytes"));
        if total != store.blocks() || data_start + data_blocks > total {
            return Err(BlockError::BadSuperblock);
        }
        Ok(SimpleFs {
            store,
            data_start,
            data_blocks,
        })
    }

    /// The underlying store (for adversarial tests).
    pub fn store_mut(&mut self) -> &mut S {
        &mut self.store
    }

    fn load_inode(&mut self, idx: u64) -> Result<Inode, BlockError> {
        let block = 1 + idx / INODES_PER_BLOCK;
        let off = (idx % INODES_PER_BLOCK) as usize * INODE_SIZE;
        let mut b = vec![0u8; BLOCK_SIZE];
        self.store.read_block(block, &mut b)?;
        Ok(Inode::decode(&b[off..off + INODE_SIZE]))
    }

    fn save_inode(&mut self, idx: u64, inode: &Inode) -> Result<(), BlockError> {
        let block = 1 + idx / INODES_PER_BLOCK;
        let off = (idx % INODES_PER_BLOCK) as usize * INODE_SIZE;
        let mut b = vec![0u8; BLOCK_SIZE];
        self.store.read_block(block, &mut b)?;
        b[off..off + INODE_SIZE].copy_from_slice(&inode.encode());
        self.store.write_block(block, &b)
    }

    fn with_bitmap<R>(&mut self, f: impl FnOnce(&mut Vec<u8>, u64) -> R) -> Result<R, BlockError> {
        let mut bm = vec![0u8; BLOCK_SIZE];
        self.store.read_block(Self::bitmap_block(), &mut bm)?;
        let r = f(&mut bm, self.data_blocks);
        self.store.write_block(Self::bitmap_block(), &bm)?;
        Ok(r)
    }

    /// Allocates `count` data blocks as one contiguous extent (first fit).
    fn alloc_extent(&mut self, count: u32) -> Result<Option<u64>, BlockError> {
        self.with_bitmap(|bm, data_blocks| {
            let is_free = |bm: &[u8], i: u64| bm[(i / 8) as usize] & (1 << (i % 8)) == 0;
            let mut run = 0u32;
            let mut start = 0u64;
            for i in 0..data_blocks {
                if is_free(bm, i) {
                    if run == 0 {
                        start = i;
                    }
                    run += 1;
                    if run == count {
                        for j in start..start + u64::from(count) {
                            bm[(j / 8) as usize] |= 1 << (j % 8);
                        }
                        return Some(start);
                    }
                } else {
                    run = 0;
                }
            }
            None
        })
    }

    fn free_extent(&mut self, start: u64, count: u32) -> Result<(), BlockError> {
        self.with_bitmap(|bm, _| {
            for j in start..start + u64::from(count) {
                bm[(j / 8) as usize] &= !(1 << (j % 8));
            }
        })
    }

    fn find(&mut self, name: &str) -> Result<Option<(u64, Inode)>, BlockError> {
        for idx in 0..MAX_FILES {
            let inode = self.load_inode(idx)?;
            if inode.used && inode.name == name.as_bytes() {
                return Ok(Some((idx, inode)));
            }
        }
        Ok(None)
    }

    /// Creates an empty file.
    ///
    /// # Errors
    ///
    /// [`BlockError::Exists`] / [`BlockError::NameTooLong`] /
    /// [`BlockError::NoSpace`].
    pub fn create(&mut self, name: &str) -> Result<FileId, BlockError> {
        if name.len() > MAX_NAME || name.is_empty() {
            return Err(BlockError::NameTooLong);
        }
        if self.find(name)?.is_some() {
            return Err(BlockError::Exists);
        }
        for idx in 0..MAX_FILES {
            let inode = self.load_inode(idx)?;
            if !inode.used {
                let fresh = Inode {
                    used: true,
                    name: name.as_bytes().to_vec(),
                    size: 0,
                    extents: Vec::new(),
                };
                self.save_inode(idx, &fresh)?;
                return Ok(FileId(idx));
            }
        }
        Err(BlockError::NoSpace)
    }

    /// Opens an existing file by name.
    ///
    /// # Errors
    ///
    /// [`BlockError::NoSuchFile`].
    pub fn open(&mut self, name: &str) -> Result<FileId, BlockError> {
        self.find(name)?
            .map(|(idx, _)| FileId(idx))
            .ok_or(BlockError::NoSuchFile)
    }

    /// The file's current size.
    ///
    /// # Errors
    ///
    /// [`BlockError::NoSuchFile`] for stale ids.
    pub fn size(&mut self, id: FileId) -> Result<u64, BlockError> {
        let inode = self.load_inode(id.0)?;
        if !inode.used {
            return Err(BlockError::NoSuchFile);
        }
        Ok(inode.size)
    }

    /// Maps a file-relative block index to a device block, if allocated.
    fn map_block(inode: &Inode, file_block: u64) -> Option<u64> {
        let mut remaining = file_block;
        for &(start, len) in &inode.extents {
            if remaining < u64::from(len) {
                return Some(start + remaining);
            }
            remaining -= u64::from(len);
        }
        None
    }

    fn allocated_blocks(inode: &Inode) -> u64 {
        inode.extents.iter().map(|&(_, l)| u64::from(l)).sum()
    }

    /// Writes `data` at `offset`, extending the file as needed.
    ///
    /// # Errors
    ///
    /// [`BlockError::NoSpace`] when allocation fails (including extent
    /// exhaustion); [`BlockError::NoSuchFile`] for stale ids.
    pub fn write(&mut self, id: FileId, offset: u64, data: &[u8]) -> Result<(), BlockError> {
        let mut inode = self.load_inode(id.0)?;
        if !inode.used {
            return Err(BlockError::NoSuchFile);
        }
        let end = offset + data.len() as u64;
        let needed_blocks = end.div_ceil(BLOCK_SIZE as u64);
        let have = Self::allocated_blocks(&inode);
        if needed_blocks > have {
            let grow = (needed_blocks - have) as u32;
            // Try one contiguous extent; split on fragmentation. Track what
            // this call allocated so a partial failure can roll back
            // instead of leaking bitmap blocks.
            let mut added: Vec<(u64, u32)> = Vec::new();
            let mut left = grow;
            let mut fail = None;
            while left > 0 {
                if inode.extents.len() >= MAX_EXTENTS {
                    fail = Some(BlockError::NoSpace);
                    break;
                }
                let mut try_len = left;
                let start = loop {
                    match self.alloc_extent(try_len)? {
                        Some(s) => break Some(s),
                        None if try_len > 1 => try_len /= 2,
                        None => break None,
                    }
                };
                let Some(start) = start else {
                    fail = Some(BlockError::NoSpace);
                    break;
                };
                added.push((start, try_len));
                // Merge with the previous extent when contiguous.
                if let Some(last) = inode.extents.last_mut() {
                    if last.0 + u64::from(last.1) == start {
                        last.1 += try_len;
                        left -= try_len;
                        continue;
                    }
                }
                inode.extents.push((start, try_len));
                left -= try_len;
            }
            if let Some(e) = fail {
                for (start, len) in added {
                    self.free_extent(start, len)?;
                }
                return Err(e);
            }
            // Zero every block this call allocated: reused blocks still
            // hold a deleted file's bytes, and serving them through holes
            // or short tails would leak data across files.
            let zero = vec![0u8; BLOCK_SIZE];
            for (start, len) in added {
                for b in start..start + u64::from(len) {
                    self.store.write_block(self.data_start + b, &zero)?;
                }
            }
        }

        // Write the data block by block (read-modify-write at the edges).
        let mut written = 0usize;
        while written < data.len() {
            let pos = offset + written as u64;
            let file_block = pos / BLOCK_SIZE as u64;
            let in_block = (pos % BLOCK_SIZE as u64) as usize;
            let take = (BLOCK_SIZE - in_block).min(data.len() - written);
            let dev_block =
                self.data_start + Self::map_block(&inode, file_block).ok_or(BlockError::NoSpace)?;
            let mut buf = vec![0u8; BLOCK_SIZE];
            if in_block != 0 || take != BLOCK_SIZE {
                self.store.read_block(dev_block, &mut buf)?;
            }
            buf[in_block..in_block + take].copy_from_slice(&data[written..written + take]);
            self.store.write_block(dev_block, &buf)?;
            written += take;
        }

        inode.size = inode.size.max(end);
        self.save_inode(id.0, &inode)
    }

    /// Reads up to `len` bytes at `offset`; short reads at EOF.
    ///
    /// # Errors
    ///
    /// [`BlockError::NoSuchFile`] for stale ids; storage-layer failures
    /// (integrity violations!) propagate.
    pub fn read(&mut self, id: FileId, offset: u64, len: usize) -> Result<Vec<u8>, BlockError> {
        let inode = self.load_inode(id.0)?;
        if !inode.used {
            return Err(BlockError::NoSuchFile);
        }
        if offset >= inode.size {
            return Ok(Vec::new());
        }
        let len = len.min((inode.size - offset) as usize);
        let mut out = Vec::with_capacity(len);
        while out.len() < len {
            let pos = offset + out.len() as u64;
            let file_block = pos / BLOCK_SIZE as u64;
            let in_block = (pos % BLOCK_SIZE as u64) as usize;
            let take = (BLOCK_SIZE - in_block).min(len - out.len());
            let Some(rel) = Self::map_block(&inode, file_block) else {
                // Sparse region (written past a hole): zeros.
                out.extend(std::iter::repeat_n(0, take));
                continue;
            };
            let mut buf = vec![0u8; BLOCK_SIZE];
            self.store.read_block(self.data_start + rel, &mut buf)?;
            out.extend_from_slice(&buf[in_block..in_block + take]);
        }
        Ok(out)
    }

    /// Deletes a file, freeing its blocks.
    ///
    /// # Errors
    ///
    /// [`BlockError::NoSuchFile`].
    pub fn delete(&mut self, name: &str) -> Result<(), BlockError> {
        let Some((idx, inode)) = self.find(name)? else {
            return Err(BlockError::NoSuchFile);
        };
        for &(start, len) in &inode.extents {
            self.free_extent(start, len)?;
        }
        self.save_inode(idx, &Inode::default())
    }

    /// Lists all file names.
    ///
    /// # Errors
    ///
    /// Storage-layer failures propagate.
    pub fn list(&mut self) -> Result<Vec<String>, BlockError> {
        let mut names = Vec::new();
        for idx in 0..MAX_FILES {
            let inode = self.load_inode(idx)?;
            if inode.used {
                names.push(String::from_utf8_lossy(&inode.name).into_owned());
            }
        }
        Ok(names)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blockdev::RamDisk;
    use crate::crypt::CryptStore;

    fn fs() -> SimpleFs<RamDisk> {
        SimpleFs::format(RamDisk::new(128)).unwrap()
    }

    #[test]
    fn create_write_read() {
        let mut f = fs();
        let id = f.create("hello.txt").unwrap();
        f.write(id, 0, b"hello filesystem").unwrap();
        assert_eq!(f.read(id, 0, 100).unwrap(), b"hello filesystem");
        assert_eq!(f.size(id).unwrap(), 16);
        assert_eq!(f.read(id, 6, 10).unwrap(), b"filesystem");
        assert_eq!(f.read(id, 100, 10).unwrap(), b"");
    }

    #[test]
    fn multi_block_files() {
        let mut f = fs();
        let id = f.create("big").unwrap();
        let data: Vec<u8> = (0..3 * BLOCK_SIZE + 500).map(|i| (i % 253) as u8).collect();
        f.write(id, 0, &data).unwrap();
        assert_eq!(f.read(id, 0, data.len()).unwrap(), data);
        // Unaligned overwrite in the middle.
        f.write(id, 4000, b"OVERWRITE").unwrap();
        let back = f.read(id, 4000, 9).unwrap();
        assert_eq!(back, b"OVERWRITE");
        // Rest untouched.
        assert_eq!(f.read(id, 0, 4000).unwrap(), data[..4000]);
    }

    #[test]
    fn namespace_operations() {
        let mut f = fs();
        f.create("a").unwrap();
        f.create("b").unwrap();
        assert_eq!(f.create("a"), Err(BlockError::Exists));
        let mut names = f.list().unwrap();
        names.sort();
        assert_eq!(names, ["a", "b"]);
        f.delete("a").unwrap();
        assert_eq!(f.list().unwrap(), ["b"]);
        assert_eq!(f.open("a"), Err(BlockError::NoSuchFile));
        assert_eq!(f.delete("a"), Err(BlockError::NoSuchFile));
        // Name validation.
        assert_eq!(f.create(""), Err(BlockError::NameTooLong));
        assert_eq!(
            f.create(&"x".repeat(MAX_NAME + 1)),
            Err(BlockError::NameTooLong)
        );
    }

    #[test]
    fn deleted_blocks_are_reused() {
        let mut f = fs();
        let id = f.create("fill").unwrap();
        let big = vec![1u8; 40 * BLOCK_SIZE];
        f.write(id, 0, &big).unwrap();
        f.delete("fill").unwrap();
        let id2 = f.create("again").unwrap();
        f.write(id2, 0, &big).unwrap();
        assert_eq!(f.read(id2, 0, 10).unwrap(), vec![1u8; 10]);
    }

    #[test]
    fn space_exhaustion_reported() {
        let mut f = SimpleFs::format(RamDisk::new(16)).unwrap();
        let id = f.create("huge").unwrap();
        let too_big = vec![0u8; 64 * BLOCK_SIZE];
        assert_eq!(f.write(id, 0, &too_big), Err(BlockError::NoSpace));
    }

    #[test]
    fn failed_write_rolls_back_allocations() {
        let mut f = SimpleFs::format(RamDisk::new(32)).unwrap();
        let id = f.create("a").unwrap();
        let too_big = vec![0u8; 64 * BLOCK_SIZE];
        assert_eq!(f.write(id, 0, &too_big), Err(BlockError::NoSpace));
        // Every block grabbed by the failed attempt was returned: a file
        // that fits the disk can still be written afterwards.
        let id2 = f.create("b").unwrap();
        let fits = vec![7u8; 20 * BLOCK_SIZE];
        f.write(id2, 0, &fits).unwrap();
        assert_eq!(f.read(id2, 0, fits.len()).unwrap(), fits);
    }

    #[test]
    fn deleted_data_never_leaks_into_new_files() {
        let mut f = fs();
        let id = f.create("secret").unwrap();
        f.write(id, 0, &vec![0xAA; 6 * BLOCK_SIZE]).unwrap();
        f.delete("secret").unwrap();
        // New sparse file reuses the freed blocks; its hole and tail must
        // read as zeros, never as the deleted file's bytes.
        let id2 = f.create("fresh").unwrap();
        f.write(id2, 5 * BLOCK_SIZE as u64, b"tail").unwrap();
        let hole = f.read(id2, 0, 5 * BLOCK_SIZE).unwrap();
        assert!(
            hole.iter().all(|&b| b == 0),
            "stale bytes leaked through the hole"
        );
        assert_eq!(f.read(id2, 5 * BLOCK_SIZE as u64, 4).unwrap(), b"tail");
    }

    #[test]
    fn mount_after_format_persists() {
        let mut f = fs();
        let id = f.create("persist").unwrap();
        f.write(id, 0, b"still here").unwrap();
        // Steal the disk and remount.
        let disk = std::mem::replace(f.store_mut(), RamDisk::new(1));
        let mut f2 = SimpleFs::mount(disk).unwrap();
        let id2 = f2.open("persist").unwrap();
        assert_eq!(f2.read(id2, 0, 100).unwrap(), b"still here");
    }

    #[test]
    fn mount_rejects_garbage() {
        assert!(matches!(
            SimpleFs::mount(RamDisk::new(32)),
            Err(BlockError::BadSuperblock)
        ));
    }

    #[test]
    fn fs_over_cryptstore_detects_host_tamper() {
        let crypt = CryptStore::new(RamDisk::new(128), [7u8; 32]).unwrap();
        let mut f = SimpleFs::format(crypt).unwrap();
        let id = f.create("secret.db").unwrap();
        f.write(id, 0, b"confidential records").unwrap();
        assert_eq!(f.read(id, 0, 100).unwrap(), b"confidential records");
        // The host flips a bit in the (encrypted) data region.
        let data_start_physical = 6; // sb + 4 inode blocks + bitmap
        f.store_mut()
            .inner_mut()
            .tamper(data_start_physical, 3, 0x40)
            .unwrap();
        assert_eq!(f.read(id, 0, 100), Err(BlockError::IntegrityViolation));
    }

    #[test]
    fn sparse_write_reads_zeros_in_hole() {
        let mut f = fs();
        let id = f.create("sparse").unwrap();
        f.write(id, 2 * BLOCK_SIZE as u64, b"tail").unwrap();
        let head = f.read(id, 0, 16).unwrap();
        assert_eq!(head, vec![0u8; 16]);
        assert_eq!(f.read(id, 2 * BLOCK_SIZE as u64, 4).unwrap(), b"tail");
    }
}
