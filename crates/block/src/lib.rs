//! Storage substrate: block stores, an authenticated-encryption block
//! layer, a small inode filesystem, and a safe block transport.
//!
//! §3.3 of the paper claims the dual-boundary approach "should map well to
//! other I/O boundaries that also have observability problems, e.g.,
//! storage: the first boundary would be at a low-level interface, e.g.,
//! disk driver or block layer, and the second one at a higher level such
//! as file operations." This crate provides the pieces experiment E12
//! composes:
//!
//! * [`blockdev`] — the block-store abstraction and the host's RAM disk
//!   (untrusted storage the host can tamper with at will).
//! * [`crypt`] — a dm-crypt/dm-integrity-shaped layer: per-block AEAD with
//!   block-number-bound nonces, tags in a metadata region, and private
//!   generation counters that defeat rollback.
//! * [`fs`] — a small inode/extent filesystem (create, read, write,
//!   delete, list) that can run inside the TEE (block boundary) or on the
//!   host (file-ops boundary).
//! * [`transport`] — block request/response encoding over the cio-ring,
//!   with the guest frontend and host backend.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod blockdev;
pub mod crypt;
pub mod fs;
pub mod mq;
pub mod transport;

pub use blockdev::{BlockStore, RamDisk, RunStore, BLOCK_SIZE};
pub use crypt::CryptStore;
pub use fs::SimpleFs;
pub use mq::MultiQueueStore;

/// Errors raised by the storage stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockError {
    /// LBA beyond the device.
    OutOfRange,
    /// Buffer length is not exactly one block.
    BadLength,
    /// AEAD verification failed: the host tampered with stored data.
    IntegrityViolation,
    /// A stale block was served: rollback detected.
    Rollback,
    /// Filesystem namespace errors.
    NoSuchFile,
    /// The file already exists.
    Exists,
    /// Out of inodes or data blocks.
    NoSpace,
    /// The filesystem superblock is invalid.
    BadSuperblock,
    /// File name exceeds the fixed limit.
    NameTooLong,
    /// Transport-level failure.
    Transport(cio_vring::RingError),
    /// The backend returned a malformed response.
    Protocol,
}

impl From<cio_vring::RingError> for BlockError {
    fn from(e: cio_vring::RingError) -> Self {
        BlockError::Transport(e)
    }
}

impl std::fmt::Display for BlockError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            BlockError::OutOfRange => "block address out of range",
            BlockError::BadLength => "buffer must be exactly one block",
            BlockError::IntegrityViolation => "block integrity violation",
            BlockError::Rollback => "block rollback detected",
            BlockError::NoSuchFile => "no such file",
            BlockError::Exists => "file exists",
            BlockError::NoSpace => "no space",
            BlockError::BadSuperblock => "bad superblock",
            BlockError::NameTooLong => "file name too long",
            BlockError::Transport(_) => "block transport failure",
            BlockError::Protocol => "malformed block response",
        };
        f.write_str(s)
    }
}

impl std::error::Error for BlockError {}
