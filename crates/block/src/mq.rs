//! Multi-queue block steering: LBA-extent striping across ring lanes.
//!
//! The network side scales by steering flows to queues with an RSS hash
//! (`cio_netstack::rss`); storage mirrors that with *address* steering:
//! the LBA space is cut into fixed-size extents and extent `e` is owned by
//! lane `e % lanes`. Every block has exactly one home lane (the storage
//! analogue of flow affinity), so per-lane backends need no cross-lane
//! locking and the whole store can ride `World::builder(..).parallel(t)`
//! with one backend thread per lane via [`MultiQueueStore::take_backend`].
//!
//! Both `lanes` and `extent` must be powers of two so steering is a
//! shift-and-mask, like the RSS indirection mask. Runs submitted through
//! the [`RunStore`] interface are split at extent boundaries; each segment
//! stays a contiguous run on its home lane, so batched sealing still gets
//! its amortization within a segment.

use crate::blockdev::{BlockStore, RunStore};
use crate::transport::{CioBlkBackend, RingBlockStore};
use crate::BlockError;
use cio_sim::Telemetry;

/// Stripes a logical block space across homogeneous lanes by extent.
pub struct MultiQueueStore<S: BlockStore> {
    lanes: Vec<S>,
    /// log2(extent blocks).
    extent_shift: u32,
    /// log2(lane count).
    lane_shift: u32,
    blocks: u64,
    /// Lane-local LBA staging for scatter reads (steady-state reuse).
    scatter_scratch: Vec<u64>,
}

impl<S: BlockStore> MultiQueueStore<S> {
    /// Stripes `lanes` stores into one block space, `extent` consecutive
    /// blocks per stripe.
    ///
    /// Capacity is the largest striped space every lane can back: partial
    /// extents at a lane's tail are unused, exactly like disks rounded to
    /// stripe size in a RAID-0 set.
    ///
    /// # Panics
    ///
    /// If `lanes` is empty, or `lanes.len()` / `extent` is not a power of
    /// two.
    ///
    /// # Errors
    ///
    /// [`BlockError::NoSpace`] if some lane is smaller than one extent.
    pub fn new(lanes: Vec<S>, extent: u64) -> Result<Self, BlockError> {
        assert!(!lanes.is_empty(), "need at least one lane");
        assert!(
            lanes.len().is_power_of_two(),
            "lane count must be a power of two"
        );
        assert!(
            extent >= 1 && extent.is_power_of_two(),
            "extent must be a power of two"
        );
        let extent_shift = extent.trailing_zeros();
        let lane_shift = lanes.len().trailing_zeros();
        let stripes_per_lane = lanes
            .iter()
            .map(|l| l.blocks() >> extent_shift)
            .min()
            .unwrap();
        if stripes_per_lane == 0 {
            return Err(BlockError::NoSpace);
        }
        let blocks = (stripes_per_lane << lane_shift) << extent_shift;
        Ok(MultiQueueStore {
            lanes,
            extent_shift,
            lane_shift,
            blocks,
            scatter_scratch: Vec::with_capacity(64),
        })
    }

    /// Extent size in blocks.
    pub fn extent(&self) -> u64 {
        1 << self.extent_shift
    }

    /// Number of lanes.
    pub fn lanes(&self) -> usize {
        self.lanes.len()
    }

    /// Maps a global LBA to `(lane, lane-local LBA)`.
    pub fn steer(&self, lba: u64) -> (usize, u64) {
        let stripe = lba >> self.extent_shift;
        let lane = (stripe & ((1 << self.lane_shift) - 1)) as usize;
        let local =
            ((stripe >> self.lane_shift) << self.extent_shift) | (lba & (self.extent() - 1));
        (lane, local)
    }

    /// Direct access to one lane's store.
    pub fn lane_mut(&mut self, lane: usize) -> &mut S {
        &mut self.lanes[lane]
    }

    /// Blocks remaining in the extent that contains `lba` (the largest
    /// segment starting at `lba` that one lane owns contiguously).
    fn extent_remaining(&self, lba: u64) -> u64 {
        self.extent() - (lba & (self.extent() - 1))
    }

    fn check(&self, lba: u64, count: usize) -> Result<(), BlockError> {
        let end = lba
            .checked_add(count as u64)
            .ok_or(BlockError::OutOfRange)?;
        if end > self.blocks {
            return Err(BlockError::OutOfRange);
        }
        Ok(())
    }
}

impl MultiQueueStore<RingBlockStore> {
    /// Detaches lane `lane`'s backend so a dedicated host thread can
    /// service it (the storage analogue of thread-per-queue).
    pub fn take_backend(&mut self, lane: usize) -> Option<CioBlkBackend> {
        self.lanes[lane].take_backend()
    }

    /// Re-attaches a backend taken with [`MultiQueueStore::take_backend`].
    pub fn restore_backend(&mut self, lane: usize, back: CioBlkBackend) {
        self.lanes[lane].restore_backend(back);
    }

    /// Attributes each lane's work to its own telemetry queue.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        for (q, lane) in self.lanes.iter_mut().enumerate() {
            lane.set_telemetry(telemetry.clone(), q);
        }
    }
}

impl<S: BlockStore> BlockStore for MultiQueueStore<S> {
    fn read_block(&mut self, lba: u64, buf: &mut [u8]) -> Result<(), BlockError> {
        self.check(lba, 1)?;
        let (lane, local) = self.steer(lba);
        self.lanes[lane].read_block(local, buf)
    }

    fn write_block(&mut self, lba: u64, data: &[u8]) -> Result<(), BlockError> {
        self.check(lba, 1)?;
        let (lane, local) = self.steer(lba);
        self.lanes[lane].write_block(local, data)
    }

    fn blocks(&self) -> u64 {
        self.blocks
    }
}

impl<S: RunStore> RunStore for MultiQueueStore<S> {
    fn write_run_with(
        &mut self,
        lba: u64,
        count: usize,
        fill: &mut dyn FnMut(usize, &mut [&mut [u8]]),
    ) -> Result<(), BlockError> {
        self.check(lba, count)?;
        let mut off = 0usize;
        while off < count {
            let cur = lba + off as u64;
            let seg = (count - off).min(self.extent_remaining(cur) as usize);
            let (lane, local) = self.steer(cur);
            self.lanes[lane].write_run_with(local, seg, &mut |b, slots| fill(off + b, slots))?;
            off += seg;
        }
        Ok(())
    }

    fn read_run_with(
        &mut self,
        lba: u64,
        count: usize,
        sink: &mut dyn FnMut(usize, &mut [&mut [u8]]),
    ) -> Result<(), BlockError> {
        self.check(lba, count)?;
        let mut off = 0usize;
        while off < count {
            let cur = lba + off as u64;
            let seg = (count - off).min(self.extent_remaining(cur) as usize);
            let (lane, local) = self.steer(cur);
            self.lanes[lane].read_run_with(local, seg, &mut |b, slots| sink(off + b, slots))?;
            off += seg;
        }
        Ok(())
    }

    fn read_scatter_with(
        &mut self,
        lbas: &[u64],
        sink: &mut dyn FnMut(usize, &mut [&mut [u8]]),
    ) -> Result<(), BlockError> {
        for &l in lbas {
            self.check(l, 1)?;
        }
        // Split into maximal groups of consecutive entries sharing a home
        // lane; each group is one lane-local scatter batch. Processing
        // groups in list order preserves the trait's in-order delivery.
        let mut g = 0usize;
        while g < lbas.len() {
            let lane = self.steer(lbas[g]).0;
            let mut e = g + 1;
            while e < lbas.len() && self.steer(lbas[e]).0 == lane {
                e += 1;
            }
            self.scatter_scratch.clear();
            for &l in &lbas[g..e] {
                let local = self.steer(l).1;
                self.scatter_scratch.push(local);
            }
            let Self {
                lanes,
                scatter_scratch,
                ..
            } = self;
            lanes[lane].read_scatter_with(scatter_scratch, &mut |b, slots| sink(g + b, slots))?;
            g = e;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blockdev::{RamDisk, BLOCK_SIZE};
    use crate::crypt::CryptStore;
    use crate::transport::{BlkProfile, CioBlkBackend, CioBlkFrontend, RingBlockStore, BLK_HDR};
    use cio_mem::{GuestAddr, GuestMemory, PAGE_SIZE};
    use cio_sim::{Clock, CostModel, Meter};
    use cio_vring::cioring::{CioRing, Consumer, DataMode, Producer, RingConfig};

    fn ring_lane(disk_blocks: u64, profile: BlkProfile) -> (GuestMemory, RingBlockStore) {
        let mem = GuestMemory::new(600, Clock::new(), CostModel::default(), Meter::new());
        let cfg = RingConfig {
            slots: 16,
            slot_size: 16,
            mode: DataMode::SharedArea,
            mtu: (BLOCK_SIZE + BLK_HDR) as u32,
            area_size: 1 << 17,
            notify: profile.notify,
            ..RingConfig::default()
        };
        let req_ring =
            CioRing::new(cfg.clone(), GuestAddr(0), GuestAddr(16 * PAGE_SIZE as u64)).unwrap();
        let resp_ring = CioRing::new(
            cfg,
            GuestAddr(8 * PAGE_SIZE as u64),
            GuestAddr(64 * PAGE_SIZE as u64),
        )
        .unwrap();
        mem.share_range(GuestAddr(0), req_ring.ring_bytes())
            .unwrap();
        mem.share_range(GuestAddr(8 * PAGE_SIZE as u64), resp_ring.ring_bytes())
            .unwrap();
        mem.share_range(GuestAddr(16 * PAGE_SIZE as u64), req_ring.area_bytes())
            .unwrap();
        mem.share_range(GuestAddr(64 * PAGE_SIZE as u64), resp_ring.area_bytes())
            .unwrap();
        let front = CioBlkFrontend::with_profile(
            Producer::new(req_ring.clone(), mem.guest()).unwrap(),
            Consumer::new(resp_ring.clone(), mem.guest()).unwrap(),
            profile,
        );
        let back = CioBlkBackend::with_profile(
            Consumer::new(req_ring, mem.host()).unwrap(),
            Producer::new(resp_ring, mem.host()).unwrap(),
            RamDisk::new(disk_blocks),
            profile,
        );
        (mem, RingBlockStore::new(front, back))
    }

    fn pattern(i: usize) -> Vec<u8> {
        (0..BLOCK_SIZE)
            .map(|j| ((i * 37 + j * 13) % 251) as u8)
            .collect()
    }

    #[test]
    fn steering_is_a_bijection() {
        let mq = MultiQueueStore::new((0..4).map(|_| RamDisk::new(32)).collect(), 4).unwrap();
        assert_eq!(mq.blocks(), 4 * 32);
        let mut seen = std::collections::HashSet::new();
        for lba in 0..mq.blocks() {
            let (lane, local) = mq.steer(lba);
            assert!(lane < 4);
            assert!(local < 32, "local {local} out of lane range");
            assert!(seen.insert((lane, local)), "collision at lba {lba}");
            // Consecutive blocks in one extent share a lane.
            if lba % 4 != 0 {
                assert_eq!(mq.steer(lba - 1).0, lane);
            }
        }
    }

    #[test]
    fn capacity_rounds_to_whole_extents() {
        // 30 blocks at extent 8 => 3 stripes per lane.
        let mq = MultiQueueStore::new(vec![RamDisk::new(30), RamDisk::new(33)], 8).unwrap();
        assert_eq!(mq.blocks(), 2 * 3 * 8);
        assert!(MultiQueueStore::new(vec![RamDisk::new(3)], 8).is_err());
    }

    #[test]
    fn runs_split_at_extent_boundaries() {
        let mut mq = MultiQueueStore::new((0..2).map(|_| RamDisk::new(64)).collect(), 4).unwrap();
        let n = 19usize;
        let base = 2u64; // unaligned start
        let data: Vec<u8> = (0..n).flat_map(pattern).collect();
        // Track which run-relative indices the fill was asked for.
        let mut filled = vec![0u32; n];
        mq.write_run_with(base, n, &mut |b, slots| {
            for (s, slot) in slots.iter_mut().enumerate() {
                let i = b + s;
                filled[i] += 1;
                slot.copy_from_slice(&data[i * BLOCK_SIZE..(i + 1) * BLOCK_SIZE]);
            }
        })
        .unwrap();
        assert!(filled.iter().all(|&c| c == 1), "every index filled once");
        // Read back through both the run and serial interfaces.
        let mut seen = vec![0u32; n];
        let mut out = vec![0u8; n * BLOCK_SIZE];
        mq.read_run_with(base, n, &mut |b, slots| {
            for (s, slot) in slots.iter_mut().enumerate() {
                let i = b + s;
                seen[i] += 1;
                out[i * BLOCK_SIZE..(i + 1) * BLOCK_SIZE].copy_from_slice(slot);
            }
        })
        .unwrap();
        assert!(seen.iter().all(|&c| c == 1));
        assert_eq!(out, data);
        let mut one = vec![0u8; BLOCK_SIZE];
        mq.read_block(base + 7, &mut one).unwrap();
        assert_eq!(one, pattern(7));
    }

    #[test]
    fn crypt_over_multiqueue_rings_roundtrips_and_detects_tamper() {
        let (_m0, l0) = ring_lane(128, BlkProfile::batched(8));
        let (_m1, l1) = ring_lane(128, BlkProfile::batched(8));
        let mq = MultiQueueStore::new(vec![l0, l1], 8).unwrap();
        let mut crypt = CryptStore::new(mq, [0x44; 32]).unwrap();
        let n = 24usize;
        let data: Vec<u8> = (0..n).flat_map(pattern).collect();
        crypt.write_run(3, &data).unwrap();
        let mut out = vec![0u8; n * BLOCK_SIZE];
        crypt.read_run(3, &mut out).unwrap();
        assert_eq!(out, data);
        // Tamper one lane's disk; the damaged global block fails closed.
        let (lane, local) = crypt.inner_mut().steer(10);
        crypt
            .inner_mut()
            .lane_mut(lane)
            .backend_mut()
            .disk_mut()
            .tamper(local, 5, 0x01)
            .unwrap();
        let mut buf = vec![0u8; BLOCK_SIZE];
        assert_eq!(
            crypt.read_block(10, &mut buf),
            Err(BlockError::IntegrityViolation)
        );
        // Other blocks (other lanes and extents) still verify.
        crypt.read_block(3, &mut buf).unwrap();
        assert_eq!(buf, pattern(0));
    }
}
