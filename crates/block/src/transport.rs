//! Block requests over the safe ring: the storage analogue of cio-net.
//!
//! Requests and responses are plain byte messages over a
//! [`cio_vring::cioring`] pair, so the block path inherits every L2
//! hardening property (stateless, masked, copy-policy-aware) without any
//! storage-specific protocol machinery — the generalization §3.3 predicts.

use crate::blockdev::{BlockStore, RamDisk, BLOCK_SIZE};
use crate::BlockError;
use cio_mem::{GuestView, HostView};
use cio_vring::cioring::{Consumer, Producer};

/// A block request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BlockReq {
    /// Read one block.
    Read {
        /// Logical block address.
        lba: u64,
    },
    /// Write one block.
    Write {
        /// Logical block address.
        lba: u64,
        /// Exactly [`BLOCK_SIZE`] bytes.
        data: Vec<u8>,
    },
}

/// A block response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BlockResp {
    /// Read data.
    Data(Vec<u8>),
    /// Write acknowledged.
    Ok,
    /// The backend failed the request.
    Err,
}

impl BlockReq {
    /// Serializes the request.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            BlockReq::Read { lba } => {
                let mut v = Vec::with_capacity(9);
                v.push(0);
                v.extend_from_slice(&lba.to_le_bytes());
                v
            }
            BlockReq::Write { lba, data } => {
                let mut v = Vec::with_capacity(9 + data.len());
                v.push(1);
                v.extend_from_slice(&lba.to_le_bytes());
                v.extend_from_slice(data);
                v
            }
        }
    }

    /// Parses a request (the *backend* runs this on guest-supplied bytes —
    /// the host validates too, defending itself).
    ///
    /// # Errors
    ///
    /// [`BlockError::Protocol`] on malformed input.
    pub fn decode(bytes: &[u8]) -> Result<BlockReq, BlockError> {
        if bytes.len() < 9 {
            return Err(BlockError::Protocol);
        }
        let lba = u64::from_le_bytes(bytes[1..9].try_into().expect("8 bytes"));
        match bytes[0] {
            0 if bytes.len() == 9 => Ok(BlockReq::Read { lba }),
            1 if bytes.len() == 9 + BLOCK_SIZE => Ok(BlockReq::Write {
                lba,
                data: bytes[9..].to_vec(),
            }),
            _ => Err(BlockError::Protocol),
        }
    }
}

impl BlockResp {
    /// Serializes the response.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            BlockResp::Data(d) => {
                let mut v = Vec::with_capacity(1 + d.len());
                v.push(0);
                v.extend_from_slice(d);
                v
            }
            BlockResp::Ok => vec![1],
            BlockResp::Err => vec![2],
        }
    }

    /// Parses a response; the *guest* runs this on host-supplied bytes, so
    /// every branch validates length exactly.
    ///
    /// # Errors
    ///
    /// [`BlockError::Protocol`] on anything malformed.
    pub fn decode(bytes: &[u8]) -> Result<BlockResp, BlockError> {
        match bytes.first() {
            Some(0) if bytes.len() == 1 + BLOCK_SIZE => Ok(BlockResp::Data(bytes[1..].to_vec())),
            Some(1) if bytes.len() == 1 => Ok(BlockResp::Ok),
            Some(2) if bytes.len() == 1 => Ok(BlockResp::Err),
            _ => Err(BlockError::Protocol),
        }
    }
}

/// Guest frontend over the request/response rings.
pub struct CioBlkFrontend {
    req: Producer<GuestView>,
    resp: Consumer<GuestView>,
}

impl CioBlkFrontend {
    /// Creates the frontend.
    pub fn new(req: Producer<GuestView>, resp: Consumer<GuestView>) -> Self {
        CioBlkFrontend { req, resp }
    }

    /// Submits a request.
    ///
    /// # Errors
    ///
    /// Ring errors (full/too large).
    pub fn submit(&mut self, req: &BlockReq) -> Result<(), BlockError> {
        self.req.produce(&req.encode())?;
        Ok(())
    }

    /// Polls for a response.
    ///
    /// # Errors
    ///
    /// Ring errors or [`BlockError::Protocol`] on malformed host bytes.
    pub fn poll_resp(&mut self) -> Result<Option<BlockResp>, BlockError> {
        match self.resp.consume()? {
            Some(bytes) => Ok(Some(BlockResp::decode(&bytes)?)),
            None => Ok(None),
        }
    }
}

/// Host backend executing requests against its disk.
pub struct CioBlkBackend {
    req: Consumer<HostView>,
    resp: Producer<HostView>,
    disk: RamDisk,
}

impl CioBlkBackend {
    /// Creates the backend over the host's disk.
    pub fn new(req: Consumer<HostView>, resp: Producer<HostView>, disk: RamDisk) -> Self {
        CioBlkBackend { req, resp, disk }
    }

    /// The host's disk (adversary access).
    pub fn disk_mut(&mut self) -> &mut RamDisk {
        &mut self.disk
    }

    /// Processes pending requests; returns how many were handled.
    ///
    /// # Errors
    ///
    /// Ring errors only; malformed guest requests get [`BlockResp::Err`].
    pub fn process(&mut self) -> Result<usize, BlockError> {
        let mut handled = 0;
        while let Some(bytes) = self.req.consume()? {
            let resp = match BlockReq::decode(&bytes) {
                Ok(BlockReq::Read { lba }) => {
                    let mut buf = vec![0u8; BLOCK_SIZE];
                    match self.disk.read_block(lba, &mut buf) {
                        Ok(()) => BlockResp::Data(buf),
                        Err(_) => BlockResp::Err,
                    }
                }
                Ok(BlockReq::Write { lba, data }) => match self.disk.write_block(lba, &data) {
                    Ok(()) => BlockResp::Ok,
                    Err(_) => BlockResp::Err,
                },
                Err(_) => BlockResp::Err,
            };
            self.resp.produce(&resp.encode())?;
            handled += 1;
        }
        Ok(handled)
    }
}

/// A synchronous [`BlockStore`] over the ring pair: each operation submits,
/// lets the backend run, and collects the response. The caller accounts for
/// boundary-crossing costs (the `cio` crate charges exits around this).
pub struct RingBlockStore {
    front: CioBlkFrontend,
    back: CioBlkBackend,
    blocks: u64,
}

impl RingBlockStore {
    /// Couples a frontend and backend.
    pub fn new(front: CioBlkFrontend, back: CioBlkBackend) -> Self {
        let blocks = back.disk.blocks();
        RingBlockStore {
            front,
            back,
            blocks,
        }
    }

    /// Backend/disk access (adversary).
    pub fn backend_mut(&mut self) -> &mut CioBlkBackend {
        &mut self.back
    }

    fn roundtrip(&mut self, req: &BlockReq) -> Result<BlockResp, BlockError> {
        self.front.submit(req)?;
        self.back.process()?;
        self.front.poll_resp()?.ok_or(BlockError::Protocol)
    }
}

impl BlockStore for RingBlockStore {
    fn read_block(&mut self, lba: u64, buf: &mut [u8]) -> Result<(), BlockError> {
        if buf.len() != BLOCK_SIZE {
            return Err(BlockError::BadLength);
        }
        match self.roundtrip(&BlockReq::Read { lba })? {
            BlockResp::Data(d) => {
                buf.copy_from_slice(&d);
                Ok(())
            }
            BlockResp::Err => Err(BlockError::OutOfRange),
            BlockResp::Ok => Err(BlockError::Protocol),
        }
    }

    fn write_block(&mut self, lba: u64, data: &[u8]) -> Result<(), BlockError> {
        if data.len() != BLOCK_SIZE {
            return Err(BlockError::BadLength);
        }
        match self.roundtrip(&BlockReq::Write {
            lba,
            data: data.to_vec(),
        })? {
            BlockResp::Ok => Ok(()),
            BlockResp::Err => Err(BlockError::OutOfRange),
            BlockResp::Data(_) => Err(BlockError::Protocol),
        }
    }

    fn blocks(&self) -> u64 {
        self.blocks
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cio_mem::{GuestAddr, GuestMemory, PAGE_SIZE};
    use cio_sim::{Clock, CostModel, Meter};
    use cio_vring::cioring::{CioRing, DataMode, RingConfig};

    fn ring_store(disk_blocks: u64) -> (GuestMemory, RingBlockStore) {
        let mem = GuestMemory::new(600, Clock::new(), CostModel::default(), Meter::new());
        let cfg = RingConfig {
            slots: 16,
            slot_size: 16,
            mode: DataMode::SharedArea,
            mtu: (BLOCK_SIZE + 16) as u32,
            area_size: 1 << 17, // 128 KiB / 16 slots = 8 KiB stride
            ..RingConfig::default()
        };
        let req_ring =
            CioRing::new(cfg.clone(), GuestAddr(0), GuestAddr(16 * PAGE_SIZE as u64)).unwrap();
        let resp_ring = CioRing::new(
            cfg,
            GuestAddr(8 * PAGE_SIZE as u64),
            GuestAddr(64 * PAGE_SIZE as u64),
        )
        .unwrap();
        mem.share_range(GuestAddr(0), req_ring.ring_bytes())
            .unwrap();
        mem.share_range(GuestAddr(8 * PAGE_SIZE as u64), resp_ring.ring_bytes())
            .unwrap();
        mem.share_range(GuestAddr(16 * PAGE_SIZE as u64), req_ring.area_bytes())
            .unwrap();
        mem.share_range(GuestAddr(64 * PAGE_SIZE as u64), resp_ring.area_bytes())
            .unwrap();

        let front = CioBlkFrontend::new(
            Producer::new(req_ring.clone(), mem.guest()).unwrap(),
            Consumer::new(resp_ring.clone(), mem.guest()).unwrap(),
        );
        let back = CioBlkBackend::new(
            Consumer::new(req_ring, mem.host()).unwrap(),
            Producer::new(resp_ring, mem.host()).unwrap(),
            RamDisk::new(disk_blocks),
        );
        (mem, RingBlockStore::new(front, back))
    }

    #[test]
    fn encode_decode_roundtrip() {
        let r = BlockReq::Read { lba: 42 };
        assert_eq!(BlockReq::decode(&r.encode()).unwrap(), r);
        let w = BlockReq::Write {
            lba: 7,
            data: vec![9u8; BLOCK_SIZE],
        };
        assert_eq!(BlockReq::decode(&w.encode()).unwrap(), w);
        let d = BlockResp::Data(vec![1u8; BLOCK_SIZE]);
        assert_eq!(BlockResp::decode(&d.encode()).unwrap(), d);
        assert_eq!(
            BlockResp::decode(&BlockResp::Ok.encode()).unwrap(),
            BlockResp::Ok
        );
    }

    #[test]
    fn malformed_messages_rejected() {
        assert_eq!(BlockReq::decode(&[]), Err(BlockError::Protocol));
        assert_eq!(BlockReq::decode(&[0, 1, 2]), Err(BlockError::Protocol));
        assert_eq!(BlockReq::decode(&[9; 9]), Err(BlockError::Protocol));
        // Write with wrong payload size.
        let mut w = BlockReq::Write {
            lba: 0,
            data: vec![0u8; BLOCK_SIZE],
        }
        .encode();
        w.pop();
        assert_eq!(BlockReq::decode(&w), Err(BlockError::Protocol));
        // Truncated data response.
        assert_eq!(BlockResp::decode(&[0, 1, 2]), Err(BlockError::Protocol));
        assert_eq!(BlockResp::decode(&[7]), Err(BlockError::Protocol));
    }

    #[test]
    fn ring_store_read_write() {
        let (_mem, mut s) = ring_store(32);
        let data: Vec<u8> = (0..BLOCK_SIZE).map(|i| (i % 255) as u8).collect();
        s.write_block(5, &data).unwrap();
        let mut out = vec![0u8; BLOCK_SIZE];
        s.read_block(5, &mut out).unwrap();
        assert_eq!(out, data);
        assert_eq!(s.blocks(), 32);
    }

    #[test]
    fn backend_errors_surface() {
        let (_mem, mut s) = ring_store(4);
        let data = vec![0u8; BLOCK_SIZE];
        assert_eq!(s.write_block(100, &data), Err(BlockError::OutOfRange));
        let mut buf = vec![0u8; BLOCK_SIZE];
        assert_eq!(s.read_block(100, &mut buf), Err(BlockError::OutOfRange));
    }

    #[test]
    fn full_stack_fs_over_crypt_over_ring() {
        // The complete in-TEE storage stack of the dual-boundary design:
        // SimpleFs -> CryptStore -> RingBlockStore -> host RamDisk.
        let (_mem, ring) = ring_store(256);
        let crypt = crate::crypt::CryptStore::new(ring, [5u8; 32]).unwrap();
        let mut fs = crate::fs::SimpleFs::format(crypt).unwrap();
        let id = fs.create("db.log").unwrap();
        let payload: Vec<u8> = (0..10_000u32).map(|i| (i % 241) as u8).collect();
        fs.write(id, 0, &payload).unwrap();
        assert_eq!(fs.read(id, 0, payload.len()).unwrap(), payload);

        // Host tampers with its own disk: the crypt layer catches it even
        // through two transport layers.
        fs.store_mut()
            .inner_mut()
            .backend_mut()
            .disk_mut()
            .tamper(7, 99, 0x10)
            .unwrap();
        let mut saw_violation = false;
        for lba_read in 0..20u64 {
            match fs.read(id, lba_read * 512, 512) {
                Err(BlockError::IntegrityViolation) => {
                    saw_violation = true;
                    break;
                }
                _ => continue,
            }
        }
        assert!(saw_violation, "tamper must surface as integrity violation");
    }
}
