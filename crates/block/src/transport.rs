//! Block requests over the safe ring: the storage analogue of cio-net.
//!
//! Requests and responses are fixed 16-byte-header frames over a
//! [`cio_vring::cioring`] pair, so the block path inherits every L2
//! hardening property (stateless, masked, copy-policy-aware) without any
//! storage-specific protocol machinery — the generalization §3.3 predicts.
//!
//! The transport speaks the same performance dialects as the network
//! dataplane, selected by [`BlkProfile`]:
//!
//! * **Copy discipline** — [`BlkCopyMode::Staged`] stages every frame
//!   through a private buffer (one metered copy per block each way, the
//!   historical `storage_v1` shape), while [`BlkCopyMode::InSlot`]
//!   constructs frames directly in ring-slot memory
//!   ([`cio_vring::cioring::Producer::reserve_batch`]) and consumes them
//!   in place, so a block write's ciphertext is sealed straight into the
//!   slot and a read's ciphertext is gathered straight out of it — zero
//!   staging copies on the data path.
//! * **Batching** — [`cio_vring::cioring::BatchPolicy`] sizes runs of
//!   requests so a whole run costs one memory lock, one index publish,
//!   and at most one doorbell ([`cio_vring::cioring::MAX_BATCH`] cap).
//! * **Notification** — the ring's [`NotifyMode`] (fixed at ring
//!   construction, zero renegotiation) decides polling vs. doorbell vs.
//!   event-idx suppression; [`ring_notify_mode`] maps the dataplane's
//!   [`NotifyPolicy`] onto it for callers that drive the block rings from
//!   a notify-gated service loop.
//!
//! Framing (both directions share the 16-byte header):
//!
//! ```text
//! request:  [0] op (0=read, 1=write)   [1..8] zero   [8..16] lba (LE)
//!           write payload at [16..16+BLOCK_SIZE]
//! response: [0] status (0=data, 1=ok, 2=err)   [1..8] zero   [8..16] lba echo
//!           read data at [16..16+BLOCK_SIZE]
//! ```
//!
//! Both sides parse the peer's bytes defensively: the backend validates
//! guest frames (defending the host), the frontend validates host frames
//! byte-for-byte with a single fetch per field (defending the TEE), and a
//! response's echoed LBA must match the request it answers — a host that
//! replays or reorders completions is caught as a protocol violation.

use crate::blockdev::{BlockStore, RamDisk, RunStore, BLOCK_SIZE};
use crate::BlockError;
use cio_mem::{GuestView, HostView};
use cio_sim::{Meter, Stage, Telemetry};
use cio_vring::cioring::{BatchPolicy, Consumer, NotifyMode, NotifyPolicy, Producer, MAX_BATCH};
use cio_vring::RingError;

/// Bytes of framing ahead of each payload (shared by both directions).
pub const BLK_HDR: usize = 16;

const OP_READ: u8 = 0;
const OP_WRITE: u8 = 1;
const ST_DATA: u8 = 0;
const ST_OK: u8 = 1;
const ST_ERR: u8 = 2;

/// How block frames move between private memory and ring slots.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlkCopyMode {
    /// Stage every frame through a private buffer: one metered copy per
    /// block each way. The historical `storage_v1` discipline.
    Staged,
    /// Construct and consume frames directly in ring-slot memory: zero
    /// staging copies on the block data path.
    InSlot,
}

/// The block transport's performance profile.
///
/// `notify` is the *ring-level* discipline and must match the
/// [`NotifyMode`] the rings were built with; service loops that want the
/// dataplane's adaptive poll-vs-notify gate layer it on top (see
/// [`ring_notify_mode`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlkProfile {
    /// Copy discipline for frames.
    pub copy: BlkCopyMode,
    /// Run sizing for requests and completions.
    pub batch: BatchPolicy,
    /// Ring notification mode (informational; the ring enforces it).
    pub notify: NotifyMode,
}

impl BlkProfile {
    /// The legacy one-at-a-time shape: staged copies, serial requests,
    /// pure polling. Charge-compatible with the pre-batching transport.
    pub fn storage_v1() -> Self {
        BlkProfile {
            copy: BlkCopyMode::Staged,
            batch: BatchPolicy::Serial,
            notify: NotifyMode::Polling,
        }
    }

    /// The dataplane-parity shape: seal-in-slot zero-copy, runs of
    /// `depth` requests, event-idx doorbell suppression.
    pub fn batched(depth: usize) -> Self {
        BlkProfile {
            copy: BlkCopyMode::InSlot,
            batch: BatchPolicy::Fixed(depth),
            notify: NotifyMode::EventIdx,
        }
    }
}

impl Default for BlkProfile {
    fn default() -> Self {
        BlkProfile::storage_v1()
    }
}

/// Maps a dataplane [`NotifyPolicy`] onto the ring-level [`NotifyMode`]
/// the block rings should be built with. `Always` rings a doorbell per
/// publish; `EventIdx` and `Adaptive` both arm event-idx suppression —
/// the adaptive poll-vs-notify controller lives in the service loop, not
/// the ring.
pub fn ring_notify_mode(policy: NotifyPolicy) -> NotifyMode {
    match policy {
        NotifyPolicy::Always => NotifyMode::Doorbell,
        NotifyPolicy::EventIdx | NotifyPolicy::Adaptive => NotifyMode::EventIdx,
    }
}

fn put_hdr(hdr: &mut [u8], tag: u8, lba: u64) {
    hdr[0] = tag;
    hdr[1..8].fill(0);
    hdr[8..BLK_HDR].copy_from_slice(&lba.to_le_bytes());
}

/// A validated view of one guest request frame (backend side; the input
/// is hostile from the host's perspective, so the host validates too,
/// defending itself).
enum ReqView {
    Read(u64),
    Write(u64),
    Malformed,
}

fn parse_req(frame: &[u8]) -> ReqView {
    if frame.len() < BLK_HDR {
        return ReqView::Malformed;
    }
    let lba = u64::from_le_bytes(frame[8..BLK_HDR].try_into().expect("8 bytes"));
    match frame[0] {
        OP_READ if frame.len() == BLK_HDR => ReqView::Read(lba),
        OP_WRITE if frame.len() == BLK_HDR + BLOCK_SIZE => ReqView::Write(lba),
        _ => ReqView::Malformed,
    }
}

/// A validated view of one host response frame (guest side).
///
/// For in-slot consumption `bytes` aliases shared slot memory: read each
/// byte at most once (the crypt layer's gather-open does exactly that).
pub enum BlkResp<'a> {
    /// Read data for the echoed LBA.
    Data {
        /// Echoed logical block address.
        lba: u64,
        /// Exactly [`BLOCK_SIZE`] payload bytes.
        bytes: &'a mut [u8],
    },
    /// Write acknowledged for the echoed LBA.
    Ok {
        /// Echoed logical block address.
        lba: u64,
    },
    /// The backend failed the request.
    Err {
        /// Echoed logical block address.
        lba: u64,
    },
    /// The frame violates the protocol (hostile or corrupt host bytes).
    Malformed,
}

/// Parses a response frame; every branch validates length exactly and
/// fetches each header field once.
pub fn parse_resp(frame: &mut [u8]) -> BlkResp<'_> {
    if frame.len() < BLK_HDR {
        return BlkResp::Malformed;
    }
    let status = frame[0];
    let lba = u64::from_le_bytes(frame[8..BLK_HDR].try_into().expect("8 bytes"));
    if status == ST_DATA && frame.len() == BLK_HDR + BLOCK_SIZE {
        let (_, bytes) = frame.split_at_mut(BLK_HDR);
        BlkResp::Data { lba, bytes }
    } else if status == ST_OK && frame.len() == BLK_HDR {
        BlkResp::Ok { lba }
    } else if status == ST_ERR && frame.len() == BLK_HDR {
        BlkResp::Err { lba }
    } else {
        BlkResp::Malformed
    }
}

fn warm_bufs() -> Vec<Vec<u8>> {
    (0..MAX_BATCH)
        .map(|_| vec![0u8; BLK_HDR + BLOCK_SIZE])
        .collect()
}

/// Guest frontend over the request/response rings.
pub struct CioBlkFrontend {
    req: Producer<GuestView>,
    resp: Consumer<GuestView>,
    profile: BlkProfile,
    meter: Meter,
    telemetry: Telemetry,
    tq: usize,
    /// Warmed staging frames (staged mode; idle under in-slot).
    req_bufs: Vec<Vec<u8>>,
    resp_bufs: Vec<Vec<u8>>,
    hdr_scratch: [u8; BLK_HDR],
}

impl CioBlkFrontend {
    /// Creates the frontend with the legacy [`BlkProfile::storage_v1`]
    /// profile.
    pub fn new(req: Producer<GuestView>, resp: Consumer<GuestView>) -> Self {
        CioBlkFrontend::with_profile(req, resp, BlkProfile::default())
    }

    /// Creates the frontend with an explicit profile. The rings must have
    /// been built with `profile.notify` (and the shared-area layout for
    /// [`BlkCopyMode::InSlot`]).
    pub fn with_profile(
        req: Producer<GuestView>,
        resp: Consumer<GuestView>,
        profile: BlkProfile,
    ) -> Self {
        let meter = req.meter();
        CioBlkFrontend {
            req,
            resp,
            profile,
            meter,
            telemetry: Telemetry::disabled(),
            tq: 0,
            req_bufs: warm_bufs(),
            resp_bufs: warm_bufs(),
            hdr_scratch: [0u8; BLK_HDR],
        }
    }

    /// Attributes this frontend's stages to `queue` in `telemetry`.
    pub fn set_telemetry(&mut self, telemetry: Telemetry, queue: usize) {
        self.telemetry = telemetry;
        self.tq = queue;
    }

    /// The active profile.
    pub fn profile(&self) -> BlkProfile {
        self.profile
    }

    /// Submits read requests for blocks `[lba, lba + count)`; returns how
    /// many were accepted (ring backpressure may clamp — resubmit the
    /// tail after draining completions).
    ///
    /// # Errors
    ///
    /// Ring errors other than backpressure.
    pub fn submit_reads(&mut self, lba: u64, count: usize) -> Result<usize, BlockError> {
        self.submit_reads_with(count, &|i| lba + i as u64)
    }

    /// Submits read requests for the arbitrary blocks named by `lbas`
    /// (block commands are independent: a scatter of LBAs batches exactly
    /// like a run). Responses complete in submission order. Returns how
    /// many were accepted.
    ///
    /// # Errors
    ///
    /// Ring errors other than backpressure.
    pub fn submit_reads_scatter(&mut self, lbas: &[u64]) -> Result<usize, BlockError> {
        self.submit_reads_with(lbas.len(), &|i| lbas[i])
    }

    fn submit_reads_with(
        &mut self,
        count: usize,
        lba_of: &dyn Fn(usize) -> u64,
    ) -> Result<usize, BlockError> {
        let _submit = self.telemetry.span(self.tq, Stage::BlkSubmit);
        let mut done = 0;
        while done < count {
            let want = self.profile.batch.effective(count - done).min(count - done);
            let n = match self.profile.copy {
                BlkCopyMode::InSlot => {
                    let _r = self.telemetry.span(self.tq, Stage::BlkRing);
                    let grant = match self.req.reserve_batch(BLK_HDR, want) {
                        Ok(g) => g,
                        Err(RingError::Full) => break,
                        Err(e) => return Err(e.into()),
                    };
                    let n = grant.len();
                    self.req.with_batch_mut(&grant, |slots| {
                        for (i, s) in slots.iter_mut().enumerate() {
                            put_hdr(s, OP_READ, lba_of(done + i));
                        }
                    })?;
                    self.req.commit_batch(grant, &[BLK_HDR; MAX_BATCH][..n])?;
                    if self.req.kick() {
                        self.meter.blk_doorbells(1);
                    }
                    n
                }
                BlkCopyMode::Staged => {
                    let _r = self.telemetry.span(self.tq, Stage::BlkRing);
                    let mut staged = 0;
                    for i in 0..want {
                        put_hdr(&mut self.hdr_scratch, OP_READ, lba_of(done + i));
                        match self.req.stage(&self.hdr_scratch) {
                            Ok(()) => staged += 1,
                            Err(RingError::Full) => break,
                            Err(e) => return Err(e.into()),
                        }
                    }
                    if staged > 0 {
                        self.req.publish()?;
                        if self.req.kick() {
                            self.meter.blk_doorbells(1);
                        }
                    }
                    staged
                }
            };
            if n == 0 {
                break;
            }
            self.meter.blk_records(n as u64);
            self.meter.blk_commits(1);
            done += n;
        }
        Ok(done)
    }

    /// Submits write requests for blocks `[lba, lba + count)`, obtaining
    /// each block's payload from `fill` (see
    /// [`RunStore::write_run_with`] for the closure contract — under
    /// [`BlkCopyMode::InSlot`] the buffers are real ring-slot memory, so
    /// the crypt layer seals ciphertext directly into the shared slot).
    /// Returns how many requests were accepted.
    ///
    /// # Errors
    ///
    /// Ring errors other than backpressure.
    pub fn submit_writes(
        &mut self,
        lba: u64,
        count: usize,
        fill: &mut dyn FnMut(usize, &mut [&mut [u8]]),
    ) -> Result<usize, BlockError> {
        let _submit = self.telemetry.span(self.tq, Stage::BlkSubmit);
        let mut done = 0;
        while done < count {
            let want = self.profile.batch.effective(count - done).min(count - done);
            let n = match self.profile.copy {
                BlkCopyMode::InSlot => self.submit_writes_in_slot(lba, done, want, fill)?,
                BlkCopyMode::Staged => self.submit_writes_staged(lba, done, want, fill)?,
            };
            if n == 0 {
                break;
            }
            self.meter.blk_records(n as u64);
            self.meter.blk_commits(1);
            done += n;
        }
        Ok(done)
    }

    fn submit_writes_in_slot(
        &mut self,
        lba: u64,
        base: usize,
        want: usize,
        fill: &mut dyn FnMut(usize, &mut [&mut [u8]]),
    ) -> Result<usize, BlockError> {
        let _r = self.telemetry.span(self.tq, Stage::BlkRing);
        let grant = match self.req.reserve_batch(BLK_HDR + BLOCK_SIZE, want) {
            Ok(g) => g,
            Err(RingError::Full) => return Ok(0),
            Err(e) => return Err(e.into()),
        };
        let n = grant.len();
        self.req.with_batch_mut(&grant, |slots| {
            let n = slots.len();
            let mut payloads: [&mut [u8]; MAX_BATCH] = std::array::from_fn(|_| &mut [][..]);
            for (i, s) in slots.iter_mut().enumerate() {
                let slot = std::mem::take(s);
                let (hdr, pay) = slot.split_at_mut(BLK_HDR);
                put_hdr(hdr, OP_WRITE, lba + (base + i) as u64);
                payloads[i] = &mut pay[..BLOCK_SIZE];
            }
            fill(base, &mut payloads[..n]);
        })?;
        self.req
            .commit_batch(grant, &[BLK_HDR + BLOCK_SIZE; MAX_BATCH][..n])?;
        if self.req.kick() {
            self.meter.blk_doorbells(1);
        }
        Ok(n)
    }

    fn submit_writes_staged(
        &mut self,
        lba: u64,
        base: usize,
        want: usize,
        fill: &mut dyn FnMut(usize, &mut [&mut [u8]]),
    ) -> Result<usize, BlockError> {
        // Don't build more frames than the ring can take: a frame whose
        // payload was filled but never staged would be lost work.
        let free = self.req.free_slots()? as usize;
        let n = want.min(free);
        if n == 0 {
            return Ok(0);
        }
        {
            let mut payloads: [&mut [u8]; MAX_BATCH] = std::array::from_fn(|_| &mut [][..]);
            for (i, frame) in self.req_bufs.iter_mut().enumerate().take(n) {
                frame.resize(BLK_HDR + BLOCK_SIZE, 0);
                let (hdr, pay) = frame.split_at_mut(BLK_HDR);
                put_hdr(hdr, OP_WRITE, lba + (base + i) as u64);
                payloads[i] = pay;
            }
            fill(base, &mut payloads[..n]);
        }
        let _r = self.telemetry.span(self.tq, Stage::BlkRing);
        let mut staged = 0;
        for frame in self.req_bufs.iter().take(n) {
            match self.req.stage(frame) {
                Ok(()) => {
                    self.meter.blk_copies(1);
                    staged += 1;
                }
                Err(RingError::Full) => break,
                Err(e) => return Err(e.into()),
            }
        }
        if staged > 0 {
            self.req.publish()?;
            if self.req.kick() {
                self.meter.blk_doorbells(1);
            }
        }
        Ok(staged)
    }

    /// Drains up to `max` pending responses, handing each to `sink` as a
    /// validated [`BlkResp`] (indices count from 0 within this call, in
    /// completion order). Returns how many responses were delivered;
    /// 0 means the ring was empty.
    ///
    /// # Errors
    ///
    /// Ring errors. Malformed host frames are *delivered* as
    /// [`BlkResp::Malformed`], never dropped — the caller decides how to
    /// fail, and the slot is always reclaimed.
    pub fn collect(
        &mut self,
        max: usize,
        sink: &mut dyn FnMut(usize, BlkResp<'_>),
    ) -> Result<usize, BlockError> {
        let mut got = 0;
        while got < max {
            let want = self.profile.batch.effective(max - got).min(max - got);
            let n = match self.profile.copy {
                BlkCopyMode::InSlot => {
                    let mut idx = got;
                    let _r = self.telemetry.span(self.tq, Stage::BlkRing);
                    self.resp.consume_batch_in_place(want, |slots| {
                        for s in slots.iter_mut() {
                            sink(idx, parse_resp(s));
                            idx += 1;
                        }
                    })?
                }
                BlkCopyMode::Staged => {
                    let n = {
                        let _r = self.telemetry.span(self.tq, Stage::BlkRing);
                        self.resp.consume_batch_into(&mut self.resp_bufs[..want])?
                    };
                    for i in 0..n {
                        if self.resp_bufs[i].len() > BLK_HDR {
                            self.meter.blk_copies(1);
                        }
                        sink(got + i, parse_resp(&mut self.resp_bufs[i]));
                    }
                    n
                }
            };
            if n == 0 {
                break;
            }
            got += n;
        }
        Ok(got)
    }
}

const PENDING_READ: u8 = 0;
const PENDING_OK: u8 = 1;
const PENDING_ERR: u8 = 2;

/// Host backend executing requests against its disk.
pub struct CioBlkBackend {
    req: Consumer<HostView>,
    resp: Producer<HostView>,
    disk: RamDisk,
    profile: BlkProfile,
    meter: Meter,
    telemetry: Telemetry,
    tq: usize,
    req_bufs: Vec<Vec<u8>>,
    resp_bufs: Vec<Vec<u8>>,
}

impl CioBlkBackend {
    /// Creates the backend over the host's disk with the legacy
    /// [`BlkProfile::storage_v1`] profile.
    pub fn new(req: Consumer<HostView>, resp: Producer<HostView>, disk: RamDisk) -> Self {
        CioBlkBackend::with_profile(req, resp, disk, BlkProfile::default())
    }

    /// Creates the backend with an explicit profile (must match the
    /// frontend's).
    pub fn with_profile(
        req: Consumer<HostView>,
        resp: Producer<HostView>,
        disk: RamDisk,
        profile: BlkProfile,
    ) -> Self {
        let meter = resp.meter();
        CioBlkBackend {
            req,
            resp,
            disk,
            profile,
            meter,
            telemetry: Telemetry::disabled(),
            tq: 0,
            req_bufs: warm_bufs(),
            resp_bufs: warm_bufs(),
        }
    }

    /// Attributes this backend's stages to `queue` in `telemetry`.
    pub fn set_telemetry(&mut self, telemetry: Telemetry, queue: usize) {
        self.telemetry = telemetry;
        self.tq = queue;
    }

    /// The host's disk (adversary access).
    pub fn disk_mut(&mut self) -> &mut RamDisk {
        &mut self.disk
    }

    /// Whether a doorbell arrived since the last check (notify-gated
    /// service loops).
    ///
    /// # Errors
    ///
    /// Memory errors.
    pub fn take_doorbell(&mut self) -> Result<bool, BlockError> {
        Ok(self.req.take_doorbell()?)
    }

    /// Processes pending requests; returns how many were handled.
    ///
    /// Malformed guest frames get an error response; disk failures
    /// (out-of-range LBA) fail that request alone — the rest of the run
    /// proceeds, so one poisoned request cannot sink a batch.
    ///
    /// # Errors
    ///
    /// Ring errors only.
    pub fn process(&mut self) -> Result<usize, BlockError> {
        let mut handled = 0;
        loop {
            let n = match self.profile.copy {
                BlkCopyMode::InSlot => self.process_chunk_in_slot()?,
                BlkCopyMode::Staged => self.process_chunk_staged()?,
            };
            if n == 0 {
                break;
            }
            handled += n;
        }
        Ok(handled)
    }

    fn process_chunk_in_slot(&mut self) -> Result<usize, BlockError> {
        let _svc = self.telemetry.span(self.tq, Stage::BlkService);
        let want = self.profile.batch.effective(MAX_BATCH);
        // Pull a run of requests under one lock. Writes land on the disk
        // inside the closure — the disk is host-private memory, not guest
        // memory, so the no-reentry rule is respected, and each slot's
        // payload is fetched exactly once.
        let mut ops: [(u64, u8); MAX_BATCH] = [(0, PENDING_ERR); MAX_BATCH];
        let mut k = 0usize;
        let disk = &mut self.disk;
        let consumed = {
            let _r = self.telemetry.span(self.tq, Stage::BlkRing);
            self.req.consume_batch_in_place(want, |slots| {
                for s in slots.iter_mut() {
                    let op = match parse_req(s) {
                        ReqView::Read(lba) => (lba, PENDING_READ),
                        ReqView::Write(lba) => {
                            if disk.write_block(lba, &s[BLK_HDR..]).is_ok() {
                                (lba, PENDING_OK)
                            } else {
                                (lba, PENDING_ERR)
                            }
                        }
                        ReqView::Malformed => (0, PENDING_ERR),
                    };
                    if k < MAX_BATCH {
                        ops[k] = op;
                        k += 1;
                    }
                }
            })?
        };
        if consumed == 0 {
            return Ok(0);
        }
        let mut sent = 0;
        while sent < consumed {
            let _r = self.telemetry.span(self.tq, Stage::BlkRing);
            let grant = match self
                .resp
                .reserve_batch(BLK_HDR + BLOCK_SIZE, consumed - sent)
            {
                Ok(g) => g,
                Err(RingError::Full) => {
                    // The guest is draining concurrently (detached mode);
                    // in the synchronous flow the ring always has room.
                    std::hint::spin_loop();
                    continue;
                }
                Err(e) => return Err(e.into()),
            };
            let n = grant.len();
            let mut lens = [0usize; MAX_BATCH];
            let disk = &mut self.disk;
            let ops = &ops;
            let base = sent;
            self.resp.with_batch_mut(&grant, |slots| {
                for (i, s) in slots.iter_mut().enumerate() {
                    let (lba, pend) = ops[base + i];
                    lens[i] = match pend {
                        // Read data goes straight from the disk into the
                        // shared slot: no host-side staging either.
                        PENDING_READ => {
                            put_hdr(s, ST_DATA, lba);
                            if disk
                                .read_block(lba, &mut s[BLK_HDR..BLK_HDR + BLOCK_SIZE])
                                .is_ok()
                            {
                                BLK_HDR + BLOCK_SIZE
                            } else {
                                put_hdr(s, ST_ERR, lba);
                                BLK_HDR
                            }
                        }
                        PENDING_OK => {
                            put_hdr(s, ST_OK, lba);
                            BLK_HDR
                        }
                        _ => {
                            put_hdr(s, ST_ERR, lba);
                            BLK_HDR
                        }
                    };
                }
            })?;
            self.resp.commit_batch(grant, &lens[..n])?;
            if self.resp.kick() {
                self.meter.blk_doorbells(1);
            }
            self.meter.blk_commits(1);
            sent += n;
        }
        Ok(consumed)
    }

    fn process_chunk_staged(&mut self) -> Result<usize, BlockError> {
        let _svc = self.telemetry.span(self.tq, Stage::BlkService);
        let want = self.profile.batch.effective(MAX_BATCH);
        let n = {
            let _r = self.telemetry.span(self.tq, Stage::BlkRing);
            self.req.consume_batch_into(&mut self.req_bufs[..want])?
        };
        if n == 0 {
            return Ok(0);
        }
        for i in 0..n {
            if self.req_bufs[i].len() > BLK_HDR {
                self.meter.blk_copies(1);
            }
            let frame = &mut self.resp_bufs[i];
            frame.clear();
            match parse_req(&self.req_bufs[i]) {
                ReqView::Read(lba) => {
                    frame.resize(BLK_HDR + BLOCK_SIZE, 0);
                    put_hdr(frame, ST_DATA, lba);
                    if self.disk.read_block(lba, &mut frame[BLK_HDR..]).is_err() {
                        frame.truncate(BLK_HDR);
                        put_hdr(frame, ST_ERR, lba);
                    }
                }
                ReqView::Write(lba) => {
                    frame.resize(BLK_HDR, 0);
                    if self
                        .disk
                        .write_block(lba, &self.req_bufs[i][BLK_HDR..])
                        .is_ok()
                    {
                        put_hdr(frame, ST_OK, lba);
                    } else {
                        put_hdr(frame, ST_ERR, lba);
                    }
                }
                ReqView::Malformed => {
                    frame.resize(BLK_HDR, 0);
                    put_hdr(frame, ST_ERR, 0);
                }
            }
        }
        let _r = self.telemetry.span(self.tq, Stage::BlkRing);
        let mut i = 0;
        let mut pending = 0;
        while i < n {
            match self.resp.stage(&self.resp_bufs[i]) {
                Ok(()) => {
                    if self.resp_bufs[i].len() > BLK_HDR {
                        self.meter.blk_copies(1);
                    }
                    pending += 1;
                    i += 1;
                }
                Err(RingError::Full) => {
                    // Flush what's staged so a concurrent guest can drain.
                    if pending > 0 {
                        self.resp.publish()?;
                        self.meter.blk_commits(1);
                        if self.resp.kick() {
                            self.meter.blk_doorbells(1);
                        }
                        pending = 0;
                    }
                    std::hint::spin_loop();
                }
                Err(e) => return Err(e.into()),
            }
        }
        if pending > 0 {
            self.resp.publish()?;
            self.meter.blk_commits(1);
            if self.resp.kick() {
                self.meter.blk_doorbells(1);
            }
        }
        Ok(n)
    }
}

/// A synchronous [`BlockStore`]/[`RunStore`] over the ring pair: each
/// operation submits, lets the backend run, and collects the responses.
/// The caller accounts for boundary-crossing costs (the `cio` crate
/// charges exits around this).
///
/// The backend can be detached ([`RingBlockStore::take_backend`]) and
/// serviced from a worker thread; the store then spins on completions
/// instead of pumping the backend inline.
pub struct RingBlockStore {
    front: CioBlkFrontend,
    back: Option<CioBlkBackend>,
    blocks: u64,
}

impl RingBlockStore {
    /// Couples a frontend and backend.
    pub fn new(front: CioBlkFrontend, back: CioBlkBackend) -> Self {
        let blocks = back.disk.blocks();
        RingBlockStore {
            front,
            back: Some(back),
            blocks,
        }
    }

    /// Backend/disk access (adversary).
    ///
    /// # Panics
    ///
    /// If the backend was detached with [`RingBlockStore::take_backend`].
    pub fn backend_mut(&mut self) -> &mut CioBlkBackend {
        self.back.as_mut().expect("backend detached")
    }

    /// Frontend access (telemetry wiring, adversary fixtures).
    pub fn frontend_mut(&mut self) -> &mut CioBlkFrontend {
        &mut self.front
    }

    /// Detaches the backend for servicing from a worker thread.
    pub fn take_backend(&mut self) -> Option<CioBlkBackend> {
        self.back.take()
    }

    /// Re-attaches a detached backend (returning to inline servicing).
    pub fn restore_backend(&mut self, back: CioBlkBackend) {
        self.back = Some(back);
    }

    /// Attributes both ends' stages to `queue` in `telemetry`.
    pub fn set_telemetry(&mut self, telemetry: Telemetry, queue: usize) {
        self.front.set_telemetry(telemetry.clone(), queue);
        if let Some(b) = self.back.as_mut() {
            b.set_telemetry(telemetry, queue);
        }
    }

    fn pump(&mut self) -> Result<(), BlockError> {
        if let Some(b) = self.back.as_mut() {
            b.process()?;
        }
        Ok(())
    }

    /// Collects exactly `expect` responses, pumping the inline backend
    /// (or spinning on a detached one).
    fn complete(
        &mut self,
        expect: usize,
        sink: &mut dyn FnMut(usize, BlkResp<'_>),
    ) -> Result<(), BlockError> {
        let mut got = 0;
        while got < expect {
            self.pump()?;
            let base = got;
            let n = self
                .front
                .collect(expect - got, &mut |i, r| sink(base + i, r))?;
            if n == 0 {
                std::hint::spin_loop();
            }
            got += n;
        }
        Ok(())
    }
}

impl RunStore for RingBlockStore {
    fn write_run_with(
        &mut self,
        lba: u64,
        count: usize,
        fill: &mut dyn FnMut(usize, &mut [&mut [u8]]),
    ) -> Result<(), BlockError> {
        let mut done = 0;
        while done < count {
            let base = done;
            let submitted =
                self.front
                    .submit_writes(lba + base as u64, count - base, &mut |b, slots| {
                        fill(base + b, slots)
                    })?;
            if submitted == 0 {
                self.pump()?;
                std::hint::spin_loop();
                continue;
            }
            let mut first_err: Option<BlockError> = None;
            self.complete(submitted, &mut |i, resp| {
                let expect_lba = lba + (base + i) as u64;
                match resp {
                    BlkResp::Ok { lba: echo } if echo == expect_lba => {}
                    BlkResp::Err { .. } => {
                        first_err.get_or_insert(BlockError::OutOfRange);
                    }
                    _ => {
                        first_err.get_or_insert(BlockError::Protocol);
                    }
                }
            })?;
            if let Some(e) = first_err {
                return Err(e);
            }
            done += submitted;
        }
        Ok(())
    }

    fn read_run_with(
        &mut self,
        lba: u64,
        count: usize,
        sink: &mut dyn FnMut(usize, &mut [&mut [u8]]),
    ) -> Result<(), BlockError> {
        let mut done = 0;
        while done < count {
            let base = done;
            let submitted = self.front.submit_reads(lba + base as u64, count - base)?;
            if submitted == 0 {
                self.pump()?;
                std::hint::spin_loop();
                continue;
            }
            let mut first_err: Option<BlockError> = None;
            self.complete(submitted, &mut |i, resp| {
                let expect_lba = lba + (base + i) as u64;
                match resp {
                    BlkResp::Data { lba: echo, bytes } if echo == expect_lba => {
                        // Past a failure the contract stops delivering.
                        if first_err.is_none() {
                            let mut one: [&mut [u8]; 1] = [bytes];
                            sink(base + i, &mut one[..]);
                        }
                    }
                    BlkResp::Err { .. } => {
                        first_err.get_or_insert(BlockError::OutOfRange);
                    }
                    _ => {
                        first_err.get_or_insert(BlockError::Protocol);
                    }
                }
            })?;
            if let Some(e) = first_err {
                return Err(e);
            }
            done += submitted;
        }
        Ok(())
    }

    fn read_scatter_with(
        &mut self,
        lbas: &[u64],
        sink: &mut dyn FnMut(usize, &mut [&mut [u8]]),
    ) -> Result<(), BlockError> {
        let mut done = 0;
        while done < lbas.len() {
            let base = done;
            let submitted = self.front.submit_reads_scatter(&lbas[base..])?;
            if submitted == 0 {
                self.pump()?;
                std::hint::spin_loop();
                continue;
            }
            let mut first_err: Option<BlockError> = None;
            self.complete(submitted, &mut |i, resp| {
                let expect_lba = lbas[base + i];
                match resp {
                    BlkResp::Data { lba: echo, bytes } if echo == expect_lba => {
                        if first_err.is_none() {
                            let mut one: [&mut [u8]; 1] = [bytes];
                            sink(base + i, &mut one[..]);
                        }
                    }
                    BlkResp::Err { .. } => {
                        first_err.get_or_insert(BlockError::OutOfRange);
                    }
                    _ => {
                        first_err.get_or_insert(BlockError::Protocol);
                    }
                }
            })?;
            if let Some(e) = first_err {
                return Err(e);
            }
            done += submitted;
        }
        Ok(())
    }
}

impl BlockStore for RingBlockStore {
    fn read_block(&mut self, lba: u64, buf: &mut [u8]) -> Result<(), BlockError> {
        if buf.len() != BLOCK_SIZE {
            return Err(BlockError::BadLength);
        }
        RunStore::read_run_with(self, lba, 1, &mut |_, slots| {
            buf.copy_from_slice(&slots[0][..]);
        })
    }

    fn write_block(&mut self, lba: u64, data: &[u8]) -> Result<(), BlockError> {
        if data.len() != BLOCK_SIZE {
            return Err(BlockError::BadLength);
        }
        RunStore::write_run_with(self, lba, 1, &mut |_, slots| {
            slots[0].copy_from_slice(data);
        })
    }

    fn blocks(&self) -> u64 {
        self.blocks
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cio_mem::{GuestAddr, GuestMemory, PAGE_SIZE};
    use cio_sim::{Clock, CostModel};
    use cio_vring::cioring::{CioRing, DataMode, RingConfig};

    fn ring_store_with(disk_blocks: u64, profile: BlkProfile) -> (GuestMemory, RingBlockStore) {
        let mem = GuestMemory::new(600, Clock::new(), CostModel::default(), Meter::new());
        let cfg = RingConfig {
            slots: 16,
            slot_size: 16,
            mode: DataMode::SharedArea,
            mtu: (BLOCK_SIZE + BLK_HDR) as u32,
            area_size: 1 << 17, // 128 KiB / 16 slots = 8 KiB stride
            notify: profile.notify,
            ..RingConfig::default()
        };
        let req_ring =
            CioRing::new(cfg.clone(), GuestAddr(0), GuestAddr(16 * PAGE_SIZE as u64)).unwrap();
        let resp_ring = CioRing::new(
            cfg,
            GuestAddr(8 * PAGE_SIZE as u64),
            GuestAddr(64 * PAGE_SIZE as u64),
        )
        .unwrap();
        mem.share_range(GuestAddr(0), req_ring.ring_bytes())
            .unwrap();
        mem.share_range(GuestAddr(8 * PAGE_SIZE as u64), resp_ring.ring_bytes())
            .unwrap();
        mem.share_range(GuestAddr(16 * PAGE_SIZE as u64), req_ring.area_bytes())
            .unwrap();
        mem.share_range(GuestAddr(64 * PAGE_SIZE as u64), resp_ring.area_bytes())
            .unwrap();

        let front = CioBlkFrontend::with_profile(
            Producer::new(req_ring.clone(), mem.guest()).unwrap(),
            Consumer::new(resp_ring.clone(), mem.guest()).unwrap(),
            profile,
        );
        let back = CioBlkBackend::with_profile(
            Consumer::new(req_ring, mem.host()).unwrap(),
            Producer::new(resp_ring, mem.host()).unwrap(),
            RamDisk::new(disk_blocks),
            profile,
        );
        (mem, RingBlockStore::new(front, back))
    }

    fn ring_store(disk_blocks: u64) -> (GuestMemory, RingBlockStore) {
        ring_store_with(disk_blocks, BlkProfile::storage_v1())
    }

    fn pattern(i: usize) -> Vec<u8> {
        (0..BLOCK_SIZE)
            .map(|j| ((i * 131 + j * 7) % 251) as u8)
            .collect()
    }

    #[test]
    fn frames_parse_and_reject() {
        let mut frame = vec![0u8; BLK_HDR + BLOCK_SIZE];
        put_hdr(&mut frame, OP_WRITE, 42);
        assert!(matches!(parse_req(&frame), ReqView::Write(42)));
        put_hdr(&mut frame[..BLK_HDR], OP_READ, 7);
        assert!(matches!(parse_req(&frame[..BLK_HDR]), ReqView::Read(7)));
        // Truncated, wrong length for op, unknown op.
        assert!(matches!(parse_req(&[]), ReqView::Malformed));
        assert!(matches!(
            parse_req(&frame[..BLK_HDR - 1]),
            ReqView::Malformed
        ));
        assert!(matches!(
            parse_req(&frame[..BLK_HDR + 1]),
            ReqView::Malformed
        ));
        frame[0] = 9;
        assert!(matches!(parse_req(&frame), ReqView::Malformed));

        let mut resp = vec![0u8; BLK_HDR + BLOCK_SIZE];
        put_hdr(&mut resp, ST_DATA, 5);
        assert!(matches!(
            parse_resp(&mut resp),
            BlkResp::Data { lba: 5, .. }
        ));
        put_hdr(&mut resp[..BLK_HDR], ST_OK, 6);
        assert!(matches!(
            parse_resp(&mut resp[..BLK_HDR]),
            BlkResp::Ok { lba: 6 }
        ));
        put_hdr(&mut resp[..BLK_HDR], ST_ERR, 8);
        assert!(matches!(
            parse_resp(&mut resp[..BLK_HDR]),
            BlkResp::Err { lba: 8 }
        ));
        // Truncated data, oversized ack, unknown status.
        assert!(matches!(
            parse_resp(&mut resp[..BLK_HDR + 3]),
            BlkResp::Malformed
        ));
        resp[0] = ST_OK;
        assert!(matches!(parse_resp(&mut resp), BlkResp::Malformed));
        resp[0] = 7;
        assert!(matches!(
            parse_resp(&mut resp[..BLK_HDR]),
            BlkResp::Malformed
        ));
    }

    #[test]
    fn ring_store_read_write() {
        let (_mem, mut s) = ring_store(32);
        let data: Vec<u8> = (0..BLOCK_SIZE).map(|i| (i % 255) as u8).collect();
        s.write_block(5, &data).unwrap();
        let mut out = vec![0u8; BLOCK_SIZE];
        s.read_block(5, &mut out).unwrap();
        assert_eq!(out, data);
        assert_eq!(s.blocks(), 32);
    }

    #[test]
    fn backend_errors_surface() {
        for profile in [BlkProfile::storage_v1(), BlkProfile::batched(8)] {
            let (_mem, mut s) = ring_store_with(4, profile);
            let data = vec![0u8; BLOCK_SIZE];
            assert_eq!(s.write_block(100, &data), Err(BlockError::OutOfRange));
            let mut buf = vec![0u8; BLOCK_SIZE];
            assert_eq!(s.read_block(100, &mut buf), Err(BlockError::OutOfRange));
            // The store keeps working after a failed request.
            s.write_block(3, &data).unwrap();
            s.read_block(3, &mut buf).unwrap();
            assert_eq!(buf, data);
        }
    }

    #[test]
    fn runs_roundtrip_across_profiles() {
        for profile in [
            BlkProfile::storage_v1(),
            BlkProfile::batched(8),
            BlkProfile {
                copy: BlkCopyMode::Staged,
                batch: BatchPolicy::Fixed(8),
                notify: NotifyMode::Doorbell,
            },
            BlkProfile {
                copy: BlkCopyMode::InSlot,
                batch: BatchPolicy::Serial,
                notify: NotifyMode::Polling,
            },
        ] {
            let (_mem, mut s) = ring_store_with(64, profile);
            let blocks: Vec<Vec<u8>> = (0..24).map(pattern).collect();
            s.write_run_with(3, blocks.len(), &mut |base, slots| {
                for (i, slot) in slots.iter_mut().enumerate() {
                    slot.copy_from_slice(&blocks[base + i]);
                }
            })
            .unwrap();
            let mut seen = vec![false; blocks.len()];
            s.read_run_with(3, blocks.len(), &mut |base, slots| {
                for (i, slot) in slots.iter_mut().enumerate() {
                    assert_eq!(&slot[..], &blocks[base + i][..], "{profile:?}");
                    seen[base + i] = true;
                }
            })
            .unwrap();
            assert!(seen.iter().all(|&s| s), "{profile:?}");
        }
    }

    #[test]
    fn batched_in_slot_is_zero_copy_and_amortized() {
        let (mem, mut s) = ring_store_with(64, BlkProfile::batched(8));
        let meter = mem.meter().clone();
        let before = meter.snapshot();
        let blocks: Vec<Vec<u8>> = (0..16).map(pattern).collect();
        s.write_run_with(0, 16, &mut |base, slots| {
            for (i, slot) in slots.iter_mut().enumerate() {
                slot.copy_from_slice(&blocks[base + i]);
            }
        })
        .unwrap();
        s.read_run_with(0, 16, &mut |base, slots| {
            for (i, slot) in slots.iter_mut().enumerate() {
                assert_eq!(&slot[..], &blocks[base + i][..]);
            }
        })
        .unwrap();
        let d = meter.snapshot().delta(&before);
        assert_eq!(d.blk_records, 32, "16 writes + 16 reads");
        assert_eq!(d.blk_copies, 0, "in-slot path must not stage");
        assert!(
            d.blk_commits <= 8,
            "runs of 8 amortize publishes: {}",
            d.blk_commits
        );
        assert!(
            d.lock_acquisitions < d.blk_records,
            "locks {} must amortize below records {}",
            d.lock_acquisitions,
            d.blk_records
        );
        // Event-idx suppression keeps doorbells far below one per block.
        assert!(
            d.blk_doorbells <= 4,
            "doorbells {} not suppressed",
            d.blk_doorbells
        );
    }

    #[test]
    fn storage_v1_profile_stages_per_block() {
        let (mem, mut s) = ring_store(64);
        let meter = mem.meter().clone();
        let before = meter.snapshot();
        let data = pattern(1);
        s.write_block(2, &data).unwrap();
        let mut out = vec![0u8; BLOCK_SIZE];
        s.read_block(2, &mut out).unwrap();
        let d = meter.snapshot().delta(&before);
        assert_eq!(d.blk_records, 2);
        // Write: guest stages the frame, host copies it out. Read: host
        // stages the response, guest copies it out.
        assert_eq!(d.blk_copies, 4, "storage_v1 pays staging both ways");
        assert_eq!(d.blk_doorbells, 0, "polling rings never kick");
    }

    #[test]
    fn serial_and_batched_disks_match() {
        let (_m1, mut serial) = ring_store_with(64, BlkProfile::storage_v1());
        let (_m2, mut batched) = ring_store_with(64, BlkProfile::batched(8));
        let blocks: Vec<Vec<u8>> = (0..20).map(pattern).collect();
        for (i, b) in blocks.iter().enumerate() {
            serial.write_block(i as u64, b).unwrap();
        }
        batched
            .write_run_with(0, blocks.len(), &mut |base, slots| {
                for (i, slot) in slots.iter_mut().enumerate() {
                    slot.copy_from_slice(&blocks[base + i]);
                }
            })
            .unwrap();
        for lba in 0..blocks.len() as u64 {
            assert_eq!(
                serial.backend_mut().disk_mut().snapshot_block(lba).unwrap(),
                batched
                    .backend_mut()
                    .disk_mut()
                    .snapshot_block(lba)
                    .unwrap(),
                "block {lba} differs between serial and batched paths"
            );
        }
    }

    #[test]
    fn full_stack_fs_over_crypt_over_ring() {
        // The complete in-TEE storage stack of the dual-boundary design:
        // SimpleFs -> CryptStore -> RingBlockStore -> host RamDisk.
        let (_mem, ring) = ring_store(256);
        let crypt = crate::crypt::CryptStore::new(ring, [5u8; 32]).unwrap();
        let mut fs = crate::fs::SimpleFs::format(crypt).unwrap();
        let id = fs.create("db.log").unwrap();
        let payload: Vec<u8> = (0..10_000u32).map(|i| (i % 241) as u8).collect();
        fs.write(id, 0, &payload).unwrap();
        assert_eq!(fs.read(id, 0, payload.len()).unwrap(), payload);

        // Host tampers with its own disk: the crypt layer catches it even
        // through two transport layers.
        fs.store_mut()
            .inner_mut()
            .backend_mut()
            .disk_mut()
            .tamper(7, 99, 0x10)
            .unwrap();
        let mut saw_violation = false;
        for lba_read in 0..20u64 {
            match fs.read(id, lba_read * 512, 512) {
                Err(BlockError::IntegrityViolation) => {
                    saw_violation = true;
                    break;
                }
                _ => continue,
            }
        }
        assert!(saw_violation, "tamper must surface as integrity violation");
    }
}
