//! The E10 attack-resilience harness: the adversary suite against every
//! boundary design.
//!
//! Each scenario builds a full [`World`], establishes an encrypted echo
//! session, launches one [`AttackKind`] from the host's position, keeps
//! the workload running, and classifies what happened:
//!
//! * [`Outcome::NoSurface`] — the design removed the attacked mechanism
//!   entirely (no completion ids to forge, no config space to mutate).
//! * [`Outcome::Prevented`] — the attack executed but was neutralized by
//!   construction (masking, fixed config, idempotent handlers): no
//!   violation even needed *detecting*.
//! * [`Outcome::Detected`] — the boundary validated and rejected the
//!   hostile input (`violations_detected` grew; no corruption).
//! * [`Outcome::Undetected`] — the oracle recorded a violation the design
//!   never noticed (`violations_undetected` grew): in C, memory
//!   corruption; here, wrapped accesses and poisoned state.
//!
//! The expected headline (the paper's Table-equivalent): the unhardened
//! virtio baseline bleeds `Undetected` results, the hardened retrofit
//! converts them to `Detected` at a copy/validation tax, and the cio-ring
//! designs mostly answer `NoSurface`/`Prevented` — safety *by
//! construction* rather than by vigilance.

use crate::world::{BoundaryKind, SessionId, World, WorldOptions, ECHO_PORT};
use crate::CioError;
use cio_host::adversary::AttackKind;
use cio_host::fabric::LinkParams;
use cio_host::VirtioNetBackend;
use cio_sim::{verify_audit_chain, AuditViolation, Cycles, EventKind, FlightRecorder};
use cio_vring::cioring::{BatchPolicy, CioRing};

pub use cio_host::adversary::ALL_ATTACKS;

/// Classified result of one attack scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// The design has no such mechanism to attack.
    NoSurface,
    /// Attack executed; neutralized by construction.
    Prevented,
    /// Attack executed; validated and rejected.
    Detected,
    /// Attack executed; the design acted on hostile data unknowingly.
    Undetected,
}

impl Outcome {
    /// Stable wire code, carried as the `b` payload word of the
    /// [`EventKind::AttackVerdict`] flight event (and therefore
    /// authenticated by the audit chain).
    pub fn code(self) -> u64 {
        match self {
            Outcome::NoSurface => 0,
            Outcome::Prevented => 1,
            Outcome::Detected => 2,
            Outcome::Undetected => 3,
        }
    }
}

impl std::fmt::Display for Outcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Outcome::NoSurface => "no-surface",
            Outcome::Prevented => "prevented",
            Outcome::Detected => "detected",
            Outcome::Undetected => "UNDETECTED",
        };
        f.write_str(s)
    }
}

/// One row of the attack matrix.
#[derive(Debug, Clone)]
pub struct AttackReport {
    /// The design under attack.
    pub boundary: BoundaryKind,
    /// The attack class.
    pub attack: AttackKind,
    /// What happened.
    pub outcome: Outcome,
    /// Whether the echo workload still completed correctly afterwards.
    pub workload_survived: bool,
    /// Whether the verdict landed in the world's tamper-evident audit
    /// chain and the whole chain verified afterwards (trivially `true`
    /// for `NoSurface` scenarios, which never build a world).
    pub audit_ok: bool,
}

fn attack_opts() -> WorldOptions {
    WorldOptions {
        link: LinkParams {
            latency: Cycles(1_000),
            loss: 0.0,
        },
        observe: true,
        ..WorldOptions::default()
    }
}

/// Index of `attack` in [`ALL_ATTACKS`], carried as the `a` payload word
/// of the [`EventKind::AttackVerdict`] flight event.
fn attack_index(attack: AttackKind) -> u64 {
    ALL_ATTACKS
        .iter()
        .position(|&a| a == attack)
        .unwrap_or(ALL_ATTACKS.len()) as u64
}

/// Records the classification verdict in the world's flight recorder
/// (which appends it to the tamper-evident audit chain, `AttackVerdict`
/// being a security event) and checks that the chain verifies end to end
/// with the fresh verdict as its newest link.
fn seal_verdict(flight: &FlightRecorder, attack: AttackKind, outcome: Outcome) -> bool {
    let (scenario, code) = (attack_index(attack), outcome.code());
    flight.record(0, EventKind::AttackVerdict, scenario, code);
    flight.verify_audit().is_ok()
        && flight
            .audit_records()
            .last()
            .is_some_and(|r| r.kind == EventKind::AttackVerdict && r.a == scenario && r.b == code)
}

/// Whether this design exposes the mechanism this attack targets.
fn has_surface(boundary: BoundaryKind, attack: AttackKind) -> bool {
    use AttackKind::*;
    use BoundaryKind::*;
    match attack {
        CompletionIdOob | CompletionLenOverrun | SpuriousCompletion | DescChainCorruption => {
            matches!(boundary, L2VirtioUnhardened | L2VirtioHardened)
        }
        ConfigDoubleFetch => matches!(boundary, L2VirtioUnhardened | L2VirtioHardened),
        PayloadDoubleFetch => matches!(boundary, L2VirtioUnhardened | L2CioRing | DualBoundary),
        IndexJump | SlotForgery => matches!(
            boundary,
            L2CioRing | DualBoundary | Tunneled | L2VirtioUnhardened | L2VirtioHardened
        ),
        NotificationStorm => matches!(boundary, L2VirtioHardened | L2CioRing | DualBoundary),
    }
}

/// Downcasts the world's backend to the virtio device model, if that is
/// what it runs (exercises the [`World::backend_mut`] trait-object path).
fn virtio_of(world: &mut World) -> Option<&mut VirtioNetBackend> {
    world.backend_mut().as_any_mut().downcast_mut()
}

/// Launches one attack against a running world. Returns false if the
/// design offers no surface (nothing was attempted).
///
/// Ring-targeted attacks aim at the *last* cio queue, so multi-queue
/// worlds prove every queue independently preserves the §3.2 defenses
/// (queue 0 is covered by the single-queue matrix).
fn launch(world: &mut World, attack: AttackKind) -> Result<bool, CioError> {
    use AttackKind::*;
    let mem = world.guest_memory().clone();
    let host = mem.host();
    match attack {
        CompletionIdOob => {
            let Some(b) = virtio_of(world) else {
                return Ok(false);
            };
            b.tx_device().complete(1000, 0)?;
            b.rx_device().complete(4999, 0)?;
        }
        CompletionLenOverrun => {
            let Some(b) = virtio_of(world) else {
                return Ok(false);
            };
            // Claim an enormous write into whatever chain 0 is.
            b.rx_device().complete(0, 1 << 24)?;
        }
        SpuriousCompletion => {
            let Some(b) = virtio_of(world) else {
                return Ok(false);
            };
            // Double-complete descriptor 0 on both queues.
            b.tx_device().complete(0, 0)?;
            b.tx_device().complete(0, 0)?;
        }
        DescChainCorruption => {
            let Some((tx_layout, rx_layout, _)) = world.anatomy().virtio else {
                return Ok(false);
            };
            for q in [tx_layout, rx_layout] {
                for i in 0..q.qsize {
                    host.write(q.desc(i).add(14), &0xFFFFu16.to_le_bytes())?;
                }
            }
        }
        ConfigDoubleFetch => {
            let Some((_, _, cfg_page)) = world.anatomy().virtio else {
                return Ok(false);
            };
            // Inflate the MTU after negotiation.
            host.write(
                cfg_page.add(cio_vring::virtqueue::ConfigSpace::MTU),
                &60_000u16.to_le_bytes(),
            )?;
        }
        PayloadDoubleFetch => {
            // Handled by the dedicated micro-scenario (`payload_toctou`):
            // the full-stack worlds copy/revoke at well-defined points, so
            // the interesting TOCTOU comparison is at the ring level.
            return Ok(false);
        }
        IndexJump => {
            if let Some((_, rx_ring)) = world.anatomy().cio_queues.last().cloned() {
                // Lie about the producer index on the guest's RX ring.
                host.write(rx_ring.prod_idx_addr(), &1_000_000u32.to_le_bytes())?;
            } else if let Some((_, rx_layout, _)) = world.anatomy().virtio {
                // Jump the used index far ahead of reality.
                let cur = {
                    let mut b = [0u8; 2];
                    host.read(rx_layout.used_idx(), &mut b)?;
                    u16::from_le_bytes(b)
                };
                host.write(rx_layout.used_idx(), &(cur.wrapping_add(300)).to_le_bytes())?;
            } else {
                return Ok(false);
            }
        }
        SlotForgery => {
            if let Some((_, rx_ring)) = world.anatomy().cio_queues.last().cloned() {
                // Scribble hostile offset/len pairs over every RX slot.
                for i in 0..rx_ring.config().slots {
                    let slot = rx_ring.slot_addr(i);
                    host.write(slot, &0xFFFF_FFF0u32.to_le_bytes())?;
                    host.write(slot.add(4), &0xFFFF_FFFFu32.to_le_bytes())?;
                }
            } else if let Some((_, rx_layout, _)) = world.anatomy().virtio {
                // Forge used entries wholesale.
                for i in 0..rx_layout.qsize {
                    let entry = rx_layout.used_ring(i);
                    host.write(entry, &0xDEAD_BEEFu32.to_le_bytes())?;
                    host.write(entry.add(4), &0xFFFF_FFFFu32.to_le_bytes())?;
                }
            } else {
                return Ok(false);
            }
        }
        NotificationStorm => {
            // Inject a burst of spurious notifications/doorbells.
            let cost = world.cost().clone();
            for _ in 0..64 {
                world.clock().advance(cost.interrupt_inject);
                world.meter().interrupts_received(1);
            }
            // For cio rings the handler is the idempotent drain; exercise
            // it through normal steps below.
        }
    }
    Ok(true)
}

/// Runs one attack scenario and classifies the outcome.
///
/// # Errors
///
/// Only infrastructure failures; attack effects are the *result*.
pub fn run_scenario(boundary: BoundaryKind, attack: AttackKind) -> Result<AttackReport, CioError> {
    run_scenario_with(boundary, attack, 1)
}

/// [`run_scenario`] with a dataplane queue count. Designs without
/// multi-queue support run single-queue regardless (the matrix stays
/// complete). Ring attacks hit the last queue — see [`launch`].
///
/// # Errors
///
/// Only infrastructure failures; attack effects are the *result*.
pub fn run_scenario_with(
    boundary: BoundaryKind,
    attack: AttackKind,
    queues: usize,
) -> Result<AttackReport, CioError> {
    run_scenario_inner(
        boundary,
        attack,
        queues,
        0,
        cio_mem::CopyPolicy::default(),
        BatchPolicy::Serial,
    )
}

/// [`run_scenario_with`] on a world whose host runs thread-per-queue
/// (`threads` worker threads): the same hostile mutations now land on
/// state that live OS threads are servicing. Every outcome must match
/// the serial matrix — parallel execution widens no attack surface. Only
/// meaningful for the cio-ring designs (others ignore `threads`).
///
/// # Errors
///
/// Only infrastructure failures; attack effects are the *result*.
pub fn run_scenario_parallel(
    boundary: BoundaryKind,
    attack: AttackKind,
    queues: usize,
    threads: usize,
) -> Result<AttackReport, CioError> {
    run_scenario_inner(
        boundary,
        attack,
        queues,
        threads,
        cio_mem::CopyPolicy::default(),
        BatchPolicy::Serial,
    )
}

/// [`run_scenario`] with an explicit data-positioning policy: proves the
/// seal-in-slot dataplane ([`cio_mem::CopyPolicy::InPlace`]) and the
/// staged fallback ([`cio_mem::CopyPolicy::CopyEarly`]) leave every
/// attack outcome unchanged.
///
/// # Errors
///
/// Only infrastructure failures; attack effects are the *result*.
pub fn run_scenario_with_policy(
    boundary: BoundaryKind,
    attack: AttackKind,
    policy: cio_mem::CopyPolicy,
) -> Result<AttackReport, CioError> {
    run_scenario_inner(boundary, attack, 1, 0, policy, BatchPolicy::Serial)
}

/// [`run_scenario`] with an explicit record-batch discipline: proves the
/// batched dataplane (multi-record commit/consume, shared-keystream
/// AEAD) leaves every attack outcome unchanged — amortizing boundary
/// crossings must never amortize validation.
///
/// # Errors
///
/// Only infrastructure failures; attack effects are the *result*.
pub fn run_scenario_with_batch(
    boundary: BoundaryKind,
    attack: AttackKind,
    batch: BatchPolicy,
) -> Result<AttackReport, CioError> {
    run_scenario_inner(
        boundary,
        attack,
        1,
        0,
        cio_mem::CopyPolicy::default(),
        batch,
    )
}

fn run_scenario_inner(
    boundary: BoundaryKind,
    attack: AttackKind,
    queues: usize,
    parallel: usize,
    copy_policy: cio_mem::CopyPolicy,
    batch: BatchPolicy,
) -> Result<AttackReport, CioError> {
    if !has_surface(boundary, attack) {
        return Ok(AttackReport {
            boundary,
            attack,
            outcome: Outcome::NoSurface,
            workload_survived: true,
            audit_ok: true,
        });
    }

    let multiqueue_capable = matches!(
        boundary,
        BoundaryKind::L2CioRing | BoundaryKind::DualBoundary
    );
    let queues = if multiqueue_capable { queues } else { 1 };
    let parallel = if multiqueue_capable { parallel } else { 0 };
    let opts = WorldOptions {
        queues,
        parallel,
        copy_policy,
        batch,
        ..attack_opts()
    };
    let mut world = World::new(boundary, opts)?;
    let conn = world.connect(ECHO_PORT)?;
    world.establish(conn, 3_000)?;

    // Warm-up traffic.
    world.send(conn, b"before attack")?;
    let warm = world.recv_exact(conn, 13, 3_000)?;
    debug_assert_eq!(&warm, b"before attack");

    let before = world.meter().snapshot();
    let attempted = launch(&mut world, attack)?;
    if !attempted {
        let audit_ok = seal_verdict(world.flight(), attack, Outcome::NoSurface);
        return Ok(AttackReport {
            boundary,
            attack,
            outcome: Outcome::NoSurface,
            workload_survived: true,
            audit_ok,
        });
    }

    // Let the attack land and keep the workload running.
    let _ = world.run(200);
    let mut survived = false;
    if world.send(conn, b"after attack").is_ok() {
        if let Ok(got) = world.recv_exact(conn, 12, 4_000) {
            survived = got == b"after attack";
        }
    }
    let delta = world.meter().snapshot().delta(&before);

    let outcome = if delta.violations_undetected > 0 {
        Outcome::Undetected
    } else if delta.violations_detected > 0 {
        Outcome::Detected
    } else {
        Outcome::Prevented
    };
    let audit_ok = seal_verdict(world.flight(), attack, outcome);
    Ok(AttackReport {
        boundary,
        attack,
        outcome,
        workload_survived: survived,
        audit_ok,
    })
}

/// Runs the full matrix.
///
/// # Errors
///
/// Infrastructure failures only.
pub fn run_matrix(boundaries: &[BoundaryKind]) -> Result<Vec<AttackReport>, CioError> {
    run_matrix_with(boundaries, 1)
}

/// Runs the full matrix with a dataplane queue count (applied to the
/// multi-queue-capable designs; others run single-queue).
///
/// # Errors
///
/// Infrastructure failures only.
pub fn run_matrix_with(
    boundaries: &[BoundaryKind],
    queues: usize,
) -> Result<Vec<AttackReport>, CioError> {
    let mut out = Vec::new();
    for &b in boundaries {
        for &a in &ALL_ATTACKS {
            out.push(run_scenario_with(b, a, queues)?);
        }
    }
    Ok(out)
}

/// The dedicated payload-TOCTOU micro-scenario (ring level).
///
/// Returns `(unhardened_outcome, cio_copy_outcome, cio_revoke_outcome)`:
/// the shared-buffer design lets the host flip payload bytes between the
/// guest's validation and use; the cio-ring's early copy closes the window
/// after the fetch; revocation removes it entirely.
///
/// # Errors
///
/// Infrastructure failures only.
pub fn payload_toctou() -> Result<(Outcome, Outcome, Outcome), CioError> {
    use cio_mem::{GuestAddr, GuestMemory, PAGE_SIZE};
    use cio_sim::{Clock, CostModel, Meter};
    use cio_vring::cioring::{CioRing, Consumer, DataMode, Producer, RingConfig};

    // --- Unhardened shared buffer: validate, host flips, use. ---
    let unhardened = {
        let mem = GuestMemory::new(8, Clock::new(), CostModel::default(), Meter::new());
        mem.share_range(GuestAddr(0), 2 * PAGE_SIZE)?;
        let g = mem.guest();
        let h = mem.host();
        // Host delivers a payload; guest validates it in place.
        h.write(GuestAddr(64), b"AMOUNT=00100")?;
        let mut check = [0u8; 12];
        g.read(GuestAddr(64), &mut check)?;
        let valid = &check == b"AMOUNT=00100";
        // Double-fetch window: host flips after the check.
        h.write(GuestAddr(64), b"AMOUNT=99999")?;
        // Guest "uses" the validated data — fetching it again.
        let mut used = [0u8; 12];
        g.read(GuestAddr(64), &mut used)?;
        if valid && &used != b"AMOUNT=00100" {
            Outcome::Undetected
        } else {
            Outcome::Prevented
        }
    };

    // --- cio-ring early copy: single fetch, then private. ---
    let cio_copy = {
        let mem = GuestMemory::new(600, Clock::new(), CostModel::default(), Meter::new());
        let cfg = RingConfig {
            slots: 8,
            slot_size: 16,
            mode: DataMode::SharedArea,
            mtu: 2048,
            area_size: 1 << 14,
            ..RingConfig::default()
        };
        let ring = CioRing::new(cfg, GuestAddr(0), GuestAddr(16 * PAGE_SIZE as u64))?;
        mem.share_range(GuestAddr(0), ring.ring_bytes())?;
        mem.share_range(GuestAddr(16 * PAGE_SIZE as u64), ring.area_bytes())?;
        let mut host_p = Producer::new(ring.clone(), mem.host())?;
        let mut guest_c = Consumer::new(ring.clone(), mem.guest())?;
        host_p.produce(b"AMOUNT=00100")?;
        // The early copy happens inside consume(); afterwards the host may
        // flip the shared area all it wants.
        let private = guest_c.consume()?.expect("payload");
        mem.host().write(ring.payload_addr(0), b"AMOUNT=99999")?;
        if private == b"AMOUNT=00100" {
            Outcome::Prevented
        } else {
            Outcome::Undetected
        }
    };

    // --- cio-ring revocation: the pages stop being host-writable. ---
    let cio_revoke = {
        let mem = GuestMemory::new(600, Clock::new(), CostModel::default(), Meter::new());
        let cfg = RingConfig {
            slots: 8,
            slot_size: 16,
            mode: DataMode::SharedArea,
            mtu: 4096,
            area_size: 8 * PAGE_SIZE as u32,
            page_aligned_payloads: true,
            ..RingConfig::default()
        };
        let ring = CioRing::new(cfg, GuestAddr(0), GuestAddr(16 * PAGE_SIZE as u64))?;
        mem.share_range(GuestAddr(0), ring.ring_bytes())?;
        mem.share_range(GuestAddr(16 * PAGE_SIZE as u64), ring.area_bytes())?;
        let mut host_p = Producer::new(ring.clone(), mem.host())?;
        let mut guest_c = Consumer::new(ring, mem.guest())?;
        host_p.produce(b"AMOUNT=00100")?;
        let r = guest_c.consume_revoking()?.expect("payload");
        // The host's flip attempt faults on the revoked page.
        let flip = mem.host().write(r.addr, b"AMOUNT=99999");
        let mut used = vec![0u8; r.len as usize];
        mem.guest().read(r.addr, &mut used)?;
        if flip.is_err() && used == b"AMOUNT=00100" {
            Outcome::Prevented
        } else {
            Outcome::Undetected
        }
    };

    Ok((unhardened, cio_copy, cio_revoke))
}

/// The payload-TOCTOU micro-scenario for the seal-in-slot path: the
/// guest consumes the record *in place* (no early copy), but the single
/// fetch happens under the memory lock and anything the guest keeps is
/// copied into private memory before the closure returns — the host's
/// post-consume flip lands on already-consumed slot bytes.
///
/// This is the data-positioning argument for why the zero-copy dataplane
/// does not reopen the double-fetch window the early copy closed.
///
/// # Errors
///
/// Infrastructure failures only.
pub fn payload_toctou_in_slot() -> Result<Outcome, CioError> {
    use cio_mem::{GuestAddr, GuestMemory, PAGE_SIZE};
    use cio_sim::{Clock, CostModel, Meter};
    use cio_vring::cioring::{CioRing, Consumer, DataMode, Producer, RingConfig};

    let mem = GuestMemory::new(600, Clock::new(), CostModel::default(), Meter::new());
    let cfg = RingConfig {
        slots: 8,
        slot_size: 16,
        mode: DataMode::SharedArea,
        mtu: 2048,
        area_size: 1 << 14,
        ..RingConfig::default()
    };
    let ring = CioRing::new(cfg, GuestAddr(0), GuestAddr(16 * PAGE_SIZE as u64))?;
    mem.share_range(GuestAddr(0), ring.ring_bytes())?;
    mem.share_range(GuestAddr(16 * PAGE_SIZE as u64), ring.area_bytes())?;
    let mut host_p = Producer::new(ring.clone(), mem.host())?;
    let mut guest_c = Consumer::new(ring.clone(), mem.guest())?;
    host_p.produce(b"AMOUNT=00100")?;
    // Single fetch: validate and extract in one in-place pass.
    let private = guest_c
        .consume_in_place(|payload| (payload == b"AMOUNT=00100").then(|| payload.to_vec()))?
        .expect("payload");
    // The host flips the slot after consumption; the guest never
    // re-fetches it.
    mem.host().write(ring.payload_addr(0), b"AMOUNT=99999")?;
    Ok(match private {
        Some(used) if used == b"AMOUNT=00100" => Outcome::Prevented,
        _ => Outcome::Undetected,
    })
}

/// The mid-batch poisoning micro-scenario for the batched dataplane: the
/// host corrupts one slot of a committed multi-record run before the
/// guest's batched consume. The batch open must fail closed for exactly
/// the poisoned record — every other record in the run decrypts to the
/// right plaintext, in the original order. Amortizing the lock, index
/// publish, and AEAD setup across the run must not widen the blast
/// radius of a single hostile slot.
///
/// # Errors
///
/// Infrastructure failures only.
pub fn batch_partial_poison() -> Result<Outcome, CioError> {
    use cio_ctls::{Channel, RecordScratch};
    use cio_mem::{GuestAddr, GuestMemory, PAGE_SIZE};
    use cio_sim::{Clock, CostModel, Meter};
    use cio_vring::cioring::{CioRing, Consumer, DataMode, Producer, RingConfig};

    const N: usize = 5;
    const POISONED: usize = 2;

    let mem = GuestMemory::new(600, Clock::new(), CostModel::default(), Meter::new());
    let cfg = RingConfig {
        slots: 8,
        slot_size: 16,
        mode: DataMode::SharedArea,
        mtu: 2048,
        area_size: 1 << 14,
        ..RingConfig::default()
    };
    let ring = CioRing::new(cfg, GuestAddr(0), GuestAddr(16 * PAGE_SIZE as u64))?;
    mem.share_range(GuestAddr(0), ring.ring_bytes())?;
    mem.share_range(GuestAddr(16 * PAGE_SIZE as u64), ring.area_bytes())?;
    let mut host_p = Producer::new(ring.clone(), mem.host())?;
    let mut guest_c = Consumer::new(ring.clone(), mem.guest())?;
    let mut sealer = Channel::from_secrets([3; 32], [4; 32], false, None);
    let mut opener = Channel::from_secrets([3; 32], [4; 32], true, None);

    // The host (gateway role) seals an N-record run into the slots and
    // commits it as one batch.
    let payloads: Vec<Vec<u8>> = (0..N)
        .map(|i| format!("AMOUNT=0010{i}").into_bytes())
        .collect();
    let pts: Vec<&[u8]> = payloads.iter().map(Vec::as_slice).collect();
    let cap = payloads[0].len() + cio_ctls::RECORD_OVERHEAD;
    let grant = host_p.reserve_batch(cap, N)?;
    debug_assert_eq!(grant.len(), N);
    let mut lens = [0usize; N];
    host_p.with_batch_mut(&grant, |slots| {
        sealer.seal_batch_into_slots(&pts, slots, &mut lens)
    })??;
    host_p.commit_batch(grant, &lens)?;
    host_p.kick();

    // Mid-batch corruption: flip one ciphertext byte of the third record
    // after the commit, before the guest drains the run.
    let poison_at = GuestAddr(ring.payload_addr(POISONED as u32).0 + 6);
    let mut byte = [0u8; 1];
    mem.host().read(poison_at, &mut byte)?;
    mem.host().write(poison_at, &[byte[0] ^ 0xA5])?;

    // Batched single-fetch drain + batched open.
    let mut outs: Vec<RecordScratch> = std::iter::repeat_with(RecordScratch::new).take(N).collect();
    let mut results = [Ok(()); N];
    let consumed = guest_c.consume_batch_in_place(N, |slots| {
        let recs: Vec<&[u8]> = slots.iter().map(|s| &**s).collect();
        opener.open_batch_in_slots(&recs, &mut outs, &mut results);
    })?;

    let poisoned_rejected = results[POISONED].is_err() && outs[POISONED].as_slice().is_empty();
    let rest_intact = (0..N)
        .filter(|&i| i != POISONED)
        .all(|i| results[i].is_ok() && outs[i].as_slice() == payloads[i].as_slice());
    Ok(if consumed == N && poisoned_rejected && rest_intact {
        Outcome::Detected
    } else {
        Outcome::Undetected
    })
}

/// Report from one storage-plane attack scenario (the E24 additions to
/// the adversary suite: the batched block ring under the same hostile
/// host the network dataplane faces).
#[derive(Debug, Clone, Copy)]
pub struct BlkAttackReport {
    /// The attack class whose wire code seals the verdict (the block
    /// scenarios reuse the established codes — `SlotForgery` for
    /// response aliasing, `PayloadDoubleFetch` for mid-batch poison,
    /// `SpuriousCompletion` for rollback — so `ALL_ATTACKS` and every
    /// pinned matrix artifact stay unchanged).
    pub attack: AttackKind,
    /// Classification against the fail-closed contract.
    pub outcome: Outcome,
    /// The hostile read was refused with the right verdict and no
    /// falsified byte reached the caller.
    pub fail_closed: bool,
    /// Untouched data still reads back correctly afterwards (the blast
    /// radius is the attacked blocks, not the store).
    pub intact_elsewhere: bool,
    /// Verdict sealed into a verified audit chain.
    pub audit_ok: bool,
}

/// A single-lane encrypted block stack for the storage adversary suite:
/// [`cio_block::CryptStore`] over a batched in-slot ring pair over the
/// host's [`cio_block::RamDisk`] — the same layers `cio::kv` deploys,
/// minus the engine, so scenarios can aim at exact physical blocks.
fn blk_crypt_fixture() -> Result<
    (
        cio_mem::GuestMemory,
        cio_block::CryptStore<cio_block::transport::RingBlockStore>,
    ),
    CioError,
> {
    use cio_block::blockdev::BLOCK_SIZE;
    use cio_block::transport::{
        BlkProfile, CioBlkBackend, CioBlkFrontend, RingBlockStore, BLK_HDR,
    };
    use cio_mem::{GuestAddr, GuestMemory, PAGE_SIZE};
    use cio_sim::{Clock, CostModel, Meter};
    use cio_vring::cioring::{Consumer, DataMode, Producer, RingConfig};

    let profile = BlkProfile::batched(8);
    let mem = GuestMemory::new(600, Clock::new(), CostModel::default(), Meter::new());
    let cfg = RingConfig {
        slots: 16,
        slot_size: 16,
        mode: DataMode::SharedArea,
        mtu: (BLOCK_SIZE + BLK_HDR) as u32,
        area_size: 1 << 17,
        notify: profile.notify,
        ..RingConfig::default()
    };
    let req_ring = CioRing::new(cfg.clone(), GuestAddr(0), GuestAddr(16 * PAGE_SIZE as u64))?;
    let resp_ring = CioRing::new(
        cfg,
        GuestAddr(8 * PAGE_SIZE as u64),
        GuestAddr(64 * PAGE_SIZE as u64),
    )?;
    mem.share_range(GuestAddr(0), req_ring.ring_bytes())?;
    mem.share_range(GuestAddr(8 * PAGE_SIZE as u64), resp_ring.ring_bytes())?;
    mem.share_range(GuestAddr(16 * PAGE_SIZE as u64), req_ring.area_bytes())?;
    mem.share_range(GuestAddr(64 * PAGE_SIZE as u64), resp_ring.area_bytes())?;
    let front = CioBlkFrontend::with_profile(
        Producer::new(req_ring.clone(), mem.guest())?,
        Consumer::new(resp_ring.clone(), mem.guest())?,
        profile,
    );
    let back = CioBlkBackend::with_profile(
        Consumer::new(req_ring, mem.host())?,
        Producer::new(resp_ring, mem.host())?,
        cio_block::RamDisk::new(512),
        profile,
    );
    let ring = RingBlockStore::new(front, back);
    Ok((mem, cio_block::CryptStore::new(ring, [0x5C; 32])?))
}

fn blk_pattern(seed: usize, blocks: usize) -> Vec<u8> {
    use cio_block::blockdev::BLOCK_SIZE;
    (0..blocks * BLOCK_SIZE)
        .map(|j| ((seed * 131 + j * 7) % 251) as u8)
        .collect()
}

/// Seals a block-scenario verdict into a fresh tamper-evident audit chain
/// (the block fixture runs below the [`World`] layer, so it carries its
/// own recorder — same chain discipline, same verification).
fn seal_blk_verdict(attack: AttackKind, outcome: Outcome) -> bool {
    let flight = FlightRecorder::new(cio_sim::Clock::new(), 1);
    seal_verdict(&flight, attack, outcome)
}

/// Response-aliasing TOCTOU on the batched block ring (sealed under the
/// [`AttackKind::SlotForgery`] code): the host answers the request for
/// one block with the ciphertext it stored for *another* — a splice
/// attack on the response path, the storage twin of forging a slot's
/// offset to alias a different record. The AEAD binds LBA (AAD) and
/// generation (nonce) into every block, so the aliased ciphertext cannot
/// authenticate at its new address: the batched gather-open must refuse
/// the read, and blocks the alias never touched must keep reading back
/// byte-identical.
///
/// # Errors
///
/// Infrastructure failures only; attack effects are the *result*.
pub fn blk_response_alias() -> Result<BlkAttackReport, CioError> {
    use cio_block::blockdev::BLOCK_SIZE;
    use cio_block::BlockError;

    let (_mem, mut store) = blk_crypt_fixture()?;
    let run_a = blk_pattern(1, 16);
    let run_b = blk_pattern(2, 16);
    store.write_run(0, &run_a)?;
    store.write_run(16, &run_b)?;

    // The splice: physical block 3's ciphertext is served for block 19.
    let disk = store.inner_mut().backend_mut().disk_mut();
    let alias = disk.snapshot_block(3)?;
    disk.restore_block(19, &alias)?;

    let mut out = vec![0u8; 16 * BLOCK_SIZE];
    let verdict = store.read_run(16, &mut out);
    let fail_closed = verdict == Err(BlockError::IntegrityViolation)
        && !out
            .chunks_exact(BLOCK_SIZE)
            .zip(run_a.chunks_exact(BLOCK_SIZE))
            .any(|(got, aliased)| got == aliased);

    // The untouched run is unharmed.
    let mut intact = vec![0u8; 16 * BLOCK_SIZE];
    let intact_elsewhere = store.read_run(0, &mut intact).is_ok() && intact == run_a;

    let outcome = if fail_closed && intact_elsewhere {
        Outcome::Detected
    } else {
        Outcome::Undetected
    };
    let audit_ok = seal_blk_verdict(AttackKind::SlotForgery, outcome);
    Ok(BlkAttackReport {
        attack: AttackKind::SlotForgery,
        outcome,
        fail_closed,
        intact_elsewhere,
        audit_ok,
    })
}

/// Mid-batch poison on the block ring (sealed under the
/// [`AttackKind::PayloadDoubleFetch`] code): the host corrupts one
/// ciphertext block in the middle of a committed 16-block run before the
/// guest's batched gather-open. Amortizing one lock and one doorbell over
/// the run must not widen the blast radius of one hostile slot: blocks
/// ahead of the poison (each independently authenticated) are delivered,
/// the poisoned block fails the whole read closed, and not one byte past
/// the failure point reaches the caller — the tail is zeroed, and the
/// run reads clean again only after being rewritten.
///
/// # Errors
///
/// Infrastructure failures only; attack effects are the *result*.
pub fn blk_mid_batch_poison() -> Result<BlkAttackReport, CioError> {
    use cio_block::blockdev::BLOCK_SIZE;
    use cio_block::BlockError;

    const POISONED: usize = 7;
    let (_mem, mut store) = blk_crypt_fixture()?;
    let run = blk_pattern(3, 16);
    store.write_run(0, &run)?;

    store
        .inner_mut()
        .backend_mut()
        .disk_mut()
        .tamper(POISONED as u64, 1234, 0xA5)?;

    let mut out = vec![0u8; 16 * BLOCK_SIZE];
    let verdict = store.read_run(0, &mut out);
    let fail_closed = verdict == Err(BlockError::IntegrityViolation)
        && out[..POISONED * BLOCK_SIZE] == run[..POISONED * BLOCK_SIZE]
        && out[POISONED * BLOCK_SIZE..].iter().all(|&b| b == 0);

    // Fail closed *until rewritten*: a fresh seal of the run recovers it.
    let rewritten = blk_pattern(4, 16);
    store.write_run(0, &rewritten)?;
    let mut again = vec![0u8; 16 * BLOCK_SIZE];
    let intact_elsewhere = store.read_run(0, &mut again).is_ok() && again == rewritten;

    let outcome = if fail_closed && intact_elsewhere {
        Outcome::Detected
    } else {
        Outcome::Undetected
    };
    let audit_ok = seal_blk_verdict(AttackKind::PayloadDoubleFetch, outcome);
    Ok(BlkAttackReport {
        attack: AttackKind::PayloadDoubleFetch,
        outcome,
        fail_closed,
        intact_elsewhere,
        audit_ok,
    })
}

/// Rollback under batching (sealed under the
/// [`AttackKind::SpuriousCompletion`] code): the host snapshots a run's
/// complete generation-1 state — data blocks *and* the tag metadata
/// block — lets the guest overwrite it through the batched path, then
/// restores the stale snapshot wholesale. Every restored block is validly
/// sealed, just old: a freshness defense is the only thing that can catch
/// it. The crypt layer's in-TEE generation counters must classify the
/// read as [`cio_block::BlockError::Rollback`] (not a mere integrity
/// failure), and blocks outside the rolled-back run must stay writable
/// and readable.
///
/// # Errors
///
/// Infrastructure failures only; attack effects are the *result*.
pub fn blk_rollback_under_batching() -> Result<BlkAttackReport, CioError> {
    use cio_block::blockdev::{BlockStore, BLOCK_SIZE};
    use cio_block::BlockError;

    let (_mem, mut store) = blk_crypt_fixture()?;
    let gen1 = blk_pattern(5, 16);
    store.write_run(0, &gen1)?;

    // The host's rollback kit: the full generation-1 state of the run.
    let tag_block = store.blocks(); // tags for LBAs 0..256 live here
    let mut snapshots = Vec::with_capacity(17);
    {
        let disk = store.inner_mut().backend_mut().disk_mut();
        for lba in 0..16u64 {
            snapshots.push((lba, disk.snapshot_block(lba)?));
        }
        snapshots.push((tag_block, disk.snapshot_block(tag_block)?));
    }

    let gen2 = blk_pattern(6, 16);
    store.write_run(0, &gen2)?;

    {
        let disk = store.inner_mut().backend_mut().disk_mut();
        for (lba, snap) in &snapshots {
            disk.restore_block(*lba, snap)?;
        }
    }

    let mut out = vec![0u8; 16 * BLOCK_SIZE];
    let verdict = store.read_run(0, &mut out);
    // The stale-but-valid snapshot must classify as rollback, and the
    // gen-1 plaintext must not be served as current.
    let fail_closed = verdict == Err(BlockError::Rollback) && out != gen1;

    // Blocks outside the rolled-back run still work end to end.
    let fresh = blk_pattern(7, 16);
    store.write_run(32, &fresh)?;
    let mut again = vec![0u8; 16 * BLOCK_SIZE];
    let intact_elsewhere = store.read_run(32, &mut again).is_ok() && again == fresh;

    let outcome = if fail_closed && intact_elsewhere {
        Outcome::Detected
    } else {
        Outcome::Undetected
    };
    let audit_ok = seal_blk_verdict(AttackKind::SpuriousCompletion, outcome);
    Ok(BlkAttackReport {
        attack: AttackKind::SpuriousCompletion,
        outcome,
        fail_closed,
        intact_elsewhere,
        audit_ok,
    })
}

/// Runs the storage adversary suite: all three block-ring scenarios.
///
/// # Errors
///
/// Infrastructure failures only.
pub fn run_blk_suite() -> Result<Vec<BlkAttackReport>, CioError> {
    Ok(vec![
        blk_response_alias()?,
        blk_mid_batch_poison()?,
        blk_rollback_under_batching()?,
    ])
}

/// The live-race scenario for the thread-per-queue host: a hostile OS
/// thread hammers the last queue's RX ring — producer-index forgery and
/// slot offset/len scribbles — *concurrently* with the guest committing
/// batched records and the parallel host's worker threads servicing the
/// queues. Every serial attack in the matrix lands between steps; this
/// one lands mid-round, interleaved with worker execution at the memory
/// layer's actual lock granularity.
///
/// The safety argument is the paper's: the hardened consumer re-validates
/// indices and masks slot fields on every fetch, and all shared-memory
/// access goes through the striped [`cio_mem::GuestMemory`] locks, so a
/// racing writer can only produce the same hostile values a sequential
/// writer could — there is no interleaving that bypasses validation.
/// Returns the classified report plus how many mutation sweeps landed;
/// the workload-survival flag is probed on a flow steered *away* from
/// the attacked queue (the blast radius must stay per-queue).
///
/// # Errors
///
/// Only infrastructure failures; attack effects are the *result*.
pub fn parallel_hostile_mutation(threads: usize) -> Result<(AttackReport, u64), CioError> {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    const QUEUES: usize = 4;
    let opts = WorldOptions {
        queues: QUEUES,
        parallel: threads,
        batch: BatchPolicy::Fixed(8),
        ..attack_opts()
    };
    let mut world = World::new(BoundaryKind::L2CioRing, opts)?;
    // Enough flows that some steer to the attacked queue and some away.
    let conns: Vec<_> = (0..6)
        .map(|_| world.connect(ECHO_PORT))
        .collect::<Result<_, _>>()?;
    for &c in &conns {
        world.establish(c, 20_000)?;
        world.send(c, b"before attack")?;
        let warm = world.recv_exact(c, 13, 20_000)?;
        debug_assert_eq!(&warm, b"before attack");
    }

    let before = world.meter().snapshot();
    let attacked = QUEUES - 1;
    let (_, rx_ring) = world
        .anatomy()
        .cio_queues
        .last()
        .cloned()
        .expect("cio queues");
    let mem = world.guest_memory().clone();
    let stop = Arc::new(AtomicBool::new(false));
    let stop_flag = Arc::clone(&stop);
    let attacker = std::thread::spawn(move || {
        let host = mem.host();
        let mut sweeps = 0u64;
        while !stop_flag.load(Ordering::Relaxed) {
            // Forge the producer index, then scribble hostile offset/len
            // pairs over every slot — racing whichever worker owns this
            // queue through the striped memory locks.
            let _ = host.write(rx_ring.prod_idx_addr(), &1_000_000u32.to_le_bytes());
            for i in 0..rx_ring.config().slots {
                let slot = rx_ring.slot_addr(i);
                let _ = host.write(slot, &0xFFFF_FFF0u32.to_le_bytes());
                let _ = host.write(slot.add(4), &0xFFFF_FFFFu32.to_le_bytes());
            }
            sweeps += 1;
            std::thread::yield_now();
        }
        sweeps
    });
    // Keep the whole dataplane running while the attacker races it.
    let _ = world.run(200);
    stop.store(true, Ordering::Relaxed);
    let sweeps = attacker.join().expect("attacker thread");

    // Recovery window, then prove liveness on a flow the RSS hash steers
    // away from the attacked queue.
    let _ = world.run(50);
    let mut survived = false;
    if let Some(&probe) = conns
        .iter()
        .find(|&&c| world.conn_lane(c).is_some_and(|l| l != attacked))
    {
        if world.send(probe, b"after attack").is_ok() {
            if let Ok(got) = world.recv_exact(probe, 12, 40_000) {
                survived = got == b"after attack";
            }
        }
    }
    let delta = world.meter().snapshot().delta(&before);
    let outcome = if delta.violations_undetected > 0 {
        Outcome::Undetected
    } else if delta.violations_detected > 0 {
        Outcome::Detected
    } else {
        Outcome::Prevented
    };
    let audit_ok = seal_verdict(world.flight(), AttackKind::IndexJump, outcome);
    Ok((
        AttackReport {
            boundary: BoundaryKind::L2CioRing,
            attack: AttackKind::IndexJump,
            outcome,
            workload_survived: survived,
            audit_ok,
        },
        sweeps,
    ))
}

/// Hostile mutation applied to the consumer-published event-index word
/// by [`event_idx_hostile`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventIdxAttack {
    /// Freeze the word at its last legitimate value: the host stops
    /// reporting progress, so the producer's kicks are suppressed long
    /// after the consumer went idle. Liveness must come from the
    /// re-poll heartbeat — a missed-then-recovered wakeup, never a hang.
    Stuck,
    /// Jump the word far *behind* the producer's validated shadow: a
    /// wrapped distance outside the `[seen, next]` window, rejected
    /// fail-closed (kick anyway, count the violation).
    Backwards,
    /// Pin the word at `0xFFFF_FFFF`: the classic all-ones scribble,
    /// outside the window for any live ring position.
    MaxValue,
    /// Hammer the word from a hostile OS thread — max-value, backwards,
    /// and zero in rotation — while live parallel workers service the
    /// queues. Racing writers must produce only values a sequential
    /// writer could; no interleaving bypasses the window check.
    Racing,
}

impl std::fmt::Display for EventIdxAttack {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            EventIdxAttack::Stuck => "stuck",
            EventIdxAttack::Backwards => "backwards-jump",
            EventIdxAttack::MaxValue => "max-value",
            EventIdxAttack::Racing => "racing",
        };
        f.write_str(s)
    }
}

/// Report from one [`event_idx_hostile`] scenario.
#[derive(Debug, Clone, Copy)]
pub struct EventIdxHostileReport {
    /// The mutation applied.
    pub attack: EventIdxAttack,
    /// Classification against the violation oracle.
    pub outcome: Outcome,
    /// The echo workload still completed correctly afterwards (a
    /// hostile index may delay delivery by at most the re-poll
    /// heartbeat — never lose it).
    pub workload_survived: bool,
    /// Verdict sealed into the verified audit chain.
    pub audit_ok: bool,
    /// Fail-closed rejections of the hostile word during the scenario.
    pub violations_detected: u64,
    /// Kicks legitimately suppressed while the attack ran.
    pub suppressed_kicks: u64,
    /// Doorbells that woke a consumer with nothing to do.
    pub spurious_wakeups: u64,
}

/// The event-idx adversary suite (E23): the suppression machinery adds
/// exactly one host-writable word per ring — the consumer's published
/// progress — and this scenario family proves the §3.2 discipline holds
/// for it. The producer validates the word against its own monotone
/// shadow on every read (wrapped-window containment) and fails *toward*
/// notification: a hostile value can cause a spurious doorbell or a
/// wakeup delayed until the adaptive controller's re-poll heartbeat,
/// never a hang, livelock, or safety violation.
///
/// `Stuck` classifies `Prevented` (the frozen word stays inside the
/// valid window, so nothing needs detecting — the heartbeat restores
/// liveness); `Backwards` and `MaxValue` classify `Detected`
/// (`violations_detected` grows, the kick is rung anyway). `Racing` runs
/// the mutation from a hostile OS thread against a live thread-per-queue
/// host (2 workers x 4 queues) and must classify `Detected` with the
/// blast radius contained to delay, exactly like the serial arms.
///
/// # Errors
///
/// Only infrastructure failures; attack effects are the *result*.
pub fn event_idx_hostile(attack: EventIdxAttack) -> Result<EventIdxHostileReport, CioError> {
    use cio_vring::cioring::{NotifyMode, NotifyPolicy};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    const QUEUES: usize = 4;
    let racing = attack == EventIdxAttack::Racing;
    let opts = WorldOptions {
        queues: QUEUES,
        parallel: if racing { 2 } else { 0 },
        notify: NotifyMode::Doorbell,
        notify_policy: NotifyPolicy::Adaptive,
        batch: BatchPolicy::Fixed(8),
        ..attack_opts()
    };
    let mut world = World::new(BoundaryKind::L2CioRing, opts)?;
    let conns: Vec<_> = (0..6)
        .map(|_| world.connect(ECHO_PORT))
        .collect::<Result<_, _>>()?;
    for &c in &conns {
        world.establish(c, 20_000)?;
        world.send(c, b"before attack")?;
        let warm = world.recv_exact(c, 13, 20_000)?;
        debug_assert_eq!(&warm, b"before attack");
    }

    // Attack the queue a live flow actually publishes on, so the
    // producer-side validation is exercised every round.
    let lane = world.conn_lane(conns[0]).expect("victim is live");
    let (tx_ring, rx_ring) = world.anatomy().cio_queues[lane].clone();
    let targets = [tx_ring.event_idx_addr(), rx_ring.event_idx_addr()];
    let mem = world.guest_memory().clone();
    let before = world.meter().snapshot();

    if racing {
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let attacker = std::thread::spawn(move || {
            let host = mem.host();
            let hostile = [0xFFFF_FFFFu32, 0x8000_0000, 0];
            let mut i = 0usize;
            while !stop_flag.load(Ordering::Relaxed) {
                for &addr in &targets {
                    let _ = host.write(addr, &hostile[i % hostile.len()].to_le_bytes());
                    i += 1;
                }
                std::thread::yield_now();
            }
        });
        let _ = world.run(200);
        stop.store(true, Ordering::Relaxed);
        attacker.join().expect("attacker thread");
        // One deterministic parting scribble so the classification never
        // depends on which interleavings the OS happened to schedule.
        let host = world.guest_memory().host();
        for &addr in &targets {
            host.write(addr, &0xFFFF_FFFFu32.to_le_bytes())?;
        }
        let _ = world.run(50);
    } else {
        let host = world.guest_memory().host();
        // Freeze targets at whatever the words held after warm-up: the
        // consumer's organic re-arms are overwritten every step, so the
        // producer sees progress reporting stop dead.
        let mut frozen = [0u32; 2];
        for (f, &addr) in frozen.iter_mut().zip(&targets) {
            let mut b = [0u8; 4];
            host.read(addr, &mut b)?;
            *f = u32::from_le_bytes(b);
        }
        for _ in 0..100 {
            for (&addr, &init) in targets.iter().zip(&frozen) {
                let hostile = match attack {
                    EventIdxAttack::Stuck => init,
                    EventIdxAttack::Backwards => {
                        let mut b = [0u8; 4];
                        host.read(addr, &mut b)?;
                        u32::from_le_bytes(b).wrapping_sub(1_000)
                    }
                    EventIdxAttack::MaxValue => 0xFFFF_FFFF,
                    EventIdxAttack::Racing => unreachable!(),
                };
                host.write(addr, &hostile.to_le_bytes())?;
            }
            world.step()?;
        }
    }

    // Liveness probe on the attacked lane itself: delivery may be
    // delayed by the re-poll heartbeat, never lost.
    let mut survived = false;
    if world.send(conns[0], b"after attack").is_ok() {
        if let Ok(got) = world.recv_exact(conns[0], 12, 40_000) {
            survived = got == b"after attack";
        }
    }
    let delta = world.meter().snapshot().delta(&before);
    let outcome = if delta.violations_undetected > 0 {
        Outcome::Undetected
    } else if delta.violations_detected > 0 {
        Outcome::Detected
    } else {
        Outcome::Prevented
    };
    // Sealed under the notification-surface attack class: the event-idx
    // word is notification state, and extending `ALL_ATTACKS` would
    // re-pin every existing matrix artifact.
    let audit_ok = seal_verdict(world.flight(), AttackKind::NotificationStorm, outcome);
    Ok(EventIdxHostileReport {
        attack,
        outcome,
        workload_survived: survived,
        audit_ok,
        violations_detected: delta.violations_detected,
        suppressed_kicks: delta.suppressed_kicks,
        spurious_wakeups: delta.spurious_wakeups,
    })
}

/// Report from the [`audit_chain_tamper`] micro-scenario.
#[derive(Debug, Clone, Copy)]
pub struct AuditTamperReport {
    /// Records in the audit chain when it was tampered with.
    pub chain_len: usize,
    /// Whether the untouched chain verified against its head.
    pub clean_ok: bool,
    /// The link whose payload was mutated.
    pub tampered_link: usize,
    /// Whether the verifier flagged exactly that link (`BadDigest`).
    pub flagged_exact: bool,
}

/// Chain-tamper micro-scenario: runs the mid-handshake record poisoning
/// with the flight recorder armed — so the chain carries the organic
/// security events (handshake failure, session quarantine) plus the
/// sealed verdict — then mutates a single audit record in a copy of the
/// chain and checks the verifier pinpoints exactly that link — i.e. a
/// forensic log an attacker edited after the fact cannot pass for the
/// one the dataplane wrote.
///
/// # Errors
///
/// Infrastructure failures only.
pub fn audit_chain_tamper() -> Result<AuditTamperReport, CioError> {
    let mut world = World::new(BoundaryKind::L2CioRing, attack_opts())?;
    let victim = world.connect(ECHO_PORT)?;
    let poisoned = step_until_poisoned(&mut world, 0, ECHO_PORT, 3_000)?;
    debug_assert!(poisoned, "no handshake frame appeared to poison");
    let est = world.establish(victim, 3_000);
    debug_assert!(est.is_err(), "poisoned handshake completed");
    seal_verdict(
        world.flight(),
        AttackKind::PayloadDoubleFetch,
        Outcome::Detected,
    );

    let head = world.flight().audit_head();
    let mut records = world.flight().audit_records();
    let clean_ok = verify_audit_chain(&records, &head).is_ok();
    let tampered_link = records.len() / 2;
    records[tampered_link].a ^= 1;
    let flagged_exact = matches!(
        verify_audit_chain(&records, &head),
        Err(AuditViolation::BadDigest { link }) if link == tampered_link as u64
    );
    Ok(AuditTamperReport {
        chain_len: records.len(),
        clean_ok,
        tampered_link,
        flagged_exact,
    })
}

/// Scans a guest-bound RX ring for a pending (produced, not yet consumed)
/// TCP data frame from `from_port` and flips one byte of its TCP payload,
/// patching the TCP checksum afterwards. The patch is the point: a
/// checksum-valid frame sails through the in-TEE netstack, so the
/// corruption lands where a hostile host wants it — past the transport,
/// on the cTLS record layer of one specific session. Returns `true` once
/// a frame was poisoned.
///
/// The inter-step window this exploits is real and deterministic: the
/// backend produces RX records during step `N`, the guest consumes them
/// at the start of step `N+1`, and the host owns the shared area the
/// whole time.
fn poison_pending_rx_record(
    world: &World,
    ring: &CioRing,
    from_port: u16,
) -> Result<bool, CioError> {
    use cio_netstack::wire::{
        transport_checksum, IpProto, Ipv4Addr, ETH_HDR_LEN, IPV4_HDR_LEN, TCP_HDR_LEN,
    };

    let host = world.guest_memory().host();
    let slots = ring.config().slots;
    let prod = host.read_u32(ring.prod_idx_addr())?;
    let cons = host.read_u32(ring.cons_idx_addr())?;
    let pending = prod.wrapping_sub(cons).min(slots);
    for i in 0..pending {
        let masked = cons.wrapping_add(i) & (slots - 1);
        let slot = ring.slot_addr(masked);
        let offset = host.read_u32(slot)?;
        let len = host.read_u32(slot.add(4))? as usize;
        if len < ETH_HDR_LEN + IPV4_HDR_LEN + TCP_HDR_LEN || len > ring.config().mtu as usize {
            continue;
        }
        let frame_addr = ring.payload_addr(0).add(u64::from(offset));
        let mut frame = vec![0u8; len];
        host.read(frame_addr, &mut frame)?;
        // Ethernet II / IPv4 / TCP, no IP options (the stack's fixed wire
        // format) — anything else is not the record we are hunting.
        if frame[12..14] != [0x08, 0x00] || frame[ETH_HDR_LEN] != 0x45 {
            continue;
        }
        if frame[ETH_HDR_LEN + 9] != 6 {
            continue;
        }
        let total_len = usize::from(u16::from_be_bytes([
            frame[ETH_HDR_LEN + 2],
            frame[ETH_HDR_LEN + 3],
        ]));
        if total_len < IPV4_HDR_LEN + TCP_HDR_LEN || ETH_HDR_LEN + total_len > len {
            continue;
        }
        let src = Ipv4Addr([
            frame[ETH_HDR_LEN + 12],
            frame[ETH_HDR_LEN + 13],
            frame[ETH_HDR_LEN + 14],
            frame[ETH_HDR_LEN + 15],
        ]);
        let dst = Ipv4Addr([
            frame[ETH_HDR_LEN + 16],
            frame[ETH_HDR_LEN + 17],
            frame[ETH_HDR_LEN + 18],
            frame[ETH_HDR_LEN + 19],
        ]);
        let seg_start = ETH_HDR_LEN + IPV4_HDR_LEN;
        let segment = &mut frame[seg_start..ETH_HDR_LEN + total_len];
        let src_port = u16::from_be_bytes([segment[0], segment[1]]);
        let data_off = usize::from(segment[12] >> 4) * 4;
        if src_port != from_port || data_off < TCP_HDR_LEN || data_off >= segment.len() {
            continue;
        }
        // Flip the last payload byte (inside the AEAD tag or ciphertext —
        // either way the record layer must reject it), then forge a valid
        // checksum so the transport does not.
        let last = segment.len() - 1;
        segment[last] ^= 0xA5;
        segment[16] = 0;
        segment[17] = 0;
        let csum = transport_checksum(src, dst, IpProto::Tcp, segment);
        segment[16..18].copy_from_slice(&csum.to_be_bytes());
        host.write(frame_addr, &frame)?;
        return Ok(true);
    }
    Ok(false)
}

/// Steps the world until [`poison_pending_rx_record`] lands on the given
/// queue's RX ring (or the step budget runs out). Returns whether a
/// record was poisoned.
fn step_until_poisoned(
    world: &mut World,
    queue: usize,
    from_port: u16,
    max_steps: usize,
) -> Result<bool, CioError> {
    let (_, rx_ring) = world.anatomy().cio_queues[queue].clone();
    for _ in 0..max_steps {
        world.step()?;
        if poison_pending_rx_record(world, &rx_ring, from_port)? {
            return Ok(true);
        }
    }
    Ok(false)
}

/// Outcome of one session-poisoning scenario (the session-scale additions
/// to the adversary suite).
#[derive(Debug, Clone, Copy)]
pub struct SessionAttackReport {
    /// Classification: `Detected` when the hostile record was rejected at
    /// the record layer and the victim failed closed; `Undetected` if
    /// corrupted plaintext reached the application or the blast radius
    /// spread beyond the victim.
    pub outcome: Outcome,
    /// The victim's handle answers [`CioError::Session`] afterwards (the
    /// slot was quarantined, never left half-open).
    pub victim_failed_closed: bool,
    /// A session on the *same shard* still echoes correctly afterwards.
    pub neighbor_survived: bool,
    /// `session_failures` metered by the quarantine.
    pub session_failures: u64,
}

/// Mid-handshake poisoning: the hostile host corrupts the ServerHello
/// while it sits in the RX ring during connection establishment. The
/// half-open session must fail closed — [`World::establish`] answers
/// [`CioError::Session`], the slot is reclaimed — and the world must
/// remain fully usable for subsequent sessions.
///
/// # Errors
///
/// Infrastructure failures only.
pub fn session_mid_handshake() -> Result<SessionAttackReport, CioError> {
    let mut world = World::new(BoundaryKind::L2CioRing, attack_opts())?;
    let before = world.meter().snapshot();
    let victim = world.connect(ECHO_PORT)?;
    let poisoned = step_until_poisoned(&mut world, 0, ECHO_PORT, 3_000)?;
    debug_assert!(poisoned, "no ServerHello frame appeared to poison");

    let est = world.establish(victim, 3_000);
    let victim_failed_closed = matches!(est, Err(CioError::Session(_)))
        && matches!(world.send(victim, b"probe"), Err(CioError::Session(_)));

    // The failure is contained to the one session: a fresh handshake on
    // the same world (same rings, same shard) completes and echoes.
    let fresh = world.connect(ECHO_PORT)?;
    world.establish(fresh, 3_000)?;
    world.send(fresh, b"after attack")?;
    let neighbor_survived = world
        .recv_exact(fresh, 12, 4_000)
        .is_ok_and(|got| got == b"after attack");

    let delta = world.meter().snapshot().delta(&before);
    let outcome = classify_session_poison(
        &delta,
        poisoned && victim_failed_closed && neighbor_survived,
    );
    Ok(SessionAttackReport {
        outcome,
        victim_failed_closed,
        neighbor_survived,
        session_failures: delta.session_failures,
    })
}

/// Mid-rekey poisoning: with an aggressively short key-rotation interval,
/// the hostile host corrupts the record that crosses an epoch boundary.
/// Epoch bookkeeping must not soften fail-closed behavior: the victim is
/// quarantined exactly as in steady state, and a fresh session keeps
/// rotating keys on the same world afterwards.
///
/// # Errors
///
/// Infrastructure failures only.
pub fn session_mid_rekey() -> Result<SessionAttackReport, CioError> {
    const REKEY_EVERY: u64 = 4;
    let opts = WorldOptions {
        rekey_interval: Some(REKEY_EVERY),
        ..attack_opts()
    };
    let mut world = World::new(BoundaryKind::L2CioRing, opts)?;
    let victim = world.connect(ECHO_PORT)?;
    world.establish(victim, 3_000)?;

    // Drive the victim across at least one epoch boundary first: the
    // attack must land on a session whose channels have already rotated.
    for i in 0..REKEY_EVERY + 1 {
        let msg = format!("rekey round {i}");
        world.send(victim, msg.as_bytes())?;
        let got = world.recv_exact(victim, msg.len(), 4_000)?;
        debug_assert_eq!(got, msg.as_bytes());
    }
    let epoch = world.session_epoch(victim).unwrap_or(0);
    debug_assert!(epoch >= 1, "victim never rotated (epoch {epoch})");

    let before = world.meter().snapshot();
    // Next echo crosses the boundary again; poison its response in the
    // ring, mid-epoch-switch.
    world.send(victim, b"poisoned round")?;
    let poisoned = step_until_poisoned(&mut world, 0, ECHO_PORT, 3_000)?;
    debug_assert!(poisoned, "no rekey-window frame appeared to poison");
    let _ = world.run(200);

    let victim_failed_closed = matches!(world.send(victim, b"probe"), Err(CioError::Session(_)));

    // A fresh session on the same world still rotates keys and echoes.
    let fresh = world.connect(ECHO_PORT)?;
    world.establish(fresh, 3_000)?;
    let mut fresh_ok = true;
    for i in 0..REKEY_EVERY + 1 {
        let msg = format!("fresh round {i}");
        world.send(fresh, msg.as_bytes())?;
        fresh_ok &= world
            .recv_exact(fresh, msg.len(), 4_000)
            .is_ok_and(|got| got == msg.as_bytes());
    }
    let neighbor_survived = fresh_ok && world.session_epoch(fresh).unwrap_or(0) >= 1;

    let delta = world.meter().snapshot().delta(&before);
    let outcome = classify_session_poison(
        &delta,
        poisoned && victim_failed_closed && neighbor_survived,
    );
    Ok(SessionAttackReport {
        outcome,
        victim_failed_closed,
        neighbor_survived,
        session_failures: delta.session_failures,
    })
}

/// Steady-state churn poisoning on a multiqueue world: many live
/// sessions, one victim's echo response corrupted in its shard's RX ring.
/// Exactly one session must die (fail closed, metered), and the same
/// shard's other sessions must keep echoing — per-session blast radius,
/// not per-shard, not per-world.
///
/// # Errors
///
/// Infrastructure failures only.
pub fn session_churn_poison() -> Result<SessionAttackReport, CioError> {
    const QUEUES: usize = 4;
    let opts = WorldOptions {
        queues: QUEUES,
        ..attack_opts()
    };
    let mut world = World::new(BoundaryKind::L2CioRing, opts)?;
    // Open sessions until some shard holds two (deterministic RSS makes
    // this a fixed, small number).
    let mut sessions: Vec<SessionId> = Vec::new();
    let (mut victim, mut neighbor) = (None, None);
    for _ in 0..16 {
        let c = world.connect(ECHO_PORT)?;
        world.establish(c, 20_000)?;
        if let Some(&twin) = sessions
            .iter()
            .find(|&&s| world.conn_lane(s) == world.conn_lane(c))
        {
            victim = Some(c);
            neighbor = Some(twin);
            break;
        }
        sessions.push(c);
    }
    let victim = victim.expect("no shard collision in 16 sessions");
    let neighbor = neighbor.expect("victim implies neighbor");
    let lane = world.conn_lane(victim).expect("victim is live");

    // Warm both flows.
    for &c in &[victim, neighbor] {
        world.send(c, b"before attack")?;
        let warm = world.recv_exact(c, 13, 20_000)?;
        debug_assert_eq!(&warm, b"before attack");
    }

    let before = world.meter().snapshot();
    // Only the victim has traffic in flight; poison its echo response on
    // the shard's RX ring.
    world.send(victim, b"poison target")?;
    let poisoned = step_until_poisoned(&mut world, lane, ECHO_PORT, 20_000)?;
    debug_assert!(poisoned, "no victim frame appeared to poison");
    let _ = world.run(200);

    let victim_failed_closed = matches!(world.send(victim, b"probe"), Err(CioError::Session(_)));
    let mut neighbor_survived = false;
    if world.send(neighbor, b"after attack").is_ok() {
        if let Ok(got) = world.recv_exact(neighbor, 12, 40_000) {
            neighbor_survived = got == b"after attack";
        }
    }

    let delta = world.meter().snapshot().delta(&before);
    let contained =
        poisoned && victim_failed_closed && neighbor_survived && delta.session_failures == 1;
    let outcome = classify_session_poison(&delta, contained);
    Ok(SessionAttackReport {
        outcome,
        victim_failed_closed,
        neighbor_survived,
        session_failures: delta.session_failures,
    })
}

/// Shared classification for the session-poisoning scenarios: the oracle
/// must show no undetected violations, and containment (victim failed
/// closed, neighbors healthy) upgrades the verdict to `Detected` — the
/// record layer caught the corruption and the session layer contained it.
fn classify_session_poison(delta: &cio_sim::MeterSnapshot, contained: bool) -> Outcome {
    if delta.violations_undetected > 0 || !contained {
        Outcome::Undetected
    } else {
        Outcome::Detected
    }
}

/// The NetVSC offset-forgery micro-scenario (the Figure 3 driver family's
/// signature attack): the host aims a receive descriptor at private guest
/// memory. Returns `(unhardened, hardened)` outcomes.
///
/// # Errors
///
/// Infrastructure failures only.
pub fn netvsc_offset_forgery() -> Result<(Outcome, Outcome), CioError> {
    use cio_mem::{GuestAddr, GuestMemory, PAGE_SIZE};
    use cio_sim::{Clock, CostModel, Meter};
    use cio_vring::netvsc::netvsc_pair;

    let run = |hardened: bool| -> Result<Outcome, CioError> {
        let mem = GuestMemory::new(256, Clock::new(), CostModel::default(), Meter::new());
        mem.share_range(GuestAddr(0), 32 * PAGE_SIZE)?;
        let recv_buf = GuestAddr(64 * PAGE_SIZE as u64);
        let recv_len = 16 * PAGE_SIZE as u32;
        mem.share_range(recv_buf, recv_len as usize)?;
        let secret_addr = GuestAddr(128 * PAGE_SIZE as u64);
        mem.guest().write(secret_addr, b"SEALING-KEY")?;

        let (mut guest, mut host) =
            netvsc_pair(&mem, GuestAddr(0), recv_buf, recv_len, 1514, hardened)?;
        let offset = (secret_addr.0 - recv_buf.0) as u32;
        host.forge_descriptor(offset, 11)?;

        Ok(match guest.recv() {
            Ok(Some(data)) if data == b"SEALING-KEY" => Outcome::Undetected,
            Ok(_) => Outcome::Prevented,
            Err(cio_vring::RingError::HostViolation(_)) => Outcome::Detected,
            Err(e) => return Err(e.into()),
        })
    };
    Ok((run(false)?, run(true)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::ALL_BOUNDARIES;

    #[test]
    fn unhardened_virtio_bleeds_undetected_violations() {
        for attack in [
            AttackKind::CompletionIdOob,
            AttackKind::CompletionLenOverrun,
            AttackKind::SpuriousCompletion,
            AttackKind::ConfigDoubleFetch,
        ] {
            let r = run_scenario(BoundaryKind::L2VirtioUnhardened, attack).unwrap();
            assert_eq!(
                r.outcome,
                Outcome::Undetected,
                "unhardened vs {attack}: {:?}",
                r
            );
        }
    }

    #[test]
    fn hardened_virtio_detects_completion_attacks() {
        for attack in [
            AttackKind::CompletionIdOob,
            AttackKind::CompletionLenOverrun,
            AttackKind::SpuriousCompletion,
        ] {
            let r = run_scenario(BoundaryKind::L2VirtioHardened, attack).unwrap();
            assert_eq!(r.outcome, Outcome::Detected, "hardened vs {attack}: {r:?}");
        }
    }

    #[test]
    fn hardened_virtio_immune_to_config_mutation() {
        let r = run_scenario(
            BoundaryKind::L2VirtioHardened,
            AttackKind::ConfigDoubleFetch,
        )
        .unwrap();
        // Cached config: the mutation has no effect at all.
        assert_eq!(r.outcome, Outcome::Prevented, "{r:?}");
        assert!(r.workload_survived);
    }

    #[test]
    fn cio_ring_has_no_virtio_surfaces() {
        for attack in [
            AttackKind::CompletionIdOob,
            AttackKind::SpuriousCompletion,
            AttackKind::DescChainCorruption,
            AttackKind::ConfigDoubleFetch,
        ] {
            let r = run_scenario(BoundaryKind::DualBoundary, attack).unwrap();
            assert_eq!(r.outcome, Outcome::NoSurface, "{attack}: {r:?}");
        }
    }

    #[test]
    fn cio_ring_detects_index_jump() {
        for b in [
            BoundaryKind::L2CioRing,
            BoundaryKind::DualBoundary,
            BoundaryKind::Tunneled,
        ] {
            let r = run_scenario(b, AttackKind::IndexJump).unwrap();
            assert_eq!(r.outcome, Outcome::Detected, "{b}: {r:?}");
        }
    }

    #[test]
    fn cio_ring_contains_slot_forgery() {
        let r = run_scenario(BoundaryKind::DualBoundary, AttackKind::SlotForgery).unwrap();
        // Masked and clamped: garbage in, bounded garbage out, and the
        // oracle must show zero undetected violations.
        assert_ne!(r.outcome, Outcome::Undetected, "{r:?}");
    }

    #[test]
    fn virtio_used_index_jump_is_undetected_unhardened() {
        let r = run_scenario(BoundaryKind::L2VirtioUnhardened, AttackKind::IndexJump).unwrap();
        assert_eq!(r.outcome, Outcome::Undetected, "{r:?}");
    }

    #[test]
    fn netvsc_leak_is_the_figure3_story() {
        let (unhardened, hardened) = netvsc_offset_forgery().unwrap();
        assert_eq!(unhardened, Outcome::Undetected, "private memory leaks");
        assert_eq!(hardened, Outcome::Detected, "the hardening commit works");
    }

    #[test]
    fn payload_toctou_comparison() {
        let (unhardened, copy, revoke) = payload_toctou().unwrap();
        assert_eq!(unhardened, Outcome::Undetected);
        assert_eq!(copy, Outcome::Prevented);
        assert_eq!(revoke, Outcome::Prevented);
    }

    #[test]
    fn multiqueue_preserves_every_defense() {
        // The §3.2 defenses are per-queue state machines; attacking the
        // last of 4 queues must classify exactly like the single-queue
        // matrix does.
        let designs = [BoundaryKind::L2CioRing, BoundaryKind::DualBoundary];
        let reports = run_matrix_with(&designs, 4).unwrap();
        assert_eq!(reports.len(), designs.len() * ALL_ATTACKS.len());
        for r in &reports {
            assert_ne!(
                r.outcome,
                Outcome::Undetected,
                "4-queue {} fell to {}",
                r.boundary,
                r.attack
            );
            if r.attack == AttackKind::IndexJump {
                assert_eq!(
                    r.outcome,
                    Outcome::Detected,
                    "index forgery on the last queue must still be caught ({})",
                    r.boundary
                );
            }
        }
    }

    #[test]
    fn mid_handshake_poison_fails_closed() {
        let r = session_mid_handshake().unwrap();
        assert_eq!(r.outcome, Outcome::Detected, "{r:?}");
        assert!(r.victim_failed_closed, "{r:?}");
        assert!(r.neighbor_survived, "{r:?}");
        assert!(r.session_failures >= 1, "{r:?}");
    }

    #[test]
    fn mid_rekey_poison_fails_closed() {
        let r = session_mid_rekey().unwrap();
        assert_eq!(r.outcome, Outcome::Detected, "{r:?}");
        assert!(r.victim_failed_closed, "{r:?}");
        assert!(r.neighbor_survived, "{r:?}");
    }

    #[test]
    fn churn_poison_kills_exactly_one_session() {
        let r = session_churn_poison().unwrap();
        assert_eq!(r.outcome, Outcome::Detected, "{r:?}");
        assert!(r.victim_failed_closed, "{r:?}");
        assert!(r.neighbor_survived, "{r:?}");
        assert_eq!(r.session_failures, 1, "{r:?}");
    }

    #[test]
    fn full_matrix_runs_and_safe_designs_have_no_undetected() {
        let reports = run_matrix(&ALL_BOUNDARIES).unwrap();
        assert_eq!(reports.len(), ALL_BOUNDARIES.len() * ALL_ATTACKS.len());
        for r in &reports {
            let safe = matches!(
                r.boundary,
                BoundaryKind::L2CioRing
                    | BoundaryKind::DualBoundary
                    | BoundaryKind::Tunneled
                    | BoundaryKind::L5Host
                    | BoundaryKind::Dda
            );
            if safe {
                assert_ne!(
                    r.outcome,
                    Outcome::Undetected,
                    "safe design {} fell to {}",
                    r.boundary,
                    r.attack
                );
            }
        }
        // And the unhardened baseline must show at least 4 undetected.
        let bled = reports
            .iter()
            .filter(|r| {
                r.boundary == BoundaryKind::L2VirtioUnhardened && r.outcome == Outcome::Undetected
            })
            .count();
        assert!(bled >= 4, "unhardened undetected count = {bled}");
    }

    #[test]
    fn every_verdict_lands_in_the_audit_chain() {
        let reports = run_matrix(&[BoundaryKind::L2CioRing]).unwrap();
        for r in &reports {
            assert!(
                r.audit_ok,
                "{} vs {}: verdict missing from verified audit chain",
                r.boundary, r.attack
            );
        }
    }

    #[test]
    fn event_idx_stuck_is_prevented_and_recovers() {
        let r = event_idx_hostile(EventIdxAttack::Stuck).unwrap();
        // The frozen word stays inside the valid window: nothing to
        // detect, and the re-poll heartbeat keeps delivery alive — a
        // missed-then-recovered wakeup, never a hang.
        assert_eq!(r.outcome, Outcome::Prevented, "{r:?}");
        assert!(r.workload_survived, "{r:?}");
        assert!(r.audit_ok, "{r:?}");
    }

    #[test]
    fn event_idx_backwards_jump_is_detected() {
        let r = event_idx_hostile(EventIdxAttack::Backwards).unwrap();
        assert_eq!(r.outcome, Outcome::Detected, "{r:?}");
        assert!(r.workload_survived, "{r:?}");
        assert!(r.audit_ok, "{r:?}");
        assert!(r.violations_detected > 0, "{r:?}");
    }

    #[test]
    fn event_idx_max_value_is_detected() {
        let r = event_idx_hostile(EventIdxAttack::MaxValue).unwrap();
        assert_eq!(r.outcome, Outcome::Detected, "{r:?}");
        assert!(r.workload_survived, "{r:?}");
        assert!(r.audit_ok, "{r:?}");
        assert!(r.violations_detected > 0, "{r:?}");
    }

    #[test]
    fn event_idx_racing_under_parallel_workers_is_detected() {
        let r = event_idx_hostile(EventIdxAttack::Racing).unwrap();
        assert_eq!(r.outcome, Outcome::Detected, "{r:?}");
        assert!(r.workload_survived, "{r:?}");
        assert!(r.audit_ok, "{r:?}");
    }

    #[test]
    fn tampered_audit_chain_is_pinpointed() {
        let t = audit_chain_tamper().unwrap();
        assert!(t.chain_len >= 1, "{t:?}");
        assert!(t.clean_ok, "{t:?}");
        assert!(t.flagged_exact, "{t:?}");
    }

    #[test]
    fn blk_response_alias_is_detected() {
        let r = blk_response_alias().unwrap();
        assert_eq!(r.attack, AttackKind::SlotForgery);
        assert_eq!(r.outcome, Outcome::Detected, "{r:?}");
        assert!(r.fail_closed, "{r:?}");
        assert!(r.intact_elsewhere, "{r:?}");
        assert!(r.audit_ok, "{r:?}");
    }

    #[test]
    fn blk_mid_batch_poison_is_detected() {
        let r = blk_mid_batch_poison().unwrap();
        assert_eq!(r.attack, AttackKind::PayloadDoubleFetch);
        assert_eq!(r.outcome, Outcome::Detected, "{r:?}");
        assert!(r.fail_closed, "{r:?}");
        assert!(r.intact_elsewhere, "{r:?}");
        assert!(r.audit_ok, "{r:?}");
    }

    #[test]
    fn blk_rollback_under_batching_is_detected() {
        let r = blk_rollback_under_batching().unwrap();
        assert_eq!(r.attack, AttackKind::SpuriousCompletion);
        assert_eq!(r.outcome, Outcome::Detected, "{r:?}");
        assert!(r.fail_closed, "{r:?}");
        assert!(r.intact_elsewhere, "{r:?}");
        assert!(r.audit_ok, "{r:?}");
    }

    #[test]
    fn blk_suite_all_detected() {
        for r in run_blk_suite().unwrap() {
            assert_eq!(r.outcome, Outcome::Detected, "{r:?}");
        }
    }
}
