//! Adapters that present each guest-side transport as a
//! [`cio_netstack::NetDevice`], so the same TCP/IP stack runs over every
//! boundary design.
//!
//! The accounting convention, applied uniformly so designs are comparable:
//! the unavoidable materialization of a frame as guest bytes is *not*
//! metered (every design does it); what IS metered is each design's
//! distinctive data movement — bounce copies in the hardened retrofit, the
//! early first-class copy or the page revocation in the cio-ring, AEAD
//! passes on the tunneled/DDA paths.

use crate::CioError;
use cio_mem::{CopyPolicy, GuestAddr, GuestMemory, GuestView};
use cio_netstack::{MacAddr, NetDevice, NetError};
use cio_sim::{Clock, Cycles};
use cio_tee::dda::IdeChannel;
use cio_vring::cioring::{BatchPolicy, BufPool, Consumer, Producer, RevokedPayload, MAX_BATCH};
use cio_vring::hardened::HardenedDriver;
use cio_vring::virtqueue::{ConfigSpace, DescSeg, Driver};
use std::collections::VecDeque;

/// How the guest takes delivery of received payloads on the cio-ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvMode {
    /// Early copy into private memory (copy-as-first-class).
    Copy,
    /// Un-share the payload pages and process in place (§3.2 revocation).
    Revoke,
}

/// How the guest submits transmit payloads on the cio-ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendMode {
    /// Explicit early copy into the interface.
    Copy,
    /// Zero-copy placement (valid where double fetch is impossible by
    /// layout).
    ZeroCopy,
}

/// One queue's guest-side ring pair, plus the frames a batched receive
/// pass drained ahead of the caller.
struct GuestQueue {
    tx: Producer<GuestView>,
    rx: Consumer<GuestView>,
    rx_pending: VecDeque<Vec<u8>>,
}

/// The cio-ring as a (multi-queue) network device.
///
/// Transmit steers each frame to a queue with the symmetric RSS hash
/// ([`cio_netstack::rss`]); the host backend uses the same hash for the
/// return direction, so a flow stays on one queue end to end without any
/// negotiation. Receive round-robins across queues, or drains a single
/// queue when a scheduler pins one via
/// [`select_rx_queue`](NetDevice::select_rx_queue).
pub struct CioRingDevice {
    queues: Vec<GuestQueue>,
    mask: u32,
    active_rx: Option<usize>,
    rx_cursor: usize,
    mac: MacAddr,
    mtu: usize,
    send_mode: SendMode,
    recv_mode: RecvMode,
    /// Record-batching discipline for receive draining. Serial (default)
    /// routes through the historical per-record consume paths; non-serial
    /// policies drain runs of slots with one shared-index read, one
    /// memory-lock acquisition, and one consumer-index write per run —
    /// the guest-side mirror of the host backend's batched servicing.
    batch: BatchPolicy,
    mem: GuestMemory,
}

impl CioRingDevice {
    /// Wraps one ring pair per queue. The MTU and MAC come from the fixed
    /// ring config (zero-negotiation: there is no other source); the queue
    /// count must be a non-zero power of two so steering is a masked
    /// index.
    ///
    /// # Errors
    ///
    /// [`CioError::Fatal`] for a bad queue count or a revocation-mode pair
    /// without page-aligned rings — misconfiguration never becomes a
    /// runtime error path.
    pub fn new(
        queues: Vec<(Producer<GuestView>, Consumer<GuestView>)>,
        mem: GuestMemory,
        send_mode: SendMode,
        recv_mode: RecvMode,
    ) -> Result<Self, CioError> {
        if queues.is_empty() || !queues.len().is_power_of_two() {
            return Err(CioError::Fatal(
                "cio-ring device needs a power-of-two queue count",
            ));
        }
        if recv_mode == RecvMode::Revoke
            && queues
                .iter()
                .any(|(_, rx)| !rx.ring().config().page_aligned_payloads)
        {
            return Err(CioError::Fatal(
                "revocation receive needs page-aligned rings",
            ));
        }
        let cfg = queues[0].0.ring().config();
        let mask = queues.len() as u32 - 1;
        Ok(CioRingDevice {
            mac: MacAddr(cfg.mac),
            mtu: cfg.mtu as usize - cio_netstack::wire::ETH_HDR_LEN,
            queues: queues
                .into_iter()
                .map(|(tx, rx)| GuestQueue {
                    tx,
                    rx,
                    rx_pending: VecDeque::new(),
                })
                .collect(),
            mask,
            active_rx: None,
            rx_cursor: 0,
            send_mode,
            recv_mode,
            batch: BatchPolicy::default(),
            mem,
        })
    }

    /// Sets the record-batching discipline for receive draining. Only the
    /// copy receive mode batches (revocation is inherently per-slot: each
    /// payload's pages are un-shared and handed out individually).
    pub fn set_batch_policy(&mut self, batch: BatchPolicy) {
        self.batch = batch;
    }

    /// Single-queue convenience constructor.
    ///
    /// # Errors
    ///
    /// As [`CioRingDevice::new`].
    pub fn single(
        tx: Producer<GuestView>,
        rx: Consumer<GuestView>,
        mem: GuestMemory,
        send_mode: SendMode,
        recv_mode: RecvMode,
    ) -> Result<Self, CioError> {
        CioRingDevice::new(vec![(tx, rx)], mem, send_mode, recv_mode)
    }

    fn recv_from(&mut self, q: usize) -> Option<Vec<u8>> {
        let queue = &mut self.queues[q];
        match self.recv_mode {
            RecvMode::Copy if !self.batch.is_serial() => {
                // Batched drain: one pass pulls a run of frames under a
                // single lock and a single consumer-index write, then the
                // caller pops them one at a time. Each frame still pays
                // the same metered copy as the serial `consume` path.
                if let Some(frame) = queue.rx_pending.pop_front() {
                    return Some(frame);
                }
                let want = self.batch.max_batch().min(MAX_BATCH);
                let mut bufs: Vec<Vec<u8>> = vec![Vec::new(); want];
                let n = queue.rx.consume_batch_into(&mut bufs).ok()?;
                for buf in bufs.drain(..n) {
                    queue.rx_pending.push_back(buf);
                }
                queue.rx_pending.pop_front()
            }
            RecvMode::Copy => queue.rx.consume().ok().flatten(),
            RecvMode::Revoke => {
                let payload: RevokedPayload = queue.rx.consume_revoking().ok().flatten()?;
                // In-place processing: materialize without a metered copy,
                // then hand the pages back to the shared pool.
                let mut buf = vec![0u8; payload.len as usize];
                let view = self.mem.guest();
                view.read(payload.addr, &mut buf).ok()?;
                queue.rx.release_revoked(payload).ok()?;
                Some(buf)
            }
        }
    }
}

impl NetDevice for CioRingDevice {
    fn transmit(&mut self, frame: &[u8]) -> Result<(), NetError> {
        let q = cio_netstack::rss::steer(frame, self.mask);
        let queue = &mut self.queues[q];
        let r = match self.send_mode {
            SendMode::Copy => queue.tx.produce(frame),
            SendMode::ZeroCopy => queue.tx.produce_zero_copy(frame),
        };
        match r {
            Ok(()) => {
                queue.tx.kick(); // no-op in polling mode
                Ok(())
            }
            Err(cio_vring::RingError::Full) => Err(NetError::DeviceFull),
            Err(cio_vring::RingError::TooLarge) => Err(NetError::TooLarge),
            Err(_) => Err(NetError::DeviceFull),
        }
    }

    fn receive(&mut self) -> Option<Vec<u8>> {
        if let Some(q) = self.active_rx {
            return self.recv_from(q);
        }
        // Round-robin: resume at the cursor so no queue starves when the
        // caller drains one frame at a time.
        for i in 0..self.queues.len() {
            let q = (self.rx_cursor + i) & self.mask as usize;
            if let Some(frame) = self.recv_from(q) {
                self.rx_cursor = q;
                return Some(frame);
            }
        }
        self.rx_cursor = (self.rx_cursor + 1) & self.mask as usize;
        None
    }

    fn mac(&self) -> MacAddr {
        self.mac
    }

    fn mtu(&self) -> usize {
        self.mtu
    }

    fn rx_queues(&self) -> usize {
        self.queues.len()
    }

    fn select_rx_queue(&mut self, queue: Option<usize>) {
        // Masked-index discipline: an out-of-range request cannot select
        // an out-of-range queue.
        self.active_rx = queue.map(|q| q & self.mask as usize);
    }
}

/// Buffer geometry of one [`VirtqueueNetDevice`] arena.
#[derive(Debug, Clone, Copy)]
pub struct VqArena {
    /// Base of the buffer arena (shared pages for the traditional-VM
    /// model).
    pub base: GuestAddr,
    /// Per-buffer stride (>= MTU + Ethernet header).
    pub stride: u32,
    /// Buffers in the arena (>= queue size).
    pub count: u16,
}

impl VqArena {
    fn slot(&self, i: u16) -> GuestAddr {
        self.base.add(u64::from(i) * u64::from(self.stride))
    }
}

/// The unhardened virtio device (traditional lift-and-shift / DPDK-style):
/// shared buffer arena, zero-copy placement, zero validation.
pub struct VirtqueueNetDevice {
    tx: Driver,
    rx: Driver,
    tx_arena: VqArena,
    rx_arena: VqArena,
    tx_free: Vec<u16>,
    mem: GuestMemory,
    mac: MacAddr,
    /// The MTU read at initialisation.
    initial_mtu: u16,
    /// Host-writable config space, re-read on the data path (the
    /// historical double-fetch pattern the hardening commits removed).
    cfg: ConfigSpace,
}

impl VirtqueueNetDevice {
    /// Builds the device: posts every RX buffer up front.
    ///
    /// # Errors
    ///
    /// Transport errors during setup.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        mut tx: Driver,
        mut rx: Driver,
        tx_arena: VqArena,
        rx_arena: VqArena,
        mem: GuestMemory,
        mac: MacAddr,
        cfg: ConfigSpace,
    ) -> Result<Self, CioError> {
        let initial_mtu = cfg.read_mtu(&mem.guest())?;
        for i in 0..rx_arena.count.min(rx.layout().qsize) {
            rx.add_buf(
                &[],
                &[DescSeg {
                    addr: rx_arena.slot(i),
                    len: rx_arena.stride,
                }],
                u64::from(i),
            )?;
        }
        let tx_free = (0..tx_arena.count.min(tx.layout().qsize)).collect();
        let _ = &mut tx;
        Ok(VirtqueueNetDevice {
            tx,
            rx,
            tx_arena,
            rx_arena,
            tx_free,
            mem,
            mac,
            initial_mtu,
            cfg,
        })
    }

    fn reclaim_tx(&mut self) {
        while let Ok(Some(done)) = self.tx.poll_used() {
            self.tx_free.push(done.token as u16);
        }
    }
}

impl NetDevice for VirtqueueNetDevice {
    fn transmit(&mut self, frame: &[u8]) -> Result<(), NetError> {
        // Double fetch: the unhardened driver re-reads the host-owned MTU
        // on every transmit and trusts whatever it finds *now*.
        let mtu_now = self
            .cfg
            .read_mtu(&self.mem.guest())
            .unwrap_or(self.initial_mtu);
        if mtu_now != self.initial_mtu {
            // Oracle: the driver is acting on host-mutated configuration.
            self.mem.meter().violations_undetected(1);
        }
        if frame.len() > usize::from(mtu_now) + cio_netstack::wire::ETH_HDR_LEN {
            return Err(NetError::TooLarge);
        }
        if frame.len() > self.tx_arena.stride as usize {
            // An inflated MTU lets frames overrun the per-slot buffer —
            // real cross-buffer corruption in the shared arena.
            self.mem.meter().violations_undetected(1);
            return Err(NetError::TooLarge);
        }
        self.reclaim_tx();
        let Some(slot) = self.tx_free.pop() else {
            return Err(NetError::DeviceFull);
        };
        let addr = self.tx_arena.slot(slot);
        // Zero-copy placement into the shared arena; the meter records the
        // bytes as unprotected zero-copy traffic.
        if self.mem.guest().write(addr, frame).is_err() {
            self.tx_free.push(slot);
            return Err(NetError::DeviceFull);
        }
        self.mem.meter().bytes_zero_copy(frame.len() as u64);
        if self
            .tx
            .add_buf(
                &[DescSeg {
                    addr,
                    len: frame.len() as u32,
                }],
                &[],
                u64::from(slot),
            )
            .is_err()
        {
            self.tx_free.push(slot);
            return Err(NetError::DeviceFull);
        }
        Ok(())
    }

    fn receive(&mut self) -> Option<Vec<u8>> {
        let done = self.rx.poll_used().ok().flatten()?;
        let slot = (done.token as u16) % self.rx_arena.count;
        // Unhardened: the length is trusted as-is (the oracle flags abuse);
        // clamp only to keep the simulation itself well-defined.
        let len = (done.len).min(self.rx_arena.stride) as usize;
        let mut buf = vec![0u8; len];
        let addr = self.rx_arena.slot(slot);
        self.mem.guest().read(addr, &mut buf).ok()?;
        // Repost the buffer.
        let _ = self.rx.add_buf(
            &[],
            &[DescSeg {
                addr,
                len: self.rx_arena.stride,
            }],
            done.token,
        );
        Some(buf)
    }

    fn mac(&self) -> MacAddr {
        self.mac
    }

    fn mtu(&self) -> usize {
        usize::from(self.initial_mtu)
    }
}

/// The hardened virtio device: validated completions + SWIOTLB bouncing.
pub struct HardenedVirtioNetDevice {
    tx: HardenedDriver,
    rx: HardenedDriver,
    mtu: usize,
    posted: u32,
    tokens: u64,
}

impl HardenedVirtioNetDevice {
    /// Builds the device and posts `rx_buffers` receive slots.
    ///
    /// # Errors
    ///
    /// Transport errors during setup.
    pub fn new(
        tx: HardenedDriver,
        mut rx: HardenedDriver,
        rx_buffers: u32,
    ) -> Result<Self, CioError> {
        let mut posted = 0;
        for t in 0..rx_buffers {
            match rx.post_recv(u64::from(t)) {
                Ok(()) => posted += 1,
                Err(cio_vring::RingError::Full) => break,
                Err(e) => return Err(e.into()),
            }
        }
        let mtu = usize::from(tx.mtu());
        Ok(HardenedVirtioNetDevice {
            tx,
            rx,
            mtu,
            posted,
            tokens: u64::from(posted),
        })
    }

    /// Receive buffers posted at construction (diagnostic).
    pub fn initial_rx_buffers(&self) -> u32 {
        self.posted
    }

    fn reclaim_tx(&mut self) {
        // Hardened polling: violations surface as errors and are counted
        // by the meter; the device drops the poisoned completion.
        loop {
            match self.tx.poll() {
                Ok(Some(_)) => continue,
                Ok(None) => break,
                Err(_) => continue,
            }
        }
    }
}

impl NetDevice for HardenedVirtioNetDevice {
    fn transmit(&mut self, frame: &[u8]) -> Result<(), NetError> {
        self.reclaim_tx();
        self.tokens += 1;
        match self.tx.send(frame, self.tokens) {
            Ok(()) => Ok(()),
            Err(cio_vring::RingError::TooLarge) => Err(NetError::TooLarge),
            Err(_) => Err(NetError::DeviceFull),
        }
    }

    fn receive(&mut self) -> Option<Vec<u8>> {
        loop {
            match self.rx.poll() {
                Ok(Some((_done, Some(data)))) => {
                    // Repost a fresh buffer to keep the queue primed.
                    self.tokens += 1;
                    let _ = self.rx.post_recv(self.tokens);
                    return Some(data);
                }
                Ok(Some((_done, None))) => continue,
                Ok(None) => return None,
                Err(_) => {
                    // Detected violation: drop it and repost.
                    self.tokens += 1;
                    let _ = self.rx.post_recv(self.tokens);
                    continue;
                }
            }
        }
    }

    fn mac(&self) -> MacAddr {
        MacAddr(self.tx.mac())
    }

    fn mtu(&self) -> usize {
        // The negotiated MTU is already the IP-payload limit.
        self.mtu
    }
}

/// The attested, IDE-protected NIC of the DDA path (§3.4).
///
/// The TEE end protects/unprotects every frame; the device end (inside
/// this struct — the host cannot see into the device) forwards to the
/// fabric. `tamper_after_attestation` models the paper's §3.4 caveat.
pub struct IdeNetDevice {
    tee_end: IdeChannel,
    dev_end: IdeChannel,
    port: cio_host::FabricPort,
    recorder: cio_host::Recorder,
    clock: cio_sim::Clock,
    mac: MacAddr,
    mtu: usize,
    /// When set, the (attested!) device flips a bit in every forwarded
    /// frame — post-attestation compromise.
    pub tamper_after_attestation: bool,
}

impl IdeNetDevice {
    /// Builds the device from two ends of an attested IDE session.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        tee_end: IdeChannel,
        dev_end: IdeChannel,
        port: cio_host::FabricPort,
        recorder: cio_host::Recorder,
        clock: cio_sim::Clock,
        mac: MacAddr,
        mtu: usize,
    ) -> Self {
        IdeNetDevice {
            tee_end,
            dev_end,
            port,
            recorder,
            clock,
            mac,
            mtu,
            tamper_after_attestation: false,
        }
    }

    fn record_tlp(&self, len: usize) {
        // The host sees only encrypted TLPs: size and timing, no headers.
        self.recorder.record(
            self.clock.now(),
            "tlp",
            cio_host::observe::bits::LENGTH + cio_host::observe::bits::TIMING,
        );
        let _ = len;
    }
}

impl NetDevice for IdeNetDevice {
    fn transmit(&mut self, frame: &[u8]) -> Result<(), NetError> {
        if frame.len() > self.mtu + cio_netstack::wire::ETH_HDR_LEN {
            return Err(NetError::TooLarge);
        }
        let tlp = self.tee_end.protect(frame);
        self.record_tlp(tlp.len());
        // The device decrypts on its side of the link and puts the frame
        // on the wire.
        let mut inner = self
            .dev_end
            .unprotect(&tlp)
            .map_err(|_| NetError::Malformed)?;
        if self.tamper_after_attestation && !inner.is_empty() {
            let idx = inner.len() / 2;
            inner[idx] ^= 0x01;
        }
        self.port.transmit(&inner)
    }

    fn receive(&mut self) -> Option<Vec<u8>> {
        let frame = self.port.receive()?;
        let tlp = self.dev_end.protect(&frame);
        self.record_tlp(tlp.len());
        self.tee_end.unprotect(&tlp).ok()
    }

    fn mac(&self) -> MacAddr {
        self.mac
    }

    fn mtu(&self) -> usize {
        self.mtu
    }
}

/// The LightBox-style tunnel device: whole L2 frames sealed into a cTLS
/// channel provisioned at deployment, carried to the gateway as opaque
/// blobs. The host (and the local network) learn only blob sizes and
/// timing.
pub struct TunnelDevice {
    inner_tx: Producer<GuestView>,
    inner_rx: Consumer<GuestView>,
    chan: cio_ctls::Channel,
    mac: MacAddr,
    mtu: usize,
    /// Data-positioning discipline for the carrier ring (§3.2): in-place
    /// seals records straight into reserved slots; copy-early stages
    /// through the scratch and pays the explicit interface copy.
    policy: CopyPolicy,
    /// Reusable receive buffer for blobs consumed off the carrier ring.
    blob: Vec<u8>,
    /// Reusable scratches for the fused seal/open passes.
    seal_scratch: cio_ctls::RecordScratch,
    open_scratch: cio_ctls::RecordScratch,
    /// Batch discipline for the carrier ring. Serial (the default) keeps
    /// the historical one-record-per-crossing paths bit-identical.
    batch: BatchPolicy,
    /// The carrier memory domain's virtual clock, read to enforce the
    /// adaptive policy's latency cap on partially filled batches.
    clock: Clock,
    /// Frames accepted by `transmit` but not yet sealed onto the carrier
    /// (batched transmit only). Bounded by the policy's batch size.
    tx_pending: VecDeque<Vec<u8>>,
    /// Virtual time the oldest pending frame was accepted.
    tx_pending_since: Option<Cycles>,
    /// Pool backing `tx_pending`, so steady-state batching allocates
    /// nothing once the pool has warmed up.
    pool: BufPool,
    /// Plaintexts opened by one batched receive pass, handed out one per
    /// `receive` call.
    rx_pending: VecDeque<Vec<u8>>,
    /// Per-record scratches for the batched open pass.
    batch_outs: Vec<cio_ctls::RecordScratch>,
}

impl TunnelDevice {
    /// Wraps the carrier rings with the provisioned tunnel channel.
    pub fn new(
        inner_tx: Producer<GuestView>,
        inner_rx: Consumer<GuestView>,
        chan: cio_ctls::Channel,
        mac: MacAddr,
        mtu: usize,
    ) -> Self {
        let clock = inner_tx.clock();
        TunnelDevice {
            inner_tx,
            inner_rx,
            chan,
            mac,
            mtu,
            policy: CopyPolicy::default(),
            blob: Vec::new(),
            seal_scratch: cio_ctls::RecordScratch::new(),
            open_scratch: cio_ctls::RecordScratch::new(),
            batch: BatchPolicy::default(),
            clock,
            tx_pending: VecDeque::new(),
            tx_pending_since: None,
            pool: BufPool::new(MAX_BATCH),
            rx_pending: VecDeque::new(),
            batch_outs: Vec::new(),
        }
    }

    /// Selects the carrier's data-positioning policy. [`CopyPolicy::CopyEarly`]
    /// forces the staged path even on in-slot-capable rings (the
    /// discipline adversarial double-fetch configurations demand).
    pub fn set_copy_policy(&mut self, policy: CopyPolicy) {
        self.policy = policy;
    }

    /// Whether transmit will seal records in slot (policy allows it and
    /// the ring layout supports it).
    pub fn seals_in_slot(&self) -> bool {
        self.policy.allows_in_place() && self.inner_tx.in_slot_capable()
    }

    /// Selects the carrier's batch discipline. Non-serial policies gather
    /// transmits and seal them with one shared-keystream AEAD pass into
    /// one reserved run (one lock, one index publish), and drain receives
    /// a run at a time. Batched transmit requires the in-slot layout;
    /// where in-slot sealing is unavailable the device falls back to the
    /// staged per-record path, exactly as serial does.
    pub fn set_batch_policy(&mut self, batch: BatchPolicy) {
        self.batch = batch;
        let want = if batch.is_serial() { 0 } else { MAX_BATCH };
        self.batch_outs
            .resize_with(want, cio_ctls::RecordScratch::new);
    }

    /// Whether transmit gathers frames for batched seal-in-slot.
    fn batched_tx(&self) -> bool {
        !self.batch.is_serial() && self.policy.allows_in_place() && self.inner_tx.in_slot_capable()
    }

    /// Seals as many pending frames as the carrier grants, in reserved
    /// runs of up to the policy's batch size. Returns whether the queue
    /// fully drained; a partial grant seals the granted prefix and leaves
    /// the rest pending (transient backpressure, retried next flush).
    fn flush_tx_batch(&mut self) -> bool {
        while !self.tx_pending.is_empty() {
            let n = self
                .tx_pending
                .len()
                .min(self.batch.max_batch())
                .min(MAX_BATCH);
            let cap = self
                .tx_pending
                .iter()
                .take(n)
                .map(Vec::len)
                .max()
                .unwrap_or(0)
                + cio_ctls::RECORD_OVERHEAD;
            let grant = match self.inner_tx.reserve_batch(cap, n) {
                Ok(g) => g,
                Err(_) => return false,
            };
            let g = grant.len().min(n);
            let mut pts: [&[u8]; MAX_BATCH] = [&[]; MAX_BATCH];
            for (i, f) in self.tx_pending.iter().take(g).enumerate() {
                pts[i] = f.as_slice();
            }
            let mut lens = [0usize; MAX_BATCH];
            let chan = &mut self.chan;
            let sealed = self.inner_tx.with_batch_mut(&grant, |slots| {
                chan.seal_batch_into_slots(&pts[..g], &mut slots[..g], &mut lens[..g])
            });
            if !matches!(sealed, Ok(Ok(()))) {
                return false;
            }
            if self.inner_tx.commit_batch(grant, &lens[..g]).is_err() {
                return false;
            }
            self.inner_tx.kick();
            for _ in 0..g {
                if let Some(buf) = self.tx_pending.pop_front() {
                    self.pool.put(buf);
                }
            }
        }
        self.tx_pending_since = None;
        true
    }

    /// Drains one batched run off the carrier: a single locked pass
    /// fetches the run, one batched AEAD pass opens it, and the opened
    /// plaintexts queue for per-call hand-out. Host-injected garbage
    /// fails its own open and is dropped without touching the rest of
    /// the run. Returns how many records were consumed.
    fn drain_rx_batch(&mut self) -> usize {
        let want = self.batch.max_batch().min(MAX_BATCH);
        let chan = &mut self.chan;
        let outs = &mut self.batch_outs;
        let rx_pending = &mut self.rx_pending;
        self.inner_rx
            .consume_batch_in_place(want, |slots| {
                let k = slots.len();
                let mut recs: [&[u8]; MAX_BATCH] = [&[]; MAX_BATCH];
                for (i, s) in slots.iter().enumerate() {
                    recs[i] = s;
                }
                let mut results: [Result<(), cio_ctls::CtlsError>; MAX_BATCH] = [Ok(()); MAX_BATCH];
                chan.open_batch_in_slots(&recs[..k], &mut outs[..k], &mut results[..k]);
                for (out, res) in outs[..k].iter().zip(&results[..k]) {
                    if res.is_ok() {
                        rx_pending.push_back(out.as_slice().to_vec());
                    }
                }
            })
            .unwrap_or(0)
    }
}

impl NetDevice for TunnelDevice {
    fn transmit(&mut self, frame: &[u8]) -> Result<(), NetError> {
        if frame.len() > self.mtu + cio_netstack::wire::ETH_HDR_LEN {
            return Err(NetError::TooLarge);
        }
        if self.batched_tx() {
            // Gather-then-flush: frames queue until the policy's batch
            // fills or the adaptive latency cap expires, then one
            // reserved run takes the whole batch. A full queue that will
            // not flush (carrier backpressure) refuses the frame, which
            // is the same transient signal the serial path's failed
            // reserve produces.
            if self.tx_pending.len() >= self.batch.max_batch() && !self.flush_tx_batch() {
                return Err(NetError::DeviceFull);
            }
            let now = self.clock.now();
            let mut buf = self.pool.get();
            buf.extend_from_slice(frame);
            self.tx_pending.push_back(buf);
            if self.tx_pending_since.is_none() {
                self.tx_pending_since = Some(now);
            }
            let due = match (self.batch.latency_cap(), self.tx_pending_since) {
                (Some(cap), Some(t0)) => now.get().saturating_sub(t0.get()) >= cap.get(),
                _ => false,
            };
            if self.tx_pending.len() >= self.batch.max_batch() || due {
                self.flush_tx_batch();
            }
            return Ok(());
        }
        if self.seals_in_slot() {
            // Seal-in-slot: reserve the slot, run the fused AEAD directly
            // over slot memory (plaintext never touches the shared area),
            // and publish. Zero staging copies.
            let record_len = frame.len() + cio_ctls::RECORD_OVERHEAD;
            let grant = match self.inner_tx.reserve(record_len) {
                Ok(g) => g,
                Err(cio_vring::RingError::TooLarge) => return Err(NetError::TooLarge),
                Err(_) => return Err(NetError::DeviceFull),
            };
            let chan = &mut self.chan;
            let sealed = self
                .inner_tx
                .with_slot_mut(&grant, |slot| chan.seal_into_slot(frame, slot))
                .map_err(|_| NetError::DeviceFull)?
                .map_err(|_| NetError::Malformed)?;
            return match self.inner_tx.commit(grant, sealed) {
                Ok(()) => Ok(()),
                Err(cio_vring::RingError::TooLarge) => Err(NetError::TooLarge),
                Err(_) => Err(NetError::DeviceFull),
            };
        }
        // Staged path (copy-early policy or non-shared-area layout): seal
        // into the reused scratch, then the explicit, metered copy onto
        // the ring — no per-frame allocation.
        self.chan
            .seal_into(frame, &mut self.seal_scratch)
            .map_err(|_| NetError::Malformed)?;
        match self.inner_tx.produce(self.seal_scratch.as_slice()) {
            Ok(()) => Ok(()),
            Err(cio_vring::RingError::TooLarge) => Err(NetError::TooLarge),
            Err(_) => Err(NetError::DeviceFull),
        }
    }

    fn receive(&mut self) -> Option<Vec<u8>> {
        // A receive pass is the tunnel's progress point: flush any
        // gathered transmit batch first so partially filled batches never
        // outlive the pump iteration that could have sent them.
        if !self.tx_pending.is_empty() {
            self.flush_tx_batch();
        }
        if !self.batch.is_serial() && self.policy.allows_in_place() {
            loop {
                if let Some(frame) = self.rx_pending.pop_front() {
                    return Some(frame);
                }
                if self.drain_rx_batch() == 0 {
                    return None;
                }
            }
        }
        // Host-injected garbage fails to open and is dropped — the tunnel
        // boundary is exactly one AEAD check wide.
        if self.policy.allows_in_place() {
            // Open-in-slot: the record is fetched exactly once from slot
            // memory and decrypted straight into the private scratch.
            loop {
                let chan = &mut self.chan;
                let scratch = &mut self.open_scratch;
                let opened = self
                    .inner_rx
                    .consume_in_place(|rec| chan.open_in_slot(rec, scratch).is_ok())
                    .ok()
                    .flatten()?;
                if opened {
                    return Some(self.open_scratch.as_slice().to_vec());
                }
            }
        }
        loop {
            self.inner_rx.consume_into(&mut self.blob).ok().flatten()?;
            if self
                .chan
                .open_into(&self.blob, &mut self.open_scratch)
                .is_ok()
            {
                return Some(self.open_scratch.as_slice().to_vec());
            }
        }
    }

    fn mac(&self) -> MacAddr {
        self.mac
    }

    fn mtu(&self) -> usize {
        self.mtu
    }
}

/// Simple bump allocator for laying out structures in guest memory.
#[derive(Debug)]
pub struct GuestLayoutAlloc {
    next: u64,
    limit: u64,
}

impl GuestLayoutAlloc {
    /// Allocates from `[start, limit)`.
    pub fn new(start: GuestAddr, limit: GuestAddr) -> Self {
        GuestLayoutAlloc {
            next: start.0,
            limit: limit.0,
        }
    }

    /// Carves out `bytes` bytes aligned to `align` (power of two).
    ///
    /// # Errors
    ///
    /// [`CioError::Fatal`] when out of reserved space — a configuration
    /// error, caught at construction per the stateless principle.
    pub fn alloc(&mut self, bytes: usize, align: u64) -> Result<GuestAddr, CioError> {
        let aligned = (self.next + align - 1) & !(align - 1);
        let end = aligned + bytes as u64;
        if end > self.limit {
            return Err(CioError::Fatal("guest layout region exhausted"));
        }
        self.next = end;
        Ok(GuestAddr(aligned))
    }

    /// Page-aligned allocation helper.
    ///
    /// # Errors
    ///
    /// As [`GuestLayoutAlloc::alloc`].
    pub fn alloc_pages(&mut self, pages: usize) -> Result<GuestAddr, CioError> {
        self.alloc(pages * cio_mem::PAGE_SIZE, cio_mem::PAGE_SIZE as u64)
    }
}

/// Charges one poll iteration that found no work (used by world drivers).
pub fn charge_idle_poll(mem: &GuestMemory) {
    mem.clock().advance(Cycles(mem.cost().poll_idle.get()));
    mem.meter().idle_polls(1);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_alloc_aligns_and_bounds() {
        let mut a = GuestLayoutAlloc::new(GuestAddr(100), GuestAddr(10_000));
        let x = a.alloc(50, 64).unwrap();
        assert_eq!(x.0 % 64, 0);
        let y = a.alloc(50, 64).unwrap();
        assert!(y.0 >= x.0 + 50);
        let p = a.alloc_pages(1).unwrap();
        assert!(p.is_page_aligned());
        assert!(a.alloc(10_000, 1).is_err());
    }
}
