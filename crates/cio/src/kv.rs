//! The confidential KV plane: cTLS records in, encrypted blocks out.
//!
//! This is the storage dataplane's end-to-end workload (experiment E24):
//! an application compartment submits get/put operations as sealed cTLS
//! records (the same mandatory L5 crypto the network dual boundary
//! imposes), the KV engine inside the TEE appends values to a
//! log-structured store over [`CryptStore`], and sealed blocks leave the
//! TEE through the batched block ring — [`MultiQueueStore`] lanes of
//! [`RingBlockStore`], LBA-extent-steered like RSS steers flows.
//!
//! The write path is the parity story of this module: a segment of
//! records is flushed with one [`CryptStore::write_run`], which seals up
//! to 16 blocks per multi-stream AEAD pass *directly into ring-slot
//! memory* and publishes them under one lock and (at most) one doorbell.
//! Nothing on the flush path copies a data block: plaintext lives in the
//! segment buffer, ciphertext is born in the slot.
//!
//! Reads gather-open straight out of the response slots. An in-TEE hash
//! index maps keys to log offsets; the log is a ring buffer over the
//! logical block space, evicting overwritten records on wrap.

use crate::CioError;
use cio_block::blockdev::{BlockStore, BLOCK_SIZE};
use cio_block::transport::{
    ring_notify_mode, BlkCopyMode, BlkProfile, CioBlkBackend, CioBlkFrontend, RingBlockStore,
    BLK_HDR,
};
use cio_block::{CryptStore, MultiQueueStore, RamDisk};
use cio_ctls::record::Channel;
use cio_ctls::{RecordScratch, SimHooks};
use cio_host::backend::NotifyGate;
use cio_mem::{GuestAddr, PAGE_SIZE};
use cio_sim::{CostModel, Meter, Telemetry};
use cio_tee::{Tee, TeeKind};
use cio_vring::cioring::{
    BatchPolicy, CioRing, Consumer, DataMode, NotifyPolicy, Producer, RingConfig,
};
use std::collections::HashMap;

/// Default blocks per log segment: the flush unit, sized to one crypto
/// batch so a full segment seals in one multi-stream pass
/// (configurable via [`KvConfig::with_seg_blocks`]).
pub const SEG_BLOCKS: usize = 16;

/// Record header: `[klen u16][vlen u32]`.
const REC_HDR: usize = 6;

/// Pages reserved per block lane in guest physical memory.
const LANE_PAGES: u64 = 128;

/// Configuration of a [`KvWorld`].
#[derive(Debug, Clone, Copy)]
pub struct KvConfig {
    /// Block ring lanes (power of two).
    pub queues: usize,
    /// Block transport dialect (copy mode, batch policy, ring notify).
    pub profile: BlkProfile,
    /// Host-side service policy (the Adaptive gate rides on top of
    /// event-idx rings; see [`ring_notify_mode`]).
    pub notify: NotifyPolicy,
    /// Physical blocks per lane disk.
    pub disk_blocks: u64,
    /// Steering extent in blocks (power of two).
    pub extent: u64,
    /// Blocks per log segment (the flush unit / memtable size). Larger
    /// segments amortize the per-run tag metadata RMW and doorbells over
    /// more data blocks, at the cost of a bigger staged window.
    pub seg_blocks: usize,
}

impl KvConfig {
    /// The serial baseline: the exact storage shape this repo shipped
    /// before batching (staged copies, one request per publish, polling
    /// rings, one lane).
    pub fn storage_v1() -> Self {
        KvConfig {
            queues: 1,
            profile: BlkProfile::storage_v1(),
            notify: NotifyPolicy::Always,
            disk_blocks: 1024,
            extent: SEG_BLOCKS as u64,
            seg_blocks: SEG_BLOCKS,
        }
    }

    /// The batched zero-copy dialect: seal-in-slot, fixed batch `depth`,
    /// event-idx doorbell suppression.
    pub fn batched(depth: usize) -> Self {
        KvConfig {
            queues: 1,
            profile: BlkProfile::batched(depth),
            notify: NotifyPolicy::EventIdx,
            disk_blocks: 1024,
            extent: SEG_BLOCKS as u64,
            seg_blocks: SEG_BLOCKS,
        }
    }

    /// Sets the lane count (power of two).
    #[must_use]
    pub fn with_queues(mut self, queues: usize) -> Self {
        self.queues = queues;
        self
    }

    /// Sets the notify policy, keeping the ring mode consistent with it.
    #[must_use]
    pub fn with_notify(mut self, notify: NotifyPolicy) -> Self {
        self.notify = notify;
        self.profile.notify = ring_notify_mode(notify);
        self
    }

    /// Sets the batch policy on the block profile.
    #[must_use]
    pub fn with_batch(mut self, batch: BatchPolicy) -> Self {
        self.profile.batch = batch;
        self
    }

    /// Sets the per-lane disk size.
    #[must_use]
    pub fn with_disk_blocks(mut self, blocks: u64) -> Self {
        self.disk_blocks = blocks;
        self
    }

    /// Sets the log segment (flush unit) size in blocks.
    #[must_use]
    pub fn with_seg_blocks(mut self, seg_blocks: usize) -> Self {
        self.seg_blocks = seg_blocks;
        self
    }

    /// Whether this configuration runs the serial v1 storage shape
    /// (one staged block per call — the pre-run-API data path).
    fn serial(&self) -> bool {
        matches!(self.profile.copy, BlkCopyMode::Staged)
    }
}

/// Where a record's bytes currently live.
enum Slot {
    /// In the unflushed segment buffer: `(record offset in seg, klen, vlen)`.
    Staged(usize, u16, u32),
    /// In the log: `(record byte offset, klen, vlen)`.
    Flushed(u64, u16, u32),
}

/// A complete confidential KV deployment: TEE, multi-queue block rings,
/// crypt layer, log engine, index, and the sealed application channel.
pub struct KvWorld {
    tee: Tee,
    cfg: KvConfig,
    store: CryptStore<MultiQueueStore<RingBlockStore>>,
    gates: Vec<NotifyGate>,
    /// Application end of the mandatory L5 channel.
    client: Channel,
    /// KV-engine end.
    server: Channel,
    index: HashMap<Vec<u8>, Slot>,
    /// Keys staged in the current segment (for offset conversion on flush).
    staged_keys: Vec<Vec<u8>>,
    /// Retired staged-key buffers, reused so steady-state churn over a
    /// warm working set never allocates.
    key_pool: Vec<Vec<u8>>,
    /// The open log segment (plaintext records, TEE-private).
    seg: Vec<u8>,
    /// Physical log byte offset where the segment will land.
    tail: u64,
    log_bytes: u64,
    read_scratch: Vec<u8>,
    flushes: u64,
    wraps: u64,
    /// Request/response scratch for the sealed channel.
    req_buf: Vec<u8>,
    resp_buf: Vec<u8>,
    /// Sealed-record wire scratch (ciphertext side of the L5 channel).
    wire: RecordScratch,
    /// Opened-record plaintext scratch.
    plain: RecordScratch,
    /// Value scratch for the sealed get path.
    val_buf: Vec<u8>,
}

impl KvWorld {
    /// Builds a KV world.
    ///
    /// # Panics
    ///
    /// If `cfg.queues` or `cfg.extent` is not a power of two.
    ///
    /// # Errors
    ///
    /// Setup failures (ring allocation, disk too small).
    pub fn new(cfg: KvConfig, cost: CostModel) -> Result<KvWorld, CioError> {
        let pages = (LANE_PAGES as usize) * cfg.queues + 64;
        let tee = Tee::new(TeeKind::ConfidentialVm, pages, cost);
        let mem = tee.memory().clone();
        let ring_cfg = RingConfig {
            slots: 16,
            slot_size: 16,
            mode: DataMode::SharedArea,
            mtu: (BLOCK_SIZE + BLK_HDR) as u32,
            area_size: 1 << 17,
            notify: cfg.profile.notify,
            ..RingConfig::default()
        };
        let mut lanes = Vec::with_capacity(cfg.queues);
        for lane in 0..cfg.queues {
            let base = lane as u64 * LANE_PAGES * PAGE_SIZE as u64;
            let req_at = GuestAddr(base);
            let resp_at = GuestAddr(base + 8 * PAGE_SIZE as u64);
            let req_area = GuestAddr(base + 16 * PAGE_SIZE as u64);
            let resp_area = GuestAddr(base + 64 * PAGE_SIZE as u64);
            let req_ring = CioRing::new(ring_cfg.clone(), req_at, req_area)?;
            let resp_ring = CioRing::new(ring_cfg.clone(), resp_at, resp_area)?;
            mem.share_range(req_at, req_ring.ring_bytes())?;
            mem.share_range(resp_at, resp_ring.ring_bytes())?;
            mem.share_range(req_area, req_ring.area_bytes())?;
            mem.share_range(resp_area, resp_ring.area_bytes())?;
            let front = CioBlkFrontend::with_profile(
                Producer::new(req_ring.clone(), mem.guest())?,
                Consumer::new(resp_ring.clone(), mem.guest())?,
                cfg.profile,
            );
            let back = CioBlkBackend::with_profile(
                Consumer::new(req_ring, mem.host())?,
                Producer::new(resp_ring, mem.host())?,
                RamDisk::new(cfg.disk_blocks),
                cfg.profile,
            );
            lanes.push(RingBlockStore::new(front, back));
        }
        let mq = MultiQueueStore::new(lanes, cfg.extent)?;
        let mut store = CryptStore::new(mq, [0x5C; 32])?;
        store.set_hooks(tee.clock().clone(), tee.cost().clone(), tee.meter().clone());
        let hooks = SimHooks {
            clock: tee.clock().clone(),
            cost: tee.cost().clone(),
            meter: tee.meter().clone(),
            telemetry: Telemetry::disabled(),
        };
        let log_bytes = store.blocks() * BLOCK_SIZE as u64;
        Ok(KvWorld {
            tee,
            cfg,
            store,
            gates: vec![NotifyGate::new(); cfg.queues],
            client: Channel::from_secrets([7; 32], [9; 32], true, Some(hooks.clone())),
            server: Channel::from_secrets([7; 32], [9; 32], false, Some(hooks)),
            index: HashMap::new(),
            staged_keys: Vec::new(),
            key_pool: Vec::new(),
            seg: Vec::with_capacity((cfg.seg_blocks + 2) * BLOCK_SIZE),
            tail: 0,
            log_bytes,
            read_scratch: Vec::with_capacity((cfg.seg_blocks + 2) * BLOCK_SIZE),
            flushes: 0,
            wraps: 0,
            req_buf: Vec::with_capacity(2 * BLOCK_SIZE),
            resp_buf: Vec::with_capacity(2 * BLOCK_SIZE),
            wire: RecordScratch::new(),
            plain: RecordScratch::new(),
            val_buf: Vec::new(),
        })
    }

    /// The TEE (clock/meter access).
    pub fn tee(&self) -> &Tee {
        &self.tee
    }

    /// The configuration this world was built with.
    pub fn config(&self) -> &KvConfig {
        &self.cfg
    }

    /// Segments flushed to the log so far.
    pub fn flushes(&self) -> u64 {
        self.flushes
    }

    /// Times the log wrapped around.
    pub fn wraps(&self) -> u64 {
        self.wraps
    }

    /// Attributes block-layer work to telemetry (lane n -> queue n).
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.store.set_telemetry(telemetry.clone(), 0);
        self.store.inner_mut().set_telemetry(telemetry);
    }

    /// Direct host access to one lane's disk (adversarial tests).
    pub fn lane_disk_mut(&mut self, lane: usize) -> &mut RamDisk {
        self.store
            .inner_mut()
            .lane_mut(lane)
            .backend_mut()
            .disk_mut()
    }

    /// Stores `value` under `key` (in-TEE direct path).
    ///
    /// # Errors
    ///
    /// Storage failures; records larger than the log are `NoSpace`.
    pub fn put(&mut self, key: &[u8], value: &[u8]) -> Result<(), CioError> {
        let rec_len = REC_HDR + key.len() + value.len();
        if key.len() > u16::MAX as usize
            || value.len() > u32::MAX as usize
            || rec_len as u64 > self.log_bytes / 2
        {
            return Err(CioError::Block(cio_block::BlockError::NoSpace));
        }
        let rec = self.seg.len();
        self.seg
            .extend_from_slice(&(key.len() as u16).to_le_bytes());
        self.seg
            .extend_from_slice(&(value.len() as u32).to_le_bytes());
        self.seg.extend_from_slice(key);
        self.seg.extend_from_slice(value);
        let staged = Slot::Staged(rec, key.len() as u16, value.len() as u32);
        // Overwrites update the live entry in place (keeping its key
        // allocation); only first-seen keys insert.
        if let Some(slot) = self.index.get_mut(key) {
            *slot = staged;
        } else {
            self.index.insert(key.to_vec(), staged);
        }
        let mut kbuf = self.key_pool.pop().unwrap_or_default();
        kbuf.clear();
        kbuf.extend_from_slice(key);
        self.staged_keys.push(kbuf);
        if self.seg.len() >= self.cfg.seg_blocks * BLOCK_SIZE {
            self.flush()?;
        }
        Ok(())
    }

    /// Fetches the value stored under `key`.
    ///
    /// # Errors
    ///
    /// Storage failures — including integrity/rollback verdicts when the
    /// host tampers with the log.
    pub fn get(&mut self, key: &[u8]) -> Result<Option<Vec<u8>>, CioError> {
        let mut out = Vec::new();
        Ok(if self.get_into(key, &mut out)? {
            Some(out)
        } else {
            None
        })
    }

    /// Fetches the value stored under `key` into a caller-supplied buffer
    /// (cleared first), returning whether the key was found. The
    /// allocation-free twin of [`KvWorld::get`]: once `out` and the
    /// internal read scratch are at their high-water marks, steady-state
    /// reads never touch the heap.
    ///
    /// # Errors
    ///
    /// Storage failures — including integrity/rollback verdicts when the
    /// host tampers with the log.
    pub fn get_into(&mut self, key: &[u8], out: &mut Vec<u8>) -> Result<bool, CioError> {
        out.clear();
        match self.index.get(key) {
            None => Ok(false),
            Some(&Slot::Staged(rec, klen, vlen)) => {
                let at = rec + REC_HDR + klen as usize;
                out.extend_from_slice(&self.seg[at..at + vlen as usize]);
                Ok(true)
            }
            Some(&Slot::Flushed(rec, klen, vlen)) => {
                let val = rec + (REC_HDR + klen as usize) as u64;
                let first = val / BLOCK_SIZE as u64;
                let last = (val + u64::from(vlen)).div_ceil(BLOCK_SIZE as u64);
                let span = (last - first) as usize * BLOCK_SIZE;
                self.read_scratch.clear();
                self.read_scratch.resize(span, 0);
                if self.cfg.serial() {
                    // The v1 shape: one block per call, staged both ways.
                    for j in 0..(last - first) as usize {
                        self.store.read_block(
                            first + j as u64,
                            &mut self.read_scratch[j * BLOCK_SIZE..(j + 1) * BLOCK_SIZE],
                        )?;
                    }
                } else {
                    self.store.read_run(first, &mut self.read_scratch)?;
                }
                let off = (val - first * BLOCK_SIZE as u64) as usize;
                out.extend_from_slice(&self.read_scratch[off..off + vlen as usize]);
                Ok(true)
            }
        }
    }

    /// Flushes the open segment to the log as one batched run.
    ///
    /// # Errors
    ///
    /// Storage failures.
    pub fn flush(&mut self) -> Result<(), CioError> {
        if self.seg.is_empty() {
            return Ok(());
        }
        // Pad to whole blocks (a zero klen marks padding).
        let padded = self.seg.len().div_ceil(BLOCK_SIZE) * BLOCK_SIZE;
        self.seg.resize(padded, 0);
        // Extent-align the segment start so the flush run never straddles
        // a steering extent mid-chunk: every ring-sized sub-batch lands
        // whole on one lane (the skipped gap keeps its older records).
        let ext = self.cfg.extent * BLOCK_SIZE as u64;
        self.tail = self.tail.div_ceil(ext) * ext;
        // Ring-buffer wrap: the unused tail region is dead space.
        if self.tail + padded as u64 > self.log_bytes {
            let (a, b) = (self.tail, self.log_bytes);
            self.evict_range(a, b);
            self.tail = 0;
            self.wraps += 1;
        }
        let (a, b) = (self.tail, self.tail + padded as u64);
        self.evict_range(a, b);
        let first = self.tail / BLOCK_SIZE as u64;
        let seg = std::mem::take(&mut self.seg);
        let r = if self.cfg.serial() {
            // The v1 shape: seal and publish one block at a time.
            (0..padded / BLOCK_SIZE).try_fold((), |(), j| {
                self.store
                    .write_block(first + j as u64, &seg[j * BLOCK_SIZE..(j + 1) * BLOCK_SIZE])
            })
        } else {
            self.store.write_run(first, &seg)
        };
        self.seg = seg;
        r?;
        // Convert staged index entries to their durable offsets.
        let tail = self.tail;
        let index = &mut self.index;
        for key in &self.staged_keys {
            if let Some(slot) = index.get_mut(key.as_slice()) {
                if let Slot::Staged(rec, klen, vlen) = *slot {
                    *slot = Slot::Flushed(tail + rec as u64, klen, vlen);
                }
            }
        }
        // Retire the key buffers into the pool for reuse.
        self.key_pool.append(&mut self.staged_keys);
        self.tail += padded as u64;
        self.seg.clear();
        self.flushes += 1;
        Ok(())
    }

    /// Drops flushed records overlapping log bytes `[a, b)` (overwritten
    /// or abandoned by a wrap).
    fn evict_range(&mut self, a: u64, b: u64) {
        self.index.retain(|_, slot| match *slot {
            Slot::Staged(..) => true,
            Slot::Flushed(rec, klen, vlen) => {
                let end = rec + (REC_HDR + klen as usize) as u64 + u64::from(vlen);
                rec >= b || end <= a
            }
        });
    }

    /// Stores `value` under `key`, the request arriving as a sealed cTLS
    /// record from the application compartment (the full E24 ingest path:
    /// record in via cTLS, blocks out via the ring).
    ///
    /// # Errors
    ///
    /// Channel or storage failures.
    pub fn put_sealed(&mut self, key: &[u8], value: &[u8]) -> Result<(), CioError> {
        self.req_buf.clear();
        self.req_buf.push(1); // op: put
        self.req_buf
            .extend_from_slice(&(key.len() as u16).to_le_bytes());
        self.req_buf
            .extend_from_slice(&(value.len() as u32).to_le_bytes());
        self.req_buf.extend_from_slice(key);
        self.req_buf.extend_from_slice(value);
        self.client.seal_into(&self.req_buf, &mut self.wire)?;
        // KV engine side: open, apply, ack. The opened plaintext is
        // detached from `self` while `put` runs (scratch swap, no copy).
        self.server
            .open_into(self.wire.as_slice(), &mut self.plain)?;
        let plain = std::mem::take(&mut self.plain);
        let req = plain.as_slice();
        let klen = u16::from_le_bytes([req[1], req[2]]) as usize;
        let vlen = u32::from_le_bytes([req[3], req[4], req[5], req[6]]) as usize;
        let r = self.put(&req[7..7 + klen], &req[7 + klen..7 + klen + vlen]);
        self.plain = plain;
        r?;
        self.server.seal_into(&[1u8], &mut self.wire)?;
        self.client
            .open_into(self.wire.as_slice(), &mut self.plain)?;
        debug_assert_eq!(self.plain.as_slice(), [1u8]);
        Ok(())
    }

    /// Fetches `key`, request and response both sealed cTLS records.
    ///
    /// # Errors
    ///
    /// Channel or storage failures.
    pub fn get_sealed(&mut self, key: &[u8]) -> Result<Option<Vec<u8>>, CioError> {
        let mut out = Vec::new();
        Ok(if self.get_sealed_into(key, &mut out)? {
            Some(out)
        } else {
            None
        })
    }

    /// Fetches `key` over the sealed channel into a caller-supplied buffer
    /// (cleared first), returning whether the key was found. The
    /// allocation-free twin of [`KvWorld::get_sealed`].
    ///
    /// # Errors
    ///
    /// Channel or storage failures.
    pub fn get_sealed_into(&mut self, key: &[u8], out: &mut Vec<u8>) -> Result<bool, CioError> {
        self.req_buf.clear();
        self.req_buf.push(0); // op: get
        self.req_buf
            .extend_from_slice(&(key.len() as u16).to_le_bytes());
        self.req_buf.extend_from_slice(&0u32.to_le_bytes());
        self.req_buf.extend_from_slice(key);
        self.client.seal_into(&self.req_buf, &mut self.wire)?;
        self.server
            .open_into(self.wire.as_slice(), &mut self.plain)?;
        let plain = std::mem::take(&mut self.plain);
        let req = plain.as_slice();
        let klen = u16::from_le_bytes([req[1], req[2]]) as usize;
        let mut val = std::mem::take(&mut self.val_buf);
        let found = self.get_into(&req[7..7 + klen], &mut val);
        self.plain = plain;
        self.resp_buf.clear();
        match found {
            Ok(true) => {
                self.resp_buf.push(0);
                self.resp_buf
                    .extend_from_slice(&(val.len() as u32).to_le_bytes());
                self.resp_buf.extend_from_slice(&val);
            }
            Ok(false) => self.resp_buf.push(2),
            Err(_) => {}
        }
        self.val_buf = val;
        found?;
        self.server.seal_into(&self.resp_buf, &mut self.wire)?;
        self.client
            .open_into(self.wire.as_slice(), &mut self.plain)?;
        let resp = self.plain.as_slice();
        out.clear();
        match resp[0] {
            0 => {
                let vlen = u32::from_le_bytes([resp[1], resp[2], resp[3], resp[4]]) as usize;
                out.extend_from_slice(&resp[5..5 + vlen]);
                Ok(true)
            }
            _ => Ok(false),
        }
    }

    /// One host-side service round across all lanes, gated per
    /// [`NotifyPolicy`]: `Always` services unconditionally (the polling
    /// baseline), `EventIdx` services only when the doorbell rang (that
    /// is what the event index buys: silence means no work), and
    /// `Adaptive` runs the NAPI-style [`NotifyGate`] (hot lanes polled,
    /// cold lanes woken by doorbells or the heartbeat).
    ///
    /// # Errors
    ///
    /// Backend processing failures.
    pub fn service(&mut self) -> Result<usize, CioError> {
        let mut moved_total = 0;
        for lane in 0..self.cfg.queues {
            let Some(mut back) = self.store.inner_mut().take_backend(lane) else {
                continue;
            };
            let door = back.take_doorbell()?;
            let gate = &mut self.gates[lane];
            let service = match self.cfg.notify {
                NotifyPolicy::Always => true,
                NotifyPolicy::EventIdx => door,
                NotifyPolicy::Adaptive => gate.should_service(door, false),
            };
            let r = if service {
                match back.process() {
                    Ok(moved) => {
                        gate.observe(moved);
                        moved_total += moved;
                        Ok(())
                    }
                    Err(e) => Err(e),
                }
            } else {
                gate.observe_skip();
                Ok(())
            };
            self.store.inner_mut().restore_backend(lane, back);
            r?;
        }
        Ok(moved_total)
    }

    /// Per-lane adaptive gate state: `(is_hot, idle_passes)`.
    pub fn gate_stats(&self) -> Vec<(bool, u64)> {
        self.gates
            .iter()
            .map(|g| (g.is_hot(), g.idle_passes()))
            .collect()
    }

    /// Snapshot of the TEE meter.
    pub fn meter(&self) -> &Meter {
        self.tee.meter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cio_block::BlockError;

    fn val(i: usize, len: usize) -> Vec<u8> {
        (0..len).map(|j| ((i * 131 + j * 7) % 255) as u8).collect()
    }

    #[test]
    fn sealed_put_get_roundtrip_staged_and_flushed() {
        let mut kv = KvWorld::new(KvConfig::batched(8), CostModel::default()).unwrap();
        for (i, len) in [64usize, 500, 4096, 20_000].into_iter().enumerate() {
            let key = format!("key-{i}");
            kv.put_sealed(key.as_bytes(), &val(i, len)).unwrap();
        }
        // Staged reads (segment not yet flushed for the small values).
        assert_eq!(kv.get_sealed(b"key-0").unwrap().unwrap(), val(0, 64));
        kv.flush().unwrap();
        assert!(kv.flushes() >= 1);
        for (i, len) in [64usize, 500, 4096, 20_000].into_iter().enumerate() {
            let key = format!("key-{i}");
            assert_eq!(
                kv.get_sealed(key.as_bytes()).unwrap().unwrap(),
                val(i, len),
                "value {i}"
            );
        }
        assert!(kv.get_sealed(b"missing").unwrap().is_none());
    }

    #[test]
    fn overwrites_and_large_values() {
        let mut kv =
            KvWorld::new(KvConfig::batched(8).with_queues(2), CostModel::default()).unwrap();
        kv.put(b"k", &val(1, 100)).unwrap();
        kv.put(b"k", &val(2, 65_536)).unwrap(); // 64 KiB forces a flush
        kv.flush().unwrap();
        assert_eq!(kv.get(b"k").unwrap().unwrap(), val(2, 65_536));
    }

    #[test]
    fn log_wraps_and_evicts_overwritten_records() {
        // Tiny disk: ~48 logical blocks per lane.
        let mut kv = KvWorld::new(
            KvConfig::batched(8).with_disk_blocks(64),
            CostModel::default(),
        )
        .unwrap();
        let n = 60usize;
        for i in 0..n {
            kv.put(format!("k{i}").as_bytes(), &val(i, 8_000)).unwrap();
        }
        kv.flush().unwrap();
        assert!(kv.wraps() > 0, "log should have wrapped");
        // The most recent keys survive with correct contents.
        let mut live = 0;
        for i in 0..n {
            if let Some(v) = kv.get(format!("k{i}").as_bytes()).unwrap() {
                assert_eq!(v, val(i, 8_000), "key {i}");
                live += 1;
            }
        }
        assert!(live > 0, "recent records must survive the wrap");
        assert!(live < n, "wrapped records must be evicted");
        // The newest key always survives.
        assert!(kv.get(format!("k{}", n - 1).as_bytes()).unwrap().is_some());
    }

    #[test]
    fn batched_path_is_zero_copy_where_v1_stages() {
        let run = |cfg: KvConfig| {
            let mut kv = KvWorld::new(cfg, CostModel::default()).unwrap();
            for i in 0..32 {
                kv.put(format!("k{i}").as_bytes(), &val(i, 4096)).unwrap();
            }
            kv.flush().unwrap();
            for i in 0..32 {
                assert_eq!(
                    kv.get(format!("k{i}").as_bytes()).unwrap().unwrap(),
                    val(i, 4096)
                );
            }
            (kv.tee().clock().now(), kv.tee().meter().snapshot())
        };
        let (v1_cycles, v1) = run(KvConfig::storage_v1());
        let (batched_cycles, batched) = run(KvConfig::batched(8));
        assert!(v1.blk_copies > 0, "v1 stages every block");
        assert_eq!(batched.blk_copies, 0, "batched path seals in slot");
        assert!(batched.blk_commits < v1.blk_commits);
        assert!(
            batched_cycles < v1_cycles,
            "batched {batched_cycles} !< v1 {v1_cycles}"
        );
    }

    #[test]
    fn host_tamper_on_any_lane_fails_closed() {
        let mut kv =
            KvWorld::new(KvConfig::batched(8).with_queues(2), CostModel::default()).unwrap();
        for i in 0..24 {
            kv.put(format!("k{i}").as_bytes(), &val(i, 4096)).unwrap();
        }
        kv.flush().unwrap();
        for lane in 0..2 {
            for lba in 0..8 {
                kv.lane_disk_mut(lane).tamper(lba, 99, 0x40).unwrap();
            }
        }
        let mut refused = 0;
        for i in 0..24 {
            match kv.get(format!("k{i}").as_bytes()) {
                Err(CioError::Block(BlockError::IntegrityViolation)) => refused += 1,
                Ok(Some(v)) => assert_eq!(v, val(i, 4096), "untouched record {i}"),
                other => panic!("unexpected outcome for k{i}: {other:?}"),
            }
        }
        assert!(refused > 0, "tampered blocks must be refused");
    }

    #[test]
    fn adaptive_gate_goes_cold_when_idle() {
        let mut kv = KvWorld::new(
            KvConfig::batched(8).with_notify(NotifyPolicy::Adaptive),
            CostModel::default(),
        )
        .unwrap();
        for i in 0..16 {
            kv.put(format!("k{i}").as_bytes(), &val(i, 4096)).unwrap();
        }
        kv.flush().unwrap();
        // Idle service rounds: the gate must stop polling after its
        // budget and stay cold (bounded idle spin).
        for _ in 0..200 {
            kv.service().unwrap();
        }
        let stats = kv.gate_stats();
        assert!(!stats[0].0, "idle lane still hot");
        assert!(stats[0].1 <= 64, "idle passes unbounded: {}", stats[0].1);
    }
}
