//! # cio — safe and fast confidential I/O
//!
//! This crate is the reproduction's implementation of the paper's
//! contribution: a confidential I/O framework built around two questions —
//! **P1**: *where* in the stack to place the host/TEE trust boundary, and
//! **P2**: *how* to design the interface at that level so it is safe by
//! construction (§2.3).
//!
//! The answer the paper proposes (§3) — and this crate's flagship
//! configuration — is the **dual boundary**: a hardened L2 interface
//! (the cio-ring) between the TEE and the host, and a lightweight one-way
//! L5 boundary between the I/O-stack compartment and the application
//! compartment inside the TEE, with a mandatory cTLS layer above it. The
//! result is the paper's ternary trust model: compromising the I/O stack
//! gains the host only observability, never application data.
//!
//! Every design the paper positions itself against is implemented as a
//! [`BoundaryKind`] with an identical application-facing API
//! ([`world::World`]), so the experiments compare like for like:
//!
//! | kind | boundary | stack location | transport |
//! |---|---|---|---|
//! | [`BoundaryKind::L5Host`] | L5 | host | socket hypercalls |
//! | [`BoundaryKind::L2VirtioUnhardened`] | L2 | TEE | virtio split queue, no hardening |
//! | [`BoundaryKind::L2VirtioHardened`] | L2 | TEE | virtio + checks + SWIOTLB |
//! | [`BoundaryKind::L2CioRing`] | L2 | TEE (one domain) | cio-ring |
//! | [`BoundaryKind::DualBoundary`] | L2 + intra-TEE L5 | TEE I/O compartment | cio-ring |
//! | [`BoundaryKind::Tunneled`] | L2-in-TLS | TEE | sealed blobs to a gateway |
//! | [`BoundaryKind::Dda`] | device | TEE | SPDM-attested, IDE-protected NIC |
//!
//! Supporting modules: [`dev`] adapts each transport to the netstack's
//! device trait; [`world`] builds complete simulated deployments;
//! [`attacks`] runs the E10 adversary suite; [`storage`] builds the §3.3
//! storage analogue; [`policy`] holds the copy/revocation decision logic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attacks;
pub mod dev;
pub mod kv;
pub mod policy;
pub mod session;
pub mod storage;
pub mod world;

pub use session::{SessionError, SessionId, SessionScratch, SessionTable};
pub use world::{BoundaryKind, World, WorldBuilder, WorldOptions};

/// Recoverable conditions: retrying the same call later is expected to
/// succeed without any reconfiguration.
///
/// The §3.2 "errors are fatal" principle applies to *host-facing* faults —
/// a malformed descriptor or forged index tears the interface down rather
/// than entering a renegotiation dance. Backpressure inside the guest's own
/// stack is not a fault at all, so it gets its own non-fatal channel
/// instead of masquerading as one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transient {
    /// The send path is saturated; nothing was accepted. Drain (poll /
    /// step the world) and retry.
    WouldBlock,
    /// The operation made partial progress and should be retried later
    /// for the remainder.
    AgainLater,
}

impl std::fmt::Display for Transient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Transient::WouldBlock => f.write_str("would block"),
            Transient::AgainLater => f.write_str("partial progress, retry later"),
        }
    }
}

/// Errors raised by the cio framework.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CioError {
    /// Transport-level failure.
    Ring(cio_vring::RingError),
    /// Network-stack failure.
    Net(cio_netstack::NetError),
    /// Memory-model failure.
    Mem(cio_mem::MemError),
    /// TEE/compartment failure.
    Tee(cio_tee::TeeError),
    /// Secure-channel failure.
    Ctls(cio_ctls::CtlsError),
    /// Storage failure.
    Block(cio_block::BlockError),
    /// Host-simulator failure.
    Host(cio_host::HostError),
    /// Session-handle failure: stale, forged, or not-yet-established
    /// handles are typed errors, never aliased state (see
    /// [`session::SessionId`]).
    Session(session::SessionError),
    /// The operation is not supported by this boundary configuration.
    Unsupported(&'static str),
    /// The workload did not make progress within its step budget.
    Timeout(&'static str),
    /// A fatal configuration error (stateless-interface principle: bad
    /// config never becomes a runtime error path).
    Fatal(&'static str),
    /// A recoverable condition — retry later; see [`Transient`].
    Transient(Transient),
}

impl CioError {
    /// Whether this error is recoverable by simply retrying later.
    ///
    /// Everything else is terminal for the operation (and, for host-facing
    /// faults, for the interface — §3.2).
    pub fn is_transient(&self) -> bool {
        matches!(self, CioError::Transient(_))
    }
}

macro_rules! from_err {
    ($variant:ident, $ty:ty) => {
        impl From<$ty> for CioError {
            fn from(e: $ty) -> Self {
                CioError::$variant(e)
            }
        }
    };
}

from_err!(Ring, cio_vring::RingError);
from_err!(Net, cio_netstack::NetError);
from_err!(Mem, cio_mem::MemError);
from_err!(Tee, cio_tee::TeeError);
from_err!(Ctls, cio_ctls::CtlsError);
from_err!(Block, cio_block::BlockError);
from_err!(Host, cio_host::HostError);
from_err!(Session, session::SessionError);

impl std::fmt::Display for CioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CioError::Ring(e) => write!(f, "ring: {e}"),
            CioError::Net(e) => write!(f, "net: {e}"),
            CioError::Mem(e) => write!(f, "mem: {e}"),
            CioError::Tee(e) => write!(f, "tee: {e}"),
            CioError::Ctls(e) => write!(f, "ctls: {e}"),
            CioError::Block(e) => write!(f, "block: {e}"),
            CioError::Host(e) => write!(f, "host: {e}"),
            CioError::Session(e) => write!(f, "session: {e}"),
            CioError::Unsupported(s) => write!(f, "unsupported by this boundary: {s}"),
            CioError::Timeout(s) => write!(f, "no progress: {s}"),
            CioError::Fatal(s) => write!(f, "fatal configuration error: {s}"),
            CioError::Transient(t) => write!(f, "transient: {t}"),
        }
    }
}

impl std::error::Error for CioError {}
