//! The copy policy: "copies are part of the protocol — performed early,
//! but only when necessary, and avoided when possible" (§3.2).
//!
//! The policy engine answers two questions the harness sweeps in E7/E9:
//! when is a receive-side copy cheaper than revoking the pages, and when
//! can a copy be skipped entirely because the layout makes a double fetch
//! impossible?

use cio_mem::pages_for;
use cio_sim::CostModel;

/// Notification economics for the dataplane, re-exported here beside the
/// copy policy because the two answer the same shape of question: the
/// copy policy decides when data movement pays for itself, the notify
/// policy decides when a *boundary crossing* does. `Always` kicks on
/// every publish (one exit per batch), `EventIdx` suppresses kicks while
/// the consumer is provably awake (one exit covers many batches), and
/// `Adaptive` additionally lets the host stop polling provably idle
/// queues within a bounded idle-spin budget. See
/// [`cio_vring::cioring::NotifyPolicy`] for the mechanism.
pub use cio_vring::cioring::NotifyPolicy;

/// Receive-side delivery decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delivery {
    /// Copy the payload into private memory early.
    CopyEarly,
    /// Un-share the payload pages and process in place.
    Revoke,
}

/// The copy/revocation policy derived from the platform cost model.
#[derive(Debug, Clone)]
pub struct CopyPolicy {
    /// Payloads at or above this size are delivered by revocation.
    pub revoke_threshold: usize,
}

impl CopyPolicy {
    /// Derives the crossover from the cost model: the smallest payload for
    /// which the *full* revocation cycle — un-share plus the eventual
    /// re-share that returns the pages to the pool — beats the copy.
    pub fn from_cost_model(cost: &CostModel) -> Self {
        let mut threshold = usize::MAX;
        let mut bytes = 256;
        while bytes <= 4 * 1024 * 1024 {
            let pages = pages_for(bytes);
            let revoke_cycle = cost.unshare(pages).saturating_add(cost.share(pages));
            if revoke_cycle <= cost.copy(bytes) {
                threshold = bytes;
                break;
            }
            bytes += 256;
        }
        CopyPolicy {
            revoke_threshold: threshold,
        }
    }

    /// Policy that always copies (revocation disabled).
    pub fn always_copy() -> Self {
        CopyPolicy {
            revoke_threshold: usize::MAX,
        }
    }

    /// Picks the delivery mechanism for a payload of `len` bytes.
    pub fn delivery(&self, len: usize) -> Delivery {
        if len >= self.revoke_threshold {
            Delivery::Revoke
        } else {
            Delivery::CopyEarly
        }
    }

    /// Whether a transmit copy can be skipped for the given placement:
    /// true when the payload region is single-writer and consumed with a
    /// single fetch (shared-area and indirect modes of the cio-ring), so a
    /// double fetch is impossible by layout.
    pub fn tx_copy_needed(single_fetch_layout: bool) -> bool {
        !single_fetch_layout
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_model_has_a_crossover() {
        let p = CopyPolicy::from_cost_model(&CostModel::default());
        assert!(
            p.revoke_threshold > cio_mem::PAGE_SIZE,
            "{}",
            p.revoke_threshold
        );
        assert!(p.revoke_threshold < 1024 * 1024, "{}", p.revoke_threshold);
        assert_eq!(p.delivery(256), Delivery::CopyEarly);
        assert_eq!(p.delivery(p.revoke_threshold), Delivery::Revoke);
    }

    #[test]
    fn expensive_unshare_never_revokes() {
        let cost = CostModel {
            page_unshare: cio_sim::Cycles(1_000_000),
            tlb_shootdown: cio_sim::Cycles(1_000_000),
            ..CostModel::default()
        };
        let p = CopyPolicy::from_cost_model(&cost);
        assert_eq!(p.revoke_threshold, usize::MAX);
        assert_eq!(p.delivery(1 << 20), Delivery::CopyEarly);
    }

    #[test]
    fn cheap_unshare_revokes_sooner() {
        let cheap = CostModel {
            page_unshare: cio_sim::Cycles(100),
            tlb_shootdown: cio_sim::Cycles(100),
            ..CostModel::default()
        };
        let a = CopyPolicy::from_cost_model(&CostModel::default());
        let b = CopyPolicy::from_cost_model(&cheap);
        assert!(b.revoke_threshold < a.revoke_threshold);
    }

    #[test]
    fn tx_copy_policy() {
        assert!(!CopyPolicy::tx_copy_needed(true));
        assert!(CopyPolicy::tx_copy_needed(false));
    }

    #[test]
    fn always_copy_policy() {
        let p = CopyPolicy::always_copy();
        assert_eq!(p.delivery(10 << 20), Delivery::CopyEarly);
    }
}
