//! Deterministic session load generation.
//!
//! E21 needs arrival processes and record-size distributions that look
//! like production traffic (bursty arrivals, heavy-tailed sizes) while
//! staying bit-reproducible: the same seed must produce the same
//! open/close order, the same record bytes, the same meters, and
//! byte-identical telemetry exports on every run. Everything here draws
//! from one [`cio_sim::SimRng`] in a fixed call order, so determinism is
//! structural rather than incidental.

use cio_sim::SimRng;

/// How new sessions arrive.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Arrival {
    /// Open-loop: sessions arrive at a fixed expected rate per tick,
    /// regardless of how many are already live (the arrival process does
    /// not wait for the system — the honest way to find a saturation
    /// point).
    Open {
        /// Expected arrivals per tick; the fractional part is realized
        /// as a Bernoulli draw so e.g. `2.5` alternates 2s and 3s in a
        /// deterministic, seed-dependent pattern.
        per_tick: f64,
    },
    /// Closed-loop: a fixed population of sessions is maintained; every
    /// close is immediately backfilled by an open. This is the mode that
    /// holds concurrency at exactly N while churn turns slots over.
    Closed {
        /// Target live-session population.
        population: usize,
    },
}

/// Configuration for a [`LoadGen`].
#[derive(Debug, Clone, PartialEq)]
pub struct LoadGenConfig {
    /// RNG seed; everything the generator decides derives from it.
    pub seed: u64,
    /// Arrival process.
    pub arrival: Arrival,
    /// Per-session, per-tick close probability. `0.0` means sessions
    /// live forever; `0.01` means a mean lifetime of ~100 ticks.
    pub churn: f64,
    /// Smallest record payload, bytes.
    pub size_min: usize,
    /// Largest record payload, bytes (bounds the Pareto tail so records
    /// always fit a ring slot).
    pub size_max: usize,
    /// Pareto shape parameter α for record sizes. Smaller α ⇒ heavier
    /// tail; `1.2` gives the "mostly-small, occasionally-huge" mix that
    /// real TLS record traces show.
    pub size_alpha: f64,
}

impl Default for LoadGenConfig {
    fn default() -> Self {
        LoadGenConfig {
            seed: 0xE21,
            arrival: Arrival::Closed { population: 256 },
            churn: 0.02,
            size_min: 64,
            size_max: 1_280,
            size_alpha: 1.2,
        }
    }
}

/// A deterministic open/closed-loop session workload generator.
///
/// The generator owns its RNG; callers interrogate it in a fixed order
/// each tick (arrivals, then per-session close decisions, then record
/// sizes) and the stream of answers is a pure function of the seed.
pub struct LoadGen {
    cfg: LoadGenConfig,
    rng: SimRng,
}

impl LoadGen {
    /// Creates a generator from its config.
    pub fn new(cfg: LoadGenConfig) -> Self {
        let rng = SimRng::seed_from(cfg.seed);
        LoadGen { cfg, rng }
    }

    /// The configuration this generator was built from.
    pub fn config(&self) -> &LoadGenConfig {
        &self.cfg
    }

    /// How many sessions arrive this tick, given the current live count.
    ///
    /// Open-loop draws from the configured rate; closed-loop tops the
    /// population back up to its target.
    pub fn arrivals(&mut self, live: usize) -> usize {
        match self.cfg.arrival {
            Arrival::Open { per_tick } => {
                let whole = per_tick.max(0.0).floor();
                let frac = per_tick.max(0.0) - whole;
                whole as usize + usize::from(self.rng.chance(frac))
            }
            Arrival::Closed { population } => population.saturating_sub(live),
        }
    }

    /// Whether one live session closes this tick (call once per live
    /// session, in deterministic session order).
    pub fn should_close(&mut self) -> bool {
        self.rng.chance(self.cfg.churn)
    }

    /// Draws one record payload size from the bounded-Pareto
    /// distribution on `[size_min, size_max]`.
    ///
    /// Uses the inverse CDF `x = L / (1 - U·(1 - (L/H)^α))^(1/α)` with a
    /// 53-bit uniform `U`, so the draw is exact, branch-free, and
    /// identical across platforms.
    pub fn record_size(&mut self) -> usize {
        let l = self.cfg.size_min.max(1) as f64;
        let h = self.cfg.size_max.max(self.cfg.size_min.max(1)) as f64;
        let alpha = self.cfg.size_alpha.max(1e-6);
        let u = (self.rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let x = l / (1.0 - u * (1.0 - (l / h).powf(alpha))).powf(1.0 / alpha);
        (x as usize).clamp(self.cfg.size_min, self.cfg.size_max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(cfg: LoadGenConfig, ticks: usize) -> (Vec<usize>, Vec<bool>, Vec<usize>) {
        let mut g = LoadGen::new(cfg);
        let mut arrivals = Vec::new();
        let mut closes = Vec::new();
        let mut sizes = Vec::new();
        let mut live = 0usize;
        for _ in 0..ticks {
            let a = g.arrivals(live);
            live += a;
            arrivals.push(a);
            let c = g.should_close();
            if c {
                live = live.saturating_sub(1);
            }
            closes.push(c);
            sizes.push(g.record_size());
        }
        (arrivals, closes, sizes)
    }

    #[test]
    fn same_seed_same_trace() {
        let cfg = LoadGenConfig {
            arrival: Arrival::Open { per_tick: 2.5 },
            ..LoadGenConfig::default()
        };
        assert_eq!(drain(cfg.clone(), 500), drain(cfg, 500));
    }

    #[test]
    fn different_seed_different_trace() {
        let a = LoadGenConfig::default();
        let b = LoadGenConfig {
            seed: a.seed + 1,
            ..a.clone()
        };
        assert_ne!(drain(a, 500), drain(b, 500));
    }

    #[test]
    fn closed_loop_tops_up_population() {
        let mut g = LoadGen::new(LoadGenConfig {
            arrival: Arrival::Closed { population: 100 },
            ..LoadGenConfig::default()
        });
        assert_eq!(g.arrivals(0), 100);
        assert_eq!(g.arrivals(97), 3);
        assert_eq!(g.arrivals(100), 0);
        assert_eq!(g.arrivals(150), 0, "overfull population never drains here");
    }

    #[test]
    fn open_loop_realizes_fractional_rate() {
        let mut g = LoadGen::new(LoadGenConfig {
            arrival: Arrival::Open { per_tick: 2.5 },
            ..LoadGenConfig::default()
        });
        let total: usize = (0..10_000).map(|_| g.arrivals(0)).sum();
        // Expected 25 000; the Bernoulli fraction keeps it close.
        assert!((24_000..=26_000).contains(&total), "total {total}");
    }

    #[test]
    fn record_sizes_stay_bounded_and_heavy_tailed() {
        let cfg = LoadGenConfig::default();
        let (lo, hi) = (cfg.size_min, cfg.size_max);
        let mut g = LoadGen::new(cfg);
        let sizes: Vec<usize> = (0..20_000).map(|_| g.record_size()).collect();
        assert!(sizes.iter().all(|&s| (lo..=hi).contains(&s)));
        // Heavy tail: the median sits near the minimum while the maximum
        // reaches (close to) the cap.
        let mut sorted = sizes.clone();
        sorted.sort_unstable();
        let median = sorted[sorted.len() / 2];
        assert!(median < (lo + hi) / 2, "median {median} not head-heavy");
        assert!(*sorted.last().unwrap() > hi / 2, "tail never realized");
    }

    #[test]
    fn zero_churn_never_closes() {
        let mut g = LoadGen::new(LoadGenConfig {
            churn: 0.0,
            ..LoadGenConfig::default()
        });
        assert!((0..1_000).all(|_| !g.should_close()));
    }
}
