//! The session control plane: RSS-sharded generational flow table,
//! deterministic load generation, and the E21 session-scale harness.
//!
//! Everything E16–E20 measures runs over a handful of long-lived flows;
//! this module is what makes the "fast confidential I/O" claim honest at
//! production session counts. Three requirements drive the design:
//!
//! * **O(1) hot-path lookup.** A [`SessionTable`] is sharded by RSS lane
//!   (the same symmetric flow hash that steers the dataplane), and a
//!   [`SessionId`] encodes `(shard, slot)` directly — a lookup is two
//!   array indexes and a generation compare, never a probe chain. The
//!   table counts lookups and probes so experiments can *assert*
//!   `probes / lookups == 1` instead of merely claiming it.
//! * **Churn as steady state.** Slots are reclaimed on close through
//!   per-shard free lists, so peak table memory is bounded by peak
//!   concurrency, not total sessions ever created — and the table proves
//!   it through [`SessionTable::capacity`] / [`SessionTable::created`].
//! * **No silent aliasing.** Every slot carries a generation; a stale
//!   [`SessionId`] held across close/reuse fails with a typed
//!   [`SessionError`] instead of reading a stranger's stream.

mod loadgen;
mod plane;

pub use loadgen::{Arrival, LoadGen, LoadGenConfig};
pub use plane::{SessionPlane, SessionPlaneConfig, SessionPlaneReport};

/// A generational handle to one session in a [`SessionTable`].
///
/// The handle is `Copy` and remains valid until the session closes; after
/// the slot is reclaimed (and possibly reissued to a new session), any use
/// of the old handle returns [`SessionError::Closed`] — generations make
/// aliasing a typed error instead of silent cross-session state access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SessionId {
    /// `(slot_in_shard << shard_bits) | shard`: the low bits are the RSS
    /// shard, so the steering lane is recoverable from the handle alone.
    index: u32,
    /// The slot generation this handle was issued under.
    generation: u32,
}

impl SessionId {
    /// Builds a handle from raw parts. Intended for adversarial
    /// harnesses and tests that probe the table with forged handles;
    /// a forged handle never resolves to a live session — it returns
    /// [`SessionError::Unknown`] or [`SessionError::Closed`].
    pub fn from_raw_parts(index: u32, generation: u32) -> Self {
        SessionId { index, generation }
    }

    /// The packed `(slot, shard)` index (diagnostic).
    pub fn index(&self) -> u32 {
        self.index
    }

    /// The generation this handle was issued under (diagnostic).
    pub fn generation(&self) -> u32 {
        self.generation
    }
}

impl std::fmt::Display for SessionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "s{}g{}", self.index, self.generation)
    }
}

/// Why a [`SessionId`] failed to resolve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionError {
    /// The handle does not name any slot this table ever issued (out of
    /// range, or a generation from the future — a forged handle).
    Unknown,
    /// The handle named a real session that has since closed (its slot
    /// may have been reclaimed by a newer session; the newer session is
    /// unreachable through the stale handle).
    Closed,
    /// The session exists but its cTLS handshake has not completed, so
    /// application data cannot flow yet.
    Handshaking,
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::Unknown => f.write_str("unknown session handle"),
            SessionError::Closed => f.write_str("session closed (stale handle)"),
            SessionError::Handshaking => f.write_str("session still handshaking"),
        }
    }
}

impl std::error::Error for SessionError {}

struct Slot<T> {
    /// Incremented on every reclaim; handles carry the generation they
    /// were issued under. Starts at 1 so a zeroed/default handle never
    /// resolves.
    generation: u32,
    value: Option<T>,
}

struct Shard<T> {
    slots: Vec<Slot<T>>,
    /// Reclaimed slot indexes awaiting reuse (LIFO: the hottest slot is
    /// reissued first, which keeps the table compact under churn).
    free: Vec<u32>,
}

/// An RSS-sharded, generation-checked flow table.
///
/// Shard count must be a power of two (it mirrors the dataplane queue
/// count); a session's shard is fixed at insert and encoded in the low
/// bits of its [`SessionId`], so `id → shard` is a mask, `id → slot` a
/// shift, and the whole lookup is O(1) with exactly one probe.
pub struct SessionTable<T> {
    shards: Vec<Shard<T>>,
    shard_bits: u32,
    created: u64,
    reclaimed: u64,
    lookups: u64,
    probes: u64,
    /// Live sessions per shard (index = shard = RSS lane).
    shard_live: Vec<u64>,
    /// Peak concurrent sessions per shard.
    shard_peak: Vec<u64>,
}

impl<T> SessionTable<T> {
    /// Creates a table with `shards` shards (power of two, ≥ 1).
    ///
    /// # Panics
    ///
    /// If `shards` is zero or not a power of two (construction-time
    /// misconfiguration, same contract as [`cio_sim::Lanes`]).
    pub fn new(shards: usize) -> Self {
        assert!(
            shards > 0 && shards.is_power_of_two(),
            "shard count must be a non-zero power of two"
        );
        SessionTable {
            shards: (0..shards)
                .map(|_| Shard {
                    slots: Vec::new(),
                    free: Vec::new(),
                })
                .collect(),
            shard_bits: shards.trailing_zeros(),
            created: 0,
            reclaimed: 0,
            lookups: 0,
            probes: 0,
            shard_live: vec![0; shards],
            shard_peak: vec![0; shards],
        }
    }

    /// Shard count.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Inserts a session into `shard`, reusing a reclaimed slot when one
    /// exists; returns its generational handle.
    pub fn insert(&mut self, shard: usize, value: T) -> SessionId {
        let mask = self.shards.len() - 1;
        let shard = shard & mask;
        let s = &mut self.shards[shard];
        let slot_idx = match s.free.pop() {
            Some(idx) => {
                s.slots[idx as usize].value = Some(value);
                idx
            }
            None => {
                let idx = u32::try_from(s.slots.len()).expect("slot index fits u32");
                s.slots.push(Slot {
                    generation: 1,
                    value: Some(value),
                });
                idx
            }
        };
        self.created += 1;
        self.shard_live[shard] += 1;
        if self.shard_live[shard] > self.shard_peak[shard] {
            self.shard_peak[shard] = self.shard_live[shard];
        }
        SessionId {
            index: (slot_idx << self.shard_bits) | shard as u32,
            generation: self.shards[shard].slots[slot_idx as usize].generation,
        }
    }

    /// The RSS shard (= dataplane lane) encoded in a handle. Purely
    /// arithmetic — valid even for stale handles, which is what lets
    /// callers route a close to the right lane without a lookup.
    pub fn shard_of(&self, id: SessionId) -> usize {
        (id.index as usize) & (self.shards.len() - 1)
    }

    fn locate(&self, id: SessionId) -> Result<(usize, usize), SessionError> {
        let shard = (id.index as usize) & (self.shards.len() - 1);
        let slot = (id.index >> self.shard_bits) as usize;
        let Some(s) = self.shards[shard].slots.get(slot) else {
            return Err(SessionError::Unknown);
        };
        if id.generation < s.generation {
            // The slot moved on: this handle's session closed.
            return Err(SessionError::Closed);
        }
        if id.generation > s.generation {
            // A generation this table never issued: forged.
            return Err(SessionError::Unknown);
        }
        if s.value.is_none() {
            // Current generation but vacant: reclaimed without reissue
            // can't produce this (reclaim bumps the generation), so the
            // handle was never issued.
            return Err(SessionError::Unknown);
        }
        Ok((shard, slot))
    }

    /// Resolves a handle without touching the lookup counters (control
    /// paths, assertions).
    ///
    /// # Errors
    ///
    /// [`SessionError`] as classified by the generation check.
    pub fn get(&self, id: SessionId) -> Result<&T, SessionError> {
        let (shard, slot) = self.locate(id)?;
        Ok(self.shards[shard].slots[slot]
            .value
            .as_ref()
            .expect("located slot is occupied"))
    }

    /// Resolves a handle on the hot path: one probe, counted, so
    /// experiments can assert the O(1) claim from the table's own
    /// bookkeeping.
    ///
    /// # Errors
    ///
    /// [`SessionError`] as classified by the generation check.
    pub fn get_mut(&mut self, id: SessionId) -> Result<&mut T, SessionError> {
        self.lookups += 1;
        self.probes += 1;
        let (shard, slot) = self.locate(id)?;
        Ok(self.shards[shard].slots[slot]
            .value
            .as_mut()
            .expect("located slot is occupied"))
    }

    /// Closes a session: the value is returned, the generation advances
    /// (invalidating every outstanding copy of the handle), and the slot
    /// joins the shard's free list for reuse.
    ///
    /// # Errors
    ///
    /// [`SessionError`] as classified by the generation check.
    pub fn remove(&mut self, id: SessionId) -> Result<T, SessionError> {
        let (shard, slot) = self.locate(id)?;
        let s = &mut self.shards[shard].slots[slot];
        let value = s.value.take().expect("located slot is occupied");
        s.generation = s.generation.wrapping_add(1);
        self.shards[shard].free.push(slot as u32);
        self.reclaimed += 1;
        self.shard_live[shard] -= 1;
        Ok(value)
    }

    /// Live sessions across all shards.
    pub fn live(&self) -> u64 {
        self.shard_live.iter().sum()
    }

    /// Peak concurrent sessions (sum of per-shard peaks — an upper bound
    /// on the true global peak, and exactly the quantity that bounds
    /// table memory).
    pub fn peak_live(&self) -> u64 {
        self.shard_peak.iter().sum()
    }

    /// Slots ever allocated (the table's memory footprint, in slots).
    /// Reclamation keeps this bounded by peak concurrency while
    /// [`SessionTable::created`] grows without bound under churn.
    pub fn capacity(&self) -> usize {
        self.shards.iter().map(|s| s.slots.len()).sum()
    }

    /// Sessions ever inserted.
    pub fn created(&self) -> u64 {
        self.created
    }

    /// Sessions closed and reclaimed.
    pub fn reclaimed(&self) -> u64 {
        self.reclaimed
    }

    /// Hot-path lookups performed through [`SessionTable::get_mut`].
    pub fn lookups(&self) -> u64 {
        self.lookups
    }

    /// Slot probes performed by those lookups. The table is direct-mapped
    /// by construction, so this equals [`SessionTable::lookups`] — the
    /// invariant E21 asserts.
    pub fn probes(&self) -> u64 {
        self.probes
    }

    /// Live sessions per shard (index = shard = RSS lane), as a slice so
    /// gauge exporters read it allocation-free.
    pub fn shard_live(&self) -> &[u64] {
        &self.shard_live
    }

    /// Peak concurrent sessions per shard.
    pub fn shard_peak(&self) -> &[u64] {
        &self.shard_peak
    }

    /// Appends every live session's handle to `out` in deterministic
    /// (shard, slot) order. The caller owns (and reuses) the buffer, so
    /// steady-state iteration allocates nothing once it has warmed.
    pub fn collect_ids(&self, out: &mut Vec<SessionId>) {
        for (shard_idx, shard) in self.shards.iter().enumerate() {
            for (slot_idx, slot) in shard.slots.iter().enumerate() {
                if slot.value.is_some() {
                    out.push(SessionId {
                        index: ((slot_idx as u32) << self.shard_bits) | shard_idx as u32,
                        generation: slot.generation,
                    });
                }
            }
        }
    }
}

/// A reusable receive buffer for the non-allocating `recv_into` family:
/// the session-layer analogue of [`cio_ctls::RecordScratch`]. Hold one
/// per consumer loop and feed it to every call — steady-state receives
/// then allocate nothing.
#[derive(Debug, Default)]
pub struct SessionScratch {
    pub(crate) buf: Vec<u8>,
}

impl SessionScratch {
    /// An empty scratch.
    pub fn new() -> Self {
        SessionScratch::default()
    }

    /// An empty scratch with pre-reserved capacity (warm it once, never
    /// allocate again).
    pub fn with_capacity(cap: usize) -> Self {
        SessionScratch {
            buf: Vec::with_capacity(cap),
        }
    }

    /// The received bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }

    /// Received byte count.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the scratch holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Clears the contents, retaining capacity.
    pub fn clear(&mut self) {
        self.buf.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_lookup_remove_roundtrip() {
        let mut t: SessionTable<u32> = SessionTable::new(4);
        let a = t.insert(1, 10);
        let b = t.insert(1, 20);
        let c = t.insert(3, 30);
        assert_eq!(t.shard_of(a), 1);
        assert_eq!(t.shard_of(c), 3);
        assert_eq!(*t.get(a).unwrap(), 10);
        assert_eq!(*t.get_mut(b).unwrap(), 20);
        assert_eq!(t.live(), 3);
        assert_eq!(t.shard_live(), &[0, 2, 0, 1]);
        assert_eq!(t.remove(b).unwrap(), 20);
        assert_eq!(t.live(), 2);
        assert_eq!(*t.get(a).unwrap(), 10, "neighbour survives removal");
    }

    #[test]
    fn stale_handle_is_closed_not_aliased() {
        let mut t: SessionTable<&'static str> = SessionTable::new(2);
        let old = t.insert(0, "first");
        t.remove(old).unwrap();
        // The slot is reissued to a new session...
        let new = t.insert(0, "second");
        assert_eq!(new.index(), old.index(), "slot was reclaimed");
        assert_ne!(new.generation(), old.generation());
        // ...and the stale handle can never reach it.
        assert_eq!(t.get(old), Err(SessionError::Closed));
        assert_eq!(t.get_mut(old), Err(SessionError::Closed));
        assert_eq!(t.remove(old), Err(SessionError::Closed));
        assert_eq!(*t.get(new).unwrap(), "second");
    }

    #[test]
    fn forged_handles_are_unknown() {
        let mut t: SessionTable<u8> = SessionTable::new(2);
        let real = t.insert(0, 1);
        // Out-of-range slot.
        let oob = SessionId {
            index: 99 << 1,
            generation: 1,
        };
        assert_eq!(t.get(oob), Err(SessionError::Unknown));
        // Future generation on a real slot.
        let future = SessionId {
            index: real.index,
            generation: real.generation + 7,
        };
        assert_eq!(t.get(future), Err(SessionError::Unknown));
        // Zeroed/default-shaped handle (generation 0 predates every slot).
        let zero = SessionId {
            index: real.index,
            generation: 0,
        };
        assert_eq!(t.get(zero), Err(SessionError::Closed));
    }

    #[test]
    fn slots_are_reclaimed_under_churn() {
        let mut t: SessionTable<u64> = SessionTable::new(4);
        // 4k lifecycles with at most 8 concurrent: capacity must track
        // the peak, not the total.
        let mut live = Vec::new();
        for i in 0..4096u64 {
            live.push(t.insert((i % 4) as usize, i));
            if live.len() == 8 {
                for id in live.drain(..) {
                    t.remove(id).unwrap();
                }
            }
        }
        assert_eq!(t.created(), 4096);
        assert!(t.capacity() <= 8, "capacity {} exceeds peak", t.capacity());
        assert_eq!(t.peak_live(), 8);
        assert_eq!(t.reclaimed() + t.live(), t.created());
    }

    #[test]
    fn lookups_probe_exactly_once() {
        let mut t: SessionTable<u8> = SessionTable::new(8);
        let ids: Vec<_> = (0..64).map(|i| t.insert(i % 8, i as u8)).collect();
        for &id in &ids {
            t.get_mut(id).unwrap();
        }
        assert_eq!(t.lookups(), 64);
        assert_eq!(t.probes(), t.lookups(), "direct-mapped: one probe each");
    }

    #[test]
    fn collect_ids_is_deterministic_shard_slot_order() {
        let mut t: SessionTable<u8> = SessionTable::new(2);
        let a = t.insert(1, 0);
        let b = t.insert(0, 1);
        let c = t.insert(1, 2);
        let mut ids = Vec::new();
        t.collect_ids(&mut ids);
        assert_eq!(ids, vec![b, a, c], "shard 0 first, then shard 1 slots");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_shards_panic() {
        let _ = SessionTable::<u8>::new(3);
    }
}
