//! The E21 session-scale harness: 10k+ churning cTLS sessions over
//! RSS-sharded cio rings.
//!
//! [`SessionPlane`] is to the session control plane what the zero-alloc
//! harness is to the record dataplane: a standalone, deterministic rig
//! that drives the *real* components — [`ClientHandshake`] /
//! [`ServerHandshake`] key exchanges (server responses batched under one
//! ephemeral via [`ServerHandshake::respond_batch`]), [`Channel`] records
//! sealed in slot and opened in place on per-shard cio rings, automatic
//! rekeying, and a generational [`SessionTable`] — at session counts the
//! full TCP world cannot reach in test time. A [`LoadGen`] supplies
//! arrivals, heavy-tailed record sizes, and churn; everything derives
//! from one seed, so two runs export byte-identical telemetry.
//!
//! The harness exists to make three claims measurable rather than
//! asserted: flow-table lookups stay O(1) from 100 to 10 000 live
//! sessions (`probes == lookups`, constant virtual cycles per lookup),
//! table memory is bounded by peak concurrency under continuous churn
//! (`capacity ≤ peak_live` while `created` grows), and p99 record RTT
//! holds an SLO while sessions churn underneath (from the per-shard
//! telemetry histograms).

use cio_ctls::{
    Channel, ClientHandshake, RecordScratch, ServerHandshake, ServerIdentity, SimHooks,
    RECORD_OVERHEAD,
};
use cio_mem::{GuestAddr, GuestMemory, GuestView, HostView, PAGE_SIZE};
use cio_netstack::rss::flow_hash;
use cio_netstack::Ipv4Addr;
use cio_sim::{Clock, CostModel, Cycles, Meter, SimRng, Stage, Telemetry};
use cio_tee::Measurement;
use cio_vring::cioring::{CioRing, Consumer, DataMode, Producer, RingConfig};

use super::{LoadGen, LoadGenConfig, SessionId, SessionTable};
use crate::CioError;

/// The plane's attestation platform key (the model's root of trust).
const PLANE_KEY: [u8; 32] = [0x21; 32];
/// The image the plane's server side measures as.
const PLANE_IMAGE: &[u8] = b"cio-session-plane-v1";

/// Configuration for a [`SessionPlane`].
#[derive(Debug, Clone, PartialEq)]
pub struct SessionPlaneConfig {
    /// RSS shard count (power of two): one cio ring pair per shard.
    pub shards: usize,
    /// Workload shape: arrivals, churn, record sizes.
    pub load: LoadGenConfig,
    /// Per-session rekey interval (records per epoch); `None` disables
    /// rotation. Both channel directions rotate in lockstep at the same
    /// sequence numbers, so epochs are deterministic.
    pub rekey_interval: Option<u64>,
    /// How many ClientHellos the server amortizes under one ephemeral
    /// key per [`ServerHandshake::respond_batch`] call.
    pub handshake_batch: usize,
}

impl Default for SessionPlaneConfig {
    fn default() -> Self {
        SessionPlaneConfig {
            shards: 4,
            load: LoadGenConfig::default(),
            rekey_interval: Some(1 << 10),
            handshake_batch: 16,
        }
    }
}

/// One live session: both channel endpoints (the plane simulates client
/// and server sides of the echo), plus bookkeeping.
struct Session {
    client: Channel,
    server: Channel,
    records: u64,
}

/// One RSS shard's transport: a request ring (client produces, server
/// consumes) and an echo ring (server produces, client consumes), each
/// in its own shared-area guest memory, exactly the dataplane's layout.
struct ShardLane {
    req_tx: Producer<GuestView>,
    req_rx: Consumer<HostView>,
    echo_tx: Producer<HostView>,
    echo_rx: Consumer<GuestView>,
    /// Keeps the shard's memories (and their meters) alive.
    _req_mem: GuestMemory,
    _echo_mem: GuestMemory,
}

/// Evidence a [`SessionPlane`] run leaves behind (see module docs for
/// what each field proves).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionPlaneReport {
    /// Ticks executed.
    pub ticks: u64,
    /// Sessions ever opened.
    pub created: u64,
    /// Sessions closed and reclaimed.
    pub reclaimed: u64,
    /// Sessions live at the end of the run.
    pub live: u64,
    /// Peak concurrent sessions (sum of per-shard peaks).
    pub peak_live: u64,
    /// Flow-table slots ever allocated — the memory-bound claim:
    /// `capacity ≤ peak_live` no matter how large `created` grows.
    pub capacity: u64,
    /// Hot-path flow-table lookups.
    pub lookups: u64,
    /// Slot probes those lookups performed (`== lookups` ⇔ O(1)).
    pub probes: u64,
    /// Virtual cycles charged per lookup (the modeled hot-path cost;
    /// constant across population by construction, asserted anyway).
    pub lookup_cycles: u64,
    /// Completed handshakes.
    pub handshakes: u64,
    /// `respond_batch` calls those handshakes were amortized into.
    pub handshake_batches: u64,
    /// Echo round trips completed.
    pub records_echoed: u64,
    /// Payload bytes echoed.
    pub bytes_echoed: u64,
    /// Highest key epoch any session reached (0 = never rekeyed).
    pub max_epoch: u64,
    /// Virtual time the run consumed.
    pub elapsed: Cycles,
}

/// The E21 harness. Construct, [`SessionPlane::run`] some ticks, then
/// read the [`SessionPlane::report`], [`SessionPlane::telemetry`] (p99
/// RTT histograms, session gauges), and [`SessionPlane::meter`].
pub struct SessionPlane {
    cfg: SessionPlaneConfig,
    clock: Clock,
    cost: CostModel,
    meter: Meter,
    telemetry: Telemetry,
    hooks: SimHooks,
    identity: ServerIdentity,
    table: SessionTable<Session>,
    lanes: Vec<ShardLane>,
    loadgen: LoadGen,
    /// Handshake entropy; independent stream from the loadgen's RNG so
    /// workload shape and key material don't perturb each other.
    rng: SimRng,
    /// Monotonic session sequence number; drives the synthetic flow
    /// 4-tuple whose RSS hash picks the shard.
    seq: u64,
    /// Reused buffers: live-id iteration, payload staging, plaintext and
    /// echo scratches. Steady state touches the heap only when a buffer
    /// grows past its high-water mark.
    ids: Vec<SessionId>,
    payload: Vec<u8>,
    plain: RecordScratch,
    echo: RecordScratch,
    started: Cycles,
    ticks: u64,
    handshakes: u64,
    handshake_batches: u64,
    records_echoed: u64,
    bytes_echoed: u64,
    max_epoch: u64,
}

impl SessionPlane {
    /// Builds the plane: per-shard ring pairs, telemetry domain, load
    /// generator.
    ///
    /// # Errors
    ///
    /// Ring construction errors (misconfigured geometry) — never for the
    /// default config.
    ///
    /// # Panics
    ///
    /// If `cfg.shards` is not a non-zero power of two (same contract as
    /// [`SessionTable::new`]).
    pub fn new(cfg: SessionPlaneConfig) -> Result<Self, CioError> {
        let clock = Clock::new();
        let cost = CostModel::default();
        let meter = Meter::new();
        let telemetry = Telemetry::new(clock.clone(), cfg.shards);
        telemetry.attach_meter(&meter);
        let hooks = SimHooks {
            clock: clock.clone(),
            cost: cost.clone(),
            meter: meter.clone(),
            telemetry: telemetry.clone(),
        };
        let mut lanes = Vec::with_capacity(cfg.shards);
        for shard in 0..cfg.shards {
            lanes.push(ShardLane::new(&clock, &cost, &meter, &telemetry, shard)?);
        }
        let loadgen = LoadGen::new(cfg.load.clone());
        let rng = SimRng::seed_from(cfg.load.seed ^ 0x5e55_109f);
        let started = clock.now();
        Ok(SessionPlane {
            table: SessionTable::new(cfg.shards),
            identity: ServerIdentity {
                platform_key: PLANE_KEY,
                measurement: Measurement::of(PLANE_IMAGE),
            },
            cfg,
            clock,
            cost,
            meter,
            telemetry,
            hooks,
            lanes,
            loadgen,
            rng,
            seq: 0,
            ids: Vec::new(),
            payload: Vec::new(),
            plain: RecordScratch::new(),
            echo: RecordScratch::new(),
            started,
            ticks: 0,
            handshakes: 0,
            handshake_batches: 0,
            records_echoed: 0,
            bytes_echoed: 0,
            max_epoch: 0,
        })
    }

    /// The telemetry domain (RTT histograms per shard, session gauges).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// The shared operation meter.
    pub fn meter(&self) -> &Meter {
        &self.meter
    }

    /// The shared virtual clock.
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    /// Runs `ticks` workload ticks: churn closes, (batched) handshake
    /// arrivals, then one echo round trip per live session.
    ///
    /// # Errors
    ///
    /// Transport/ring errors only — a per-session crypto failure
    /// quarantines that session (metered `session_failures`) instead of
    /// failing the run.
    pub fn run(&mut self, ticks: u64) -> Result<(), CioError> {
        for _ in 0..ticks {
            self.tick()?;
        }
        Ok(())
    }

    /// One workload tick.
    fn tick(&mut self) -> Result<(), CioError> {
        // 1. Churn: every live session draws its close decision, in
        //    deterministic (shard, slot) order.
        self.ids.clear();
        self.table.collect_ids(&mut self.ids);
        for i in 0..self.ids.len() {
            if self.loadgen.should_close() {
                self.close_session(self.ids[i]);
            }
        }

        // 2. Arrivals, handshaken in batches: the server amortizes one
        //    ephemeral key generation across each batch.
        let want = self.loadgen.arrivals(self.table.live() as usize);
        let mut opened = 0;
        while opened < want {
            let n = (want - opened).min(self.cfg.handshake_batch.max(1));
            self.open_batch(n)?;
            opened += n;
        }

        // 3. Data: one echo round trip per live session.
        self.ids.clear();
        self.table.collect_ids(&mut self.ids);
        for i in 0..self.ids.len() {
            self.pump_record(self.ids[i])?;
        }

        // 4. Publish session gauges (last-write-wins, per tick).
        self.telemetry.publish_sessions(
            self.table.shard_live(),
            self.table.shard_peak(),
            self.table.created(),
            self.table.reclaimed(),
            self.table.capacity() as u64,
        );
        self.ticks += 1;
        Ok(())
    }

    /// Opens `n` sessions through one batched server response.
    fn open_batch(&mut self, n: usize) -> Result<(), CioError> {
        let mut clients = Vec::with_capacity(n);
        for _ in 0..n {
            let mut entropy = [0u8; 64];
            self.rng.fill_bytes(&mut entropy);
            clients.push(ClientHandshake::start(entropy, Some(self.hooks.clone())));
        }
        let hellos: Vec<&[u8]> = clients.iter().map(|(h, _)| h.as_slice()).collect();
        let mut server_entropy = [0u8; 64];
        self.rng.fill_bytes(&mut server_entropy);
        let responses = ServerHandshake::respond_batch(
            &hellos,
            &self.identity,
            server_entropy,
            Some(self.hooks.clone()),
        );
        self.handshake_batches += 1;
        for ((_, ch), resp) in clients.into_iter().zip(responses) {
            let (sh, cont) = resp.map_err(CioError::Ctls)?;
            let (fin, mut client) = ch
                .finish(&sh, &PLANE_KEY, &Measurement::of(PLANE_IMAGE))
                .map_err(CioError::Ctls)?;
            let mut server = cont.verify_finished(&fin).map_err(CioError::Ctls)?;
            client.set_rekey_interval(self.cfg.rekey_interval);
            server.set_rekey_interval(self.cfg.rekey_interval);
            // The synthetic flow 4-tuple: a churning source port against
            // the service port, steered by the same RSS hash as the
            // dataplane.
            let port = 40_000u16.wrapping_add((self.seq % 20_000) as u16);
            let shard = flow_hash(
                (Ipv4Addr([10, 0, 0, 1]), port),
                (Ipv4Addr([10, 0, 0, 2]), 443),
            ) as usize
                & (self.cfg.shards - 1);
            self.seq += 1;
            self.table.insert(
                shard,
                Session {
                    client,
                    server,
                    records: 0,
                },
            );
            self.meter.sessions_opened(1);
            self.handshakes += 1;
        }
        Ok(())
    }

    fn close_session(&mut self, id: SessionId) {
        if let Ok(sess) = self.table.remove(id) {
            self.max_epoch = self.max_epoch.max(sess.client.tx_generation());
            self.meter.sessions_closed(1);
        }
    }

    /// One echo round trip for `id`: flow-table lookup, seal in slot on
    /// the request ring, open in place server-side, sealed echo back,
    /// open in place client-side, RTT recorded on the shard's histogram.
    fn pump_record(&mut self, id: SessionId) -> Result<(), CioError> {
        let size = self.loadgen.record_size();
        let t0 = self.clock.now();
        // The hot-path lookup: charged at the modeled cost, counted by
        // the table.
        self.clock.advance(self.cost.flow_lookup);
        let shard = self.table.shard_of(id);
        let Ok(sess) = self.table.get_mut(id) else {
            // Quarantined or stale mid-iteration; nothing to pump.
            return Ok(());
        };
        let lane = &mut self.lanes[shard];
        self.payload.clear();
        let tag = (id.index() as u64) ^ sess.records;
        self.payload
            .extend((0..size).map(|i| (tag as u8).wrapping_add(i as u8)));

        let ok = (|| -> Result<bool, CioError> {
            // Client → server.
            {
                let _span = self.telemetry.span(shard, Stage::GuestSend);
                let grant = lane.req_tx.reserve(size + RECORD_OVERHEAD)?;
                let n = lane.req_tx.with_slot_mut(&grant, |slot| {
                    sess.client.seal_into_slot(&self.payload, slot)
                })?;
                let n = match n {
                    Ok(n) => n,
                    Err(_) => return Ok(false),
                };
                lane.req_tx.commit(grant, n)?;
            }
            let opened = lane
                .req_rx
                .consume_in_place(|record| sess.server.open_in_slot(record, &mut self.plain))?;
            match opened {
                Some(Ok(())) => {}
                Some(Err(_)) | None => return Ok(false),
            }
            // Server → client echo.
            {
                let _span = self.telemetry.span(shard, Stage::Peer);
                let grant = lane.echo_tx.reserve(self.plain.len() + RECORD_OVERHEAD)?;
                let n = lane.echo_tx.with_slot_mut(&grant, |slot| {
                    sess.server.seal_into_slot(self.plain.as_slice(), slot)
                })?;
                let n = match n {
                    Ok(n) => n,
                    Err(_) => return Ok(false),
                };
                lane.echo_tx.commit(grant, n)?;
            }
            let echoed = lane
                .echo_rx
                .consume_in_place(|record| sess.client.open_in_slot(record, &mut self.echo))?;
            match echoed {
                Some(Ok(())) => {}
                Some(Err(_)) | None => return Ok(false),
            }
            Ok(self.echo.as_slice() == self.payload.as_slice())
        })()?;

        if ok {
            sess.records += 1;
            self.max_epoch = self.max_epoch.max(sess.client.tx_generation());
            self.records_echoed += 1;
            self.bytes_echoed += size as u64;
            self.telemetry.record_rtt(shard, self.clock.since(t0));
            self.telemetry.record_batch(shard, 1);
        } else {
            // Fail closed: the session is quarantined, its neighbours
            // keep running. An application casualty, not a boundary
            // violation — metered separately from `violations_detected`.
            let _ = self.table.remove(id);
            self.meter.session_failures(1);
        }
        Ok(())
    }

    /// The run's evidence.
    pub fn report(&self) -> SessionPlaneReport {
        SessionPlaneReport {
            ticks: self.ticks,
            created: self.table.created(),
            reclaimed: self.table.reclaimed(),
            live: self.table.live(),
            peak_live: self.table.peak_live(),
            capacity: self.table.capacity() as u64,
            lookups: self.table.lookups(),
            probes: self.table.probes(),
            lookup_cycles: self.cost.flow_lookup.get(),
            handshakes: self.handshakes,
            handshake_batches: self.handshake_batches,
            records_echoed: self.records_echoed,
            bytes_echoed: self.bytes_echoed,
            max_epoch: self.max_epoch,
            elapsed: self.clock.since(self.started),
        }
    }
}

impl ShardLane {
    fn new(
        clock: &Clock,
        cost: &CostModel,
        meter: &Meter,
        telemetry: &Telemetry,
        shard: usize,
    ) -> Result<Self, CioError> {
        let build = || -> Result<(CioRing, GuestMemory), CioError> {
            let cfg = RingConfig {
                mtu: 2048,
                mode: DataMode::SharedArea,
                ..RingConfig::default()
            };
            let area_pages = cfg.area_size as usize / PAGE_SIZE;
            let mem = GuestMemory::new(32 + area_pages, clock.clone(), cost.clone(), meter.clone());
            let ring = CioRing::new(cfg, GuestAddr(0), GuestAddr(16 * PAGE_SIZE as u64))?;
            mem.share_range(GuestAddr(0), ring.ring_bytes())?;
            mem.share_range(GuestAddr(16 * PAGE_SIZE as u64), ring.area_bytes())?;
            Ok((ring, mem))
        };
        let (req_ring, req_mem) = build()?;
        let mut req_tx = Producer::new(req_ring.clone(), req_mem.guest())?;
        let mut req_rx = Consumer::new(req_ring, req_mem.host())?;
        let (echo_ring, echo_mem) = build()?;
        let mut echo_tx = Producer::new(echo_ring.clone(), echo_mem.host())?;
        let mut echo_rx = Consumer::new(echo_ring, echo_mem.guest())?;
        req_tx.set_telemetry(telemetry.clone(), shard);
        req_rx.set_telemetry(telemetry.clone(), shard);
        echo_tx.set_telemetry(telemetry.clone(), shard);
        echo_rx.set_telemetry(telemetry.clone(), shard);
        Ok(ShardLane {
            req_tx,
            req_rx,
            echo_tx,
            echo_rx,
            _req_mem: req_mem,
            _echo_mem: echo_mem,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::Arrival;

    fn quick_cfg(population: usize, churn: f64) -> SessionPlaneConfig {
        SessionPlaneConfig {
            shards: 4,
            load: LoadGenConfig {
                seed: 7,
                arrival: Arrival::Closed { population },
                churn,
                size_min: 32,
                size_max: 512,
                size_alpha: 1.2,
            },
            rekey_interval: Some(8),
            handshake_batch: 8,
        }
    }

    #[test]
    fn sustains_churning_population_with_o1_lookups() {
        let mut p = SessionPlane::new(quick_cfg(96, 0.05)).unwrap();
        p.run(20).unwrap();
        let r = p.report();
        assert_eq!(r.live, 96, "closed loop holds the population");
        assert!(r.created > 150, "churn creates well beyond peak: {r:?}");
        assert_eq!(r.probes, r.lookups, "direct-mapped lookups");
        assert!(
            r.capacity <= r.peak_live,
            "table memory bounded by peak concurrency: {r:?}"
        );
        assert_eq!(
            r.lookups, r.records_echoed,
            "every echo cost exactly one hot-path lookup"
        );
        assert!(r.max_epoch >= 1, "rekey-after-8 must have rotated: {r:?}");
        let snap = p.meter().snapshot();
        assert_eq!(snap.sessions_opened, r.created);
        assert_eq!(snap.sessions_closed + snap.session_failures, r.reclaimed);
        assert_eq!(snap.session_failures, 0, "honest run: no quarantines");
    }

    #[test]
    fn batched_handshakes_amortize_server_keygen() {
        let mut p = SessionPlane::new(quick_cfg(64, 0.0)).unwrap();
        p.run(1).unwrap();
        let r = p.report();
        assert_eq!(r.handshakes, 64);
        assert_eq!(r.handshake_batches, 8, "64 arrivals in batches of 8");
        let snap = p.meter().snapshot();
        // Per batch: 1 server keygen; per handshake: client keygen +
        // client shared-secret + server shared-secret = 3.
        assert_eq!(snap.x25519_ops, 8 + 3 * 64);
    }

    #[test]
    fn same_seed_exports_identical_telemetry() {
        let run = || {
            let mut p = SessionPlane::new(quick_cfg(48, 0.08)).unwrap();
            p.run(12).unwrap();
            (
                p.telemetry().prometheus_text(),
                p.telemetry().json_snapshot(),
                p.report(),
            )
        };
        let (a_prom, a_json, a_rep) = run();
        let (b_prom, b_json, b_rep) = run();
        assert_eq!(a_rep, b_rep);
        assert_eq!(a_prom, b_prom, "prometheus export must be byte-identical");
        assert_eq!(a_json, b_json, "json export must be byte-identical");
        assert!(a_json.contains("\"sessions\""), "gauges published");
    }

    #[test]
    fn rtt_histograms_populate_per_shard() {
        let mut p = SessionPlane::new(quick_cfg(64, 0.02)).unwrap();
        p.run(10).unwrap();
        let total: u64 = (0..4).map(|q| p.telemetry().rtt_histogram(q).count()).sum();
        assert_eq!(total, p.report().records_echoed);
        for q in 0..4 {
            let h = p.telemetry().rtt_histogram(q);
            assert!(h.count() > 0, "shard {q} starved — RSS steering broken?");
            assert!(h.p99() > 0);
        }
    }
}
