//! The §3.3 storage generalization: block-level vs. file-level boundaries.
//!
//! "The first boundary would be at a low-level interface, e.g., disk
//! driver or block layer, and the second one at a higher level such as
//! file operations." This module builds both ends of that comparison:
//!
//! * [`StorageBoundary::BlockInTee`] — the filesystem and the encryption
//!   layer live in the TEE; the host serves opaque blocks over the safe
//!   ring (the storage analogue of the dual boundary). The host observes
//!   block addresses, sizes, and timing — never names, offsets, or
//!   plaintext — and any tampering or rollback is detected by the crypt
//!   layer.
//! * [`StorageBoundary::FileOnHost`] — the filesystem is host software and
//!   the guest issues file operations across the boundary (the L5
//!   analogue, Graphene's unprotected-files mode). Every call leaks its
//!   type, file identity, offset, and length, costs a world switch, and
//!   the host can silently falsify all data.

use crate::CioError;
use cio_block::blockdev::{BlockStore, RamDisk, BLOCK_SIZE};
use cio_block::fs::FileId;
use cio_block::transport::{CioBlkBackend, CioBlkFrontend, RingBlockStore};
use cio_block::{BlockError, CryptStore, SimpleFs};
use cio_host::observe::{bits, Recorder};
use cio_mem::GuestAddr;
use cio_sim::{Clock, CostModel};
use cio_tee::{Tee, TeeKind};
use cio_vring::cioring::{CioRing, Consumer, DataMode, Producer, RingConfig};

/// Where the storage trust boundary sits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StorageBoundary {
    /// Filesystem + crypt in the TEE; host serves encrypted blocks.
    BlockInTee,
    /// Filesystem on the host; guest issues file calls.
    FileOnHost,
}

impl std::fmt::Display for StorageBoundary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageBoundary::BlockInTee => f.write_str("block-in-tee"),
            StorageBoundary::FileOnHost => f.write_str("file-on-host"),
        }
    }
}

/// A block store wrapper that records what the host observes per request.
struct ObservedStore {
    inner: RingBlockStore,
    recorder: Recorder,
    clock: Clock,
}

impl BlockStore for ObservedStore {
    fn read_block(&mut self, lba: u64, buf: &mut [u8]) -> Result<(), BlockError> {
        // The host sees: a read, its LBA, its size, and when.
        self.recorder.record(
            self.clock.now(),
            "blk.read",
            bits::OP_TYPE + 32 + bits::TIMING,
        );
        self.inner.read_block(lba, buf)
    }

    fn write_block(&mut self, lba: u64, data: &[u8]) -> Result<(), BlockError> {
        self.recorder.record(
            self.clock.now(),
            "blk.write",
            bits::OP_TYPE + 32 + bits::TIMING,
        );
        self.inner.write_block(lba, data)
    }

    fn blocks(&self) -> u64 {
        self.inner.blocks()
    }
}

// One variant per boundary; worlds are few and long-lived, so the size
// skew between variants is irrelevant.
#[allow(clippy::large_enum_variant)]
enum StorageInner {
    Tee(SimpleFs<CryptStore<ObservedStore>>),
    Host(SimpleFs<RamDisk>),
}

/// One storage deployment (guest + host side, wired per boundary).
pub struct StorageWorld {
    boundary: StorageBoundary,
    tee: Tee,
    recorder: Recorder,
    inner: StorageInner,
}

/// Disk size used by storage worlds (physical blocks).
pub const DISK_BLOCKS: u64 = 1024;

impl StorageWorld {
    /// Builds a storage world.
    ///
    /// # Errors
    ///
    /// Setup failures (format, ring allocation).
    pub fn new(boundary: StorageBoundary, cost: CostModel) -> Result<StorageWorld, CioError> {
        let tee = Tee::new(TeeKind::ConfidentialVm, 1024, cost);
        let clock = tee.clock().clone();
        let recorder = Recorder::new();
        let mem = tee.memory().clone();

        let inner = match boundary {
            StorageBoundary::BlockInTee => {
                let cfg = RingConfig {
                    slots: 16,
                    slot_size: 16,
                    mode: DataMode::SharedArea,
                    mtu: (BLOCK_SIZE + 16) as u32,
                    area_size: 1 << 17,
                    ..RingConfig::default()
                };
                let req_ring = CioRing::new(
                    cfg.clone(),
                    GuestAddr(0),
                    GuestAddr(16 * cio_mem::PAGE_SIZE as u64),
                )?;
                let resp_ring = CioRing::new(
                    cfg,
                    GuestAddr(8 * cio_mem::PAGE_SIZE as u64),
                    GuestAddr(64 * cio_mem::PAGE_SIZE as u64),
                )?;
                mem.share_range(GuestAddr(0), req_ring.ring_bytes())?;
                mem.share_range(
                    GuestAddr(8 * cio_mem::PAGE_SIZE as u64),
                    resp_ring.ring_bytes(),
                )?;
                mem.share_range(
                    GuestAddr(16 * cio_mem::PAGE_SIZE as u64),
                    req_ring.area_bytes(),
                )?;
                mem.share_range(
                    GuestAddr(64 * cio_mem::PAGE_SIZE as u64),
                    resp_ring.area_bytes(),
                )?;
                let front = CioBlkFrontend::new(
                    Producer::new(req_ring.clone(), mem.guest())?,
                    Consumer::new(resp_ring.clone(), mem.guest())?,
                );
                let back = CioBlkBackend::new(
                    Consumer::new(req_ring, mem.host())?,
                    Producer::new(resp_ring, mem.host())?,
                    RamDisk::new(DISK_BLOCKS),
                );
                let observed = ObservedStore {
                    inner: RingBlockStore::new(front, back),
                    recorder: recorder.clone(),
                    clock: clock.clone(),
                };
                let mut crypt = CryptStore::new(observed, [0x2A; 32])?;
                crypt.set_hooks(clock.clone(), tee.cost().clone(), tee.meter().clone());
                StorageInner::Tee(SimpleFs::format(crypt)?)
            }
            StorageBoundary::FileOnHost => {
                StorageInner::Host(SimpleFs::format(RamDisk::new(DISK_BLOCKS))?)
            }
        };

        Ok(StorageWorld {
            boundary,
            tee,
            recorder,
            inner,
        })
    }

    /// The boundary under test.
    pub fn boundary(&self) -> StorageBoundary {
        self.boundary
    }

    /// The TEE (clock/meter access).
    pub fn tee(&self) -> &Tee {
        &self.tee
    }

    /// The observability recorder.
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// Records a host-visible file call (file boundary only) and charges
    /// the world switch.
    fn file_call(tee: &Tee, recorder: &Recorder, kind: &'static str, extra: u32) {
        tee.exit_to_host();
        recorder.record(
            tee.clock().now(),
            kind,
            bits::OP_TYPE + bits::SOCKET_ID + bits::TIMING + extra,
        );
    }

    /// Creates a file.
    ///
    /// # Errors
    ///
    /// Filesystem errors.
    pub fn create(&mut self, name: &str) -> Result<FileId, CioError> {
        match &mut self.inner {
            StorageInner::Tee(fs) => Ok(fs.create(name)?),
            StorageInner::Host(fs) => {
                Self::file_call(
                    &self.tee,
                    &self.recorder,
                    "file.create",
                    8 * name.len() as u32,
                );
                Ok(fs.create(name)?)
            }
        }
    }

    /// Writes to a file.
    ///
    /// # Errors
    ///
    /// Filesystem errors.
    pub fn write(&mut self, id: FileId, offset: u64, data: &[u8]) -> Result<(), CioError> {
        match &mut self.inner {
            StorageInner::Tee(fs) => Ok(fs.write(id, offset, data)?),
            StorageInner::Host(fs) => {
                Self::file_call(&self.tee, &self.recorder, "file.write", 64 + bits::LENGTH);
                // Marshalling: the payload is copied across the boundary.
                self.tee.clock().advance(self.tee.cost().copy(data.len()));
                self.tee.meter().copies(1);
                self.tee.meter().bytes_copied(data.len() as u64);
                Ok(fs.write(id, offset, data)?)
            }
        }
    }

    /// Reads from a file.
    ///
    /// # Errors
    ///
    /// Filesystem errors — including integrity violations on the block
    /// boundary when the host tampers.
    pub fn read(&mut self, id: FileId, offset: u64, len: usize) -> Result<Vec<u8>, CioError> {
        match &mut self.inner {
            StorageInner::Tee(fs) => Ok(fs.read(id, offset, len)?),
            StorageInner::Host(fs) => {
                Self::file_call(&self.tee, &self.recorder, "file.read", 64 + bits::LENGTH);
                let data = fs.read(id, offset, len)?;
                self.tee.clock().advance(self.tee.cost().copy(data.len()));
                self.tee.meter().copies(1);
                self.tee.meter().bytes_copied(data.len() as u64);
                Ok(data)
            }
        }
    }

    /// Deletes a file.
    ///
    /// # Errors
    ///
    /// Filesystem errors.
    pub fn delete(&mut self, name: &str) -> Result<(), CioError> {
        match &mut self.inner {
            StorageInner::Tee(fs) => Ok(fs.delete(name)?),
            StorageInner::Host(fs) => {
                Self::file_call(
                    &self.tee,
                    &self.recorder,
                    "file.delete",
                    8 * name.len() as u32,
                );
                Ok(fs.delete(name)?)
            }
        }
    }

    /// Host-side tampering with the stored bytes of (physical) block
    /// `lba`.
    ///
    /// # Errors
    ///
    /// Out-of-range.
    pub fn host_tamper(&mut self, lba: u64, offset: usize, mask: u8) -> Result<(), CioError> {
        match &mut self.inner {
            StorageInner::Tee(fs) => {
                fs.store_mut()
                    .inner_mut()
                    .inner
                    .backend_mut()
                    .disk_mut()
                    .tamper(lba, offset, mask)?;
            }
            StorageInner::Host(fs) => {
                fs.store_mut().tamper(lba, offset, mask)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world(b: StorageBoundary) -> StorageWorld {
        StorageWorld::new(b, CostModel::default()).unwrap()
    }

    #[test]
    fn both_boundaries_serve_files() {
        for b in [StorageBoundary::BlockInTee, StorageBoundary::FileOnHost] {
            let mut w = world(b);
            let id = w.create("report.txt").unwrap();
            let data: Vec<u8> = (0..10_000u32).map(|i| (i % 250) as u8).collect();
            w.write(id, 0, &data).unwrap();
            assert_eq!(w.read(id, 0, data.len()).unwrap(), data, "{b}");
            w.delete("report.txt").unwrap();
        }
    }

    #[test]
    fn file_boundary_leaks_call_metadata() {
        let mut w = world(StorageBoundary::FileOnHost);
        let id = w.create("secret-ledger.db").unwrap();
        w.write(id, 0, &[1u8; 5000]).unwrap();
        let _ = w.read(id, 0, 5000).unwrap();
        let s = w.recorder().summary();
        assert!(s.by_kind.contains_key("file.create"));
        assert!(s.by_kind.contains_key("file.write"));
        assert!(s.by_kind.contains_key("file.read"));
        // And every call cost a world switch.
        assert!(w.tee().meter().snapshot().host_transitions >= 3);
    }

    #[test]
    fn block_boundary_hides_file_structure() {
        let mut w = world(StorageBoundary::BlockInTee);
        let id = w.create("secret-ledger.db").unwrap();
        w.write(id, 0, &[1u8; 5000]).unwrap();
        let _ = w.read(id, 0, 5000).unwrap();
        let s = w.recorder().summary();
        // Only block-level events, no file semantics.
        for kind in s.by_kind.keys() {
            assert!(kind.starts_with("blk."), "leaked event kind {kind}");
        }
        // No data-path world exits (polling block ring).
        assert_eq!(w.tee().meter().snapshot().host_transitions, 0);
    }

    #[test]
    fn block_boundary_detects_host_tamper() {
        let mut w = world(StorageBoundary::BlockInTee);
        let id = w.create("db").unwrap();
        w.write(id, 0, &[7u8; 20_000]).unwrap();
        // Tamper with several physical blocks; at least one holds file
        // ciphertext.
        for lba in 6..12 {
            w.host_tamper(lba, 13, 0x20).unwrap();
        }
        let r = w.read(id, 0, 20_000);
        assert!(
            matches!(r, Err(CioError::Block(BlockError::IntegrityViolation))),
            "got {r:?}"
        );
    }

    #[test]
    fn file_boundary_cannot_detect_host_tamper() {
        let mut w = world(StorageBoundary::FileOnHost);
        let id = w.create("db").unwrap();
        w.write(id, 0, &[7u8; 20_000]).unwrap();
        for lba in 6..12 {
            w.host_tamper(lba, 13, 0x20).unwrap();
        }
        // The read "succeeds" — with silently falsified data.
        let data = w.read(id, 0, 20_000).unwrap();
        assert!(
            data.iter().any(|&b| b != 7),
            "tampered data served as genuine"
        );
    }

    #[test]
    fn host_sees_plaintext_only_on_file_boundary() {
        // Block boundary: ciphertext on disk.
        let mut w = world(StorageBoundary::BlockInTee);
        let id = w.create("plain").unwrap();
        w.write(id, 0, b"TOPSECRET-MARKER-0123456789").unwrap();
        let mut found = false;
        if let StorageInner::Tee(fs) = &mut w.inner {
            let disk = fs.store_mut().inner_mut().inner.backend_mut().disk_mut();
            for lba in 0..32 {
                let block = disk.snapshot_block(lba).unwrap();
                if block.windows(9).any(|win| win == b"TOPSECRET") {
                    found = true;
                }
            }
        }
        assert!(!found, "plaintext leaked to host disk");

        // File boundary: plaintext on disk.
        let mut w = world(StorageBoundary::FileOnHost);
        let id = w.create("plain").unwrap();
        w.write(id, 0, b"TOPSECRET-MARKER-0123456789").unwrap();
        let mut found = false;
        if let StorageInner::Host(fs) = &mut w.inner {
            for lba in 0..32 {
                let block = fs.store_mut().snapshot_block(lba).unwrap();
                if block.windows(9).any(|win| win == b"TOPSECRET") {
                    found = true;
                }
            }
        }
        assert!(found, "expected plaintext on the host disk");
    }
}
