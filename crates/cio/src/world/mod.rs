//! Complete simulated deployments: one [`World`] per boundary design.
//!
//! A `World` owns everything Figure 1 draws — the confidential workload
//! (①), host software (③), host hardware / fabric (④), and a remote
//! confidential peer — wired for one [`BoundaryKind`]. All worlds expose
//! the same application API (connect / send / recv over optionally-cTLS
//! streams), so experiments E4/E9/E10/E11 run identical workloads across
//! designs and differences are attributable to the boundary alone.

mod parallel;
pub mod speer;

use crate::dev::{
    CioRingDevice, GuestLayoutAlloc, HardenedVirtioNetDevice, IdeNetDevice, RecvMode, SendMode,
    TunnelDevice, VirtqueueNetDevice, VqArena,
};
use crate::session::SessionTable;
use crate::{CioError, Transient};
use cio_ctls::{Channel, RecordScratch, SimHooks};
use cio_host::backend::{Backend, CioNetBackend, NullBackend, VirtioNetBackend};
use cio_host::fabric::{Fabric, FabricPort, LinkParams};
use cio_host::l5::L5Service;
use cio_host::observe::Recorder;
use cio_mem::{CopyPolicy, GuestAddr, GuestMemory, PAGE_SIZE};
use cio_netstack::stack::{Interface, InterfaceConfig, SocketHandle};
use cio_netstack::{rss, Ipv4Addr, MacAddr, NetDevice, PairDevice};
use cio_sim::{
    Clock, CostModel, Cycles, EventKind, FlightRecorder, Lanes, Meter, SimRng, SloConfig,
    SloWatchdog, Stage, Telemetry,
};
use cio_tee::compartment::Gate;
use cio_tee::dda::{spdm_attest, Device, IdeChannel};
use cio_tee::{Tee, TeeKind};
use cio_vring::cioring::{CioRing, Consumer, DataMode, Producer, RingConfig};
use cio_vring::hardened::HardenedDriver;
use cio_vring::virtqueue::{
    driver_negotiate, ConfigSpace, DeviceSide, Driver, Layout, F_NET_MAC, F_NET_MTU, F_VERSION_1,
};
use parallel::ParallelHost;
use speer::{FeedResult, SecurePeer, SecureStream, TunnelGateway};

pub use cio_vring::cioring::{BatchPolicy, NotifyMode, NotifyPolicy};
pub use speer::{ECHO_PORT, RPC_PORT};

// The session-layer types are part of the world's public API surface:
// `connect` issues [`SessionId`]s and the `_into` receive family fills
// [`SessionScratch`]es.
pub use crate::session::{SessionError, SessionId, SessionScratch};

/// The boundary designs under comparison (see crate docs for the table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BoundaryKind {
    /// Socket-level boundary; the stack is host software (Graphene/CCF).
    L5Host,
    /// Raw virtio split queue, no hardening (traditional lift-and-shift,
    /// DPDK-style shared buffers, polling).
    L2VirtioUnhardened,
    /// Linux-retrofit hardened virtio: validation + SWIOTLB + interrupts.
    L2VirtioHardened,
    /// The paper's safe ring, single confidential domain (no intra-TEE
    /// boundary) — the "ShieldBox with a better interface" point.
    L2CioRing,
    /// The paper's full design: safe ring at L2 plus the intra-TEE L5
    /// compartment boundary (ternary trust model).
    DualBoundary,
    /// L2-over-TLS to a trusted gateway (LightBox-shaped).
    Tunneled,
    /// SPDM-attested, IDE-protected direct device assignment (§3.4).
    Dda,
}

/// All boundary kinds, for experiment iteration.
pub const ALL_BOUNDARIES: [BoundaryKind; 7] = [
    BoundaryKind::L5Host,
    BoundaryKind::L2VirtioUnhardened,
    BoundaryKind::L2VirtioHardened,
    BoundaryKind::L2CioRing,
    BoundaryKind::DualBoundary,
    BoundaryKind::Tunneled,
    BoundaryKind::Dda,
];

impl std::fmt::Display for BoundaryKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            BoundaryKind::L5Host => "l5-host",
            BoundaryKind::L2VirtioUnhardened => "virtio-unhardened",
            BoundaryKind::L2VirtioHardened => "virtio-hardened",
            BoundaryKind::L2CioRing => "cio-ring",
            BoundaryKind::DualBoundary => "dual-boundary",
            BoundaryKind::Tunneled => "tunneled",
            BoundaryKind::Dda => "dda",
        };
        f.write_str(s)
    }
}

/// Tuning for a world.
#[derive(Clone)]
pub struct WorldOptions {
    /// The platform cost model.
    pub cost: CostModel,
    /// Fabric link characteristics.
    pub link: LinkParams,
    /// End-to-end cTLS for application data (mandatory for the dual
    /// boundary; uniform across designs for fair comparison).
    pub app_tls: bool,
    /// cio-ring transmit mode.
    pub send_mode: SendMode,
    /// cio-ring receive mode.
    pub recv_mode: RecvMode,
    /// cio-ring notification mode.
    pub notify: NotifyMode,
    /// Notification economics on top of `notify`
    /// ([`NotifyPolicy::Always`] by default: the historical one kick per
    /// publish in doorbell mode, bit-identical to the pre-suppression
    /// paths). With `notify` set to [`NotifyMode::Doorbell`],
    /// [`NotifyPolicy::EventIdx`] upgrades the rings to event-idx
    /// suppression (one doorbell covers many batches while the other
    /// side is provably awake) and [`NotifyPolicy::Adaptive`] adds the
    /// per-queue poll-vs-notify controller on the host (skip service
    /// passes while idle, bounded idle spin, re-poll heartbeat).
    /// Ignored under [`NotifyMode::Polling`], which stays byte-identical
    /// regardless of policy.
    pub notify_policy: NotifyPolicy,
    /// Dual boundary: charge an app→stack payload copy instead of
    /// trusted-component-allocates zero-copy (E9's contrast arm).
    pub l5_app_copy: bool,
    /// Data-positioning discipline for the record/ring dataplane
    /// ([`CopyPolicy::InPlace`] by default: records are sealed into and
    /// consumed out of slot memory with no staging copies). Set
    /// [`CopyPolicy::CopyEarly`] to force the staged copy path everywhere
    /// — the defensive arm for adversarial double-fetch configurations.
    /// Ring layouts that cannot support in-place positioning (inline
    /// slots) fall back to the staged path automatically regardless.
    pub copy_policy: CopyPolicy,
    /// Record-batch discipline for the whole dataplane
    /// ([`BatchPolicy::Serial`] by default: every boundary crossing
    /// covers exactly one record, bit-identical to the pre-batching
    /// paths). Non-serial policies amortize the memory lock, index
    /// publish, doorbell, and AEAD setup over runs of records at every
    /// endpoint — guest device, host backend, tunnel carrier, secure
    /// peer, and client stream — with per-record validation, nonces, and
    /// tags untouched.
    pub batch: BatchPolicy,
    /// Deterministic seed.
    pub seed: u64,
    /// Per-session key-rotation interval: every cTLS channel (client
    /// stream and peer side alike) derives a fresh epoch key after this
    /// many records in each direction. `None` disables rotation. The
    /// default matches [`cio_ctls::REKEY_INTERVAL`], so rotation is on
    /// everywhere unless explicitly tuned.
    pub rekey_interval: Option<u64>,
    /// DDA: the attested device misbehaves after attestation.
    pub dda_tamper: bool,
    /// Minimum virtual-time progress per [`World::step`].
    pub step_quantum: Cycles,
    /// TEE flavour.
    pub tee_kind: TeeKind,
    /// Dataplane queue count (cio-ring designs only). Must be a non-zero
    /// power of two, at most [`MAX_QUEUES`]. With more than one queue,
    /// flows are RSS-steered and each queue is serviced on its own
    /// virtual core (see [`cio_sim::Lanes`]).
    pub queues: usize,
    /// Host worker threads (cio-ring designs only). `0` (default) keeps
    /// host servicing on the stepping thread. With `n > 0`, the host
    /// backend is split thread-per-queue: `n` persistent OS threads each
    /// own `queues / n` queue pairs end-to-end (rings, backlog, pool,
    /// lane clock, telemetry fork) and service them concurrently in wall
    /// clock, while the virtual-time schedule stays record-for-record
    /// identical to the serial multiqueue sweep. Must divide `queues`.
    pub parallel: usize,
    /// Arm the deterministic telemetry layer (spans, histograms, cycle
    /// attribution — see [`cio_sim::telemetry`]). Off by default: a
    /// disabled handle costs one branch per instrumentation site and
    /// records nothing. Telemetry never advances the clock, so enabling
    /// it cannot perturb the simulation.
    pub telemetry: bool,
    /// Arm the flight recorder and SLO watchdog (typed event timelines,
    /// the tamper-evident audit chain, breach detection — see
    /// [`cio_sim::flight`]). Off by default: a disabled recorder handle
    /// costs one branch per event site and records nothing. Like
    /// telemetry, the recorder never advances the clock, so arming it
    /// cannot perturb the simulation.
    pub observe: bool,
}

impl Default for WorldOptions {
    fn default() -> Self {
        WorldOptions {
            cost: CostModel::default(),
            link: LinkParams::default(),
            app_tls: true,
            send_mode: SendMode::Copy,
            recv_mode: RecvMode::Copy,
            notify: NotifyMode::Polling,
            notify_policy: NotifyPolicy::Always,
            l5_app_copy: false,
            copy_policy: CopyPolicy::default(),
            batch: BatchPolicy::default(),
            seed: 0xC10,
            rekey_interval: Some(cio_ctls::REKEY_INTERVAL),
            dda_tamper: false,
            step_quantum: Cycles(5_000),
            tee_kind: TeeKind::ConfidentialVm,
            queues: 1,
            parallel: 0,
            telemetry: false,
            observe: false,
        }
    }
}

/// Upper bound on [`WorldOptions::queues`], set by the guest memory
/// budget (each queue pair carves its rings and payload areas out of the
/// fixed guest layout).
pub const MAX_QUEUES: usize = 8;

/// Unsent-backlog threshold above which [`World::send`] reports
/// backpressure ([`Transient::WouldBlock`]) instead of buffering more.
pub const SEND_HIGH_WATER: usize = 64 * 1024;

/// Guest address of the world (fixed).
pub const GUEST_IP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
/// Peer address of the world (fixed).
pub const PEER_IP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

const GUEST_MAC: MacAddr = MacAddr([0x02, 0, 0, 0, 0, 0x01]);
const PEER_MAC: MacAddr = MacAddr([0x02, 0, 0, 0, 0, 0x02]);
const FABRIC_MTU: usize = 2200;
const GUEST_PAGES: usize = 4096;

// One long-lived guest per world: variant size skew is irrelevant.
#[allow(clippy::large_enum_variant)]
enum Guest {
    Stack {
        iface: Interface<Box<dyn NetDevice>>,
    },
    Dual {
        iface: Interface<Box<dyn NetDevice>>,
        gate: Gate,
        app: cio_tee::CompartmentId,
        iostack: cio_tee::CompartmentId,
    },
    L5 {
        svc: L5Service,
    },
}

#[allow(clippy::large_enum_variant)] // one per world
enum PeerNode {
    Direct(SecurePeer<FabricPort>),
    Tunnel {
        gw_port: FabricPort,
        gw: TunnelGateway,
        peer: SecurePeer<PairDevice>,
    },
}

/// Pieces produced when building a cio-ring data path.
type CioRingParts = (Box<dyn NetDevice>, CioNetBackend, Vec<(CioRing, CioRing)>);

/// Layout facts the adversary harness needs to aim its attacks.
#[derive(Debug, Clone, Default)]
pub struct Anatomy {
    /// Virtqueue layouts (tx, rx) and the config page, when present.
    pub virtio: Option<(Layout, Layout, GuestAddr)>,
    /// Queue-0 cio rings (tx, rx), when present (kept for callers that
    /// predate multi-queue; identical to `cio_queues[0]`).
    pub cio_rings: Option<(CioRing, CioRing)>,
    /// All cio ring pairs (tx, rx), one per queue, in queue order.
    pub cio_queues: Vec<(CioRing, CioRing)>,
}

/// A snapshot of a world's session-table bookkeeping (see
/// [`World::session_stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionStats {
    /// Sessions currently open.
    pub live: u64,
    /// Peak concurrent sessions (sum of per-shard peaks).
    pub peak_live: u64,
    /// Table slots ever allocated — bounded by peak concurrency, not by
    /// `created`, because closed slots are reclaimed.
    pub capacity: usize,
    /// Sessions ever opened.
    pub created: u64,
    /// Sessions closed and reclaimed.
    pub reclaimed: u64,
    /// Hot-path handle lookups performed.
    pub lookups: u64,
    /// Slot probes those lookups cost (`== lookups`: direct-mapped).
    pub probes: u64,
}

struct ConnState {
    handle: SocketHandle,
    stream: SecureStream,
    /// Protocol bytes (handshake continuations) awaiting transmission.
    outbox: Vec<u8>,
    /// Decrypted application bytes awaiting the app.
    app_in: Vec<u8>,
    /// Reusable stream-feed output buffers (steady state allocates
    /// nothing per poll).
    feed_scratch: FeedResult,
    /// The virtual core / queue this connection's flow steers to
    /// (always 0 when the world runs a single queue).
    lane: usize,
    /// Highest transmit key epoch already reported to the flight
    /// recorder (rekey events fire on the transition past this mark).
    epoch_seen: u64,
}

/// One complete simulated deployment.
pub struct World {
    kind: BoundaryKind,
    opts: WorldOptions,
    clock: Clock,
    meter: Meter,
    recorder: Recorder,
    tee: Tee,
    guest: Guest,
    backend: Box<dyn Backend>,
    peer: PeerNode,
    /// The session control plane: one shard per dataplane queue, O(1)
    /// generational lookup, slots reclaimed on close. Handles issued by
    /// [`World::connect`] are [`SessionId`]s into this table.
    conns: SessionTable<ConnState>,
    /// TCP handles of closed sessions awaiting full teardown; their
    /// netstack slots (and ephemeral ports) are released once the
    /// connection drains to `Closed`/`TimeWait`, so socket memory — like
    /// session-table memory — is bounded by peak concurrency under churn.
    draining: Vec<SocketHandle>,
    /// Reusable id buffer for the per-step flush sweep (steady-state
    /// stepping allocates nothing once warmed).
    flush_ids: Vec<SessionId>,
    rng: SimRng,
    anatomy: Anatomy,
    layout: GuestLayoutAlloc,
    /// Per-queue virtual-core accounting (one lane when single-queue).
    lanes: Lanes,
    /// Reusable scratch for sealing outgoing application data.
    seal_scratch: RecordScratch,
    /// Telemetry domain (a disabled no-op handle unless
    /// [`WorldOptions::telemetry`] armed it).
    telemetry: Telemetry,
    /// Flight recorder (a disabled no-op handle unless
    /// [`WorldOptions::observe`] armed it).
    flight: FlightRecorder,
    /// Online SLO watchdog, pumped once per step against the telemetry
    /// RTT histograms (present only when [`WorldOptions::observe`] is
    /// set; silently idle unless telemetry is armed too, since the RTT
    /// histograms are its only input).
    watchdog: Option<SloWatchdog>,
    /// Thread-per-queue host execution (replaces `backend` when
    /// [`WorldOptions::parallel`] is non-zero; `backend` then holds a
    /// [`NullBackend`]).
    parallel: Option<ParallelHost>,
}

/// Step-by-step construction of a [`World`].
///
/// Obtained from [`World::builder`]; finish with
/// [`build`](WorldBuilder::build). Setters cover the common knobs; the
/// rest of [`WorldOptions`] is reachable through
/// [`options`](WorldBuilder::options).
///
/// # Examples
///
/// ```
/// use cio::world::{BoundaryKind, World};
/// let w = World::builder(BoundaryKind::L2CioRing)
///     .queues(4)
///     .seed(7)
///     .build()
///     .unwrap();
/// assert_eq!(w.queues(), 4);
/// ```
#[derive(Clone)]
pub struct WorldBuilder {
    kind: BoundaryKind,
    opts: WorldOptions,
}

impl WorldBuilder {
    /// Replaces the whole option set (escape hatch for knobs without a
    /// dedicated setter).
    pub fn options(mut self, opts: WorldOptions) -> Self {
        self.opts = opts;
        self
    }

    /// Dataplane queue count (cio-ring designs; power of two, <=
    /// [`MAX_QUEUES`]).
    pub fn queues(mut self, queues: usize) -> Self {
        self.opts.queues = queues;
        self
    }

    /// Host worker threads (cio-ring designs; must divide the queue
    /// count). `0` keeps host servicing on the stepping thread.
    pub fn parallel(mut self, threads: usize) -> Self {
        self.opts.parallel = threads;
        self
    }

    /// The platform cost model.
    pub fn cost(mut self, cost: CostModel) -> Self {
        self.opts.cost = cost;
        self
    }

    /// Deterministic RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.opts.seed = seed;
        self
    }

    /// Fabric link characteristics.
    pub fn link(mut self, link: LinkParams) -> Self {
        self.opts.link = link;
        self
    }

    /// End-to-end cTLS for application data.
    pub fn app_tls(mut self, on: bool) -> Self {
        self.opts.app_tls = on;
        self
    }

    /// Data-positioning discipline for the record/ring dataplane.
    pub fn copy_policy(mut self, policy: CopyPolicy) -> Self {
        self.opts.copy_policy = policy;
        self
    }

    /// Record-batch discipline for the dataplane (serial by default).
    pub fn batch(mut self, batch: BatchPolicy) -> Self {
        self.opts.batch = batch;
        self
    }

    /// cio-ring notification mode (polling by default).
    pub fn notify(mut self, notify: NotifyMode) -> Self {
        self.opts.notify = notify;
        self
    }

    /// Notification economics on top of the notify mode (`Always` by
    /// default; see [`WorldOptions::notify_policy`]).
    pub fn notify_policy(mut self, policy: NotifyPolicy) -> Self {
        self.opts.notify_policy = policy;
        self
    }

    /// Per-session key-rotation interval (`None` disables rotation).
    pub fn rekey_interval(mut self, interval: Option<u64>) -> Self {
        self.opts.rekey_interval = interval;
        self
    }

    /// Adversary mode: the DDA device misbehaves after attestation.
    pub fn dda_tamper(mut self, on: bool) -> Self {
        self.opts.dda_tamper = on;
        self
    }

    /// Arms the deterministic telemetry layer (spans, latency
    /// histograms, per-stage cycle attribution). Off by default.
    pub fn telemetry(mut self, on: bool) -> Self {
        self.opts.telemetry = on;
        self
    }

    /// Arms the flight recorder and SLO watchdog (typed event
    /// timelines, the tamper-evident audit chain, breach detection).
    /// Off by default.
    pub fn observe(mut self, on: bool) -> Self {
        self.opts.observe = on;
        self
    }

    /// Returns the accumulated option set without building, for harnesses
    /// that construct many same-shaped worlds from one builder recipe.
    pub fn into_options(self) -> WorldOptions {
        self.opts
    }

    /// Builds the world.
    ///
    /// # Errors
    ///
    /// [`CioError::Fatal`] for configuration errors; transport errors
    /// during setup.
    pub fn build(self) -> Result<World, CioError> {
        let WorldBuilder { kind, opts } = self;
        if opts.queues == 0 || !opts.queues.is_power_of_two() || opts.queues > MAX_QUEUES {
            return Err(CioError::Fatal(
                "queue count must be a power of two between 1 and MAX_QUEUES",
            ));
        }
        if opts.queues > 1 && !matches!(kind, BoundaryKind::L2CioRing | BoundaryKind::DualBoundary)
        {
            return Err(CioError::Fatal(
                "multi-queue is implemented for the cio-ring designs",
            ));
        }
        if opts.parallel > 0 {
            if !matches!(kind, BoundaryKind::L2CioRing | BoundaryKind::DualBoundary) {
                return Err(CioError::Fatal(
                    "parallel host execution is implemented for the cio-ring designs",
                ));
            }
            if opts.queues % opts.parallel != 0 {
                return Err(CioError::Fatal(
                    "parallel worker count must divide the queue count",
                ));
            }
        }
        let tee = Tee::new(opts.tee_kind, GUEST_PAGES, opts.cost.clone());
        let clock = tee.clock().clone();
        let meter = tee.meter().clone();
        let mem = tee.memory().clone();
        let recorder = Recorder::new();
        let telemetry = if opts.telemetry {
            let t = Telemetry::new(clock.clone(), opts.queues);
            t.attach_meter(&meter);
            t
        } else {
            Telemetry::disabled()
        };
        let flight = if opts.observe {
            let f = FlightRecorder::new(clock.clone(), opts.queues);
            // Exporters surface per-queue drop counters whenever telemetry
            // is also armed (attach is a no-op on a disabled handle).
            telemetry.attach_flight(&f);
            f
        } else {
            FlightRecorder::disabled()
        };
        let watchdog = opts
            .observe
            .then(|| SloWatchdog::new(SloConfig::default(), opts.queues));
        let fabric = Fabric::new(clock.clone(), opts.seed);
        let mut rng = SimRng::seed_from(opts.seed ^ 0x5EED);

        let nic_port = fabric.port(GUEST_MAC, FABRIC_MTU);
        let peer_port = fabric.port(PEER_MAC, FABRIC_MTU);
        fabric.connect(&nic_port, &peer_port, opts.link)?;

        let mut anatomy = Anatomy::default();
        let mut tee = tee;
        let mut layout =
            GuestLayoutAlloc::new(GuestAddr(0), GuestAddr((GUEST_PAGES * PAGE_SIZE) as u64));

        let (guest, backend, mut peer) = match kind {
            BoundaryKind::L5Host => {
                let svc = L5Service::new(
                    nic_port,
                    InterfaceConfig::new(GUEST_IP),
                    clock.clone(),
                    recorder.clone(),
                );
                let peer = SecurePeer::new(
                    peer_port,
                    PEER_IP,
                    clock.clone(),
                    opts.app_tls,
                    opts.seed ^ 1,
                );
                (
                    Guest::L5 { svc },
                    Box::new(NullBackend) as Box<dyn Backend>,
                    PeerNode::Direct(peer),
                )
            }

            BoundaryKind::L2VirtioUnhardened | BoundaryKind::L2VirtioHardened => {
                let hardened = kind == BoundaryKind::L2VirtioHardened;
                let qsize: u16 = 128;
                let stride: u32 = 2048;

                let tx_q = layout.alloc_pages(2)?;
                let rx_q = layout.alloc_pages(2)?;
                let cfg_page = layout.alloc_pages(1)?;
                mem.share_range(tx_q, 2 * PAGE_SIZE)?;
                mem.share_range(rx_q, 2 * PAGE_SIZE)?;
                mem.share_range(cfg_page, PAGE_SIZE)?;

                let tx_layout = Layout::new(tx_q, qsize)?;
                let rx_layout = Layout::new(rx_q, qsize)?;
                anatomy.virtio = Some((tx_layout, rx_layout, cfg_page));
                let cfg = ConfigSpace { base: cfg_page };
                cfg.device_init(
                    &mem.host(),
                    GUEST_MAC.0,
                    1500,
                    F_VERSION_1 | F_NET_MAC | F_NET_MTU,
                )?;

                let device: Box<dyn NetDevice> = if hardened {
                    let bounce_pages = usize::from(qsize);
                    let tx_bounce = layout.alloc_pages(bounce_pages)?;
                    let rx_bounce = layout.alloc_pages(bounce_pages)?;
                    let tx_drv = HardenedDriver::new(
                        &mem,
                        tx_layout,
                        cfg,
                        F_VERSION_1 | F_NET_MAC | F_NET_MTU,
                        tx_bounce,
                        bounce_pages,
                        meter.clone(),
                    )?;
                    let rx_drv = HardenedDriver::new(
                        &mem,
                        rx_layout,
                        cfg,
                        F_VERSION_1 | F_NET_MAC | F_NET_MTU,
                        rx_bounce,
                        bounce_pages,
                        meter.clone(),
                    )?;
                    Box::new(HardenedVirtioNetDevice::new(
                        tx_drv,
                        rx_drv,
                        u32::from(qsize) - 1,
                    )?)
                } else {
                    // Traditional VM: buffer arenas are shared memory.
                    let arena_pages = usize::from(qsize) * stride as usize / PAGE_SIZE;
                    let tx_arena = layout.alloc_pages(arena_pages)?;
                    let rx_arena = layout.alloc_pages(arena_pages)?;
                    mem.share_range(tx_arena, arena_pages * PAGE_SIZE)?;
                    mem.share_range(rx_arena, arena_pages * PAGE_SIZE)?;
                    driver_negotiate(&cfg, &mem.guest(), F_VERSION_1 | F_NET_MAC | F_NET_MTU)?;
                    let tx_drv = Driver::new(mem.guest(), tx_layout, meter.clone())?;
                    let rx_drv = Driver::new(mem.guest(), rx_layout, meter.clone())?;
                    Box::new(VirtqueueNetDevice::new(
                        tx_drv,
                        rx_drv,
                        VqArena {
                            base: tx_arena,
                            stride,
                            count: qsize,
                        },
                        VqArena {
                            base: rx_arena,
                            stride,
                            count: qsize,
                        },
                        mem.clone(),
                        GUEST_MAC,
                        cfg,
                    )?)
                };

                let iface = Interface::new(device, InterfaceConfig::new(GUEST_IP), clock.clone());
                let mut backend = VirtioNetBackend::new(
                    DeviceSide::new(mem.host(), tx_layout),
                    DeviceSide::new(mem.host(), rx_layout),
                    nic_port,
                    recorder.clone(),
                    clock.clone(),
                );
                if hardened {
                    backend.enable_rx_interrupts(opts.cost.clone(), meter.clone());
                }
                backend.set_telemetry(telemetry.clone());
                let peer = SecurePeer::new(
                    peer_port,
                    PEER_IP,
                    clock.clone(),
                    opts.app_tls,
                    opts.seed ^ 1,
                );
                (
                    Guest::Stack { iface },
                    Box::new(backend) as Box<dyn Backend>,
                    PeerNode::Direct(peer),
                )
            }

            BoundaryKind::L2CioRing | BoundaryKind::DualBoundary => {
                let (ring_cfg, dual) = (
                    World::net_ring_config(&opts),
                    kind == BoundaryKind::DualBoundary,
                );
                let (device, backend, rings) = World::build_cio_rings(
                    &mem,
                    &mut layout,
                    &ring_cfg,
                    &opts,
                    nic_port,
                    recorder.clone(),
                    clock.clone(),
                    &telemetry,
                    &flight,
                )?;
                anatomy.cio_rings = rings.first().cloned();
                anatomy.cio_queues = rings;
                let iface = Interface::new(device, InterfaceConfig::new(GUEST_IP), clock.clone());
                let peer = SecurePeer::new(
                    peer_port,
                    PEER_IP,
                    clock.clone(),
                    opts.app_tls,
                    opts.seed ^ 1,
                );
                let guest = if dual {
                    let app = tee.compartments_mut().create("app");
                    let iostack = tee.compartments_mut().create("iostack");
                    // The I/O compartment owns every queue's rings and
                    // payload areas: the app can never dereference into
                    // them (the trusted-component-allocates arena is the
                    // only shared surface, carved out below).
                    for (txr, rxr) in &anatomy.cio_queues {
                        for r in [txr, rxr] {
                            tee.compartments_mut().assign(
                                iostack,
                                r.prod_idx_addr(),
                                r.ring_bytes(),
                            )?;
                            tee.compartments_mut().assign(
                                iostack,
                                r.payload_addr(0),
                                r.area_bytes(),
                            )?;
                        }
                    }
                    // Trusted-component-allocates arena: app-writable pages
                    // inside the I/O domain for zero-copy send (E9).
                    let arena = layout.alloc_pages(16)?;
                    tee.compartments_mut()
                        .assign_shared(app, iostack, arena, 16 * PAGE_SIZE)?;
                    let gate = tee.gate(app, iostack)?;
                    Guest::Dual {
                        iface,
                        gate,
                        app,
                        iostack,
                    }
                } else {
                    Guest::Stack { iface }
                };
                (
                    guest,
                    Box::new(backend) as Box<dyn Backend>,
                    PeerNode::Direct(peer),
                )
            }

            BoundaryKind::Tunneled => {
                // Carrier rings sized for sealed 1514-byte frames.
                let ring_cfg = RingConfig {
                    slots: 256,
                    slot_size: 16,
                    mode: DataMode::SharedArea,
                    mtu: 2048,
                    mac: GUEST_MAC.0,
                    area_size: 1 << 19,
                    notify: World::effective_notify(&opts),
                    ..RingConfig::default()
                };
                let (tx_ring, rx_ring) = World::alloc_ring_pair(&mem, &mut layout, &ring_cfg)?;
                anatomy.cio_rings = Some((tx_ring.clone(), rx_ring.clone()));
                anatomy.cio_queues = vec![(tx_ring.clone(), rx_ring.clone())];
                let mut guest_tx = Producer::new(tx_ring.clone(), mem.guest())?;
                let mut guest_rx = Consumer::new(rx_ring.clone(), mem.guest())?;
                guest_tx.set_telemetry(telemetry.clone(), 0);
                guest_rx.set_telemetry(telemetry.clone(), 0);
                let host_tx = Consumer::new(tx_ring, mem.host())?;
                let host_rx = Producer::new(rx_ring, mem.host())?;

                // Provisioned tunnel keys (deployment-time, like LightBox).
                let mut ks = [0u8; 64];
                rng.fill_bytes(&mut ks);
                let c_secret: [u8; 32] = ks[..32].try_into().expect("32 bytes");
                let s_secret: [u8; 32] = ks[32..].try_into().expect("32 bytes");
                let hooks = SimHooks {
                    clock: clock.clone(),
                    cost: opts.cost.clone(),
                    meter: meter.clone(),
                    telemetry: telemetry.clone(),
                };
                let guest_chan = Channel::from_secrets(c_secret, s_secret, true, Some(hooks));
                let gw_chan = Channel::from_secrets(c_secret, s_secret, false, None);

                let mut tunnel_dev =
                    TunnelDevice::new(guest_tx, guest_rx, guest_chan, GUEST_MAC, 1500);
                tunnel_dev.set_copy_policy(opts.copy_policy);
                tunnel_dev.set_batch_policy(opts.batch);
                let device: Box<dyn NetDevice> = Box::new(tunnel_dev);
                let iface = Interface::new(device, InterfaceConfig::new(GUEST_IP), clock.clone());
                let mut backend = CioNetBackend::single(
                    host_tx,
                    host_rx,
                    nic_port,
                    recorder.clone(),
                    clock.clone(),
                );
                backend.opaque = true;
                backend.set_copy_policy(opts.copy_policy);
                backend.set_batch_policy(opts.batch);
                backend.set_notify_policy(opts.notify_policy);
                backend.set_telemetry(telemetry.clone());
                backend.set_flight(flight.clone());

                let (gw_side, peer_side) = PairDevice::pair([PEER_MAC, PEER_MAC], 1500);
                let gw = TunnelGateway::new(gw_chan, gw_side);
                let peer = SecurePeer::new(
                    peer_side,
                    PEER_IP,
                    clock.clone(),
                    opts.app_tls,
                    opts.seed ^ 1,
                );
                (
                    Guest::Stack { iface },
                    Box::new(backend) as Box<dyn Backend>,
                    PeerNode::Tunnel {
                        gw_port: peer_port,
                        gw,
                        peer,
                    },
                )
            }

            BoundaryKind::Dda => {
                const VENDOR: [u8; 32] = [0x11; 32];
                const FW: &[u8] = b"cio-nic-firmware-v1";
                let device_model = if opts.dda_tamper {
                    Device::two_faced(FW, VENDOR)
                } else {
                    Device::honest(FW, VENDOR)
                };
                let mut nonce = [0u8; 32];
                rng.fill_bytes(&mut nonce);
                let att = spdm_attest(
                    &device_model,
                    &VENDOR,
                    &cio_tee::attest::Measurement::of(FW),
                    nonce,
                    &clock,
                    &opts.cost,
                    &meter,
                )?;
                // The device's own session-key derivation happens on the
                // device, not on guest cycles: charge nothing for it.
                let mut dev_cost = opts.cost.clone();
                dev_cost.spdm_round = Cycles::ZERO;
                let att2 = spdm_attest(
                    &device_model,
                    &VENDOR,
                    &cio_tee::attest::Measurement::of(FW),
                    nonce,
                    &clock,
                    &dev_cost,
                    &Meter::new(),
                )?;
                let tee_end = IdeChannel::new(att, clock.clone(), opts.cost.clone(), meter.clone());
                let dev_end = IdeChannel::new(
                    att2,
                    clock.clone(),
                    CostModel::free_transitions(),
                    Meter::new(),
                );
                let mut ide_dev = IdeNetDevice::new(
                    tee_end,
                    dev_end,
                    nic_port,
                    recorder.clone(),
                    clock.clone(),
                    GUEST_MAC,
                    1500,
                );
                ide_dev.tamper_after_attestation = opts.dda_tamper;
                let iface = Interface::new(
                    Box::new(ide_dev) as Box<dyn NetDevice>,
                    InterfaceConfig::new(GUEST_IP),
                    clock.clone(),
                );
                let peer = SecurePeer::new(
                    peer_port,
                    PEER_IP,
                    clock.clone(),
                    opts.app_tls,
                    opts.seed ^ 1,
                );
                (
                    Guest::Stack { iface },
                    Box::new(NullBackend) as Box<dyn Backend>,
                    PeerNode::Direct(peer),
                )
            }
        };

        match &mut peer {
            PeerNode::Direct(p) => {
                p.set_telemetry(telemetry.clone());
                p.set_batch_policy(opts.batch);
                p.set_rekey_interval(opts.rekey_interval);
            }
            PeerNode::Tunnel { peer, .. } => {
                peer.set_telemetry(telemetry.clone());
                peer.set_batch_policy(opts.batch);
                peer.set_rekey_interval(opts.rekey_interval);
            }
        }
        let lanes = Lanes::new(clock.clone(), opts.queues);
        // Thread-per-queue mode: carve the cio backend into a steering
        // coordinator plus per-queue workers on persistent OS threads.
        let mut backend = backend;
        let parallel = if opts.parallel > 0 {
            let taken = std::mem::replace(&mut backend, Box::new(NullBackend) as Box<dyn Backend>);
            let Ok(cio) = taken.into_any().downcast::<CioNetBackend>() else {
                return Err(CioError::Fatal(
                    "parallel host execution needs a cio-ring backend",
                ));
            };
            Some(ParallelHost::new(
                *cio,
                opts.parallel,
                &mem,
                &telemetry,
                &flight,
            )?)
        } else {
            None
        };
        // One session-table shard per dataplane queue: a session's shard
        // IS its RSS lane, so steering and lookup agree by construction.
        let session_shards = opts.queues;
        Ok(World {
            kind,
            opts,
            clock,
            meter,
            recorder,
            tee,
            guest,
            backend,
            peer,
            conns: SessionTable::new(session_shards),
            draining: Vec::new(),
            flush_ids: Vec::new(),
            rng,
            anatomy,
            layout,
            lanes,
            seal_scratch: RecordScratch::new(),
            telemetry,
            flight,
            watchdog,
            parallel,
        })
    }
}

impl World {
    /// Starts building a world for the given boundary design with default
    /// options.
    pub fn builder(kind: BoundaryKind) -> WorldBuilder {
        WorldBuilder {
            kind,
            opts: WorldOptions::default(),
        }
    }

    /// Builds a world for the given boundary design — a thin wrapper over
    /// [`World::builder`] for callers that already hold a full
    /// [`WorldOptions`].
    ///
    /// # Errors
    ///
    /// [`CioError::Fatal`] for configuration errors; transport errors
    /// during setup.
    pub fn new(kind: BoundaryKind, opts: WorldOptions) -> Result<World, CioError> {
        World::builder(kind).options(opts).build()
    }

    /// The ring-level notification mode implied by the option pair: a
    /// non-`Always` policy upgrades doorbell rings to event-idx
    /// suppression; polling worlds are untouched (byte-identical no
    /// matter the policy).
    fn effective_notify(opts: &WorldOptions) -> NotifyMode {
        match (opts.notify, opts.notify_policy) {
            (NotifyMode::Polling, _) => NotifyMode::Polling,
            (NotifyMode::Doorbell, NotifyPolicy::Always) => NotifyMode::Doorbell,
            (NotifyMode::Doorbell, _) | (NotifyMode::EventIdx, _) => NotifyMode::EventIdx,
        }
    }

    fn net_ring_config(opts: &WorldOptions) -> RingConfig {
        if opts.recv_mode == RecvMode::Revoke {
            RingConfig {
                slots: 64,
                slot_size: 16,
                mode: DataMode::SharedArea,
                mtu: 1514,
                mac: GUEST_MAC.0,
                area_size: 64 * PAGE_SIZE as u32,
                page_aligned_payloads: true,
                notify: Self::effective_notify(opts),
                ..RingConfig::default()
            }
        } else {
            RingConfig {
                slots: 256,
                slot_size: 16,
                mode: DataMode::SharedArea,
                mtu: 1514,
                mac: GUEST_MAC.0,
                area_size: 1 << 19,
                notify: Self::effective_notify(opts),
                ..RingConfig::default()
            }
        }
    }

    fn alloc_ring_pair(
        mem: &GuestMemory,
        layout: &mut GuestLayoutAlloc,
        cfg: &RingConfig,
    ) -> Result<(CioRing, CioRing), CioError> {
        let mk = |mem: &GuestMemory, layout: &mut GuestLayoutAlloc| -> Result<CioRing, CioError> {
            let ring_pages = cfg.slots as usize * cfg.slot_size as usize / PAGE_SIZE + 1;
            let ring_base = layout.alloc_pages(ring_pages)?;
            let area_pages = cfg.area_size as usize / PAGE_SIZE;
            let area_base = layout.alloc_pages(area_pages.max(1))?;
            let ring = CioRing::new(cfg.clone(), ring_base, area_base)?;
            mem.share_range(ring_base, ring.ring_bytes())?;
            if ring.area_bytes() > 0 {
                mem.share_range(area_base, ring.area_bytes())?;
            }
            Ok(ring)
        };
        Ok((mk(mem, layout)?, mk(mem, layout)?))
    }

    #[allow(clippy::too_many_arguments)] // internal builder plumbing
    fn build_cio_rings(
        mem: &GuestMemory,
        layout: &mut GuestLayoutAlloc,
        cfg: &RingConfig,
        opts: &WorldOptions,
        nic_port: FabricPort,
        recorder: Recorder,
        clock: Clock,
        telemetry: &Telemetry,
        flight: &FlightRecorder,
    ) -> Result<CioRingParts, CioError> {
        let mut rings = Vec::with_capacity(opts.queues);
        let mut guest_pairs = Vec::with_capacity(opts.queues);
        let mut host_pairs = Vec::with_capacity(opts.queues);
        for q in 0..opts.queues {
            let (tx_ring, rx_ring) = Self::alloc_ring_pair(mem, layout, cfg)?;
            let mut guest_tx = Producer::new(tx_ring.clone(), mem.guest())?;
            let mut guest_rx = Consumer::new(rx_ring.clone(), mem.guest())?;
            guest_tx.set_telemetry(telemetry.clone(), q);
            guest_rx.set_telemetry(telemetry.clone(), q);
            guest_pairs.push((guest_tx, guest_rx));
            host_pairs.push((
                Consumer::new(tx_ring.clone(), mem.host())?,
                Producer::new(rx_ring.clone(), mem.host())?,
            ));
            rings.push((tx_ring, rx_ring));
        }
        let mut dev = CioRingDevice::new(guest_pairs, mem.clone(), opts.send_mode, opts.recv_mode)?;
        dev.set_batch_policy(opts.batch);
        let device = Box::new(dev) as Box<dyn NetDevice>;
        let mut backend = CioNetBackend::new(host_pairs, nic_port, recorder, clock)?;
        backend.set_copy_policy(opts.copy_policy);
        backend.set_batch_policy(opts.batch);
        backend.set_notify_policy(opts.notify_policy);
        backend.set_telemetry(telemetry.clone());
        backend.set_flight(flight.clone());
        Ok((device, backend, rings))
    }

    /// Layout facts for the adversary harness.
    pub fn anatomy(&self) -> &Anatomy {
        &self.anatomy
    }

    /// The boundary design of this world.
    pub fn kind(&self) -> BoundaryKind {
        self.kind
    }

    /// The virtual clock.
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    /// The shared meter.
    pub fn meter(&self) -> &Meter {
        &self.meter
    }

    /// The host-observability recorder.
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// The cost model.
    pub fn cost(&self) -> &CostModel {
        &self.opts.cost
    }

    /// The TEE (compartment/attestation access for tests).
    pub fn tee(&self) -> &Tee {
        &self.tee
    }

    /// The host device backend. Callers that need a concrete model
    /// (adversary harness, per-queue meters) downcast through
    /// [`Backend::as_any_mut`]:
    ///
    /// ```ignore
    /// let b = world
    ///     .backend_mut()
    ///     .as_any_mut()
    ///     .downcast_mut::<cio_host::CioNetBackend>();
    /// ```
    pub fn backend_mut(&mut self) -> &mut dyn Backend {
        &mut *self.backend
    }

    /// Dataplane queue count.
    pub fn queues(&self) -> usize {
        self.opts.queues
    }

    /// Host worker threads (`0` when host servicing runs on the stepping
    /// thread).
    pub fn parallel_threads(&self) -> usize {
        self.parallel.as_ref().map_or(0, ParallelHost::threads)
    }

    /// Per-queue traffic meter snapshots when the parallel host runs
    /// (index = queue id; empty in serial mode, where the backend's
    /// [`cio_host::CioNetBackend::queue_meter`] serves the same role).
    pub fn parallel_queue_meters(&self) -> Vec<cio_sim::MeterSnapshot> {
        self.parallel
            .as_ref()
            .map_or_else(Vec::new, ParallelHost::queue_meters)
    }

    /// Total empty host service passes burned by the adaptive notify
    /// controllers while hot (`NotifyPolicy::Adaptive`; `0` otherwise).
    /// E23's zero-load gate bounds this: at zero offered load, idle spin
    /// must stop within the controllers' idle budget instead of growing
    /// with wall time.
    pub fn notify_idle_passes(&mut self) -> u64 {
        if let Some(p) = &self.parallel {
            return p.idle_passes();
        }
        self.backend
            .as_any_mut()
            .downcast_mut::<CioNetBackend>()
            .map_or(0, |b| b.idle_passes())
    }

    /// The telemetry domain. Disabled (inert) unless the world was built
    /// with [`WorldBuilder::telemetry`]; use it to pull
    /// [`cio_sim::Profile`] tables, histograms, and exporter snapshots.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// The flight recorder. Disabled (inert) unless the world was built
    /// with [`WorldBuilder::observe`]; use it to pull typed event
    /// timelines, audit-chain records, and the exporters.
    pub fn flight(&self) -> &FlightRecorder {
        &self.flight
    }

    /// The online SLO watchdog, when [`WorldBuilder::observe`] armed it
    /// (breach counts and configuration; the pump runs inside
    /// [`World::step`]).
    pub fn watchdog(&self) -> Option<&SloWatchdog> {
        self.watchdog.as_ref()
    }

    /// Renders the merged Chrome-trace timeline (flight events as
    /// instants, telemetry cycle attribution as counters) — loadable in
    /// `chrome://tracing` / Perfetto.
    pub fn chrome_trace(&self) -> String {
        self.flight.chrome_trace(&self.telemetry)
    }

    /// The RSS lane / queue this session's flow steers to (`None` for a
    /// stale or forged handle).
    pub fn conn_lane(&self, c: SessionId) -> Option<usize> {
        self.conns.get(c).ok().map(|s| s.lane)
    }

    /// A snapshot of the session-table's own bookkeeping. The
    /// direct-mapped table satisfies `probes == lookups` by construction,
    /// and `capacity` stays bounded by peak concurrency under churn —
    /// both are assertable from here.
    pub fn session_stats(&self) -> SessionStats {
        SessionStats {
            live: self.conns.live(),
            peak_live: self.conns.peak_live(),
            capacity: self.conns.capacity(),
            created: self.conns.created(),
            reclaimed: self.conns.reclaimed(),
            lookups: self.conns.lookups(),
            probes: self.conns.probes(),
        }
    }

    /// TCP socket slots still draining toward release (diagnostic: zero
    /// once every closed session's connection has fully torn down).
    pub fn draining_sockets(&self) -> usize {
        self.draining.len()
    }

    /// The session's transmit-direction key epoch: `0` until the first
    /// rotation, advancing at every [`WorldOptions::rekey_interval`]
    /// boundary. `None` for stale handles, plaintext streams, and
    /// handshakes still in flight.
    pub fn session_epoch(&self, c: SessionId) -> Option<u64> {
        self.conns.get(c).ok().and_then(|s| s.stream.tx_epoch())
    }

    /// Guest memory (adversary harness).
    pub fn guest_memory(&self) -> &GuestMemory {
        self.tee.memory()
    }

    /// The dual boundary's (app, iostack) compartment ids, when present.
    pub fn dual_compartments(&self) -> Option<(cio_tee::CompartmentId, cio_tee::CompartmentId)> {
        match &self.guest {
            Guest::Dual { app, iostack, .. } => Some((*app, *iostack)),
            _ => None,
        }
    }

    /// Hot-swaps the network device (§3.2: "devices can be hot-swapped"):
    /// fresh rings are built with the *same fixed configuration* — there
    /// is nothing to renegotiate — and attached to the same link. Frames
    /// in flight in the old rings are lost; TCP recovers them.
    ///
    /// # Errors
    ///
    /// [`CioError::Unsupported`] for designs without a swappable cio-ring
    /// device.
    pub fn hot_swap_device(&mut self) -> Result<(), CioError> {
        if !matches!(
            self.kind,
            BoundaryKind::L2CioRing | BoundaryKind::DualBoundary
        ) {
            return Err(CioError::Unsupported(
                "hot swap is implemented for the cio-ring designs",
            ));
        }
        if self.parallel.is_some() {
            // Live worker threads hold the old rings; swapping under them
            // would strand a round mid-flight. Quiesce-and-swap is future
            // work; for now the two features are mutually exclusive.
            return Err(CioError::Unsupported(
                "hot swap is not available while the parallel host runs",
            ));
        }
        let old = std::mem::replace(&mut self.backend, Box::new(NullBackend));
        let Ok(old) = old.into_any().downcast::<CioNetBackend>() else {
            return Err(CioError::Unsupported("no cio backend present"));
        };
        let port = old.into_port();
        let mem = self.tee.memory().clone();
        let ring_cfg = Self::net_ring_config(&self.opts);
        let (device, backend, rings) = Self::build_cio_rings(
            &mem,
            &mut self.layout,
            &ring_cfg,
            &self.opts,
            port,
            self.recorder.clone(),
            self.clock.clone(),
            &self.telemetry,
            &self.flight,
        )?;
        self.anatomy.cio_rings = rings.first().cloned();
        self.anatomy.cio_queues = rings;
        // The dual boundary's I/O compartment owns the replacement rings
        // exactly like the originals.
        if let Guest::Dual { iostack, .. } = &self.guest {
            let iostack = *iostack;
            for (txr, rxr) in &self.anatomy.cio_queues {
                for r in [txr.clone(), rxr.clone()] {
                    self.tee.compartments_mut().assign(
                        iostack,
                        r.prod_idx_addr(),
                        r.ring_bytes(),
                    )?;
                    self.tee.compartments_mut().assign(
                        iostack,
                        r.payload_addr(0),
                        r.area_bytes(),
                    )?;
                }
            }
        }
        match &mut self.guest {
            Guest::Stack { iface } | Guest::Dual { iface, .. } => {
                *iface.device_mut() = device;
            }
            Guest::L5 { .. } => unreachable!("kind checked above"),
        }
        self.backend = Box::new(backend);
        Ok(())
    }

    /// Advances the whole world one scheduling round.
    ///
    /// With one queue this is strictly serial (byte-identical to the
    /// historical single-ring schedule). With `queues > 1` each queue's
    /// guest poll, host servicing, and connection flushing run on that
    /// queue's [`Lanes`] lane, so concurrent flows progress in parallel
    /// virtual time under the one shared clock.
    ///
    /// # Errors
    ///
    /// Propagates fatal transport errors (adversarial corruption surfaces
    /// as detected violations, not errors, unless the design cannot
    /// contain it).
    pub fn step(&mut self) -> Result<(), CioError> {
        let result = if self.parallel.is_some() {
            self.step_parallel()
        } else if self.opts.queues > 1 {
            self.step_multiqueue()
        } else {
            self.step_serial()
        };
        // Session housekeeping runs every round regardless of schedule:
        // fully-drained sockets release their slots, and the per-shard
        // session gauges publish (a no-op on a disabled telemetry handle).
        self.release_drained();
        self.telemetry.publish_sessions(
            self.conns.shard_live(),
            self.conns.shard_peak(),
            self.conns.created(),
            self.conns.reclaimed(),
            self.conns.capacity() as u64,
        );
        // The SLO watchdog consumes the telemetry RTT histograms
        // incrementally; it runs after lane absorption so parallel and
        // serial schedules see identical cumulative bucket states.
        if let Some(w) = &mut self.watchdog {
            w.pump(&self.telemetry, &self.flight, &self.meter, self.clock.now());
        }
        result
    }

    /// Releases the netstack slot (and ephemeral port) of every closed
    /// session whose TCP connection has fully drained; handles that have
    /// not quiesced yet stay queued for later rounds. For the in-TEE
    /// stacks release is local socket bookkeeping (nothing charged); on
    /// the L5 design the stack is host software, so even this freeing
    /// call is an observable world switch.
    fn release_drained(&mut self) {
        let mut i = 0;
        while i < self.draining.len() {
            let h = self.draining[i];
            let released = match &mut self.guest {
                Guest::Stack { iface } | Guest::Dual { iface, .. } => iface.tcp_release(h).is_ok(),
                Guest::L5 { svc } => {
                    self.tee.exit_to_host();
                    svc.release(h).is_ok()
                }
            };
            if released {
                self.draining.swap_remove(i);
            } else {
                i += 1;
            }
        }
    }

    fn step_serial(&mut self) -> Result<(), CioError> {
        let t0 = self.clock.now();
        {
            let _poll = self.telemetry.span(0, Stage::GuestPoll);
            match &mut self.guest {
                Guest::Stack { iface } | Guest::Dual { iface, .. } => {
                    iface.poll()?;
                }
                Guest::L5 { svc } => {
                    svc.poll()?;
                }
            }
        }
        if matches!(
            self.kind,
            BoundaryKind::L2VirtioUnhardened | BoundaryKind::L2VirtioHardened
        ) {
            self.backend.process()?;
        } else {
            // The adversary may have wedged a cio ring; detected violations
            // surface on the meter, and the world keeps stepping.
            let _ = self.backend.process();
        }
        {
            let _peer = self.telemetry.span(0, Stage::Peer);
            self.poll_peer();
        }
        // Flush any protocol bytes produced by stream processing.
        self.flush_outboxes()?;
        if self.clock.now() == t0 {
            self.clock.advance(self.opts.step_quantum);
            self.telemetry
                .attribute(0, Stage::Idle, self.opts.step_quantum);
        }
        Ok(())
    }

    /// The multi-queue schedule (cio-ring designs only): each queue is one
    /// virtual core on both sides of the boundary. Guest poll and host
    /// servicing for queue `q` accumulate on lane `q`; a barrier then
    /// advances the shared clock by the busiest lane — the wall-clock of
    /// `n` cores finishing the round in parallel. Peer servicing charges
    /// no guest cycles (the fabric models latency by timestamp), so it
    /// runs between barriers.
    fn step_multiqueue(&mut self) -> Result<(), CioError> {
        let t0 = self.clock.now();
        self.poll_guest_queues()?;
        // Fabric ingress steers frames to queues without charging guest
        // cycles; per-queue servicing then runs on the queue's lane.
        self.backend.ingress();
        let nq = self.opts.queues;
        for q in 0..self.backend.queue_count() {
            let base = self.lanes.begin(q % nq);
            let serviced = self.backend.service_queue(q);
            self.lanes.end(q % nq, base);
            // Multi-queue is cio-ring only: a wedged ring surfaces on the
            // meter and the world keeps stepping.
            let _ = serviced;
        }
        self.finish_lane_round(t0)
    }

    /// The thread-per-queue schedule: the guest side and round epilogue
    /// are exactly [`World::step_multiqueue`]'s; host ingress and
    /// per-queue servicing are one [`ParallelHost::round`] — every queue
    /// dispatched to its owning worker thread, then folded back (lane
    /// time, stamped transmissions, telemetry) in ascending queue order,
    /// so the round is record-for-record identical to the serial sweep
    /// while the servicing itself overlaps in wall clock.
    fn step_parallel(&mut self) -> Result<(), CioError> {
        let t0 = self.clock.now();
        self.poll_guest_queues()?;
        let mut host = self.parallel.take().expect("parallel mode");
        let round = host.round(&mut self.lanes, &self.telemetry, &self.clock);
        self.parallel = Some(host);
        round?;
        self.finish_lane_round(t0)
    }

    /// The per-queue guest-poll sweep shared by the lane-based schedules:
    /// each queue's receive path runs on that queue's lane.
    fn poll_guest_queues(&mut self) -> Result<(), CioError> {
        for q in 0..self.opts.queues {
            let base = self.lanes.begin(q);
            // The span lives strictly inside the lane region, where the
            // clock is positioned at this lane's local frontier.
            let polled = {
                let _poll = self.telemetry.span(q, Stage::GuestPoll);
                match &mut self.guest {
                    Guest::Stack { iface } | Guest::Dual { iface, .. } => {
                        iface.device_mut().select_rx_queue(Some(q));
                        let r = iface.poll();
                        iface.device_mut().select_rx_queue(None);
                        r
                    }
                    Guest::L5 { svc } => svc.poll(),
                }
            };
            self.lanes.end(q, base);
            polled?;
        }
        Ok(())
    }

    /// The lane-based round epilogue: peer servicing, per-connection
    /// flushing on each connection's lane, the lane barrier, and the
    /// idle quantum.
    fn finish_lane_round(&mut self, t0: Cycles) -> Result<(), CioError> {
        {
            let _peer = self.telemetry.span(0, Stage::Peer);
            self.poll_peer();
        }
        // Sweep live sessions in deterministic (shard, slot) order through
        // a reusable id buffer — a quarantine mid-sweep removes the
        // session, and later ids simply skip the vacated slot.
        let mut ids = std::mem::take(&mut self.flush_ids);
        ids.clear();
        self.conns.collect_ids(&mut ids);
        let mut result = Ok(());
        for &id in &ids {
            let Ok(s) = self.conns.get(id) else { continue };
            let lane = s.lane;
            let base = self.lanes.begin(lane);
            let flushed = self.flush_conn(id);
            self.lanes.end(lane, base);
            if let Err(e) = flushed {
                result = Err(e);
                break;
            }
        }
        self.flush_ids = ids;
        result?;
        self.lanes.sync();
        if self.clock.now() == t0 {
            self.clock.advance(self.opts.step_quantum);
            self.telemetry
                .attribute(0, Stage::Idle, self.opts.step_quantum);
        }
        Ok(())
    }

    fn poll_peer(&mut self) {
        match &mut self.peer {
            PeerNode::Direct(p) => p.poll(),
            PeerNode::Tunnel { gw_port, gw, peer } => {
                while let Some(blob) = gw_port.receive() {
                    gw.ingress(&blob);
                }
                gw.egress_each(|blob| {
                    let _ = gw_port.transmit(blob);
                });
                peer.poll();
            }
        }
    }

    /// Runs `n` steps.
    ///
    /// # Errors
    ///
    /// As [`World::step`].
    pub fn run(&mut self, n: usize) -> Result<(), CioError> {
        for _ in 0..n {
            self.step()?;
        }
        Ok(())
    }

    // ---------- Transport plumbing (per-design charging) ----------

    fn raw_send(&mut self, handle: SocketHandle, bytes: &[u8]) -> Result<(), CioError> {
        if bytes.is_empty() {
            return Ok(());
        }
        match &mut self.guest {
            Guest::Stack { iface } => {
                iface.tcp_send(handle, bytes)?;
            }
            Guest::Dual { iface, gate, .. } => {
                // Trusted-component-allocates zero-copy send (E9) needs
                // both the zero-copy option and an in-place copy policy;
                // otherwise the app→stack payload copy is charged.
                if self.opts.l5_app_copy || !self.opts.copy_policy.allows_in_place() {
                    let cost = self.opts.cost.copy(bytes.len());
                    self.clock.advance(cost);
                    self.meter.copies(1);
                    self.meter.bytes_copied(bytes.len() as u64);
                } else {
                    self.meter.bytes_zero_copy(bytes.len() as u64);
                }
                gate.call(|| iface.tcp_send(handle, bytes))?;
            }
            Guest::L5 { svc } => {
                // World switch plus marshalling: the payload is copied
                // through an untrusted exchange buffer on every call.
                let _exit = self.telemetry.span(0, Stage::HostExit);
                self.tee.exit_to_host();
                self.clock.advance(self.opts.cost.copy(bytes.len()));
                self.meter.copies(1);
                self.meter.bytes_copied(bytes.len() as u64);
                svc.send(handle, bytes)?;
            }
        }
        Ok(())
    }

    fn raw_recv(&mut self, handle: SocketHandle) -> Result<Vec<u8>, CioError> {
        let data = match &mut self.guest {
            Guest::Stack { iface } => iface.tcp_recv(handle, usize::MAX)?,
            Guest::Dual { iface, gate, .. } => gate.call(|| iface.tcp_recv(handle, usize::MAX))?,
            Guest::L5 { svc } => {
                let _exit = self.telemetry.span(0, Stage::HostExit);
                self.tee.exit_to_host();
                let data = svc.recv(handle, usize::MAX)?;
                if !data.is_empty() {
                    self.clock.advance(self.opts.cost.copy(data.len()));
                    self.meter.copies(1);
                    self.meter.bytes_copied(data.len() as u64);
                }
                data
            }
        };
        Ok(data)
    }

    fn raw_established(&mut self, handle: SocketHandle) -> Result<bool, CioError> {
        Ok(match &mut self.guest {
            Guest::Stack { iface } => iface.tcp_established(handle)?,
            Guest::Dual { iface, gate, .. } => gate.call(|| iface.tcp_established(handle))?,
            Guest::L5 { svc } => {
                self.tee.exit_to_host();
                svc.established(handle)?
            }
        })
    }

    // ---------- Application API ----------

    /// Opens a session to the peer service on `port` ([`ECHO_PORT`] or
    /// [`RPC_PORT`]). With `app_tls` the cTLS handshake starts as soon as
    /// TCP establishes; use [`World::establish`] to drive it.
    ///
    /// The returned [`SessionId`] is generational: it stays valid until
    /// [`World::close`] (or a fail-closed quarantine) reclaims the slot,
    /// after which every use returns [`CioError::Session`] — a reissued
    /// slot is unreachable through a stale handle.
    ///
    /// # Errors
    ///
    /// Stack/transport errors.
    pub fn connect(&mut self, port: u16) -> Result<SessionId, CioError> {
        let handle = match &mut self.guest {
            Guest::Stack { iface } => iface.tcp_connect(PEER_IP, port)?,
            Guest::Dual { iface, gate, .. } => gate.call(|| iface.tcp_connect(PEER_IP, port))?,
            Guest::L5 { svc } => {
                self.tee.exit_to_host();
                svc.connect(PEER_IP, port)?
            }
        };
        let (outbox, stream) = if self.opts.app_tls {
            let mut entropy = [0u8; 64];
            self.rng.fill_bytes(&mut entropy);
            let hooks = SimHooks {
                clock: self.clock.clone(),
                cost: self.opts.cost.clone(),
                meter: self.meter.clone(),
                telemetry: self.telemetry.clone(),
            };
            let (hello, mut stream) = SecureStream::client(entropy, Some(hooks));
            stream.set_batch_policy(self.opts.batch);
            stream.set_rekey_interval(self.opts.rekey_interval);
            (hello, stream)
        } else {
            let mut stream = SecureStream::plain();
            stream.set_batch_policy(self.opts.batch);
            (Vec::new(), stream)
        };
        // The connection's lane is its RSS queue: the same symmetric hash
        // the device and backend steer with, so all of this flow's work
        // lands on one virtual core.
        let lane = if self.opts.queues > 1 {
            match &mut self.guest {
                Guest::Stack { iface } | Guest::Dual { iface, .. } => {
                    let local_port = iface.tcp_local_port(handle)?;
                    let hash = rss::flow_hash((GUEST_IP, local_port), (PEER_IP, port));
                    (hash as usize) & (self.opts.queues - 1)
                }
                Guest::L5 { .. } => 0,
            }
        } else {
            0
        };
        // The session's shard is its lane: insert issues the generational
        // handle and the lane is recoverable from the handle's low bits.
        let id = self.conns.insert(
            lane,
            ConnState {
                handle,
                stream,
                outbox,
                app_in: Vec::new(),
                feed_scratch: FeedResult::default(),
                lane,
                epoch_seen: 0,
            },
        );
        self.meter.sessions_opened(1);
        self.flight
            .record(lane, EventKind::SessionOpen, sid_bits(id), 0);
        Ok(id)
    }

    fn conn_mut(&mut self, c: SessionId) -> Result<&mut ConnState, CioError> {
        Ok(self.conns.get_mut(c)?)
    }

    /// Fail-closed per-session teardown: a hostile or corrupt record on
    /// one stream kills *that session* — the slot is reclaimed, the TCP
    /// connection begins draining, and the failure is metered — while
    /// every other session on the shard keeps running. The stale handle
    /// then answers [`SessionError::Closed`] instead of touching a
    /// reissued slot.
    fn quarantine(&mut self, id: SessionId) {
        if let Ok(conn) = self.conns.remove(id) {
            let _ = self.raw_close(conn.handle);
            self.draining.push(conn.handle);
            self.meter.session_failures(1);
            self.flight
                .record(conn.lane, EventKind::SessionQuarantine, sid_bits(id), 0);
        }
    }

    /// Pumps received bytes through one session's stream and flushes its
    /// pending protocol bytes. A stream-layer failure (bad tag, broken
    /// handshake) quarantines the session instead of failing the world's
    /// step: per-session fail-closed, not fail-everything.
    fn flush_conn(&mut self, id: SessionId) -> Result<(), CioError> {
        let Ok(conn) = self.conns.get(id) else {
            return Ok(()); // closed earlier in this same round
        };
        let (lane, handle) = (conn.lane, conn.handle);
        let has_outbox = !conn.outbox.is_empty();
        let _flush = self.telemetry.span(lane, Stage::AppFlush);
        // Only push protocol bytes once TCP is up.
        if has_outbox && self.raw_established(handle)? {
            let mut out = match self.conns.get_mut(id) {
                Ok(conn) => std::mem::take(&mut conn.outbox),
                Err(_) => return Ok(()),
            };
            self.raw_send(handle, &out)?;
            // Hand the drained buffer back so steady-state flushing
            // reuses its capacity instead of reallocating every round.
            out.clear();
            if let Ok(conn) = self.conns.get_mut(id) {
                conn.outbox = out;
            }
        }
        let data = self.raw_recv(handle)?;
        if !data.is_empty() {
            let healthy = {
                let Ok(conn) = self.conns.get_mut(id) else {
                    return Ok(());
                };
                let was_handshaking = conn.stream.is_handshaking();
                let _open = self.telemetry.span(lane, Stage::RxOpen);
                match conn.stream.feed_into(&data, &mut conn.feed_scratch) {
                    Ok(()) => {
                        if was_handshaking && conn.stream.is_open() {
                            self.flight
                                .record(lane, EventKind::HandshakeOk, sid_bits(id), 0);
                        }
                        if !conn.feed_scratch.app_data.is_empty() {
                            self.flight.record(
                                lane,
                                EventKind::OpenOk,
                                conn.feed_scratch.app_data.len() as u64,
                                0,
                            );
                        }
                        if let Some(ep) = conn.stream.tx_epoch() {
                            if ep > conn.epoch_seen {
                                conn.epoch_seen = ep;
                                self.flight
                                    .record(lane, EventKind::SessionRekey, sid_bits(id), ep);
                            }
                        }
                        conn.app_in.extend_from_slice(&conn.feed_scratch.app_data);
                        conn.outbox.extend_from_slice(&conn.feed_scratch.to_send);
                        true
                    }
                    Err(_) => {
                        // A broken handshake and a bad record on an open
                        // stream are different forensic facts; both are
                        // security events and land in the audit chain.
                        let kind = if was_handshaking {
                            EventKind::HandshakeFail
                        } else {
                            EventKind::OpenFail
                        };
                        self.flight.record(lane, kind, sid_bits(id), 0);
                        false
                    }
                }
            };
            if !healthy {
                self.quarantine(id);
            }
        }
        Ok(())
    }

    /// Serial flush over all sessions (single-queue path), in the same
    /// deterministic (shard, slot) order the lane-based sweep uses.
    fn flush_outboxes(&mut self) -> Result<(), CioError> {
        let mut ids = std::mem::take(&mut self.flush_ids);
        ids.clear();
        self.conns.collect_ids(&mut ids);
        let mut result = Ok(());
        for &id in &ids {
            if let Err(e) = self.flush_conn(id) {
                result = Err(e);
                break;
            }
        }
        self.flush_ids = ids;
        result
    }

    /// Drives the world until the session is fully established (TCP +
    /// cTLS when enabled).
    ///
    /// # Errors
    ///
    /// [`CioError::Timeout`] after `max_steps`;
    /// [`CioError::Session`]`(`[`SessionError::Closed`]`)` if a hostile
    /// host poisoned the handshake and the session was quarantined
    /// mid-establishment (fail closed, never half-open).
    pub fn establish(&mut self, c: SessionId, max_steps: usize) -> Result<(), CioError> {
        for _ in 0..max_steps {
            self.step()?;
            let handle = self.conns.get(c)?.handle;
            let tcp_up = self.raw_established(handle)?;
            let s = self.conns.get(c)?;
            if tcp_up && s.stream.is_open() && s.outbox.is_empty() {
                return Ok(());
            }
        }
        Err(CioError::Timeout("connection establishment"))
    }

    /// Sends application data (sealed when cTLS is on); returns the bytes
    /// accepted.
    ///
    /// Backpressure is *not* a fault: when the connection's unsent backlog
    /// is over the high-water mark the call returns
    /// [`CioError::Transient`]`(`[`Transient::WouldBlock`]`)` with nothing
    /// consumed — step the world and retry. The §3.2 "errors are fatal"
    /// principle is reserved for host-facing interface faults.
    ///
    /// # Errors
    ///
    /// [`CioError::Transient`] for backpressure;
    /// [`CioError::Session`]`(`[`SessionError::Handshaking`]`)` before
    /// the handshake completes; stale handles return the other
    /// [`SessionError`] variants; stream/transport errors otherwise.
    pub fn send(&mut self, c: SessionId, data: &[u8]) -> Result<usize, CioError> {
        // One O(1) flow-table lookup opens every send: charged at the
        // cost model's `flow_lookup` and counted by the table itself.
        self.clock.advance(self.opts.cost.flow_lookup);
        let s = self.conns.get_mut(c)?;
        if s.stream.is_handshaking() {
            return Err(CioError::Session(SessionError::Handshaking));
        }
        let (handle, lane) = (s.handle, s.lane);
        // The backlog probe is the app reading its own socket bookkeeping
        // — no boundary is crossed, so nothing is charged.
        let backlog = match &mut self.guest {
            Guest::Stack { iface } | Guest::Dual { iface, .. } => iface.tcp_send_backlog(handle)?,
            Guest::L5 { .. } => 0,
        };
        if backlog > SEND_HIGH_WATER {
            self.meter.backpressure_wouldblock(1);
            self.flight
                .record(lane, EventKind::Backpressure, 0, backlog as u64);
            return Err(CioError::Transient(Transient::WouldBlock));
        }
        let base = (self.opts.queues > 1).then(|| self.lanes.begin(lane));
        // Seal into the world's reusable scratch (taken for the duration
        // so the borrow checker sees a local) — steady-state sends
        // allocate nothing.
        let mut scratch = std::mem::take(&mut self.seal_scratch);
        let result = {
            // Span scoped inside the lane window (clock is lane-local).
            let _send = self.telemetry.span(lane, Stage::GuestSend);
            let result = (|| {
                {
                    let _seal = self.telemetry.span(lane, Stage::TxSeal);
                    self.conn_mut(c)?.stream.seal_into(data, &mut scratch)?;
                }
                self.raw_send(handle, scratch.as_slice())
            })();
            result
        };
        self.seal_scratch = scratch;
        if let Some(base) = base {
            self.lanes.end(lane, base);
        }
        match result {
            Ok(()) => {
                self.flight
                    .record(lane, EventKind::SealOk, data.len() as u64, 1);
                Ok(data.len())
            }
            // A saturated device queue is backpressure too (TCP keeps the
            // sealed record buffered; flushing resumes on later steps).
            Err(CioError::Net(cio_netstack::NetError::DeviceFull)) => {
                self.meter.backpressure_again(1);
                self.flight
                    .record(lane, EventKind::Backpressure, 1, backlog as u64);
                Err(CioError::Transient(Transient::AgainLater))
            }
            Err(e) => {
                self.flight
                    .record(lane, EventKind::SealFail, data.len() as u64, 0);
                Err(e)
            }
        }
    }

    /// Appends whatever application bytes have arrived on `c` to
    /// `scratch` without clearing it (the accumulation primitive under
    /// the receive family).
    fn drain_into(&mut self, c: SessionId, scratch: &mut SessionScratch) -> Result<(), CioError> {
        // Data may have arrived during steps; outboxes were pumped there.
        // Like `send`, the receive side opens with one charged O(1)
        // flow-table lookup.
        self.clock.advance(self.opts.cost.flow_lookup);
        let s = self.conns.get_mut(c)?;
        scratch.buf.extend_from_slice(&s.app_in);
        s.app_in.clear();
        Ok(())
    }

    /// Takes decrypted application bytes received so far into the
    /// caller's reusable scratch (cleared first); returns the byte count.
    ///
    /// This is the hot-path receive: a steady-state consumer holds one
    /// [`SessionScratch`] and neither side of the exchange allocates
    /// after warmup.
    ///
    /// # Errors
    ///
    /// [`CioError::Session`] for stale/forged handles.
    pub fn recv_into(
        &mut self,
        c: SessionId,
        scratch: &mut SessionScratch,
    ) -> Result<usize, CioError> {
        scratch.buf.clear();
        self.drain_into(c, scratch)?;
        Ok(scratch.buf.len())
    }

    /// Takes decrypted application bytes received so far.
    ///
    /// Allocating convenience over [`World::recv_into`]; hot paths should
    /// hold a [`SessionScratch`] and use the `_into` form.
    ///
    /// # Errors
    ///
    /// [`CioError::Session`] for stale/forged handles.
    pub fn recv(&mut self, c: SessionId) -> Result<Vec<u8>, CioError> {
        let mut scratch = SessionScratch::new();
        self.recv_into(c, &mut scratch)?;
        Ok(scratch.buf)
    }

    /// Drives the world until `want` application bytes arrive on `c`,
    /// accumulating into the caller's reusable scratch (cleared first);
    /// returns the byte count.
    ///
    /// # Errors
    ///
    /// [`CioError::Timeout`] after `max_steps`; [`CioError::Session`] if
    /// the session closes (or is quarantined) before `want` bytes arrive.
    pub fn recv_exact_into(
        &mut self,
        c: SessionId,
        want: usize,
        max_steps: usize,
        scratch: &mut SessionScratch,
    ) -> Result<usize, CioError> {
        scratch.buf.clear();
        for _ in 0..max_steps {
            self.drain_into(c, scratch)?;
            if scratch.buf.len() >= want {
                return Ok(scratch.buf.len());
            }
            self.step()?;
        }
        self.drain_into(c, scratch)?;
        if scratch.buf.len() >= want {
            return Ok(scratch.buf.len());
        }
        Err(CioError::Timeout("recv_exact"))
    }

    /// Drives the world until `want` application bytes arrive on `c`.
    ///
    /// Allocating convenience over [`World::recv_exact_into`].
    ///
    /// # Errors
    ///
    /// As [`World::recv_exact_into`].
    pub fn recv_exact(
        &mut self,
        c: SessionId,
        want: usize,
        max_steps: usize,
    ) -> Result<Vec<u8>, CioError> {
        let mut scratch = SessionScratch::new();
        self.recv_exact_into(c, want, max_steps, &mut scratch)?;
        Ok(scratch.buf)
    }

    /// TCP close across the boundary designs (the charged call under
    /// [`World::close`] and the quarantine path).
    fn raw_close(&mut self, handle: SocketHandle) -> Result<(), CioError> {
        match &mut self.guest {
            Guest::Stack { iface } => iface.tcp_close(handle)?,
            Guest::Dual { iface, gate, .. } => gate.call(|| iface.tcp_close(handle))?,
            Guest::L5 { svc } => {
                self.tee.exit_to_host();
                svc.close(handle)?;
            }
        }
        Ok(())
    }

    /// Closes a session: TCP FIN goes out, the stream is dropped, and the
    /// session slot is reclaimed immediately — any copy of the handle is
    /// now stale and answers [`CioError::Session`]. The TCP handle joins
    /// the drain queue and its socket slot is released once the
    /// connection quiesces, so both table and socket memory stay bounded
    /// by peak concurrency under churn.
    ///
    /// # Errors
    ///
    /// [`CioError::Session`] for stale/forged handles; transport errors.
    pub fn close(&mut self, c: SessionId) -> Result<(), CioError> {
        let conn = self.conns.remove(c).map_err(CioError::from)?;
        self.meter.sessions_closed(1);
        self.flight
            .record(conn.lane, EventKind::SessionClose, sid_bits(c), 0);
        self.raw_close(conn.handle)?;
        self.draining.push(conn.handle);
        Ok(())
    }
}

/// Packs a generational session handle into one flight-event payload
/// word (`generation << 32 | index`).
fn sid_bits(id: SessionId) -> u64 {
    u64::from(id.generation()) << 32 | u64::from(id.index())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_opts() -> WorldOptions {
        WorldOptions {
            link: LinkParams {
                latency: Cycles(1_000),
                loss: 0.0,
            },
            ..WorldOptions::default()
        }
    }

    fn echo_roundtrip(kind: BoundaryKind, opts: WorldOptions) {
        let mut w = World::new(kind, opts).unwrap();
        let c = w.connect(ECHO_PORT).unwrap();
        w.establish(c, 3_000)
            .unwrap_or_else(|e| panic!("{kind}: establish failed: {e}"));
        w.send(c, b"hello confidential world").unwrap();
        let got = w
            .recv_exact(c, 24, 3_000)
            .unwrap_or_else(|e| panic!("{kind}: echo failed: {e}"));
        assert_eq!(&got, b"hello confidential world", "{kind}");
    }

    #[test]
    fn echo_over_every_boundary() {
        for kind in ALL_BOUNDARIES {
            echo_roundtrip(kind, quick_opts());
        }
    }

    #[test]
    fn multiqueue_echo_with_many_connections() {
        for kind in [BoundaryKind::L2CioRing, BoundaryKind::DualBoundary] {
            let mut w = World::builder(kind)
                .queues(4)
                .options(WorldOptions {
                    queues: 4,
                    ..quick_opts()
                })
                .build()
                .unwrap();
            let conns: Vec<SessionId> = (0..8).map(|_| w.connect(ECHO_PORT).unwrap()).collect();
            for &c in &conns {
                w.establish(c, 5_000).unwrap();
            }
            // Flows must spread beyond lane 0 for the test to mean much.
            let lanes: std::collections::HashSet<usize> =
                conns.iter().map(|&c| w.conn_lane(c).unwrap()).collect();
            assert!(lanes.len() > 1, "{kind}: all flows steered to one lane");
            for (i, &c) in conns.iter().enumerate() {
                let msg = format!("hello from flow {i}");
                w.send(c, msg.as_bytes()).unwrap();
            }
            for (i, &c) in conns.iter().enumerate() {
                let want = format!("hello from flow {i}");
                let got = w.recv_exact(c, want.len(), 5_000).unwrap();
                assert_eq!(got, want.as_bytes(), "{kind} conn {i}");
            }
        }
    }

    #[test]
    fn parallel_host_echoes_and_matches_the_serial_schedule() {
        // The same workload on the serial multiqueue sweep and on live
        // worker threads must meter and clock identically: the parallel
        // host is a wall-clock optimization, not a semantic change.
        let run = |threads: usize| {
            let mut w = World::builder(BoundaryKind::L2CioRing)
                .queues(4)
                .parallel(threads)
                .options(WorldOptions {
                    queues: 4,
                    parallel: threads,
                    ..quick_opts()
                })
                .build()
                .unwrap();
            let conns: Vec<SessionId> = (0..6).map(|_| w.connect(ECHO_PORT).unwrap()).collect();
            for &c in &conns {
                w.establish(c, 5_000).unwrap();
            }
            for (i, &c) in conns.iter().enumerate() {
                w.send(c, format!("flow {i} payload").as_bytes()).unwrap();
            }
            for (i, &c) in conns.iter().enumerate() {
                let want = format!("flow {i} payload");
                let got = w.recv_exact(c, want.len(), 5_000).unwrap();
                assert_eq!(got, want.as_bytes(), "threads={threads} conn {i}");
            }
            (w.meter().snapshot(), w.clock().now())
        };
        let serial = run(0);
        assert_eq!(serial, run(1), "1 worker thread vs serial sweep");
        assert_eq!(serial, run(4), "4 worker threads vs serial sweep");
    }

    #[test]
    fn parallel_builder_validates() {
        // Worker count must divide the queue count.
        assert!(matches!(
            World::builder(BoundaryKind::L2CioRing)
                .queues(4)
                .parallel(3)
                .build(),
            Err(CioError::Fatal(_))
        ));
        // Parallel execution is a cio-ring feature.
        assert!(matches!(
            World::builder(BoundaryKind::L2VirtioHardened)
                .parallel(1)
                .build(),
            Err(CioError::Fatal(_))
        ));
        // Hot swap and live workers are mutually exclusive.
        let mut w = World::builder(BoundaryKind::L2CioRing)
            .queues(2)
            .parallel(2)
            .build()
            .unwrap();
        assert_eq!(w.parallel_threads(), 2);
        assert!(matches!(w.hot_swap_device(), Err(CioError::Unsupported(_))));
    }

    #[test]
    fn batched_echo_roundtrips_on_ring_boundaries() {
        for kind in [
            BoundaryKind::L2CioRing,
            BoundaryKind::DualBoundary,
            BoundaryKind::Tunneled,
        ] {
            for batch in [
                BatchPolicy::Fixed(8),
                BatchPolicy::Adaptive {
                    max: 8,
                    latency_cap: Cycles(50_000),
                },
            ] {
                let mut w = World::builder(kind)
                    .options(quick_opts())
                    .batch(batch)
                    .build()
                    .unwrap();
                let c = w.connect(ECHO_PORT).unwrap();
                w.establish(c, 5_000).unwrap();
                for round in 0..3u8 {
                    let msg = vec![round.wrapping_mul(37); 700];
                    w.send(c, &msg).unwrap();
                    let got = w.recv_exact(c, msg.len(), 5_000).unwrap();
                    assert_eq!(got, msg, "{kind} {batch:?} round {round}");
                }
            }
        }
    }

    #[test]
    fn serial_batch_policy_is_bit_identical_to_default() {
        // The default-constructed world never touches a batched path: a
        // world explicitly configured Serial must meter identically.
        let run = |batch: BatchPolicy| {
            let mut w = World::builder(BoundaryKind::L2CioRing)
                .options(quick_opts())
                .batch(batch)
                .build()
                .unwrap();
            let c = w.connect(ECHO_PORT).unwrap();
            w.establish(c, 3_000).unwrap();
            w.send(c, &[0x3C; 900]).unwrap();
            let _ = w.recv_exact(c, 900, 3_000).unwrap();
            (w.meter().snapshot(), w.clock().now())
        };
        assert_eq!(run(BatchPolicy::Serial), run(BatchPolicy::default()));
    }

    #[test]
    fn builder_constructs_and_validates() {
        let w = World::builder(BoundaryKind::L2CioRing)
            .queues(2)
            .seed(99)
            .build()
            .unwrap();
        assert_eq!(w.queues(), 2);
        assert!(matches!(
            World::builder(BoundaryKind::L2CioRing).queues(3).build(),
            Err(CioError::Fatal(_))
        ));
        assert!(matches!(
            World::builder(BoundaryKind::L2CioRing)
                .queues(2 * MAX_QUEUES)
                .build(),
            Err(CioError::Fatal(_))
        ));
        // Multi-queue is a cio-ring feature; other designs reject it at
        // construction (stateless principle: misconfig is fatal, early).
        assert!(matches!(
            World::builder(BoundaryKind::L2VirtioHardened)
                .queues(2)
                .build(),
            Err(CioError::Fatal(_))
        ));
    }

    #[test]
    fn send_backpressure_is_transient_not_fatal() {
        let mut w = World::new(BoundaryKind::L2CioRing, quick_opts()).unwrap();
        let c = w.connect(ECHO_PORT).unwrap();
        w.establish(c, 3_000).unwrap();
        // Without stepping, the TCP send window fills and the unsent
        // backlog grows past the high-water mark.
        let chunk = vec![0x42u8; 16 * 1024];
        let mut hit_backpressure = false;
        for _ in 0..64 {
            match w.send(c, &chunk) {
                Ok(n) => assert_eq!(n, chunk.len()),
                Err(e) => {
                    assert!(e.is_transient(), "expected backpressure, got {e}");
                    assert_eq!(e, CioError::Transient(Transient::WouldBlock));
                    hit_backpressure = true;
                    break;
                }
            }
        }
        assert!(hit_backpressure, "never hit the high-water mark");
        // The bounce is metered at the send site.
        assert!(
            w.meter().snapshot().backpressure_wouldblock >= 1,
            "WouldBlock bounce must increment the backpressure meter"
        );
        // Backpressure is recoverable by construction: drain and retry.
        w.run(2_000).unwrap();
        assert_eq!(w.send(c, b"after drain").unwrap(), 11);
    }

    #[test]
    fn echo_plaintext_mode() {
        for kind in [BoundaryKind::L5Host, BoundaryKind::L2CioRing] {
            let opts = WorldOptions {
                app_tls: false,
                ..quick_opts()
            };
            echo_roundtrip(kind, opts);
        }
    }

    #[test]
    fn rpc_roundtrip_dual_boundary() {
        let mut w = World::new(BoundaryKind::DualBoundary, quick_opts()).unwrap();
        let c = w.connect(RPC_PORT).unwrap();
        w.establish(c, 3_000).unwrap();
        w.send(c, &8_000u32.to_le_bytes()).unwrap();
        let got = w.recv_exact(c, 8_004, 5_000).unwrap();
        assert_eq!(got.len(), 8_004);
        assert_eq!(&got[..4], &8_000u32.to_le_bytes());
        assert!(got[4..].iter().all(|&b| b == 0x5A));
    }

    #[test]
    fn dual_boundary_charges_compartment_switches() {
        let mut w = World::new(BoundaryKind::DualBoundary, quick_opts()).unwrap();
        let c = w.connect(ECHO_PORT).unwrap();
        w.establish(c, 3_000).unwrap();
        let before = w.meter().snapshot().compartment_switches;
        w.send(c, b"x").unwrap();
        assert!(w.meter().snapshot().compartment_switches > before);
        // And no world exits on the data path beyond what the rings do:
        // the L5 design would have paid one exit per call.
    }

    #[test]
    fn l5_charges_host_transitions_per_call() {
        let mut w = World::new(BoundaryKind::L5Host, quick_opts()).unwrap();
        let c = w.connect(ECHO_PORT).unwrap();
        let before = w.meter().snapshot().host_transitions;
        w.establish(c, 3_000).unwrap();
        w.send(c, b"x").unwrap();
        let after = w.meter().snapshot().host_transitions;
        assert!(after > before + 2, "exits: {before} -> {after}");
    }

    #[test]
    fn hardened_virtio_pays_bounce_copies() {
        let mut w = World::new(BoundaryKind::L2VirtioHardened, quick_opts()).unwrap();
        let c = w.connect(ECHO_PORT).unwrap();
        w.establish(c, 3_000).unwrap();
        let before = w.meter().snapshot();
        w.send(c, &[0x41; 1000]).unwrap();
        let _ = w.recv_exact(c, 1000, 3_000).unwrap();
        let d = w.meter().snapshot().delta(&before);
        assert!(d.copies >= 2, "bounce copies on both directions: {d:?}");
    }

    #[test]
    fn tunneled_in_place_policy_eliminates_dataplane_copies() {
        let run = |policy: CopyPolicy| {
            let mut w = World::builder(BoundaryKind::Tunneled)
                .options(quick_opts())
                .copy_policy(policy)
                .build()
                .unwrap();
            let c = w.connect(ECHO_PORT).unwrap();
            w.establish(c, 3_000).unwrap();
            let before = w.meter().snapshot();
            w.send(c, &[0x7A; 512]).unwrap();
            let _ = w.recv_exact(c, 512, 3_000).unwrap();
            w.meter().snapshot().delta(&before)
        };
        let in_place = run(CopyPolicy::InPlace);
        let staged = run(CopyPolicy::CopyEarly);
        assert!(
            in_place.copies < staged.copies,
            "in-place {} vs staged {} copies",
            in_place.copies,
            staged.copies
        );
        assert!(
            in_place.bytes_zero_copy > staged.bytes_zero_copy,
            "records positioned in place must be metered as zero-copy bytes"
        );
    }

    #[test]
    fn tunneled_hides_headers_from_host() {
        let mut w = World::new(BoundaryKind::Tunneled, quick_opts()).unwrap();
        let c = w.connect(ECHO_PORT).unwrap();
        w.establish(c, 3_000).unwrap();
        w.send(c, b"secret").unwrap();
        let _ = w.recv_exact(c, 6, 3_000).unwrap();
        let tunnel_summary = w.recorder().summary();

        let mut w2 = World::new(BoundaryKind::L2CioRing, quick_opts()).unwrap();
        let c2 = w2.connect(ECHO_PORT).unwrap();
        w2.establish(c2, 3_000).unwrap();
        w2.send(c2, b"secret").unwrap();
        let _ = w2.recv_exact(c2, 6, 3_000).unwrap();
        let plain_summary = w2.recorder().summary();

        // Per-event information is strictly lower for the tunnel.
        let t_bits_per_event = tunnel_summary.bits as f64 / tunnel_summary.events as f64;
        let p_bits_per_event = plain_summary.bits as f64 / plain_summary.events as f64;
        assert!(
            t_bits_per_event < p_bits_per_event,
            "tunnel {t_bits_per_event} vs plain {p_bits_per_event}"
        );
    }

    #[test]
    fn dda_tampering_device_is_caught_by_app_tls() {
        let opts = WorldOptions {
            dda_tamper: true,
            ..quick_opts()
        };
        let mut w = World::new(BoundaryKind::Dda, opts).unwrap();
        let c = w.connect(ECHO_PORT).unwrap();
        // The device corrupts frames; TCP checksums drop them and nothing
        // ever completes — or if anything slipped through, cTLS would
        // reject it. Either way establishment cannot succeed.
        assert!(w.establish(c, 500).is_err());
    }
}
