//! Complete simulated deployments: one [`World`] per boundary design.
//!
//! A `World` owns everything Figure 1 draws — the confidential workload
//! (①), host software (③), host hardware / fabric (④), and a remote
//! confidential peer — wired for one [`BoundaryKind`]. All worlds expose
//! the same application API (connect / send / recv over optionally-cTLS
//! streams), so experiments E4/E9/E10/E11 run identical workloads across
//! designs and differences are attributable to the boundary alone.

pub mod speer;

use crate::dev::{
    CioRingDevice, GuestLayoutAlloc, HardenedVirtioNetDevice, IdeNetDevice, RecvMode, SendMode,
    TunnelDevice, VirtqueueNetDevice, VqArena,
};
use crate::CioError;
use cio_ctls::{Channel, RecordScratch, SimHooks};
use cio_host::backend::{CioNetBackend, VirtioNetBackend};
use cio_host::fabric::{Fabric, FabricPort, LinkParams};
use cio_host::l5::L5Service;
use cio_host::observe::Recorder;
use cio_mem::{GuestAddr, GuestMemory, PAGE_SIZE};
use cio_netstack::stack::{Interface, InterfaceConfig, SocketHandle};
use cio_netstack::{Ipv4Addr, MacAddr, NetDevice, PairDevice};
use cio_sim::{Clock, CostModel, Cycles, Meter, SimRng};
use cio_tee::compartment::Gate;
use cio_tee::dda::{spdm_attest, Device, IdeChannel};
use cio_tee::{Tee, TeeKind};
use cio_vring::cioring::{CioRing, Consumer, DataMode, NotifyMode, Producer, RingConfig};
use cio_vring::hardened::HardenedDriver;
use cio_vring::virtqueue::{
    driver_negotiate, ConfigSpace, DeviceSide, Driver, Layout, F_NET_MAC, F_NET_MTU, F_VERSION_1,
};
use speer::{FeedResult, SecurePeer, SecureStream, TunnelGateway};

pub use speer::{ECHO_PORT, RPC_PORT};

/// The boundary designs under comparison (see crate docs for the table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BoundaryKind {
    /// Socket-level boundary; the stack is host software (Graphene/CCF).
    L5Host,
    /// Raw virtio split queue, no hardening (traditional lift-and-shift,
    /// DPDK-style shared buffers, polling).
    L2VirtioUnhardened,
    /// Linux-retrofit hardened virtio: validation + SWIOTLB + interrupts.
    L2VirtioHardened,
    /// The paper's safe ring, single confidential domain (no intra-TEE
    /// boundary) — the "ShieldBox with a better interface" point.
    L2CioRing,
    /// The paper's full design: safe ring at L2 plus the intra-TEE L5
    /// compartment boundary (ternary trust model).
    DualBoundary,
    /// L2-over-TLS to a trusted gateway (LightBox-shaped).
    Tunneled,
    /// SPDM-attested, IDE-protected direct device assignment (§3.4).
    Dda,
}

/// All boundary kinds, for experiment iteration.
pub const ALL_BOUNDARIES: [BoundaryKind; 7] = [
    BoundaryKind::L5Host,
    BoundaryKind::L2VirtioUnhardened,
    BoundaryKind::L2VirtioHardened,
    BoundaryKind::L2CioRing,
    BoundaryKind::DualBoundary,
    BoundaryKind::Tunneled,
    BoundaryKind::Dda,
];

impl std::fmt::Display for BoundaryKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            BoundaryKind::L5Host => "l5-host",
            BoundaryKind::L2VirtioUnhardened => "virtio-unhardened",
            BoundaryKind::L2VirtioHardened => "virtio-hardened",
            BoundaryKind::L2CioRing => "cio-ring",
            BoundaryKind::DualBoundary => "dual-boundary",
            BoundaryKind::Tunneled => "tunneled",
            BoundaryKind::Dda => "dda",
        };
        f.write_str(s)
    }
}

/// Tuning for a world.
#[derive(Clone)]
pub struct WorldOptions {
    /// The platform cost model.
    pub cost: CostModel,
    /// Fabric link characteristics.
    pub link: LinkParams,
    /// End-to-end cTLS for application data (mandatory for the dual
    /// boundary; uniform across designs for fair comparison).
    pub app_tls: bool,
    /// cio-ring transmit mode.
    pub send_mode: SendMode,
    /// cio-ring receive mode.
    pub recv_mode: RecvMode,
    /// cio-ring notification mode.
    pub notify: NotifyMode,
    /// Dual boundary: charge an app→stack payload copy instead of
    /// trusted-component-allocates zero-copy (E9's contrast arm).
    pub l5_app_copy: bool,
    /// Deterministic seed.
    pub seed: u64,
    /// DDA: the attested device misbehaves after attestation.
    pub dda_tamper: bool,
    /// Minimum virtual-time progress per [`World::step`].
    pub step_quantum: Cycles,
    /// TEE flavour.
    pub tee_kind: TeeKind,
}

impl Default for WorldOptions {
    fn default() -> Self {
        WorldOptions {
            cost: CostModel::default(),
            link: LinkParams::default(),
            app_tls: true,
            send_mode: SendMode::Copy,
            recv_mode: RecvMode::Copy,
            notify: NotifyMode::Polling,
            l5_app_copy: false,
            seed: 0xC10,
            dda_tamper: false,
            step_quantum: Cycles(5_000),
            tee_kind: TeeKind::ConfidentialVm,
        }
    }
}

/// Guest address of the world (fixed).
pub const GUEST_IP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
/// Peer address of the world (fixed).
pub const PEER_IP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

const GUEST_MAC: MacAddr = MacAddr([0x02, 0, 0, 0, 0, 0x01]);
const PEER_MAC: MacAddr = MacAddr([0x02, 0, 0, 0, 0, 0x02]);
const FABRIC_MTU: usize = 2200;
const GUEST_PAGES: usize = 4096;

// One long-lived guest per world: variant size skew is irrelevant.
#[allow(clippy::large_enum_variant)]
enum Guest {
    Stack {
        iface: Interface<Box<dyn NetDevice>>,
    },
    Dual {
        iface: Interface<Box<dyn NetDevice>>,
        gate: Gate,
        app: cio_tee::CompartmentId,
        iostack: cio_tee::CompartmentId,
    },
    L5 {
        svc: L5Service,
    },
}

#[allow(clippy::large_enum_variant)] // one per world
enum Backend {
    None,
    Virtio(VirtioNetBackend),
    Cio(CioNetBackend),
}

#[allow(clippy::large_enum_variant)] // one per world
enum PeerNode {
    Direct(SecurePeer<FabricPort>),
    Tunnel {
        gw_port: FabricPort,
        gw: TunnelGateway,
        peer: SecurePeer<PairDevice>,
    },
}

/// Pieces produced when building a cio-ring data path.
type CioRingParts = (Box<dyn NetDevice>, CioNetBackend, (CioRing, CioRing));

/// Layout facts the adversary harness needs to aim its attacks.
#[derive(Debug, Clone, Default)]
pub struct Anatomy {
    /// Virtqueue layouts (tx, rx) and the config page, when present.
    pub virtio: Option<(Layout, Layout, GuestAddr)>,
    /// cio rings (tx, rx), when present.
    pub cio_rings: Option<(CioRing, CioRing)>,
}

/// Handle to one application connection in a world.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conn(usize);

struct ConnState {
    handle: SocketHandle,
    stream: SecureStream,
    /// Protocol bytes (handshake continuations) awaiting transmission.
    outbox: Vec<u8>,
    /// Decrypted application bytes awaiting the app.
    app_in: Vec<u8>,
    /// Reusable stream-feed output buffers (steady state allocates
    /// nothing per poll).
    feed_scratch: FeedResult,
}

/// One complete simulated deployment.
pub struct World {
    kind: BoundaryKind,
    opts: WorldOptions,
    clock: Clock,
    meter: Meter,
    recorder: Recorder,
    tee: Tee,
    guest: Guest,
    backend: Backend,
    peer: PeerNode,
    conns: Vec<ConnState>,
    rng: SimRng,
    anatomy: Anatomy,
    layout: GuestLayoutAlloc,
    /// Reusable scratch for sealing outgoing application data.
    seal_scratch: RecordScratch,
}

impl World {
    /// Builds a world for the given boundary design.
    ///
    /// # Errors
    ///
    /// [`CioError::Fatal`] for configuration errors; transport errors
    /// during setup.
    pub fn new(kind: BoundaryKind, opts: WorldOptions) -> Result<World, CioError> {
        let tee = Tee::new(opts.tee_kind, GUEST_PAGES, opts.cost.clone());
        let clock = tee.clock().clone();
        let meter = tee.meter().clone();
        let mem = tee.memory().clone();
        let recorder = Recorder::new();
        let fabric = Fabric::new(clock.clone(), opts.seed);
        let mut rng = SimRng::seed_from(opts.seed ^ 0x5EED);

        let nic_port = fabric.port(GUEST_MAC, FABRIC_MTU);
        let peer_port = fabric.port(PEER_MAC, FABRIC_MTU);
        fabric.connect(&nic_port, &peer_port, opts.link)?;

        let mut anatomy = Anatomy::default();
        let mut tee = tee;
        let mut layout =
            GuestLayoutAlloc::new(GuestAddr(0), GuestAddr((GUEST_PAGES * PAGE_SIZE) as u64));

        let (guest, backend, peer) = match kind {
            BoundaryKind::L5Host => {
                let svc = L5Service::new(
                    nic_port,
                    InterfaceConfig::new(GUEST_IP),
                    clock.clone(),
                    recorder.clone(),
                );
                let peer = SecurePeer::new(
                    peer_port,
                    PEER_IP,
                    clock.clone(),
                    opts.app_tls,
                    opts.seed ^ 1,
                );
                (Guest::L5 { svc }, Backend::None, PeerNode::Direct(peer))
            }

            BoundaryKind::L2VirtioUnhardened | BoundaryKind::L2VirtioHardened => {
                let hardened = kind == BoundaryKind::L2VirtioHardened;
                let qsize: u16 = 128;
                let stride: u32 = 2048;

                let tx_q = layout.alloc_pages(2)?;
                let rx_q = layout.alloc_pages(2)?;
                let cfg_page = layout.alloc_pages(1)?;
                mem.share_range(tx_q, 2 * PAGE_SIZE)?;
                mem.share_range(rx_q, 2 * PAGE_SIZE)?;
                mem.share_range(cfg_page, PAGE_SIZE)?;

                let tx_layout = Layout::new(tx_q, qsize)?;
                let rx_layout = Layout::new(rx_q, qsize)?;
                anatomy.virtio = Some((tx_layout, rx_layout, cfg_page));
                let cfg = ConfigSpace { base: cfg_page };
                cfg.device_init(
                    &mem.host(),
                    GUEST_MAC.0,
                    1500,
                    F_VERSION_1 | F_NET_MAC | F_NET_MTU,
                )?;

                let device: Box<dyn NetDevice> = if hardened {
                    let bounce_pages = usize::from(qsize);
                    let tx_bounce = layout.alloc_pages(bounce_pages)?;
                    let rx_bounce = layout.alloc_pages(bounce_pages)?;
                    let tx_drv = HardenedDriver::new(
                        &mem,
                        tx_layout,
                        cfg,
                        F_VERSION_1 | F_NET_MAC | F_NET_MTU,
                        tx_bounce,
                        bounce_pages,
                        meter.clone(),
                    )?;
                    let rx_drv = HardenedDriver::new(
                        &mem,
                        rx_layout,
                        cfg,
                        F_VERSION_1 | F_NET_MAC | F_NET_MTU,
                        rx_bounce,
                        bounce_pages,
                        meter.clone(),
                    )?;
                    Box::new(HardenedVirtioNetDevice::new(
                        tx_drv,
                        rx_drv,
                        u32::from(qsize) - 1,
                    )?)
                } else {
                    // Traditional VM: buffer arenas are shared memory.
                    let arena_pages = usize::from(qsize) * stride as usize / PAGE_SIZE;
                    let tx_arena = layout.alloc_pages(arena_pages)?;
                    let rx_arena = layout.alloc_pages(arena_pages)?;
                    mem.share_range(tx_arena, arena_pages * PAGE_SIZE)?;
                    mem.share_range(rx_arena, arena_pages * PAGE_SIZE)?;
                    driver_negotiate(&cfg, &mem.guest(), F_VERSION_1 | F_NET_MAC | F_NET_MTU)?;
                    let tx_drv = Driver::new(mem.guest(), tx_layout, meter.clone())?;
                    let rx_drv = Driver::new(mem.guest(), rx_layout, meter.clone())?;
                    Box::new(VirtqueueNetDevice::new(
                        tx_drv,
                        rx_drv,
                        VqArena {
                            base: tx_arena,
                            stride,
                            count: qsize,
                        },
                        VqArena {
                            base: rx_arena,
                            stride,
                            count: qsize,
                        },
                        mem.clone(),
                        GUEST_MAC,
                        cfg,
                    )?)
                };

                let iface = Interface::new(device, InterfaceConfig::new(GUEST_IP), clock.clone());
                let mut backend = VirtioNetBackend::new(
                    DeviceSide::new(mem.host(), tx_layout),
                    DeviceSide::new(mem.host(), rx_layout),
                    nic_port,
                    recorder.clone(),
                    clock.clone(),
                );
                if hardened {
                    backend.enable_rx_interrupts(opts.cost.clone(), meter.clone());
                }
                let peer = SecurePeer::new(
                    peer_port,
                    PEER_IP,
                    clock.clone(),
                    opts.app_tls,
                    opts.seed ^ 1,
                );
                (
                    Guest::Stack { iface },
                    Backend::Virtio(backend),
                    PeerNode::Direct(peer),
                )
            }

            BoundaryKind::L2CioRing | BoundaryKind::DualBoundary => {
                let (ring_cfg, dual) = (
                    Self::net_ring_config(&opts),
                    kind == BoundaryKind::DualBoundary,
                );
                let (device, backend, rings) = Self::build_cio_rings(
                    &mem,
                    &mut layout,
                    &ring_cfg,
                    &opts,
                    nic_port,
                    recorder.clone(),
                    clock.clone(),
                )?;
                anatomy.cio_rings = Some(rings);
                let iface = Interface::new(device, InterfaceConfig::new(GUEST_IP), clock.clone());
                let peer = SecurePeer::new(
                    peer_port,
                    PEER_IP,
                    clock.clone(),
                    opts.app_tls,
                    opts.seed ^ 1,
                );
                let guest = if dual {
                    let app = tee.compartments_mut().create("app");
                    let iostack = tee.compartments_mut().create("iostack");
                    // The I/O compartment owns the rings and payload areas:
                    // the app can never dereference into them (the
                    // trusted-component-allocates arena is the only shared
                    // surface, carved out below).
                    if let Some((txr, rxr)) = &anatomy.cio_rings {
                        for r in [txr, rxr] {
                            tee.compartments_mut().assign(
                                iostack,
                                r.prod_idx_addr(),
                                r.ring_bytes(),
                            )?;
                            tee.compartments_mut().assign(
                                iostack,
                                r.payload_addr(0),
                                r.area_bytes(),
                            )?;
                        }
                    }
                    // Trusted-component-allocates arena: app-writable pages
                    // inside the I/O domain for zero-copy send (E9).
                    let arena = layout.alloc_pages(16)?;
                    tee.compartments_mut()
                        .assign_shared(app, iostack, arena, 16 * PAGE_SIZE)?;
                    let gate = tee.gate(app, iostack)?;
                    Guest::Dual {
                        iface,
                        gate,
                        app,
                        iostack,
                    }
                } else {
                    Guest::Stack { iface }
                };
                (guest, Backend::Cio(backend), PeerNode::Direct(peer))
            }

            BoundaryKind::Tunneled => {
                // Carrier rings sized for sealed 1514-byte frames.
                let ring_cfg = RingConfig {
                    slots: 256,
                    slot_size: 16,
                    mode: DataMode::SharedArea,
                    mtu: 2048,
                    mac: GUEST_MAC.0,
                    area_size: 1 << 19,
                    notify: opts.notify,
                    ..RingConfig::default()
                };
                let (tx_ring, rx_ring) = Self::alloc_ring_pair(&mem, &mut layout, &ring_cfg)?;
                anatomy.cio_rings = Some((tx_ring.clone(), rx_ring.clone()));
                let guest_tx = Producer::new(tx_ring.clone(), mem.guest())?;
                let guest_rx = Consumer::new(rx_ring.clone(), mem.guest())?;
                let host_tx = Consumer::new(tx_ring, mem.host())?;
                let host_rx = Producer::new(rx_ring, mem.host())?;

                // Provisioned tunnel keys (deployment-time, like LightBox).
                let mut ks = [0u8; 64];
                rng.fill_bytes(&mut ks);
                let c_secret: [u8; 32] = ks[..32].try_into().expect("32 bytes");
                let s_secret: [u8; 32] = ks[32..].try_into().expect("32 bytes");
                let hooks = SimHooks {
                    clock: clock.clone(),
                    cost: opts.cost.clone(),
                    meter: meter.clone(),
                };
                let guest_chan = Channel::from_secrets(c_secret, s_secret, true, Some(hooks));
                let gw_chan = Channel::from_secrets(c_secret, s_secret, false, None);

                let device: Box<dyn NetDevice> = Box::new(TunnelDevice::new(
                    guest_tx, guest_rx, guest_chan, GUEST_MAC, 1500,
                ));
                let iface = Interface::new(device, InterfaceConfig::new(GUEST_IP), clock.clone());
                let mut backend =
                    CioNetBackend::new(host_tx, host_rx, nic_port, recorder.clone(), clock.clone());
                backend.opaque = true;

                let (gw_side, peer_side) = PairDevice::pair([PEER_MAC, PEER_MAC], 1500);
                let gw = TunnelGateway::new(gw_chan, gw_side);
                let peer = SecurePeer::new(
                    peer_side,
                    PEER_IP,
                    clock.clone(),
                    opts.app_tls,
                    opts.seed ^ 1,
                );
                (
                    Guest::Stack { iface },
                    Backend::Cio(backend),
                    PeerNode::Tunnel {
                        gw_port: peer_port,
                        gw,
                        peer,
                    },
                )
            }

            BoundaryKind::Dda => {
                const VENDOR: [u8; 32] = [0x11; 32];
                const FW: &[u8] = b"cio-nic-firmware-v1";
                let device_model = if opts.dda_tamper {
                    Device::two_faced(FW, VENDOR)
                } else {
                    Device::honest(FW, VENDOR)
                };
                let mut nonce = [0u8; 32];
                rng.fill_bytes(&mut nonce);
                let att = spdm_attest(
                    &device_model,
                    &VENDOR,
                    &cio_tee::attest::Measurement::of(FW),
                    nonce,
                    &clock,
                    &opts.cost,
                    &meter,
                )?;
                // The device's own session-key derivation happens on the
                // device, not on guest cycles: charge nothing for it.
                let mut dev_cost = opts.cost.clone();
                dev_cost.spdm_round = Cycles::ZERO;
                let att2 = spdm_attest(
                    &device_model,
                    &VENDOR,
                    &cio_tee::attest::Measurement::of(FW),
                    nonce,
                    &clock,
                    &dev_cost,
                    &Meter::new(),
                )?;
                let tee_end = IdeChannel::new(att, clock.clone(), opts.cost.clone(), meter.clone());
                let dev_end = IdeChannel::new(
                    att2,
                    clock.clone(),
                    CostModel::free_transitions(),
                    Meter::new(),
                );
                let mut ide_dev = IdeNetDevice::new(
                    tee_end,
                    dev_end,
                    nic_port,
                    recorder.clone(),
                    clock.clone(),
                    GUEST_MAC,
                    1500,
                );
                ide_dev.tamper_after_attestation = opts.dda_tamper;
                let iface = Interface::new(
                    Box::new(ide_dev) as Box<dyn NetDevice>,
                    InterfaceConfig::new(GUEST_IP),
                    clock.clone(),
                );
                let peer = SecurePeer::new(
                    peer_port,
                    PEER_IP,
                    clock.clone(),
                    opts.app_tls,
                    opts.seed ^ 1,
                );
                (
                    Guest::Stack { iface },
                    Backend::None,
                    PeerNode::Direct(peer),
                )
            }
        };

        Ok(World {
            kind,
            opts,
            clock,
            meter,
            recorder,
            tee,
            guest,
            backend,
            peer,
            conns: Vec::new(),
            rng,
            anatomy,
            layout,
            seal_scratch: RecordScratch::new(),
        })
    }

    fn net_ring_config(opts: &WorldOptions) -> RingConfig {
        if opts.recv_mode == RecvMode::Revoke {
            RingConfig {
                slots: 64,
                slot_size: 16,
                mode: DataMode::SharedArea,
                mtu: 1514,
                mac: GUEST_MAC.0,
                area_size: 64 * PAGE_SIZE as u32,
                page_aligned_payloads: true,
                notify: opts.notify,
                ..RingConfig::default()
            }
        } else {
            RingConfig {
                slots: 256,
                slot_size: 16,
                mode: DataMode::SharedArea,
                mtu: 1514,
                mac: GUEST_MAC.0,
                area_size: 1 << 19,
                notify: opts.notify,
                ..RingConfig::default()
            }
        }
    }

    fn alloc_ring_pair(
        mem: &GuestMemory,
        layout: &mut GuestLayoutAlloc,
        cfg: &RingConfig,
    ) -> Result<(CioRing, CioRing), CioError> {
        let mk = |mem: &GuestMemory, layout: &mut GuestLayoutAlloc| -> Result<CioRing, CioError> {
            let ring_pages = cfg.slots as usize * cfg.slot_size as usize / PAGE_SIZE + 1;
            let ring_base = layout.alloc_pages(ring_pages)?;
            let area_pages = cfg.area_size as usize / PAGE_SIZE;
            let area_base = layout.alloc_pages(area_pages.max(1))?;
            let ring = CioRing::new(cfg.clone(), ring_base, area_base)?;
            mem.share_range(ring_base, ring.ring_bytes())?;
            if ring.area_bytes() > 0 {
                mem.share_range(area_base, ring.area_bytes())?;
            }
            Ok(ring)
        };
        Ok((mk(mem, layout)?, mk(mem, layout)?))
    }

    fn build_cio_rings(
        mem: &GuestMemory,
        layout: &mut GuestLayoutAlloc,
        cfg: &RingConfig,
        opts: &WorldOptions,
        nic_port: FabricPort,
        recorder: Recorder,
        clock: Clock,
    ) -> Result<CioRingParts, CioError> {
        let (tx_ring, rx_ring) = Self::alloc_ring_pair(mem, layout, cfg)?;
        let guest_tx = Producer::new(tx_ring.clone(), mem.guest())?;
        let guest_rx = Consumer::new(rx_ring.clone(), mem.guest())?;
        let host_tx = Consumer::new(tx_ring.clone(), mem.host())?;
        let host_rx = Producer::new(rx_ring.clone(), mem.host())?;
        let device = Box::new(CioRingDevice::new(
            guest_tx,
            guest_rx,
            mem.clone(),
            opts.send_mode,
            opts.recv_mode,
        )?) as Box<dyn NetDevice>;
        let backend = CioNetBackend::new(host_tx, host_rx, nic_port, recorder, clock);
        Ok((device, backend, (tx_ring, rx_ring)))
    }

    /// Layout facts for the adversary harness.
    pub fn anatomy(&self) -> &Anatomy {
        &self.anatomy
    }

    /// The boundary design of this world.
    pub fn kind(&self) -> BoundaryKind {
        self.kind
    }

    /// The virtual clock.
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    /// The shared meter.
    pub fn meter(&self) -> &Meter {
        &self.meter
    }

    /// The host-observability recorder.
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// The cost model.
    pub fn cost(&self) -> &CostModel {
        &self.opts.cost
    }

    /// The TEE (compartment/attestation access for tests).
    pub fn tee(&self) -> &Tee {
        &self.tee
    }

    /// Direct access to the host backend's cio rings (adversary harness).
    pub fn cio_backend_mut(&mut self) -> Option<&mut CioNetBackend> {
        match &mut self.backend {
            Backend::Cio(b) => Some(b),
            _ => None,
        }
    }

    /// Direct access to the host backend's virtqueues (adversary harness).
    pub fn virtio_backend_mut(&mut self) -> Option<&mut VirtioNetBackend> {
        match &mut self.backend {
            Backend::Virtio(b) => Some(b),
            _ => None,
        }
    }

    /// Guest memory (adversary harness).
    pub fn guest_memory(&self) -> &GuestMemory {
        self.tee.memory()
    }

    /// The dual boundary's (app, iostack) compartment ids, when present.
    pub fn dual_compartments(&self) -> Option<(cio_tee::CompartmentId, cio_tee::CompartmentId)> {
        match &self.guest {
            Guest::Dual { app, iostack, .. } => Some((*app, *iostack)),
            _ => None,
        }
    }

    /// Hot-swaps the network device (§3.2: "devices can be hot-swapped"):
    /// fresh rings are built with the *same fixed configuration* — there
    /// is nothing to renegotiate — and attached to the same link. Frames
    /// in flight in the old rings are lost; TCP recovers them.
    ///
    /// # Errors
    ///
    /// [`CioError::Unsupported`] for designs without a swappable cio-ring
    /// device.
    pub fn hot_swap_device(&mut self) -> Result<(), CioError> {
        if !matches!(
            self.kind,
            BoundaryKind::L2CioRing | BoundaryKind::DualBoundary
        ) {
            return Err(CioError::Unsupported(
                "hot swap is implemented for the cio-ring designs",
            ));
        }
        let Backend::Cio(old) = std::mem::replace(&mut self.backend, Backend::None) else {
            return Err(CioError::Unsupported("no cio backend present"));
        };
        let port = old.into_port();
        let mem = self.tee.memory().clone();
        let ring_cfg = Self::net_ring_config(&self.opts);
        let (device, backend, rings) = Self::build_cio_rings(
            &mem,
            &mut self.layout,
            &ring_cfg,
            &self.opts,
            port,
            self.recorder.clone(),
            self.clock.clone(),
        )?;
        self.anatomy.cio_rings = Some(rings);
        // The dual boundary's I/O compartment owns the replacement rings
        // exactly like the originals.
        if let Guest::Dual { iostack, .. } = &self.guest {
            let iostack = *iostack;
            if let Some((txr, rxr)) = &self.anatomy.cio_rings {
                for r in [txr.clone(), rxr.clone()] {
                    self.tee.compartments_mut().assign(
                        iostack,
                        r.prod_idx_addr(),
                        r.ring_bytes(),
                    )?;
                    self.tee.compartments_mut().assign(
                        iostack,
                        r.payload_addr(0),
                        r.area_bytes(),
                    )?;
                }
            }
        }
        match &mut self.guest {
            Guest::Stack { iface } | Guest::Dual { iface, .. } => {
                *iface.device_mut() = device;
            }
            Guest::L5 { .. } => unreachable!("kind checked above"),
        }
        self.backend = Backend::Cio(backend);
        Ok(())
    }

    /// Advances the whole world one scheduling round.
    ///
    /// # Errors
    ///
    /// Propagates fatal transport errors (adversarial corruption surfaces
    /// as detected violations, not errors, unless the design cannot
    /// contain it).
    pub fn step(&mut self) -> Result<(), CioError> {
        let t0 = self.clock.now();
        match &mut self.guest {
            Guest::Stack { iface } | Guest::Dual { iface, .. } => {
                iface.poll()?;
            }
            Guest::L5 { svc } => {
                svc.poll()?;
            }
        }
        match &mut self.backend {
            Backend::None => {}
            Backend::Virtio(b) => {
                b.process()?;
            }
            Backend::Cio(b) => {
                // The adversary may have wedged a ring; detected violations
                // surface on the meter, and the world keeps stepping.
                let _ = b.process();
            }
        }
        match &mut self.peer {
            PeerNode::Direct(p) => p.poll(),
            PeerNode::Tunnel { gw_port, gw, peer } => {
                while let Some(blob) = gw_port.receive() {
                    gw.ingress(&blob);
                }
                gw.egress_each(|blob| {
                    let _ = gw_port.transmit(blob);
                });
                peer.poll();
            }
        }
        // Flush any protocol bytes produced by stream processing.
        self.flush_outboxes()?;
        if self.clock.now() == t0 {
            self.clock.advance(self.opts.step_quantum);
        }
        Ok(())
    }

    /// Runs `n` steps.
    ///
    /// # Errors
    ///
    /// As [`World::step`].
    pub fn run(&mut self, n: usize) -> Result<(), CioError> {
        for _ in 0..n {
            self.step()?;
        }
        Ok(())
    }

    // ---------- Transport plumbing (per-design charging) ----------

    fn raw_send(&mut self, handle: SocketHandle, bytes: &[u8]) -> Result<(), CioError> {
        if bytes.is_empty() {
            return Ok(());
        }
        match &mut self.guest {
            Guest::Stack { iface } => {
                iface.tcp_send(handle, bytes)?;
            }
            Guest::Dual { iface, gate, .. } => {
                if self.opts.l5_app_copy {
                    let cost = self.opts.cost.copy(bytes.len());
                    self.clock.advance(cost);
                    self.meter.copies(1);
                    self.meter.bytes_copied(bytes.len() as u64);
                }
                gate.call(|| iface.tcp_send(handle, bytes))?;
            }
            Guest::L5 { svc } => {
                // World switch plus marshalling: the payload is copied
                // through an untrusted exchange buffer on every call.
                self.tee.exit_to_host();
                self.clock.advance(self.opts.cost.copy(bytes.len()));
                self.meter.copies(1);
                self.meter.bytes_copied(bytes.len() as u64);
                svc.send(handle, bytes)?;
            }
        }
        Ok(())
    }

    fn raw_recv(&mut self, handle: SocketHandle) -> Result<Vec<u8>, CioError> {
        let data = match &mut self.guest {
            Guest::Stack { iface } => iface.tcp_recv(handle, usize::MAX)?,
            Guest::Dual { iface, gate, .. } => gate.call(|| iface.tcp_recv(handle, usize::MAX))?,
            Guest::L5 { svc } => {
                self.tee.exit_to_host();
                let data = svc.recv(handle, usize::MAX)?;
                if !data.is_empty() {
                    self.clock.advance(self.opts.cost.copy(data.len()));
                    self.meter.copies(1);
                    self.meter.bytes_copied(data.len() as u64);
                }
                data
            }
        };
        Ok(data)
    }

    fn raw_established(&mut self, handle: SocketHandle) -> Result<bool, CioError> {
        Ok(match &mut self.guest {
            Guest::Stack { iface } => iface.tcp_established(handle)?,
            Guest::Dual { iface, gate, .. } => gate.call(|| iface.tcp_established(handle))?,
            Guest::L5 { svc } => {
                self.tee.exit_to_host();
                svc.established(handle)?
            }
        })
    }

    // ---------- Application API ----------

    /// Opens a connection to the peer service on `port` ([`ECHO_PORT`] or
    /// [`RPC_PORT`]). With `app_tls` the cTLS handshake starts as soon as
    /// TCP establishes; use [`World::establish`] to drive it.
    ///
    /// # Errors
    ///
    /// Stack/transport errors.
    pub fn connect(&mut self, port: u16) -> Result<Conn, CioError> {
        let handle = match &mut self.guest {
            Guest::Stack { iface } => iface.tcp_connect(PEER_IP, port)?,
            Guest::Dual { iface, gate, .. } => gate.call(|| iface.tcp_connect(PEER_IP, port))?,
            Guest::L5 { svc } => {
                self.tee.exit_to_host();
                svc.connect(PEER_IP, port)?
            }
        };
        let (outbox, stream) = if self.opts.app_tls {
            let mut entropy = [0u8; 64];
            self.rng.fill_bytes(&mut entropy);
            let hooks = SimHooks {
                clock: self.clock.clone(),
                cost: self.opts.cost.clone(),
                meter: self.meter.clone(),
            };
            let (hello, stream) = SecureStream::client(entropy, Some(hooks));
            (hello, stream)
        } else {
            (Vec::new(), SecureStream::plain())
        };
        self.conns.push(ConnState {
            handle,
            stream,
            outbox,
            app_in: Vec::new(),
            feed_scratch: FeedResult::default(),
        });
        Ok(Conn(self.conns.len() - 1))
    }

    fn conn_mut(&mut self, c: Conn) -> Result<&mut ConnState, CioError> {
        if c.0 >= self.conns.len() {
            return Err(CioError::Unsupported("dead connection handle"));
        }
        Ok(&mut self.conns[c.0])
    }

    /// Pumps received bytes through each connection's stream and flushes
    /// pending protocol bytes.
    fn flush_outboxes(&mut self) -> Result<(), CioError> {
        for i in 0..self.conns.len() {
            let handle = self.conns[i].handle;
            // Only push protocol bytes once TCP is up.
            if !self.conns[i].outbox.is_empty() && self.raw_established(handle)? {
                let out = std::mem::take(&mut self.conns[i].outbox);
                self.raw_send(handle, &out)?;
            }
            let data = self.raw_recv(handle)?;
            if !data.is_empty() {
                let conn = &mut self.conns[i];
                conn.stream.feed_into(&data, &mut conn.feed_scratch)?;
                conn.app_in.extend_from_slice(&conn.feed_scratch.app_data);
                conn.outbox.extend_from_slice(&conn.feed_scratch.to_send);
            }
        }
        Ok(())
    }

    /// Drives the world until the connection is fully established (TCP +
    /// cTLS when enabled).
    ///
    /// # Errors
    ///
    /// [`CioError::Timeout`] after `max_steps`.
    pub fn establish(&mut self, c: Conn, max_steps: usize) -> Result<(), CioError> {
        for _ in 0..max_steps {
            self.step()?;
            let tcp_up = {
                let handle = self.conns[c.0].handle;
                self.raw_established(handle)?
            };
            if tcp_up && self.conns[c.0].stream.is_open() && self.conns[c.0].outbox.is_empty() {
                return Ok(());
            }
        }
        Err(CioError::Timeout("connection establishment"))
    }

    /// Sends application data (sealed when cTLS is on).
    ///
    /// # Errors
    ///
    /// Stream/transport errors.
    pub fn send(&mut self, c: Conn, data: &[u8]) -> Result<(), CioError> {
        // Seal into the world's reusable scratch (taken for the duration
        // so the borrow checker sees a local) — steady-state sends
        // allocate nothing.
        let mut scratch = std::mem::take(&mut self.seal_scratch);
        let result = (|| {
            self.conn_mut(c)?.stream.seal_into(data, &mut scratch)?;
            let handle = self.conns[c.0].handle;
            self.raw_send(handle, scratch.as_slice())
        })();
        self.seal_scratch = scratch;
        result
    }

    /// Takes decrypted application bytes received so far.
    ///
    /// # Errors
    ///
    /// Transport errors.
    pub fn recv(&mut self, c: Conn) -> Result<Vec<u8>, CioError> {
        // Data may have arrived during steps; outboxes were pumped there.
        let s = self.conn_mut(c)?;
        Ok(std::mem::take(&mut s.app_in))
    }

    /// Drives the world until `want` application bytes arrive on `c`.
    ///
    /// # Errors
    ///
    /// [`CioError::Timeout`] after `max_steps`.
    pub fn recv_exact(
        &mut self,
        c: Conn,
        want: usize,
        max_steps: usize,
    ) -> Result<Vec<u8>, CioError> {
        let mut got = Vec::new();
        for _ in 0..max_steps {
            got.extend(self.recv(c)?);
            if got.len() >= want {
                return Ok(got);
            }
            self.step()?;
        }
        got.extend(self.recv(c)?);
        if got.len() >= want {
            return Ok(got);
        }
        Err(CioError::Timeout("recv_exact"))
    }

    /// Closes a connection (TCP FIN; the stream is dropped).
    ///
    /// # Errors
    ///
    /// Transport errors.
    pub fn close(&mut self, c: Conn) -> Result<(), CioError> {
        let handle = self.conn_mut(c)?.handle;
        match &mut self.guest {
            Guest::Stack { iface } => iface.tcp_close(handle)?,
            Guest::Dual { iface, gate, .. } => gate.call(|| iface.tcp_close(handle))?,
            Guest::L5 { svc } => {
                self.tee.exit_to_host();
                svc.close(handle)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_opts() -> WorldOptions {
        WorldOptions {
            link: LinkParams {
                latency: Cycles(1_000),
                loss: 0.0,
            },
            ..WorldOptions::default()
        }
    }

    fn echo_roundtrip(kind: BoundaryKind, opts: WorldOptions) {
        let mut w = World::new(kind, opts).unwrap();
        let c = w.connect(ECHO_PORT).unwrap();
        w.establish(c, 3_000)
            .unwrap_or_else(|e| panic!("{kind}: establish failed: {e}"));
        w.send(c, b"hello confidential world").unwrap();
        let got = w
            .recv_exact(c, 24, 3_000)
            .unwrap_or_else(|e| panic!("{kind}: echo failed: {e}"));
        assert_eq!(&got, b"hello confidential world", "{kind}");
    }

    #[test]
    fn echo_over_every_boundary() {
        for kind in ALL_BOUNDARIES {
            echo_roundtrip(kind, quick_opts());
        }
    }

    #[test]
    fn echo_plaintext_mode() {
        for kind in [BoundaryKind::L5Host, BoundaryKind::L2CioRing] {
            let opts = WorldOptions {
                app_tls: false,
                ..quick_opts()
            };
            echo_roundtrip(kind, opts);
        }
    }

    #[test]
    fn rpc_roundtrip_dual_boundary() {
        let mut w = World::new(BoundaryKind::DualBoundary, quick_opts()).unwrap();
        let c = w.connect(RPC_PORT).unwrap();
        w.establish(c, 3_000).unwrap();
        w.send(c, &8_000u32.to_le_bytes()).unwrap();
        let got = w.recv_exact(c, 8_004, 5_000).unwrap();
        assert_eq!(got.len(), 8_004);
        assert_eq!(&got[..4], &8_000u32.to_le_bytes());
        assert!(got[4..].iter().all(|&b| b == 0x5A));
    }

    #[test]
    fn dual_boundary_charges_compartment_switches() {
        let mut w = World::new(BoundaryKind::DualBoundary, quick_opts()).unwrap();
        let c = w.connect(ECHO_PORT).unwrap();
        w.establish(c, 3_000).unwrap();
        let before = w.meter().snapshot().compartment_switches;
        w.send(c, b"x").unwrap();
        assert!(w.meter().snapshot().compartment_switches > before);
        // And no world exits on the data path beyond what the rings do:
        // the L5 design would have paid one exit per call.
    }

    #[test]
    fn l5_charges_host_transitions_per_call() {
        let mut w = World::new(BoundaryKind::L5Host, quick_opts()).unwrap();
        let c = w.connect(ECHO_PORT).unwrap();
        let before = w.meter().snapshot().host_transitions;
        w.establish(c, 3_000).unwrap();
        w.send(c, b"x").unwrap();
        let after = w.meter().snapshot().host_transitions;
        assert!(after > before + 2, "exits: {before} -> {after}");
    }

    #[test]
    fn hardened_virtio_pays_bounce_copies() {
        let mut w = World::new(BoundaryKind::L2VirtioHardened, quick_opts()).unwrap();
        let c = w.connect(ECHO_PORT).unwrap();
        w.establish(c, 3_000).unwrap();
        let before = w.meter().snapshot();
        w.send(c, &[0x41; 1000]).unwrap();
        let _ = w.recv_exact(c, 1000, 3_000).unwrap();
        let d = w.meter().snapshot().delta(&before);
        assert!(d.copies >= 2, "bounce copies on both directions: {d:?}");
    }

    #[test]
    fn tunneled_hides_headers_from_host() {
        let mut w = World::new(BoundaryKind::Tunneled, quick_opts()).unwrap();
        let c = w.connect(ECHO_PORT).unwrap();
        w.establish(c, 3_000).unwrap();
        w.send(c, b"secret").unwrap();
        let _ = w.recv_exact(c, 6, 3_000).unwrap();
        let tunnel_summary = w.recorder().summary();

        let mut w2 = World::new(BoundaryKind::L2CioRing, quick_opts()).unwrap();
        let c2 = w2.connect(ECHO_PORT).unwrap();
        w2.establish(c2, 3_000).unwrap();
        w2.send(c2, b"secret").unwrap();
        let _ = w2.recv_exact(c2, 6, 3_000).unwrap();
        let plain_summary = w2.recorder().summary();

        // Per-event information is strictly lower for the tunnel.
        let t_bits_per_event = tunnel_summary.bits as f64 / tunnel_summary.events as f64;
        let p_bits_per_event = plain_summary.bits as f64 / plain_summary.events as f64;
        assert!(
            t_bits_per_event < p_bits_per_event,
            "tunnel {t_bits_per_event} vs plain {p_bits_per_event}"
        );
    }

    #[test]
    fn dda_tampering_device_is_caught_by_app_tls() {
        let opts = WorldOptions {
            dda_tamper: true,
            ..quick_opts()
        };
        let mut w = World::new(BoundaryKind::Dda, opts).unwrap();
        let c = w.connect(ECHO_PORT).unwrap();
        // The device corrupts frames; TCP checksums drop them and nothing
        // ever completes — or if anything slipped through, cTLS would
        // reject it. Either way establishment cannot succeed.
        assert!(w.establish(c, 500).is_err());
    }
}
