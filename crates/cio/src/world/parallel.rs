//! Thread-per-queue parallel host execution.
//!
//! [`ParallelHost`] turns the virtual multiqueue schedule into wall-clock
//! parallelism: the world's [`CioNetBackend`] is split
//! ([`CioNetBackend::split_parallel`]) into a coordinator-side
//! [`CioSteer`] (fabric port + RSS arithmetic) and one
//! [`CioQueueWorker`] per queue, and the workers are sharded over `T`
//! persistent OS threads (thread `t` owns queues `t`, `t + T`, ...).
//!
//! Determinism is preserved by construction, not by luck:
//!
//! * **Virtual time.** Each queue keeps its own lane [`Clock`]; before a
//!   round the coordinator positions it at the lane's frontier (exactly
//!   what [`Lanes::begin`] does to the shared clock in the serial
//!   multiqueue schedule) and afterwards folds the elapsed lane time
//!   back with [`Lanes::charge`]. The shared clock is never touched from
//!   a worker thread.
//! * **Fabric.** Workers never transmit: the fabric's loss PRNG draws in
//!   call order, so worker-side transmission would make loss depend on
//!   thread scheduling. Workers stamp frames with their lane clock and
//!   park them in an outbox; the coordinator flushes outboxes in
//!   ascending queue order via `transmit_at` — the serial draw order and
//!   delivery timestamps exactly.
//! * **Ingress.** The coordinator steers inbound frames by the same RSS
//!   hash as the serial backend and ships each queue's batch to its
//!   worker; the worker applies the pending-cap tail-drop at enqueue,
//!   when its backlog is in exactly the state serial ingress would have
//!   seen, so drop decisions match record for record.
//! * **Telemetry.** Each queue records into a private fork of the
//!   world's telemetry domain on its lane clock; after the barrier the
//!   coordinator absorbs forks in ascending queue order, so exports are
//!   byte-identical regardless of how threads interleaved.
//!
//! Synchronization is a pre-allocated mailbox per thread (mutex + two
//! condvars, command and completion slots): the steady-state round
//! trips no channels and allocates nothing for coordination, and every
//! container (steering batches, outbox frames) round-trips between
//! coordinator and worker so capacities are reused.

use crate::CioError;
use cio_host::backend::{CioNetBackend, CioSteer, NotifyGate, WorkerCtx};
use cio_host::worker::CioQueueWorker;
use cio_mem::{GuestAddr, GuestMemory, HostView};
use cio_sim::{Clock, Cycles, FlightRecorder, Lanes, Meter, MeterSnapshot, Telemetry};
use cio_vring::cioring::{NotifyMode, NotifyPolicy};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Duration;

/// Containers that round-trip between the coordinator and one queue's
/// worker each round: steered inbound frames travel out full, flushed
/// outbox buffers travel out for recycling; the worker returns the
/// drained inbound container and a freshly stamped outbox.
///
/// The scalar fields carry the notification handshake: the coordinator
/// sets `service` (whether to run this lane at all — a cold adaptive
/// queue is skipped without waking anything) and `door` (whether the
/// guest rang since the last pass); the worker reports back `moved` and
/// its residual `backlog`, which feed the coordinator-side
/// [`NotifyGate`] exactly like the serial backend's own bookkeeping.
#[derive(Default)]
struct LaneExchange {
    inbound: Vec<Vec<u8>>,
    outbox: Vec<(Cycles, Vec<u8>)>,
    service: bool,
    door: bool,
    moved: usize,
    backlog: usize,
}

enum Cmd {
    /// One round of servicing: exchanges indexed by the thread's owned
    /// queues in ascending order.
    Service(Vec<LaneExchange>),
    Stop,
}

struct Done {
    moved: usize,
    lanes: Vec<LaneExchange>,
}

/// Pre-allocated rendezvous between the coordinator and one worker
/// thread. Slots are strict ping-pong (the coordinator never posts a
/// second command before taking the completion), so `Option` slots
/// cannot clobber in-flight work.
struct Mailbox {
    cmd: Mutex<Option<Cmd>>,
    cmd_ready: Condvar,
    done: Mutex<Option<Done>>,
    done_ready: Condvar,
}

impl Mailbox {
    fn new() -> Self {
        Mailbox {
            cmd: Mutex::new(None),
            cmd_ready: Condvar::new(),
            done: Mutex::new(None),
            done_ready: Condvar::new(),
        }
    }
}

/// Locks a mailbox slot even if the peer thread panicked mid-hold: the
/// slot state (an `Option` write) is valid at every interleaving.
fn lock_slot<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

struct WorkerThread {
    mailbox: Arc<Mailbox>,
    join: Option<JoinHandle<()>>,
}

/// The coordinator side of thread-per-queue host execution. Owned by a
/// `World` built with `parallel(n)`; one `round` replaces the serial
/// ingress + per-queue servicing of the multiqueue schedule.
pub(super) struct ParallelHost {
    steer: CioSteer,
    threads: Vec<WorkerThread>,
    /// Per-queue lane clocks, index = queue id.
    lane_clocks: Vec<Clock>,
    /// Per-queue telemetry forks, absorbed in queue order each round.
    forks: Vec<Telemetry>,
    /// The world's flight recorder (absorption target).
    flight: FlightRecorder,
    /// Per-queue flight-recorder forks, absorbed in queue order each
    /// round right after the telemetry forks.
    flight_forks: Vec<FlightRecorder>,
    /// Shared handles to each queue's traffic meter (the workers own the
    /// lanes, but meters are atomic and readable from the coordinator).
    queue_meters: Vec<Meter>,
    /// Per-queue steering buckets the fabric drains into.
    staged: Vec<Vec<Vec<u8>>>,
    /// Dispatch-time lane start positions (reposition targets).
    starts: Vec<Cycles>,
    /// Per-thread exchange sets, `None` while a round is in flight.
    exchanges: Vec<Option<Vec<LaneExchange>>>,
    queues: usize,
    /// Notification discipline (carried over from the serial backend at
    /// the split).
    policy: NotifyPolicy,
    /// Per-queue poll-vs-notify controllers — coordinator-side, exactly
    /// mirroring the serial backend's gates so skip decisions match
    /// round for round.
    gates: Vec<NotifyGate>,
    /// Doorbell-word address of each queue's guest->host ring (`None`
    /// unless that ring runs [`NotifyMode::EventIdx`]).
    door_addrs: Vec<Option<GuestAddr>>,
    /// Host view for the coordinator's uncharged door-word reads (the
    /// clear mirrors [`Consumer::take_doorbell`] byte for byte).
    ///
    /// [`Consumer::take_doorbell`]: cio_vring::cioring::Consumer::take_doorbell
    door_view: HostView,
    /// Residual per-queue backlogs reported by the workers last round
    /// (the serial path's `!pending.is_empty()` work hint).
    backlogs: Vec<usize>,
    /// Which queues were serviced this round (skip charging/flushing
    /// for the others).
    serviced: Vec<bool>,
    /// Which threads received a command this round (a thread whose
    /// queues all skipped is never woken — the suppressed doorbell
    /// saves a real Condvar wakeup, not just a virtual cycle charge).
    dispatched: Vec<bool>,
}

impl ParallelHost {
    /// Splits `backend` and spawns `threads` persistent worker threads;
    /// thread `t` owns queues `t`, `t + threads`, ... Each queue gets a
    /// private lane clock, a telemetry fork bound to it, and a host view
    /// of the shared (lock-striped) guest memory charging that clock.
    pub(super) fn new(
        backend: CioNetBackend,
        threads: usize,
        mem: &GuestMemory,
        telemetry: &Telemetry,
        flight: &FlightRecorder,
    ) -> Result<Self, CioError> {
        let mut lane_clocks = Vec::new();
        let mut forks = Vec::new();
        let mut flight_forks = Vec::new();
        let policy = backend.notify_policy();
        let (steer, workers) = backend.split_parallel(|_q| {
            let clock = Clock::new();
            let fork = telemetry.fork(clock.clone());
            let ffork = flight.fork(clock.clone());
            lane_clocks.push(clock.clone());
            forks.push(fork.clone());
            flight_forks.push(ffork.clone());
            WorkerCtx {
                clock: clock.clone(),
                telemetry: fork,
                view: mem.with_clock(clock).host(),
                flight: ffork,
            }
        });
        let queues = workers.len();
        let queue_meters: Vec<Meter> = workers.iter().map(CioQueueWorker::meter_handle).collect();
        let door_addrs: Vec<Option<GuestAddr>> = workers
            .iter()
            .map(|w| {
                let ring = w.tx_ring();
                (ring.config().notify == NotifyMode::EventIdx).then(|| ring.door_addr())
            })
            .collect();
        if threads == 0 || queues % threads != 0 {
            return Err(CioError::Fatal(
                "parallel worker count must be non-zero and divide the queue count",
            ));
        }
        // Shard workers: thread t owns queues t, t + threads, ...
        let mut sharded: Vec<Vec<CioQueueWorker>> = (0..threads).map(|_| Vec::new()).collect();
        for w in workers {
            sharded[w.queue() % threads].push(w);
        }
        let mut handles = Vec::with_capacity(threads);
        let mut exchanges = Vec::with_capacity(threads);
        for shard in sharded {
            let mailbox = Arc::new(Mailbox::new());
            let mb = Arc::clone(&mailbox);
            let owned = shard.len();
            let join = std::thread::Builder::new()
                .name("cio-queue-worker".into())
                .spawn(move || worker_loop(shard, &mb))
                .map_err(|_| CioError::Fatal("could not spawn a host worker thread"))?;
            handles.push(WorkerThread {
                mailbox,
                join: Some(join),
            });
            exchanges.push(Some((0..owned).map(|_| LaneExchange::default()).collect()));
        }
        Ok(ParallelHost {
            steer,
            threads: handles,
            lane_clocks,
            forks,
            flight: flight.clone(),
            flight_forks,
            queue_meters,
            staged: (0..queues).map(|_| Vec::new()).collect(),
            starts: vec![Cycles::ZERO; queues],
            exchanges,
            queues,
            policy,
            gates: (0..queues).map(|_| NotifyGate::new()).collect(),
            door_addrs,
            door_view: mem.host(),
            backlogs: vec![0; queues],
            serviced: vec![true; queues],
            dispatched: vec![true; threads],
        })
    }

    /// Worker thread count.
    pub(super) fn threads(&self) -> usize {
        self.threads.len()
    }

    /// Total empty service passes burned by the adaptive controllers
    /// while hot (the idle-spin audit trail E23 gates on).
    pub(super) fn idle_passes(&self) -> u64 {
        self.gates.iter().map(NotifyGate::idle_passes).sum()
    }

    /// Snapshot of every queue's traffic meter, index = queue id.
    pub(super) fn queue_meters(&self) -> Vec<MeterSnapshot> {
        self.queue_meters.iter().map(Meter::snapshot).collect()
    }

    /// One parallel host round, equivalent to the serial multiqueue
    /// schedule's `ingress` + per-queue `service_queue` sweep: steer
    /// inbound frames, dispatch every queue to its worker thread, then —
    /// in ascending queue order — fold lane time, flush stamped
    /// transmissions, and absorb telemetry.
    ///
    /// # Errors
    ///
    /// [`CioError::Fatal`] if a worker thread died. Per-queue transport
    /// errors are ignored exactly like the serial multiqueue schedule
    /// (a wedged ring surfaces on the meter; the world keeps stepping).
    pub(super) fn round(
        &mut self,
        lanes: &mut Lanes,
        telemetry: &Telemetry,
        clock: &Clock,
    ) -> Result<usize, CioError> {
        self.steer.drain_into(&mut self.staged);
        let base = clock.now();
        let nthreads = self.threads.len();
        for t in 0..nthreads {
            let mut set = self.exchanges[t].take().expect("no round in flight");
            let mut any = false;
            for (i, ex) in set.iter_mut().enumerate() {
                let q = t + i * nthreads;
                // Door check: read + clear the guest->host doorbell word
                // exactly like the serial backend's `take_doorbell`
                // (uncharged; an unreadable header fails toward service).
                let door = match self.door_addrs[q] {
                    Some(addr) => {
                        let rang = self.door_view.read_u32(addr).unwrap_or(1) != 0;
                        if rang {
                            let _ = self.door_view.write_u32(addr, 0);
                        }
                        rang
                    }
                    None => false,
                };
                let adaptive =
                    self.policy == NotifyPolicy::Adaptive && self.door_addrs[q].is_some();
                let work = !self.staged[q].is_empty() || self.backlogs[q] > 0;
                let service = !adaptive || self.gates[q].should_service(door, work);
                if !service {
                    self.gates[q].observe_skip();
                }
                ex.door = door;
                ex.service = service;
                self.serviced[q] = service;
                if service {
                    any = true;
                    std::mem::swap(&mut ex.inbound, &mut self.staged[q]);
                    let start = base.saturating_add(lanes.pending(q));
                    self.lane_clocks[q].reposition(start);
                    self.starts[q] = start;
                }
            }
            self.dispatched[t] = any;
            if any {
                let mb = &self.threads[t].mailbox;
                *lock_slot(&mb.cmd) = Some(Cmd::Service(set));
                mb.cmd_ready.notify_one();
            } else {
                // Every queue on this thread skipped: the suppressed
                // doorbell saves a real Condvar wakeup, not just a
                // virtual cycle charge.
                self.exchanges[t] = Some(set);
            }
        }
        let mut moved = 0;
        for t in 0..nthreads {
            if !self.dispatched[t] {
                continue;
            }
            let done = wait_done(&self.threads[t])?;
            moved += done.moved;
            self.exchanges[t] = Some(done.lanes);
        }
        for q in 0..self.queues {
            if !self.serviced[q] {
                continue;
            }
            let (t, i) = (q % nthreads, q / nthreads);
            lanes.charge(q, self.lane_clocks[q].now().saturating_sub(self.starts[q]));
            let set = self.exchanges[t].as_mut().expect("round joined");
            for (at, frame) in &set[i].outbox {
                // Transmit errors are the guest's own fault (oversized
                // frame) and non-fatal, as in the serial schedule.
                let _ = self.steer.port_mut().transmit_at(frame, *at);
            }
            telemetry.absorb(&self.forks[q]);
            self.flight.absorb(&self.flight_forks[q]);
            self.backlogs[q] = set[i].backlog;
            if self.policy == NotifyPolicy::Adaptive && self.door_addrs[q].is_some() {
                self.gates[q].observe(set[i].moved);
            }
        }
        Ok(moved)
    }
}

impl Drop for ParallelHost {
    fn drop(&mut self) {
        for t in &mut self.threads {
            *lock_slot(&t.mailbox.cmd) = Some(Cmd::Stop);
            t.mailbox.cmd_ready.notify_one();
            if let Some(join) = t.join.take() {
                let _ = join.join();
            }
        }
    }
}

/// Waits for a thread's completion slot, detecting a dead worker rather
/// than blocking forever.
fn wait_done(t: &WorkerThread) -> Result<Done, CioError> {
    let mut slot = lock_slot(&t.mailbox.done);
    loop {
        if let Some(done) = slot.take() {
            return Ok(done);
        }
        let (s, timeout) = t
            .mailbox
            .done_ready
            .wait_timeout(slot, Duration::from_secs(5))
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        slot = s;
        if timeout.timed_out() && t.join.as_ref().is_none_or(JoinHandle::is_finished) {
            // One last look: the thread may have posted and exited.
            if let Some(done) = slot.take() {
                return Ok(done);
            }
            return Err(CioError::Fatal("a parallel host worker thread died"));
        }
    }
}

/// The worker thread body: waits for a round, services every owned
/// queue (enqueue with serial-identical tail-drop, then the shared
/// `service_cio_lane` routine on the lane clock), posts the completion.
fn worker_loop(mut workers: Vec<CioQueueWorker>, mb: &Mailbox) {
    loop {
        let cmd = {
            let mut slot = lock_slot(&mb.cmd);
            loop {
                if let Some(cmd) = slot.take() {
                    break cmd;
                }
                slot = mb
                    .cmd_ready
                    .wait(slot)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        };
        match cmd {
            Cmd::Stop => return,
            Cmd::Service(mut set) => {
                let mut moved = 0;
                for (w, ex) in workers.iter_mut().zip(set.iter_mut()) {
                    if !ex.service {
                        // Cold adaptive lane: untouched (its flushed
                        // outbox is recycled on the next serviced pass).
                        continue;
                    }
                    w.recycle_outbox(std::mem::take(&mut ex.outbox));
                    w.enqueue(&mut ex.inbound);
                    // Errors are ignored exactly like the serial
                    // multiqueue sweep: a wedged ring surfaces on the
                    // meter and the round completes.
                    ex.moved = w.service(ex.door).unwrap_or(0);
                    ex.outbox = w.take_outbox();
                    ex.backlog = w.backlog();
                    moved += ex.moved;
                }
                *lock_slot(&mb.done) = Some(Done { moved, lanes: set });
                mb.done_ready.notify_one();
            }
        }
    }
}
