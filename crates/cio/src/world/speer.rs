//! Secure endpoints: the remote confidential peer, the client-side stream
//! state machine, and the LightBox-style tunnel gateway.
//!
//! Application traffic in the experiments is end-to-end protected on every
//! boundary configuration (a confidential workload would never trust the
//! network): the peer terminates cTLS, verifies nothing about the client
//! beyond the protocol, and serves two services on fixed ports — echo
//! ([`ECHO_PORT`]) and a size-request RPC ([`RPC_PORT`]).

use crate::CioError;
use cio_ctls::handshake::{ServerHello, SERVER_HELLO_LEN};
use cio_ctls::{Channel, ClientHandshake, CtlsError, ServerHandshake, ServerIdentity};
use cio_netstack::stack::{Interface, InterfaceConfig, SocketHandle};
use cio_netstack::{Ipv4Addr, NetDevice};
use cio_sim::{Clock, SimRng};
use cio_tee::attest::Measurement;

/// Echo service port.
pub const ECHO_PORT: u16 = 7;
/// RPC (size-request) service port.
pub const RPC_PORT: u16 = 8080;
/// The peer's attested workload image.
pub const PEER_IMAGE: &[u8] = b"cio-secure-peer-v1";
/// The model's platform attestation key.
pub const PLATFORM_KEY: [u8; 32] = [0x42; 32];

/// The peer's measurement (what clients pin).
pub fn peer_measurement() -> Measurement {
    Measurement::of(PEER_IMAGE)
}

/// Extracts one complete `[len u32-le][body]` record from `buf`, if whole.
pub fn take_record(buf: &mut Vec<u8>) -> Option<Vec<u8>> {
    if buf.len() < 4 {
        return None;
    }
    let len = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
    if len > (1 << 22) || buf.len() < 4 + len {
        return None;
    }
    Some(buf.drain(..4 + len).collect())
}

#[allow(clippy::large_enum_variant)] // few, long-lived per-connection states
enum PeerTls {
    Plain,
    AwaitHello,
    AwaitFinished(Box<ServerHandshake>),
    Open(Box<Channel>),
}

struct PeerConn {
    h: SocketHandle,
    port: u16,
    tls: PeerTls,
    inbuf: Vec<u8>,
}

/// The remote confidential peer: echo + RPC, plaintext or cTLS.
pub struct SecurePeer<D: NetDevice> {
    iface: Interface<D>,
    tls: bool,
    rng: SimRng,
    conns: Vec<PeerConn>,
}

impl<D: NetDevice> SecurePeer<D> {
    /// Creates the peer, listening on both service ports.
    pub fn new(dev: D, ip: Ipv4Addr, clock: Clock, tls: bool, seed: u64) -> Self {
        let mut iface = Interface::new(dev, InterfaceConfig::new(ip), clock);
        iface.tcp_listen(ECHO_PORT);
        iface.tcp_listen(RPC_PORT);
        SecurePeer {
            iface,
            tls,
            rng: SimRng::seed_from(seed),
            conns: Vec::new(),
        }
    }

    fn identity() -> ServerIdentity {
        ServerIdentity {
            platform_key: PLATFORM_KEY,
            measurement: peer_measurement(),
        }
    }

    fn serve(port: u16, request: &[u8]) -> Vec<u8> {
        if port == ECHO_PORT {
            return request.to_vec();
        }
        // RPC: 4-byte LE size request -> length-prefixed 0x5A response.
        if request.len() < 4 {
            return Vec::new();
        }
        let want = u32::from_le_bytes([request[0], request[1], request[2], request[3]]) as usize;
        let want = want.min(1 << 20);
        let mut resp = Vec::with_capacity(4 + want);
        resp.extend_from_slice(&(want as u32).to_le_bytes());
        resp.extend(std::iter::repeat_n(0x5A, want));
        resp
    }

    /// Drives the peer one round.
    pub fn poll(&mut self) {
        let _ = self.iface.poll();
        for port in [ECHO_PORT, RPC_PORT] {
            while let Some(h) = self.iface.tcp_accept(port) {
                self.conns.push(PeerConn {
                    h,
                    port,
                    tls: if self.tls {
                        PeerTls::AwaitHello
                    } else {
                        PeerTls::Plain
                    },
                    inbuf: Vec::new(),
                });
            }
        }

        let mut dead = Vec::new();
        for (i, conn) in self.conns.iter_mut().enumerate() {
            let Ok(data) = self.iface.tcp_recv(conn.h, usize::MAX) else {
                dead.push(i);
                continue;
            };
            conn.inbuf.extend(data);

            let mut out: Vec<u8> = Vec::new();
            loop {
                match &mut conn.tls {
                    PeerTls::Plain => {
                        if conn.port == RPC_PORT {
                            // Fixed 4-byte requests: consume exactly whole
                            // requests, keep fragments buffered.
                            if conn.inbuf.len() < 4 {
                                break;
                            }
                            let req: Vec<u8> = conn.inbuf.drain(..4).collect();
                            out.extend(Self::serve(conn.port, &req));
                        } else {
                            if conn.inbuf.is_empty() {
                                break;
                            }
                            let req: Vec<u8> = std::mem::take(&mut conn.inbuf);
                            out.extend(Self::serve(conn.port, &req));
                            break;
                        }
                    }
                    PeerTls::AwaitHello => {
                        if conn.inbuf.len() < cio_ctls::handshake::CLIENT_HELLO_LEN {
                            break;
                        }
                        let hello: Vec<u8> = conn
                            .inbuf
                            .drain(..cio_ctls::handshake::CLIENT_HELLO_LEN)
                            .collect();
                        let mut entropy = [0u8; 64];
                        self.rng.fill_bytes(&mut entropy);
                        match ServerHandshake::respond(&hello, &Self::identity(), entropy, None) {
                            Ok((sh, cont)) => {
                                out.extend_from_slice(&sh.to_bytes());
                                conn.tls = PeerTls::AwaitFinished(Box::new(cont));
                            }
                            Err(_) => {
                                dead.push(i);
                                break;
                            }
                        }
                    }
                    PeerTls::AwaitFinished(_) => {
                        if conn.inbuf.len() < 32 {
                            break;
                        }
                        let fin: Vec<u8> = conn.inbuf.drain(..32).collect();
                        let PeerTls::AwaitFinished(cont) =
                            std::mem::replace(&mut conn.tls, PeerTls::Plain)
                        else {
                            unreachable!("matched AwaitFinished above");
                        };
                        match cont.verify_finished(&fin) {
                            Ok(chan) => conn.tls = PeerTls::Open(Box::new(chan)),
                            Err(_) => {
                                dead.push(i);
                                break;
                            }
                        }
                    }
                    PeerTls::Open(chan) => {
                        let Some(record) = take_record(&mut conn.inbuf) else {
                            break;
                        };
                        match chan.open(&record) {
                            Ok(plain) => {
                                let resp = Self::serve(conn.port, &plain);
                                if !resp.is_empty() {
                                    if let Ok(rec) = chan.seal(&resp) {
                                        out.extend(rec);
                                    }
                                }
                            }
                            Err(_) => {
                                dead.push(i);
                                break;
                            }
                        }
                    }
                }
            }
            if !out.is_empty() {
                let _ = self.iface.tcp_send(conn.h, &out);
            }
            if self.iface.tcp_peer_closed(conn.h).unwrap_or(true) {
                let _ = self.iface.tcp_close(conn.h);
                dead.push(i);
            }
        }
        dead.sort_unstable();
        dead.dedup();
        for i in dead.into_iter().rev() {
            self.conns.remove(i);
        }
        let _ = self.iface.poll();
    }

    /// Live connections (diagnostic).
    pub fn connections(&self) -> usize {
        self.conns.len()
    }
}

/// Result of feeding received bytes into a [`SecureStream`].
#[derive(Debug, Default, PartialEq, Eq)]
pub struct FeedResult {
    /// Bytes the caller must transmit (handshake continuations).
    pub to_send: Vec<u8>,
    /// Decrypted application bytes.
    pub app_data: Vec<u8>,
}

#[allow(clippy::large_enum_variant)] // one per connection, long-lived
enum StreamState {
    Plain,
    AwaitServerHello {
        hs: Option<ClientHandshake>,
        inbuf: Vec<u8>,
    },
    Open {
        chan: Box<Channel>,
        inbuf: Vec<u8>,
    },
}

/// Client-side stream protection: plaintext pass-through or cTLS.
pub struct SecureStream {
    state: StreamState,
}

impl SecureStream {
    /// A pass-through stream (no protection).
    pub fn plain() -> Self {
        SecureStream {
            state: StreamState::Plain,
        }
    }

    /// Starts a cTLS client stream; returns the ClientHello to transmit.
    pub fn client(entropy: [u8; 64], hooks: Option<cio_ctls::SimHooks>) -> (Vec<u8>, Self) {
        let (hello, hs) = ClientHandshake::start(entropy, hooks);
        (
            hello,
            SecureStream {
                state: StreamState::AwaitServerHello {
                    hs: Some(hs),
                    inbuf: Vec::new(),
                },
            },
        )
    }

    /// Whether application data can flow.
    pub fn is_open(&self) -> bool {
        matches!(self.state, StreamState::Plain | StreamState::Open { .. })
    }

    /// Protects outgoing application bytes.
    ///
    /// # Errors
    ///
    /// [`CioError::Ctls`] if called before the handshake completes.
    pub fn seal(&mut self, plaintext: &[u8]) -> Result<Vec<u8>, CioError> {
        match &mut self.state {
            StreamState::Plain => Ok(plaintext.to_vec()),
            StreamState::Open { chan, .. } => Ok(chan.seal(plaintext)?),
            StreamState::AwaitServerHello { .. } => Err(CioError::Ctls(CtlsError::BadSequence)),
        }
    }

    /// Feeds raw bytes received from the transport.
    ///
    /// # Errors
    ///
    /// Handshake/record failures; the stream is dead afterwards.
    pub fn feed(&mut self, bytes: &[u8]) -> Result<FeedResult, CioError> {
        let mut result = FeedResult::default();
        match &mut self.state {
            StreamState::Plain => {
                result.app_data.extend_from_slice(bytes);
            }
            StreamState::AwaitServerHello { hs, inbuf } => {
                inbuf.extend_from_slice(bytes);
                if inbuf.len() >= SERVER_HELLO_LEN {
                    let sh_bytes: Vec<u8> = inbuf.drain(..SERVER_HELLO_LEN).collect();
                    let leftover: Vec<u8> = std::mem::take(inbuf);
                    let sh = ServerHello::from_bytes(&sh_bytes)?;
                    let hs = hs.take().expect("handshake consumed once");
                    let (fin, chan) = hs.finish(&sh, &PLATFORM_KEY, &peer_measurement())?;
                    result.to_send = fin;
                    self.state = StreamState::Open {
                        chan: Box::new(chan),
                        inbuf: leftover,
                    };
                    // Any piggybacked records are processed below.
                    let more = self.feed(&[])?;
                    result.app_data.extend(more.app_data);
                    result.to_send.extend(more.to_send);
                }
            }
            StreamState::Open { chan, inbuf } => {
                inbuf.extend_from_slice(bytes);
                while let Some(record) = take_record(inbuf) {
                    result.app_data.extend(chan.open(&record)?);
                }
            }
        }
        Ok(result)
    }
}

/// The LightBox-style tunnel gateway: a *trusted* middlebox that
/// terminates the L2-over-TLS tunnel and switches inner frames onto the
/// safe network segment where the peer lives.
pub struct TunnelGateway {
    chan: Channel,
    /// Gateway side of the safe segment (the peer holds the other end).
    pub segment: cio_netstack::PairDevice,
}

impl TunnelGateway {
    /// Creates the gateway from the provisioned tunnel channel.
    pub fn new(chan: Channel, segment: cio_netstack::PairDevice) -> Self {
        TunnelGateway { chan, segment }
    }

    /// Decapsulates one blob from the untrusted side; returns whether the
    /// inner frame was valid and forwarded.
    pub fn ingress(&mut self, blob: &[u8]) -> bool {
        match self.chan.open(blob) {
            Ok(frame) => self.segment.transmit(&frame).is_ok(),
            Err(_) => false,
        }
    }

    /// Encapsulates frames arriving from the safe segment; returns sealed
    /// blobs for the untrusted side.
    pub fn egress(&mut self) -> Vec<Vec<u8>> {
        let mut out = Vec::new();
        while let Some(frame) = self.segment.receive() {
            if let Ok(blob) = self.chan.seal(&frame) {
                out.push(blob);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_record_framing() {
        let mut buf = Vec::new();
        assert!(take_record(&mut buf).is_none());
        buf.extend_from_slice(&5u32.to_le_bytes());
        buf.extend_from_slice(b"hel");
        assert!(take_record(&mut buf).is_none(), "incomplete");
        buf.extend_from_slice(b"lo");
        let rec = take_record(&mut buf).unwrap();
        assert_eq!(&rec[4..], b"hello");
        assert!(buf.is_empty());
    }

    #[test]
    fn stream_plain_passthrough() {
        let mut s = SecureStream::plain();
        assert!(s.is_open());
        assert_eq!(s.seal(b"data").unwrap(), b"data");
        let r = s.feed(b"reply").unwrap();
        assert_eq!(r.app_data, b"reply");
        assert!(r.to_send.is_empty());
    }

    #[test]
    fn stream_handshake_against_server() {
        let (hello, mut stream) = SecureStream::client([7u8; 64], None);
        assert!(!stream.is_open());
        assert!(stream.seal(b"too early").is_err());

        let identity = ServerIdentity {
            platform_key: PLATFORM_KEY,
            measurement: peer_measurement(),
        };
        let (sh, cont) = ServerHandshake::respond(&hello, &identity, [9u8; 64], None).unwrap();
        let r = stream.feed(&sh.to_bytes()).unwrap();
        assert!(stream.is_open());
        let mut server_chan = cont.verify_finished(&r.to_send).unwrap();

        // Bidirectional data.
        let rec = stream.seal(b"request").unwrap();
        assert_eq!(server_chan.open(&rec).unwrap(), b"request");
        let resp = server_chan.seal(b"response").unwrap();
        let r = stream.feed(&resp).unwrap();
        assert_eq!(r.app_data, b"response");
    }

    #[test]
    fn stream_handles_fragmented_delivery() {
        let (hello, mut stream) = SecureStream::client([1u8; 64], None);
        let identity = ServerIdentity {
            platform_key: PLATFORM_KEY,
            measurement: peer_measurement(),
        };
        let (sh, cont) = ServerHandshake::respond(&hello, &identity, [2u8; 64], None).unwrap();
        let sh_bytes = sh.to_bytes();
        // Deliver the ServerHello one byte at a time.
        let mut fin = Vec::new();
        for b in sh_bytes.iter() {
            fin.extend(stream.feed(std::slice::from_ref(b)).unwrap().to_send);
        }
        let mut server_chan = cont.verify_finished(&fin).unwrap();
        // Deliver a record split in two.
        let resp = server_chan.seal(b"fragmented").unwrap();
        let r1 = stream.feed(&resp[..3]).unwrap();
        assert!(r1.app_data.is_empty());
        let r2 = stream.feed(&resp[3..]).unwrap();
        assert_eq!(r2.app_data, b"fragmented");
    }

    #[test]
    fn gateway_tunnels_frames() {
        let (gw_side, mut peer_side) = cio_netstack::PairDevice::pair(
            [cio_netstack::MacAddr([1; 6]), cio_netstack::MacAddr([2; 6])],
            1500,
        );
        let guest_end = Channel::from_secrets([3; 32], [4; 32], true, None);
        let gw_end = Channel::from_secrets([3; 32], [4; 32], false, None);
        let mut guest = guest_end;
        let mut gw = TunnelGateway::new(gw_end, gw_side);

        // Guest -> gateway -> segment.
        let blob = guest.seal(b"inner ethernet frame").unwrap();
        assert!(gw.ingress(&blob));
        assert_eq!(peer_side.receive().unwrap(), b"inner ethernet frame");

        // Segment -> gateway -> guest.
        peer_side.transmit(b"reply frame").unwrap();
        let blobs = gw.egress();
        assert_eq!(blobs.len(), 1);
        assert_eq!(guest.open(&blobs[0]).unwrap(), b"reply frame");

        // Host-forged blob is dropped at the gateway.
        assert!(!gw.ingress(b"garbage from the host"));
    }
}
