//! Secure endpoints: the remote confidential peer, the client-side stream
//! state machine, and the LightBox-style tunnel gateway.
//!
//! Application traffic in the experiments is end-to-end protected on every
//! boundary configuration (a confidential workload would never trust the
//! network): the peer terminates cTLS, verifies nothing about the client
//! beyond the protocol, and serves two services on fixed ports — echo
//! ([`ECHO_PORT`]) and a size-request RPC ([`RPC_PORT`]).

use crate::CioError;
use cio_ctls::handshake::{ServerHello, SERVER_HELLO_LEN};
use cio_ctls::{
    Channel, ClientHandshake, CtlsError, RecordScratch, ServerHandshake, ServerIdentity,
};
use cio_netstack::stack::{Interface, InterfaceConfig, SocketHandle};
use cio_netstack::{Ipv4Addr, NetDevice};
use cio_sim::{Clock, SimRng, Stage, Telemetry};
use cio_tee::attest::Measurement;
use cio_vring::cioring::{BatchPolicy, BufPool, MAX_BATCH};

/// Echo service port.
pub const ECHO_PORT: u16 = 7;
/// RPC (size-request) service port.
pub const RPC_PORT: u16 = 8080;
/// The peer's attested workload image.
pub const PEER_IMAGE: &[u8] = b"cio-secure-peer-v1";
/// The model's platform attestation key.
pub const PLATFORM_KEY: [u8; 32] = [0x42; 32];

/// The peer's measurement (what clients pin).
pub fn peer_measurement() -> Measurement {
    Measurement::of(PEER_IMAGE)
}

/// Total length (header included) of one complete `[len u32-le][body]`
/// record at the head of `buf`, if whole.
///
/// Hot paths peek with this and process the record in place in the
/// receive buffer, then `drain(..n)` — no per-record allocation.
pub fn record_len(buf: &[u8]) -> Option<usize> {
    if buf.len() < 4 {
        return None;
    }
    let len = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
    if len > (1 << 22) || buf.len() < 4 + len {
        return None;
    }
    Some(4 + len)
}

/// Extracts one complete `[len u32-le][body]` record from `buf`, if whole.
///
/// Allocating convenience over [`record_len`].
pub fn take_record(buf: &mut Vec<u8>) -> Option<Vec<u8>> {
    let n = record_len(buf)?;
    Some(buf.drain(..n).collect())
}

#[allow(clippy::large_enum_variant)] // few, long-lived per-connection states
enum PeerTls {
    Plain,
    AwaitHello,
    AwaitFinished(Box<ServerHandshake>),
    Open(Box<Channel>),
}

struct PeerConn {
    h: SocketHandle,
    port: u16,
    tls: PeerTls,
    inbuf: Vec<u8>,
}

/// The remote confidential peer: echo + RPC, plaintext or cTLS.
///
/// The record dataplane is allocation-free in steady state: records are
/// opened in place out of the connection's receive buffer into reusable
/// scratches, responses are built in a reusable buffer and sealed into a
/// reusable record scratch, and receive buffers of closed connections are
/// recycled through a small [`BufPool`].
pub struct SecurePeer<D: NetDevice> {
    iface: Interface<D>,
    tls: bool,
    rng: SimRng,
    conns: Vec<PeerConn>,
    pool: BufPool,
    plain: RecordScratch,
    resp: Vec<u8>,
    rec: RecordScratch,
    txbuf: Vec<u8>,
    telemetry: Telemetry,
    /// Record-batch discipline: non-serial policies open runs of buffered
    /// records with one shared-keystream AEAD pass and batch-seal the
    /// responses. Serial (default) is the historical per-record loop.
    batch: BatchPolicy,
    /// Per-record scratches for the batched open pass.
    batch_outs: Vec<RecordScratch>,
    /// Per-record response staging for the batched serve pass.
    batch_resps: Vec<Vec<u8>>,
    /// Pending key-rotation override (`Some(interval)`): applied to every
    /// channel already open and to every future handshake, so both ends
    /// of each session rotate in lockstep.
    rekey: Option<Option<u64>>,
}

impl<D: NetDevice> SecurePeer<D> {
    /// Creates the peer, listening on both service ports.
    pub fn new(dev: D, ip: Ipv4Addr, clock: Clock, tls: bool, seed: u64) -> Self {
        let mut iface = Interface::new(dev, InterfaceConfig::new(ip), clock);
        iface.tcp_listen(ECHO_PORT);
        iface.tcp_listen(RPC_PORT);
        SecurePeer {
            iface,
            tls,
            rng: SimRng::seed_from(seed),
            conns: Vec::new(),
            pool: BufPool::default(),
            plain: RecordScratch::new(),
            resp: Vec::new(),
            rec: RecordScratch::new(),
            txbuf: Vec::new(),
            telemetry: Telemetry::disabled(),
            batch: BatchPolicy::default(),
            batch_outs: Vec::new(),
            batch_resps: Vec::new(),
            rekey: None,
        }
    }

    /// Attaches a telemetry domain; peer work is booked to [`Stage::Peer`].
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// Selects the record-batch discipline for open connections.
    pub fn set_batch_policy(&mut self, batch: BatchPolicy) {
        self.batch = batch;
        let want = if batch.is_serial() { 0 } else { MAX_BATCH };
        self.batch_outs.resize_with(want, RecordScratch::new);
        self.batch_resps.resize_with(want, Vec::new);
    }

    /// Overrides the per-session key-rotation interval (`None` disables
    /// rotation) for every open channel and every future handshake. The
    /// world applies the same override to its client streams, so both
    /// directions cross each epoch boundary on the same record.
    pub fn set_rekey_interval(&mut self, interval: Option<u64>) {
        self.rekey = Some(interval);
        for conn in &mut self.conns {
            if let PeerTls::Open(chan) = &mut conn.tls {
                chan.set_rekey_interval(interval);
            }
        }
    }

    fn identity() -> ServerIdentity {
        ServerIdentity {
            platform_key: PLATFORM_KEY,
            measurement: peer_measurement(),
        }
    }

    fn serve_into(port: u16, request: &[u8], resp: &mut Vec<u8>) {
        resp.clear();
        if port == ECHO_PORT {
            resp.extend_from_slice(request);
            return;
        }
        // RPC: 4-byte LE size request -> length-prefixed 0x5A response.
        if request.len() < 4 {
            return;
        }
        let want = u32::from_le_bytes([request[0], request[1], request[2], request[3]]) as usize;
        let want = want.min(1 << 20);
        resp.reserve(4 + want);
        resp.extend_from_slice(&(want as u32).to_le_bytes());
        resp.extend(std::iter::repeat_n(0x5A, want));
    }

    /// Drives the peer one round.
    pub fn poll(&mut self) {
        let _span = self.telemetry.span(0, Stage::Peer);
        let _ = self.iface.poll();
        for port in [ECHO_PORT, RPC_PORT] {
            while let Some(h) = self.iface.tcp_accept(port) {
                let inbuf = self.pool.get();
                self.conns.push(PeerConn {
                    h,
                    port,
                    tls: if self.tls {
                        PeerTls::AwaitHello
                    } else {
                        PeerTls::Plain
                    },
                    inbuf,
                });
            }
        }

        let mut dead = Vec::new();
        for (i, conn) in self.conns.iter_mut().enumerate() {
            let Ok(data) = self.iface.tcp_recv(conn.h, usize::MAX) else {
                dead.push(i);
                continue;
            };
            conn.inbuf.extend(data);

            self.txbuf.clear();
            loop {
                match &mut conn.tls {
                    PeerTls::Plain => {
                        if conn.port == RPC_PORT {
                            // Fixed 4-byte requests: consume exactly whole
                            // requests, keep fragments buffered.
                            if conn.inbuf.len() < 4 {
                                break;
                            }
                            Self::serve_into(conn.port, &conn.inbuf[..4], &mut self.resp);
                            conn.inbuf.drain(..4);
                            self.txbuf.extend_from_slice(&self.resp);
                        } else {
                            // Echo: the response is the buffered bytes.
                            if conn.inbuf.is_empty() {
                                break;
                            }
                            self.txbuf.extend_from_slice(&conn.inbuf);
                            conn.inbuf.clear();
                            break;
                        }
                    }
                    PeerTls::AwaitHello => {
                        if conn.inbuf.len() < cio_ctls::handshake::CLIENT_HELLO_LEN {
                            break;
                        }
                        let hello: Vec<u8> = conn
                            .inbuf
                            .drain(..cio_ctls::handshake::CLIENT_HELLO_LEN)
                            .collect();
                        let mut entropy = [0u8; 64];
                        self.rng.fill_bytes(&mut entropy);
                        match ServerHandshake::respond(&hello, &Self::identity(), entropy, None) {
                            Ok((sh, cont)) => {
                                self.txbuf.extend_from_slice(&sh.to_bytes());
                                conn.tls = PeerTls::AwaitFinished(Box::new(cont));
                            }
                            Err(_) => {
                                dead.push(i);
                                break;
                            }
                        }
                    }
                    PeerTls::AwaitFinished(_) => {
                        if conn.inbuf.len() < 32 {
                            break;
                        }
                        let fin: Vec<u8> = conn.inbuf.drain(..32).collect();
                        let PeerTls::AwaitFinished(cont) =
                            std::mem::replace(&mut conn.tls, PeerTls::Plain)
                        else {
                            unreachable!("matched AwaitFinished above");
                        };
                        match cont.verify_finished(&fin) {
                            Ok(mut chan) => {
                                if let Some(interval) = self.rekey {
                                    chan.set_rekey_interval(interval);
                                }
                                conn.tls = PeerTls::Open(Box::new(chan));
                            }
                            Err(_) => {
                                dead.push(i);
                                break;
                            }
                        }
                    }
                    PeerTls::Open(chan) => {
                        // Gather the run of complete records buffered at
                        // the head of the receive buffer. The serial
                        // policy gathers exactly one, which reduces to
                        // the historical per-record loop.
                        let maxb = if self.batch.is_serial() {
                            1
                        } else {
                            self.batch.max_batch().min(MAX_BATCH)
                        };
                        let mut ends = [0usize; MAX_BATCH];
                        let mut cnt = 0usize;
                        let mut off = 0usize;
                        while cnt < maxb {
                            let Some(n) = record_len(&conn.inbuf[off..]) else {
                                break;
                            };
                            off += n;
                            ends[cnt] = off;
                            cnt += 1;
                        }
                        if cnt == 0 {
                            break;
                        }
                        if cnt == 1 {
                            // Open in place out of the receive buffer: the
                            // record is only drained once it verified, and
                            // request, response, and sealed reply all live
                            // in reusable scratches.
                            let n = ends[0];
                            match chan.open_into(&conn.inbuf[..n], &mut self.plain) {
                                Ok(()) => {
                                    conn.inbuf.drain(..n);
                                    if conn.port == ECHO_PORT {
                                        // Echo seals the reply straight from
                                        // the opened request scratch — no
                                        // response-buffer copy per record.
                                        if !self.plain.as_slice().is_empty()
                                            && chan
                                                .seal_into(self.plain.as_slice(), &mut self.rec)
                                                .is_ok()
                                        {
                                            self.txbuf.extend_from_slice(self.rec.as_slice());
                                        }
                                    } else {
                                        Self::serve_into(
                                            conn.port,
                                            self.plain.as_slice(),
                                            &mut self.resp,
                                        );
                                        if !self.resp.is_empty()
                                            && chan.seal_into(&self.resp, &mut self.rec).is_ok()
                                        {
                                            self.txbuf.extend_from_slice(self.rec.as_slice());
                                        }
                                    }
                                }
                                Err(_) => {
                                    dead.push(i);
                                    break;
                                }
                            }
                        } else {
                            // Batched open: one shared-keystream AEAD pass
                            // over the whole run. A failed record ends the
                            // connection exactly as the serial path does —
                            // records before the failure are served,
                            // records after it are discarded.
                            let mut recs: [&[u8]; MAX_BATCH] = [&[]; MAX_BATCH];
                            let mut start = 0usize;
                            for (k, &end) in ends[..cnt].iter().enumerate() {
                                recs[k] = &conn.inbuf[start..end];
                                start = end;
                            }
                            let mut results: [Result<(), CtlsError>; MAX_BATCH] =
                                [Ok(()); MAX_BATCH];
                            chan.open_batch_in_slots(
                                &recs[..cnt],
                                &mut self.batch_outs[..cnt],
                                &mut results[..cnt],
                            );
                            let good = results[..cnt].iter().take_while(|r| r.is_ok()).count();
                            for k in 0..good {
                                let (outs, resps) = (&self.batch_outs[k], &mut self.batch_resps[k]);
                                Self::serve_into(conn.port, outs.as_slice(), resps);
                            }
                            // One batched seal covers every non-empty
                            // response, written straight into the send
                            // buffer (no per-record scratch bounce).
                            let mut pts: [&[u8]; MAX_BATCH] = [&[]; MAX_BATCH];
                            let mut m = 0usize;
                            for resp in self.batch_resps[..good].iter() {
                                if !resp.is_empty() {
                                    pts[m] = resp;
                                    m += 1;
                                }
                            }
                            if m > 0 {
                                let base = self.txbuf.len();
                                let total: usize = pts[..m]
                                    .iter()
                                    .map(|p| p.len() + cio_ctls::RECORD_OVERHEAD)
                                    .sum();
                                self.txbuf.resize(base + total, 0);
                                let mut slots: [&mut [u8]; MAX_BATCH] =
                                    std::array::from_fn(|_| &mut [][..]);
                                let mut rest = &mut self.txbuf[base..];
                                for (j, pt) in pts[..m].iter().enumerate() {
                                    let take = pt.len() + cio_ctls::RECORD_OVERHEAD;
                                    let (head, tail) = std::mem::take(&mut rest).split_at_mut(take);
                                    slots[j] = head;
                                    rest = tail;
                                }
                                let mut lens = [0usize; MAX_BATCH];
                                if chan
                                    .seal_batch_into_slots(
                                        &pts[..m],
                                        &mut slots[..m],
                                        &mut lens[..m],
                                    )
                                    .is_err()
                                {
                                    dead.push(i);
                                    break;
                                }
                            }
                            if good > 0 {
                                conn.inbuf.drain(..ends[good - 1]);
                            }
                            if good < cnt {
                                dead.push(i);
                                break;
                            }
                        }
                    }
                }
            }
            if !self.txbuf.is_empty() {
                let _ = self.iface.tcp_send(conn.h, &self.txbuf);
            }
            if self.iface.tcp_peer_closed(conn.h).unwrap_or(true) {
                let _ = self.iface.tcp_close(conn.h);
                dead.push(i);
            }
        }
        dead.sort_unstable();
        dead.dedup();
        for i in dead.into_iter().rev() {
            let conn = self.conns.remove(i);
            self.pool.put(conn.inbuf);
        }
        let _ = self.iface.poll();
    }

    /// Live connections (diagnostic).
    pub fn connections(&self) -> usize {
        self.conns.len()
    }
}

/// Result of feeding received bytes into a [`SecureStream`].
#[derive(Debug, Default, PartialEq, Eq)]
pub struct FeedResult {
    /// Bytes the caller must transmit (handshake continuations).
    pub to_send: Vec<u8>,
    /// Decrypted application bytes.
    pub app_data: Vec<u8>,
}

#[allow(clippy::large_enum_variant)] // one per connection, long-lived
enum StreamState {
    Plain,
    AwaitServerHello {
        hs: Option<ClientHandshake>,
        inbuf: Vec<u8>,
    },
    Open {
        chan: Box<Channel>,
        inbuf: Vec<u8>,
        /// Per-record decrypt scratch, reused across the stream's life.
        plain: RecordScratch,
    },
}

/// Client-side stream protection: plaintext pass-through or cTLS.
pub struct SecureStream {
    state: StreamState,
    /// Record-batch discipline for draining buffered records: non-serial
    /// policies open runs with one shared-keystream AEAD pass. Serial
    /// (default) is the historical per-record loop, bit for bit.
    batch: BatchPolicy,
    /// Per-record scratches for the batched open pass.
    batch_outs: Vec<RecordScratch>,
    /// Pending key-rotation override (`Some(interval)`): applied as soon
    /// as the channel opens (and immediately when already open).
    rekey: Option<Option<u64>>,
}

impl SecureStream {
    /// A pass-through stream (no protection).
    pub fn plain() -> Self {
        SecureStream {
            state: StreamState::Plain,
            batch: BatchPolicy::default(),
            batch_outs: Vec::new(),
            rekey: None,
        }
    }

    /// Starts a cTLS client stream; returns the ClientHello to transmit.
    pub fn client(entropy: [u8; 64], hooks: Option<cio_ctls::SimHooks>) -> (Vec<u8>, Self) {
        let (hello, hs) = ClientHandshake::start(entropy, hooks);
        (
            hello,
            SecureStream {
                state: StreamState::AwaitServerHello {
                    hs: Some(hs),
                    inbuf: Vec::new(),
                },
                batch: BatchPolicy::default(),
                batch_outs: Vec::new(),
                rekey: None,
            },
        )
    }

    /// Selects the record-batch discipline for inbound records.
    pub fn set_batch_policy(&mut self, batch: BatchPolicy) {
        self.batch = batch;
        let want = if batch.is_serial() { 0 } else { MAX_BATCH };
        self.batch_outs.resize_with(want, RecordScratch::new);
    }

    /// Overrides the per-session key-rotation interval (`None` disables
    /// rotation). Takes effect immediately on an open channel, or at the
    /// moment the handshake completes otherwise.
    pub fn set_rekey_interval(&mut self, interval: Option<u64>) {
        self.rekey = Some(interval);
        if let StreamState::Open { chan, .. } = &mut self.state {
            chan.set_rekey_interval(interval);
        }
    }

    /// Whether application data can flow.
    pub fn is_open(&self) -> bool {
        matches!(self.state, StreamState::Plain | StreamState::Open { .. })
    }

    /// Whether the cTLS handshake is still in flight (application data
    /// cannot flow yet; see [`crate::session::SessionError::Handshaking`]).
    pub fn is_handshaking(&self) -> bool {
        matches!(self.state, StreamState::AwaitServerHello { .. })
    }

    /// The transmit-direction key epoch, when the stream runs cTLS: `0`
    /// until the first rotation, incrementing at every rekey boundary.
    /// `None` for plaintext streams and unfinished handshakes.
    pub fn tx_epoch(&self) -> Option<u64> {
        match &self.state {
            StreamState::Open { chan, .. } => Some(chan.tx_generation()),
            _ => None,
        }
    }

    /// Protects outgoing application bytes.
    ///
    /// # Errors
    ///
    /// [`CioError::Ctls`] if called before the handshake completes.
    pub fn seal(&mut self, plaintext: &[u8]) -> Result<Vec<u8>, CioError> {
        let mut out = RecordScratch::new();
        self.seal_into(plaintext, &mut out)?;
        Ok(out.as_slice().to_vec())
    }

    /// Protects outgoing application bytes into a reusable scratch.
    ///
    /// # Errors
    ///
    /// [`CioError::Ctls`] if called before the handshake completes.
    pub fn seal_into(&mut self, plaintext: &[u8], out: &mut RecordScratch) -> Result<(), CioError> {
        match &mut self.state {
            StreamState::Plain => {
                out.copy_from(plaintext);
                Ok(())
            }
            StreamState::Open { chan, .. } => Ok(chan.seal_into(plaintext, out)?),
            StreamState::AwaitServerHello { .. } => Err(CioError::Ctls(CtlsError::BadSequence)),
        }
    }

    /// Feeds raw bytes received from the transport.
    ///
    /// Allocating convenience over [`SecureStream::feed_into`].
    ///
    /// # Errors
    ///
    /// Handshake/record failures; the stream is dead afterwards.
    pub fn feed(&mut self, bytes: &[u8]) -> Result<FeedResult, CioError> {
        let mut result = FeedResult::default();
        self.feed_into(bytes, &mut result)?;
        Ok(result)
    }

    /// Feeds raw bytes received from the transport, reusing the caller's
    /// [`FeedResult`] buffers (cleared first).
    ///
    /// # Errors
    ///
    /// Handshake/record failures; the stream is dead afterwards.
    pub fn feed_into(&mut self, bytes: &[u8], result: &mut FeedResult) -> Result<(), CioError> {
        result.to_send.clear();
        result.app_data.clear();
        self.feed_append(bytes, result)
    }

    fn feed_append(&mut self, bytes: &[u8], result: &mut FeedResult) -> Result<(), CioError> {
        match &mut self.state {
            StreamState::Plain => {
                result.app_data.extend_from_slice(bytes);
            }
            StreamState::AwaitServerHello { hs, inbuf } => {
                inbuf.extend_from_slice(bytes);
                if inbuf.len() >= SERVER_HELLO_LEN {
                    let sh_bytes: Vec<u8> = inbuf.drain(..SERVER_HELLO_LEN).collect();
                    let leftover: Vec<u8> = std::mem::take(inbuf);
                    let sh = ServerHello::from_bytes(&sh_bytes)?;
                    let hs = hs.take().expect("handshake consumed once");
                    let (fin, mut chan) = hs.finish(&sh, &PLATFORM_KEY, &peer_measurement())?;
                    if let Some(interval) = self.rekey {
                        chan.set_rekey_interval(interval);
                    }
                    result.to_send.extend_from_slice(&fin);
                    self.state = StreamState::Open {
                        chan: Box::new(chan),
                        inbuf: leftover,
                        plain: RecordScratch::new(),
                    };
                    // Any piggybacked records are processed below.
                    self.feed_append(&[], result)?;
                }
            }
            StreamState::Open { chan, inbuf, plain } => {
                inbuf.extend_from_slice(bytes);
                let maxb = if self.batch.is_serial() {
                    1
                } else {
                    self.batch.max_batch().min(MAX_BATCH)
                };
                loop {
                    // Gather the run of complete records (one under the
                    // serial policy — the historical per-record loop).
                    let mut ends = [0usize; MAX_BATCH];
                    let mut cnt = 0usize;
                    let mut off = 0usize;
                    while cnt < maxb {
                        let Some(n) = record_len(&inbuf[off..]) else {
                            break;
                        };
                        off += n;
                        ends[cnt] = off;
                        cnt += 1;
                    }
                    if cnt == 0 {
                        break;
                    }
                    if cnt == 1 {
                        chan.open_into(&inbuf[..ends[0]], plain)?;
                        inbuf.drain(..ends[0]);
                        result.app_data.extend_from_slice(plain.as_slice());
                    } else {
                        // One shared-keystream AEAD pass over the run. A
                        // failed record kills the stream exactly where the
                        // serial loop would: plaintexts before it are
                        // delivered, the error propagates, and the stream
                        // is dead to the caller.
                        let mut recs: [&[u8]; MAX_BATCH] = [&[]; MAX_BATCH];
                        let mut start = 0usize;
                        for (k, &end) in ends[..cnt].iter().enumerate() {
                            recs[k] = &inbuf[start..end];
                            start = end;
                        }
                        let mut results: [Result<(), CtlsError>; MAX_BATCH] = [Ok(()); MAX_BATCH];
                        chan.open_batch_in_slots(
                            &recs[..cnt],
                            &mut self.batch_outs[..cnt],
                            &mut results[..cnt],
                        );
                        let good = results[..cnt].iter().take_while(|r| r.is_ok()).count();
                        for out in self.batch_outs[..good].iter() {
                            result.app_data.extend_from_slice(out.as_slice());
                        }
                        if good > 0 {
                            inbuf.drain(..ends[good - 1]);
                        }
                        if good < cnt {
                            results[good]?;
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

/// The LightBox-style tunnel gateway: a *trusted* middlebox that
/// terminates the L2-over-TLS tunnel and switches inner frames onto the
/// safe network segment where the peer lives.
pub struct TunnelGateway {
    chan: Channel,
    /// Gateway side of the safe segment (the peer holds the other end).
    pub segment: cio_netstack::PairDevice,
    open_scratch: RecordScratch,
    seal_scratch: RecordScratch,
}

impl TunnelGateway {
    /// Creates the gateway from the provisioned tunnel channel.
    pub fn new(chan: Channel, segment: cio_netstack::PairDevice) -> Self {
        TunnelGateway {
            chan,
            segment,
            open_scratch: RecordScratch::new(),
            seal_scratch: RecordScratch::new(),
        }
    }

    /// Decapsulates one blob from the untrusted side; returns whether the
    /// inner frame was valid and forwarded. The decrypted frame lives in a
    /// reusable scratch — no per-blob allocation.
    pub fn ingress(&mut self, blob: &[u8]) -> bool {
        match self.chan.open_into(blob, &mut self.open_scratch) {
            Ok(()) => self.segment.transmit(self.open_scratch.as_slice()).is_ok(),
            Err(_) => false,
        }
    }

    /// Encapsulates frames arriving from the safe segment, handing each
    /// sealed blob to `emit` straight out of a reusable scratch.
    pub fn egress_each<F: FnMut(&[u8])>(&mut self, mut emit: F) {
        while let Some(frame) = self.segment.receive() {
            if self.chan.seal_into(&frame, &mut self.seal_scratch).is_ok() {
                emit(self.seal_scratch.as_slice());
            }
        }
    }

    /// Encapsulates frames arriving from the safe segment; returns sealed
    /// blobs for the untrusted side.
    ///
    /// Allocating convenience over [`TunnelGateway::egress_each`].
    pub fn egress(&mut self) -> Vec<Vec<u8>> {
        let mut out = Vec::new();
        self.egress_each(|blob| out.push(blob.to_vec()));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_record_framing() {
        let mut buf = Vec::new();
        assert!(take_record(&mut buf).is_none());
        buf.extend_from_slice(&5u32.to_le_bytes());
        buf.extend_from_slice(b"hel");
        assert!(take_record(&mut buf).is_none(), "incomplete");
        buf.extend_from_slice(b"lo");
        let rec = take_record(&mut buf).unwrap();
        assert_eq!(&rec[4..], b"hello");
        assert!(buf.is_empty());
    }

    #[test]
    fn stream_plain_passthrough() {
        let mut s = SecureStream::plain();
        assert!(s.is_open());
        assert_eq!(s.seal(b"data").unwrap(), b"data");
        let r = s.feed(b"reply").unwrap();
        assert_eq!(r.app_data, b"reply");
        assert!(r.to_send.is_empty());
    }

    #[test]
    fn stream_handshake_against_server() {
        let (hello, mut stream) = SecureStream::client([7u8; 64], None);
        assert!(!stream.is_open());
        assert!(stream.seal(b"too early").is_err());

        let identity = ServerIdentity {
            platform_key: PLATFORM_KEY,
            measurement: peer_measurement(),
        };
        let (sh, cont) = ServerHandshake::respond(&hello, &identity, [9u8; 64], None).unwrap();
        let r = stream.feed(&sh.to_bytes()).unwrap();
        assert!(stream.is_open());
        let mut server_chan = cont.verify_finished(&r.to_send).unwrap();

        // Bidirectional data.
        let rec = stream.seal(b"request").unwrap();
        assert_eq!(server_chan.open(&rec).unwrap(), b"request");
        let resp = server_chan.seal(b"response").unwrap();
        let r = stream.feed(&resp).unwrap();
        assert_eq!(r.app_data, b"response");
    }

    #[test]
    fn stream_handles_fragmented_delivery() {
        let (hello, mut stream) = SecureStream::client([1u8; 64], None);
        let identity = ServerIdentity {
            platform_key: PLATFORM_KEY,
            measurement: peer_measurement(),
        };
        let (sh, cont) = ServerHandshake::respond(&hello, &identity, [2u8; 64], None).unwrap();
        let sh_bytes = sh.to_bytes();
        // Deliver the ServerHello one byte at a time.
        let mut fin = Vec::new();
        for b in sh_bytes.iter() {
            fin.extend(stream.feed(std::slice::from_ref(b)).unwrap().to_send);
        }
        let mut server_chan = cont.verify_finished(&fin).unwrap();
        // Deliver a record split in two.
        let resp = server_chan.seal(b"fragmented").unwrap();
        let r1 = stream.feed(&resp[..3]).unwrap();
        assert!(r1.app_data.is_empty());
        let r2 = stream.feed(&resp[3..]).unwrap();
        assert_eq!(r2.app_data, b"fragmented");
    }

    #[test]
    fn stream_reused_scratches_roundtrip() {
        let (hello, mut stream) = SecureStream::client([5u8; 64], None);
        let identity = ServerIdentity {
            platform_key: PLATFORM_KEY,
            measurement: peer_measurement(),
        };
        let (sh, cont) = ServerHandshake::respond(&hello, &identity, [6u8; 64], None).unwrap();
        let mut result = FeedResult::default();
        stream.feed_into(&sh.to_bytes(), &mut result).unwrap();
        let mut server_chan = cont.verify_finished(&result.to_send).unwrap();

        // One record scratch and one feed result, reused across messages
        // of varying size in both directions.
        let mut rec = RecordScratch::new();
        for i in 0..8usize {
            let msg = vec![i as u8; i * 31];
            stream.seal_into(&msg, &mut rec).unwrap();
            assert_eq!(server_chan.open(rec.as_slice()).unwrap(), msg);
            let resp = server_chan.seal(&msg).unwrap();
            stream.feed_into(&resp, &mut result).unwrap();
            assert_eq!(result.app_data, msg);
            assert!(result.to_send.is_empty());
        }
    }

    #[test]
    fn gateway_tunnels_frames() {
        let (gw_side, mut peer_side) = cio_netstack::PairDevice::pair(
            [cio_netstack::MacAddr([1; 6]), cio_netstack::MacAddr([2; 6])],
            1500,
        );
        let guest_end = Channel::from_secrets([3; 32], [4; 32], true, None);
        let gw_end = Channel::from_secrets([3; 32], [4; 32], false, None);
        let mut guest = guest_end;
        let mut gw = TunnelGateway::new(gw_end, gw_side);

        // Guest -> gateway -> segment.
        let blob = guest.seal(b"inner ethernet frame").unwrap();
        assert!(gw.ingress(&blob));
        assert_eq!(peer_side.receive().unwrap(), b"inner ethernet frame");

        // Segment -> gateway -> guest.
        peer_side.transmit(b"reply frame").unwrap();
        let blobs = gw.egress();
        assert_eq!(blobs.len(), 1);
        assert_eq!(guest.open(&blobs[0]).unwrap(), b"reply frame");

        // Host-forged blob is dropped at the gateway.
        assert!(!gw.ingress(b"garbage from the host"));
    }
}
