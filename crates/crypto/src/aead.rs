//! ChaCha20-Poly1305 AEAD (RFC 8439 §2.8).

use crate::chacha20::{self, KEY_LEN, NONCE_LEN};
use crate::ct::ct_eq;
use crate::poly1305::{Poly1305, TAG_LEN};
use crate::CryptoError;

/// An RFC 8439 ChaCha20-Poly1305 AEAD key.
///
/// # Examples
///
/// ```
/// use cio_crypto::ChaCha20Poly1305;
/// let aead = ChaCha20Poly1305::new([0x11; 32]);
/// let nonce = [0u8; 12];
/// let sealed = aead.seal(&nonce, b"header", b"secret payload");
/// let opened = aead.open(&nonce, b"header", &sealed).unwrap();
/// assert_eq!(opened, b"secret payload");
/// assert!(aead.open(&nonce, b"tampered", &sealed).is_err());
/// ```
#[derive(Clone)]
pub struct ChaCha20Poly1305 {
    key: [u8; KEY_LEN],
}

fn poly_key(key: &[u8; KEY_LEN], nonce: &[u8; NONCE_LEN]) -> [u8; 32] {
    let block = chacha20::block(key, 0, nonce);
    let mut pk = [0u8; 32];
    pk.copy_from_slice(&block[..32]);
    pk
}

fn compute_tag(poly_key: &[u8; 32], aad: &[u8], ciphertext: &[u8]) -> [u8; TAG_LEN] {
    let mut mac = Poly1305::new(poly_key);
    mac.update(aad);
    mac.update(&[0u8; 16][..(16 - aad.len() % 16) % 16]);
    mac.update(ciphertext);
    mac.update(&[0u8; 16][..(16 - ciphertext.len() % 16) % 16]);
    mac.update(&(aad.len() as u64).to_le_bytes());
    mac.update(&(ciphertext.len() as u64).to_le_bytes());
    mac.finalize()
}

impl ChaCha20Poly1305 {
    /// Creates an AEAD instance from a 256-bit key.
    pub fn new(key: [u8; KEY_LEN]) -> Self {
        ChaCha20Poly1305 { key }
    }

    /// Encrypts `plaintext`, authenticating `aad`, and returns
    /// `ciphertext || tag`.
    pub fn seal(&self, nonce: &[u8; NONCE_LEN], aad: &[u8], plaintext: &[u8]) -> Vec<u8> {
        let mut out = plaintext.to_vec();
        chacha20::xor_stream(&self.key, 1, nonce, &mut out);
        let tag = compute_tag(&poly_key(&self.key, nonce), aad, &out);
        out.extend_from_slice(&tag);
        out
    }

    /// Encrypts `buf` in place and returns the detached tag.
    pub fn seal_in_place(
        &self,
        nonce: &[u8; NONCE_LEN],
        aad: &[u8],
        buf: &mut [u8],
    ) -> [u8; TAG_LEN] {
        chacha20::xor_stream(&self.key, 1, nonce, buf);
        compute_tag(&poly_key(&self.key, nonce), aad, buf)
    }

    /// Verifies and decrypts `sealed` (= ciphertext || tag).
    ///
    /// # Errors
    ///
    /// [`CryptoError::BadLength`] if `sealed` is shorter than a tag;
    /// [`CryptoError::BadTag`] if authentication fails — no plaintext is
    /// released in that case.
    pub fn open(
        &self,
        nonce: &[u8; NONCE_LEN],
        aad: &[u8],
        sealed: &[u8],
    ) -> Result<Vec<u8>, CryptoError> {
        if sealed.len() < TAG_LEN {
            return Err(CryptoError::BadLength);
        }
        let (ciphertext, tag) = sealed.split_at(sealed.len() - TAG_LEN);
        let expected = compute_tag(&poly_key(&self.key, nonce), aad, ciphertext);
        if !ct_eq(&expected, tag) {
            return Err(CryptoError::BadTag);
        }
        let mut out = ciphertext.to_vec();
        chacha20::xor_stream(&self.key, 1, nonce, &mut out);
        Ok(out)
    }

    /// Verifies the detached `tag` and decrypts `buf` in place.
    ///
    /// On failure the buffer is left as ciphertext and an error returned.
    pub fn open_in_place(
        &self,
        nonce: &[u8; NONCE_LEN],
        aad: &[u8],
        buf: &mut [u8],
        tag: &[u8; TAG_LEN],
    ) -> Result<(), CryptoError> {
        let expected = compute_tag(&poly_key(&self.key, nonce), aad, buf);
        if !ct_eq(&expected, tag) {
            return Err(CryptoError::BadTag);
        }
        chacha20::xor_stream(&self.key, 1, nonce, buf);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unhex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    // RFC 8439 §2.8.2 AEAD test vector.
    #[test]
    fn rfc8439_seal() {
        let key: [u8; 32] =
            unhex("808182838485868788898a8b8c8d8e8f909192939495969798999a9b9c9d9e9f")
                .try_into()
                .unwrap();
        let nonce: [u8; 12] = unhex("070000004041424344454647").try_into().unwrap();
        let aad = unhex("50515253c0c1c2c3c4c5c6c7");
        let plaintext = b"Ladies and Gentlemen of the class of '99: If I could offer you only one tip for the future, sunscreen would be it.";

        let sealed = ChaCha20Poly1305::new(key).seal(&nonce, &aad, plaintext);
        let expected_ct = unhex(
            "d31a8d34648e60db7b86afbc53ef7ec2a4aded51296e08fea9e2b5a736ee62d6\
             3dbea45e8ca9671282fafb69da92728b1a71de0a9e060b2905d6a5b67ecd3b36\
             92ddbd7f2d778b8c9803aee328091b58fab324e4fad675945585808b4831d7bc\
             3ff4def08e4b7a9de576d26586cec64b6116",
        );
        let expected_tag = unhex("1ae10b594f09e26a7e902ecbd0600691");
        assert_eq!(&sealed[..plaintext.len()], &expected_ct[..]);
        assert_eq!(&sealed[plaintext.len()..], &expected_tag[..]);
    }

    #[test]
    fn rfc8439_open() {
        let key: [u8; 32] =
            unhex("808182838485868788898a8b8c8d8e8f909192939495969798999a9b9c9d9e9f")
                .try_into()
                .unwrap();
        let nonce: [u8; 12] = unhex("070000004041424344454647").try_into().unwrap();
        let aad = unhex("50515253c0c1c2c3c4c5c6c7");
        let aead = ChaCha20Poly1305::new(key);
        let plaintext = b"Ladies and Gentlemen of the class of '99: If I could offer you only one tip for the future, sunscreen would be it.";
        let sealed = aead.seal(&nonce, &aad, plaintext);
        assert_eq!(aead.open(&nonce, &aad, &sealed).unwrap(), plaintext);
    }

    #[test]
    fn tamper_detection() {
        let aead = ChaCha20Poly1305::new([9u8; 32]);
        let nonce = [1u8; 12];
        let sealed = aead.seal(&nonce, b"aad", b"payload");

        // Flip each byte of the sealed message in turn: all must fail.
        for i in 0..sealed.len() {
            let mut bad = sealed.clone();
            bad[i] ^= 0x01;
            assert_eq!(
                aead.open(&nonce, b"aad", &bad),
                Err(CryptoError::BadTag),
                "byte {i}"
            );
        }
        // Wrong AAD fails.
        assert!(aead.open(&nonce, b"dad", &sealed).is_err());
        // Wrong nonce fails.
        assert!(aead.open(&[2u8; 12], b"aad", &sealed).is_err());
        // Truncated below the tag length reports BadLength.
        assert_eq!(
            aead.open(&nonce, b"aad", &sealed[..TAG_LEN - 1]),
            Err(CryptoError::BadLength)
        );
    }

    #[test]
    fn empty_plaintext_and_aad() {
        let aead = ChaCha20Poly1305::new([3u8; 32]);
        let nonce = [0u8; 12];
        let sealed = aead.seal(&nonce, b"", b"");
        assert_eq!(sealed.len(), TAG_LEN);
        assert_eq!(aead.open(&nonce, b"", &sealed).unwrap(), b"");
    }

    #[test]
    fn in_place_matches_vec_api() {
        let aead = ChaCha20Poly1305::new([5u8; 32]);
        let nonce = [7u8; 12];
        let msg = b"in-place round trip across block sizes".to_vec();

        let sealed = aead.seal(&nonce, b"hdr", &msg);
        let mut buf = msg.clone();
        let tag = aead.seal_in_place(&nonce, b"hdr", &mut buf);
        assert_eq!(&sealed[..msg.len()], &buf[..]);
        assert_eq!(&sealed[msg.len()..], &tag[..]);

        aead.open_in_place(&nonce, b"hdr", &mut buf, &tag).unwrap();
        assert_eq!(buf, msg);

        // Failed open leaves ciphertext untouched.
        let mut buf2 = sealed[..msg.len()].to_vec();
        let bad_tag = [0u8; TAG_LEN];
        assert!(aead
            .open_in_place(&nonce, b"hdr", &mut buf2, &bad_tag)
            .is_err());
        assert_eq!(&buf2[..], &sealed[..msg.len()]);
    }

    #[test]
    fn unique_nonces_unique_ciphertexts() {
        let aead = ChaCha20Poly1305::new([8u8; 32]);
        let a = aead.seal(&[0u8; 12], b"", b"same message");
        let b = aead.seal(&[1u8; 12], b"", b"same message");
        assert_ne!(a, b);
    }
}
