//! ChaCha20-Poly1305 AEAD (RFC 8439 §2.8).

use crate::chacha20::{self, ChaCha20, BLOCK_LEN, KEY_LEN, NONCE_LEN, WIDE_BLOCKS};
use crate::ct::ct_eq;
use crate::poly1305::{Poly1305, TAG_LEN};
use crate::CryptoError;

/// Bytes encrypted/absorbed per iteration of the fused loops: one wide
/// ChaCha20 run. A multiple of 16, so the Poly1305 fast path never has
/// to stage bytes until the final partial chunk.
const FUSE_CHUNK: usize = WIDE_BLOCKS * BLOCK_LEN;

/// An RFC 8439 ChaCha20-Poly1305 AEAD key.
///
/// # Examples
///
/// ```
/// use cio_crypto::ChaCha20Poly1305;
/// let aead = ChaCha20Poly1305::new([0x11; 32]);
/// let nonce = [0u8; 12];
/// let sealed = aead.seal(&nonce, b"header", b"secret payload");
/// let opened = aead.open(&nonce, b"header", &sealed).unwrap();
/// assert_eq!(opened, b"secret payload");
/// assert!(aead.open(&nonce, b"tampered", &sealed).is_err());
/// ```
#[derive(Clone)]
pub struct ChaCha20Poly1305 {
    key: [u8; KEY_LEN],
}

fn poly_key(key: &[u8; KEY_LEN], nonce: &[u8; NONCE_LEN]) -> [u8; 32] {
    let block = chacha20::block(key, 0, nonce);
    let mut pk = [0u8; 32];
    pk.copy_from_slice(&block[..32]);
    pk
}

fn compute_tag(poly_key: &[u8; 32], aad: &[u8], ciphertext: &[u8]) -> [u8; TAG_LEN] {
    let mut mac = Poly1305::new(poly_key);
    mac.update(aad);
    mac.update(&[0u8; 16][..(16 - aad.len() % 16) % 16]);
    mac.update(ciphertext);
    mac.update(&[0u8; 16][..(16 - ciphertext.len() % 16) % 16]);
    mac.update(&(aad.len() as u64).to_le_bytes());
    mac.update(&(ciphertext.len() as u64).to_le_bytes());
    mac.finalize()
}

impl ChaCha20Poly1305 {
    /// Creates an AEAD instance from a 256-bit key.
    pub fn new(key: [u8; KEY_LEN]) -> Self {
        ChaCha20Poly1305 { key }
    }

    /// Encrypts `plaintext`, authenticating `aad`, and returns
    /// `ciphertext || tag`.
    pub fn seal(&self, nonce: &[u8; NONCE_LEN], aad: &[u8], plaintext: &[u8]) -> Vec<u8> {
        let mut out = plaintext.to_vec();
        chacha20::xor_stream(&self.key, 1, nonce, &mut out);
        let tag = compute_tag(&poly_key(&self.key, nonce), aad, &out);
        out.extend_from_slice(&tag);
        out
    }

    /// Encrypts `buf` in place and returns the detached tag.
    pub fn seal_in_place(
        &self,
        nonce: &[u8; NONCE_LEN],
        aad: &[u8],
        buf: &mut [u8],
    ) -> [u8; TAG_LEN] {
        chacha20::xor_stream(&self.key, 1, nonce, buf);
        compute_tag(&poly_key(&self.key, nonce), aad, buf)
    }

    /// Verifies and decrypts `sealed` (= ciphertext || tag).
    ///
    /// # Errors
    ///
    /// [`CryptoError::BadLength`] if `sealed` is shorter than a tag;
    /// [`CryptoError::BadTag`] if authentication fails — no plaintext is
    /// released in that case.
    pub fn open(
        &self,
        nonce: &[u8; NONCE_LEN],
        aad: &[u8],
        sealed: &[u8],
    ) -> Result<Vec<u8>, CryptoError> {
        if sealed.len() < TAG_LEN {
            return Err(CryptoError::BadLength);
        }
        let (ciphertext, tag) = sealed.split_at(sealed.len() - TAG_LEN);
        let expected = compute_tag(&poly_key(&self.key, nonce), aad, ciphertext);
        if !ct_eq(&expected, tag) {
            return Err(CryptoError::BadTag);
        }
        let mut out = ciphertext.to_vec();
        chacha20::xor_stream(&self.key, 1, nonce, &mut out);
        Ok(out)
    }

    /// Verifies the detached `tag` and decrypts `buf` in place.
    ///
    /// On failure the buffer is left as ciphertext and an error returned.
    pub fn open_in_place(
        &self,
        nonce: &[u8; NONCE_LEN],
        aad: &[u8],
        buf: &mut [u8],
        tag: &[u8; TAG_LEN],
    ) -> Result<(), CryptoError> {
        let expected = compute_tag(&poly_key(&self.key, nonce), aad, buf);
        if !ct_eq(&expected, tag) {
            return Err(CryptoError::BadTag);
        }
        chacha20::xor_stream(&self.key, 1, nonce, buf);
        Ok(())
    }

    /// Starts a fused one-pass operation: a cached-schedule ChaCha20
    /// session plus a Poly1305 MAC keyed from the counter-0 block of
    /// that same session, with the AAD already absorbed and padded.
    fn fused_start(&self, nonce: &[u8; NONCE_LEN], aad: &[u8]) -> (ChaCha20, Poly1305) {
        let session = ChaCha20::new(&self.key, nonce);
        let block0 = session.block_words(0);
        let mut pk = [0u8; 32];
        for (chunk, w) in pk.chunks_exact_mut(4).zip(&block0[..8]) {
            chunk.copy_from_slice(&w.to_le_bytes());
        }
        let mut mac = Poly1305::new(&pk);
        mac.update(aad);
        mac.update(&[0u8; 16][..(16 - aad.len() % 16) % 16]);
        (session, mac)
    }

    /// Pads the ciphertext, absorbs the RFC 8439 length trailer, and
    /// produces the tag.
    fn fused_finish(mut mac: Poly1305, aad_len: usize, ct_len: usize) -> [u8; TAG_LEN] {
        mac.update(&[0u8; 16][..(16 - ct_len % 16) % 16]);
        mac.update(&(aad_len as u64).to_le_bytes());
        mac.update(&(ct_len as u64).to_le_bytes());
        mac.finalize()
    }

    /// One-pass in-place seal: each 256-byte run is encrypted by the
    /// wide keystream path and immediately absorbed by the MAC while
    /// still hot in cache. Output is bit-identical to [`seal_in_place`].
    pub fn seal_fused_in_place(
        &self,
        nonce: &[u8; NONCE_LEN],
        aad: &[u8],
        buf: &mut [u8],
    ) -> [u8; TAG_LEN] {
        let (session, mut mac) = self.fused_start(nonce, aad);
        let mut counter = 1u32;
        let aad_len = aad.len();
        let ct_len = buf.len();
        for chunk in buf.chunks_mut(FUSE_CHUNK) {
            session.xor_at(counter, chunk);
            counter = counter.wrapping_add(chunk.len().div_ceil(BLOCK_LEN) as u32);
            mac.update(chunk);
        }
        Self::fused_finish(mac, aad_len, ct_len)
    }

    /// One-pass in-place open of `buf` (ciphertext) against the detached
    /// `tag`: each run is absorbed by the MAC and then decrypted, so the
    /// data is read once. Output is bit-identical to [`open_in_place`].
    ///
    /// On tag mismatch the buffer is restored to ciphertext (ChaCha20 is
    /// an involution, so re-encrypting undoes the speculative decrypt)
    /// and no plaintext is released.
    pub fn open_fused_in_place(
        &self,
        nonce: &[u8; NONCE_LEN],
        aad: &[u8],
        buf: &mut [u8],
        tag: &[u8; TAG_LEN],
    ) -> Result<(), CryptoError> {
        let (session, mut mac) = self.fused_start(nonce, aad);
        let mut counter = 1u32;
        let aad_len = aad.len();
        let ct_len = buf.len();
        for chunk in buf.chunks_mut(FUSE_CHUNK) {
            mac.update(chunk);
            session.xor_at(counter, chunk);
            counter = counter.wrapping_add(chunk.len().div_ceil(BLOCK_LEN) as u32);
        }
        let expected = Self::fused_finish(mac, aad_len, ct_len);
        if !ct_eq(&expected, tag) {
            session.xor_at(1, buf);
            return Err(CryptoError::BadTag);
        }
        Ok(())
    }

    /// Fused counterpart of [`seal`]: returns `ciphertext || tag`,
    /// bit-identical to the two-pass API.
    pub fn seal_fused(&self, nonce: &[u8; NONCE_LEN], aad: &[u8], plaintext: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(plaintext.len() + TAG_LEN);
        out.extend_from_slice(plaintext);
        let tag = self.seal_fused_in_place(nonce, aad, &mut out);
        out.extend_from_slice(&tag);
        out
    }

    /// Fused counterpart of [`open`].
    pub fn open_fused(
        &self,
        nonce: &[u8; NONCE_LEN],
        aad: &[u8],
        sealed: &[u8],
    ) -> Result<Vec<u8>, CryptoError> {
        let mut out = Vec::new();
        self.open_fused_into(nonce, aad, sealed, &mut out)?;
        Ok(out)
    }

    /// Seals `plaintext` into a caller-provided buffer, appending
    /// `ciphertext || tag` to `out` without intermediate allocations, so
    /// steady-state paths can reuse the buffer's capacity.
    pub fn seal_fused_into(
        &self,
        nonce: &[u8; NONCE_LEN],
        aad: &[u8],
        plaintext: &[u8],
        out: &mut Vec<u8>,
    ) {
        let start = out.len();
        out.extend_from_slice(plaintext);
        let tag = self.seal_fused_in_place(nonce, aad, &mut out[start..]);
        out.extend_from_slice(&tag);
    }

    /// Opens `sealed` (= ciphertext || tag) into a caller-provided
    /// buffer: `out` is cleared, then filled with the plaintext. The
    /// only steady-state cost is one pass over the data — no allocation
    /// once `out` has warmed up to the message size.
    ///
    /// # Errors
    ///
    /// [`CryptoError::BadLength`] if `sealed` is shorter than a tag;
    /// [`CryptoError::BadTag`] on authentication failure, in which case
    /// `out` is left empty.
    pub fn open_fused_into(
        &self,
        nonce: &[u8; NONCE_LEN],
        aad: &[u8],
        sealed: &[u8],
        out: &mut Vec<u8>,
    ) -> Result<(), CryptoError> {
        if sealed.len() < TAG_LEN {
            return Err(CryptoError::BadLength);
        }
        let (ciphertext, tag) = sealed.split_at(sealed.len() - TAG_LEN);
        let tag: &[u8; TAG_LEN] = tag.try_into().expect("tag length");
        out.clear();
        out.extend_from_slice(ciphertext);
        if let Err(e) = self.open_fused_in_place(nonce, aad, out, tag) {
            out.clear();
            return Err(e);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unhex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    // RFC 8439 §2.8.2 AEAD test vector.
    #[test]
    fn rfc8439_seal() {
        let key: [u8; 32] =
            unhex("808182838485868788898a8b8c8d8e8f909192939495969798999a9b9c9d9e9f")
                .try_into()
                .unwrap();
        let nonce: [u8; 12] = unhex("070000004041424344454647").try_into().unwrap();
        let aad = unhex("50515253c0c1c2c3c4c5c6c7");
        let plaintext = b"Ladies and Gentlemen of the class of '99: If I could offer you only one tip for the future, sunscreen would be it.";

        let sealed = ChaCha20Poly1305::new(key).seal(&nonce, &aad, plaintext);
        let expected_ct = unhex(
            "d31a8d34648e60db7b86afbc53ef7ec2a4aded51296e08fea9e2b5a736ee62d6\
             3dbea45e8ca9671282fafb69da92728b1a71de0a9e060b2905d6a5b67ecd3b36\
             92ddbd7f2d778b8c9803aee328091b58fab324e4fad675945585808b4831d7bc\
             3ff4def08e4b7a9de576d26586cec64b6116",
        );
        let expected_tag = unhex("1ae10b594f09e26a7e902ecbd0600691");
        assert_eq!(&sealed[..plaintext.len()], &expected_ct[..]);
        assert_eq!(&sealed[plaintext.len()..], &expected_tag[..]);
    }

    #[test]
    fn rfc8439_open() {
        let key: [u8; 32] =
            unhex("808182838485868788898a8b8c8d8e8f909192939495969798999a9b9c9d9e9f")
                .try_into()
                .unwrap();
        let nonce: [u8; 12] = unhex("070000004041424344454647").try_into().unwrap();
        let aad = unhex("50515253c0c1c2c3c4c5c6c7");
        let aead = ChaCha20Poly1305::new(key);
        let plaintext = b"Ladies and Gentlemen of the class of '99: If I could offer you only one tip for the future, sunscreen would be it.";
        let sealed = aead.seal(&nonce, &aad, plaintext);
        assert_eq!(aead.open(&nonce, &aad, &sealed).unwrap(), plaintext);
    }

    #[test]
    fn tamper_detection() {
        let aead = ChaCha20Poly1305::new([9u8; 32]);
        let nonce = [1u8; 12];
        let sealed = aead.seal(&nonce, b"aad", b"payload");

        // Flip each byte of the sealed message in turn: all must fail.
        for i in 0..sealed.len() {
            let mut bad = sealed.clone();
            bad[i] ^= 0x01;
            assert_eq!(
                aead.open(&nonce, b"aad", &bad),
                Err(CryptoError::BadTag),
                "byte {i}"
            );
        }
        // Wrong AAD fails.
        assert!(aead.open(&nonce, b"dad", &sealed).is_err());
        // Wrong nonce fails.
        assert!(aead.open(&[2u8; 12], b"aad", &sealed).is_err());
        // Truncated below the tag length reports BadLength.
        assert_eq!(
            aead.open(&nonce, b"aad", &sealed[..TAG_LEN - 1]),
            Err(CryptoError::BadLength)
        );
    }

    #[test]
    fn empty_plaintext_and_aad() {
        let aead = ChaCha20Poly1305::new([3u8; 32]);
        let nonce = [0u8; 12];
        let sealed = aead.seal(&nonce, b"", b"");
        assert_eq!(sealed.len(), TAG_LEN);
        assert_eq!(aead.open(&nonce, b"", &sealed).unwrap(), b"");
    }

    #[test]
    fn in_place_matches_vec_api() {
        let aead = ChaCha20Poly1305::new([5u8; 32]);
        let nonce = [7u8; 12];
        let msg = b"in-place round trip across block sizes".to_vec();

        let sealed = aead.seal(&nonce, b"hdr", &msg);
        let mut buf = msg.clone();
        let tag = aead.seal_in_place(&nonce, b"hdr", &mut buf);
        assert_eq!(&sealed[..msg.len()], &buf[..]);
        assert_eq!(&sealed[msg.len()..], &tag[..]);

        aead.open_in_place(&nonce, b"hdr", &mut buf, &tag).unwrap();
        assert_eq!(buf, msg);

        // Failed open leaves ciphertext untouched.
        let mut buf2 = sealed[..msg.len()].to_vec();
        let bad_tag = [0u8; TAG_LEN];
        assert!(aead
            .open_in_place(&nonce, b"hdr", &mut buf2, &bad_tag)
            .is_err());
        assert_eq!(&buf2[..], &sealed[..msg.len()]);
    }

    #[test]
    fn unique_nonces_unique_ciphertexts() {
        let aead = ChaCha20Poly1305::new([8u8; 32]);
        let a = aead.seal(&[0u8; 12], b"", b"same message");
        let b = aead.seal(&[1u8; 12], b"", b"same message");
        assert_ne!(a, b);
    }
}
