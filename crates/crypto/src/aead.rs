//! ChaCha20-Poly1305 AEAD (RFC 8439 §2.8).

use crate::chacha20::{self, ChaCha20, BLOCK_LEN, KEY_LEN, NONCE_LEN, WIDE_BLOCKS};
use crate::ct::ct_eq;
use crate::poly1305::{Poly1305, TAG_LEN};
use crate::CryptoError;

/// Bytes encrypted/absorbed per iteration of the fused loops: one wide
/// ChaCha20 run. A multiple of 16, so the Poly1305 fast path never has
/// to stage bytes until the final partial chunk.
const FUSE_CHUNK: usize = WIDE_BLOCKS * BLOCK_LEN;

/// Size-threshold for the small-record path. At or below this length
/// the Poly1305 key block (counter 0) and the whole payload keystream
/// (counters 1..) fit in one wide run, so the fused seal/open computes
/// them together instead of paying a separate key block plus per-block
/// scalar keystream — the shape that made small records slower than the
/// two-pass reference.
const SMALL_CUTOFF: usize = FUSE_CHUNK - BLOCK_LEN;

/// Upper bound on records per batched seal/open call. Matches the
/// dataplane's ring batch bound; a fixed bound keeps every batch scratch
/// on the stack.
pub const MAX_BATCH_RECORDS: usize = 16;

/// An RFC 8439 ChaCha20-Poly1305 AEAD key.
///
/// # Examples
///
/// ```
/// use cio_crypto::ChaCha20Poly1305;
/// let aead = ChaCha20Poly1305::new([0x11; 32]);
/// let nonce = [0u8; 12];
/// let sealed = aead.seal(&nonce, b"header", b"secret payload");
/// let opened = aead.open(&nonce, b"header", &sealed).unwrap();
/// assert_eq!(opened, b"secret payload");
/// assert!(aead.open(&nonce, b"tampered", &sealed).is_err());
/// ```
#[derive(Clone)]
pub struct ChaCha20Poly1305 {
    key: [u8; KEY_LEN],
}

fn poly_key(key: &[u8; KEY_LEN], nonce: &[u8; NONCE_LEN]) -> [u8; 32] {
    let block = chacha20::block(key, 0, nonce);
    let mut pk = [0u8; 32];
    pk.copy_from_slice(&block[..32]);
    pk
}

fn compute_tag(poly_key: &[u8; 32], aad: &[u8], ciphertext: &[u8]) -> [u8; TAG_LEN] {
    let mut mac = Poly1305::new(poly_key);
    mac.update(aad);
    mac.update(&[0u8; 16][..(16 - aad.len() % 16) % 16]);
    mac.update(ciphertext);
    mac.update(&[0u8; 16][..(16 - ciphertext.len() % 16) % 16]);
    mac.update(&(aad.len() as u64).to_le_bytes());
    mac.update(&(ciphertext.len() as u64).to_le_bytes());
    mac.finalize()
}

impl ChaCha20Poly1305 {
    /// Creates an AEAD instance from a 256-bit key.
    pub fn new(key: [u8; KEY_LEN]) -> Self {
        ChaCha20Poly1305 { key }
    }

    /// Encrypts `plaintext`, authenticating `aad`, and returns
    /// `ciphertext || tag`.
    pub fn seal(&self, nonce: &[u8; NONCE_LEN], aad: &[u8], plaintext: &[u8]) -> Vec<u8> {
        let mut out = plaintext.to_vec();
        chacha20::xor_stream(&self.key, 1, nonce, &mut out);
        let tag = compute_tag(&poly_key(&self.key, nonce), aad, &out);
        out.extend_from_slice(&tag);
        out
    }

    /// Encrypts `buf` in place and returns the detached tag.
    pub fn seal_in_place(
        &self,
        nonce: &[u8; NONCE_LEN],
        aad: &[u8],
        buf: &mut [u8],
    ) -> [u8; TAG_LEN] {
        chacha20::xor_stream(&self.key, 1, nonce, buf);
        compute_tag(&poly_key(&self.key, nonce), aad, buf)
    }

    /// Verifies and decrypts `sealed` (= ciphertext || tag).
    ///
    /// # Errors
    ///
    /// [`CryptoError::BadLength`] if `sealed` is shorter than a tag;
    /// [`CryptoError::BadTag`] if authentication fails — no plaintext is
    /// released in that case.
    pub fn open(
        &self,
        nonce: &[u8; NONCE_LEN],
        aad: &[u8],
        sealed: &[u8],
    ) -> Result<Vec<u8>, CryptoError> {
        if sealed.len() < TAG_LEN {
            return Err(CryptoError::BadLength);
        }
        let (ciphertext, tag) = sealed.split_at(sealed.len() - TAG_LEN);
        let expected = compute_tag(&poly_key(&self.key, nonce), aad, ciphertext);
        if !ct_eq(&expected, tag) {
            return Err(CryptoError::BadTag);
        }
        let mut out = ciphertext.to_vec();
        chacha20::xor_stream(&self.key, 1, nonce, &mut out);
        Ok(out)
    }

    /// Verifies the detached `tag` and decrypts `buf` in place.
    ///
    /// On failure the buffer is left as ciphertext and an error returned.
    pub fn open_in_place(
        &self,
        nonce: &[u8; NONCE_LEN],
        aad: &[u8],
        buf: &mut [u8],
        tag: &[u8; TAG_LEN],
    ) -> Result<(), CryptoError> {
        let expected = compute_tag(&poly_key(&self.key, nonce), aad, buf);
        if !ct_eq(&expected, tag) {
            return Err(CryptoError::BadTag);
        }
        chacha20::xor_stream(&self.key, 1, nonce, buf);
        Ok(())
    }

    /// Starts a fused one-pass operation: a cached-schedule ChaCha20
    /// session plus a Poly1305 MAC keyed from the counter-0 block of
    /// that same session, with the AAD already absorbed and padded.
    fn fused_start(&self, nonce: &[u8; NONCE_LEN], aad: &[u8]) -> (ChaCha20, Poly1305) {
        let session = ChaCha20::new(&self.key, nonce);
        let block0 = session.block_words(0);
        let mut pk = [0u8; 32];
        for (chunk, w) in pk.chunks_exact_mut(4).zip(&block0[..8]) {
            chunk.copy_from_slice(&w.to_le_bytes());
        }
        let mut mac = Poly1305::new(&pk);
        mac.update(aad);
        mac.update(&[0u8; 16][..(16 - aad.len() % 16) % 16]);
        (session, mac)
    }

    /// Pads the ciphertext, absorbs the RFC 8439 length trailer, and
    /// produces the tag.
    fn fused_finish(mut mac: Poly1305, aad_len: usize, ct_len: usize) -> [u8; TAG_LEN] {
        mac.update(&[0u8; 16][..(16 - ct_len % 16) % 16]);
        mac.update(&(aad_len as u64).to_le_bytes());
        mac.update(&(ct_len as u64).to_le_bytes());
        mac.finalize()
    }

    /// Generates the keystream a small record needs — the Poly1305 key
    /// block plus every payload block — in one shot. When the wide
    /// kernel is hardware-backed, a full run is cheaper than counting
    /// blocks; otherwise only the blocks actually needed are computed.
    fn small_keystream(session: &ChaCha20, ct_len: usize, ks: &mut [u8; FUSE_CHUNK]) {
        debug_assert!(ct_len <= SMALL_CUTOFF);
        let blocks = 1 + ct_len.div_ceil(BLOCK_LEN);
        // One hardware wide run beats counted generation from roughly
        // four blocks up; two- and three-block requests round up to one
        // four-block SSE2 run; hosts without SIMD kernels always count.
        let take = if chacha20::wide_is_accelerated() && blocks >= 4 {
            FUSE_CHUNK
        } else if blocks >= 2 && chacha20::quad_is_accelerated() {
            BLOCK_LEN * blocks.max(4)
        } else {
            BLOCK_LEN * blocks
        };
        session.xor_at(0, &mut ks[..take]);
    }

    /// Builds the MAC for the small path from an already-generated
    /// keystream (key block = the first 32 bytes), AAD absorbed and
    /// padded exactly as [`fused_start`] does.
    fn small_mac(ks: &[u8; FUSE_CHUNK], aad: &[u8]) -> Poly1305 {
        let mut pk = [0u8; 32];
        pk.copy_from_slice(&ks[..32]);
        let mut mac = Poly1305::new(&pk);
        mac.update(aad);
        mac.update(&[0u8; 16][..(16 - aad.len() % 16) % 16]);
        mac
    }

    /// One-pass in-place seal: each 256-byte run is encrypted by the
    /// wide keystream path and immediately absorbed by the MAC while
    /// still hot in cache. Records at or below [`SMALL_CUTOFF`] take a
    /// single-run small path instead. Output is bit-identical to
    /// [`seal_in_place`].
    pub fn seal_fused_in_place(
        &self,
        nonce: &[u8; NONCE_LEN],
        aad: &[u8],
        buf: &mut [u8],
    ) -> [u8; TAG_LEN] {
        if buf.len() <= SMALL_CUTOFF {
            let session = ChaCha20::new(&self.key, nonce);
            let mut ks = [0u8; FUSE_CHUNK];
            Self::small_keystream(&session, buf.len(), &mut ks);
            let mut mac = Self::small_mac(&ks, aad);
            for (b, k) in buf.iter_mut().zip(&ks[BLOCK_LEN..]) {
                *b ^= k;
            }
            mac.update(buf);
            return Self::fused_finish(mac, aad.len(), buf.len());
        }
        let (session, mut mac) = self.fused_start(nonce, aad);
        let mut counter = 1u32;
        let aad_len = aad.len();
        let ct_len = buf.len();
        for chunk in buf.chunks_mut(FUSE_CHUNK) {
            session.xor_at(counter, chunk);
            counter = counter.wrapping_add(chunk.len().div_ceil(BLOCK_LEN) as u32);
            mac.update(chunk);
        }
        Self::fused_finish(mac, aad_len, ct_len)
    }

    /// One-pass scatter seal: reads `plaintext`, writes ciphertext of the
    /// same length into `ct`, and returns the detached tag.
    ///
    /// The plaintext never touches the output buffer — each byte is
    /// combined with the keystream on the way in, so only ciphertext is
    /// ever written there. That makes `ct` safe to point at
    /// adversary-observable shared memory: the in-slot dataplane seals
    /// records directly into ring slots with this. Output is bit-identical
    /// to [`ChaCha20Poly1305::seal_in_place`].
    ///
    /// # Panics
    ///
    /// If `ct.len() != plaintext.len()`.
    pub fn seal_fused_scatter(
        &self,
        nonce: &[u8; NONCE_LEN],
        aad: &[u8],
        plaintext: &[u8],
        ct: &mut [u8],
    ) -> [u8; TAG_LEN] {
        assert_eq!(plaintext.len(), ct.len(), "scatter seal length mismatch");
        if plaintext.len() <= SMALL_CUTOFF {
            let session = ChaCha20::new(&self.key, nonce);
            let mut ks = [0u8; FUSE_CHUNK];
            Self::small_keystream(&session, plaintext.len(), &mut ks);
            let mut mac = Self::small_mac(&ks, aad);
            for ((c, p), k) in ct.iter_mut().zip(plaintext).zip(&ks[BLOCK_LEN..]) {
                *c = p ^ k;
            }
            mac.update(ct);
            return Self::fused_finish(mac, aad.len(), ct.len());
        }
        let (session, mut mac) = self.fused_start(nonce, aad);
        let mut counter = 1u32;
        let aad_len = aad.len();
        let ct_len = ct.len();
        let mut ks = [0u8; FUSE_CHUNK];
        for (pt_chunk, ct_chunk) in plaintext.chunks(FUSE_CHUNK).zip(ct.chunks_mut(FUSE_CHUNK)) {
            let n = pt_chunk.len();
            // XOR over zeros yields the raw keystream for this chunk.
            ks[..n].fill(0);
            session.xor_at(counter, &mut ks[..n]);
            counter = counter.wrapping_add(n.div_ceil(BLOCK_LEN) as u32);
            for ((c, p), k) in ct_chunk.iter_mut().zip(pt_chunk).zip(&ks[..n]) {
                *c = p ^ k;
            }
            mac.update(ct_chunk);
        }
        Self::fused_finish(mac, aad_len, ct_len)
    }

    /// One-pass in-place open of `buf` (ciphertext) against the detached
    /// `tag`: each run is absorbed by the MAC and then decrypted, so the
    /// data is read once. Output is bit-identical to [`open_in_place`].
    ///
    /// On tag mismatch the buffer is restored to ciphertext (ChaCha20 is
    /// an involution, so re-encrypting undoes the speculative decrypt)
    /// and no plaintext is released.
    pub fn open_fused_in_place(
        &self,
        nonce: &[u8; NONCE_LEN],
        aad: &[u8],
        buf: &mut [u8],
        tag: &[u8; TAG_LEN],
    ) -> Result<(), CryptoError> {
        if buf.len() <= SMALL_CUTOFF {
            let session = ChaCha20::new(&self.key, nonce);
            let mut ks = [0u8; FUSE_CHUNK];
            Self::small_keystream(&session, buf.len(), &mut ks);
            let mut mac = Self::small_mac(&ks, aad);
            mac.update(buf);
            for (b, k) in buf.iter_mut().zip(&ks[BLOCK_LEN..]) {
                *b ^= k;
            }
            let expected = Self::fused_finish(mac, aad.len(), buf.len());
            if !ct_eq(&expected, tag) {
                // XOR with the same keystream restores the ciphertext.
                for (b, k) in buf.iter_mut().zip(&ks[BLOCK_LEN..]) {
                    *b ^= k;
                }
                return Err(CryptoError::BadTag);
            }
            return Ok(());
        }
        let (session, mut mac) = self.fused_start(nonce, aad);
        let mut counter = 1u32;
        let aad_len = aad.len();
        let ct_len = buf.len();
        for chunk in buf.chunks_mut(FUSE_CHUNK) {
            mac.update(chunk);
            session.xor_at(counter, chunk);
            counter = counter.wrapping_add(chunk.len().div_ceil(BLOCK_LEN) as u32);
        }
        let expected = Self::fused_finish(mac, aad_len, ct_len);
        if !ct_eq(&expected, tag) {
            session.xor_at(1, buf);
            return Err(CryptoError::BadTag);
        }
        Ok(())
    }

    /// One-pass gather open: reads `ct` (which may live in
    /// adversary-observable shared memory), authenticates it, and writes
    /// the plaintext into the private `out` buffer. The shared source is
    /// never written, and each chunk is fetched into a private scratch
    /// exactly once before being MACed and decrypted — the bytes that
    /// authenticate are the bytes that decrypt, so a host racing the open
    /// cannot split them. The mirror of [`seal_fused_scatter`]: the
    /// in-slot block path opens ciphertext straight out of ring slots
    /// with this.
    ///
    /// On tag mismatch `out` is zeroed and no plaintext is released.
    /// Plaintext output is bit-identical to [`open_in_place`].
    ///
    /// # Panics
    ///
    /// If `out.len() != ct.len()`.
    ///
    /// [`seal_fused_scatter`]: ChaCha20Poly1305::seal_fused_scatter
    /// [`open_in_place`]: ChaCha20Poly1305::open_in_place
    pub fn open_fused_gather(
        &self,
        nonce: &[u8; NONCE_LEN],
        aad: &[u8],
        ct: &[u8],
        out: &mut [u8],
        tag: &[u8; TAG_LEN],
    ) -> Result<(), CryptoError> {
        assert_eq!(ct.len(), out.len(), "gather open length mismatch");
        if ct.len() <= SMALL_CUTOFF {
            let session = ChaCha20::new(&self.key, nonce);
            let mut ks = [0u8; FUSE_CHUNK];
            Self::small_keystream(&session, ct.len(), &mut ks);
            let mut mac = Self::small_mac(&ks, aad);
            let mut tmp = [0u8; SMALL_CUTOFF];
            let fetched = &mut tmp[..ct.len()];
            fetched.copy_from_slice(ct);
            mac.update(fetched);
            let expected = Self::fused_finish(mac, aad.len(), ct.len());
            if !ct_eq(&expected, tag) {
                out.fill(0);
                return Err(CryptoError::BadTag);
            }
            for ((o, c), k) in out.iter_mut().zip(fetched.iter()).zip(&ks[BLOCK_LEN..]) {
                *o = c ^ k;
            }
            return Ok(());
        }
        let (session, mut mac) = self.fused_start(nonce, aad);
        let mut counter = 1u32;
        let mut tmp = [0u8; FUSE_CHUNK];
        for (ct_chunk, out_chunk) in ct.chunks(FUSE_CHUNK).zip(out.chunks_mut(FUSE_CHUNK)) {
            let n = ct_chunk.len();
            tmp[..n].copy_from_slice(ct_chunk);
            mac.update(&tmp[..n]);
            session.xor_at(counter, &mut tmp[..n]);
            counter = counter.wrapping_add(n.div_ceil(BLOCK_LEN) as u32);
            out_chunk.copy_from_slice(&tmp[..n]);
        }
        let expected = Self::fused_finish(mac, aad.len(), ct.len());
        if !ct_eq(&expected, tag) {
            out.fill(0);
            return Err(CryptoError::BadTag);
        }
        Ok(())
    }

    /// Fused counterpart of [`seal`]: returns `ciphertext || tag`,
    /// bit-identical to the two-pass API.
    pub fn seal_fused(&self, nonce: &[u8; NONCE_LEN], aad: &[u8], plaintext: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(plaintext.len() + TAG_LEN);
        out.extend_from_slice(plaintext);
        let tag = self.seal_fused_in_place(nonce, aad, &mut out);
        out.extend_from_slice(&tag);
        out
    }

    /// Fused counterpart of [`open`].
    pub fn open_fused(
        &self,
        nonce: &[u8; NONCE_LEN],
        aad: &[u8],
        sealed: &[u8],
    ) -> Result<Vec<u8>, CryptoError> {
        let mut out = Vec::new();
        self.open_fused_into(nonce, aad, sealed, &mut out)?;
        Ok(out)
    }

    /// Seals `plaintext` into a caller-provided buffer, appending
    /// `ciphertext || tag` to `out` without intermediate allocations, so
    /// steady-state paths can reuse the buffer's capacity.
    pub fn seal_fused_into(
        &self,
        nonce: &[u8; NONCE_LEN],
        aad: &[u8],
        plaintext: &[u8],
        out: &mut Vec<u8>,
    ) {
        let start = out.len();
        out.extend_from_slice(plaintext);
        let tag = self.seal_fused_in_place(nonce, aad, &mut out[start..]);
        out.extend_from_slice(&tag);
    }

    /// Opens `sealed` (= ciphertext || tag) into a caller-provided
    /// buffer: `out` is cleared, then filled with the plaintext. The
    /// only steady-state cost is one pass over the data — no allocation
    /// once `out` has warmed up to the message size.
    ///
    /// # Errors
    ///
    /// [`CryptoError::BadLength`] if `sealed` is shorter than a tag;
    /// [`CryptoError::BadTag`] on authentication failure, in which case
    /// `out` is left empty.
    pub fn open_fused_into(
        &self,
        nonce: &[u8; NONCE_LEN],
        aad: &[u8],
        sealed: &[u8],
        out: &mut Vec<u8>,
    ) -> Result<(), CryptoError> {
        if sealed.len() < TAG_LEN {
            return Err(CryptoError::BadLength);
        }
        let (ciphertext, tag) = sealed.split_at(sealed.len() - TAG_LEN);
        let tag: &[u8; TAG_LEN] = tag.try_into().expect("tag length");
        out.clear();
        out.extend_from_slice(ciphertext);
        if let Err(e) = self.open_fused_in_place(nonce, aad, out, tag) {
            out.clear();
            return Err(e);
        }
        Ok(())
    }
}

/// Seals up to [`MAX_BATCH_RECORDS`] records in one multi-stream
/// keystream pass: the wide ChaCha20 lanes are scheduled *across* record
/// boundaries (via [`chacha20::multi_blocks`]), so a batch of small
/// records fills all eight lanes where the per-record path wastes most
/// of each run. Every record keeps its own key, nonce, AAD, and tag;
/// ciphertext and tags are bit-identical to sealing each record with
/// [`ChaCha20Poly1305::seal_fused_scatter`].
///
/// Record `i` reads `plaintexts[i]`, writes ciphertext of the same
/// length into `cts[i]`, and leaves its detached tag in `tags[i]`. Like
/// the scatter seal, plaintext never touches the output buffers, so they
/// may point at adversary-observable shared memory.
///
/// # Panics
///
/// If the slices disagree in length, a ciphertext buffer does not match
/// its plaintext's length, or the batch exceeds [`MAX_BATCH_RECORDS`].
pub fn seal_batch_scatter(
    aeads: &[&ChaCha20Poly1305],
    nonces: &[[u8; NONCE_LEN]],
    aads: &[&[u8]],
    plaintexts: &[&[u8]],
    cts: &mut [&mut [u8]],
    tags: &mut [[u8; TAG_LEN]],
) {
    let n = plaintexts.len();
    assert!(n <= MAX_BATCH_RECORDS, "batch exceeds MAX_BATCH_RECORDS");
    assert!(
        aeads.len() == n && nonces.len() == n && aads.len() == n && cts.len() == n,
        "batch slice lengths disagree"
    );
    assert!(tags.len() >= n, "tag buffer shorter than the batch");
    for (pt, ct) in plaintexts.iter().zip(cts.iter()) {
        assert_eq!(pt.len(), ct.len(), "scatter seal length mismatch");
    }
    if n == 0 {
        return;
    }

    let sessions: [ChaCha20; MAX_BATCH_RECORDS] = std::array::from_fn(|j| {
        let j = j.min(n - 1);
        ChaCha20::new(&aeads[j].key, &nonces[j])
    });

    // Walk (record, counter) requests in record order — counter 0 is the
    // Poly1305 key block, counters 1.. the payload — packing every wide
    // run with up to WIDE_BLOCKS requests drawn across records.
    let mut pk = [[0u8; 32]; MAX_BATCH_RECORDS];
    let mut group = [(0usize, 0u32); WIDE_BLOCKS];
    let mut blocks = [[0u8; BLOCK_LEN]; WIDE_BLOCKS];
    let mut cur = (0usize, 0u32);
    while cur.0 < n {
        let mut k = 0;
        while k < WIDE_BLOCKS && cur.0 < n {
            group[k] = cur;
            k += 1;
            cur.1 += 1;
            if cur.1 as usize > plaintexts[cur.0].len().div_ceil(BLOCK_LEN) {
                cur = (cur.0 + 1, 0);
            }
        }
        let requests: [(&ChaCha20, u32); WIDE_BLOCKS] = std::array::from_fn(|j| {
            let (r, c) = group[j.min(k - 1)];
            (&sessions[r], c)
        });
        chacha20::multi_blocks(&requests[..k], &mut blocks);
        for (j, &(r, c)) in group[..k].iter().enumerate() {
            if c == 0 {
                pk[r].copy_from_slice(&blocks[j][..32]);
            } else {
                let off = (c as usize - 1) * BLOCK_LEN;
                let pt = plaintexts[r];
                let end = pt.len().min(off + BLOCK_LEN);
                for ((cb, pb), kb) in cts[r][off..end]
                    .iter_mut()
                    .zip(&pt[off..end])
                    .zip(&blocks[j])
                {
                    *cb = pb ^ kb;
                }
            }
        }
    }

    for i in 0..n {
        tags[i] = compute_tag(&pk[i], aads[i], cts[i]);
    }
}

/// Opens up to [`MAX_BATCH_RECORDS`] records in place with the same
/// cross-record lane packing as [`seal_batch_scatter`]. MAC-then-decrypt
/// per record: every tag is verified over the ciphertext first, and only
/// verified records are decrypted, so a corrupted record fails closed
/// (its buffer keeps the exact ciphertext bytes, `results[i]` reports
/// [`CryptoError::BadTag`]) without disturbing its neighbours. Verified
/// records decrypt to exactly what [`ChaCha20Poly1305::open_fused_in_place`]
/// would produce.
///
/// # Panics
///
/// If the slices disagree in length or the batch exceeds
/// [`MAX_BATCH_RECORDS`].
pub fn open_batch_in_place(
    aeads: &[&ChaCha20Poly1305],
    nonces: &[[u8; NONCE_LEN]],
    aads: &[&[u8]],
    bufs: &mut [&mut [u8]],
    tags: &[[u8; TAG_LEN]],
    results: &mut [Result<(), CryptoError>],
) {
    let n = bufs.len();
    assert!(n <= MAX_BATCH_RECORDS, "batch exceeds MAX_BATCH_RECORDS");
    assert!(
        aeads.len() == n && nonces.len() == n && aads.len() == n && tags.len() == n,
        "batch slice lengths disagree"
    );
    assert!(results.len() >= n, "result buffer shorter than the batch");
    if n == 0 {
        return;
    }

    let sessions: [ChaCha20; MAX_BATCH_RECORDS] = std::array::from_fn(|j| {
        let j = j.min(n - 1);
        ChaCha20::new(&aeads[j].key, &nonces[j])
    });

    // Phase 1: the counter-0 (Poly1305 key) blocks for the whole batch.
    let mut pk = [[0u8; 32]; MAX_BATCH_RECORDS];
    let mut blocks = [[0u8; BLOCK_LEN]; WIDE_BLOCKS];
    let mut done = 0;
    while done < n {
        let k = (n - done).min(WIDE_BLOCKS);
        let requests: [(&ChaCha20, u32); WIDE_BLOCKS] =
            std::array::from_fn(|j| (&sessions[done + j.min(k - 1)], 0u32));
        chacha20::multi_blocks(&requests[..k], &mut blocks);
        for j in 0..k {
            pk[done + j].copy_from_slice(&blocks[j][..32]);
        }
        done += k;
    }

    // Phase 2: verify every tag over the still-encrypted buffers.
    for i in 0..n {
        let expected = compute_tag(&pk[i], aads[i], bufs[i]);
        results[i] = if ct_eq(&expected, &tags[i]) {
            Ok(())
        } else {
            Err(CryptoError::BadTag)
        };
    }

    // Phase 3: payload keystream for verified records only, lane-packed
    // across record boundaries again. Failed records are never written.
    let mut group = [(0usize, 0u32); WIDE_BLOCKS];
    let mut cur_rec = 0usize;
    let mut cur_ctr = 1u32;
    while cur_rec < n && (results[cur_rec].is_err() || bufs[cur_rec].is_empty()) {
        cur_rec += 1;
    }
    while cur_rec < n {
        let mut k = 0;
        while k < WIDE_BLOCKS && cur_rec < n {
            group[k] = (cur_rec, cur_ctr);
            k += 1;
            cur_ctr += 1;
            if cur_ctr as usize > bufs[cur_rec].len().div_ceil(BLOCK_LEN) {
                cur_rec += 1;
                cur_ctr = 1;
                while cur_rec < n && (results[cur_rec].is_err() || bufs[cur_rec].is_empty()) {
                    cur_rec += 1;
                }
            }
        }
        let requests: [(&ChaCha20, u32); WIDE_BLOCKS] = std::array::from_fn(|j| {
            let (r, c) = group[j.min(k - 1)];
            (&sessions[r], c)
        });
        chacha20::multi_blocks(&requests[..k], &mut blocks);
        for (j, &(r, c)) in group[..k].iter().enumerate() {
            let off = (c as usize - 1) * BLOCK_LEN;
            let len = bufs[r].len();
            let end = len.min(off + BLOCK_LEN);
            for (b, kb) in bufs[r][off..end].iter_mut().zip(&blocks[j]) {
                *b ^= kb;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unhex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    // RFC 8439 §2.8.2 AEAD test vector.
    #[test]
    fn rfc8439_seal() {
        let key: [u8; 32] =
            unhex("808182838485868788898a8b8c8d8e8f909192939495969798999a9b9c9d9e9f")
                .try_into()
                .unwrap();
        let nonce: [u8; 12] = unhex("070000004041424344454647").try_into().unwrap();
        let aad = unhex("50515253c0c1c2c3c4c5c6c7");
        let plaintext = b"Ladies and Gentlemen of the class of '99: If I could offer you only one tip for the future, sunscreen would be it.";

        let sealed = ChaCha20Poly1305::new(key).seal(&nonce, &aad, plaintext);
        let expected_ct = unhex(
            "d31a8d34648e60db7b86afbc53ef7ec2a4aded51296e08fea9e2b5a736ee62d6\
             3dbea45e8ca9671282fafb69da92728b1a71de0a9e060b2905d6a5b67ecd3b36\
             92ddbd7f2d778b8c9803aee328091b58fab324e4fad675945585808b4831d7bc\
             3ff4def08e4b7a9de576d26586cec64b6116",
        );
        let expected_tag = unhex("1ae10b594f09e26a7e902ecbd0600691");
        assert_eq!(&sealed[..plaintext.len()], &expected_ct[..]);
        assert_eq!(&sealed[plaintext.len()..], &expected_tag[..]);
    }

    #[test]
    fn rfc8439_open() {
        let key: [u8; 32] =
            unhex("808182838485868788898a8b8c8d8e8f909192939495969798999a9b9c9d9e9f")
                .try_into()
                .unwrap();
        let nonce: [u8; 12] = unhex("070000004041424344454647").try_into().unwrap();
        let aad = unhex("50515253c0c1c2c3c4c5c6c7");
        let aead = ChaCha20Poly1305::new(key);
        let plaintext = b"Ladies and Gentlemen of the class of '99: If I could offer you only one tip for the future, sunscreen would be it.";
        let sealed = aead.seal(&nonce, &aad, plaintext);
        assert_eq!(aead.open(&nonce, &aad, &sealed).unwrap(), plaintext);
    }

    #[test]
    fn tamper_detection() {
        let aead = ChaCha20Poly1305::new([9u8; 32]);
        let nonce = [1u8; 12];
        let sealed = aead.seal(&nonce, b"aad", b"payload");

        // Flip each byte of the sealed message in turn: all must fail.
        for i in 0..sealed.len() {
            let mut bad = sealed.clone();
            bad[i] ^= 0x01;
            assert_eq!(
                aead.open(&nonce, b"aad", &bad),
                Err(CryptoError::BadTag),
                "byte {i}"
            );
        }
        // Wrong AAD fails.
        assert!(aead.open(&nonce, b"dad", &sealed).is_err());
        // Wrong nonce fails.
        assert!(aead.open(&[2u8; 12], b"aad", &sealed).is_err());
        // Truncated below the tag length reports BadLength.
        assert_eq!(
            aead.open(&nonce, b"aad", &sealed[..TAG_LEN - 1]),
            Err(CryptoError::BadLength)
        );
    }

    #[test]
    fn empty_plaintext_and_aad() {
        let aead = ChaCha20Poly1305::new([3u8; 32]);
        let nonce = [0u8; 12];
        let sealed = aead.seal(&nonce, b"", b"");
        assert_eq!(sealed.len(), TAG_LEN);
        assert_eq!(aead.open(&nonce, b"", &sealed).unwrap(), b"");
    }

    #[test]
    fn in_place_matches_vec_api() {
        let aead = ChaCha20Poly1305::new([5u8; 32]);
        let nonce = [7u8; 12];
        let msg = b"in-place round trip across block sizes".to_vec();

        let sealed = aead.seal(&nonce, b"hdr", &msg);
        let mut buf = msg.clone();
        let tag = aead.seal_in_place(&nonce, b"hdr", &mut buf);
        assert_eq!(&sealed[..msg.len()], &buf[..]);
        assert_eq!(&sealed[msg.len()..], &tag[..]);

        aead.open_in_place(&nonce, b"hdr", &mut buf, &tag).unwrap();
        assert_eq!(buf, msg);

        // Failed open leaves ciphertext untouched.
        let mut buf2 = sealed[..msg.len()].to_vec();
        let bad_tag = [0u8; TAG_LEN];
        assert!(aead
            .open_in_place(&nonce, b"hdr", &mut buf2, &bad_tag)
            .is_err());
        assert_eq!(&buf2[..], &sealed[..msg.len()]);
    }

    // The fused path (small-record single-run path included) must be
    // bit-identical to the two-pass reference at every size around the
    // dispatch thresholds, and a failed fused open must restore the
    // ciphertext on both sides of the cutoff.
    #[test]
    fn fused_matches_two_pass_across_cutoff() {
        let aead = ChaCha20Poly1305::new([0x21u8; 32]);
        let nonce = [6u8; 12];
        let aad = b"hdr";
        for len in [
            0usize,
            1,
            15,
            63,
            64,
            65,
            255,
            256,
            SMALL_CUTOFF - 1,
            SMALL_CUTOFF,
            SMALL_CUTOFF + 1,
            FUSE_CHUNK,
            FUSE_CHUNK + 1,
            1024,
            4096,
        ] {
            let msg: Vec<u8> = (0..len).map(|i| (i * 11) as u8).collect();

            let mut reference = msg.clone();
            let ref_tag = aead.seal_in_place(&nonce, aad, &mut reference);
            let mut fused = msg.clone();
            let fused_tag = aead.seal_fused_in_place(&nonce, aad, &mut fused);
            assert_eq!(fused, reference, "ciphertext len {len}");
            assert_eq!(fused_tag, ref_tag, "tag len {len}");

            // Scatter seal: same bytes, and the output buffer (poisoned
            // beforehand) never holds plaintext at any observable point.
            let mut scattered = vec![0xEEu8; len];
            let scatter_tag = aead.seal_fused_scatter(&nonce, aad, &msg, &mut scattered);
            assert_eq!(scattered, reference, "scatter ciphertext len {len}");
            assert_eq!(scatter_tag, ref_tag, "scatter tag len {len}");

            aead.open_fused_in_place(&nonce, aad, &mut fused, &fused_tag)
                .expect("round trip");
            assert_eq!(fused, msg, "plaintext len {len}");

            // Failed open leaves the ciphertext intact.
            let mut tampered = reference.clone();
            let bad_tag = [0xFFu8; TAG_LEN];
            assert_eq!(
                aead.open_fused_in_place(&nonce, aad, &mut tampered, &bad_tag),
                Err(CryptoError::BadTag),
                "len {len}"
            );
            assert_eq!(tampered, reference, "rollback len {len}");

            // Gather open: reads shared ciphertext, writes private
            // plaintext, never touches the source.
            let ct_shared = reference.clone();
            let mut gathered = vec![0xEEu8; len];
            aead.open_fused_gather(&nonce, aad, &ct_shared, &mut gathered, &ref_tag)
                .expect("gather round trip");
            assert_eq!(gathered, msg, "gather plaintext len {len}");
            assert_eq!(ct_shared, reference, "gather source untouched len {len}");

            // Failed gather open releases nothing: the output is zeroed.
            let mut sunk = vec![0xEEu8; len];
            assert_eq!(
                aead.open_fused_gather(&nonce, aad, &ct_shared, &mut sunk, &bad_tag),
                Err(CryptoError::BadTag),
                "gather len {len}"
            );
            assert!(sunk.iter().all(|&b| b == 0), "gather zeroed len {len}");
        }
    }

    // The batched seal/open must be bit-identical to the serial scatter
    // path for every record of a mixed-size batch with distinct keys and
    // nonces, at every batch width 1..=MAX_BATCH_RECORDS.
    #[test]
    fn batch_seal_open_matches_serial() {
        let lens: [usize; MAX_BATCH_RECORDS] = [
            0, 1, 63, 64, 65, 447, 448, 449, 1024, 13, 200, 512, 700, 64, 0, 1500,
        ];
        let keys: Vec<[u8; 32]> = (0..MAX_BATCH_RECORDS as u8)
            .map(|i| [i ^ 0x42; 32])
            .collect();
        let aead_objs: Vec<ChaCha20Poly1305> =
            keys.iter().map(|k| ChaCha20Poly1305::new(*k)).collect();
        let nonces: Vec<[u8; NONCE_LEN]> = (0..MAX_BATCH_RECORDS as u8)
            .map(|i| [i.wrapping_mul(3); 12])
            .collect();
        let aad_store: Vec<[u8; 8]> = (0..MAX_BATCH_RECORDS as u64)
            .map(|i| i.to_be_bytes())
            .collect();
        let msgs: Vec<Vec<u8>> = lens
            .iter()
            .enumerate()
            .map(|(i, &l)| (0..l).map(|b| (b * 7 + i) as u8).collect())
            .collect();

        for n in 1..=MAX_BATCH_RECORDS {
            // Serial reference.
            let mut ref_cts = Vec::new();
            let mut ref_tags = Vec::new();
            for i in 0..n {
                let mut ct = vec![0xEEu8; msgs[i].len()];
                let tag =
                    aead_objs[i].seal_fused_scatter(&nonces[i], &aad_store[i], &msgs[i], &mut ct);
                ref_cts.push(ct);
                ref_tags.push(tag);
            }

            // Batched seal into poisoned buffers.
            let aeads: Vec<&ChaCha20Poly1305> = aead_objs[..n].iter().collect();
            let aads: Vec<&[u8]> = aad_store[..n].iter().map(|a| &a[..]).collect();
            let pts: Vec<&[u8]> = msgs[..n].iter().map(|m| &m[..]).collect();
            let mut ct_bufs: Vec<Vec<u8>> = lens[..n].iter().map(|&l| vec![0xEEu8; l]).collect();
            let mut cts: Vec<&mut [u8]> = ct_bufs.iter_mut().map(|c| &mut c[..]).collect();
            let mut tags = [[0u8; TAG_LEN]; MAX_BATCH_RECORDS];
            seal_batch_scatter(&aeads, &nonces[..n], &aads, &pts, &mut cts, &mut tags);
            for i in 0..n {
                assert_eq!(ct_bufs[i], ref_cts[i], "width {n} ciphertext {i}");
                assert_eq!(tags[i], ref_tags[i], "width {n} tag {i}");
            }

            // Batched open round-trips every record.
            let mut open_bufs = ct_bufs.clone();
            let mut bufs: Vec<&mut [u8]> = open_bufs.iter_mut().map(|c| &mut c[..]).collect();
            let mut results = [Ok(()); MAX_BATCH_RECORDS];
            open_batch_in_place(
                &aeads,
                &nonces[..n],
                &aads,
                &mut bufs,
                &tags[..n],
                &mut results,
            );
            for i in 0..n {
                assert_eq!(results[i], Ok(()), "width {n} open {i}");
                assert_eq!(open_bufs[i], msgs[i], "width {n} plaintext {i}");
            }
        }
    }

    // A corrupted record in a batched open fails closed — its buffer
    // keeps the exact ciphertext, its result reports BadTag — while
    // every other record still decrypts.
    #[test]
    fn batch_open_partial_failure_is_isolated() {
        let n = 6usize;
        let aead_objs: Vec<ChaCha20Poly1305> = (0..n as u8)
            .map(|i| ChaCha20Poly1305::new([i; 32]))
            .collect();
        let nonces: Vec<[u8; NONCE_LEN]> = (0..n as u8).map(|i| [i; 12]).collect();
        let aads: Vec<&[u8]> = (0..n).map(|_| &b"hdr"[..]).collect();
        let msgs: Vec<Vec<u8>> = (0..n).map(|i| vec![i as u8; 100 + i * 77]).collect();

        let mut bufs_store: Vec<Vec<u8>> = msgs.clone();
        let mut tags = [[0u8; TAG_LEN]; MAX_BATCH_RECORDS];
        for i in 0..n {
            tags[i] = aead_objs[i].seal_fused_in_place(&nonces[i], aads[i], &mut bufs_store[i]);
        }
        // Corrupt record 2's ciphertext and record 4's tag.
        bufs_store[2][50] ^= 0x80;
        tags[4][0] ^= 0x01;
        let poisoned_ct = bufs_store[2].clone();

        let aeads: Vec<&ChaCha20Poly1305> = aead_objs.iter().collect();
        let mut bufs: Vec<&mut [u8]> = bufs_store.iter_mut().map(|c| &mut c[..]).collect();
        let mut results = [Ok(()); MAX_BATCH_RECORDS];
        open_batch_in_place(&aeads, &nonces, &aads, &mut bufs, &tags[..n], &mut results);
        for i in 0..n {
            if i == 2 || i == 4 {
                assert_eq!(results[i], Err(CryptoError::BadTag), "record {i}");
            } else {
                assert_eq!(results[i], Ok(()), "record {i}");
                assert_eq!(bufs_store[i], msgs[i], "record {i} plaintext");
            }
        }
        // The failed record's buffer is exactly the ciphertext it arrived with.
        assert_eq!(bufs_store[2], poisoned_ct);
    }

    #[test]
    fn unique_nonces_unique_ciphertexts() {
        let aead = ChaCha20Poly1305::new([8u8; 32]);
        let a = aead.seal(&[0u8; 12], b"", b"same message");
        let b = aead.seal(&[1u8; 12], b"", b"same message");
        assert_ne!(a, b);
    }
}
