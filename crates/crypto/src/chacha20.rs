//! ChaCha20 stream cipher (RFC 8439).
//!
//! Two paths produce bit-identical keystreams:
//!
//! * The free functions [`block`] and [`xor_stream`] are the simple
//!   reference implementation: they rebuild the 16-word state for every
//!   block and XOR byte-at-a-time. They stay as the readable baseline
//!   (and as the "two-pass" dataplane the benchmarks compare against).
//! * The [`ChaCha20`] session type is the optimized dataplane: it
//!   precomputes the key/nonce schedule once per message, generates
//!   [`WIDE_BLOCKS`] blocks at a time on `[u32; WIDE_BLOCKS]` lanes (a
//!   shape the optimizer vectorizes), and XORs in `u64` lanes instead
//!   of bytes.

/// ChaCha20 key length in bytes.
pub const KEY_LEN: usize = 32;
/// ChaCha20 nonce length in bytes (IETF variant).
pub const NONCE_LEN: usize = 12;
/// ChaCha20 block size in bytes.
pub const BLOCK_LEN: usize = 64;
/// Blocks generated per iteration of the wide keystream path. Eight
/// 32-bit lanes fill one AVX2 register per state word; narrower shapes
/// leave half of each vector register idle.
pub const WIDE_BLOCKS: usize = 8;

const SIGMA: [u32; 4] = [0x61707865, 0x3320646e, 0x79622d32, 0x6b206574];

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// Computes one 64-byte ChaCha20 keystream block.
pub fn block(key: &[u8; KEY_LEN], counter: u32, nonce: &[u8; NONCE_LEN]) -> [u8; BLOCK_LEN] {
    let mut state = [0u32; 16];
    state[..4].copy_from_slice(&SIGMA);
    for i in 0..8 {
        state[4 + i] = u32::from_le_bytes(key[i * 4..i * 4 + 4].try_into().expect("4 bytes"));
    }
    state[12] = counter;
    for i in 0..3 {
        state[13 + i] = u32::from_le_bytes(nonce[i * 4..i * 4 + 4].try_into().expect("4 bytes"));
    }

    let mut working = state;
    for _ in 0..10 {
        // Column rounds.
        quarter_round(&mut working, 0, 4, 8, 12);
        quarter_round(&mut working, 1, 5, 9, 13);
        quarter_round(&mut working, 2, 6, 10, 14);
        quarter_round(&mut working, 3, 7, 11, 15);
        // Diagonal rounds.
        quarter_round(&mut working, 0, 5, 10, 15);
        quarter_round(&mut working, 1, 6, 11, 12);
        quarter_round(&mut working, 2, 7, 8, 13);
        quarter_round(&mut working, 3, 4, 9, 14);
    }

    let mut out = [0u8; BLOCK_LEN];
    for i in 0..16 {
        let word = working[i].wrapping_add(state[i]);
        out[i * 4..i * 4 + 4].copy_from_slice(&word.to_le_bytes());
    }
    out
}

/// Encrypts or decrypts `data` in place (XOR with the keystream starting at
/// block `initial_counter`).
///
/// ChaCha20 is its own inverse, so the same call decrypts.
///
/// # Examples
///
/// ```
/// use cio_crypto::chacha20::xor_stream;
/// let key = [7u8; 32];
/// let nonce = [9u8; 12];
/// let mut data = *b"attack at dawn";
/// xor_stream(&key, 1, &nonce, &mut data);
/// assert_ne!(&data, b"attack at dawn");
/// xor_stream(&key, 1, &nonce, &mut data);
/// assert_eq!(&data, b"attack at dawn");
/// ```
pub fn xor_stream(
    key: &[u8; KEY_LEN],
    initial_counter: u32,
    nonce: &[u8; NONCE_LEN],
    data: &mut [u8],
) {
    for (i, chunk) in data.chunks_mut(BLOCK_LEN).enumerate() {
        let ks = block(key, initial_counter.wrapping_add(i as u32), nonce);
        for (byte, k) in chunk.iter_mut().zip(ks.iter()) {
            *byte ^= k;
        }
    }
}

/// A ChaCha20 session with the key/nonce schedule precomputed.
///
/// Building the 16-word initial state costs eleven word loads per block in
/// the one-shot [`block`] API; a session pays that once per message. Its
/// keystream methods produce exactly the bytes [`block`] would.
///
/// # Examples
///
/// ```
/// use cio_crypto::chacha20::{block, ChaCha20};
/// let key = [7u8; 32];
/// let nonce = [9u8; 12];
/// let session = ChaCha20::new(&key, &nonce);
/// assert_eq!(session.keystream_block(3), block(&key, 3, &nonce));
/// ```
#[derive(Clone)]
pub struct ChaCha20 {
    /// Initial state with the counter word (index 12) left at zero.
    base: [u32; 16],
}

/// One 32-bit word across the blocks of the wide path.
type Lanes = [u32; WIDE_BLOCKS];

#[inline(always)]
fn ladd(a: Lanes, b: Lanes) -> Lanes {
    let mut out = a;
    for (o, b) in out.iter_mut().zip(b) {
        *o = o.wrapping_add(b);
    }
    out
}

#[inline(always)]
fn lxor(a: Lanes, b: Lanes) -> Lanes {
    let mut out = a;
    for (o, b) in out.iter_mut().zip(b) {
        *o ^= b;
    }
    out
}

#[inline(always)]
fn lrot(a: Lanes, n: u32) -> Lanes {
    let mut out = a;
    for o in &mut out {
        *o = o.rotate_left(n);
    }
    out
}

#[inline(always)]
fn wide_quarter_round(s: &mut [Lanes; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = ladd(s[a], s[b]);
    s[d] = lrot(lxor(s[d], s[a]), 16);
    s[c] = ladd(s[c], s[d]);
    s[b] = lrot(lxor(s[b], s[c]), 12);
    s[a] = ladd(s[a], s[b]);
    s[d] = lrot(lxor(s[d], s[a]), 8);
    s[c] = ladd(s[c], s[d]);
    s[b] = lrot(lxor(s[b], s[c]), 7);
}

impl ChaCha20 {
    /// Builds the session state from key and nonce.
    pub fn new(key: &[u8; KEY_LEN], nonce: &[u8; NONCE_LEN]) -> Self {
        let mut base = [0u32; 16];
        base[..4].copy_from_slice(&SIGMA);
        for i in 0..8 {
            base[4 + i] = u32::from_le_bytes(key[i * 4..i * 4 + 4].try_into().expect("4 bytes"));
        }
        for i in 0..3 {
            base[13 + i] = u32::from_le_bytes(nonce[i * 4..i * 4 + 4].try_into().expect("4 bytes"));
        }
        ChaCha20 { base }
    }

    /// Computes the sixteen post-addition keystream words for `counter`.
    #[inline]
    pub fn block_words(&self, counter: u32) -> [u32; 16] {
        let mut state = self.base;
        state[12] = counter;
        let mut working = state;
        for _ in 0..10 {
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (w, s) in working.iter_mut().zip(state) {
            *w = w.wrapping_add(s);
        }
        working
    }

    /// One 64-byte keystream block, identical to [`block`].
    pub fn keystream_block(&self, counter: u32) -> [u8; BLOCK_LEN] {
        let words = self.block_words(counter);
        let mut out = [0u8; BLOCK_LEN];
        for (chunk, w) in out.chunks_exact_mut(4).zip(words) {
            chunk.copy_from_slice(&w.to_le_bytes());
        }
        out
    }

    /// XORs `data` in place with the keystream starting at block
    /// `initial_counter`, using the wide path for full
    /// [`WIDE_BLOCKS`]-block runs and the scalar path for the
    /// remainder.
    pub fn xor_at(&self, initial_counter: u32, data: &mut [u8]) {
        let mut counter = initial_counter;
        let mut wide = data.chunks_exact_mut(WIDE_BLOCKS * BLOCK_LEN);
        for run in &mut wide {
            self.xor_wide(counter, run);
            counter = counter.wrapping_add(WIDE_BLOCKS as u32);
        }
        for chunk in wide.into_remainder().chunks_mut(BLOCK_LEN) {
            let ks = self.block_words(counter);
            counter = counter.wrapping_add(1);
            xor_words(chunk, &ks);
        }
    }

    /// XORs exactly [`WIDE_BLOCKS`] consecutive blocks, computed
    /// together on `[u32; WIDE_BLOCKS]` lanes so the compiler can
    /// vectorize the rounds.
    fn xor_wide(&self, counter: u32, data: &mut [u8]) {
        debug_assert_eq!(data.len(), WIDE_BLOCKS * BLOCK_LEN);
        let mut init = [[0u32; WIDE_BLOCKS]; 16];
        for (lanes, &word) in init.iter_mut().zip(&self.base) {
            *lanes = [word; WIDE_BLOCKS];
        }
        for (j, c) in init[12].iter_mut().enumerate() {
            *c = counter.wrapping_add(j as u32);
        }

        let mut working = init;
        for _ in 0..10 {
            wide_quarter_round(&mut working, 0, 4, 8, 12);
            wide_quarter_round(&mut working, 1, 5, 9, 13);
            wide_quarter_round(&mut working, 2, 6, 10, 14);
            wide_quarter_round(&mut working, 3, 7, 11, 15);
            wide_quarter_round(&mut working, 0, 5, 10, 15);
            wide_quarter_round(&mut working, 1, 6, 11, 12);
            wide_quarter_round(&mut working, 2, 7, 8, 13);
            wide_quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (w, i) in working.iter_mut().zip(init) {
            *w = ladd(*w, i);
        }

        // Scatter: block `j` of the run is lane `j` of each state word.
        // XOR two words per `u64` load straight out of the lane arrays
        // instead of first gathering a contiguous 16-word block.
        for (j, blk) in data.chunks_exact_mut(BLOCK_LEN).enumerate() {
            for (pair, word) in blk.chunks_exact_mut(8).zip((0..16).step_by(2)) {
                let k = u64::from(working[word][j]) | (u64::from(working[word + 1][j]) << 32);
                let bytes: [u8; 8] = (&*pair).try_into().expect("8 bytes");
                pair.copy_from_slice(&(u64::from_le_bytes(bytes) ^ k).to_le_bytes());
            }
        }
    }
}

/// XORs up to 64 bytes of `data` with keystream words, eight bytes per
/// `u64` lane with a byte-wise tail.
#[inline]
pub(crate) fn xor_words(data: &mut [u8], ks: &[u32; 16]) {
    debug_assert!(data.len() <= BLOCK_LEN);
    let mut lanes = data.chunks_exact_mut(8);
    let mut i = 0;
    for lane in &mut lanes {
        let k = u64::from(ks[i]) | (u64::from(ks[i + 1]) << 32);
        let bytes: [u8; 8] = (&*lane).try_into().expect("8 bytes");
        let v = u64::from_le_bytes(bytes) ^ k;
        lane.copy_from_slice(&v.to_le_bytes());
        i += 2;
    }
    let base = i * 4;
    for (j, b) in lanes.into_remainder().iter_mut().enumerate() {
        let idx = base + j;
        *b ^= (ks[idx / 4] >> (8 * (idx % 4))) as u8;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unhex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    // RFC 8439 §2.3.2 block function test vector.
    #[test]
    fn rfc8439_block() {
        let key: [u8; 32] = (0u8..32).collect::<Vec<_>>().try_into().unwrap();
        let nonce: [u8; 12] = unhex("000000090000004a00000000").try_into().unwrap();
        let ks = block(&key, 1, &nonce);
        let expected = unhex(
            "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e\
             d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e",
        );
        assert_eq!(ks.to_vec(), expected);
    }

    // RFC 8439 §2.4.2 encryption test vector.
    #[test]
    fn rfc8439_encryption() {
        let key: [u8; 32] = (0u8..32).collect::<Vec<_>>().try_into().unwrap();
        let nonce: [u8; 12] = unhex("000000000000004a00000000").try_into().unwrap();
        let mut data = b"Ladies and Gentlemen of the class of '99: If I could offer you only one tip for the future, sunscreen would be it.".to_vec();
        xor_stream(&key, 1, &nonce, &mut data);
        let expected = unhex(
            "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b\
             f91b65c5524733ab8f593dabcd62b3571639d624e65152ab8f530c359f0861d8\
             07ca0dbf500d6a6156a38e088a22b65e52bc514d16ccf806818ce91ab7793736\
             5af90bbf74a35be6b40b8eedf2785e42874d",
        );
        assert_eq!(data, expected);
    }

    #[test]
    fn roundtrip_various_lengths() {
        let key = [0x42u8; 32];
        let nonce = [0x24u8; 12];
        for len in [0usize, 1, 63, 64, 65, 127, 128, 1000] {
            let original: Vec<u8> = (0..len).map(|i| (i * 7) as u8).collect();
            let mut data = original.clone();
            xor_stream(&key, 0, &nonce, &mut data);
            if len > 0 {
                assert_ne!(data, original, "len {len}");
            }
            xor_stream(&key, 0, &nonce, &mut data);
            assert_eq!(data, original, "len {len}");
        }
    }

    #[test]
    fn counter_advances_per_block() {
        let key = [1u8; 32];
        let nonce = [2u8; 12];
        // Encrypting 128 bytes starting at counter 0 must equal block 0 || block 1.
        let mut data = [0u8; 128];
        xor_stream(&key, 0, &nonce, &mut data);
        let b0 = block(&key, 0, &nonce);
        let b1 = block(&key, 1, &nonce);
        assert_eq!(&data[..64], &b0[..]);
        assert_eq!(&data[64..], &b1[..]);
    }

    #[test]
    fn different_nonce_different_stream() {
        let key = [3u8; 32];
        let a = block(&key, 0, &[0u8; 12]);
        let b = block(&key, 0, &[1u8; 12]);
        assert_ne!(a, b);
    }

    #[test]
    fn session_block_matches_reference() {
        let key: [u8; 32] = (0u8..32).collect::<Vec<_>>().try_into().unwrap();
        let nonce: [u8; 12] = unhex("000000090000004a00000000").try_into().unwrap();
        let session = ChaCha20::new(&key, &nonce);
        for counter in [0u32, 1, 2, 3, 4, 1000, u32::MAX] {
            assert_eq!(
                session.keystream_block(counter),
                block(&key, counter, &nonce),
                "counter {counter}"
            );
        }
    }

    #[test]
    fn session_xor_matches_xor_stream() {
        // Cover lengths below, at, and across the wide-path boundary
        // (WIDE_BLOCKS * 64 = 512 bytes), including partial trailing
        // blocks.
        let key = [0x42u8; 32];
        let nonce = [0x24u8; 12];
        let session = ChaCha20::new(&key, &nonce);
        for len in [
            0usize, 1, 8, 63, 64, 65, 255, 256, 257, 511, 512, 513, 1000, 4096,
        ] {
            for counter in [0u32, 1, 7] {
                let original: Vec<u8> = (0..len).map(|i| (i * 13) as u8).collect();
                let mut reference = original.clone();
                xor_stream(&key, counter, &nonce, &mut reference);
                let mut fast = original;
                session.xor_at(counter, &mut fast);
                assert_eq!(fast, reference, "len {len} counter {counter}");
            }
        }
    }

    #[test]
    fn session_xor_counter_wraps_like_reference() {
        let key = [9u8; 32];
        let nonce = [4u8; 12];
        let session = ChaCha20::new(&key, &nonce);
        let mut reference = [0xabu8; 640];
        xor_stream(&key, u32::MAX - 2, &nonce, &mut reference);
        let mut fast = [0xabu8; 640];
        session.xor_at(u32::MAX - 2, &mut fast);
        assert_eq!(fast, reference);
    }
}
