//! Constant-time helpers.
//!
//! Tag verification and key comparison must not early-exit on the first
//! mismatching byte; these helpers accumulate differences branch-free.

/// Compares two byte slices in time dependent only on their lengths.
///
/// Returns `false` immediately if the lengths differ (lengths are public).
///
/// # Examples
///
/// ```
/// use cio_crypto::ct::ct_eq;
/// assert!(ct_eq(b"tag", b"tag"));
/// assert!(!ct_eq(b"tag", b"tab"));
/// assert!(!ct_eq(b"tag", b"tagg"));
/// ```
#[must_use]
pub fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut diff = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        diff |= x ^ y;
    }
    diff == 0
}

/// Constant-time conditional select: returns `a` if `choice` is 1, `b` if 0.
///
/// `choice` must be exactly 0 or 1; other values produce garbage (debug
/// assertion enforces the contract).
#[inline]
#[must_use]
pub fn ct_select_u64(choice: u64, a: u64, b: u64) -> u64 {
    debug_assert!(choice <= 1);
    let mask = choice.wrapping_neg(); // 0 -> 0x0000..., 1 -> 0xffff...
    (a & mask) | (b & !mask)
}

/// Constant-time swap of two u64 arrays when `choice` is 1.
#[inline]
pub fn ct_swap<const N: usize>(choice: u64, a: &mut [u64; N], b: &mut [u64; N]) {
    debug_assert!(choice <= 1);
    let mask = choice.wrapping_neg();
    for i in 0..N {
        let t = mask & (a[i] ^ b[i]);
        a[i] ^= t;
        b[i] ^= t;
    }
}

/// Zeroizes a byte buffer.
///
/// Best-effort hygiene for key material. Without volatile writes the
/// compiler may elide dead stores; the write is routed through
/// `std::ptr::write_volatile`-free black-box (`std::hint::black_box`) to
/// keep the crate `forbid(unsafe_code)` while still defeating trivial
/// dead-store elimination.
pub fn zeroize(buf: &mut [u8]) {
    for b in buf.iter_mut() {
        *b = 0;
    }
    std::hint::black_box(&*buf);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq_basic() {
        assert!(ct_eq(&[], &[]));
        assert!(ct_eq(&[1, 2, 3], &[1, 2, 3]));
        assert!(!ct_eq(&[1, 2, 3], &[1, 2, 4]));
        assert!(!ct_eq(&[1, 2], &[1, 2, 3]));
    }

    #[test]
    fn eq_differs_anywhere() {
        let a = [0u8; 32];
        for i in 0..32 {
            let mut b = a;
            b[i] = 1;
            assert!(!ct_eq(&a, &b), "difference at {i} missed");
        }
    }

    #[test]
    fn select() {
        assert_eq!(ct_select_u64(1, 7, 9), 7);
        assert_eq!(ct_select_u64(0, 7, 9), 9);
    }

    #[test]
    fn swap() {
        let mut a = [1u64, 2];
        let mut b = [3u64, 4];
        ct_swap(0, &mut a, &mut b);
        assert_eq!((a, b), ([1, 2], [3, 4]));
        ct_swap(1, &mut a, &mut b);
        assert_eq!((a, b), ([3, 4], [1, 2]));
    }

    #[test]
    fn zeroize_clears() {
        let mut k = [0xffu8; 16];
        zeroize(&mut k);
        assert_eq!(k, [0u8; 16]);
    }
}
