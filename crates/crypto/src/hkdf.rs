//! HKDF-SHA-256 (RFC 5869).
//!
//! The cTLS key schedule (handshake secrets, traffic keys, rekeying) is
//! built entirely from `extract` and `expand`.

use crate::hmac::HmacSha256;
use crate::sha256::DIGEST_LEN;
use crate::CryptoError;

/// Maximum HKDF-Expand output: 255 blocks of the hash length.
pub const MAX_OUTPUT: usize = 255 * DIGEST_LEN;

/// HKDF-Extract: derives a pseudorandom key from input keying material.
///
/// An empty `salt` is treated as a zero-filled hash-length salt, per the
/// RFC.
pub fn extract(salt: &[u8], ikm: &[u8]) -> [u8; DIGEST_LEN] {
    let zeros = [0u8; DIGEST_LEN];
    let salt = if salt.is_empty() { &zeros[..] } else { salt };
    HmacSha256::mac(salt, ikm)
}

/// HKDF-Expand: expands `prk` into `out.len()` bytes of keying material
/// bound to `info`.
///
/// # Errors
///
/// Returns [`CryptoError::BadLength`] if more than `255 * 32` bytes are
/// requested.
pub fn expand(prk: &[u8; DIGEST_LEN], info: &[u8], out: &mut [u8]) -> Result<(), CryptoError> {
    if out.len() > MAX_OUTPUT {
        return Err(CryptoError::BadLength);
    }
    let mut t: Vec<u8> = Vec::new();
    let mut written = 0usize;
    let mut counter = 1u8;
    while written < out.len() {
        let mut mac = HmacSha256::new(prk);
        mac.update(&t);
        mac.update(info);
        mac.update(&[counter]);
        let block = mac.finalize();
        let take = (out.len() - written).min(DIGEST_LEN);
        out[written..written + take].copy_from_slice(&block[..take]);
        written += take;
        t = block.to_vec();
        counter = counter.wrapping_add(1);
    }
    Ok(())
}

/// Convenience: extract-then-expand into an `N`-byte array.
pub fn derive<const N: usize>(
    salt: &[u8],
    ikm: &[u8],
    info: &[u8],
) -> Result<[u8; N], CryptoError> {
    let prk = extract(salt, ikm);
    let mut out = [0u8; N];
    expand(&prk, info, &mut out)?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    fn unhex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    // RFC 5869 test case 1.
    #[test]
    fn rfc5869_case_1() {
        let ikm = [0x0bu8; 22];
        let salt = unhex("000102030405060708090a0b0c");
        let info = unhex("f0f1f2f3f4f5f6f7f8f9");
        let prk = extract(&salt, &ikm);
        assert_eq!(
            hex(&prk),
            "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5"
        );
        let mut okm = [0u8; 42];
        expand(&prk, &info, &mut okm).unwrap();
        assert_eq!(
            hex(&okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf34007208d5b887185865"
        );
    }

    // RFC 5869 test case 2 (longer inputs/outputs).
    #[test]
    fn rfc5869_case_2() {
        let ikm: Vec<u8> = (0x00..=0x4f).collect();
        let salt: Vec<u8> = (0x60..=0xaf).collect();
        let info: Vec<u8> = (0xb0..=0xff).collect();
        let prk = extract(&salt, &ikm);
        let mut okm = [0u8; 82];
        expand(&prk, &info, &mut okm).unwrap();
        assert_eq!(
            hex(&okm),
            "b11e398dc80327a1c8e7f78c596a49344f012eda2d4efad8a050cc4c19afa97c59045a99cac7827271cb41c65e590e09da3275600c2f09b8367793a9aca3db71cc30c58179ec3e87c14c01d5c1f3434f1d87"
        );
    }

    // RFC 5869 test case 3 (empty salt and info).
    #[test]
    fn rfc5869_case_3() {
        let ikm = [0x0bu8; 22];
        let prk = extract(&[], &ikm);
        assert_eq!(
            hex(&prk),
            "19ef24a32c717b167f33a91d6f648bdf96596776afdb6377ac434c1c293ccb04"
        );
        let mut okm = [0u8; 42];
        expand(&prk, &[], &mut okm).unwrap();
        assert_eq!(
            hex(&okm),
            "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d9d201395faa4b61a96c8"
        );
    }

    #[test]
    fn expand_rejects_oversize() {
        let prk = [0u8; DIGEST_LEN];
        let mut out = vec![0u8; MAX_OUTPUT + 1];
        assert_eq!(expand(&prk, b"", &mut out), Err(CryptoError::BadLength));
        let mut ok = vec![0u8; MAX_OUTPUT];
        assert!(expand(&prk, b"", &mut ok).is_ok());
    }

    #[test]
    fn derive_helper_matches_manual() {
        let okm: [u8; 16] = derive(b"salt", b"ikm", b"info").unwrap();
        let prk = extract(b"salt", b"ikm");
        let mut manual = [0u8; 16];
        expand(&prk, b"info", &mut manual).unwrap();
        assert_eq!(okm, manual);
    }

    #[test]
    fn different_info_different_keys() {
        let a: [u8; 32] = derive(b"s", b"ikm", b"client").unwrap();
        let b: [u8; 32] = derive(b"s", b"ikm", b"server").unwrap();
        assert_ne!(a, b);
    }
}
