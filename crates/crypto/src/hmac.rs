//! HMAC-SHA-256 (RFC 2104 / FIPS 198-1).

use crate::sha256::{Sha256, BLOCK_LEN, DIGEST_LEN};

/// Incremental HMAC-SHA-256.
///
/// # Examples
///
/// ```
/// use cio_crypto::hmac::HmacSha256;
/// let mut mac = HmacSha256::new(b"key");
/// mac.update(b"message");
/// let tag = mac.finalize();
/// assert_eq!(tag.len(), 32);
/// ```
#[derive(Clone)]
pub struct HmacSha256 {
    inner: Sha256,
    outer: Sha256,
}

impl HmacSha256 {
    /// Creates an HMAC state keyed with `key` (any length).
    pub fn new(key: &[u8]) -> Self {
        let mut key_block = [0u8; BLOCK_LEN];
        if key.len() > BLOCK_LEN {
            let digest = Sha256::digest(key);
            key_block[..DIGEST_LEN].copy_from_slice(&digest);
        } else {
            key_block[..key.len()].copy_from_slice(key);
        }

        let mut ipad = [0x36u8; BLOCK_LEN];
        let mut opad = [0x5cu8; BLOCK_LEN];
        for i in 0..BLOCK_LEN {
            ipad[i] ^= key_block[i];
            opad[i] ^= key_block[i];
        }

        let mut inner = Sha256::new();
        inner.update(&ipad);
        let mut outer = Sha256::new();
        outer.update(&opad);
        HmacSha256 { inner, outer }
    }

    /// Absorbs message bytes.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Produces the 32-byte tag.
    pub fn finalize(mut self) -> [u8; DIGEST_LEN] {
        let inner_digest = self.inner.finalize();
        self.outer.update(&inner_digest);
        self.outer.finalize()
    }

    /// One-shot convenience.
    pub fn mac(key: &[u8], data: &[u8]) -> [u8; DIGEST_LEN] {
        let mut h = HmacSha256::new(key);
        h.update(data);
        h.finalize()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    // RFC 4231 test vectors for HMAC-SHA-256.
    #[test]
    fn rfc4231_case_1() {
        let tag = HmacSha256::mac(&[0x0b; 20], b"Hi There");
        assert_eq!(
            hex(&tag),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case_2() {
        let tag = HmacSha256::mac(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            hex(&tag),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case_3() {
        let tag = HmacSha256::mac(&[0xaa; 20], &[0xdd; 50]);
        assert_eq!(
            hex(&tag),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn rfc4231_case_6_long_key() {
        // Key longer than the block size must be hashed first.
        let tag = HmacSha256::mac(
            &[0xaa; 131],
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            hex(&tag),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn rfc4231_case_7_long_key_and_data() {
        let tag = HmacSha256::mac(
            &[0xaa; 131],
            &b"This is a test using a larger than block-size key and a larger than block-size data. The key needs to be hashed before being used by the HMAC algorithm."[..],
        );
        assert_eq!(
            hex(&tag),
            "9b09ffa71b942fcb27635fbcd5b0e944bfdc63644f0713938a7f51535c3a35e2"
        );
    }

    #[test]
    fn incremental_equals_oneshot() {
        let mut mac = HmacSha256::new(b"k");
        mac.update(b"hello ");
        mac.update(b"world");
        assert_eq!(mac.finalize(), HmacSha256::mac(b"k", b"hello world"));
    }
}
