//! From-scratch cryptographic primitives for the confidential I/O stack.
//!
//! The paper mandates a TLS layer above the L5 boundary ("a mandatory TLS
//! layer guarantees data integrity and confidentiality", §3.2) and an
//! IDE-encrypted link for direct device assignment (§3.4). Because the
//! reproduction is dependency-free by design, this crate implements the
//! needed primitives directly:
//!
//! * [`sha256`] — FIPS 180-4 SHA-256.
//! * [`hmac`] — RFC 2104 HMAC-SHA-256.
//! * [`hkdf`] — RFC 5869 HKDF-SHA-256 (extract/expand).
//! * [`chacha20`] — RFC 8439 ChaCha20 stream cipher.
//! * [`poly1305`] — RFC 8439 Poly1305 one-time authenticator.
//! * [`aead`] — RFC 8439 ChaCha20-Poly1305 AEAD.
//! * [`x25519`] — RFC 7748 X25519 Diffie-Hellman.
//! * [`ct`] — constant-time comparison helpers.
//!
//! Every module carries the relevant RFC/NIST test vectors in its unit
//! tests. The implementations favour clarity and branch-free handling of
//! secret data over raw speed, with one exception: the ChaCha20 session
//! keystream has explicit SSE2/AVX2 kernels on `x86_64` (the dataplane
//! benchmarks are wall-clock, so the AEAD really is the hot loop). The
//! SIMD code is confined to one module, tested bit-for-bit against the
//! scalar oracle, and is the only unsafe code in the crate
//! (`#![deny(unsafe_code)]` with a scoped allow there).
//!
//! # Security note
//!
//! This is a research reproduction. The primitives pass the standard test
//! vectors and avoid secret-dependent branches/indices, but they have not
//! been audited or hardened against microarchitectural leakage and must not
//! be used to protect real data.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod aead;
pub mod chacha20;
pub mod ct;
pub mod hkdf;
pub mod hmac;
pub mod poly1305;
pub mod sha256;
pub mod x25519;

pub use aead::ChaCha20Poly1305;
pub use sha256::Sha256;

/// Errors returned by cryptographic operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CryptoError {
    /// An authentication tag did not verify; the ciphertext was discarded.
    BadTag,
    /// A key, nonce, or output length was outside the algorithm's limits.
    BadLength,
    /// A Diffie-Hellman exchange produced the all-zero shared secret
    /// (low-order peer point), which RFC 7748 requires rejecting.
    ZeroSharedSecret,
}

impl std::fmt::Display for CryptoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CryptoError::BadTag => write!(f, "authentication tag mismatch"),
            CryptoError::BadLength => write!(f, "invalid length for cryptographic operation"),
            CryptoError::ZeroSharedSecret => write!(f, "all-zero shared secret rejected"),
        }
    }
}

impl std::error::Error for CryptoError {}
