//! Poly1305 one-time authenticator (RFC 8439).
//!
//! Implemented with radix-2^26 limbs (the "donna" representation): five
//! 26-bit limbs fit products in `u64` without overflow and keep carries
//! simple and branch-free.

/// Poly1305 key length (r || s) in bytes.
pub const KEY_LEN: usize = 32;
/// Poly1305 tag length in bytes.
pub const TAG_LEN: usize = 16;

/// Incremental Poly1305 state.
#[derive(Clone)]
pub struct Poly1305 {
    r: [u32; 5],
    s: [u32; 4],
    h: [u32; 5],
    buffer: [u8; 16],
    buffered: usize,
}

impl Poly1305 {
    /// Creates a state from the 32-byte one-time key `(r, s)`.
    pub fn new(key: &[u8; KEY_LEN]) -> Self {
        // Clamp r per the RFC.
        let t0 = u32::from_le_bytes(key[0..4].try_into().expect("4 bytes"));
        let t1 = u32::from_le_bytes(key[4..8].try_into().expect("4 bytes"));
        let t2 = u32::from_le_bytes(key[8..12].try_into().expect("4 bytes"));
        let t3 = u32::from_le_bytes(key[12..16].try_into().expect("4 bytes"));

        let r = [
            t0 & 0x03ff_ffff,
            ((t0 >> 26) | (t1 << 6)) & 0x03ff_ff03,
            ((t1 >> 20) | (t2 << 12)) & 0x03ff_c0ff,
            ((t2 >> 14) | (t3 << 18)) & 0x03f0_3fff,
            (t3 >> 8) & 0x000f_ffff,
        ];
        let s = [
            u32::from_le_bytes(key[16..20].try_into().expect("4 bytes")),
            u32::from_le_bytes(key[20..24].try_into().expect("4 bytes")),
            u32::from_le_bytes(key[24..28].try_into().expect("4 bytes")),
            u32::from_le_bytes(key[28..32].try_into().expect("4 bytes")),
        ];
        Poly1305 {
            r,
            s,
            h: [0; 5],
            buffer: [0; 16],
            buffered: 0,
        }
    }

    fn process_block(&mut self, block: &[u8; 16], final_bit: bool) {
        let hibit: u32 = if final_bit { 0 } else { 1 << 24 };

        let t0 = u32::from_le_bytes(block[0..4].try_into().expect("4 bytes"));
        let t1 = u32::from_le_bytes(block[4..8].try_into().expect("4 bytes"));
        let t2 = u32::from_le_bytes(block[8..12].try_into().expect("4 bytes"));
        let t3 = u32::from_le_bytes(block[12..16].try_into().expect("4 bytes"));

        // h += m
        self.h[0] = self.h[0].wrapping_add(t0 & 0x03ff_ffff);
        self.h[1] = self.h[1].wrapping_add(((t0 >> 26) | (t1 << 6)) & 0x03ff_ffff);
        self.h[2] = self.h[2].wrapping_add(((t1 >> 20) | (t2 << 12)) & 0x03ff_ffff);
        self.h[3] = self.h[3].wrapping_add(((t2 >> 14) | (t3 << 18)) & 0x03ff_ffff);
        self.h[4] = self.h[4].wrapping_add((t3 >> 8) | hibit);

        // h *= r (mod 2^130 - 5), schoolbook with 5*r folding.
        let [r0, r1, r2, r3, r4] = self.r.map(u64::from);
        let s1 = r1 * 5;
        let s2 = r2 * 5;
        let s3 = r3 * 5;
        let s4 = r4 * 5;
        let [h0, h1, h2, h3, h4] = self.h.map(u64::from);

        let d0 = h0 * r0 + h1 * s4 + h2 * s3 + h3 * s2 + h4 * s1;
        let d1 = h0 * r1 + h1 * r0 + h2 * s4 + h3 * s3 + h4 * s2;
        let d2 = h0 * r2 + h1 * r1 + h2 * r0 + h3 * s4 + h4 * s3;
        let d3 = h0 * r3 + h1 * r2 + h2 * r1 + h3 * r0 + h4 * s4;
        let d4 = h0 * r4 + h1 * r3 + h2 * r2 + h3 * r1 + h4 * r0;

        // Carry propagation.
        let mut c: u64;
        let mut d0 = d0;
        let mut d1 = d1;
        let mut d2 = d2;
        let mut d3 = d3;
        let mut d4 = d4;
        c = d0 >> 26;
        d0 &= 0x03ff_ffff;
        d1 += c;
        c = d1 >> 26;
        d1 &= 0x03ff_ffff;
        d2 += c;
        c = d2 >> 26;
        d2 &= 0x03ff_ffff;
        d3 += c;
        c = d3 >> 26;
        d3 &= 0x03ff_ffff;
        d4 += c;
        c = d4 >> 26;
        d4 &= 0x03ff_ffff;
        d0 += c * 5;
        c = d0 >> 26;
        d0 &= 0x03ff_ffff;
        d1 += c;

        self.h = [d0 as u32, d1 as u32, d2 as u32, d3 as u32, d4 as u32];
    }

    /// Absorbs message bytes.
    pub fn update(&mut self, data: &[u8]) {
        let mut input = data;
        if self.buffered > 0 {
            let take = (16 - self.buffered).min(input.len());
            self.buffer[self.buffered..self.buffered + take].copy_from_slice(&input[..take]);
            self.buffered += take;
            input = &input[take..];
            if self.buffered == 16 {
                let block = self.buffer;
                self.process_block(&block, false);
                self.buffered = 0;
            }
        }
        while input.len() >= 16 {
            let block: [u8; 16] = input[..16].try_into().expect("16 bytes");
            self.process_block(&block, false);
            input = &input[16..];
        }
        if !input.is_empty() {
            self.buffer[..input.len()].copy_from_slice(input);
            self.buffered = input.len();
        }
    }

    /// Completes the MAC and returns the 16-byte tag.
    pub fn finalize(mut self) -> [u8; TAG_LEN] {
        if self.buffered > 0 {
            // Final partial block: append 0x01 then zero-pad; no high bit.
            let mut block = [0u8; 16];
            block[..self.buffered].copy_from_slice(&self.buffer[..self.buffered]);
            block[self.buffered] = 1;
            self.process_block(&block, true);
        }

        let [mut h0, mut h1, mut h2, mut h3, mut h4] = self.h;

        // Full carry.
        let mut c: u32;
        c = h1 >> 26;
        h1 &= 0x03ff_ffff;
        h2 = h2.wrapping_add(c);
        c = h2 >> 26;
        h2 &= 0x03ff_ffff;
        h3 = h3.wrapping_add(c);
        c = h3 >> 26;
        h3 &= 0x03ff_ffff;
        h4 = h4.wrapping_add(c);
        c = h4 >> 26;
        h4 &= 0x03ff_ffff;
        h0 = h0.wrapping_add(c.wrapping_mul(5));
        c = h0 >> 26;
        h0 &= 0x03ff_ffff;
        h1 = h1.wrapping_add(c);

        // Compute h + -p = h - (2^130 - 5) via g = h + 5 - 2^130.
        let mut g0 = h0.wrapping_add(5);
        c = g0 >> 26;
        g0 &= 0x03ff_ffff;
        let mut g1 = h1.wrapping_add(c);
        c = g1 >> 26;
        g1 &= 0x03ff_ffff;
        let mut g2 = h2.wrapping_add(c);
        c = g2 >> 26;
        g2 &= 0x03ff_ffff;
        let mut g3 = h3.wrapping_add(c);
        c = g3 >> 26;
        g3 &= 0x03ff_ffff;
        let g4 = h4.wrapping_add(c).wrapping_sub(1 << 26);

        // Select h if h < p else g, branch-free.
        let mask = (g4 >> 31).wrapping_sub(1); // all-ones if g4 >= 0 (h >= p)
        h0 = (h0 & !mask) | (g0 & mask);
        h1 = (h1 & !mask) | (g1 & mask);
        h2 = (h2 & !mask) | (g2 & mask);
        h3 = (h3 & !mask) | (g3 & mask);
        h4 = (h4 & !mask) | (g4 & mask);

        // Serialize to 128 bits.
        let f0 = (h0 | (h1 << 26)) as u64;
        let f1 = ((h1 >> 6) | (h2 << 20)) as u64;
        let f2 = ((h2 >> 12) | (h3 << 14)) as u64;
        let f3 = ((h3 >> 18) | (h4 << 8)) as u64;

        // tag = (h + s) mod 2^128.
        let mut acc = f0 + u64::from(self.s[0]);
        let w0 = acc as u32;
        acc = f1 + u64::from(self.s[1]) + (acc >> 32);
        let w1 = acc as u32;
        acc = f2 + u64::from(self.s[2]) + (acc >> 32);
        let w2 = acc as u32;
        acc = f3 + u64::from(self.s[3]) + (acc >> 32);
        let w3 = acc as u32;

        let mut tag = [0u8; TAG_LEN];
        tag[0..4].copy_from_slice(&w0.to_le_bytes());
        tag[4..8].copy_from_slice(&w1.to_le_bytes());
        tag[8..12].copy_from_slice(&w2.to_le_bytes());
        tag[12..16].copy_from_slice(&w3.to_le_bytes());
        tag
    }

    /// One-shot convenience.
    pub fn mac(key: &[u8; KEY_LEN], data: &[u8]) -> [u8; TAG_LEN] {
        let mut p = Poly1305::new(key);
        p.update(data);
        p.finalize()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unhex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    // RFC 8439 §2.5.2 test vector.
    #[test]
    fn rfc8439_tag() {
        let key: [u8; 32] =
            unhex("85d6be7857556d337f4452fe42d506a80103808afb0db2fd4abff6af4149f51b")
                .try_into()
                .unwrap();
        let tag = Poly1305::mac(&key, b"Cryptographic Forum Research Group");
        assert_eq!(tag.to_vec(), unhex("a8061dc1305136c6c22b8baf0c0127a9"));
    }

    // RFC 8439 Appendix A.3 test vector #1: all-zero key and message.
    #[test]
    fn zero_key_zero_message() {
        let key = [0u8; 32];
        let tag = Poly1305::mac(&key, &[0u8; 64]);
        assert_eq!(tag, [0u8; 16]);
    }

    // RFC 8439 Appendix A.3 test vector #2: r = 0, s = IETF text tail.
    #[test]
    fn a3_vector_2() {
        let mut key = [0u8; 32];
        key[16..].copy_from_slice(&unhex("36e5f6b5c5e06070f0efca96227a863e"));
        let text = b"Any submission to the IETF intended by the Contributor for publication as all or part of an IETF Internet-Draft or RFC and any statement made within the context of an IETF activity is considered an \"IETF Contribution\". Such statements include oral statements in IETF sessions, as well as written and electronic communications made at any time or place, which are addressed to";
        let tag = Poly1305::mac(&key, text);
        assert_eq!(tag.to_vec(), unhex("36e5f6b5c5e06070f0efca96227a863e"));
    }

    // RFC 8439 Appendix A.3 test vector #3: s = 0.
    #[test]
    fn a3_vector_3() {
        let mut key = [0u8; 32];
        key[..16].copy_from_slice(&unhex("36e5f6b5c5e06070f0efca96227a863e"));
        let text = b"Any submission to the IETF intended by the Contributor for publication as all or part of an IETF Internet-Draft or RFC and any statement made within the context of an IETF activity is considered an \"IETF Contribution\". Such statements include oral statements in IETF sessions, as well as written and electronic communications made at any time or place, which are addressed to";
        let tag = Poly1305::mac(&key, text);
        assert_eq!(tag.to_vec(), unhex("f3477e7cd95417af89a6b8794c310cf0"));
    }

    // RFC 8439 Appendix A.3 test vector #7: h overflow handling.
    #[test]
    fn a3_vector_7() {
        let mut key = [0u8; 32];
        key[..16].copy_from_slice(&unhex("01000000000000000000000000000000"));
        let msg = unhex(
            "ffffffffffffffffffffffffffffffff\
             f0ffffffffffffffffffffffffffffff\
             11000000000000000000000000000000",
        );
        let tag = Poly1305::mac(&key, &msg);
        assert_eq!(tag.to_vec(), unhex("05000000000000000000000000000000"));
    }

    // RFC 8439 Appendix A.3 test vector #10 (edge case in final reduction).
    #[test]
    fn a3_vector_10() {
        let mut key = [0u8; 32];
        key[..16].copy_from_slice(&unhex("01000000000000000400000000000000"));
        let msg = unhex(
            "e33594d7505e43b90000000000000000\
             3394d7505e4379cd0100000000000000\
             00000000000000000000000000000000\
             01000000000000000000000000000000",
        );
        let tag = Poly1305::mac(&key, &msg);
        assert_eq!(tag.to_vec(), unhex("14000000000000005500000000000000"));
    }

    #[test]
    fn incremental_equals_oneshot() {
        let key: [u8; 32] = (0u8..32).collect::<Vec<_>>().try_into().unwrap();
        let data: Vec<u8> = (0..200u8).collect();
        for split in [0usize, 1, 15, 16, 17, 100, 200] {
            let mut p = Poly1305::new(&key);
            p.update(&data[..split]);
            p.update(&data[split..]);
            assert_eq!(p.finalize(), Poly1305::mac(&key, &data), "split {split}");
        }
    }
}
