//! Poly1305 one-time authenticator (RFC 8439).
//!
//! Implemented with radix-2^44 limbs (the 64-bit "donna"
//! representation): three limbs of 44/44/42 bits keep each `h *= r`
//! step to nine widening multiplies whose products fit in `u128`, and
//! carries stay simple and branch-free. On 64-bit targets this roughly
//! halves the per-byte cost of the classic five-limb radix-2^26 form.

const M44: u64 = 0xfff_ffff_ffff;
const M42: u64 = 0x3ff_ffff_ffff;

/// Poly1305 key length (r || s) in bytes.
pub const KEY_LEN: usize = 32;
/// Poly1305 tag length in bytes.
pub const TAG_LEN: usize = 16;

/// Incremental Poly1305 state.
#[derive(Clone)]
pub struct Poly1305 {
    /// Clamped `r`, radix-2^44 limbs (44/44/42 bits).
    r: [u64; 3],
    /// Precomputed `20 * r[1..]` folding constants for the wrapped terms.
    f: [u64; 2],
    /// The pad `s` as two raw little-endian words.
    s: [u64; 2],
    /// Accumulator, radix-2^44 limbs.
    h: [u64; 3],
    buffer: [u8; 16],
    buffered: usize,
}

#[inline]
fn le64(bytes: &[u8]) -> u64 {
    u64::from_le_bytes(bytes.try_into().expect("8 bytes"))
}

impl Poly1305 {
    /// Creates a state from the 32-byte one-time key `(r, s)`.
    pub fn new(key: &[u8; KEY_LEN]) -> Self {
        // Clamp r per the RFC, split into 44/44/42-bit limbs.
        let t0 = le64(&key[0..8]);
        let t1 = le64(&key[8..16]);
        let r0 = t0 & 0xffc_0fff_ffff;
        let r1 = ((t0 >> 44) | (t1 << 20)) & 0xfff_ffc0_ffff;
        let r2 = (t1 >> 24) & 0x00f_ffff_fc0f;
        Poly1305 {
            r: [r0, r1, r2],
            // A limb that overflows past 2^130 re-enters at 5x; terms
            // sourced from the 42-bit top limb carry an extra 4x from
            // the radix difference, hence 20 = 5 * 4. Clamping makes
            // r's low two bits of every high limb zero, so 20 * r fits.
            f: [r1 * 20, r2 * 20],
            s: [le64(&key[16..24]), le64(&key[24..32])],
            h: [0; 3],
            buffer: [0; 16],
            buffered: 0,
        }
    }

    fn process_block(&mut self, block: &[u8; 16], final_bit: bool) {
        let hibit: u64 = if final_bit { 0 } else { 1 << 40 };
        let [r0, r1, r2] = self.r;
        let [f1, f2] = self.f;
        let [mut h0, mut h1, mut h2] = self.h;

        // h += m (with the 2^128 message bit on full blocks).
        let t0 = le64(&block[0..8]);
        let t1 = le64(&block[8..16]);
        h0 += t0 & M44;
        h1 += ((t0 >> 44) | (t1 << 20)) & M44;
        h2 += ((t1 >> 24) & M42) | hibit;

        // h *= r (mod 2^130 - 5), schoolbook with folded wrap terms.
        let d0 = u128::from(h0) * u128::from(r0)
            + u128::from(h1) * u128::from(f2)
            + u128::from(h2) * u128::from(f1);
        let mut d1 = u128::from(h0) * u128::from(r1)
            + u128::from(h1) * u128::from(r0)
            + u128::from(h2) * u128::from(f2);
        let mut d2 = u128::from(h0) * u128::from(r2)
            + u128::from(h1) * u128::from(r1)
            + u128::from(h2) * u128::from(r0);

        // Carry propagation.
        let c = (d0 >> 44) as u64;
        h0 = (d0 as u64) & M44;
        d1 += u128::from(c);
        let c = (d1 >> 44) as u64;
        h1 = (d1 as u64) & M44;
        d2 += u128::from(c);
        let c = (d2 >> 42) as u64;
        h2 = (d2 as u64) & M42;
        h0 += c * 5;
        let c = h0 >> 44;
        h0 &= M44;
        h1 += c;

        self.h = [h0, h1, h2];
    }

    /// Aligned multi-block fast path: absorbs `data` (whose length must
    /// be a multiple of 16) without staging through the 16-byte buffer,
    /// keeping the accumulator and the folding constants in locals
    /// across the whole run instead of reloading them per block.
    fn process_blocks(&mut self, data: &[u8]) {
        debug_assert_eq!(data.len() % 16, 0);
        let [r0, r1, r2] = self.r;
        let [f1, f2] = self.f;
        let [mut h0, mut h1, mut h2] = self.h;

        for block in data.chunks_exact(16) {
            let t0 = le64(&block[0..8]);
            let t1 = le64(&block[8..16]);
            h0 += t0 & M44;
            h1 += ((t0 >> 44) | (t1 << 20)) & M44;
            h2 += ((t1 >> 24) & M42) | (1 << 40);

            let d0 = u128::from(h0) * u128::from(r0)
                + u128::from(h1) * u128::from(f2)
                + u128::from(h2) * u128::from(f1);
            let mut d1 = u128::from(h0) * u128::from(r1)
                + u128::from(h1) * u128::from(r0)
                + u128::from(h2) * u128::from(f2);
            let mut d2 = u128::from(h0) * u128::from(r2)
                + u128::from(h1) * u128::from(r1)
                + u128::from(h2) * u128::from(r0);

            let c = (d0 >> 44) as u64;
            h0 = (d0 as u64) & M44;
            d1 += u128::from(c);
            let c = (d1 >> 44) as u64;
            h1 = (d1 as u64) & M44;
            d2 += u128::from(c);
            let c = (d2 >> 42) as u64;
            h2 = (d2 as u64) & M42;
            h0 += c * 5;
            let c = h0 >> 44;
            h0 &= M44;
            h1 += c;
        }

        self.h = [h0, h1, h2];
    }

    /// Absorbs message bytes.
    pub fn update(&mut self, data: &[u8]) {
        let mut input = data;
        if self.buffered > 0 {
            let take = (16 - self.buffered).min(input.len());
            self.buffer[self.buffered..self.buffered + take].copy_from_slice(&input[..take]);
            self.buffered += take;
            input = &input[take..];
            if self.buffered == 16 {
                let block = self.buffer;
                self.process_block(&block, false);
                self.buffered = 0;
            }
        }
        let aligned = input.len() & !15;
        if aligned > 0 {
            self.process_blocks(&input[..aligned]);
            input = &input[aligned..];
        }
        if !input.is_empty() {
            self.buffer[..input.len()].copy_from_slice(input);
            self.buffered = input.len();
        }
    }

    /// Completes the MAC and returns the 16-byte tag.
    pub fn finalize(mut self) -> [u8; TAG_LEN] {
        if self.buffered > 0 {
            // Final partial block: append 0x01 then zero-pad; no high bit.
            let mut block = [0u8; 16];
            block[..self.buffered].copy_from_slice(&self.buffer[..self.buffered]);
            block[self.buffered] = 1;
            self.process_block(&block, true);
        }

        let [mut h0, mut h1, mut h2] = self.h;

        // Full carry.
        let mut c = h1 >> 44;
        h1 &= M44;
        h2 += c;
        c = h2 >> 42;
        h2 &= M42;
        h0 += c * 5;
        c = h0 >> 44;
        h0 &= M44;
        h1 += c;
        c = h1 >> 44;
        h1 &= M44;
        h2 += c;
        c = h2 >> 42;
        h2 &= M42;
        h0 += c * 5;
        c = h0 >> 44;
        h0 &= M44;
        h1 += c;

        // Compute g = h + 5 - 2^130; if it does not underflow, h >= p.
        let mut g0 = h0.wrapping_add(5);
        c = g0 >> 44;
        g0 &= M44;
        let mut g1 = h1.wrapping_add(c);
        c = g1 >> 44;
        g1 &= M44;
        let g2 = h2.wrapping_add(c).wrapping_sub(1 << 42);

        // Select h if h < p else g, branch-free: underflow sets g2's
        // top bit.
        let keep_h = (g2 >> 63).wrapping_neg(); // all-ones if h < p
        h0 = (h0 & keep_h) | (g0 & !keep_h);
        h1 = (h1 & keep_h) | (g1 & !keep_h);
        h2 = (h2 & keep_h) | (g2 & !keep_h);

        // tag = (h + s) mod 2^128, added in the 44/44/42 radix.
        let [t0, t1] = self.s;
        h0 = h0.wrapping_add(t0 & M44);
        c = h0 >> 44;
        h0 &= M44;
        h1 = h1.wrapping_add((((t0 >> 44) | (t1 << 20)) & M44).wrapping_add(c));
        c = h1 >> 44;
        h1 &= M44;
        h2 = h2.wrapping_add(((t1 >> 24) & M42).wrapping_add(c)) & M42;

        // Serialize to two little-endian words.
        let w0 = h0 | (h1 << 44);
        let w1 = (h1 >> 20) | (h2 << 24);
        let mut tag = [0u8; TAG_LEN];
        tag[0..8].copy_from_slice(&w0.to_le_bytes());
        tag[8..16].copy_from_slice(&w1.to_le_bytes());
        tag
    }

    /// One-shot convenience.
    pub fn mac(key: &[u8; KEY_LEN], data: &[u8]) -> [u8; TAG_LEN] {
        let mut p = Poly1305::new(key);
        p.update(data);
        p.finalize()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unhex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    // RFC 8439 §2.5.2 test vector.
    #[test]
    fn rfc8439_tag() {
        let key: [u8; 32] =
            unhex("85d6be7857556d337f4452fe42d506a80103808afb0db2fd4abff6af4149f51b")
                .try_into()
                .unwrap();
        let tag = Poly1305::mac(&key, b"Cryptographic Forum Research Group");
        assert_eq!(tag.to_vec(), unhex("a8061dc1305136c6c22b8baf0c0127a9"));
    }

    // RFC 8439 Appendix A.3 test vector #1: all-zero key and message.
    #[test]
    fn zero_key_zero_message() {
        let key = [0u8; 32];
        let tag = Poly1305::mac(&key, &[0u8; 64]);
        assert_eq!(tag, [0u8; 16]);
    }

    // RFC 8439 Appendix A.3 test vector #2: r = 0, s = IETF text tail.
    #[test]
    fn a3_vector_2() {
        let mut key = [0u8; 32];
        key[16..].copy_from_slice(&unhex("36e5f6b5c5e06070f0efca96227a863e"));
        let text = b"Any submission to the IETF intended by the Contributor for publication as all or part of an IETF Internet-Draft or RFC and any statement made within the context of an IETF activity is considered an \"IETF Contribution\". Such statements include oral statements in IETF sessions, as well as written and electronic communications made at any time or place, which are addressed to";
        let tag = Poly1305::mac(&key, text);
        assert_eq!(tag.to_vec(), unhex("36e5f6b5c5e06070f0efca96227a863e"));
    }

    // RFC 8439 Appendix A.3 test vector #3: s = 0.
    #[test]
    fn a3_vector_3() {
        let mut key = [0u8; 32];
        key[..16].copy_from_slice(&unhex("36e5f6b5c5e06070f0efca96227a863e"));
        let text = b"Any submission to the IETF intended by the Contributor for publication as all or part of an IETF Internet-Draft or RFC and any statement made within the context of an IETF activity is considered an \"IETF Contribution\". Such statements include oral statements in IETF sessions, as well as written and electronic communications made at any time or place, which are addressed to";
        let tag = Poly1305::mac(&key, text);
        assert_eq!(tag.to_vec(), unhex("f3477e7cd95417af89a6b8794c310cf0"));
    }

    // RFC 8439 Appendix A.3 test vector #7: h overflow handling.
    #[test]
    fn a3_vector_7() {
        let mut key = [0u8; 32];
        key[..16].copy_from_slice(&unhex("01000000000000000000000000000000"));
        let msg = unhex(
            "ffffffffffffffffffffffffffffffff\
             f0ffffffffffffffffffffffffffffff\
             11000000000000000000000000000000",
        );
        let tag = Poly1305::mac(&key, &msg);
        assert_eq!(tag.to_vec(), unhex("05000000000000000000000000000000"));
    }

    // RFC 8439 Appendix A.3 test vector #10 (edge case in final reduction).
    #[test]
    fn a3_vector_10() {
        let mut key = [0u8; 32];
        key[..16].copy_from_slice(&unhex("01000000000000000400000000000000"));
        let msg = unhex(
            "e33594d7505e43b90000000000000000\
             3394d7505e4379cd0100000000000000\
             00000000000000000000000000000000\
             01000000000000000000000000000000",
        );
        let tag = Poly1305::mac(&key, &msg);
        assert_eq!(tag.to_vec(), unhex("14000000000000005500000000000000"));
    }

    #[test]
    fn multi_block_fast_path_equals_per_block() {
        // Feed the same message through the aligned fast path (one big
        // update) and through forced per-block staging (1-byte updates).
        let key: [u8; 32] = (100u8..132).collect::<Vec<_>>().try_into().unwrap();
        for len in [16usize, 32, 48, 64, 160, 512, 1024, 1040] {
            let data: Vec<u8> = (0..len).map(|i| (i * 31) as u8).collect();
            let mut bytewise = Poly1305::new(&key);
            for b in &data {
                bytewise.update(core::slice::from_ref(b));
            }
            assert_eq!(bytewise.finalize(), Poly1305::mac(&key, &data), "len {len}");
        }
    }

    #[test]
    fn incremental_equals_oneshot() {
        let key: [u8; 32] = (0u8..32).collect::<Vec<_>>().try_into().unwrap();
        let data: Vec<u8> = (0..200u8).collect();
        for split in [0usize, 1, 15, 16, 17, 100, 200] {
            let mut p = Poly1305::new(&key);
            p.update(&data[..split]);
            p.update(&data[split..]);
            assert_eq!(p.finalize(), Poly1305::mac(&key, &data), "split {split}");
        }
    }
}
