//! X25519 Diffie-Hellman (RFC 7748).
//!
//! Field arithmetic over GF(2^255 - 19) in radix-2^51 (five 51-bit limbs in
//! `u64`, products accumulated in `u128`), with a constant-time Montgomery
//! ladder. Used by the cTLS handshake for ephemeral key agreement.

use crate::ct::ct_swap;
use crate::CryptoError;

/// X25519 public/private key and shared-secret length.
pub const KEY_LEN: usize = 32;

/// The X25519 base point (u = 9).
pub const BASEPOINT: [u8; KEY_LEN] = {
    let mut b = [0u8; KEY_LEN];
    b[0] = 9;
    b
};

const MASK51: u64 = (1u64 << 51) - 1;

/// Field element: 5 limbs of 51 bits, little-endian.
#[derive(Clone, Copy, Debug)]
struct Fe([u64; 5]);

impl Fe {
    const ZERO: Fe = Fe([0; 5]);
    const ONE: Fe = Fe([1, 0, 0, 0, 0]);

    fn from_bytes(bytes: &[u8; 32]) -> Fe {
        let load =
            |i: usize| -> u64 { u64::from_le_bytes(bytes[i..i + 8].try_into().expect("8 bytes")) };
        // Overlapping 64-bit loads, shifted into 51-bit limbs; top bit masked
        // per RFC 7748 (u-coordinates are reduced mod 2^255).
        Fe([
            load(0) & MASK51,
            (load(6) >> 3) & MASK51,
            (load(12) >> 6) & MASK51,
            (load(19) >> 1) & MASK51,
            (load(24) >> 12) & MASK51,
        ])
    }

    fn to_bytes(self) -> [u8; 32] {
        // Three weak-carry passes leave every limb <= 2^51 - 1 and the value
        // in [0, 2^255), after which one conditional subtraction of p fully
        // reduces.
        let mut t = self.weak_carry().weak_carry().weak_carry().0;

        // Subtract p if t >= p, branch-free: compute t + 19, check bit 255.
        let mut u = [0u64; 5];
        u[0] = t[0].wrapping_add(19);
        let mut c = u[0] >> 51;
        u[0] &= MASK51;
        for i in 1..5 {
            u[i] = t[i].wrapping_add(c);
            c = u[i] >> 51;
            u[i] &= MASK51;
        }
        // c is 1 iff t >= p; select u (t - p mod 2^255) in that case.
        let mask = c.wrapping_neg();
        for i in 0..5 {
            t[i] = (t[i] & !mask) | (u[i] & mask);
        }

        let mut out = [0u8; 32];
        let write = |out: &mut [u8; 32], bit: usize, v: u64| {
            let byte = bit / 8;
            let shift = bit % 8;
            let v = (v as u128) << shift;
            for k in 0..8 {
                if byte + k < 32 {
                    out[byte + k] |= (v >> (8 * k)) as u8;
                }
            }
        };
        write(&mut out, 0, t[0]);
        write(&mut out, 51, t[1]);
        write(&mut out, 102, t[2]);
        write(&mut out, 153, t[3]);
        write(&mut out, 204, t[4]);
        out
    }

    fn add(self, rhs: Fe) -> Fe {
        let a = self.0;
        let b = rhs.0;
        Fe([
            a[0] + b[0],
            a[1] + b[1],
            a[2] + b[2],
            a[3] + b[3],
            a[4] + b[4],
        ])
        .weak_carry()
    }

    fn sub(self, rhs: Fe) -> Fe {
        // Add 4p (in 51-bit limb form) before subtracting so every limb
        // stays non-negative; the result is congruent mod p.
        const FOUR_P: [u64; 5] = [
            4 * 0x7ffffffffffed,
            4 * 0x7ffffffffffff,
            4 * 0x7ffffffffffff,
            4 * 0x7ffffffffffff,
            4 * 0x7ffffffffffff,
        ];
        let a = self.0;
        let b = rhs.0;
        Fe([
            a[0] + FOUR_P[0] - b[0],
            a[1] + FOUR_P[1] - b[1],
            a[2] + FOUR_P[2] - b[2],
            a[3] + FOUR_P[3] - b[3],
            a[4] + FOUR_P[4] - b[4],
        ])
        .weak_carry()
    }

    /// Propagates carries once so every limb fits in 52 bits.
    fn weak_carry(self) -> Fe {
        let mut t = self.0;
        let mut c;
        c = t[0] >> 51;
        t[0] &= MASK51;
        t[1] += c;
        c = t[1] >> 51;
        t[1] &= MASK51;
        t[2] += c;
        c = t[2] >> 51;
        t[2] &= MASK51;
        t[3] += c;
        c = t[3] >> 51;
        t[3] &= MASK51;
        t[4] += c;
        c = t[4] >> 51;
        t[4] &= MASK51;
        t[0] += c * 19;
        Fe(t)
    }

    fn mul(self, rhs: Fe) -> Fe {
        let [a0, a1, a2, a3, a4] = self.0.map(u128::from);
        let [b0, b1, b2, b3, b4] = rhs.0.map(u128::from);

        // Schoolbook with 19-fold wraparound for limbs above 2^255.
        let c0 = a0 * b0 + 19 * (a1 * b4 + a2 * b3 + a3 * b2 + a4 * b1);
        let c1 = a0 * b1 + a1 * b0 + 19 * (a2 * b4 + a3 * b3 + a4 * b2);
        let c2 = a0 * b2 + a1 * b1 + a2 * b0 + 19 * (a3 * b4 + a4 * b3);
        let c3 = a0 * b3 + a1 * b2 + a2 * b1 + a3 * b0 + 19 * (a4 * b4);
        let c4 = a0 * b4 + a1 * b3 + a2 * b2 + a3 * b1 + a4 * b0;

        Fe::carry_wide([c0, c1, c2, c3, c4])
    }

    fn square(self) -> Fe {
        self.mul(self)
    }

    fn carry_wide(c: [u128; 5]) -> Fe {
        let mut out = [0u64; 5];
        let mut carry: u128 = 0;
        for i in 0..5 {
            let v = c[i] + carry;
            out[i] = (v as u64) & MASK51;
            carry = v >> 51;
        }
        // Fold the final carry back with factor 19. Inputs are weakly
        // carried (limbs < 2^52), so `carry < 2^60` and `carry * 19` fits a
        // `u64`; adding it to limb 0 and letting `weak_carry` propagate is
        // lossless (an explicit per-limb fold loop here would drop a carry
        // out of the top limb for near-maximal inputs such as `sub` results
        // of tiny values).
        let mut t = out;
        t[0] += (carry as u64) * 19;
        Fe(t).weak_carry()
    }

    fn mul_small(self, k: u64) -> Fe {
        let k = u128::from(k);
        let c: [u128; 5] = [
            u128::from(self.0[0]) * k,
            u128::from(self.0[1]) * k,
            u128::from(self.0[2]) * k,
            u128::from(self.0[3]) * k,
            u128::from(self.0[4]) * k,
        ];
        Fe::carry_wide(c)
    }

    /// Computes self^(p-2) = 1/self via Fermat's little theorem.
    fn invert(self) -> Fe {
        // Addition chain for 2^255 - 21 (standard curve25519 chain).
        let z2 = self.square();
        let z8 = z2.square().square();
        let z9 = self.mul(z8);
        let z11 = z2.mul(z9);
        let z22 = z11.square();
        let z_5_0 = z9.mul(z22);
        let mut t = z_5_0;
        for _ in 0..5 {
            t = t.square();
        }
        let z_10_0 = t.mul(z_5_0);
        t = z_10_0;
        for _ in 0..10 {
            t = t.square();
        }
        let z_20_0 = t.mul(z_10_0);
        t = z_20_0;
        for _ in 0..20 {
            t = t.square();
        }
        let z_40_0 = t.mul(z_20_0);
        t = z_40_0;
        for _ in 0..10 {
            t = t.square();
        }
        let z_50_0 = t.mul(z_10_0);
        t = z_50_0;
        for _ in 0..50 {
            t = t.square();
        }
        let z_100_0 = t.mul(z_50_0);
        t = z_100_0;
        for _ in 0..100 {
            t = t.square();
        }
        let z_200_0 = t.mul(z_100_0);
        t = z_200_0;
        for _ in 0..50 {
            t = t.square();
        }
        let z_250_0 = t.mul(z_50_0);
        t = z_250_0;
        for _ in 0..5 {
            t = t.square();
        }
        t.mul(z11)
    }
}

/// Clamps a 32-byte scalar per RFC 7748.
fn clamp(scalar: &[u8; 32]) -> [u8; 32] {
    let mut s = *scalar;
    s[0] &= 248;
    s[31] &= 127;
    s[31] |= 64;
    s
}

/// Scalar multiplication: computes `scalar * point` on Curve25519.
///
/// This is the raw X25519 function; most callers want [`public_key`] or
/// [`shared_secret`].
pub fn scalarmult(scalar: &[u8; 32], point: &[u8; 32]) -> [u8; 32] {
    let s = clamp(scalar);
    let x1 = Fe::from_bytes(point);

    let mut x2 = Fe::ONE;
    let mut z2 = Fe::ZERO;
    let mut x3 = x1;
    let mut z3 = Fe::ONE;
    let mut swap = 0u64;

    for t in (0..255).rev() {
        let bit = u64::from((s[t / 8] >> (t % 8)) & 1);
        swap ^= bit;
        ct_swap(swap, &mut x2.0, &mut x3.0);
        ct_swap(swap, &mut z2.0, &mut z3.0);
        swap = bit;

        // Montgomery ladder step (RFC 7748 §5).
        let a = x2.add(z2);
        let aa = a.square();
        let b = x2.sub(z2);
        let bb = b.square();
        let e = aa.sub(bb);
        let c = x3.add(z3);
        let d = x3.sub(z3);
        let da = d.mul(a);
        let cb = c.mul(b);
        x3 = da.add(cb).square();
        z3 = x1.mul(da.sub(cb).square());
        x2 = aa.mul(bb);
        z2 = e.mul(aa.add(e.mul_small(121_665)));
    }
    ct_swap(swap, &mut x2.0, &mut x3.0);
    ct_swap(swap, &mut z2.0, &mut z3.0);

    x2.mul(z2.invert()).to_bytes()
}

/// Derives the public key for a private scalar.
pub fn public_key(private: &[u8; 32]) -> [u8; 32] {
    scalarmult(private, &BASEPOINT)
}

/// Computes the shared secret between `our_private` and `their_public`.
///
/// # Errors
///
/// Returns [`CryptoError::ZeroSharedSecret`] if the result is all-zero
/// (the peer sent a low-order point), as required by RFC 7748 §6.1.
pub fn shared_secret(
    our_private: &[u8; 32],
    their_public: &[u8; 32],
) -> Result<[u8; 32], CryptoError> {
    let out = scalarmult(our_private, their_public);
    if out.iter().all(|&b| b == 0) {
        return Err(CryptoError::ZeroSharedSecret);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unhex(s: &str) -> [u8; 32] {
        let v: Vec<u8> = (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect();
        v.try_into().unwrap()
    }

    // RFC 7748 §5.2 test vector 1.
    #[test]
    fn rfc7748_vector_1() {
        let scalar = unhex("a546e36bf0527c9d3b16154b82465edd62144c0ac1fc5a18506a2244ba449ac4");
        let point = unhex("e6db6867583030db3594c1a424b15f7c726624ec26b3353b10a903a6d0ab1c4c");
        let expected = unhex("c3da55379de9c6908e94ea4df28d084f32eccf03491c71f754b4075577a28552");
        assert_eq!(scalarmult(&scalar, &point), expected);
    }

    // RFC 7748 §5.2 test vector 2.
    #[test]
    fn rfc7748_vector_2() {
        let scalar = unhex("4b66e9d4d1b4673c5ad22691957d6af5c11b6421e0ea01d42ca4169e7918ba0d");
        let point = unhex("e5210f12786811d3f4b7959d0538ae2c31dbe7106fc03c3efc4cd549c715a493");
        let expected = unhex("95cbde9476e8907d7aade45cb4b873f88b595a68799fa152e6f8f7647aac7957");
        assert_eq!(scalarmult(&scalar, &point), expected);
    }

    // RFC 7748 §5.2 iterated test: 1 and 1 000 iterations.
    #[test]
    fn rfc7748_iterated() {
        let mut k = BASEPOINT;
        let mut u = BASEPOINT;
        // 1 iteration.
        let r = scalarmult(&k, &u);
        u = k;
        k = r;
        assert_eq!(
            k,
            unhex("422c8e7a6227d7bca1350b3e2bb7279f7897b87bb6854b783c60e80311ae3079")
        );
        // 999 more.
        for _ in 0..999 {
            let r = scalarmult(&k, &u);
            u = k;
            k = r;
        }
        assert_eq!(
            k,
            unhex("684cf59ba83309552800ef566f2f4d3c1c3887c49360e3875f2eb94d99532c51")
        );
    }

    // RFC 7748 §6.1 Diffie-Hellman test vector.
    #[test]
    fn rfc7748_dh() {
        let alice_priv = unhex("77076d0a7318a57d3c16c17251b26645df4c2f87ebc0992ab177fba51db92c2a");
        let alice_pub = public_key(&alice_priv);
        assert_eq!(
            alice_pub,
            unhex("8520f0098930a754748b7ddcb43ef75a0dbf3a0d26381af4eba4a98eaa9b4e6a")
        );
        let bob_priv = unhex("5dab087e624a8a4b79e17f8b83800ee66f3bb1292618b6fd1c2f8b27ff88e0eb");
        let bob_pub = public_key(&bob_priv);
        assert_eq!(
            bob_pub,
            unhex("de9edb7d7b7dc1b4d35b61c2ece435373f8343c85b78674dadfc7e146f882b4f")
        );
        let k1 = shared_secret(&alice_priv, &bob_pub).unwrap();
        let k2 = shared_secret(&bob_priv, &alice_pub).unwrap();
        assert_eq!(k1, k2);
        assert_eq!(
            k1,
            unhex("4a5d9d5ba4ce2de1728e3bf480350f25e07e21c947d19e3376f09b3c1e161742")
        );
    }

    #[test]
    fn zero_point_rejected() {
        let priv_key = [0x11u8; 32];
        let zero_point = [0u8; 32];
        assert_eq!(
            shared_secret(&priv_key, &zero_point),
            Err(CryptoError::ZeroSharedSecret)
        );
    }

    #[test]
    fn clamping_is_applied() {
        // Two scalars differing only in clamped bits yield the same key.
        let mut a = [0x42u8; 32];
        let mut b = a;
        a[0] = 0b0000_0111; // low 3 bits set -> cleared by clamp
        b[0] = 0b0000_0000;
        a[31] = 0b1100_0000;
        b[31] = 0b0100_0000;
        assert_eq!(public_key(&a), public_key(&b));
    }

    #[test]
    fn field_roundtrip() {
        // from_bytes . to_bytes is the identity for reduced values.
        for i in 0..32 {
            let mut bytes = [0u8; 32];
            bytes[i] = 0xab;
            bytes[31] &= 0x7f;
            let fe = Fe::from_bytes(&bytes);
            assert_eq!(fe.to_bytes(), bytes, "byte index {i}");
        }
    }

    #[test]
    fn inversion() {
        let mut x = [7u8; 32];
        x[31] &= 0x7f;
        let fe = Fe::from_bytes(&x);
        let inv = fe.invert();
        let one = fe.mul(inv).to_bytes();
        let mut expected = [0u8; 32];
        expected[0] = 1;
        assert_eq!(one, expected);
    }
}
