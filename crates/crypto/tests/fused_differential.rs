//! Differential tests: the fused one-pass AEAD dataplane must be
//! bit-identical to the two-pass reference API on every input — same
//! ciphertext, same tag, same accept/reject decisions.

use cio_crypto::poly1305::TAG_LEN;
use cio_crypto::{ChaCha20Poly1305, CryptoError};
use cio_sim::SimRng;

fn unhex(s: &str) -> Vec<u8> {
    (0..s.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
        .collect()
}

/// Every length from 0 to 1024: fused seal == two-pass seal, fused open
/// == two-pass open, for pseudo-random key/nonce/aad/payload.
#[test]
fn fused_equals_two_pass_all_lengths() {
    let mut rng = SimRng::seed_from(0xf05ed);
    let mut key = [0u8; 32];
    rng.fill_bytes(&mut key);
    let aead = ChaCha20Poly1305::new(key);
    let mut payload = vec![0u8; 1024];
    rng.fill_bytes(&mut payload);

    for len in 0..=1024usize {
        let mut nonce = [0u8; 12];
        nonce[..8].copy_from_slice(&(len as u64).to_le_bytes());
        let aad_len = len % 33;
        let aad = &payload[..aad_len];
        let msg = &payload[..len];

        let sealed = aead.seal(&nonce, aad, msg);
        let fused = aead.seal_fused(&nonce, aad, msg);
        assert_eq!(sealed, fused, "seal mismatch at len {len}");

        let opened = aead.open(&nonce, aad, &sealed).unwrap();
        let fused_open = aead.open_fused(&nonce, aad, &sealed).unwrap();
        assert_eq!(opened, fused_open, "open mismatch at len {len}");
        assert_eq!(fused_open, msg, "roundtrip mismatch at len {len}");
    }
}

/// In-place variants agree with the Vec APIs and with each other.
#[test]
fn fused_in_place_equals_two_pass_in_place() {
    let mut rng = SimRng::seed_from(0x1ace);
    for case in 0..64 {
        let mut key = [0u8; 32];
        rng.fill_bytes(&mut key);
        let mut nonce = [0u8; 12];
        rng.fill_bytes(&mut nonce);
        let len = rng.range(0, 2048);
        let mut msg = vec![0u8; len];
        rng.fill_bytes(&mut msg);
        let aead = ChaCha20Poly1305::new(key);

        let mut two_pass = msg.clone();
        let tag_ref = aead.seal_in_place(&nonce, b"hdr", &mut two_pass);
        let mut fused = msg.clone();
        let tag_fused = aead.seal_fused_in_place(&nonce, b"hdr", &mut fused);
        assert_eq!(two_pass, fused, "case {case}");
        assert_eq!(tag_ref, tag_fused, "case {case}");

        aead.open_fused_in_place(&nonce, b"hdr", &mut fused, &tag_fused)
            .unwrap();
        assert_eq!(fused, msg, "case {case}");

        // The buffer-reusing open agrees too.
        let mut sealed = two_pass.clone();
        sealed.extend_from_slice(&tag_ref);
        let mut out = Vec::new();
        aead.open_fused_into(&nonce, b"hdr", &sealed, &mut out)
            .unwrap();
        assert_eq!(out, msg, "case {case}");
    }
}

/// The RFC 8439 §2.8.2 AEAD vector through the fused path.
#[test]
fn rfc8439_vector_through_fused_path() {
    let key: [u8; 32] = unhex("808182838485868788898a8b8c8d8e8f909192939495969798999a9b9c9d9e9f")
        .try_into()
        .unwrap();
    let nonce: [u8; 12] = unhex("070000004041424344454647").try_into().unwrap();
    let aad = unhex("50515253c0c1c2c3c4c5c6c7");
    let plaintext = b"Ladies and Gentlemen of the class of '99: If I could offer you only one tip for the future, sunscreen would be it.";

    let sealed = ChaCha20Poly1305::new(key).seal_fused(&nonce, &aad, plaintext);
    let expected_ct = unhex(
        "d31a8d34648e60db7b86afbc53ef7ec2a4aded51296e08fea9e2b5a736ee62d6\
         3dbea45e8ca9671282fafb69da92728b1a71de0a9e060b2905d6a5b67ecd3b36\
         92ddbd7f2d778b8c9803aee328091b58fab324e4fad675945585808b4831d7bc\
         3ff4def08e4b7a9de576d26586cec64b6116",
    );
    let expected_tag = unhex("1ae10b594f09e26a7e902ecbd0600691");
    assert_eq!(&sealed[..plaintext.len()], &expected_ct[..]);
    assert_eq!(&sealed[plaintext.len()..], &expected_tag[..]);

    let opened = ChaCha20Poly1305::new(key)
        .open_fused(&nonce, &aad, &sealed)
        .unwrap();
    assert_eq!(opened, plaintext);
}

/// Tamper and truncation behave exactly like the two-pass path: every
/// bit flip rejected, truncation below a tag reports BadLength, failed
/// in-place opens restore the ciphertext, failed buffer opens leave the
/// output empty.
#[test]
fn fused_failure_modes() {
    let aead = ChaCha20Poly1305::new([9u8; 32]);
    let nonce = [1u8; 12];
    let msg = b"one-pass dataplane payload";
    let sealed = aead.seal_fused(&nonce, b"aad", msg);

    for i in 0..sealed.len() {
        let mut bad = sealed.clone();
        bad[i] ^= 0x01;
        assert_eq!(
            aead.open_fused(&nonce, b"aad", &bad),
            Err(CryptoError::BadTag),
            "byte {i}"
        );
        assert_eq!(
            aead.open(&nonce, b"aad", &bad),
            Err(CryptoError::BadTag),
            "two-pass agrees, byte {i}"
        );
    }
    assert!(aead.open_fused(&nonce, b"dad", &sealed).is_err());
    assert!(aead.open_fused(&[2u8; 12], b"aad", &sealed).is_err());
    assert_eq!(
        aead.open_fused(&nonce, b"aad", &sealed[..TAG_LEN - 1]),
        Err(CryptoError::BadLength)
    );

    // Failed in-place open restores the ciphertext bytes.
    let ct = &sealed[..msg.len()];
    let mut buf = ct.to_vec();
    let bad_tag = [0u8; TAG_LEN];
    assert_eq!(
        aead.open_fused_in_place(&nonce, b"aad", &mut buf, &bad_tag),
        Err(CryptoError::BadTag)
    );
    assert_eq!(&buf[..], ct, "ciphertext must be restored");

    // Failed buffer-reusing open leaves the output empty.
    let mut out = b"stale plaintext from the previous record".to_vec();
    let mut bad = sealed.clone();
    let last = bad.len() - 1;
    bad[last] ^= 0x80;
    assert!(aead
        .open_fused_into(&nonce, b"aad", &bad, &mut out)
        .is_err());
    assert!(out.is_empty(), "no stale or speculative plaintext");
}
