//! Property tests on the cryptographic primitives, beyond the RFC
//! vectors: algebraic identities that must hold for all inputs.

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Diffie-Hellman commutativity: both sides derive the same secret.
    #[test]
    fn x25519_dh_commutes(a in any::<[u8; 32]>(), b in any::<[u8; 32]>()) {
        use cio_crypto::x25519;
        let pa = x25519::public_key(&a);
        let pb = x25519::public_key(&b);
        let s1 = x25519::shared_secret(&a, &pb);
        let s2 = x25519::shared_secret(&b, &pa);
        match (s1, s2) {
            (Ok(x), Ok(y)) => prop_assert_eq!(x, y),
            // Degenerate shares are rejected identically on both sides.
            (Err(_), Err(_)) => {}
            (x, y) => return Err(TestCaseError::fail(format!("asymmetric: {x:?} vs {y:?}"))),
        }
    }
}

proptest! {
    /// ChaCha20 keystream is position-independent: encrypting a suffix
    /// starting at a block boundary equals the suffix of encrypting the
    /// whole (counter composition).
    #[test]
    fn chacha20_counter_composition(
        key in any::<[u8; 32]>(),
        nonce in any::<[u8; 12]>(),
        data in prop::collection::vec(any::<u8>(), 128..512),
    ) {
        use cio_crypto::chacha20::xor_stream;
        let mut whole = data.clone();
        xor_stream(&key, 0, &nonce, &mut whole);
        let mut tail = data[64..].to_vec();
        xor_stream(&key, 1, &nonce, &mut tail);
        prop_assert_eq!(&whole[64..], &tail[..]);
    }

    /// Poly1305 incremental == one-shot for arbitrary chunking.
    #[test]
    fn poly1305_chunking_invariant(
        key in any::<[u8; 32]>(),
        data in prop::collection::vec(any::<u8>(), 0..400),
        split in any::<usize>(),
    ) {
        use cio_crypto::poly1305::Poly1305;
        let cut = split % (data.len() + 1);
        let mut inc = Poly1305::new(&key);
        inc.update(&data[..cut]);
        inc.update(&data[cut..]);
        prop_assert_eq!(inc.finalize(), Poly1305::mac(&key, &data));
    }

    /// HMAC distinguishes keys and messages.
    #[test]
    fn hmac_sensitivity(
        key in prop::collection::vec(any::<u8>(), 1..100),
        msg in prop::collection::vec(any::<u8>(), 0..100),
        flip in any::<usize>(),
    ) {
        use cio_crypto::hmac::HmacSha256;
        let base = HmacSha256::mac(&key, &msg);
        let mut key2 = key.clone();
        key2[flip % key.len()] ^= 1;
        prop_assert_ne!(base, HmacSha256::mac(&key2, &msg));
        if !msg.is_empty() {
            let mut msg2 = msg.clone();
            msg2[flip % msg.len()] ^= 1;
            prop_assert_ne!(base, HmacSha256::mac(&key, &msg2));
        }
    }

    /// HKDF expand produces prefix-consistent output: a shorter request is
    /// a prefix of a longer one (streams, not independent draws).
    #[test]
    fn hkdf_expand_prefix_property(
        ikm in prop::collection::vec(any::<u8>(), 1..64),
        info in prop::collection::vec(any::<u8>(), 0..32),
        short in 1usize..64,
        extra in 1usize..64,
    ) {
        use cio_crypto::hkdf;
        let prk = hkdf::extract(b"salt", &ikm);
        let mut a = vec![0u8; short];
        let mut b = vec![0u8; short + extra];
        hkdf::expand(&prk, &info, &mut a).unwrap();
        hkdf::expand(&prk, &info, &mut b).unwrap();
        prop_assert_eq!(&a[..], &b[..short]);
    }

    /// Constant-time equality agrees with `==` on all inputs.
    #[test]
    fn ct_eq_agrees_with_eq(
        a in prop::collection::vec(any::<u8>(), 0..64),
        b in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        prop_assert_eq!(cio_crypto::ct::ct_eq(&a, &b), a == b);
    }

    /// Sealing is deterministic given (key, nonce, aad, msg) — a property
    /// the deterministic simulator depends on.
    #[test]
    fn aead_is_deterministic(
        key in any::<[u8; 32]>(),
        nonce in any::<[u8; 12]>(),
        msg in prop::collection::vec(any::<u8>(), 0..200),
    ) {
        let aead = cio_crypto::ChaCha20Poly1305::new(key);
        prop_assert_eq!(aead.seal(&nonce, b"a", &msg), aead.seal(&nonce, b"a", &msg));
    }
}
