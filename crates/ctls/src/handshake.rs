//! The cTLS handshake: ECDHE + transcript-bound key schedule + attestation.
//!
//! Message flow (client C, attested server S):
//!
//! ```text
//! C -> S: ClientHello  { random[32], x25519_pub[32] }
//! S -> C: ServerHello  { random[32], x25519_pub[32], quote, finished[32] }
//! C -> S: Finished     { finished[32] }
//! ```
//!
//! The server's quote carries `report_data = SHA-256(server_pub)` so the
//! key exchange is bound to the attested TEE. Both Finished MACs are HMACs
//! over the running transcript hash under direction-specific keys derived
//! from the ECDHE secret — the TLS-1.3 shape, minus certificates and
//! negotiation (there is nothing to negotiate: one suite, fixed by
//! deployment, in the same spirit as the paper's zero-negotiation L2).

use crate::record::Channel;
use crate::{CtlsError, SimHooks};
use cio_crypto::ct::ct_eq;
use cio_crypto::hkdf;
use cio_crypto::hmac::HmacSha256;
use cio_crypto::sha256::Sha256;
use cio_crypto::x25519;
use cio_tee::attest::{Measurement, Quote};

/// Client hello wire size.
pub const CLIENT_HELLO_LEN: usize = 64;

/// What the server needs to identify itself.
pub struct ServerIdentity {
    /// Platform attestation key (shared with the verifier's root of trust
    /// in this model).
    pub platform_key: [u8; 32],
    /// The server TEE's launch measurement.
    pub measurement: Measurement,
}

fn transcript_hash(parts: &[&[u8]]) -> [u8; 32] {
    let mut h = Sha256::new();
    for p in parts {
        h.update(p);
    }
    h.finalize()
}

struct Schedule {
    client_secret: [u8; 32],
    server_secret: [u8; 32],
    client_finished_key: [u8; 32],
    server_finished_key: [u8; 32],
}

fn schedule(shared: &[u8; 32], transcript: &[u8; 32]) -> Result<Schedule, CtlsError> {
    let prk = hkdf::extract(transcript, shared);
    let make = |label: &[u8]| -> Result<[u8; 32], CtlsError> {
        let mut info = Vec::with_capacity(16 + label.len());
        info.extend_from_slice(b"ctls1 ");
        info.extend_from_slice(label);
        let mut out = [0u8; 32];
        hkdf::expand(&prk, &info, &mut out)?;
        Ok(out)
    };
    Ok(Schedule {
        client_secret: make(b"c ap traffic")?,
        server_secret: make(b"s ap traffic")?,
        client_finished_key: make(b"c finished")?,
        server_finished_key: make(b"s finished")?,
    })
}

fn finished_mac(key: &[u8; 32], transcript: &[u8; 32]) -> [u8; 32] {
    HmacSha256::mac(key, transcript)
}

/// Serialized ServerHello.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerHello {
    /// Server random.
    pub random: [u8; 32],
    /// Server ephemeral public key.
    pub public: [u8; 32],
    /// Attestation quote binding `public` to the measured TEE.
    pub quote: Quote,
    /// Server Finished MAC.
    pub finished: [u8; 32],
}

/// Serialized ServerHello wire size.
pub const SERVER_HELLO_LEN: usize = 224;

impl ServerHello {
    /// Serializes: random || public || finished || quote(128).
    pub fn to_bytes(&self) -> [u8; SERVER_HELLO_LEN] {
        let mut b = [0u8; SERVER_HELLO_LEN];
        b[0..32].copy_from_slice(&self.random);
        b[32..64].copy_from_slice(&self.public);
        b[64..96].copy_from_slice(&self.finished);
        b[96..224].copy_from_slice(&self.quote.to_bytes());
        b
    }

    /// Parses a serialized ServerHello.
    ///
    /// # Errors
    ///
    /// [`CtlsError::Malformed`] on wrong length.
    pub fn from_bytes(bytes: &[u8]) -> Result<ServerHello, CtlsError> {
        if bytes.len() != SERVER_HELLO_LEN {
            return Err(CtlsError::Malformed);
        }
        let quote = Quote::from_bytes(&bytes[96..224]).map_err(|_| CtlsError::Malformed)?;
        Ok(ServerHello {
            random: bytes[0..32].try_into().expect("32 bytes"),
            public: bytes[32..64].try_into().expect("32 bytes"),
            finished: bytes[64..96].try_into().expect("32 bytes"),
            quote,
        })
    }
}

/// Client side of the handshake.
pub struct ClientHandshake {
    private: [u8; 32],
    hello: Vec<u8>,
    hooks: Option<SimHooks>,
}

impl ClientHandshake {
    /// Starts a handshake; returns the ClientHello bytes to send.
    ///
    /// `entropy` must be fresh per connection (the caller's RNG).
    pub fn start(entropy: [u8; 64], hooks: Option<SimHooks>) -> (Vec<u8>, ClientHandshake) {
        let mut random = [0u8; 32];
        random.copy_from_slice(&entropy[..32]);
        let mut private = [0u8; 32];
        private.copy_from_slice(&entropy[32..]);
        if let Some(h) = &hooks {
            h.charge_x25519(1);
        }
        let public = x25519::public_key(&private);
        let mut hello = Vec::with_capacity(CLIENT_HELLO_LEN);
        hello.extend_from_slice(&random);
        hello.extend_from_slice(&public);
        (
            hello.clone(),
            ClientHandshake {
                private,
                hello,
                hooks,
            },
        )
    }

    /// Processes the ServerHello: verifies the quote (against the expected
    /// measurement and platform key) and the server Finished, then derives
    /// the channel and the client Finished bytes to send.
    ///
    /// # Errors
    ///
    /// [`CtlsError::BadQuote`] / [`CtlsError::BadFinished`] /
    /// [`CtlsError::Crypto`] on any verification failure — no channel is
    /// produced in that case.
    pub fn finish(
        self,
        sh: &ServerHello,
        platform_key: &[u8; 32],
        expected: &Measurement,
    ) -> Result<(Vec<u8>, Channel), CtlsError> {
        // 1. Attestation: the quote must verify, match the expected
        //    measurement, use our transcript-derived nonce, and commit to
        //    the server public key.
        let nonce = transcript_hash(&[&self.hello]);
        sh.quote
            .verify(platform_key, expected, &nonce)
            .map_err(CtlsError::BadQuote)?;
        let binding = Sha256::digest(&sh.public);
        if !ct_eq(&binding, &sh.quote.report_data) {
            return Err(CtlsError::BadQuote(cio_tee::TeeError::AttestationFailed));
        }

        // 2. Key agreement and schedule.
        if let Some(h) = &self.hooks {
            h.charge_x25519(1);
        }
        let shared = x25519::shared_secret(&self.private, &sh.public)?;
        let transcript = transcript_hash(&[&self.hello, &sh.random, &sh.public]);
        let sched = schedule(&shared, &transcript)?;

        // 3. Server Finished.
        let expected_fin = finished_mac(&sched.server_finished_key, &transcript);
        if !ct_eq(&expected_fin, &sh.finished) {
            return Err(CtlsError::BadFinished);
        }

        // 4. Our Finished over the transcript including the server hello.
        let full_transcript = transcript_hash(&[&self.hello, &sh.random, &sh.public, &sh.finished]);
        let fin = finished_mac(&sched.client_finished_key, &full_transcript);

        let channel = Channel::new(sched.client_secret, sched.server_secret, true, self.hooks);
        Ok((fin.to_vec(), channel))
    }
}

/// Server side of the handshake.
pub struct ServerHandshake {
    sched: Schedule,
    full_transcript: [u8; 32],
    hooks: Option<SimHooks>,
}

impl ServerHandshake {
    /// Responds to a ClientHello. Returns the ServerHello and the
    /// continuation awaiting the client Finished.
    ///
    /// `entropy` must be fresh per connection.
    ///
    /// # Errors
    ///
    /// [`CtlsError::Malformed`] on a bad hello; [`CtlsError::Crypto`] on a
    /// degenerate key share.
    pub fn respond(
        client_hello: &[u8],
        identity: &ServerIdentity,
        entropy: [u8; 64],
        hooks: Option<SimHooks>,
    ) -> Result<(ServerHello, ServerHandshake), CtlsError> {
        if client_hello.len() != CLIENT_HELLO_LEN {
            return Err(CtlsError::Malformed);
        }
        let mut random = [0u8; 32];
        random.copy_from_slice(&entropy[..32]);
        let mut private = [0u8; 32];
        private.copy_from_slice(&entropy[32..]);
        if let Some(h) = &hooks {
            h.charge_x25519(1);
        }
        let public = x25519::public_key(&private);
        Self::respond_with_key(client_hello, identity, random, &private, &public, hooks)
    }

    /// Responds to a run of ClientHellos with one shared server ephemeral
    /// key: the X25519 key generation (one scalar multiplication) runs
    /// once per batch instead of once per connection. Everything
    /// connection-specific stays per hello — the shared secret, the
    /// transcript-bound key schedule, the quote (its nonce hashes that
    /// client's hello, so freshness binding is unweakened), and both
    /// Finished MACs. The ephemeral remains ephemeral (it lives for one
    /// accept batch), trading intra-batch key-share reuse for a
    /// `2 → 1 + 1/n` scalar-multiplication churn cost per connection.
    ///
    /// Failures are per slot: a malformed or degenerate hello yields
    /// `Err` in its position without poisoning its batchmates.
    pub fn respond_batch(
        client_hellos: &[&[u8]],
        identity: &ServerIdentity,
        entropy: [u8; 64],
        hooks: Option<SimHooks>,
    ) -> Vec<Result<(ServerHello, ServerHandshake), CtlsError>> {
        let mut random = [0u8; 32];
        random.copy_from_slice(&entropy[..32]);
        let mut private = [0u8; 32];
        private.copy_from_slice(&entropy[32..]);
        if let Some(h) = &hooks {
            h.charge_x25519(1);
        }
        let public = x25519::public_key(&private);
        client_hellos
            .iter()
            .map(|hello| {
                if hello.len() != CLIENT_HELLO_LEN {
                    return Err(CtlsError::Malformed);
                }
                Self::respond_with_key(hello, identity, random, &private, &public, hooks.clone())
            })
            .collect()
    }

    /// The per-connection half of a server response: shared secret, key
    /// schedule, quote, and Finished under an already-generated ephemeral.
    fn respond_with_key(
        client_hello: &[u8],
        identity: &ServerIdentity,
        random: [u8; 32],
        private: &[u8; 32],
        public: &[u8; 32],
        hooks: Option<SimHooks>,
    ) -> Result<(ServerHello, ServerHandshake), CtlsError> {
        let mut client_pub = [0u8; 32];
        client_pub.copy_from_slice(&client_hello[32..]);
        if let Some(h) = &hooks {
            h.charge_x25519(1);
        }
        let shared = x25519::shared_secret(private, &client_pub)?;
        let transcript = transcript_hash(&[client_hello, &random, public]);
        let sched = schedule(&shared, &transcript)?;

        // Quote: nonce is the hash of the client hello (freshness), report
        // data commits to our ephemeral key (binding).
        let nonce = transcript_hash(&[client_hello]);
        let quote = Quote::generate(
            &identity.platform_key,
            identity.measurement,
            nonce,
            Sha256::digest(public),
        );

        let finished = finished_mac(&sched.server_finished_key, &transcript);
        let full_transcript = transcript_hash(&[client_hello, &random, public, &finished]);

        Ok((
            ServerHello {
                random,
                public: *public,
                quote,
                finished,
            },
            ServerHandshake {
                sched,
                full_transcript,
                hooks,
            },
        ))
    }

    /// Verifies the client Finished and produces the server channel.
    ///
    /// # Errors
    ///
    /// [`CtlsError::BadFinished`] on mismatch.
    pub fn verify_finished(self, client_finished: &[u8]) -> Result<Channel, CtlsError> {
        let expected = finished_mac(&self.sched.client_finished_key, &self.full_transcript);
        if !ct_eq(&expected, client_finished) {
            return Err(CtlsError::BadFinished);
        }
        Ok(Channel::new(
            self.sched.client_secret,
            self.sched.server_secret,
            false,
            self.hooks,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PLATFORM: [u8; 32] = [0x42; 32];

    fn identity() -> ServerIdentity {
        ServerIdentity {
            platform_key: PLATFORM,
            measurement: Measurement::of(b"server-workload-v1"),
        }
    }

    fn entropy(seed: u8) -> [u8; 64] {
        let mut e = [seed; 64];
        e[0] ^= 0x55;
        e
    }

    fn handshake() -> (Channel, Channel) {
        let (hello, client) = ClientHandshake::start(entropy(1), None);
        let (sh, server) = ServerHandshake::respond(&hello, &identity(), entropy(2), None).unwrap();
        let (fin, c_chan) = client
            .finish(&sh, &PLATFORM, &Measurement::of(b"server-workload-v1"))
            .unwrap();
        let s_chan = server.verify_finished(&fin).unwrap();
        (c_chan, s_chan)
    }

    #[test]
    fn full_handshake_succeeds() {
        let (mut c, mut s) = handshake();
        let rec = c.seal(b"first application data").unwrap();
        assert_eq!(s.open(&rec).unwrap(), b"first application data");
    }

    #[test]
    fn wrong_measurement_rejected() {
        let (hello, client) = ClientHandshake::start(entropy(1), None);
        let (sh, _server) =
            ServerHandshake::respond(&hello, &identity(), entropy(2), None).unwrap();
        let r = client.finish(&sh, &PLATFORM, &Measurement::of(b"evil-workload"));
        assert!(matches!(r, Err(CtlsError::BadQuote(_))));
    }

    #[test]
    fn wrong_platform_key_rejected() {
        let (hello, client) = ClientHandshake::start(entropy(1), None);
        let (sh, _server) =
            ServerHandshake::respond(&hello, &identity(), entropy(2), None).unwrap();
        let r = client.finish(&sh, &[0x43; 32], &Measurement::of(b"server-workload-v1"));
        assert!(matches!(r, Err(CtlsError::BadQuote(_))));
    }

    #[test]
    fn mitm_key_substitution_rejected() {
        // A host-in-the-middle swaps the server's key share for its own;
        // the quote's report_data no longer matches.
        let (hello, client) = ClientHandshake::start(entropy(1), None);
        let (mut sh, _server) =
            ServerHandshake::respond(&hello, &identity(), entropy(2), None).unwrap();
        let mitm_private = [9u8; 32];
        sh.public = x25519::public_key(&mitm_private);
        let r = client.finish(&sh, &PLATFORM, &Measurement::of(b"server-workload-v1"));
        assert!(matches!(r, Err(CtlsError::BadQuote(_))));
    }

    #[test]
    fn tampered_server_finished_rejected() {
        let (hello, client) = ClientHandshake::start(entropy(1), None);
        let (mut sh, _server) =
            ServerHandshake::respond(&hello, &identity(), entropy(2), None).unwrap();
        sh.finished[5] ^= 1;
        let r = client.finish(&sh, &PLATFORM, &Measurement::of(b"server-workload-v1"));
        assert!(matches!(r, Err(CtlsError::BadFinished)));
    }

    #[test]
    fn tampered_client_finished_rejected() {
        let (hello, client) = ClientHandshake::start(entropy(1), None);
        let (sh, server) = ServerHandshake::respond(&hello, &identity(), entropy(2), None).unwrap();
        let (mut fin, _chan) = client
            .finish(&sh, &PLATFORM, &Measurement::of(b"server-workload-v1"))
            .unwrap();
        fin[0] ^= 1;
        assert!(matches!(
            server.verify_finished(&fin),
            Err(CtlsError::BadFinished)
        ));
    }

    #[test]
    fn short_hello_rejected() {
        assert!(matches!(
            ServerHandshake::respond(&[0u8; 10], &identity(), entropy(2), None),
            Err(CtlsError::Malformed)
        ));
    }

    #[test]
    fn distinct_sessions_distinct_keys() {
        let (mut c1, mut s1) = handshake();
        let (hello, client) = ClientHandshake::start(entropy(7), None);
        let (sh, server) = ServerHandshake::respond(&hello, &identity(), entropy(8), None).unwrap();
        let (fin, mut c2) = client
            .finish(&sh, &PLATFORM, &Measurement::of(b"server-workload-v1"))
            .unwrap();
        let mut s2 = server.verify_finished(&fin).unwrap();

        // A record from session 1 is garbage in session 2.
        let rec = c1.seal(b"session one").unwrap();
        assert!(s2.open(&rec).is_err());
        // Each session still works internally.
        assert_eq!(s1.open(&rec).unwrap(), b"session one");
        let rec2 = c2.seal(b"session two").unwrap();
        assert_eq!(s2.open(&rec2).unwrap(), b"session two");
    }

    #[test]
    fn batched_respond_completes_every_handshake() {
        let clients: Vec<_> = (0..4u8)
            .map(|i| ClientHandshake::start(entropy(10 + i), None))
            .collect();
        let hellos: Vec<&[u8]> = clients.iter().map(|(h, _)| h.as_slice()).collect();
        let responses = ServerHandshake::respond_batch(&hellos, &identity(), entropy(99), None);
        assert_eq!(responses.len(), 4);
        let mut channels = Vec::new();
        for ((_, client), resp) in clients.into_iter().zip(responses) {
            let (sh, server) = resp.unwrap();
            let (fin, c_chan) = client
                .finish(&sh, &PLATFORM, &Measurement::of(b"server-workload-v1"))
                .unwrap();
            let s_chan = server.verify_finished(&fin).unwrap();
            channels.push((c_chan, s_chan));
        }
        // Sessions sharing the batch ephemeral still have distinct keys:
        // a record from one is garbage in another.
        let rec = channels[0].0.seal(b"batchmate secret").unwrap();
        assert!(channels[1].1.open(&rec).is_err());
        assert_eq!(channels[0].1.open(&rec).unwrap(), b"batchmate secret");
    }

    #[test]
    fn batched_respond_fails_per_slot() {
        let (good, client) = ClientHandshake::start(entropy(21), None);
        let bad = [0u8; 10];
        let responses =
            ServerHandshake::respond_batch(&[&bad, &good], &identity(), entropy(22), None);
        assert!(matches!(responses[0], Err(CtlsError::Malformed)));
        let (sh, _server) = responses[1].as_ref().unwrap();
        assert!(client
            .finish(sh, &PLATFORM, &Measurement::of(b"server-workload-v1"))
            .is_ok());
    }
}
