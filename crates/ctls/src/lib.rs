//! cTLS: a TLS-1.3-shaped secure channel with attestation binding.
//!
//! The paper's L5 design mandates a TLS layer that "guarantees data
//! integrity and confidentiality, notably against attempts to break TCP
//! guarantees (e.g., replay attacks, out of order packets)" (§3.2). This
//! crate provides that layer, built on `cio-crypto`:
//!
//! * **Handshake** ([`handshake`]) — X25519 ECDHE with an HKDF-SHA256 key
//!   schedule shaped like TLS 1.3 (transcript-bound traffic secrets,
//!   Finished MACs), plus **attestation binding**: the server embeds a
//!   `cio-tee` quote whose report data commits to its ephemeral public
//!   key, so the client knows the channel terminates inside the measured
//!   TEE — not merely at "someone with a certificate".
//! * **Record layer** ([`record`]) — ChaCha20-Poly1305 records with
//!   strictly sequential nonces: any replay, reorder, drop, truncation, or
//!   bit-flip performed by the untrusted transport (host-run TCP stack,
//!   compromised I/O compartment, hostile network) is detected as an
//!   AEAD/sequence failure.
//!
//! The implementation is sans-io: callers move the opaque byte blobs over
//! whatever transport the boundary configuration provides.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod handshake;
pub mod record;

pub use cio_crypto::aead::MAX_BATCH_RECORDS;
pub use handshake::{ClientHandshake, ServerHandshake, ServerIdentity};
pub use record::{Channel, RecordScratch, RECORD_OVERHEAD, REKEY_INTERVAL};

use cio_sim::{Clock, CostModel, Meter, Stage, Telemetry};

/// Errors raised by cTLS.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CtlsError {
    /// A handshake or record failed to parse.
    Malformed,
    /// Cryptographic failure (bad tag, zero shared secret).
    Crypto(cio_crypto::CryptoError),
    /// The peer's Finished MAC did not verify.
    BadFinished,
    /// The attestation quote failed verification.
    BadQuote(cio_tee::TeeError),
    /// A record arrived out of sequence (replay/reorder/drop detected).
    BadSequence,
}

impl From<cio_crypto::CryptoError> for CtlsError {
    fn from(e: cio_crypto::CryptoError) -> Self {
        CtlsError::Crypto(e)
    }
}

impl std::fmt::Display for CtlsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CtlsError::Malformed => write!(f, "malformed cTLS message"),
            CtlsError::Crypto(e) => write!(f, "crypto failure: {e}"),
            CtlsError::BadFinished => write!(f, "finished MAC mismatch"),
            CtlsError::BadQuote(e) => write!(f, "attestation failure: {e}"),
            CtlsError::BadSequence => write!(f, "record out of sequence"),
        }
    }
}

impl std::error::Error for CtlsError {}

/// Optional simulation hooks: when present, AEAD work is charged to the
/// virtual clock and metered.
#[derive(Clone)]
pub struct SimHooks {
    /// The shared virtual clock.
    pub clock: Clock,
    /// The cost model.
    pub cost: CostModel,
    /// The shared meter.
    pub meter: Meter,
    /// Telemetry domain for cycle attribution (disabled handle = no-op).
    /// AEAD charges are booked to [`Stage::Crypto`] on whichever queue's
    /// span is open, so seal/open spans report pure framing self-time.
    pub telemetry: Telemetry,
}

impl SimHooks {
    pub(crate) fn charge_aead(&self, bytes: usize) {
        let spent = self.cost.aead(bytes);
        self.clock.advance(spent);
        self.meter.aead_ops(1);
        self.meter.aead_bytes(bytes as u64);
        self.telemetry.attribute_here(Stage::Crypto, spent);
    }

    /// Charges one batched AEAD pass over `records` records totalling
    /// `bytes` bytes. A batch of one charges exactly what
    /// [`SimHooks::charge_aead`] would, so the serial path's virtual
    /// time is unchanged by the batch model's existence.
    pub(crate) fn charge_aead_batch(&self, records: usize, bytes: usize) {
        let spent = self.cost.aead_batch(records, bytes);
        self.clock.advance(spent);
        self.meter.aead_ops(records as u64);
        self.meter.aead_bytes(bytes as u64);
        self.telemetry.attribute_here(Stage::Crypto, spent);
    }

    /// Charges `mults` X25519 scalar multiplications (handshake key
    /// generation and shared-secret derivation). The dominant cost of
    /// connection churn; [`ServerHandshake::respond_batch`] amortizes the
    /// server's ephemeral key generation across a batch to shave one mult
    /// per connection.
    pub(crate) fn charge_x25519(&self, mults: usize) {
        let spent = self.cost.x25519_mult * mults as u64;
        self.clock.advance(spent);
        self.meter.x25519_ops(mults as u64);
        self.telemetry.attribute_here(Stage::Crypto, spent);
    }
}
