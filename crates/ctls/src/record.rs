//! The cTLS record layer.
//!
//! Records are `[len: u32-le][ciphertext || tag]`. Nonces are derived from
//! strictly increasing per-direction sequence numbers; the sequence number
//! is also the AAD, so any replay, reorder, drop, or splice attempted by
//! the untrusted transport surfaces as `BadSequence`-class
//! failures — this is how the L5 design survives a compromised I/O stack
//! with only "increased observability" (§3.1).

use crate::{CtlsError, SimHooks};
use cio_crypto::aead::ChaCha20Poly1305;
use cio_crypto::{hkdf, CryptoError};

/// Overhead added to each record: 4-byte length + 16-byte tag.
pub const RECORD_OVERHEAD: usize = 20;

/// Records per key generation when automatic rekeying is enabled.
///
/// The value is deterministic policy, not negotiation: both endpoints
/// derive generation `n+1` from generation `n`'s secret with
/// HKDF-Expand(secret, "ctls1 upd") after exactly this many records, so
/// the key schedule advances in lockstep with no key-update message — the
/// zero-negotiation spirit of §3.2 applied to key rotation.
pub const REKEY_INTERVAL: u64 = 1 << 16;

/// One direction's cipher state.
struct Direction {
    secret: [u8; 32],
    aead: ChaCha20Poly1305,
    seq: u64,
    rekey_interval: Option<u64>,
    generation: u64,
}

impl Direction {
    fn new(secret: [u8; 32], rekey_interval: Option<u64>) -> Self {
        Direction {
            secret,
            aead: ChaCha20Poly1305::new(secret),
            seq: 0,
            rekey_interval,
            generation: 0,
        }
    }

    fn nonce(seq: u64) -> [u8; 12] {
        let mut n = [0u8; 12];
        n[4..].copy_from_slice(&seq.to_be_bytes());
        n
    }

    /// Advances to the next key generation when the deterministic rekey
    /// point is reached (forward secrecy within a connection: old traffic
    /// keys are unrecoverable from the current secret).
    fn maybe_rekey(&mut self) {
        let Some(interval) = self.rekey_interval else {
            return;
        };
        if self.seq > 0 && self.seq.is_multiple_of(interval) {
            let prk = hkdf::extract(b"", &self.secret);
            let mut next = [0u8; 32];
            hkdf::expand(&prk, b"ctls1 upd", &mut next).expect("32 bytes is within HKDF limits");
            self.secret = next;
            self.aead = ChaCha20Poly1305::new(next);
            self.generation += 1;
        }
    }

    fn seal(&mut self, plaintext: &[u8]) -> Vec<u8> {
        self.maybe_rekey();
        let aad = self.seq.to_be_bytes();
        let sealed = self.aead.seal(&Self::nonce(self.seq), &aad, plaintext);
        self.seq += 1;
        let mut rec = Vec::with_capacity(4 + sealed.len());
        rec.extend_from_slice(&(sealed.len() as u32).to_le_bytes());
        rec.extend_from_slice(&sealed);
        rec
    }

    fn open(&mut self, record: &[u8]) -> Result<Vec<u8>, CtlsError> {
        if record.len() < 4 {
            return Err(CtlsError::Malformed);
        }
        let len = u32::from_le_bytes([record[0], record[1], record[2], record[3]]) as usize;
        if record.len() != 4 + len {
            return Err(CtlsError::Malformed);
        }
        self.maybe_rekey();
        let aad = self.seq.to_be_bytes();
        let plain = self
            .aead
            .open(&Self::nonce(self.seq), &aad, &record[4..])
            .map_err(|e| match e {
                CryptoError::BadTag => CtlsError::BadSequence,
                other => CtlsError::Crypto(other),
            })?;
        self.seq += 1;
        Ok(plain)
    }
}

/// A full-duplex secure channel (one endpoint).
pub struct Channel {
    tx: Direction,
    rx: Direction,
    hooks: Option<SimHooks>,
}

impl Channel {
    /// Builds an endpoint from the two traffic secrets. `is_client`
    /// selects which secret drives which direction.
    pub(crate) fn new(
        client_secret: [u8; 32],
        server_secret: [u8; 32],
        is_client: bool,
        hooks: Option<SimHooks>,
    ) -> Self {
        let (tx_key, rx_key) = if is_client {
            (client_secret, server_secret)
        } else {
            (server_secret, client_secret)
        };
        Channel {
            tx: Direction::new(tx_key, Some(REKEY_INTERVAL)),
            rx: Direction::new(rx_key, Some(REKEY_INTERVAL)),
            hooks,
        }
    }

    /// Overrides the deterministic rekey interval (`None` disables
    /// rekeying; both endpoints must choose the same value).
    pub fn set_rekey_interval(&mut self, interval: Option<u64>) {
        self.tx.rekey_interval = interval;
        self.rx.rekey_interval = interval;
    }

    /// Current key generation of the transmit direction.
    pub fn tx_generation(&self) -> u64 {
        self.tx.generation
    }

    /// Builds an endpoint from externally provisioned traffic secrets.
    ///
    /// Used by deployment-time-keyed channels such as the LightBox-style
    /// tunnel, where the key exchange happens out of band.
    pub fn from_secrets(
        client_secret: [u8; 32],
        server_secret: [u8; 32],
        is_client: bool,
        hooks: Option<SimHooks>,
    ) -> Self {
        Channel::new(client_secret, server_secret, is_client, hooks)
    }

    /// Encrypts one application message into a record.
    ///
    /// # Errors
    ///
    /// Currently infallible in practice; kept fallible for API stability
    /// with future length limits.
    pub fn seal(&mut self, plaintext: &[u8]) -> Result<Vec<u8>, CtlsError> {
        if let Some(h) = &self.hooks {
            h.charge_aead(plaintext.len());
        }
        Ok(self.tx.seal(plaintext))
    }

    /// Verifies and decrypts one record.
    ///
    /// # Errors
    ///
    /// [`CtlsError::BadSequence`] for anything the transport did to the
    /// stream (replay, reorder, tamper); [`CtlsError::Malformed`] for
    /// framing damage.
    pub fn open(&mut self, record: &[u8]) -> Result<Vec<u8>, CtlsError> {
        if let Some(h) = &self.hooks {
            h.charge_aead(record.len().saturating_sub(4));
        }
        self.rx.open(record)
    }

    /// Records sent so far.
    pub fn records_sent(&self) -> u64 {
        self.tx.seq
    }

    /// Records received so far.
    pub fn records_received(&self) -> u64 {
        self.rx.seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair() -> (Channel, Channel) {
        let c = Channel::new([1; 32], [2; 32], true, None);
        let s = Channel::new([1; 32], [2; 32], false, None);
        (c, s)
    }

    #[test]
    fn roundtrip_both_directions() {
        let (mut c, mut s) = pair();
        let r1 = c.seal(b"to server").unwrap();
        assert_eq!(s.open(&r1).unwrap(), b"to server");
        let r2 = s.seal(b"to client").unwrap();
        assert_eq!(c.open(&r2).unwrap(), b"to client");
        assert_eq!(c.records_sent(), 1);
        assert_eq!(c.records_received(), 1);
    }

    #[test]
    fn replay_detected() {
        let (mut c, mut s) = pair();
        let r = c.seal(b"pay me once").unwrap();
        assert!(s.open(&r).is_ok());
        assert_eq!(s.open(&r), Err(CtlsError::BadSequence));
    }

    #[test]
    fn reorder_detected() {
        let (mut c, mut s) = pair();
        let r1 = c.seal(b"first").unwrap();
        let r2 = c.seal(b"second").unwrap();
        assert_eq!(s.open(&r2), Err(CtlsError::BadSequence));
        // The stream is not resynchronizable by the attacker: even the
        // "right" record now fails (seq advanced? no — failed opens do not
        // advance). r1 still opens.
        assert_eq!(s.open(&r1).unwrap(), b"first");
        assert_eq!(s.open(&r2).unwrap(), b"second");
    }

    #[test]
    fn drop_detected() {
        let (mut c, mut s) = pair();
        let _lost = c.seal(b"eaten by the host").unwrap();
        let r2 = c.seal(b"arrives").unwrap();
        assert_eq!(s.open(&r2), Err(CtlsError::BadSequence));
    }

    #[test]
    fn tamper_detected_everywhere() {
        let (mut c, mut s) = pair();
        let r = c.seal(b"integrity matters").unwrap();
        for i in 4..r.len() {
            let mut bad = r.clone();
            bad[i] ^= 0x80;
            assert!(s.open(&bad).is_err(), "byte {i}");
        }
    }

    #[test]
    fn framing_damage_detected() {
        let (mut c, mut s) = pair();
        let r = c.seal(b"msg").unwrap();
        assert_eq!(s.open(&r[..3]), Err(CtlsError::Malformed));
        let mut long = r.clone();
        long.push(0);
        assert_eq!(s.open(&long), Err(CtlsError::Malformed));
        let mut bad_len = r.clone();
        bad_len[0] ^= 1;
        assert_eq!(s.open(&bad_len), Err(CtlsError::Malformed));
    }

    #[test]
    fn empty_message_roundtrip() {
        let (mut c, mut s) = pair();
        let r = c.seal(b"").unwrap();
        assert_eq!(r.len(), RECORD_OVERHEAD);
        assert_eq!(s.open(&r).unwrap(), b"");
    }

    #[test]
    fn directions_are_independent() {
        let (mut c, mut s) = pair();
        // Client sends 3, server sends 1 — sequence spaces do not collide.
        for i in 0..3u8 {
            let r = c.seal(&[i]).unwrap();
            assert_eq!(s.open(&r).unwrap(), [i]);
        }
        let r = s.seal(b"reply").unwrap();
        assert_eq!(c.open(&r).unwrap(), b"reply");
    }

    #[test]
    fn rekeying_advances_in_lockstep() {
        let mut c = Channel::new([1; 32], [2; 32], true, None);
        let mut s = Channel::new([1; 32], [2; 32], false, None);
        c.set_rekey_interval(Some(4));
        s.set_rekey_interval(Some(4));
        for i in 0..20u8 {
            let r = c.seal(&[i]).unwrap();
            assert_eq!(s.open(&r).unwrap(), [i], "record {i}");
        }
        // 20 records at interval 4 -> generation 4 (rekey before 4,8,12,16).
        assert_eq!(c.tx_generation(), 4);
    }

    #[test]
    fn mismatched_rekey_interval_fails_closed() {
        let mut c = Channel::new([1; 32], [2; 32], true, None);
        let mut s = Channel::new([1; 32], [2; 32], false, None);
        c.set_rekey_interval(Some(2));
        s.set_rekey_interval(None);
        let mut failed = false;
        for i in 0..4u8 {
            let r = c.seal(&[i]).unwrap();
            if s.open(&r).is_err() {
                failed = true;
                break;
            }
        }
        assert!(failed, "generation skew must be detected, never decrypted");
    }

    #[test]
    fn old_generation_records_do_not_replay_across_rekey() {
        let mut c = Channel::new([1; 32], [2; 32], true, None);
        let mut s = Channel::new([1; 32], [2; 32], false, None);
        c.set_rekey_interval(Some(2));
        s.set_rekey_interval(Some(2));
        let old = c.seal(b"gen0 record").unwrap();
        s.open(&old).unwrap();
        // Advance both sides past the rekey point.
        for _ in 0..3 {
            let r = c.seal(b"x").unwrap();
            s.open(&r).unwrap();
        }
        // The generation-0 record cannot be replayed into generation 1+.
        assert!(s.open(&old).is_err());
    }

    #[test]
    fn cross_direction_splice_detected() {
        // A record the client sent cannot be reflected back to the client.
        let (mut c, s) = pair();
        let r = c.seal(b"reflect me").unwrap();
        assert!(c.open(&r).is_err());
        let _ = s;
    }
}
