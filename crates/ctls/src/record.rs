//! The cTLS record layer.
//!
//! Records are `[len: u32-le][ciphertext || tag]`. Nonces are derived from
//! strictly increasing per-direction sequence numbers; the sequence number
//! is also the AAD, so any replay, reorder, drop, or splice attempted by
//! the untrusted transport surfaces as `BadSequence`-class
//! failures — this is how the L5 design survives a compromised I/O stack
//! with only "increased observability" (§3.1).

use crate::{CtlsError, SimHooks};
use cio_crypto::aead::{self, ChaCha20Poly1305, MAX_BATCH_RECORDS};
use cio_crypto::poly1305::TAG_LEN;
use cio_crypto::{hkdf, CryptoError};

/// Overhead added to each record: 4-byte length + 16-byte tag.
pub const RECORD_OVERHEAD: usize = 20;

/// A reusable buffer for record seal/open output.
///
/// The record layer writes into this scratch in place — header, payload,
/// and tag assembled directly in the one backing `Vec` — so a steady-state
/// send/receive loop allocates nothing once the scratch has warmed up to
/// the largest record it has carried.
#[derive(Default)]
pub struct RecordScratch {
    buf: Vec<u8>,
}

impl RecordScratch {
    /// An empty scratch; grows on first use.
    pub fn new() -> Self {
        RecordScratch::default()
    }

    /// A scratch pre-sized for `n`-byte contents.
    pub fn with_capacity(n: usize) -> Self {
        RecordScratch {
            buf: Vec::with_capacity(n),
        }
    }

    /// The bytes produced by the last seal/open.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }

    /// Replaces the contents with a copy of `bytes`.
    ///
    /// Lets pass-through (plaintext) paths share one scratch with sealed
    /// paths without allocating.
    pub fn copy_from(&mut self, bytes: &[u8]) {
        self.buf.clear();
        self.buf.extend_from_slice(bytes);
    }

    /// Length of the current contents.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the scratch currently holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

impl AsRef<[u8]> for RecordScratch {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

/// Records per key generation when automatic rekeying is enabled.
///
/// The value is deterministic policy, not negotiation: both endpoints
/// derive generation `n+1` from generation `n`'s secret with
/// HKDF-Expand(secret, "ctls1 upd") after exactly this many records, so
/// the key schedule advances in lockstep with no key-update message — the
/// zero-negotiation spirit of §3.2 applied to key rotation.
pub const REKEY_INTERVAL: u64 = 1 << 16;

/// One direction's cipher state.
struct Direction {
    secret: [u8; 32],
    aead: ChaCha20Poly1305,
    seq: u64,
    rekey_interval: Option<u64>,
    generation: u64,
}

impl Direction {
    fn new(secret: [u8; 32], rekey_interval: Option<u64>) -> Self {
        Direction {
            secret,
            aead: ChaCha20Poly1305::new(secret),
            seq: 0,
            rekey_interval,
            generation: 0,
        }
    }

    fn nonce(seq: u64) -> [u8; 12] {
        let mut n = [0u8; 12];
        n[4..].copy_from_slice(&seq.to_be_bytes());
        n
    }

    /// Advances to the next key generation when the deterministic rekey
    /// point is reached (forward secrecy within a connection: old traffic
    /// keys are unrecoverable from the current secret).
    fn maybe_rekey(&mut self) {
        let Some(interval) = self.rekey_interval else {
            return;
        };
        if self.seq > 0 && self.seq.is_multiple_of(interval) {
            let prk = hkdf::extract(b"", &self.secret);
            let mut next = [0u8; 32];
            hkdf::expand(&prk, b"ctls1 upd", &mut next).expect("32 bytes is within HKDF limits");
            self.secret = next;
            self.aead = ChaCha20Poly1305::new(next);
            self.generation += 1;
        }
    }

    /// Encrypts one record into `out` (cleared first): the header is
    /// written straight into the buffer, the payload is encrypted in
    /// place by the fused one-pass AEAD, and the tag appended — no
    /// intermediate Vec anywhere.
    fn seal_into(&mut self, plaintext: &[u8], out: &mut Vec<u8>) {
        self.maybe_rekey();
        let aad = self.seq.to_be_bytes();
        let nonce = Self::nonce(self.seq);
        out.clear();
        out.reserve(4 + plaintext.len() + TAG_LEN);
        out.extend_from_slice(&((plaintext.len() + TAG_LEN) as u32).to_le_bytes());
        out.extend_from_slice(plaintext);
        let tag = self.aead.seal_fused_in_place(&nonce, &aad, &mut out[4..]);
        out.extend_from_slice(&tag);
        self.seq += 1;
    }

    /// Seals one record directly into `slot` (the in-slot zero-copy
    /// path): header at `[0..4]`, ciphertext at `[4..4+n]`, tag after —
    /// scatter-gather segments laid out in place. The plaintext is
    /// combined with the keystream on the way in, so it never touches the
    /// slot; the slot may live in host-observable shared memory. Returns
    /// the record length. Byte-identical to [`Direction::seal_into`].
    fn seal_into_slot(&mut self, plaintext: &[u8], slot: &mut [u8]) -> Result<usize, CtlsError> {
        let record_len = 4 + plaintext.len() + TAG_LEN;
        if slot.len() < record_len {
            return Err(CtlsError::Crypto(CryptoError::BadLength));
        }
        self.maybe_rekey();
        let aad = self.seq.to_be_bytes();
        let nonce = Self::nonce(self.seq);
        slot[..4].copy_from_slice(&((plaintext.len() + TAG_LEN) as u32).to_le_bytes());
        let (ct, rest) = slot[4..].split_at_mut(plaintext.len());
        let tag = self.aead.seal_fused_scatter(&nonce, &aad, plaintext, ct);
        rest[..TAG_LEN].copy_from_slice(&tag);
        self.seq += 1;
        Ok(record_len)
    }

    /// Seals a run of records into their slots with one batched AEAD
    /// pass per key generation: nonces, AADs, and sequence numbers are
    /// assigned positionally (`seq`, `seq+1`, ...), the wide keystream
    /// lanes are packed across record boundaries, and each record is
    /// byte-identical to what [`Direction::seal_into_slot`] would have
    /// produced at the same sequence number. A deterministic rekey point
    /// inside the run splits it into per-generation crypto batches.
    ///
    /// All slot capacities are validated before any state advances; on
    /// `BadLength` nothing is written and `seq` is unchanged, so the
    /// caller can fall back to the serial path.
    fn seal_batch_into_slots(
        &mut self,
        plaintexts: &[&[u8]],
        slots: &mut [&mut [u8]],
        lens: &mut [usize],
    ) -> Result<(), CtlsError> {
        let n = plaintexts.len();
        assert!(n <= MAX_BATCH_RECORDS, "batch exceeds MAX_BATCH_RECORDS");
        debug_assert!(slots.len() == n && lens.len() >= n);
        for (pt, slot) in plaintexts.iter().zip(slots.iter()) {
            if slot.len() < pt.len() + RECORD_OVERHEAD {
                return Err(CtlsError::Crypto(CryptoError::BadLength));
            }
        }
        let mut i = 0;
        while i < n {
            self.maybe_rekey();
            // Records sharing the current key generation form one crypto
            // batch; the run ends where the next deterministic rekey
            // point falls.
            let mut j = i + 1;
            while j < n {
                let s = self.seq + (j - i) as u64;
                if let Some(iv) = self.rekey_interval {
                    if s > 0 && s.is_multiple_of(iv) {
                        break;
                    }
                }
                j += 1;
            }
            let run = j - i;
            let aead = self.aead.clone();
            let aeads: [&ChaCha20Poly1305; MAX_BATCH_RECORDS] = [&aead; MAX_BATCH_RECORDS];
            let mut nonces = [[0u8; 12]; MAX_BATCH_RECORDS];
            let mut aad_store = [[0u8; 8]; MAX_BATCH_RECORDS];
            for k in 0..run {
                let s = self.seq + k as u64;
                nonces[k] = Self::nonce(s);
                aad_store[k] = s.to_be_bytes();
            }
            let aads: [&[u8]; MAX_BATCH_RECORDS] = std::array::from_fn(|k| &aad_store[k][..]);

            // Headers first, then carve disjoint ciphertext and tag
            // regions out of each slot.
            let mut cts: [&mut [u8]; MAX_BATCH_RECORDS] = std::array::from_fn(|_| &mut [][..]);
            let mut tag_slots: [&mut [u8]; MAX_BATCH_RECORDS] =
                std::array::from_fn(|_| &mut [][..]);
            let mut rest: &mut [&mut [u8]] = &mut slots[i..j];
            let mut k = 0;
            while !rest.is_empty() {
                let (slot, tail) = std::mem::take(&mut rest)
                    .split_first_mut()
                    .expect("non-empty");
                let pt_len = plaintexts[i + k].len();
                slot[..4].copy_from_slice(&((pt_len + TAG_LEN) as u32).to_le_bytes());
                let (head, after) = slot.split_at_mut(4 + pt_len);
                cts[k] = &mut head[4..];
                tag_slots[k] = &mut after[..TAG_LEN];
                lens[i + k] = pt_len + RECORD_OVERHEAD;
                rest = tail;
                k += 1;
            }

            let mut tags = [[0u8; TAG_LEN]; MAX_BATCH_RECORDS];
            aead::seal_batch_scatter(
                &aeads[..run],
                &nonces[..run],
                &aads[..run],
                &plaintexts[i..j],
                &mut cts[..run],
                &mut tags,
            );
            for (tag_slot, tag) in tag_slots[..run].iter_mut().zip(&tags) {
                tag_slot.copy_from_slice(tag);
            }
            self.seq += run as u64;
            i = j;
        }
        Ok(())
    }

    /// Opens a run of records fetched from transport slots with one
    /// batched AEAD pass per key generation. Sequence numbers are
    /// assigned *positionally*: record `k` authenticates against
    /// `seq + k`, and — unlike the serial path, where a failed open does
    /// not advance — a failed record *consumes* its sequence number so
    /// the rest of the batch still opens. That is the batch fail-closed
    /// contract: a corrupted slot yields exactly one per-record error
    /// (its scratch left empty) without poisoning or reordering its
    /// neighbours.
    fn open_batch_in_slots(
        &mut self,
        records: &[&[u8]],
        outs: &mut [RecordScratch],
        results: &mut [Result<(), CtlsError>],
    ) {
        let n = records.len();
        assert!(n <= MAX_BATCH_RECORDS, "batch exceeds MAX_BATCH_RECORDS");
        debug_assert!(outs.len() >= n && results.len() >= n);
        let mut i = 0;
        while i < n {
            self.maybe_rekey();
            let mut j = i + 1;
            while j < n {
                let s = self.seq + (j - i) as u64;
                if let Some(iv) = self.rekey_interval {
                    if s > 0 && s.is_multiple_of(iv) {
                        break;
                    }
                }
                j += 1;
            }
            let run = j - i;
            let aead = self.aead.clone();
            let aeads: [&ChaCha20Poly1305; MAX_BATCH_RECORDS] = [&aead; MAX_BATCH_RECORDS];
            let mut nonces = [[0u8; 12]; MAX_BATCH_RECORDS];
            let mut aad_store = [[0u8; 8]; MAX_BATCH_RECORDS];
            let mut tags = [[0u8; TAG_LEN]; MAX_BATCH_RECORDS];
            let mut pre_err: [Option<CtlsError>; MAX_BATCH_RECORDS] = [None; MAX_BATCH_RECORDS];
            for k in 0..run {
                let s = self.seq + k as u64;
                nonces[k] = Self::nonce(s);
                aad_store[k] = s.to_be_bytes();
                let rec = records[i + k];
                let out = &mut outs[i + k];
                out.buf.clear();
                // Framing checks mirror the serial open; a bad frame
                // simply sits the crypto batch out (empty buffer).
                if rec.len() < 4 {
                    pre_err[k] = Some(CtlsError::Malformed);
                    continue;
                }
                let len = u32::from_le_bytes([rec[0], rec[1], rec[2], rec[3]]) as usize;
                if rec.len() != 4 + len {
                    pre_err[k] = Some(CtlsError::Malformed);
                    continue;
                }
                if len < TAG_LEN {
                    pre_err[k] = Some(CtlsError::Crypto(CryptoError::BadLength));
                    continue;
                }
                out.buf.extend_from_slice(&rec[4..rec.len() - TAG_LEN]);
                tags[k].copy_from_slice(&rec[rec.len() - TAG_LEN..]);
            }
            let aads: [&[u8]; MAX_BATCH_RECORDS] = std::array::from_fn(|k| &aad_store[k][..]);

            let mut bufs: [&mut [u8]; MAX_BATCH_RECORDS] = std::array::from_fn(|_| &mut [][..]);
            let mut rest: &mut [RecordScratch] = &mut outs[i..j];
            let mut k = 0;
            while !rest.is_empty() {
                let (out, tail) = std::mem::take(&mut rest)
                    .split_first_mut()
                    .expect("non-empty");
                bufs[k] = &mut out.buf[..];
                rest = tail;
                k += 1;
            }

            let mut crypto_results = [Ok(()); MAX_BATCH_RECORDS];
            aead::open_batch_in_place(
                &aeads[..run],
                &nonces[..run],
                &aads[..run],
                &mut bufs[..run],
                &tags[..run],
                &mut crypto_results[..run],
            );
            for k in 0..run {
                let res = if let Some(e) = pre_err[k] {
                    Err(e)
                } else {
                    crypto_results[k].map_err(|e| match e {
                        CryptoError::BadTag => CtlsError::BadSequence,
                        other => CtlsError::Crypto(other),
                    })
                };
                if res.is_err() {
                    outs[i + k].buf.clear();
                }
                results[i + k] = res;
            }
            self.seq += run as u64;
            i = j;
        }
    }

    /// Verifies and decrypts one record into `out` (cleared first; left
    /// empty on failure).
    fn open_into(&mut self, record: &[u8], out: &mut Vec<u8>) -> Result<(), CtlsError> {
        if record.len() < 4 {
            return Err(CtlsError::Malformed);
        }
        let len = u32::from_le_bytes([record[0], record[1], record[2], record[3]]) as usize;
        if record.len() != 4 + len {
            return Err(CtlsError::Malformed);
        }
        self.maybe_rekey();
        let aad = self.seq.to_be_bytes();
        self.aead
            .open_fused_into(&Self::nonce(self.seq), &aad, &record[4..], out)
            .map_err(|e| match e {
                CryptoError::BadTag => CtlsError::BadSequence,
                other => CtlsError::Crypto(other),
            })?;
        self.seq += 1;
        Ok(())
    }
}

/// A full-duplex secure channel (one endpoint).
pub struct Channel {
    tx: Direction,
    rx: Direction,
    hooks: Option<SimHooks>,
}

impl Channel {
    /// Builds an endpoint from the two traffic secrets. `is_client`
    /// selects which secret drives which direction.
    pub(crate) fn new(
        client_secret: [u8; 32],
        server_secret: [u8; 32],
        is_client: bool,
        hooks: Option<SimHooks>,
    ) -> Self {
        let (tx_key, rx_key) = if is_client {
            (client_secret, server_secret)
        } else {
            (server_secret, client_secret)
        };
        Channel {
            tx: Direction::new(tx_key, Some(REKEY_INTERVAL)),
            rx: Direction::new(rx_key, Some(REKEY_INTERVAL)),
            hooks,
        }
    }

    /// Overrides the deterministic rekey interval (`None` disables
    /// rekeying; both endpoints must choose the same value).
    pub fn set_rekey_interval(&mut self, interval: Option<u64>) {
        self.tx.rekey_interval = interval;
        self.rx.rekey_interval = interval;
    }

    /// Current key generation of the transmit direction.
    pub fn tx_generation(&self) -> u64 {
        self.tx.generation
    }

    /// Builds an endpoint from externally provisioned traffic secrets.
    ///
    /// Used by deployment-time-keyed channels such as the LightBox-style
    /// tunnel, where the key exchange happens out of band.
    pub fn from_secrets(
        client_secret: [u8; 32],
        server_secret: [u8; 32],
        is_client: bool,
        hooks: Option<SimHooks>,
    ) -> Self {
        Channel::new(client_secret, server_secret, is_client, hooks)
    }

    /// Encrypts one application message into a record.
    ///
    /// Allocating convenience over [`Channel::seal_into`].
    ///
    /// # Errors
    ///
    /// Currently infallible in practice; kept fallible for API stability
    /// with future length limits.
    pub fn seal(&mut self, plaintext: &[u8]) -> Result<Vec<u8>, CtlsError> {
        let mut out = Vec::new();
        self.seal_into_vec(plaintext, &mut out)?;
        Ok(out)
    }

    /// Encrypts one application message into a reusable scratch.
    ///
    /// The record (`[len][ciphertext][tag]`) is assembled in place in the
    /// scratch's backing buffer; steady state performs zero allocations.
    ///
    /// # Errors
    ///
    /// Currently infallible in practice; kept fallible for API stability
    /// with future length limits.
    pub fn seal_into(
        &mut self,
        plaintext: &[u8],
        out: &mut RecordScratch,
    ) -> Result<(), CtlsError> {
        self.seal_into_vec(plaintext, &mut out.buf)
    }

    pub(crate) fn seal_into_vec(
        &mut self,
        plaintext: &[u8],
        out: &mut Vec<u8>,
    ) -> Result<(), CtlsError> {
        if let Some(h) = &self.hooks {
            h.charge_aead(plaintext.len());
        }
        self.tx.seal_into(plaintext, out);
        Ok(())
    }

    /// Encrypts one application message directly into a transport slot
    /// (e.g. a reserved cio-ring slot): the `[len][ciphertext][tag]`
    /// record is laid out in place with the fused AEAD running over the
    /// slot bytes, and plaintext never touches the slot memory. Returns
    /// the number of slot bytes written.
    ///
    /// Byte-identical output to [`Channel::seal_into`]; a record sealed
    /// in slot opens with [`Channel::open_into`] and vice versa.
    ///
    /// # Errors
    ///
    /// [`CtlsError::Crypto`] with `BadLength` if the slot is smaller than
    /// `plaintext.len()` plus [`RECORD_OVERHEAD`] (the channel state does
    /// not advance, so the caller can fall back to the staged path).
    pub fn seal_into_slot(
        &mut self,
        plaintext: &[u8],
        slot: &mut [u8],
    ) -> Result<usize, CtlsError> {
        if let Some(h) = &self.hooks {
            h.charge_aead(plaintext.len());
        }
        self.tx.seal_into_slot(plaintext, slot)
    }

    /// Encrypts a run of application messages directly into transport
    /// slots (e.g. a batch of reserved cio-ring slots) with one batched
    /// AEAD pass: the wide keystream lanes are scheduled across record
    /// boundaries, amortizing per-record setup, while every record keeps
    /// its own sequence number, nonce, and tag. `lens[i]` receives the
    /// slot bytes written for record `i`. Each record is byte-identical
    /// to sealing the same messages one at a time with
    /// [`Channel::seal_into_slot`], and opens with any open path.
    ///
    /// # Errors
    ///
    /// [`CtlsError::Crypto`] with `BadLength` if *any* slot is smaller
    /// than its message plus [`RECORD_OVERHEAD`] — nothing is written
    /// and the channel state does not advance, so the caller can fall
    /// back to the per-record path.
    ///
    /// # Panics
    ///
    /// If the batch exceeds [`MAX_BATCH_RECORDS`] records.
    pub fn seal_batch_into_slots(
        &mut self,
        plaintexts: &[&[u8]],
        slots: &mut [&mut [u8]],
        lens: &mut [usize],
    ) -> Result<(), CtlsError> {
        if let Some(h) = &self.hooks {
            h.charge_aead_batch(plaintexts.len(), plaintexts.iter().map(|p| p.len()).sum());
        }
        self.tx.seal_batch_into_slots(plaintexts, slots, lens)
    }

    /// Verifies and decrypts a run of records fetched in place from
    /// transport memory with one batched AEAD pass. Sequence numbers are
    /// positional (`records[k]` must be the record sealed at
    /// `rx.seq + k`), and a record that fails *consumes* its sequence
    /// number — fail-closed per record: `results[k]` reports the error,
    /// `outs[k]` is left empty, and the rest of the batch opens
    /// normally. Plaintext is written only to the private scratches,
    /// never back to the slots.
    ///
    /// # Panics
    ///
    /// If the batch exceeds [`MAX_BATCH_RECORDS`] records.
    pub fn open_batch_in_slots(
        &mut self,
        records: &[&[u8]],
        outs: &mut [RecordScratch],
        results: &mut [Result<(), CtlsError>],
    ) {
        if let Some(h) = &self.hooks {
            h.charge_aead_batch(
                records.len(),
                records.iter().map(|r| r.len().saturating_sub(4)).sum(),
            );
        }
        self.rx.open_batch_in_slots(records, outs, results)
    }

    /// Verifies and decrypts one record fetched in place from transport
    /// memory (e.g. a ring slot seen through `consume_in_place`): the
    /// ciphertext is read exactly once from `record` and the plaintext is
    /// written to the private scratch, never back to the slot.
    ///
    /// # Errors
    ///
    /// Same as [`Channel::open`].
    pub fn open_in_slot(
        &mut self,
        record: &[u8],
        out: &mut RecordScratch,
    ) -> Result<(), CtlsError> {
        self.open_into_vec(record, &mut out.buf)
    }

    /// Verifies and decrypts one record.
    ///
    /// Allocating convenience over [`Channel::open_into`].
    ///
    /// # Errors
    ///
    /// [`CtlsError::BadSequence`] for anything the transport did to the
    /// stream (replay, reorder, tamper); [`CtlsError::Malformed`] for
    /// framing damage.
    pub fn open(&mut self, record: &[u8]) -> Result<Vec<u8>, CtlsError> {
        let mut out = Vec::new();
        self.open_into_vec(record, &mut out)?;
        Ok(out)
    }

    /// Verifies and decrypts one record into a reusable scratch.
    ///
    /// On success the scratch holds the plaintext; on failure it is left
    /// empty. Steady state performs zero allocations.
    ///
    /// # Errors
    ///
    /// Same as [`Channel::open`].
    pub fn open_into(&mut self, record: &[u8], out: &mut RecordScratch) -> Result<(), CtlsError> {
        self.open_into_vec(record, &mut out.buf)
    }

    pub(crate) fn open_into_vec(
        &mut self,
        record: &[u8],
        out: &mut Vec<u8>,
    ) -> Result<(), CtlsError> {
        if let Some(h) = &self.hooks {
            h.charge_aead(record.len().saturating_sub(4));
        }
        self.rx.open_into(record, out)
    }

    /// Records sent so far.
    pub fn records_sent(&self) -> u64 {
        self.tx.seq
    }

    /// Records received so far.
    pub fn records_received(&self) -> u64 {
        self.rx.seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair() -> (Channel, Channel) {
        let c = Channel::new([1; 32], [2; 32], true, None);
        let s = Channel::new([1; 32], [2; 32], false, None);
        (c, s)
    }

    #[test]
    fn roundtrip_both_directions() {
        let (mut c, mut s) = pair();
        let r1 = c.seal(b"to server").unwrap();
        assert_eq!(s.open(&r1).unwrap(), b"to server");
        let r2 = s.seal(b"to client").unwrap();
        assert_eq!(c.open(&r2).unwrap(), b"to client");
        assert_eq!(c.records_sent(), 1);
        assert_eq!(c.records_received(), 1);
    }

    #[test]
    fn replay_detected() {
        let (mut c, mut s) = pair();
        let r = c.seal(b"pay me once").unwrap();
        assert!(s.open(&r).is_ok());
        assert_eq!(s.open(&r), Err(CtlsError::BadSequence));
    }

    #[test]
    fn reorder_detected() {
        let (mut c, mut s) = pair();
        let r1 = c.seal(b"first").unwrap();
        let r2 = c.seal(b"second").unwrap();
        assert_eq!(s.open(&r2), Err(CtlsError::BadSequence));
        // The stream is not resynchronizable by the attacker: even the
        // "right" record now fails (seq advanced? no — failed opens do not
        // advance). r1 still opens.
        assert_eq!(s.open(&r1).unwrap(), b"first");
        assert_eq!(s.open(&r2).unwrap(), b"second");
    }

    #[test]
    fn drop_detected() {
        let (mut c, mut s) = pair();
        let _lost = c.seal(b"eaten by the host").unwrap();
        let r2 = c.seal(b"arrives").unwrap();
        assert_eq!(s.open(&r2), Err(CtlsError::BadSequence));
    }

    #[test]
    fn tamper_detected_everywhere() {
        let (mut c, mut s) = pair();
        let r = c.seal(b"integrity matters").unwrap();
        for i in 4..r.len() {
            let mut bad = r.clone();
            bad[i] ^= 0x80;
            assert!(s.open(&bad).is_err(), "byte {i}");
        }
    }

    #[test]
    fn framing_damage_detected() {
        let (mut c, mut s) = pair();
        let r = c.seal(b"msg").unwrap();
        assert_eq!(s.open(&r[..3]), Err(CtlsError::Malformed));
        let mut long = r.clone();
        long.push(0);
        assert_eq!(s.open(&long), Err(CtlsError::Malformed));
        let mut bad_len = r.clone();
        bad_len[0] ^= 1;
        assert_eq!(s.open(&bad_len), Err(CtlsError::Malformed));
    }

    #[test]
    fn empty_message_roundtrip() {
        let (mut c, mut s) = pair();
        let r = c.seal(b"").unwrap();
        assert_eq!(r.len(), RECORD_OVERHEAD);
        assert_eq!(s.open(&r).unwrap(), b"");
    }

    #[test]
    fn directions_are_independent() {
        let (mut c, mut s) = pair();
        // Client sends 3, server sends 1 — sequence spaces do not collide.
        for i in 0..3u8 {
            let r = c.seal(&[i]).unwrap();
            assert_eq!(s.open(&r).unwrap(), [i]);
        }
        let r = s.seal(b"reply").unwrap();
        assert_eq!(c.open(&r).unwrap(), b"reply");
    }

    #[test]
    fn rekeying_advances_in_lockstep() {
        let mut c = Channel::new([1; 32], [2; 32], true, None);
        let mut s = Channel::new([1; 32], [2; 32], false, None);
        c.set_rekey_interval(Some(4));
        s.set_rekey_interval(Some(4));
        for i in 0..20u8 {
            let r = c.seal(&[i]).unwrap();
            assert_eq!(s.open(&r).unwrap(), [i], "record {i}");
        }
        // 20 records at interval 4 -> generation 4 (rekey before 4,8,12,16).
        assert_eq!(c.tx_generation(), 4);
    }

    #[test]
    fn mismatched_rekey_interval_fails_closed() {
        let mut c = Channel::new([1; 32], [2; 32], true, None);
        let mut s = Channel::new([1; 32], [2; 32], false, None);
        c.set_rekey_interval(Some(2));
        s.set_rekey_interval(None);
        let mut failed = false;
        for i in 0..4u8 {
            let r = c.seal(&[i]).unwrap();
            if s.open(&r).is_err() {
                failed = true;
                break;
            }
        }
        assert!(failed, "generation skew must be detected, never decrypted");
    }

    #[test]
    fn old_generation_records_do_not_replay_across_rekey() {
        let mut c = Channel::new([1; 32], [2; 32], true, None);
        let mut s = Channel::new([1; 32], [2; 32], false, None);
        c.set_rekey_interval(Some(2));
        s.set_rekey_interval(Some(2));
        let old = c.seal(b"gen0 record").unwrap();
        s.open(&old).unwrap();
        // Advance both sides past the rekey point.
        for _ in 0..3 {
            let r = c.seal(b"x").unwrap();
            s.open(&r).unwrap();
        }
        // The generation-0 record cannot be replayed into generation 1+.
        assert!(s.open(&old).is_err());
    }

    #[test]
    fn scratch_seal_open_matches_vec_api() {
        // Two channel pairs with identical secrets: one driven through
        // the Vec API, one through reusable scratches. Records and
        // plaintexts must match byte for byte at every step.
        let (mut c1, mut s1) = pair();
        let (mut c2, mut s2) = pair();
        let mut rec = RecordScratch::new();
        let mut plain = RecordScratch::new();
        for i in 0..8usize {
            let msg: Vec<u8> = (0..i * 37).map(|b| b as u8).collect();
            let vec_record = c1.seal(&msg).unwrap();
            c2.seal_into(&msg, &mut rec).unwrap();
            assert_eq!(vec_record, rec.as_slice(), "record {i}");

            let vec_plain = s1.open(&vec_record).unwrap();
            s2.open_into(rec.as_slice(), &mut plain).unwrap();
            assert_eq!(vec_plain, plain.as_slice(), "plain {i}");
            assert_eq!(plain.as_slice(), &msg[..], "roundtrip {i}");
        }
    }

    #[test]
    fn scratch_open_failure_leaves_scratch_empty() {
        let (mut c, mut s) = pair();
        let mut rec = RecordScratch::new();
        c.seal_into(b"target", &mut rec).unwrap();
        let mut tampered = rec.as_slice().to_vec();
        let last = tampered.len() - 1;
        tampered[last] ^= 0x40;
        let mut plain = RecordScratch::new();
        assert_eq!(
            s.open_into(&tampered, &mut plain),
            Err(CtlsError::BadSequence)
        );
        assert!(plain.is_empty());
        // The channel did not advance: the genuine record still opens.
        s.open_into(rec.as_slice(), &mut plain).unwrap();
        assert_eq!(plain.as_slice(), b"target");
    }

    #[test]
    fn seal_into_slot_matches_staged_seal() {
        // The in-slot record must be byte-identical to the staged one,
        // interoperate with both open paths, and never write plaintext
        // into the slot (the slot starts poisoned; after sealing it holds
        // exactly header+ciphertext+tag).
        let (mut c1, mut s1) = pair();
        let (mut c2, mut s2) = pair();
        let mut staged = RecordScratch::new();
        let mut slot = vec![0xEEu8; 4096 + RECORD_OVERHEAD];
        let mut plain = RecordScratch::new();
        for len in [0usize, 1, 64, 447, 448, 449, 1024, 4096] {
            let msg: Vec<u8> = (0..len).map(|b| (b * 13) as u8).collect();
            c1.seal_into(&msg, &mut staged).unwrap();
            let written = c2.seal_into_slot(&msg, &mut slot).unwrap();
            assert_eq!(written, len + RECORD_OVERHEAD);
            assert_eq!(&slot[..written], staged.as_slice(), "record len {len}");

            // Staged record opens via the in-slot path and vice versa.
            s1.open_in_slot(staged.as_slice(), &mut plain).unwrap();
            assert_eq!(plain.as_slice(), &msg[..], "in-slot open len {len}");
            s2.open_into(&slot[..written], &mut plain).unwrap();
            assert_eq!(plain.as_slice(), &msg[..], "staged open len {len}");
        }
    }

    #[test]
    fn seal_into_slot_too_small_does_not_advance() {
        let (mut c, mut s) = pair();
        let mut slot = vec![0u8; 10];
        assert!(matches!(
            c.seal_into_slot(b"does not fit here", &mut slot),
            Err(CtlsError::Crypto(_))
        ));
        // Sequence did not advance: the staged fallback still lines up.
        let r = c.seal(b"does not fit here").unwrap();
        assert_eq!(s.open(&r).unwrap(), b"does not fit here");
    }

    #[test]
    fn seal_batch_matches_serial_across_rekey() {
        // Twin channels with small rekey intervals: one seals a 10-record
        // batch (spanning two rekey points), the other seals the same
        // messages one at a time. Records must be byte-identical, and
        // each side's records must open on the other's path.
        let (mut batch_tx, mut serial_rx) = pair();
        let (mut serial_tx, mut batch_rx) = pair();
        batch_tx.set_rekey_interval(Some(4));
        serial_rx.set_rekey_interval(Some(4));
        serial_tx.set_rekey_interval(Some(4));
        batch_rx.set_rekey_interval(Some(4));

        let lens = [0usize, 1, 64, 447, 448, 449, 1024, 4096, 3, 512];
        let msgs: Vec<Vec<u8>> = lens
            .iter()
            .enumerate()
            .map(|(i, &l)| (0..l).map(|b| (b * 13 + i) as u8).collect())
            .collect();
        let pts: Vec<&[u8]> = msgs.iter().map(|m| &m[..]).collect();

        let mut slot_store: Vec<Vec<u8>> = lens
            .iter()
            .map(|&l| vec![0xEEu8; l + RECORD_OVERHEAD])
            .collect();
        let mut slots: Vec<&mut [u8]> = slot_store.iter_mut().map(|s| &mut s[..]).collect();
        let mut out_lens = [0usize; MAX_BATCH_RECORDS];
        batch_tx
            .seal_batch_into_slots(&pts, &mut slots, &mut out_lens)
            .unwrap();
        assert_eq!(batch_tx.records_sent(), 10);
        assert_eq!(
            batch_tx.tx_generation(),
            2,
            "rekeyed twice inside the batch"
        );

        let mut plain = RecordScratch::new();
        for (i, msg) in msgs.iter().enumerate() {
            assert_eq!(out_lens[i], msg.len() + RECORD_OVERHEAD, "len {i}");
            let serial = serial_tx.seal(msg).unwrap();
            assert_eq!(&slot_store[i][..out_lens[i]], &serial[..], "record {i}");
            // Batch-sealed record opens serially.
            serial_rx
                .open_into(&slot_store[i][..out_lens[i]], &mut plain)
                .unwrap();
            assert_eq!(plain.as_slice(), &msg[..], "serial open {i}");
        }

        // Serially sealed records open through the batched path.
        let serial_records: Vec<Vec<u8>> =
            msgs.iter().map(|m| serial_tx.seal(m).unwrap()).collect();
        let recs: Vec<&[u8]> = serial_records.iter().map(|r| &r[..]).collect();
        let mut outs: Vec<RecordScratch> = (0..recs.len()).map(|_| RecordScratch::new()).collect();
        let mut results = [Ok(()); MAX_BATCH_RECORDS];
        // Advance batch_rx past the first 10 records it never saw: open
        // the batch-sealed slots first.
        let first: Vec<&[u8]> = slot_store
            .iter()
            .zip(out_lens)
            .map(|(s, l)| &s[..l])
            .collect();
        batch_rx.open_batch_in_slots(&first, &mut outs, &mut results);
        for (i, r) in results[..first.len()].iter().enumerate() {
            assert_eq!(*r, Ok(()), "first batch record {i}");
            assert_eq!(
                outs[i].as_slice(),
                &msgs[i][..],
                "first batch plaintext {i}"
            );
        }
        batch_rx.open_batch_in_slots(&recs, &mut outs, &mut results);
        for (i, r) in results[..recs.len()].iter().enumerate() {
            assert_eq!(*r, Ok(()), "second batch record {i}");
            assert_eq!(
                outs[i].as_slice(),
                &msgs[i][..],
                "second batch plaintext {i}"
            );
        }
    }

    #[test]
    fn batch_open_partial_poison_fails_closed_per_record() {
        // Host corrupts one slot mid-batch: that record reports
        // BadSequence with an empty scratch; every other record opens
        // with the right bytes in the right order, and the stream
        // continues past the batch (positional sequence consumption).
        let (mut c, mut s) = pair();
        let msgs: Vec<Vec<u8>> = (0..6).map(|i| vec![i as u8 + 1; 200 + i * 31]).collect();
        let mut records: Vec<Vec<u8>> = msgs.iter().map(|m| c.seal(m).unwrap()).collect();
        records[3][10] ^= 0x80; // corrupt ciphertext of record 3
        let recs: Vec<&[u8]> = records.iter().map(|r| &r[..]).collect();
        let mut outs: Vec<RecordScratch> = (0..6).map(|_| RecordScratch::new()).collect();
        let mut results = [Ok(()); MAX_BATCH_RECORDS];
        s.open_batch_in_slots(&recs, &mut outs, &mut results);
        for i in 0..6 {
            if i == 3 {
                assert_eq!(results[i], Err(CtlsError::BadSequence));
                assert!(outs[i].is_empty(), "poisoned record leaks no plaintext");
            } else {
                assert_eq!(results[i], Ok(()), "record {i}");
                assert_eq!(outs[i].as_slice(), &msgs[i][..], "record {i}");
            }
        }
        // The failed record consumed its sequence number: the very next
        // serial record still lines up.
        assert_eq!(s.records_received(), 6);
        let next = c.seal(b"after the batch").unwrap();
        assert_eq!(s.open(&next).unwrap(), b"after the batch");
    }

    #[test]
    fn batch_open_malformed_frame_is_isolated() {
        let (mut c, mut s) = pair();
        let msgs: Vec<Vec<u8>> = (0..3).map(|i| vec![0x30 + i as u8; 64]).collect();
        let records: Vec<Vec<u8>> = msgs.iter().map(|m| c.seal(m).unwrap()).collect();
        let truncated = &records[1][..3];
        let recs: Vec<&[u8]> = vec![&records[0], truncated, &records[2]];
        let mut outs: Vec<RecordScratch> = (0..3).map(|_| RecordScratch::new()).collect();
        let mut results = [Ok(()); MAX_BATCH_RECORDS];
        s.open_batch_in_slots(&recs, &mut outs, &mut results);
        assert_eq!(results[0], Ok(()));
        assert_eq!(results[1], Err(CtlsError::Malformed));
        assert!(outs[1].is_empty());
        assert_eq!(results[2], Ok(()));
        assert_eq!(outs[2].as_slice(), &msgs[2][..]);
    }

    #[test]
    fn seal_batch_too_small_slot_does_not_advance() {
        let (mut c, mut s) = pair();
        let msgs: [&[u8]; 2] = [b"fits", b"does not fit in ten bytes"];
        let mut a = vec![0u8; 64];
        let mut b = vec![0u8; 10];
        let mut slots: Vec<&mut [u8]> = vec![&mut a[..], &mut b[..]];
        let mut lens = [0usize; 2];
        assert!(matches!(
            c.seal_batch_into_slots(&msgs, &mut slots, &mut lens),
            Err(CtlsError::Crypto(_))
        ));
        // Nothing advanced: the serial fallback still lines up.
        assert_eq!(c.records_sent(), 0);
        let r = c.seal(msgs[1]).unwrap();
        assert_eq!(s.open(&r).unwrap(), msgs[1]);
    }

    #[test]
    fn cross_direction_splice_detected() {
        // A record the client sent cannot be reflected back to the client.
        let (mut c, s) = pair();
        let r = c.seal(b"reflect me").unwrap();
        assert!(c.open(&r).is_err());
        let _ = s;
    }
}
