//! The adversarial host: scripted interface attacks (experiment E10).
//!
//! The paper's threat model gives the host full control over shared state
//! and event timing. This module provides the attack *primitives* — raw
//! shared-memory manipulation plus forged device-protocol actions — and a
//! catalog of named attack classes drawn from the interface-vulnerability
//! literature the paper cites (Iago, COIN, VIA, and the NDSS'23 interface
//! taxonomy). The `cio` crate's attack harness composes these against each
//! boundary configuration and scores the outcome.

use cio_mem::{GuestAddr, HostView, MemError};
use cio_sim::SimRng;
use cio_vring::virtqueue::DeviceSide;
use cio_vring::RingError;

/// The attack classes exercised by E10.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttackKind {
    /// Completion id outside the ring (COIN-style OOB index).
    CompletionIdOob,
    /// Completion length larger than the posted buffer.
    CompletionLenOverrun,
    /// Replayed/duplicate completion (temporal violation).
    SpuriousCompletion,
    /// Corrupt descriptor `next` chaining in shared memory.
    DescChainCorruption,
    /// Mutate device config (MTU) after negotiation: double fetch.
    ConfigDoubleFetch,
    /// Flip payload bytes between guest validation and use (TOCTOU).
    PayloadDoubleFetch,
    /// Producer index far beyond the ring size.
    IndexJump,
    /// Forged offset/length fields in ring slots.
    SlotForgery,
    /// Interrupt/notification storm (re-entrancy pressure).
    NotificationStorm,
}

/// All attack kinds, for harness iteration.
pub const ALL_ATTACKS: [AttackKind; 9] = [
    AttackKind::CompletionIdOob,
    AttackKind::CompletionLenOverrun,
    AttackKind::SpuriousCompletion,
    AttackKind::DescChainCorruption,
    AttackKind::ConfigDoubleFetch,
    AttackKind::PayloadDoubleFetch,
    AttackKind::IndexJump,
    AttackKind::SlotForgery,
    AttackKind::NotificationStorm,
];

impl std::fmt::Display for AttackKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            AttackKind::CompletionIdOob => "completion-id out of bounds",
            AttackKind::CompletionLenOverrun => "completion-length overrun",
            AttackKind::SpuriousCompletion => "spurious completion replay",
            AttackKind::DescChainCorruption => "descriptor-chain corruption",
            AttackKind::ConfigDoubleFetch => "config double fetch",
            AttackKind::PayloadDoubleFetch => "payload double fetch",
            AttackKind::IndexJump => "ring-index jump",
            AttackKind::SlotForgery => "slot offset/length forgery",
            AttackKind::NotificationStorm => "notification storm",
        };
        f.write_str(s)
    }
}

/// Raw shared-memory attack primitives.
pub struct Adversary {
    host: HostView,
    rng: SimRng,
}

impl Adversary {
    /// Creates an adversary over the host view of guest memory.
    pub fn new(host: HostView, seed: u64) -> Self {
        Adversary {
            host,
            rng: SimRng::seed_from(seed),
        }
    }

    /// The underlying host view.
    pub fn view(&self) -> &HostView {
        &self.host
    }

    /// Flips one bit in each of `len` bytes at `addr` (if shared).
    ///
    /// # Errors
    ///
    /// [`MemError::Protected`] when the guest revoked/never shared the
    /// page — that outcome *is* a result for the harness.
    pub fn flip_bytes(&mut self, addr: GuestAddr, len: usize) -> Result<(), MemError> {
        let mut buf = vec![0u8; len];
        self.host.read(addr, &mut buf)?;
        for b in &mut buf {
            *b ^= 1 << (self.rng.next_below(8) as u8);
        }
        self.host.write(addr, &buf)
    }

    /// Overwrites `len` bytes at `addr` with deterministic garbage.
    ///
    /// # Errors
    ///
    /// As [`Adversary::flip_bytes`].
    pub fn scribble(&mut self, addr: GuestAddr, len: usize) -> Result<(), MemError> {
        let mut buf = vec![0u8; len];
        self.rng.fill_bytes(&mut buf);
        self.host.write(addr, &buf)
    }

    /// Writes a hostile little-endian `u32`.
    ///
    /// # Errors
    ///
    /// As [`Adversary::flip_bytes`].
    pub fn write_u32(&self, addr: GuestAddr, v: u32) -> Result<(), MemError> {
        self.host.write_u32(addr, v)
    }

    /// Writes a hostile little-endian `u16`.
    ///
    /// # Errors
    ///
    /// As [`Adversary::flip_bytes`].
    pub fn write_u16(&self, addr: GuestAddr, v: u16) -> Result<(), MemError> {
        self.host.write_u16(addr, v)
    }

    /// Forges a completion on a virtqueue used ring.
    ///
    /// # Errors
    ///
    /// Ring/memory errors.
    pub fn forge_completion(
        &self,
        device: &mut DeviceSide,
        id: u16,
        len: u32,
    ) -> Result<(), RingError> {
        device.complete(id, len)
    }

    /// A deterministic garbage value.
    pub fn garbage_u32(&mut self) -> u32 {
        self.rng.next_u64() as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cio_mem::{GuestMemory, PAGE_SIZE};
    use cio_sim::{Clock, CostModel, Meter};

    #[test]
    fn attack_catalog_is_complete_and_printable() {
        assert_eq!(ALL_ATTACKS.len(), 9);
        for a in ALL_ATTACKS {
            assert!(!a.to_string().is_empty());
        }
    }

    #[test]
    fn primitives_respect_page_protection() {
        let mem = GuestMemory::new(4, Clock::new(), CostModel::default(), Meter::new());
        mem.share_range(GuestAddr(0), PAGE_SIZE).unwrap();
        let mut adv = Adversary::new(mem.host(), 1);

        // Shared page: attacks land.
        mem.guest().write(GuestAddr(0), &[0u8; 16]).unwrap();
        adv.flip_bytes(GuestAddr(0), 16).unwrap();
        let mut buf = [0u8; 16];
        mem.guest().read(GuestAddr(0), &mut buf).unwrap();
        assert!(buf.iter().any(|&b| b != 0));

        // Private page: attacks fault, like real RMP violations.
        let private = GuestAddr(PAGE_SIZE as u64);
        assert_eq!(adv.scribble(private, 16), Err(MemError::Protected));
        assert_eq!(adv.write_u32(private, 7), Err(MemError::Protected));
    }

    #[test]
    fn scribble_is_deterministic_per_seed() {
        let mk = || {
            let mem = GuestMemory::new(2, Clock::new(), CostModel::default(), Meter::new());
            mem.share_range(GuestAddr(0), PAGE_SIZE).unwrap();
            let mut adv = Adversary::new(mem.host(), 99);
            adv.scribble(GuestAddr(0), 32).unwrap();
            let mut buf = [0u8; 32];
            mem.guest().read(GuestAddr(0), &mut buf).unwrap();
            buf
        };
        assert_eq!(mk(), mk());
    }
}
