//! Paravirtual device backends: the host side of the guest's NIC.
//!
//! A backend shovels frames between a guest-facing transport (virtqueues
//! or a cio-ring pair) and a [`FabricPort`]. Every frame that passes
//! through is, by definition, host-visible, so backends record it on the
//! [`Recorder`] with wire-tap-equivalent metadata (L2 boundary
//! observability = what the network already sees, §2.4).

use crate::fabric::FabricPort;
use crate::observe::{bits, Recorder};
use crate::HostError;
use cio_mem::HostView;
use cio_netstack::NetDevice;
use cio_sim::Clock;
use cio_vring::cioring::{Consumer, Producer};
use cio_vring::virtqueue::{Chain, DeviceSide};
use std::collections::VecDeque;

/// Host backend for a virtio-net device (two split virtqueues).
pub struct VirtioNetBackend {
    tx: DeviceSide,
    rx: DeviceSide,
    port: FabricPort,
    rx_chains: VecDeque<Chain>,
    recorder: Recorder,
    clock: Clock,
    /// When set, the backend injects an interrupt (charged) per received
    /// frame — the CVM notification model. Polling designs leave it off.
    pub irq_on_rx: bool,
    /// Cost model used for interrupt charging.
    pub cost: cio_sim::CostModel,
    meter: cio_sim::Meter,
}

impl VirtioNetBackend {
    /// Creates the backend over the guest's TX and RX queues.
    pub fn new(
        tx: DeviceSide,
        rx: DeviceSide,
        port: FabricPort,
        recorder: Recorder,
        clock: Clock,
    ) -> Self {
        VirtioNetBackend {
            tx,
            rx,
            port,
            rx_chains: VecDeque::new(),
            recorder,
            clock,
            irq_on_rx: false,
            cost: cio_sim::CostModel::default(),
            meter: cio_sim::Meter::new(),
        }
    }

    /// Enables interrupt-driven receive charging against `meter`.
    pub fn enable_rx_interrupts(&mut self, cost: cio_sim::CostModel, meter: cio_sim::Meter) {
        self.irq_on_rx = true;
        self.cost = cost;
        self.meter = meter;
    }

    /// One processing pass; returns frames moved.
    ///
    /// # Errors
    ///
    /// Transport errors (a malicious *guest* could still wedge its own
    /// queues; the host defends itself and surfaces the error).
    pub fn process(&mut self) -> Result<usize, HostError> {
        let mut moved = 0;

        // Guest -> network.
        while let Some(chain) = self.tx.pop()? {
            let frame = self.tx.read_payload(&chain)?;
            self.recorder.record(
                self.clock.now(),
                "frame.tx",
                bits::FRAME_HEADERS + bits::LENGTH + bits::TIMING,
            );
            // Device-side MTU errors are the guest's problem; drop silently
            // like hardware would.
            let _ = self.port.transmit(&frame);
            self.tx.complete(chain.head, 0)?;
            moved += 1;
        }

        // Collect posted receive buffers.
        while let Some(chain) = self.rx.pop()? {
            self.rx_chains.push_back(chain);
        }

        // Network -> guest.
        while !self.rx_chains.is_empty() {
            let Some(frame) = self.port.receive() else {
                break;
            };
            let chain = self.rx_chains.pop_front().expect("checked non-empty");
            self.recorder.record(
                self.clock.now(),
                "frame.rx",
                bits::FRAME_HEADERS + bits::LENGTH + bits::TIMING,
            );
            let written = self.rx.write_payload(&chain, &frame)?;
            self.rx.complete(chain.head, written)?;
            if self.irq_on_rx {
                self.clock.advance(self.cost.interrupt_inject);
                self.meter.interrupts_received(1);
            }
            moved += 1;
        }
        Ok(moved)
    }

    /// Receive buffers currently posted by the guest.
    pub fn posted_rx(&self) -> usize {
        self.rx_chains.len()
    }

    /// The guest-facing TX queue (adversary access).
    pub fn tx_device(&mut self) -> &mut DeviceSide {
        &mut self.tx
    }

    /// The guest-facing RX queue (adversary access).
    pub fn rx_device(&mut self) -> &mut DeviceSide {
        &mut self.rx
    }
}

/// Host backend for the cio-ring interface (one ring per direction).
pub struct CioNetBackend {
    /// Guest -> host ring (host consumes).
    tx: Consumer<HostView>,
    /// Host -> guest ring (host produces).
    rx: Producer<HostView>,
    port: FabricPort,
    recorder: Recorder,
    clock: Clock,
    /// When set, frames are treated as opaque blobs (tunnel carrier): the
    /// recorder only sees length and timing, never headers.
    pub opaque: bool,
}

impl CioNetBackend {
    /// Creates the backend over the two rings.
    pub fn new(
        tx: Consumer<HostView>,
        rx: Producer<HostView>,
        port: FabricPort,
        recorder: Recorder,
        clock: Clock,
    ) -> Self {
        CioNetBackend {
            tx,
            rx,
            port,
            recorder,
            clock,
            opaque: false,
        }
    }

    fn frame_bits(&self) -> u32 {
        if self.opaque {
            bits::LENGTH + bits::TIMING
        } else {
            bits::FRAME_HEADERS + bits::LENGTH + bits::TIMING
        }
    }

    /// One processing pass; returns frames moved.
    ///
    /// # Errors
    ///
    /// Ring errors. The host consumes with the same masked discipline as
    /// the guest — the interface is symmetric by design.
    pub fn process(&mut self) -> Result<usize, HostError> {
        let mut moved = 0;
        let fbits = self.frame_bits();
        while let Some(frame) = self.tx.consume()? {
            self.recorder.record(self.clock.now(), "frame.tx", fbits);
            let _ = self.port.transmit(&frame);
            moved += 1;
        }
        while let Some(frame) = self.port.receive() {
            self.recorder.record(self.clock.now(), "frame.rx", fbits);
            match self.rx.produce(&frame) {
                Ok(()) => moved += 1,
                Err(cio_vring::RingError::Full) => break, // guest slow: drop
                Err(e) => return Err(e.into()),
            }
        }
        Ok(moved)
    }

    /// Dismantles the backend, returning the fabric port so a fresh
    /// backend can be attached to the same link (device hot-swap, §3.2).
    pub fn into_port(self) -> FabricPort {
        self.port
    }

    /// The guest->host consumer (adversary access).
    pub fn tx_ring(&mut self) -> &mut Consumer<HostView> {
        &mut self.tx
    }

    /// The host->guest producer (adversary access).
    pub fn rx_ring(&mut self) -> &mut Producer<HostView> {
        &mut self.rx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::{Fabric, LinkParams};
    use cio_mem::{GuestAddr, GuestMemory, PAGE_SIZE};
    use cio_netstack::MacAddr;
    use cio_sim::{CostModel, Meter};
    use cio_vring::cioring::{CioRing, DataMode, RingConfig};
    use cio_vring::virtqueue::{DescSeg, Driver, Layout};

    fn fabric_pair(clock: &Clock) -> (FabricPort, FabricPort) {
        let fabric = Fabric::new(clock.clone(), 7);
        let a = fabric.port(MacAddr([0xAA; 6]), 1500);
        let b = fabric.port(MacAddr([0xBB; 6]), 1500);
        fabric
            .connect(
                &a,
                &b,
                LinkParams {
                    latency: cio_sim::Cycles::ZERO,
                    loss: 0.0,
                },
            )
            .unwrap();
        (a, b)
    }

    #[test]
    fn virtio_backend_moves_frames_both_ways() {
        let clock = Clock::new();
        let meter = Meter::new();
        let mem = GuestMemory::new(64, clock.clone(), CostModel::default(), meter.clone());
        mem.share_range(GuestAddr(0), 24 * PAGE_SIZE).unwrap();

        let tx_layout = Layout::new(GuestAddr(0), 8).unwrap();
        let rx_layout = Layout::new(GuestAddr(4 * PAGE_SIZE as u64), 8).unwrap();
        let mut tx_drv = Driver::new(mem.guest(), tx_layout, meter.clone()).unwrap();
        let mut rx_drv = Driver::new(mem.guest(), rx_layout, meter).unwrap();

        let (dev_port, mut peer_port) = fabric_pair(&clock);
        let recorder = Recorder::new();
        let mut backend = VirtioNetBackend::new(
            DeviceSide::new(mem.host(), tx_layout),
            DeviceSide::new(mem.host(), rx_layout),
            dev_port,
            recorder.clone(),
            clock.clone(),
        );

        // Buffer arena in pages 8..24.
        let buf = |i: u64| GuestAddr(8 * PAGE_SIZE as u64 + i * 2048);

        // TX path.
        mem.guest().write(buf(0), b"frame out").unwrap();
        tx_drv
            .add_buf(
                &[DescSeg {
                    addr: buf(0),
                    len: 9,
                }],
                &[],
                1,
            )
            .unwrap();
        backend.process().unwrap();
        assert_eq!(peer_port.receive().unwrap(), b"frame out");
        assert!(tx_drv.poll_used().unwrap().is_some());

        // RX path: post a buffer, then a frame arrives.
        rx_drv
            .add_buf(
                &[],
                &[DescSeg {
                    addr: buf(1),
                    len: 2048,
                }],
                2,
            )
            .unwrap();
        peer_port.transmit(b"frame in").unwrap();
        backend.process().unwrap();
        let done = rx_drv.poll_used().unwrap().unwrap();
        assert_eq!(done.len, 8);
        let mut got = vec![0u8; 8];
        mem.guest().read(buf(1), &mut got).unwrap();
        assert_eq!(got, b"frame in");

        // Observability: both frames were recorded.
        let s = recorder.summary();
        assert_eq!(s.by_kind["frame.tx"], 1);
        assert_eq!(s.by_kind["frame.rx"], 1);
    }

    #[test]
    fn cio_backend_moves_frames_both_ways() {
        let clock = Clock::new();
        let mem = GuestMemory::new(600, clock.clone(), CostModel::default(), Meter::new());
        let cfg = RingConfig {
            slots: 64,
            slot_size: 16,
            mode: DataMode::SharedArea,
            mtu: 2048,
            area_size: 1 << 17,
            ..RingConfig::default()
        };
        // TX ring at 0, area at page 16; RX ring at page 8, area at page 48+32.
        let tx_ring =
            CioRing::new(cfg.clone(), GuestAddr(0), GuestAddr(16 * PAGE_SIZE as u64)).unwrap();
        let rx_ring = CioRing::new(
            cfg,
            GuestAddr(8 * PAGE_SIZE as u64),
            GuestAddr(64 * PAGE_SIZE as u64),
        )
        .unwrap();
        mem.share_range(GuestAddr(0), tx_ring.ring_bytes()).unwrap();
        mem.share_range(GuestAddr(8 * PAGE_SIZE as u64), rx_ring.ring_bytes())
            .unwrap();
        mem.share_range(GuestAddr(16 * PAGE_SIZE as u64), tx_ring.area_bytes())
            .unwrap();
        mem.share_range(GuestAddr(64 * PAGE_SIZE as u64), rx_ring.area_bytes())
            .unwrap();

        let mut guest_tx = Producer::new(tx_ring.clone(), mem.guest()).unwrap();
        let host_tx = Consumer::new(tx_ring, mem.host()).unwrap();
        let host_rx = Producer::new(rx_ring.clone(), mem.host()).unwrap();
        let mut guest_rx = Consumer::new(rx_ring, mem.guest()).unwrap();

        let (dev_port, mut peer_port) = fabric_pair(&clock);
        let recorder = Recorder::new();
        let mut backend = CioNetBackend::new(host_tx, host_rx, dev_port, recorder.clone(), clock);

        guest_tx.produce(b"cio frame out").unwrap();
        backend.process().unwrap();
        assert_eq!(peer_port.receive().unwrap(), b"cio frame out");

        peer_port.transmit(b"cio frame in").unwrap();
        backend.process().unwrap();
        assert_eq!(guest_rx.consume().unwrap().unwrap(), b"cio frame in");

        assert_eq!(recorder.summary().events, 2);
    }
}
